//! The paper's quantitative claims, asserted end-to-end. Every table
//! and figure has at least one machine-checked invariant here.

use dynamic_ecqv::analysis::{security_matrix, Protection, Threat};
use dynamic_ecqv::bms::BmsScenario;
use dynamic_ecqv::devices::timing::{protocol_pair_time, sts_operation_times};
use dynamic_ecqv::prelude::*;
use ecq_bench::simulate_table1_cell;

// ───────────────────────── Table I ─────────────────────────

#[test]
fn table1_ecdsa_family_rows_match_paper_exactly() {
    // The fit inverts eqs. (5)–(8), so S-ECDSA/STS/opt. I/opt. II must
    // land within 0.5 % on every device.
    for preset in DevicePreset::ALL {
        let device = preset.profile();
        for kind in [
            ProtocolKind::SEcdsa,
            ProtocolKind::Sts,
            ProtocolKind::StsOptI,
            ProtocolKind::StsOptII,
        ] {
            let sim = simulate_table1_cell(kind, &device, 2);
            let paper = preset.paper_table1(kind);
            assert!(
                ((sim - paper) / paper).abs() < 0.005,
                "{preset:?}/{kind}: {sim:.2} vs {paper:.2}"
            );
        }
    }
}

#[test]
fn table1_baselines_within_ten_percent_and_ordered() {
    for preset in DevicePreset::ALL {
        let device = preset.profile();
        for kind in [ProtocolKind::Scianc, ProtocolKind::Poramb] {
            let sim = simulate_table1_cell(kind, &device, 2);
            let paper = preset.paper_table1(kind);
            assert!(
                ((sim - paper) / paper).abs() < 0.105,
                "{preset:?}/{kind}: {sim:.2} vs {paper:.2}"
            );
        }
        // PORAMB ≈ 2× SCIANC on every board (the paper's consistent ratio).
        let scianc = simulate_table1_cell(ProtocolKind::Scianc, &device, 2);
        let poramb = simulate_table1_cell(ProtocolKind::Poramb, &device, 2);
        let ratio = poramb / scianc;
        assert!((1.8..2.2).contains(&ratio), "{preset:?}: ratio {ratio}");
    }
}

#[test]
fn headline_sts_overhead_about_twenty_percent() {
    // Abstract: "a slight computational increase of 20 % compared to a
    // static ECDSA key derivation".
    let stm = DevicePreset::Stm32F767.profile();
    let sts = simulate_table1_cell(ProtocolKind::Sts, &stm, 2);
    let se = simulate_table1_cell(ProtocolKind::SEcdsa, &stm, 2);
    let overhead = sts / se - 1.0;
    assert!(
        (0.15..0.30).contains(&overhead),
        "overhead {:.1} %",
        overhead * 100.0
    );
}

#[test]
fn optimization_ii_beats_s_ecdsa_on_every_board() {
    // §V-A: "its optimization variants show the potential time similar
    // to or faster than the S-ECDSA".
    for preset in DevicePreset::ALL {
        let device = preset.profile();
        let opt2 = simulate_table1_cell(ProtocolKind::StsOptII, &device, 2);
        let se = simulate_table1_cell(ProtocolKind::SEcdsa, &device, 2);
        assert!(opt2 < se, "{preset:?}: {opt2:.2} !< {se:.2}");
    }
}

#[test]
fn run_time_scales_with_device_class() {
    // "The run time scalability is relatively consistent regarding the
    // devices' performances": ATmega ≫ S32K > STM32 ≫ RPi4.
    let order = [
        DevicePreset::ATmega2560,
        DevicePreset::S32K144,
        DevicePreset::Stm32F767,
        DevicePreset::RaspberryPi4,
    ];
    for kind in ProtocolKind::ALL {
        let times: Vec<f64> = order
            .iter()
            .map(|p| simulate_table1_cell(kind, &p.profile(), 1))
            .collect();
        for w in times.windows(2) {
            assert!(w[0] > w[1], "{kind}: {times:?}");
        }
    }
}

// ───────────────────────── Fig. 3 / Fig. 4 ─────────────────────────

#[test]
fn fig3_op_times_reproduce_fitted_values() {
    let ops = sts_operation_times(&DevicePreset::Stm32F767.profile());
    assert!((ops[0] - 320.15).abs() < 0.01);
    assert!((ops[1] - 344.05).abs() < 0.01);
    assert!((ops[2] - 598.77).abs() < 0.01);
    assert!((ops[3] - 318.065).abs() < 0.01);
}

#[test]
fn fig4_bar_ordering() {
    let device = DevicePreset::Stm32F767.profile();
    let t = |k| simulate_table1_cell(k, &device, 1);
    assert!(t(ProtocolKind::Scianc) < t(ProtocolKind::Poramb));
    assert!(t(ProtocolKind::Poramb) < t(ProtocolKind::StsOptII));
    assert!(t(ProtocolKind::StsOptII) < t(ProtocolKind::SEcdsa));
    assert!(t(ProtocolKind::SEcdsa) < t(ProtocolKind::StsOptI));
    assert!(t(ProtocolKind::StsOptI) < t(ProtocolKind::Sts));
}

// ───────────────────────── Table II ─────────────────────────

#[test]
fn table2_exact_byte_counts() {
    let (alice, bob, mut rng) = ecq_bench::deployment(42);
    let expect = [
        (ProtocolKind::SEcdsa, 4, 427),
        (ProtocolKind::SEcdsaExt, 5, 619),
        (ProtocolKind::Sts, 4, 491),
        (ProtocolKind::Scianc, 4, 362),
        (ProtocolKind::Poramb, 6, 820),
    ];
    for (kind, steps, bytes) in expect {
        let (t, _) = ecq_bench::run_protocol(kind, &alice, &bob, &mut rng).unwrap();
        assert_eq!(t.step_count(), steps, "{kind} steps");
        assert_eq!(t.total_bytes(), bytes, "{kind} bytes");
    }
}

// ───────────────────────── Fig. 7 ─────────────────────────

#[test]
fn fig7_prototype_overhead_and_bus_negligibility() {
    let scenario = BmsScenario::new(777);
    let sts = scenario.run_handshake(ProtocolKind::Sts).unwrap();
    let se = scenario.run_handshake(ProtocolKind::SEcdsa).unwrap();
    // Paper: +21.67 %; our protocol-level model gives ~+25 %.
    let overhead = sts.total_ms / se.total_ms - 1.0;
    assert!(
        (0.15..0.32).contains(&overhead),
        "overhead {:.2} %",
        overhead * 100.0
    );
    // "CAN-FD transfer time … negligible": < 0.2 % of the session.
    assert!(sts.bus_ms / sts.total_ms < 0.002);
    // Totals in the seconds range on S32K144-class ECUs, like Fig. 7.
    assert!(sts.total_ms > 2000.0 && sts.total_ms < 5000.0);
}

// ───────────────────────── Table III ─────────────────────────

#[test]
fn table3_sts_column_is_the_paper_verdict() {
    let m = security_matrix();
    assert_eq!(
        m.lookup(ProtocolKind::Sts, Threat::PastDataExposure),
        Some(Protection::Full)
    );
    assert_eq!(
        m.lookup(ProtocolKind::Sts, Threat::NodeCapture),
        Some(Protection::Partial)
    );
    assert_eq!(
        m.lookup(ProtocolKind::Sts, Threat::KeyDataReuse),
        Some(Protection::Full)
    );
    assert_eq!(
        m.lookup(ProtocolKind::Sts, Threat::KeyDerivationExploit),
        Some(Protection::Full)
    );
    assert_eq!(
        m.lookup(ProtocolKind::Sts, Threat::Mitm),
        Some(Protection::Full)
    );
}

#[test]
fn table3_no_protocol_fully_survives_node_capture() {
    let m = security_matrix();
    for kind in m.columns.clone() {
        assert!(
            m.lookup(kind, Threat::NodeCapture).unwrap() < Protection::Full,
            "{kind}"
        );
    }
}

// ───────────────────────── eq. (6) ─────────────────────────

#[test]
fn heterogeneous_pipelining_saves_only_the_smaller_phase() {
    use dynamic_ecqv::proto::Role;
    let (alice, bob, mut rng) = ecq_bench::deployment(99);
    let (transcript, _) =
        ecq_bench::run_protocol(ProtocolKind::Sts, &alice, &bob, &mut rng).unwrap();
    let fast = DevicePreset::RaspberryPi4.profile();
    let slow = DevicePreset::ATmega2560.profile();
    let conv = protocol_pair_time(ProtocolKind::Sts, &transcript, &slow, &fast);
    let opt2 = protocol_pair_time(ProtocolKind::StsOptII, &transcript, &slow, &fast);
    // The saving is bounded by the FAST device's Op2+Op3 (tiny).
    use dynamic_ecqv::devices::timing::integrate;
    let fast_phases = integrate(transcript.trace(Role::Responder), &fast);
    let max_saving = fast_phases.op2 + fast_phases.op3;
    assert!(conv - opt2 <= max_saving + 1e-9);
    assert!(conv - opt2 > 0.0);
}
