//! Statistical sanity of derived session keys (threat T5's "each
//! unique key needs to have a high-enough entropy"): bit balance and
//! inter-key distance across many sessions. These are smoke tests for
//! catastrophic derivation bugs (stuck bits, shared prefixes), not
//! certifications of randomness.

use dynamic_ecqv::prelude::*;

fn collect_keys(n: usize) -> Vec<[u8; 32]> {
    let mut rng = HmacDrbg::from_seed(0xE27);
    let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
    let a = Credentials::provision(&ca, DeviceId::from_label("a"), 0, 1000, &mut rng).unwrap();
    let b = Credentials::provision(&ca, DeviceId::from_label("b"), 0, 1000, &mut rng).unwrap();
    (0..n)
        .map(|_| {
            *establish(&a, &b, &StsConfig::default(), &mut rng)
                .unwrap()
                .initiator_key
                .as_bytes()
        })
        .collect()
}

#[test]
fn session_key_bits_are_balanced() {
    let keys = collect_keys(24);
    let total_bits = keys.len() * 256;
    let ones: usize = keys
        .iter()
        .map(|k| k.iter().map(|b| b.count_ones() as usize).sum::<usize>())
        .sum();
    let ratio = ones as f64 / total_bits as f64;
    // 6144 fair coin flips: |ratio − 0.5| < 0.04 with overwhelming margin.
    assert!((0.46..0.54).contains(&ratio), "bit balance off: {ratio:.3}");
}

#[test]
fn no_stuck_bytes_across_sessions() {
    let keys = collect_keys(16);
    for pos in 0..32 {
        let first = keys[0][pos];
        assert!(
            keys.iter().any(|k| k[pos] != first),
            "byte {pos} constant across sessions"
        );
    }
}

#[test]
fn pairwise_hamming_distance_near_half() {
    let keys = collect_keys(10);
    for i in 0..keys.len() {
        for j in (i + 1)..keys.len() {
            let dist: u32 = keys[i]
                .iter()
                .zip(keys[j].iter())
                .map(|(a, b)| (a ^ b).count_ones())
                .sum();
            // 256-bit strings: expect ~128, demand 80..176 (>6σ).
            assert!(
                (80..=176).contains(&dist),
                "keys {i},{j} too close/far: {dist}"
            );
        }
    }
}
