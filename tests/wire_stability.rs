//! Wire-format stability: deterministic seeds must produce
//! byte-identical transcripts across releases. A change in any
//! encoding (certificate layout, signature serialization, KDF inputs)
//! shows up here before it silently breaks interoperability.

use dynamic_ecqv::prelude::*;
use ecq_bench::{deployment, run_protocol};

fn digest_of_transcript(kind: ProtocolKind) -> [u8; 32] {
    let (a, b, mut rng) = deployment(0x57AB1E);
    let (t, _) = run_protocol(kind, &a, &b, &mut rng).expect("handshake");
    let mut h = ecq_crypto::sha256::Sha256::new();
    for m in t.messages() {
        h.update(m.step.as_bytes());
        h.update(&m.bytes);
    }
    h.finalize()
}

#[test]
fn transcripts_are_deterministic_across_runs() {
    for kind in ProtocolKind::WIRE_DISTINCT {
        assert_eq!(
            digest_of_transcript(kind),
            digest_of_transcript(kind),
            "{kind}"
        );
    }
}

#[test]
fn sts_message_layouts_are_fixed() {
    let (a, b, mut rng) = deployment(0x57AB1E);
    let (t, _) = run_protocol(ProtocolKind::Sts, &a, &b, &mut rng).unwrap();
    let msgs = t.messages();
    assert_eq!(msgs[0].fields, "ID(16), XG(64)");
    assert_eq!(msgs[1].fields, "ID(16), Cert(101), XG(64), Resp(64)");
    assert_eq!(msgs[2].fields, "Cert(101), Resp(64)");
    assert_eq!(msgs[3].fields, "ACK(1)");
}

#[test]
fn certificate_prefix_is_stable() {
    // Magic, version and curve id pin the 101-byte layout.
    let (a, _, _) = deployment(0x57AB1E);
    let bytes = a.cert.to_bytes();
    assert_eq!(&bytes[0..2], b"EQ");
    assert_eq!(bytes[2], 1);
    assert_eq!(bytes[52], 0x17); // secp256r1
    assert!(bytes[53] == 0x02 || bytes[53] == 0x03); // compressed point tag
}

#[test]
fn session_keys_stable_for_fixed_seed() {
    // A golden-value check on the whole pipeline: DRBG → ECQV → STS →
    // HKDF. If any stage changes, this digest moves.
    let (a, b, mut rng) = deployment(0xD1DE);
    let (_, key) = run_protocol(ProtocolKind::Sts, &a, &b, &mut rng).unwrap();
    let fp = ecq_crypto::sha256::sha256(key.as_bytes());
    let (a2, b2, mut rng2) = deployment(0xD1DE);
    let (_, key2) = run_protocol(ProtocolKind::Sts, &a2, &b2, &mut rng2).unwrap();
    assert_eq!(key, key2);
    assert_eq!(fp, ecq_crypto::sha256::sha256(key2.as_bytes()));
}
