//! Cross-crate integration: full session establishment for every
//! protocol, key agreement, and transcript invariants.

use dynamic_ecqv::baselines::{establish_poramb, establish_s_ecdsa, establish_scianc};
use dynamic_ecqv::prelude::*;
use dynamic_ecqv::proto::{ProtocolError, Role};

fn world(seed: u64) -> (Credentials, Credentials, HmacDrbg) {
    let mut rng = HmacDrbg::from_seed(seed);
    let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
    let a = Credentials::provision(&ca, DeviceId::from_label("alice"), 0, 1000, &mut rng).unwrap();
    let b = Credentials::provision(&ca, DeviceId::from_label("bob"), 0, 1000, &mut rng).unwrap();
    (a, b, rng)
}

#[test]
fn sts_agreement_and_freshness_over_many_sessions() {
    let (a, b, mut rng) = world(1);
    let mut keys = Vec::new();
    for _ in 0..10 {
        let s = establish(&a, &b, &StsConfig::default(), &mut rng).unwrap();
        assert_eq!(s.initiator_key, s.responder_key);
        keys.push(*s.initiator_key.as_bytes());
    }
    keys.sort();
    keys.dedup();
    assert_eq!(keys.len(), 10, "every session must derive a fresh key");
}

#[test]
fn all_protocols_agree_on_keys() {
    let (a, b, mut rng) = world(2);
    let s = establish(&a, &b, &StsConfig::default(), &mut rng).unwrap();
    assert_eq!(s.initiator_key, s.responder_key);
    let o = establish_s_ecdsa(&a, &b, 0, false, &mut rng).unwrap();
    assert_eq!(o.initiator_key, o.responder_key);
    let o = establish_s_ecdsa(&a, &b, 0, true, &mut rng).unwrap();
    assert_eq!(o.initiator_key, o.responder_key);
    let o = establish_scianc(&a, &b, 0, &mut rng).unwrap();
    assert_eq!(o.initiator_key, o.responder_key);
    let o = establish_poramb(&a, &b, &[9u8; 32], 0, &mut rng).unwrap();
    assert_eq!(o.initiator_key, o.responder_key);
}

#[test]
fn protocols_domain_separate_their_keys() {
    // Even if two protocols happened to reach the same premaster, the
    // KDF labels must separate the derived keys. With SKD protocols the
    // premaster IS shared — so this is a real cross-protocol check.
    let (a, b, mut rng) = world(3);
    let s_ecdsa = establish_s_ecdsa(&a, &b, 0, false, &mut rng).unwrap();
    let scianc = establish_scianc(&a, &b, 0, &mut rng).unwrap();
    assert_ne!(s_ecdsa.initiator_key, scianc.initiator_key);
}

#[test]
fn traces_are_complete_for_both_roles() {
    let (a, b, mut rng) = world(4);
    let s = establish(&a, &b, &StsConfig::default(), &mut rng).unwrap();
    for role in [Role::Initiator, Role::Responder] {
        let trace = s.transcript.trace(role);
        assert!(!trace.is_empty(), "{role:?} must record primitives");
        use dynamic_ecqv::proto::PrimitiveOp;
        assert_eq!(trace.count_op(PrimitiveOp::EphemeralKeyGen), 1);
        assert_eq!(trace.count_op(PrimitiveOp::EcdsaSign), 1);
        assert_eq!(trace.count_op(PrimitiveOp::EcdsaVerify), 1);
        assert_eq!(trace.count_op(PrimitiveOp::EcdhDerive), 1);
        assert_eq!(trace.count_op(PrimitiveOp::PublicKeyReconstruction), 1);
    }
}

#[test]
fn sessions_between_unrelated_cas_always_fail() {
    let mut rng = HmacDrbg::from_seed(5);
    let ca1 = CertificateAuthority::new(DeviceId::from_label("CA1"), &mut rng);
    let ca2 = CertificateAuthority::new(DeviceId::from_label("CA2"), &mut rng);
    let a = Credentials::provision(&ca1, DeviceId::from_label("alice"), 0, 1000, &mut rng).unwrap();
    let b = Credentials::provision(&ca2, DeviceId::from_label("bob"), 0, 1000, &mut rng).unwrap();
    assert!(establish(&a, &b, &StsConfig::default(), &mut rng).is_err());
    assert!(establish_s_ecdsa(&a, &b, 0, false, &mut rng).is_err());
    // SCIANC has no signature check — but key agreement itself fails
    // because each side reconstructs the peer key under its own CA,
    // yielding different premasters, so the MAC exchange breaks.
    assert_eq!(
        establish_scianc(&a, &b, 0, &mut rng).unwrap_err(),
        ProtocolError::AuthenticationFailed
    );
}

#[test]
fn expired_certificates_rejected_everywhere() {
    let (a, b, mut rng) = world(6);
    let cfg = StsConfig {
        now: 99_999,
        ..StsConfig::default()
    };
    assert!(establish(&a, &b, &cfg, &mut rng).is_err());
    assert!(establish_s_ecdsa(&a, &b, 99_999, false, &mut rng).is_err());
    assert!(establish_scianc(&a, &b, 99_999, &mut rng).is_err());
    assert!(establish_poramb(&a, &b, &[1u8; 32], 99_999, &mut rng).is_err());
}

#[test]
fn deterministic_given_seed() {
    let (a1, b1, mut rng1) = world(7);
    let (a2, b2, mut rng2) = world(7);
    let s1 = establish(&a1, &b1, &StsConfig::default(), &mut rng1).unwrap();
    let s2 = establish(&a2, &b2, &StsConfig::default(), &mut rng2).unwrap();
    assert_eq!(s1.initiator_key, s2.initiator_key);
    assert_eq!(
        s1.transcript.messages()[1].bytes,
        s2.transcript.messages()[1].bytes
    );
}
