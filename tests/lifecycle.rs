//! The full three-phase lifecycle of the paper's Fig. 1, plus
//! certificate renewal and its interaction with static vs dynamic key
//! derivation.

use dynamic_ecqv::baselines::skd;
use dynamic_ecqv::prelude::*;
use dynamic_ecqv::sts::{RekeyPolicy, SessionManager};

#[test]
fn fig1_three_phases_end_to_end() {
    // Phase 1+2: device authentication + certificate derivation.
    let mut rng = HmacDrbg::from_seed(501);
    let ca = CertificateAuthority::new(DeviceId::from_label("gateway"), &mut rng);
    let alice = Credentials::provision(&ca, DeviceId::from_label("alice"), 0, 500, &mut rng)
        .expect("phase 1+2 alice");
    let bob = Credentials::provision(&ca, DeviceId::from_label("bob"), 0, 500, &mut rng)
        .expect("phase 1+2 bob");

    // Phase 3: session establishment.
    let session = establish(&alice, &bob, &StsConfig::default(), &mut rng).expect("phase 3");

    // Encrypted session (Fig. 1 step 3 arrow).
    let mut payload = *b"status: cells nominal";
    session.initiator_key.apply_stream(0x07, &mut payload);
    session.responder_key.apply_stream(0x07, &mut payload);
    assert_eq!(&payload, b"status: cells nominal");
}

#[test]
fn renewal_rotates_certificates_and_static_keys() {
    let mut rng = HmacDrbg::from_seed(502);
    let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
    let alice = Credentials::provision(&ca, DeviceId::from_label("alice"), 0, 100, &mut rng)
        .expect("provision");
    let bob =
        Credentials::provision(&ca, DeviceId::from_label("bob"), 0, 100, &mut rng).expect("bob");

    // Static premaster before renewal.
    let before = skd::static_premaster(&alice, &bob.cert).expect("skd");

    // Renew alice's certificate for a new window.
    let alice2 = alice.renew(&ca, 100, 200, &mut rng).expect("renewal");
    assert_eq!(alice2.id, alice.id);
    assert_ne!(alice2.cert.to_bytes(), alice.cert.to_bytes());
    assert_ne!(alice2.keys.private, alice.keys.private);
    assert!(alice2.keys.is_consistent());

    // The SKD secret rotates ONLY because the certificate rotated —
    // this is the paper's point about the static scheme's key-update
    // dependence.
    let after = skd::static_premaster(&bob, &alice2.cert).expect("skd");
    assert_ne!(before, after);

    // Old and new certs interoperate with peers under the same CA.
    let s = establish(
        &alice2,
        &bob,
        &StsConfig {
            now: 100,
            ..Default::default()
        },
        &mut rng,
    )
    .expect("post-renewal handshake");
    assert_eq!(s.initiator_key, s.responder_key);
}

#[test]
fn session_manager_survives_certificate_renewal_cycles() {
    let mut rng = HmacDrbg::from_seed(503);
    let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
    let alice =
        Credentials::provision(&ca, DeviceId::from_label("alice"), 0, 50, &mut rng).unwrap();
    let bob = Credentials::provision(&ca, DeviceId::from_label("bob"), 0, 50, &mut rng).unwrap();

    let policy = RekeyPolicy {
        max_age_secs: 10,
        max_messages: u64::MAX,
    };
    let mut mgr = SessionManager::new(
        alice.clone(),
        bob.clone(),
        policy,
        StsConfig::default(),
        HmacDrbg::from_seed(504),
    );

    // Several epochs inside the certificate session.
    let k0 = mgr.key_for(0).unwrap();
    let k1 = mgr.key_for(20).unwrap();
    let k2 = mgr.key_for(40).unwrap();
    assert_ne!(k0, k1);
    assert_ne!(k1, k2);
    assert_eq!(mgr.rekey_count(), 3);

    // The certificate session ends at t=50: the manager refuses.
    assert!(mgr.key_for(60).is_err());

    // Phase 2 re-runs (renewal) and a new manager continues.
    let alice2 = alice.renew(&ca, 50, 150, &mut rng).unwrap();
    let bob2 = bob.renew(&ca, 50, 150, &mut rng).unwrap();
    let mut mgr2 = SessionManager::new(
        alice2,
        bob2,
        policy,
        StsConfig {
            now: 60,
            ..Default::default()
        },
        HmacDrbg::from_seed(505),
    );
    let k3 = mgr2.key_for(60).unwrap();
    assert_ne!(k2, k3);
}

#[test]
fn replayed_handshake_messages_rejected() {
    use dynamic_ecqv::analysis::attacks::{mitm, TestDeployment};
    let mut d = TestDeployment::new(506);
    assert_eq!(
        mitm::sts_replay(&mut d),
        mitm::MitmOutcome::Rejected(dynamic_ecqv::proto::ProtocolError::AuthenticationFailed)
    );
}
