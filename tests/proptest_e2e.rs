//! End-to-end property tests: protocol invariants over arbitrary
//! seeds, and timing-model invariants over arbitrary cost tables.

use dynamic_ecqv::baselines::{establish_s_ecdsa, establish_scianc};
use dynamic_ecqv::devices::profile::{DeviceProfile, PrimitiveCosts};
use dynamic_ecqv::devices::timing::{integrate, pair_total, pipelined_phases};
use dynamic_ecqv::prelude::*;
use dynamic_ecqv::proto::Role;
use proptest::prelude::*;

fn world(seed: u64) -> (Credentials, Credentials, HmacDrbg) {
    let mut rng = HmacDrbg::from_seed(seed);
    let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
    let a = Credentials::provision(&ca, DeviceId::from_label("a"), 0, 1000, &mut rng).unwrap();
    let b = Credentials::provision(&ca, DeviceId::from_label("b"), 0, 1000, &mut rng).unwrap();
    (a, b, rng)
}

fn arb_costs() -> impl Strategy<Value = PrimitiveCosts> {
    (
        1.0f64..5000.0, // keygen
        1.0f64..5000.0, // recon
        1.0f64..5000.0, // ecdh
        1.0f64..5000.0, // sign
        1.0f64..5000.0, // verify
        0.001f64..1.0,  // aes
        0.001f64..10.0, // mac
        0.001f64..30.0, // kdf
        0.001f64..3.0,  // rng
    )
        .prop_map(
            |(keygen, recon, ecdh, sign, verify, aes, mac, kdf, rng)| PrimitiveCosts {
                keygen_ms: keygen,
                recon_ms: recon,
                ecdh_ms: ecdh,
                sign_ms: sign,
                verify_ms: verify,
                aes_block_ms: aes,
                mac_ms: mac,
                kdf_ms: kdf,
                rng32_ms: rng,
                hash_block_ms: 0.01,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sts_always_agrees_and_is_fresh(seed in any::<u64>()) {
        let (a, b, mut rng) = world(seed);
        let s1 = establish(&a, &b, &StsConfig::default(), &mut rng).unwrap();
        let s2 = establish(&a, &b, &StsConfig::default(), &mut rng).unwrap();
        prop_assert_eq!(s1.initiator_key, s1.responder_key);
        prop_assert_eq!(s2.initiator_key, s2.responder_key);
        prop_assert_ne!(s1.initiator_key, s2.initiator_key);
        prop_assert_eq!(s1.transcript.total_bytes(), 491);
    }

    #[test]
    fn baselines_always_agree(seed in any::<u64>()) {
        let (a, b, mut rng) = world(seed);
        let o = establish_s_ecdsa(&a, &b, 0, false, &mut rng).unwrap();
        prop_assert_eq!(o.initiator_key, o.responder_key);
        let o = establish_scianc(&a, &b, 0, &mut rng).unwrap();
        prop_assert_eq!(o.initiator_key, o.responder_key);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn schedule_ordering_holds_for_any_cost_table(costs_a in arb_costs(), costs_b in arb_costs()) {
        // For ANY pair of devices: opt II ≤ opt I ≤ conventional, and
        // the pipelining saving never exceeds the smaller side's work.
        let (a, b, mut rng) = world(42);
        let session = establish(&a, &b, &StsConfig::default(), &mut rng).unwrap();
        let dev_a = DeviceProfile { name: "A", class: "arb", costs: costs_a };
        let dev_b = DeviceProfile { name: "B", class: "arb", costs: costs_b };
        let ta = integrate(session.transcript.trace(Role::Initiator), &dev_a);
        let tb = integrate(session.transcript.trace(Role::Responder), &dev_b);
        let conv = pair_total(&ta, &tb, &[]);
        let opt1 = pair_total(&ta, &tb, pipelined_phases(ProtocolKind::StsOptI));
        let opt2 = pair_total(&ta, &tb, pipelined_phases(ProtocolKind::StsOptII));
        prop_assert!(opt2 <= opt1 + 1e-9);
        prop_assert!(opt1 <= conv + 1e-9);
        // eq. (7) for identical phases: saving == min side.
        prop_assert!((conv - opt1 - ta.op2.min(tb.op2)).abs() < 1e-9);
        prop_assert!(
            (conv - opt2 - ta.op2.min(tb.op2) - ta.op3.min(tb.op3)).abs() < 1e-9
        );
    }

    #[test]
    fn integration_is_linear_in_costs(costs in arb_costs(), factor in 1.0f64..10.0) {
        // Scaling every primitive cost scales every phase time.
        let (a, b, mut rng) = world(43);
        let session = establish(&a, &b, &StsConfig::default(), &mut rng).unwrap();
        let dev = DeviceProfile { name: "X", class: "arb", costs };
        let scaled = DeviceProfile {
            name: "X2",
            class: "arb",
            costs: PrimitiveCosts {
                keygen_ms: costs.keygen_ms * factor,
                recon_ms: costs.recon_ms * factor,
                ecdh_ms: costs.ecdh_ms * factor,
                sign_ms: costs.sign_ms * factor,
                verify_ms: costs.verify_ms * factor,
                aes_block_ms: costs.aes_block_ms * factor,
                mac_ms: costs.mac_ms * factor,
                kdf_ms: costs.kdf_ms * factor,
                rng32_ms: costs.rng32_ms * factor,
                hash_block_ms: costs.hash_block_ms * factor,
            },
        };
        let t1 = integrate(session.transcript.trace(Role::Initiator), &dev);
        let t2 = integrate(session.transcript.trace(Role::Initiator), &scaled);
        prop_assert!((t2.total() - t1.total() * factor).abs() < 1e-6 * t2.total().max(1.0));
    }
}
