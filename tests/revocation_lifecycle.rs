//! Revocation end-to-end: the CA gateway revokes a captured node's
//! certificate, survivors refuse new sessions with it, and the list
//! travels over the CAN-FD stack.

use dynamic_ecqv::cert::RevocationList;
use dynamic_ecqv::fleet::FleetError;
use dynamic_ecqv::prelude::*;

fn world(seed: u64) -> (Credentials, Credentials, HmacDrbg) {
    let mut rng = HmacDrbg::from_seed(seed);
    let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
    let a = Credentials::provision(&ca, DeviceId::from_label("alice"), 0, 1000, &mut rng).unwrap();
    let b = Credentials::provision(&ca, DeviceId::from_label("bob"), 0, 1000, &mut rng).unwrap();
    (a, b, rng)
}

#[test]
fn revoked_peer_is_gated_before_handshake() {
    let (alice, bob, mut rng) = world(701);

    // Pre-revocation: sessions work.
    let mut rl = RevocationList::new();
    assert!(rl.check(&bob.cert, 10).is_ok());
    assert!(establish(&alice, &bob, &StsConfig::default(), &mut rng).is_ok());

    // The gateway learns bob was captured (paper threat T3) and
    // revokes his serial. Forward secrecy already protected the past;
    // the list protects the future.
    rl.revoke(bob.cert.serial);
    assert!(rl.check(&bob.cert, 10).is_err());
    assert!(rl.check(&alice.cert, 10).is_ok());
    // Deployment discipline: alice consults the list before answering
    // bob's request; the session never starts.
}

#[test]
fn revocation_list_travels_over_isotp() {
    use dynamic_ecqv::simnet::canfd::BitTiming;
    use dynamic_ecqv::simnet::isotp::{segment, IsoTpConfig, Reassembler};

    let mut rl = RevocationList::new();
    for serial in [3u64, 17, 99, 4096] {
        rl.revoke(serial);
    }
    let payload = rl.to_bytes();
    let config = IsoTpConfig::default();
    let frames = segment(&payload, &config).unwrap();
    let mut r = Reassembler::new();
    let mut out = None;
    for f in &frames {
        out = r.accept(f).unwrap();
    }
    let received = RevocationList::from_bytes(&out.unwrap()).unwrap();
    assert_eq!(received, rl);
    // Distribution cost is trivial next to a handshake.
    let t: u64 = frames
        .iter()
        .map(|f| f.frame_time_ns(&BitTiming::default()))
        .sum();
    assert!(t < 1_000_000, "{t} ns");
}

#[test]
fn devices_adopt_only_newer_lists() {
    let mut current = RevocationList::new();
    current.revoke(1);

    let stale = RevocationList::new(); // sequence 0
    assert!(!current.superseded_by(&stale));

    let mut fresh = current.clone();
    fresh.revoke(2);
    assert!(current.superseded_by(&fresh));

    // Replaying an old (shorter) list must never clear revocations.
    let adopted = if current.superseded_by(&stale) {
        stale
    } else {
        current.clone()
    };
    assert!(adopted.is_revoked(1));
}

/// Builds the stale-CRL window fleet: four S32K144 devices, two
/// sessions on one shared bus, revocation targeting session 0.
fn window_fleet() -> FleetCoordinator {
    let mut fleet = FleetCoordinator::new(
        FleetConfig::new()
            .devices(4)
            .ca_shards(1)
            .enroll_batch(4)
            .seed(0x57A1E),
    );
    fleet.set_preset_all(DevicePreset::S32K144);
    fleet.enroll_all().unwrap();
    fleet
}

fn window_sweep(window_end_us: Option<u64>) -> FleetCoordinator {
    use dynamic_ecqv::fleet::RevocationSpec;
    use dynamic_ecqv::simnet::FaultSpec;
    let mut fleet = window_fleet();
    let mut opts = SweepOptions::new()
        .threads(1)
        .transport(TransportKind::SharedBus { group: 2 })
        .faults(FaultSpec {
            deadline_us: 30_000_000,
            ..FaultSpec::none()
        });
    if let Some(end) = window_end_us {
        opts = opts.revocation(RevocationSpec {
            session: 0,
            at_us: 0,
            propagation_us: end,
        });
    }
    let _ = fleet.interleaved_sweep(&opts);
    fleet
}

/// The stale-CRL acceptance window, with its boundary pinned to the
/// exact microsecond: a revocation whose CRL propagates at or before
/// the session's final delivery is enforced; one microsecond later and
/// the stale window accepts the (already revoked!) peer. The paper's
/// revocation story lives or dies on that propagation latency.
#[test]
fn stale_crl_acceptance_window_boundary_is_exact() {
    use dynamic_ecqv::proto::ProtocolError;

    // Baseline: find the virtual time of session 0's final delivery
    // (B2 consumed by the initiator — the moment the session closes).
    let baseline = window_sweep(None);
    let t_close = baseline
        .last_deliveries()
        .iter()
        .filter(|d| d.session == 0 && d.step == "B2")
        .map(|d| d.at_us)
        .next_back()
        .expect("session 0 completes in the baseline");
    assert!(baseline.sessions()[0].last_key().is_some());

    // CRL propagated exactly at the close: the last delivery is
    // refused — revoked peers are rejected up to the final message.
    let refused = window_sweep(Some(t_close));
    assert_eq!(
        *refused.sessions()[0].failure().unwrap(),
        FleetError::Protocol(ProtocolError::Cert(dynamic_ecqv::cert::CertError::Revoked))
    );
    assert!(refused.sessions()[0].last_key().is_none());

    // One microsecond later and the whole handshake slips inside the
    // stale window: the revoked peer is accepted. This acceptance is
    // the documented CRL-latency exposure, pinned exactly.
    let accepted = window_sweep(Some(t_close + 1));
    assert!(accepted.sessions()[0].failure().is_none());
    assert!(accepted.sessions()[0].last_key().is_some());

    // Bystander session is untouched in all three runs.
    for fleet in [&baseline, &refused, &accepted] {
        assert!(fleet.sessions()[1].last_key().is_some());
        assert!(fleet.sessions()[1].failure().is_none());
    }
}

/// Inside the window the revoked peer is accepted; once the window
/// lapses mid-handshake, the next delivery fails the session closed.
#[test]
fn window_lapsing_mid_handshake_fails_closed() {
    use dynamic_ecqv::proto::ProtocolError;

    // Find when session 0's *first* delivery lands (A1 at responder).
    let baseline = window_sweep(None);
    let t_first = baseline
        .last_deliveries()
        .iter()
        .filter(|d| d.session == 0)
        .map(|d| d.at_us)
        .next()
        .expect("session 0 delivers in the baseline");

    // Window lapses right after the first delivery: A1 passes, B1 is
    // refused — the handshake dies between STS steps.
    let fleet = window_sweep(Some(t_first + 1));
    assert_eq!(
        *fleet.sessions()[0].failure().unwrap(),
        FleetError::Protocol(ProtocolError::Cert(dynamic_ecqv::cert::CertError::Revoked))
    );
    assert!(fleet.sessions()[0].last_key().is_none());
    // The refusal happened mid-handshake: at least one message of
    // session 0 was delivered before the session died.
    assert!(
        fleet
            .last_deliveries()
            .iter()
            .any(|d| d.session == 0 && d.step == "A1"),
        "A1 must land inside the window before the refusal"
    );
}
