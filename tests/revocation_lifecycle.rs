//! Revocation end-to-end: the CA gateway revokes a captured node's
//! certificate, survivors refuse new sessions with it, and the list
//! travels over the CAN-FD stack.

use dynamic_ecqv::cert::RevocationList;
use dynamic_ecqv::prelude::*;

fn world(seed: u64) -> (Credentials, Credentials, HmacDrbg) {
    let mut rng = HmacDrbg::from_seed(seed);
    let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
    let a = Credentials::provision(&ca, DeviceId::from_label("alice"), 0, 1000, &mut rng).unwrap();
    let b = Credentials::provision(&ca, DeviceId::from_label("bob"), 0, 1000, &mut rng).unwrap();
    (a, b, rng)
}

#[test]
fn revoked_peer_is_gated_before_handshake() {
    let (alice, bob, mut rng) = world(701);

    // Pre-revocation: sessions work.
    let mut rl = RevocationList::new();
    assert!(rl.check(&bob.cert, 10).is_ok());
    assert!(establish(&alice, &bob, &StsConfig::default(), &mut rng).is_ok());

    // The gateway learns bob was captured (paper threat T3) and
    // revokes his serial. Forward secrecy already protected the past;
    // the list protects the future.
    rl.revoke(bob.cert.serial);
    assert!(rl.check(&bob.cert, 10).is_err());
    assert!(rl.check(&alice.cert, 10).is_ok());
    // Deployment discipline: alice consults the list before answering
    // bob's request; the session never starts.
}

#[test]
fn revocation_list_travels_over_isotp() {
    use dynamic_ecqv::simnet::canfd::BitTiming;
    use dynamic_ecqv::simnet::isotp::{segment, IsoTpConfig, Reassembler};

    let mut rl = RevocationList::new();
    for serial in [3u64, 17, 99, 4096] {
        rl.revoke(serial);
    }
    let payload = rl.to_bytes();
    let config = IsoTpConfig::default();
    let frames = segment(&payload, &config).unwrap();
    let mut r = Reassembler::new();
    let mut out = None;
    for f in &frames {
        out = r.accept(f).unwrap();
    }
    let received = RevocationList::from_bytes(&out.unwrap()).unwrap();
    assert_eq!(received, rl);
    // Distribution cost is trivial next to a handshake.
    let t: u64 = frames
        .iter()
        .map(|f| f.frame_time_ns(&BitTiming::default()))
        .sum();
    assert!(t < 1_000_000, "{t} ns");
}

#[test]
fn devices_adopt_only_newer_lists() {
    let mut current = RevocationList::new();
    current.revoke(1);

    let stale = RevocationList::new(); // sequence 0
    assert!(!current.superseded_by(&stale));

    let mut fresh = current.clone();
    fresh.revoke(2);
    assert!(current.superseded_by(&fresh));

    // Replaying an old (shorter) list must never clear revocations.
    let adopted = if current.superseded_by(&stale) {
        stale
    } else {
        current.clone()
    };
    assert!(adopted.is_revoked(1));
}
