//! Workspace smoke test: the paper's core claim — an STS handshake
//! between two ECQV-provisioned devices yields the same session key on
//! both sides — checked across all four evaluation-board presets and
//! all three execution-schedule variants, with the preset cost model
//! integrating each transcript to a positive wall-clock time.

use dynamic_ecqv::devices::timing::integrate;
use dynamic_ecqv::prelude::*;
use dynamic_ecqv::proto::Role;

#[test]
fn establish_agrees_on_every_device_preset() {
    for (i, preset) in DevicePreset::ALL.into_iter().enumerate() {
        let mut rng = HmacDrbg::from_seed(0x540E + i as u64);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let initiator =
            Credentials::provision(&ca, DeviceId::from_label("initiator"), 0, 3600, &mut rng)
                .expect("provision initiator");
        let responder =
            Credentials::provision(&ca, DeviceId::from_label("responder"), 0, 3600, &mut rng)
                .expect("provision responder");

        for variant in [
            StsVariant::Conventional,
            StsVariant::OptimizationI,
            StsVariant::OptimizationII,
        ] {
            let config = StsConfig { now: 0, variant };
            let session = establish(&initiator, &responder, &config, &mut rng)
                .unwrap_or_else(|e| panic!("establish failed on {preset:?}/{variant:?}: {e:?}"));
            assert_eq!(
                session.initiator_key, session.responder_key,
                "key mismatch on {preset:?}/{variant:?}"
            );

            // The preset's cost model must price both sides of the
            // transcript at a finite positive time.
            let profile = preset.profile();
            for role in [Role::Initiator, Role::Responder] {
                let t = integrate(session.transcript.trace(role), &profile);
                assert!(
                    t.total().is_finite() && t.total() > 0.0,
                    "degenerate timing on {preset:?}/{variant:?}/{role:?}: {}",
                    t.total()
                );
            }
        }
    }
}

#[test]
fn sessions_are_fresh_across_presets() {
    // Same credentials, two handshakes: the dynamic-key property must
    // hold no matter which board the deployment models. Each preset
    // gets its own deployment seed so the four runs differ.
    for (i, preset) in DevicePreset::ALL.into_iter().enumerate() {
        let mut rng = HmacDrbg::from_seed(0xF5E5 + i as u64);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let a = Credentials::provision(&ca, DeviceId::from_label("a"), 0, 3600, &mut rng).unwrap();
        let b = Credentials::provision(&ca, DeviceId::from_label("b"), 0, 3600, &mut rng).unwrap();
        let s1 = establish(&a, &b, &StsConfig::default(), &mut rng).unwrap();
        let s2 = establish(&a, &b, &StsConfig::default(), &mut rng).unwrap();
        assert_ne!(
            s1.initiator_key, s2.initiator_key,
            "stale session key re-derived for {preset:?}"
        );
    }
}
