//! Key-pair generation.

use crate::point::{mul_generator_ct, AffinePoint};
use crate::scalar::Scalar;
use ecq_crypto::zeroize::Zeroize;
use ecq_crypto::HmacDrbg;

/// A P-256 key pair (`public = private · G`).
///
/// All `private·G` computations go through the constant-schedule
/// fixed-base path ([`mul_generator_ct`]). The pair is `Copy` for
/// ergonomic protocol state; holders of long-lived copies (e.g. the
/// STS endpoints) wipe them on drop via the [`Zeroize`] impl, which
/// clears the private scalar.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KeyPair {
    /// The private scalar in `[1, n−1]`.
    pub private: Scalar,
    /// The public point.
    pub public: AffinePoint,
}

impl KeyPair {
    /// Generates a fresh key pair from the DRBG.
    pub fn generate(rng: &mut HmacDrbg) -> Self {
        let private = Scalar::random(rng);
        KeyPair {
            private,
            public: mul_generator_ct(&private),
        }
    }

    /// Rebuilds a key pair from a private scalar.
    pub fn from_private(private: Scalar) -> Self {
        KeyPair {
            private,
            public: mul_generator_ct(&private),
        }
    }

    /// Validates the internal consistency (`public == private·G` and
    /// the public point lies on the curve).
    pub fn is_consistent(&self) -> bool {
        !self.private.is_zero()
            && self.public.is_on_curve()
            && mul_generator_ct(&self.private) == self.public
    }
}

impl Zeroize for KeyPair {
    /// Wipes the private scalar (the public point is public).
    fn zeroize(&mut self) {
        self.private.zeroize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_pairs_are_consistent() {
        let mut rng = HmacDrbg::from_seed(31);
        for _ in 0..3 {
            let kp = KeyPair::generate(&mut rng);
            assert!(kp.is_consistent());
        }
    }

    #[test]
    fn distinct_pairs_from_stream() {
        let mut rng = HmacDrbg::from_seed(32);
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        assert_ne!(a.private, b.private);
        assert_ne!(a.public, b.public);
    }

    #[test]
    fn from_private_reconstructs_public() {
        let mut rng = HmacDrbg::from_seed(33);
        let kp = KeyPair::generate(&mut rng);
        assert_eq!(KeyPair::from_private(kp.private), kp);
    }

    #[test]
    fn inconsistent_pair_detected() {
        let mut rng = HmacDrbg::from_seed(34);
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        let franken = KeyPair {
            private: a.private,
            public: b.public,
        };
        assert!(!franken.is_consistent());
    }

    #[test]
    fn zeroize_clears_private_scalar() {
        let mut rng = HmacDrbg::from_seed(35);
        let mut kp = KeyPair::generate(&mut rng);
        let public = kp.public;
        kp.zeroize();
        assert!(kp.private.is_zero());
        assert_eq!(kp.public, public, "public half is untouched");
    }
}
