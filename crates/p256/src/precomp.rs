//! Fixed-base precomputation for the generator `G`.
//!
//! `k·G` is by far the hottest curve operation in the workspace: every
//! ephemeral STS key (eq. (2)), every ECQV request point, every CA
//! blinding and every key-pair consistency check multiplies the same
//! fixed generator. The generic double-and-add path pays ~252 doublings
//! per call even though the base never changes.
//!
//! Two combs are kept, sized against the per-operation costs of the
//! specialized field backend:
//!
//! * the **4-bit comb** (`table[w][d-1] = d · 16^w · G`, 64 windows ×
//!   15 digits, ~70 KiB) serves the *constant-time* walk. Its lookup
//!   scans every entry of a window, so the scan cost grows with `2^w`
//!   while the savings per extra width bit shrink — with the cheap
//!   specialized additions, 4 bits remains the measured optimum (an
//!   8-bit ct scan would touch 255 entries per masked add and lose
//!   outright);
//! * the **8-bit wide comb** (`d · 256^w · G`, 32 windows × 255
//!   digits, ~560 KiB) serves the *variable-time* walk, which indexes
//!   digits directly: halving the window count halves the additions,
//!   and the scan argument does not apply. ECDSA verification's `u1`
//!   rides this table.
//!
//! Both tables build lazily on first use and are shared process-wide;
//! each build batch-normalizes its Jacobian multiples around a single
//! shared field inversion ([`crate::point::batch_normalize`],
//! Montgomery's trick). A process that only ever runs secret-scalar
//! paths never pays for the wide comb.
//!
//! **Why ECDSA verification still runs two separate multiplications.**
//! The wide comb is also the reason Shamir/Straus loses the
//! verification bake-off, re-measured after the width-5 wNAF rework of
//! `mul_vartime`: separate muls cost one comb-backed `u1·G` (~19 µs
//! here, 31 additions, zero doublings) plus one wNAF `u2·Q` (~100 µs),
//! totalling ~120 µs, while the interleaved Straus pass (~135 µs) must
//! drag `u1·G` through the full 256-doubling ladder because a shared
//! ladder cannot ride a fixed-base comb. wNAF narrowed the gap (it
//! shaved both `u2·Q` and the Straus digit schedule) but did not close
//! it, so [`crate::ecdsa::VerifyStrategy::SeparateMuls`] stays the
//! default and Shamir remains an ablation. Re-run
//! `cargo run --release --bin bench_p256` after touching either path;
//! the `ecdsa_verify_*` rows are the decision record.

use crate::point::{batch_normalize, AffinePoint, JacobianPoint};
use std::sync::OnceLock;

/// Number of 4-bit windows covering a 256-bit scalar (ct comb).
pub const WINDOWS: usize = 64;
/// Non-zero digits per 4-bit window.
pub const DIGITS: usize = 15;

/// Number of 8-bit windows covering a 256-bit scalar (wide comb).
pub const WIDE_WINDOWS: usize = 32;
/// Non-zero digits per 8-bit window.
pub const WIDE_DIGITS: usize = 255;

/// The constant-time comb: `table[w][d-1] = d · 16^w · G`.
pub struct GeneratorTable {
    windows: Vec<[AffinePoint; DIGITS]>,
}

impl GeneratorTable {
    fn build() -> Self {
        GeneratorTable {
            windows: build_comb::<DIGITS>(WINDOWS),
        }
    }

    /// The precomputed point `d · 16^w · G` (`d ∈ [1, 15]`).
    ///
    /// Indexing by a secret digit leaks it through the data cache; the
    /// constant-time fixed-base walk uses [`Self::window`] with a full
    /// masked scan instead.
    #[inline]
    pub fn entry(&self, window: usize, digit: u8) -> &AffinePoint {
        debug_assert!((1..=DIGITS as u8).contains(&digit));
        &self.windows[window][digit as usize - 1]
    }

    /// All 15 entries of one window (`window[d-1] = d · 16^w · G`), for
    /// the constant-time scan of [`crate::ct::lookup_affine`].
    #[inline]
    pub fn window(&self, window: usize) -> &[AffinePoint; DIGITS] {
        &self.windows[window]
    }
}

/// The wide variable-time comb: `table[w][d-1] = d · 256^w · G`.
pub struct WideGeneratorTable {
    windows: Vec<[AffinePoint; WIDE_DIGITS]>,
}

impl WideGeneratorTable {
    fn build() -> Self {
        WideGeneratorTable {
            windows: build_comb::<WIDE_DIGITS>(WIDE_WINDOWS),
        }
    }

    /// The precomputed point `d · 256^w · G` (`d ∈ [1, 255]`).
    ///
    /// Direct indexing — only for *public* scalar digits (the vartime
    /// fixed-base walk).
    #[inline]
    pub fn entry(&self, window: usize, digit: u8) -> &AffinePoint {
        debug_assert!(digit >= 1);
        &self.windows[window][digit as usize - 1]
    }
}

/// Builds a comb of `windows` windows with `D` nonzero digits each:
/// `out[w][d-1] = d · (D+1)^w · G`, normalized to affine around one
/// shared inversion.
fn build_comb<const D: usize>(windows: usize) -> Vec<[AffinePoint; D]> {
    let mut jac: Vec<JacobianPoint> = Vec::with_capacity(windows * D);
    let mut base = JacobianPoint::from_affine(&AffinePoint::generator());
    for _ in 0..windows {
        let start = jac.len();
        jac.push(base); // 1·base
        for d in 2..=D {
            let next = if d % 2 == 0 {
                jac[start + d / 2 - 1].double()
            } else {
                jac[start + d - 2].add(&base)
            };
            jac.push(next);
        }
        // (D+1)·base = 2·(((D+1)/2)·base) feeds the next window.
        base = jac[start + D.div_ceil(2) - 1].double();
    }
    let affine = batch_normalize(&jac);
    affine
        .chunks_exact(D)
        .map(|chunk| {
            let mut w = [AffinePoint::identity(); D];
            w.copy_from_slice(chunk);
            w
        })
        .collect()
}

/// The shared process-wide ct comb, built on first use.
pub fn generator_table() -> &'static GeneratorTable {
    static TABLE: OnceLock<GeneratorTable> = OnceLock::new();
    TABLE.get_or_init(GeneratorTable::build)
}

/// The shared process-wide wide comb, built on first use.
pub fn generator_table_wide() -> &'static WideGeneratorTable {
    static TABLE: OnceLock<WideGeneratorTable> = OnceLock::new();
    TABLE.get_or_init(WideGeneratorTable::build)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Scalar;

    fn digit_scalar(d: u64, radix: u64, w: usize) -> Scalar {
        let mut scalar = Scalar::from_u64(d);
        for _ in 0..w {
            scalar = scalar.mul(&Scalar::from_u64(radix));
        }
        scalar
    }

    #[test]
    fn table_entries_match_generic_mul() {
        let g = AffinePoint::generator();
        let table = generator_table();
        // Spot-check digits across several windows against the generic
        // scalar multiplication: d · 16^w.
        for &(w, d) in &[(0usize, 1u8), (0, 15), (1, 1), (1, 9), (7, 3), (63, 15)] {
            assert_eq!(
                *table.entry(w, d),
                g.mul_vartime(&digit_scalar(d as u64, 16, w)),
                "window {w} digit {d}"
            );
        }
    }

    #[test]
    fn wide_table_entries_match_generic_mul() {
        let g = AffinePoint::generator();
        let table = generator_table_wide();
        for &(w, d) in &[
            (0usize, 1u8),
            (0, 255),
            (1, 1),
            (1, 254),
            (7, 3),
            (15, 129),
            (31, 255),
        ] {
            assert_eq!(
                *table.entry(w, d),
                g.mul_vartime(&digit_scalar(d as u64, 256, w)),
                "window {w} digit {d}"
            );
        }
    }

    #[test]
    fn every_entry_is_on_curve() {
        let table = generator_table();
        for w in 0..WINDOWS {
            for d in 1..=DIGITS as u8 {
                let p = table.entry(w, d);
                assert!(p.is_on_curve() && !p.infinity);
            }
        }
    }

    #[test]
    fn wide_entries_sampled_on_curve() {
        // The full wide comb has 8160 entries; a strided sample keeps
        // the test fast while still covering every window.
        let table = generator_table_wide();
        for w in 0..WIDE_WINDOWS {
            for d in [1u8, 2, 17, 128, 255] {
                let p = table.entry(w, d);
                assert!(p.is_on_curve() && !p.infinity, "window {w} digit {d}");
            }
        }
    }
}
