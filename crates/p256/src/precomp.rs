//! Fixed-base precomputation for the generator `G`.
//!
//! `k·G` is by far the hottest curve operation in the workspace: every
//! ephemeral STS key (eq. (2)), every ECQV request point, every CA
//! blinding and every key-pair consistency check multiplies the same
//! fixed generator. The generic double-and-add path pays ~252 doublings
//! per call even though the base never changes.
//!
//! This module trades ~70 KiB of process-lifetime memory for all of
//! those doublings: a one-time table stores every multiple
//! `d · 16^w · G` for window `w ∈ [0, 64)` and digit `d ∈ [1, 15]`, so
//! a fixed-base multiplication is at most 64 mixed additions and a
//! single final normalization — no doublings at all. The table itself
//! is normalized to affine with one shared field inversion
//! ([`crate::point::batch_normalize`], Montgomery's trick).
//!
//! The table is built lazily on first use and shared process-wide; the
//! build costs ~1000 group operations plus one inversion, amortized
//! across every subsequent `k·G` in the process (a fleet enrolling
//! thousands of devices performs hundreds of thousands of them).

use crate::point::{batch_normalize, AffinePoint, JacobianPoint};
use std::sync::OnceLock;

/// Number of 4-bit windows covering a 256-bit scalar.
pub const WINDOWS: usize = 64;
/// Non-zero digits per 4-bit window.
pub const DIGITS: usize = 15;

/// The precomputed fixed-base table: `table[w][d-1] = d · 16^w · G`.
pub struct GeneratorTable {
    windows: Vec<[AffinePoint; DIGITS]>,
}

impl GeneratorTable {
    fn build() -> Self {
        // Multiples are accumulated in Jacobian coordinates and
        // normalized in one batch at the end.
        let mut jac: Vec<JacobianPoint> = Vec::with_capacity(WINDOWS * DIGITS);
        let mut base = JacobianPoint::from_affine(&AffinePoint::generator());
        for _ in 0..WINDOWS {
            let start = jac.len();
            jac.push(base); // 1·base
            for d in 2..=DIGITS {
                let next = if d % 2 == 0 {
                    jac[start + d / 2 - 1].double()
                } else {
                    jac[start + d - 2].add(&base)
                };
                jac.push(next);
            }
            // 16·base = 2·(8·base) feeds the next window.
            base = jac[start + 7].double();
        }
        let affine = batch_normalize(&jac);
        let windows = affine
            .chunks_exact(DIGITS)
            .map(|chunk| {
                let mut w = [AffinePoint::identity(); DIGITS];
                w.copy_from_slice(chunk);
                w
            })
            .collect();
        GeneratorTable { windows }
    }

    /// The precomputed point `d · 16^w · G` (`d ∈ [1, 15]`).
    ///
    /// Indexing by a secret digit leaks it through the data cache; the
    /// constant-time fixed-base walk uses [`Self::window`] with a full
    /// masked scan instead.
    #[inline]
    pub fn entry(&self, window: usize, digit: u8) -> &AffinePoint {
        debug_assert!((1..=DIGITS as u8).contains(&digit));
        &self.windows[window][digit as usize - 1]
    }

    /// All 15 entries of one window (`window[d-1] = d · 16^w · G`), for
    /// the constant-time scan of [`crate::ct::lookup_affine`].
    #[inline]
    pub fn window(&self, window: usize) -> &[AffinePoint; DIGITS] {
        &self.windows[window]
    }
}

/// The shared process-wide table, built on first use.
pub fn generator_table() -> &'static GeneratorTable {
    static TABLE: OnceLock<GeneratorTable> = OnceLock::new();
    TABLE.get_or_init(GeneratorTable::build)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scalar::Scalar;

    #[test]
    fn table_entries_match_generic_mul() {
        let g = AffinePoint::generator();
        let table = generator_table();
        // Spot-check digits across several windows against the generic
        // scalar multiplication: d · 16^w.
        for &(w, d) in &[(0usize, 1u8), (0, 15), (1, 1), (1, 9), (7, 3), (63, 15)] {
            let mut scalar = Scalar::from_u64(d as u64);
            for _ in 0..w {
                scalar = scalar.mul(&Scalar::from_u64(16));
            }
            assert_eq!(
                *table.entry(w, d),
                g.mul_vartime(&scalar),
                "window {w} digit {d}"
            );
        }
    }

    #[test]
    fn every_entry_is_on_curve() {
        let table = generator_table();
        for w in 0..WINDOWS {
            for d in 1..=DIGITS as u8 {
                let p = table.entry(w, d);
                assert!(p.is_on_curve() && !p.infinity);
            }
        }
    }
}
