//! SEC1 point encodings.
//!
//! The ECQV minimal certificate of the paper (Table II: `Cert(101)`)
//! carries the public reconstruction point in *compressed* form
//! (33 bytes); the STS ephemeral points travel as raw 64-byte `x‖y`
//! pairs (`XG(64)`), matching the paper's overhead accounting.

use crate::field::FieldElement;
use crate::point::AffinePoint;
use crate::CurveError;

/// Length of a compressed SEC1 point encoding.
pub const COMPRESSED_LEN: usize = 33;
/// Length of an uncompressed SEC1 point encoding (with the 0x04 tag).
pub const UNCOMPRESSED_LEN: usize = 65;
/// Length of a raw `x‖y` encoding (no tag), as used for `XG` on the wire.
pub const RAW_LEN: usize = 64;

/// Encodes a point in compressed SEC1 form (`02/03 ‖ x`).
///
/// # Panics
///
/// Panics on the point at infinity, which has no SEC1 encoding here;
/// protocol code never legitimately transmits it.
pub fn encode_compressed(p: &AffinePoint) -> [u8; COMPRESSED_LEN] {
    assert!(!p.infinity, "cannot encode the point at infinity");
    let mut out = [0u8; COMPRESSED_LEN];
    out[0] = if p.y.is_odd() { 0x03 } else { 0x02 };
    out[1..].copy_from_slice(&p.x.to_be_bytes());
    out
}

/// Decodes a compressed SEC1 point, recomputing `y` via a square root.
///
/// # Errors
///
/// [`CurveError::InvalidPoint`] on a bad tag, out-of-range `x`, or an
/// `x` with no corresponding curve point.
pub fn decode_compressed(bytes: &[u8]) -> Result<AffinePoint, CurveError> {
    if bytes.len() != COMPRESSED_LEN || (bytes[0] != 0x02 && bytes[0] != 0x03) {
        return Err(CurveError::InvalidPoint);
    }
    let mut xb = [0u8; 32];
    xb.copy_from_slice(&bytes[1..]);
    let x = FieldElement::from_be_bytes(&xb).ok_or(CurveError::InvalidPoint)?;
    // y² = x³ − 3x + b
    let rhs = x
        .square()
        .mul(&x)
        .sub(&x.double().add(&x))
        .add(&FieldElement::curve_b());
    let mut y = rhs.sqrt().ok_or(CurveError::InvalidPoint)?;
    let want_odd = bytes[0] == 0x03;
    if y.is_odd() != want_odd {
        y = y.neg();
    }
    AffinePoint::from_coords(x, y).ok_or(CurveError::InvalidPoint)
}

/// Encodes a point in uncompressed SEC1 form (`04 ‖ x ‖ y`).
///
/// # Panics
///
/// Panics on the point at infinity.
pub fn encode_uncompressed(p: &AffinePoint) -> [u8; UNCOMPRESSED_LEN] {
    assert!(!p.infinity, "cannot encode the point at infinity");
    let mut out = [0u8; UNCOMPRESSED_LEN];
    out[0] = 0x04;
    out[1..33].copy_from_slice(&p.x.to_be_bytes());
    out[33..].copy_from_slice(&p.y.to_be_bytes());
    out
}

/// Decodes an uncompressed SEC1 point, validating the curve equation.
///
/// # Errors
///
/// [`CurveError::InvalidPoint`] on malformed input or off-curve points.
pub fn decode_uncompressed(bytes: &[u8]) -> Result<AffinePoint, CurveError> {
    if bytes.len() != UNCOMPRESSED_LEN || bytes[0] != 0x04 {
        return Err(CurveError::InvalidPoint);
    }
    decode_raw(&bytes[1..])
}

/// Encodes a point as a raw 64-byte `x ‖ y` pair (the paper's `XG(64)`).
///
/// # Panics
///
/// Panics on the point at infinity.
pub fn encode_raw(p: &AffinePoint) -> [u8; RAW_LEN] {
    assert!(!p.infinity, "cannot encode the point at infinity");
    let mut out = [0u8; RAW_LEN];
    out[..32].copy_from_slice(&p.x.to_be_bytes());
    out[32..].copy_from_slice(&p.y.to_be_bytes());
    out
}

/// Decodes a raw 64-byte `x ‖ y` pair, validating the curve equation.
///
/// # Errors
///
/// [`CurveError::InvalidPoint`] on malformed input or off-curve points.
pub fn decode_raw(bytes: &[u8]) -> Result<AffinePoint, CurveError> {
    if bytes.len() != RAW_LEN {
        return Err(CurveError::InvalidPoint);
    }
    let mut xb = [0u8; 32];
    let mut yb = [0u8; 32];
    xb.copy_from_slice(&bytes[..32]);
    yb.copy_from_slice(&bytes[32..]);
    let x = FieldElement::from_be_bytes(&xb).ok_or(CurveError::InvalidPoint)?;
    let y = FieldElement::from_be_bytes(&yb).ok_or(CurveError::InvalidPoint)?;
    AffinePoint::from_coords(x, y).ok_or(CurveError::InvalidPoint)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::mul_generator_vartime;
    use crate::scalar::Scalar;
    use ecq_crypto::HmacDrbg;

    #[test]
    fn compressed_roundtrip() {
        let mut rng = HmacDrbg::from_seed(21);
        for _ in 0..4 {
            let p = mul_generator_vartime(&Scalar::random(&mut rng));
            let enc = encode_compressed(&p);
            let dec = decode_compressed(&enc).unwrap();
            assert_eq!(dec, p);
        }
    }

    #[test]
    fn uncompressed_and_raw_roundtrip() {
        let p = mul_generator_vartime(&Scalar::from_u64(77));
        assert_eq!(decode_uncompressed(&encode_uncompressed(&p)).unwrap(), p);
        assert_eq!(decode_raw(&encode_raw(&p)).unwrap(), p);
    }

    #[test]
    fn parity_tag_distinguishes_y() {
        let p = mul_generator_vartime(&Scalar::from_u64(5));
        let enc_p = encode_compressed(&p);
        let enc_neg = encode_compressed(&p.neg());
        assert_ne!(enc_p[0], enc_neg[0]);
        assert_eq!(enc_p[1..], enc_neg[1..]);
    }

    #[test]
    fn rejects_bad_encodings() {
        assert!(decode_compressed(&[0u8; 33]).is_err()); // bad tag
        assert!(decode_compressed(&[0x02; 10]).is_err()); // bad length
        assert!(decode_uncompressed(&[0u8; 65]).is_err());
        assert!(decode_raw(&[0u8; 64]).is_err()); // (0,0) not on curve
        assert!(decode_raw(&[0u8; 63]).is_err());
        // x >= p must be rejected.
        let mut bad = [0xffu8; 33];
        bad[0] = 0x02;
        assert!(decode_compressed(&bad).is_err());
    }

    #[test]
    fn rejects_non_residue_x() {
        // Find an x with no curve point: x = 5 happens to be one for
        // P-256 (x³−3x+b is a non-residue); verify decode fails cleanly
        // for at least one small x.
        let mut rejected = 0;
        for x in 1u8..20 {
            let mut enc = [0u8; 33];
            enc[0] = 0x02;
            enc[32] = x;
            if decode_compressed(&enc).is_err() {
                rejected += 1;
            }
        }
        assert!(rejected > 0, "some small x must be off-curve");
    }

    #[test]
    #[should_panic(expected = "infinity")]
    fn encoding_infinity_panics() {
        encode_compressed(&AffinePoint::identity());
    }
}
