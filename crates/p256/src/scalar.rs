//! Arithmetic mod `n`, the P-256 group order.
//!
//! Scalars are the exponents of the group: private keys, ECDSA nonces,
//! the ECQV hash values `e = H_n(Cert)` and the reconstruction data `r`.
//! Like [`crate::field`], the hot operations run on the specialized
//! fixed-constant backend ([`crate::backend`]) — the order limbs and
//! `n0` fold in at compile time and every reduction is branch-free.
//! Inversion walks a fixed 4-bit window chain over the public constant
//! exponent `n − 2` (252 squarings + 69 multiplications, the same
//! schedule for every input) instead of generic bit-scanning
//! square-and-multiply.

use crate::backend::{self, MontParams};
use crate::u256::U256;
use crate::CurveError;
use ecq_crypto::HmacDrbg;
use std::sync::OnceLock;

/// The P-256 group order, big-endian hex.
pub const N_HEX: &str = "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551";

/// The group order as little-endian limbs.
const N_LIMBS: [u64; 4] = [
    0xf3b9_cac2_fc63_2551,
    0xbce6_faad_a717_9e84,
    0xffff_ffff_ffff_ffff,
    0xffff_ffff_0000_0000,
];

/// `n − 2`, the Fermat inversion exponent (public, fixed).
const N_MINUS_2: U256 = U256::from_limbs([
    0xf3b9_cac2_fc63_254f,
    0xbce6_faad_a717_9e84,
    0xffff_ffff_ffff_ffff,
    0xffff_ffff_0000_0000,
]);

/// Compile-time Montgomery parameters for the order field.
const N_PARAMS: MontParams = MontParams::new(N_LIMBS);

/// Counters for the scalar-operation schedule (see `field::fe_ops`);
/// the inversion ct test asserts the window chain is input-independent.
/// Compiled for this crate's tests and under the `schedule-counters`
/// feature for cross-crate checks.
#[cfg(any(test, feature = "schedule-counters"))]
pub mod scalar_ops {
    use std::cell::Cell;

    thread_local! {
        static MULS: Cell<u64> = const { Cell::new(0) };
        static SQUARES: Cell<u64> = const { Cell::new(0) };
    }

    /// Snapshot of this thread's scalar-operation counters.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Counts {
        /// Multiplications recorded on this thread.
        pub muls: u64,
        /// Dedicated squarings recorded on this thread.
        pub squares: u64,
    }

    /// Counts one scalar multiplication on this thread.
    pub fn record_mul() {
        MULS.with(|c| c.set(c.get() + 1));
    }
    /// Counts one scalar squaring on this thread.
    pub fn record_square() {
        SQUARES.with(|c| c.set(c.get() + 1));
    }

    /// Runs `f` with zeroed counters and returns its result plus the
    /// scalar operations it performed on this thread.
    pub fn measure<R>(f: impl FnOnce() -> R) -> (R, Counts) {
        MULS.with(|c| c.set(0));
        SQUARES.with(|c| c.set(0));
        let result = f();
        let counts = Counts {
            muls: MULS.with(Cell::get),
            squares: SQUARES.with(Cell::get),
        };
        (result, counts)
    }
}

/// A scalar mod `n` in Montgomery form.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct Scalar(U256);

impl core::fmt::Debug for Scalar {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Scalars are usually secret; show only a short fingerprint.
        let bytes = self.to_be_bytes();
        write!(f, "Scalar(…{:02x}{:02x})", bytes[30], bytes[31])
    }
}

impl Scalar {
    /// The scalar 0.
    pub fn zero() -> Self {
        Scalar(U256::ZERO)
    }

    /// The scalar 1.
    pub fn one() -> Self {
        Scalar(U256::from_limbs(N_PARAMS.r1))
    }

    /// The group order `n` as an integer.
    pub fn order() -> U256 {
        U256::from_limbs(N_LIMBS)
    }

    /// Builds from a canonical integer `< n`; `None` otherwise.
    pub fn from_canonical(v: &U256) -> Option<Self> {
        if *v >= Self::order() {
            None
        } else {
            Some(Scalar(U256::from_limbs(backend::mont_mul(
                &v.limbs(),
                &N_PARAMS.r2,
                &N_PARAMS,
            ))))
        }
    }

    /// Builds from an arbitrary 256-bit integer, reducing mod n.
    pub fn from_reduced(v: &U256) -> Self {
        let reduced = backend::reduce_once(&v.limbs(), &N_PARAMS);
        Scalar(U256::from_limbs(backend::mont_mul(
            &reduced,
            &N_PARAMS.r2,
            &N_PARAMS,
        )))
    }

    /// Builds from a 512-bit integer, reducing mod n (for wide hashes).
    /// Runs a Montgomery-based wide reduction — the bit-by-bit
    /// [`crate::mont::MontCtx::reduce_wide`] stays as the oracle only.
    pub fn from_wide(wide: &[u64; 8]) -> Self {
        let canonical = backend::reduce_wide(wide, &N_PARAMS);
        Scalar(U256::from_limbs(backend::mont_mul(
            &canonical,
            &N_PARAMS.r2,
            &N_PARAMS,
        )))
    }

    /// Builds from a small integer.
    pub fn from_u64(v: u64) -> Self {
        Scalar(U256::from_limbs(backend::mont_mul(
            &[v, 0, 0, 0],
            &N_PARAMS.r2,
            &N_PARAMS,
        )))
    }

    /// Parses 32 big-endian bytes as a canonical scalar.
    ///
    /// # Errors
    ///
    /// [`CurveError::InvalidScalar`] when the value is `>= n`.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Result<Self, CurveError> {
        Self::from_canonical(&U256::from_be_bytes(bytes)).ok_or(CurveError::InvalidScalar)
    }

    /// Parses 32 big-endian bytes, reducing mod n (hash-to-scalar; this
    /// is the paper's `Hash(Cert_X)` interpreted as an integer).
    pub fn from_be_bytes_reduced(bytes: &[u8; 32]) -> Self {
        Self::from_reduced(&U256::from_be_bytes(bytes))
    }

    /// Samples a uniformly random nonzero scalar in `[1, n-1]`
    /// (the paper's eq. (2): `X ∈_R [1, …, n−1]`).
    pub fn random(rng: &mut HmacDrbg) -> Self {
        loop {
            let candidate = U256::from_be_bytes(&rng.bytes32());
            if candidate.is_zero() {
                continue;
            }
            if let Some(s) = Self::from_canonical(&candidate) {
                if !s.is_zero() {
                    return s;
                }
            }
        }
    }

    /// Returns the canonical integer value.
    pub fn to_canonical(self) -> U256 {
        U256::from_limbs(backend::mont_mul(&self.0.limbs(), &[1, 0, 0, 0], &N_PARAMS))
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        self.to_canonical().to_be_bytes()
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// Addition mod n.
    pub fn add(&self, rhs: &Self) -> Self {
        Scalar(U256::from_limbs(backend::add_mod(
            &self.0.limbs(),
            &rhs.0.limbs(),
            &N_PARAMS,
        )))
    }

    /// Subtraction mod n.
    pub fn sub(&self, rhs: &Self) -> Self {
        Scalar(U256::from_limbs(backend::sub_mod(
            &self.0.limbs(),
            &rhs.0.limbs(),
            &N_PARAMS,
        )))
    }

    /// Negation mod n.
    pub fn neg(&self) -> Self {
        Scalar(U256::from_limbs(backend::neg_mod(
            &self.0.limbs(),
            &N_PARAMS,
        )))
    }

    /// Multiplication mod n.
    pub fn mul(&self, rhs: &Self) -> Self {
        #[cfg(any(test, feature = "schedule-counters"))]
        scalar_ops::record_mul();
        Scalar(U256::from_limbs(backend::mont_mul(
            &self.0.limbs(),
            &rhs.0.limbs(),
            &N_PARAMS,
        )))
    }

    /// Squaring mod n (dedicated pass, cheaper than `mul(self, self)`).
    pub fn square(&self) -> Self {
        #[cfg(any(test, feature = "schedule-counters"))]
        scalar_ops::record_square();
        Scalar(U256::from_limbs(backend::mont_sqr(
            &self.0.limbs(),
            &N_PARAMS,
        )))
    }

    /// Multiplicative inverse mod n via Fermat's little theorem with a
    /// fixed 4-bit window chain over the constant exponent `n − 2`.
    ///
    /// The exponent is public, so its zero windows may be skipped
    /// without leaking anything about `self`; what matters for
    /// constant time is that the schedule never depends on the *base*,
    /// and it cannot — the window digits are compile-time constants.
    /// Every call costs exactly 252 squarings and 69 multiplications
    /// (14 table + 55 window), asserted by the ct schedule test.
    ///
    /// # Panics
    ///
    /// Panics when `self` is zero.
    pub fn invert(&self) -> Self {
        assert!(!self.0.is_zero(), "attempted to invert zero");
        // table[d-1] = self^d for d ∈ [1, 15].
        let mut table = [*self; 15];
        for i in 1..15 {
            table[i] = table[i - 1].mul(self);
        }
        // Walk the 64 window digits of n − 2 from the top; the leading
        // digit (0xf) seeds the accumulator.
        let mut acc = table[N_MINUS_2.nibble(63) as usize - 1];
        for w in (0..63).rev() {
            acc = acc.square().square().square().square();
            let d = N_MINUS_2.nibble(w);
            if d != 0 {
                acc = acc.mul(&table[d as usize - 1]);
            }
        }
        acc
    }

    /// Whether the canonical value is in the "high" half (`> n/2`);
    /// used for low-s ECDSA normalization.
    pub fn is_high(&self) -> bool {
        static HALF: OnceLock<U256> = OnceLock::new();
        let half = HALF.get_or_init(|| Scalar::order().shr1());
        self.to_canonical() > *half
    }
}

impl ecq_crypto::zeroize::Zeroize for Scalar {
    fn zeroize(&mut self) {
        ecq_crypto::zeroize::Zeroize::zeroize(&mut self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_identities() {
        let a = Scalar::from_u64(987654321);
        assert_eq!(a.add(&Scalar::zero()), a);
        assert_eq!(a.mul(&Scalar::one()), a);
        assert_eq!(a.sub(&a), Scalar::zero());
        assert_eq!(a.mul(&a.invert()), Scalar::one());
    }

    #[test]
    fn limbs_hex_agree() {
        assert_eq!(Scalar::order(), U256::from_be_hex(N_HEX));
        assert_eq!(N_MINUS_2, Scalar::order().wrapping_sub(&U256::from_u64(2)));
    }

    #[test]
    fn square_matches_mul() {
        let mut a = Scalar::from_u64(3);
        for _ in 0..32 {
            assert_eq!(a.square(), a.mul(&a));
            a = a.square().add(&Scalar::one());
        }
    }

    #[test]
    fn range_validation() {
        let n = U256::from_be_hex(N_HEX);
        assert!(Scalar::from_canonical(&n).is_none());
        assert!(Scalar::from_canonical(&n.wrapping_sub(&U256::ONE)).is_some());
        assert_eq!(
            Scalar::from_be_bytes(&[0xff; 32]),
            Err(CurveError::InvalidScalar)
        );
    }

    #[test]
    fn reduction_wraps() {
        let n = U256::from_be_hex(N_HEX);
        let over = n.wrapping_add(&U256::from_u64(5));
        assert_eq!(Scalar::from_reduced(&over), Scalar::from_u64(5));
        let bytes = over.to_be_bytes();
        assert_eq!(Scalar::from_be_bytes_reduced(&bytes), Scalar::from_u64(5));
    }

    #[test]
    fn random_scalars_nonzero_distinct() {
        let mut rng = HmacDrbg::from_seed(11);
        let a = Scalar::random(&mut rng);
        let b = Scalar::random(&mut rng);
        assert!(!a.is_zero());
        assert!(!b.is_zero());
        assert_ne!(a, b);
    }

    #[test]
    fn high_low_halves() {
        assert!(!Scalar::from_u64(1).is_high());
        assert!(Scalar::from_u64(1).neg().is_high()); // n-1 is high
    }

    #[test]
    fn wide_reduction_consistency() {
        // (n-1)^2 mod n == 1
        let nm1 = Scalar::from_u64(1).neg();
        let wide = nm1.to_canonical().widening_mul(&nm1.to_canonical());
        assert_eq!(Scalar::from_wide(&wide), Scalar::one());
        // All-ones 512-bit value against the bit-by-bit oracle.
        let ctx = crate::mont::MontCtx::new(Scalar::order());
        let ones = [u64::MAX; 8];
        assert_eq!(
            Scalar::from_wide(&ones).to_canonical(),
            ctx.reduce_wide(&ones)
        );
    }

    #[test]
    fn inversion_schedule_is_input_independent() {
        // 252 squarings + 69 multiplications, for every base.
        let mut schedules = Vec::new();
        for v in [1u64, 2, 0xdead_beef, u64::MAX] {
            let a = Scalar::from_u64(v);
            let (inv, counts) = scalar_ops::measure(|| a.invert());
            assert_eq!(a.mul(&inv), Scalar::one(), "v={v}");
            assert_eq!(counts.squares, 252, "v={v}: {counts:?}");
            assert_eq!(counts.muls, 69, "v={v}: {counts:?}");
            schedules.push(counts);
        }
        let (_, counts) = scalar_ops::measure(|| Scalar::from_u64(1).neg().invert());
        schedules.push(counts);
        assert!(schedules.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn debug_shows_fingerprint_only() {
        let s = Scalar::from_u64(0xabcd);
        let dbg = format!("{s:?}");
        assert!(dbg.starts_with("Scalar(…"));
        assert!(dbg.len() < 20);
    }
}
