//! Arithmetic mod `n`, the P-256 group order.
//!
//! Scalars are the exponents of the group: private keys, ECDSA nonces,
//! the ECQV hash values `e = H_n(Cert)` and the reconstruction data `r`.

use crate::mont::MontCtx;
use crate::u256::U256;
use crate::CurveError;
use ecq_crypto::HmacDrbg;
use std::sync::OnceLock;

/// The P-256 group order, big-endian hex.
pub const N_HEX: &str = "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551";

fn ctx() -> &'static MontCtx {
    static CTX: OnceLock<MontCtx> = OnceLock::new();
    CTX.get_or_init(|| MontCtx::new(U256::from_be_hex(N_HEX)))
}

/// A scalar mod `n` in Montgomery form.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct Scalar(U256);

impl core::fmt::Debug for Scalar {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Scalars are usually secret; show only a short fingerprint.
        let bytes = self.to_be_bytes();
        write!(f, "Scalar(…{:02x}{:02x})", bytes[30], bytes[31])
    }
}

impl Scalar {
    /// The scalar 0.
    pub fn zero() -> Self {
        Scalar(U256::ZERO)
    }

    /// The scalar 1.
    pub fn one() -> Self {
        Scalar(ctx().r1)
    }

    /// The group order `n` as an integer.
    pub fn order() -> U256 {
        ctx().m
    }

    /// Builds from a canonical integer `< n`; `None` otherwise.
    pub fn from_canonical(v: &U256) -> Option<Self> {
        if *v >= ctx().m {
            None
        } else {
            Some(Scalar(ctx().to_mont(v)))
        }
    }

    /// Builds from an arbitrary 256-bit integer, reducing mod n.
    pub fn from_reduced(v: &U256) -> Self {
        Scalar(ctx().to_mont(&ctx().reduce(v)))
    }

    /// Builds from a 512-bit integer, reducing mod n (for wide hashes).
    pub fn from_wide(wide: &[u64; 8]) -> Self {
        Scalar(ctx().to_mont(&ctx().reduce_wide(wide)))
    }

    /// Builds from a small integer.
    pub fn from_u64(v: u64) -> Self {
        Scalar(ctx().to_mont(&U256::from_u64(v)))
    }

    /// Parses 32 big-endian bytes as a canonical scalar.
    ///
    /// # Errors
    ///
    /// [`CurveError::InvalidScalar`] when the value is `>= n`.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Result<Self, CurveError> {
        Self::from_canonical(&U256::from_be_bytes(bytes)).ok_or(CurveError::InvalidScalar)
    }

    /// Parses 32 big-endian bytes, reducing mod n (hash-to-scalar; this
    /// is the paper's `Hash(Cert_X)` interpreted as an integer).
    pub fn from_be_bytes_reduced(bytes: &[u8; 32]) -> Self {
        Self::from_reduced(&U256::from_be_bytes(bytes))
    }

    /// Samples a uniformly random nonzero scalar in `[1, n-1]`
    /// (the paper's eq. (2): `X ∈_R [1, …, n−1]`).
    pub fn random(rng: &mut HmacDrbg) -> Self {
        loop {
            let candidate = U256::from_be_bytes(&rng.bytes32());
            if candidate.is_zero() {
                continue;
            }
            if let Some(s) = Self::from_canonical(&candidate) {
                if !s.is_zero() {
                    return s;
                }
            }
        }
    }

    /// Returns the canonical integer value.
    pub fn to_canonical(self) -> U256 {
        ctx().from_mont(&self.0)
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        self.to_canonical().to_be_bytes()
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// Addition mod n.
    pub fn add(&self, rhs: &Self) -> Self {
        Scalar(ctx().add(&self.0, &rhs.0))
    }

    /// Subtraction mod n.
    pub fn sub(&self, rhs: &Self) -> Self {
        Scalar(ctx().sub(&self.0, &rhs.0))
    }

    /// Negation mod n.
    pub fn neg(&self) -> Self {
        Scalar(ctx().neg(&self.0))
    }

    /// Multiplication mod n.
    pub fn mul(&self, rhs: &Self) -> Self {
        Scalar(ctx().mont_mul(&self.0, &rhs.0))
    }

    /// Multiplicative inverse mod n.
    ///
    /// # Panics
    ///
    /// Panics when `self` is zero.
    pub fn invert(&self) -> Self {
        Scalar(ctx().mont_inv(&self.0))
    }

    /// Whether the canonical value is in the "high" half (`> n/2`);
    /// used for low-s ECDSA normalization.
    pub fn is_high(&self) -> bool {
        static HALF: OnceLock<U256> = OnceLock::new();
        let half = HALF.get_or_init(|| ctx().m.shr1());
        self.to_canonical() > *half
    }
}

impl ecq_crypto::zeroize::Zeroize for Scalar {
    fn zeroize(&mut self) {
        ecq_crypto::zeroize::Zeroize::zeroize(&mut self.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_identities() {
        let a = Scalar::from_u64(987654321);
        assert_eq!(a.add(&Scalar::zero()), a);
        assert_eq!(a.mul(&Scalar::one()), a);
        assert_eq!(a.sub(&a), Scalar::zero());
        assert_eq!(a.mul(&a.invert()), Scalar::one());
    }

    #[test]
    fn range_validation() {
        let n = U256::from_be_hex(N_HEX);
        assert!(Scalar::from_canonical(&n).is_none());
        assert!(Scalar::from_canonical(&n.wrapping_sub(&U256::ONE)).is_some());
        assert_eq!(
            Scalar::from_be_bytes(&[0xff; 32]),
            Err(CurveError::InvalidScalar)
        );
    }

    #[test]
    fn reduction_wraps() {
        let n = U256::from_be_hex(N_HEX);
        let over = n.wrapping_add(&U256::from_u64(5));
        assert_eq!(Scalar::from_reduced(&over), Scalar::from_u64(5));
        let bytes = over.to_be_bytes();
        assert_eq!(Scalar::from_be_bytes_reduced(&bytes), Scalar::from_u64(5));
    }

    #[test]
    fn random_scalars_nonzero_distinct() {
        let mut rng = HmacDrbg::from_seed(11);
        let a = Scalar::random(&mut rng);
        let b = Scalar::random(&mut rng);
        assert!(!a.is_zero());
        assert!(!b.is_zero());
        assert_ne!(a, b);
    }

    #[test]
    fn high_low_halves() {
        assert!(!Scalar::from_u64(1).is_high());
        assert!(Scalar::from_u64(1).neg().is_high()); // n-1 is high
    }

    #[test]
    fn wide_reduction_consistency() {
        // (n-1)^2 mod n == 1
        let nm1 = Scalar::from_u64(1).neg();
        let wide = nm1.to_canonical().widening_mul(&nm1.to_canonical());
        assert_eq!(Scalar::from_wide(&wide), Scalar::one());
    }

    #[test]
    fn debug_shows_fingerprint_only() {
        let s = Scalar::from_u64(0xabcd);
        let dbg = format!("{s:?}");
        assert!(dbg.starts_with("Scalar(…"));
        assert!(dbg.len() < 20);
    }
}
