//! P-256 group operations.
//!
//! Points are manipulated in Jacobian coordinates (`x = X/Z²`,
//! `y = Y/Z³`) with `a = −3` folded into the doubling formula, exactly
//! as micro-ecc does. Scalar multiplication comes in two explicitly
//! named families:
//!
//! * **`*_ct`** — constant group-operation schedule, for secret
//!   scalars: [`mul_generator_ct`] always-adds across all 64 windows of
//!   the fixed-base table (dummy additions for zero digits, table
//!   entries fetched by a full constant-time scan), and
//!   [`JacobianPoint::mul_ct`] runs a fixed window walk of exactly
//!   4 doublings + 1 masked addition per window. Key generation, ECDH,
//!   ECDSA signing and the ECQV secret paths use these.
//! * **`*_vartime`** — faster, schedule leaks the scalar's digit
//!   pattern: [`mul_generator_vartime`], [`AffinePoint::mul_vartime`]
//!   (width-5 wNAF over an odd-multiples table) and
//!   [`multi_scalar_mul`] (interleaved wNAF sharing one doubling
//!   ladder and one table inversion). Only for public inputs: ECDSA
//!   verification, eq. (1) public-key reconstruction, benches and
//!   attack simulations. The retired 4-bit fixed-window walk survives
//!   as [`JacobianPoint::mul_vartime_window`], the differential-test
//!   and bench baseline for the wNAF path.
//!
//! The op-counter (the `ops` module, compiled under `cfg(test)` or the
//! `schedule-counters` feature) asserts the ct schedules are
//! scalar-independent; `scripts/verify.sh` runs that suite in release
//! mode, and `ecq_lint`'s companion test re-checks it end-to-end from
//! `ecq_sts`. The remaining caveat is documented in [`crate::ct`]: field
//! arithmetic keeps the Montgomery conditional subtraction, so this is
//! schedule-level, not gate-level, constant time.

use crate::ct;
use crate::field::FieldElement;
use crate::scalar::Scalar;
use crate::u256::U256;
use crate::CurveError;
use std::sync::OnceLock;

/// Generator x-coordinate, big-endian hex.
pub const GX_HEX: &str = "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296";
/// Generator y-coordinate, big-endian hex.
pub const GY_HEX: &str = "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5";

/// Group-operation counters behind the constant-schedule assertions.
/// Thread-local, so parallel tests do not observe each other's
/// operations. Compiled for this crate's own tests and, under the
/// `schedule-counters` feature, for cross-crate dynamic checks (the
/// `ecq_lint` companion test drives full STS handshakes under these
/// counters and asserts value-independent schedules end-to-end).
#[cfg(any(test, feature = "schedule-counters"))]
pub mod ops {
    use std::cell::Cell;

    thread_local! {
        static ADDS: Cell<u64> = const { Cell::new(0) };
        static DOUBLES: Cell<u64> = const { Cell::new(0) };
        static CT_ADDS: Cell<u64> = const { Cell::new(0) };
        static CT_DOUBLES: Cell<u64> = const { Cell::new(0) };
    }

    /// Snapshot of this thread's counters.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Counts {
        /// Variable-time additions (`add` / `add_affine`).
        pub adds: u64,
        /// Variable-time doublings (`double`).
        pub doubles: u64,
        /// Constant-schedule additions (`add_affine_ct`).
        pub ct_adds: u64,
        /// Constant-schedule doublings (`double_ct`).
        pub ct_doubles: u64,
    }

    /// Counts one variable-time addition on this thread.
    pub fn record_add() {
        ADDS.with(|c| c.set(c.get() + 1));
    }
    /// Counts one variable-time doubling on this thread.
    pub fn record_double() {
        DOUBLES.with(|c| c.set(c.get() + 1));
    }
    /// Counts one constant-schedule addition on this thread.
    pub fn record_ct_add() {
        CT_ADDS.with(|c| c.set(c.get() + 1));
    }
    /// Counts one constant-schedule doubling on this thread.
    pub fn record_ct_double() {
        CT_DOUBLES.with(|c| c.set(c.get() + 1));
    }

    /// Runs `f` with zeroed counters and returns its result plus the
    /// group operations it performed on this thread. Forces the lazy
    /// fixed-base tables first so their one-time builds are not
    /// attributed to `f`.
    pub fn measure<R>(f: impl FnOnce() -> R) -> (R, Counts) {
        let _ = crate::precomp::generator_table();
        let _ = crate::precomp::generator_table_wide();
        ADDS.with(|c| c.set(0));
        DOUBLES.with(|c| c.set(0));
        CT_ADDS.with(|c| c.set(0));
        CT_DOUBLES.with(|c| c.set(0));
        let result = f();
        let counts = Counts {
            adds: ADDS.with(Cell::get),
            doubles: DOUBLES.with(Cell::get),
            ct_adds: CT_ADDS.with(Cell::get),
            ct_doubles: CT_DOUBLES.with(Cell::get),
        };
        (result, counts)
    }
}

/// A point in affine coordinates, or the point at infinity.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AffinePoint {
    /// x-coordinate (meaningless when `infinity`).
    pub x: FieldElement,
    /// y-coordinate (meaningless when `infinity`).
    pub y: FieldElement,
    /// Whether this is the identity element.
    pub infinity: bool,
}

impl AffinePoint {
    /// The point at infinity (group identity).
    pub fn identity() -> Self {
        AffinePoint {
            x: FieldElement::zero(),
            y: FieldElement::zero(),
            infinity: true,
        }
    }

    /// The curve generator `G`.
    pub fn generator() -> Self {
        static G: OnceLock<AffinePoint> = OnceLock::new();
        *G.get_or_init(|| AffinePoint {
            x: FieldElement::from_canonical(&U256::from_be_hex(GX_HEX)).expect("Gx < p"),
            y: FieldElement::from_canonical(&U256::from_be_hex(GY_HEX)).expect("Gy < p"),
            infinity: false,
        })
    }

    /// Checks the affine curve equation `y² = x³ − 3x + b`.
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        let y2 = self.y.square();
        let x3 = self.x.square().mul(&self.x);
        let rhs = x3
            .sub(&self.x.double().add(&self.x)) // x³ − 3x
            .add(&FieldElement::curve_b());
        y2 == rhs
    }

    /// Encodes the point in compressed SEC1 form (`02/03 ‖ x`,
    /// 33 bytes) — the representation the service wire format and the
    /// ECQV minimal certificate carry.
    ///
    /// Unlike [`crate::encoding::encode_compressed`], this is total:
    /// the point at infinity (which has no SEC1 encoding here) is a
    /// typed error instead of a panic, so wire-facing code stays
    /// panic-free.
    ///
    /// # Errors
    ///
    /// [`CurveError::InvalidPoint`] on the point at infinity.
    pub fn to_bytes_compressed(&self) -> Result<[u8; 33], CurveError> {
        if self.infinity {
            return Err(CurveError::InvalidPoint);
        }
        let mut out = [0u8; 33];
        out[0] = if self.y.is_odd() { 0x03 } else { 0x02 };
        out[1..].copy_from_slice(&self.x.to_be_bytes());
        Ok(out)
    }

    /// Decodes a compressed SEC1 point (33 bytes), recomputing `y` from
    /// the parity tag via a square root and validating the curve
    /// equation.
    ///
    /// # Errors
    ///
    /// [`CurveError::InvalidPoint`] on a bad tag or length, an
    /// out-of-range `x`, or an `x` whose `x³ − 3x + b` is a
    /// non-residue (no curve point has that abscissa).
    pub fn from_bytes_compressed(bytes: &[u8]) -> Result<Self, CurveError> {
        crate::encoding::decode_compressed(bytes)
    }

    /// Constructs a point from affine coordinates, validating the curve
    /// equation. Returns `None` when `(x, y)` is not on the curve.
    pub fn from_coords(x: FieldElement, y: FieldElement) -> Option<Self> {
        let p = AffinePoint {
            x,
            y,
            infinity: false,
        };
        p.is_on_curve().then_some(p)
    }

    /// Point negation.
    pub fn neg(&self) -> Self {
        AffinePoint {
            x: self.x,
            y: self.y.neg(),
            infinity: self.infinity,
        }
    }

    /// Constant-time select: `a` when `mask` is all-ones, `b` when
    /// all-zeros.
    pub fn conditional_select(a: &Self, b: &Self, mask: u64) -> Self {
        AffinePoint {
            x: FieldElement::conditional_select(&a.x, &b.x, mask),
            y: FieldElement::conditional_select(&a.y, &b.y, mask),
            infinity: ct::select_u64(a.infinity as u64, b.infinity as u64, mask) != 0,
        }
    }

    /// Group addition (affine convenience; converts through Jacobian).
    pub fn add(&self, rhs: &AffinePoint) -> AffinePoint {
        JacobianPoint::from_affine(self).add_affine(rhs).to_affine()
    }

    /// Variable-time scalar multiplication `k·self`.
    ///
    /// The schedule skips zero windows of `k`: only for public scalars
    /// (signature verification, attack tooling, benches).
    pub fn mul_vartime(&self, k: &Scalar) -> AffinePoint {
        JacobianPoint::from_affine(self).mul_vartime(k).to_affine()
    }

    /// Constant-schedule scalar multiplication `k·self` for secret `k`.
    /// See [`JacobianPoint::mul_ct`].
    pub fn mul_ct(&self, k: &Scalar) -> AffinePoint {
        JacobianPoint::from_affine(self).mul_ct(k).to_affine()
    }
}

/// A point in Jacobian projective coordinates.
#[derive(Clone, Copy, Debug)]
pub struct JacobianPoint {
    x: FieldElement,
    y: FieldElement,
    z: FieldElement,
}

impl JacobianPoint {
    /// The identity element (encoded with `Z = 0`).
    pub fn identity() -> Self {
        JacobianPoint {
            x: FieldElement::one(),
            y: FieldElement::one(),
            z: FieldElement::zero(),
        }
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Lifts an affine point.
    pub fn from_affine(p: &AffinePoint) -> Self {
        if p.infinity {
            Self::identity()
        } else {
            JacobianPoint {
                x: p.x,
                y: p.y,
                z: FieldElement::one(),
            }
        }
    }

    /// Projects back to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> AffinePoint {
        if self.is_identity() {
            return AffinePoint::identity();
        }
        let z_inv = self.z.invert();
        let z_inv2 = z_inv.square();
        let z_inv3 = z_inv2.mul(&z_inv);
        AffinePoint {
            x: self.x.mul(&z_inv2),
            y: self.y.mul(&z_inv3),
            infinity: false,
        }
    }

    /// Constant-time select: `a` when `mask` is all-ones, `b` when
    /// all-zeros.
    pub fn conditional_select(a: &Self, b: &Self, mask: u64) -> Self {
        JacobianPoint {
            x: FieldElement::conditional_select(&a.x, &b.x, mask),
            y: FieldElement::conditional_select(&a.y, &b.y, mask),
            z: FieldElement::conditional_select(&a.z, &b.z, mask),
        }
    }

    /// Point doubling with `a = −3`
    /// (`M = 3(X−Z²)(X+Z²)`, standard dbl-2001-b shape).
    pub fn double(&self) -> JacobianPoint {
        #[cfg(any(test, feature = "schedule-counters"))]
        ops::record_double();
        if self.is_identity() || self.y.is_zero() {
            return Self::identity();
        }
        self.double_inner()
    }

    /// Branch-free doubling for secret-dependent schedules: the same
    /// formula as [`Self::double`] with no identity short-circuit. The
    /// identity (`Z = 0`) flows through to `Z' = 2YZ = 0`, and points
    /// with `Y = 0` (order 2) do not exist on P-256 — the group order
    /// is an odd prime — so the `Y = 0` guard of the vartime path is
    /// unnecessary for valid inputs.
    fn double_ct(&self) -> JacobianPoint {
        #[cfg(any(test, feature = "schedule-counters"))]
        ops::record_ct_double();
        self.double_inner()
    }

    fn double_inner(&self) -> JacobianPoint {
        let zz = self.z.square();
        // M = 3(X−Z²)(X+Z²); the ×3 is an add chain — a `from_u64(3)`
        // here would pay a full Montgomery conversion per doubling.
        let t = self.x.sub(&zz).mul(&self.x.add(&zz));
        let m = t.double().add(&t);
        let y2 = self.y.square();
        let s = self.x.mul(&y2).double().double(); // 4·X·Y²
        let x3 = m.square().sub(&s.double());
        let y4_8 = y2.square().double().double().double(); // 8·Y⁴
        let y3 = m.mul(&s.sub(&x3)).sub(&y4_8);
        let z3 = self.y.mul(&self.z).double();
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General Jacobian + Jacobian addition.
    pub fn add(&self, rhs: &JacobianPoint) -> JacobianPoint {
        #[cfg(any(test, feature = "schedule-counters"))]
        ops::record_add();
        if self.is_identity() {
            return *rhs;
        }
        if rhs.is_identity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x.mul(&z2z2);
        let u2 = rhs.x.mul(&z1z1);
        let s1 = self.y.mul(&z2z2).mul(&rhs.z);
        let s2 = rhs.y.mul(&z1z1).mul(&self.z);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2.sub(&u1);
        let r = s2.sub(&s1);
        let h2 = h.square();
        let h3 = h2.mul(&h);
        let u1h2 = u1.mul(&h2);
        let x3 = r.square().sub(&h3).sub(&u1h2.double());
        let y3 = r.mul(&u1h2.sub(&x3)).sub(&s1.mul(&h3));
        let z3 = self.z.mul(&rhs.z).mul(&h);
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed Jacobian + affine addition (saves a few multiplications).
    pub fn add_affine(&self, rhs: &AffinePoint) -> JacobianPoint {
        #[cfg(any(test, feature = "schedule-counters"))]
        ops::record_add();
        if rhs.infinity {
            return *self;
        }
        if self.is_identity() {
            return Self::from_affine(rhs);
        }
        let z1z1 = self.z.square();
        let u2 = rhs.x.mul(&z1z1);
        let s2 = rhs.y.mul(&z1z1).mul(&self.z);
        if self.x == u2 {
            if self.y == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2.sub(&self.x);
        let r = s2.sub(&self.y);
        let h2 = h.square();
        let h3 = h2.mul(&h);
        let u1h2 = self.x.mul(&h2);
        let x3 = r.square().sub(&h3).sub(&u1h2.double());
        let y3 = r.mul(&u1h2.sub(&x3)).sub(&self.y.mul(&h3));
        let z3 = self.z.mul(&h);
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition for secret-dependent schedules: computes the
    /// general formulas unconditionally, then repairs the exceptional
    /// cases with masked selects instead of branches — identity `self`
    /// → lift of `rhs`; `H = 0` (`self = ±rhs` in the group) → the
    /// identity; identity `rhs` → `self`.
    ///
    /// The `H = 0` repair returns the identity, which is only correct
    /// for `self = −rhs` (it would be wrong for a true doubling). The
    /// ct multipliers never produce the doubling case: each addition
    /// combines multiples `A·P` and `d·P` with `A ≠ d` unless `A = 0`
    /// (repaired by the identity-`self` select, which takes
    /// precedence) — see the per-caller audits on [`Self::mul_ct`] and
    /// [`mul_generator_ct_jacobian`].
    fn add_affine_ct(&self, rhs: &AffinePoint) -> JacobianPoint {
        #[cfg(any(test, feature = "schedule-counters"))]
        ops::record_ct_add();
        let z1z1 = self.z.square();
        let u2 = rhs.x.mul(&z1z1);
        let s2 = rhs.y.mul(&z1z1).mul(&self.z);
        let h = u2.sub(&self.x);
        let r = s2.sub(&self.y);
        let h2 = h.square();
        let h3 = h2.mul(&h);
        let u1h2 = self.x.mul(&h2);
        let x3 = r.square().sub(&h3).sub(&u1h2.double());
        let y3 = r.mul(&u1h2.sub(&x3)).sub(&self.y.mul(&h3));
        let z3 = self.z.mul(&h);
        let general = JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        };

        let self_is_id = self.z.ct_is_zero_mask();
        let rhs_is_id = ct::bool_mask(rhs.infinity);
        let h_is_zero = h.ct_is_zero_mask();
        let rhs_lifted = JacobianPoint {
            x: rhs.x,
            y: rhs.y,
            z: FieldElement::one(),
        };

        // Ascending precedence: H = 0 is garbage when `self` is the
        // identity, and an infinite `rhs` overrides everything.
        let mut out = Self::conditional_select(&Self::identity(), &general, h_is_zero);
        out = Self::conditional_select(&rhs_lifted, &out, self_is_id);
        Self::conditional_select(self, &out, rhs_is_id)
    }

    /// Variable-time scalar multiplication via width-5 wNAF.
    ///
    /// Recodes `k` into signed odd digits `±{1,3,…,15}` (at most one
    /// nonzero digit per 5 bits), precomputes the eight odd multiples
    /// `1·P, 3·P … 15·P` normalized to affine around one shared
    /// inversion, then runs one doubling ladder with a mixed
    /// Jacobian+affine addition per nonzero digit — ~255 doublings and
    /// ~43 additions on average, versus ~252 doublings and ~60 full
    /// Jacobian additions for the 4-bit window walk it replaced
    /// ([`Self::mul_vartime_window`]). Negative digits reuse the table
    /// entry negated, so the table stays eight entries.
    ///
    /// The schedule leaks the scalar's digit pattern: only for public
    /// scalars (ECDSA verification, benches, attack tooling). Secret
    /// scalars go through [`Self::mul_ct`].
    pub fn mul_vartime(&self, k: &Scalar) -> JacobianPoint {
        let kv = k.to_canonical();
        if kv.is_zero() || self.is_identity() {
            return Self::identity();
        }
        let table = normalize_fixed(&self.wnaf_table_vartime());
        let (digits, len) = wnaf5_vartime(&kv);
        let mut acc = Self::identity();
        for i in (0..len).rev() {
            if !acc.is_identity() {
                acc = acc.double();
            }
            let d = digits[i];
            if d != 0 {
                acc = acc.add_affine(&wnaf_entry_vartime(&table, d));
            }
        }
        acc
    }

    /// Variable-time scalar multiplication with a 4-bit fixed window —
    /// the pre-wNAF path, kept as the differential-test and bench
    /// baseline for [`Self::mul_vartime`].
    ///
    /// Zero windows skip the table addition, so the group-operation
    /// schedule leaks the scalar's nibble pattern: only for public
    /// scalars.
    pub fn mul_vartime_window(&self, k: &Scalar) -> JacobianPoint {
        let kv = k.to_canonical();
        if kv.is_zero() || self.is_identity() {
            return Self::identity();
        }
        let table = self.vartime_window_table();
        let mut acc = Self::identity();
        for w in (0..64).rev() {
            if !acc.is_identity() {
                acc = acc.double().double().double().double();
            }
            let nib = kv.nibble(w);
            if nib != 0 {
                acc = acc.add(&table[nib as usize - 1]);
            }
        }
        acc
    }

    /// Precomputes the odd multiples `1·P, 3·P … 15·P` for the width-5
    /// wNAF walks (one doubling + seven additions).
    fn wnaf_table_vartime(&self) -> [JacobianPoint; 8] {
        let twice = self.double();
        let mut m = [*self; 8];
        for i in 1..8 {
            m[i] = m[i - 1].add(&twice);
        }
        m
    }

    /// Precomputes `1·P … 15·P` for the 4-bit vartime window walks
    /// (shared by [`Self::mul_vartime`] and [`multi_scalar_mul`]).
    fn vartime_window_table(&self) -> [JacobianPoint; 15] {
        let mut table = [*self; 15];
        for i in 2..=15 {
            table[i - 1] = if i % 2 == 0 {
                table[i / 2 - 1].double()
            } else {
                table[i - 2].add(self)
            };
        }
        table
    }

    /// Constant-schedule scalar multiplication `k·self` for secret `k`.
    ///
    /// Fixed 4-bit windows, most-significant first, with a uniform
    /// schedule: per window exactly four branch-free doublings, one
    /// constant-time scan of the full 15-entry table, and one masked
    /// addition whose result is discarded by select when the digit is
    /// zero. After the scalar-independent table setup (7 additions +
    /// 7 doublings + one shared inversion), every scalar — including
    /// 0, 1 and n−1 — costs exactly 256 ct-doublings and 64
    /// ct-additions; the `cfg(test)` op-counter asserts this.
    ///
    /// Exceptional-case audit for `add_affine_ct`: at window
    /// `w` the accumulator holds `A·P` with `A = 16·⌊k/16^(w+1)⌋ < n`
    /// and the looked-up entry is `d·P`, `1 ≤ d ≤ 15`. `H = 0` needs
    /// `A ≡ ±d (mod n)`: `A = d` forces `A = 0` (a zero multiple of
    /// 16), which the identity-`self` select repairs; `A = n − d` makes
    /// the true sum the identity, which the `H = 0` select returns —
    /// correct, and in fact only reachable as the final dummy addition
    /// of `k = n−1`, whose result is discarded anyway. The true-
    /// doubling case is therefore never hit.
    pub fn mul_ct(&self, k: &Scalar) -> JacobianPoint {
        // 1·P … 15·P, normalized to affine around one shared inversion.
        // The build pattern is scalar-independent (and branches only on
        // properties of the public base point).
        let mut multiples = [Self::identity(); 15];
        multiples[0] = *self;
        for i in 2..=15 {
            multiples[i - 1] = if i % 2 == 0 {
                multiples[i / 2 - 1].double()
            } else {
                multiples[i - 2].add(self)
            };
        }
        // Fixed-size Montgomery's-trick normalization: same shared
        // inversion as [`batch_normalize`] but allocation-free, since
        // this sits on the hot secret path (every ECDH). The skip
        // pattern branches only on identity flags — properties of the
        // public base point, never of `k`.
        let table = normalize_fixed(&multiples);

        let kv = k.to_canonical();
        let mut acc = Self::identity();
        for w in (0..64).rev() {
            acc = acc.double_ct().double_ct().double_ct().double_ct();
            let (entry, nonzero) = ct::lookup_affine(&table, kv.nibble(w));
            let sum = acc.add_affine_ct(&entry);
            acc = Self::conditional_select(&sum, &acc, nonzero);
        }
        acc
    }
}

impl PartialEq for JacobianPoint {
    fn eq(&self, other: &Self) -> bool {
        // Compare in the projective equivalence class:
        // X1·Z2² == X2·Z1² and Y1·Z2³ == Y2·Z1³.
        match (self.is_identity(), other.is_identity()) {
            (true, true) => return true,
            (true, false) | (false, true) => return false,
            _ => {}
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        self.x.mul(&z2z2) == other.x.mul(&z1z1)
            && self.y.mul(&z2z2).mul(&other.z) == other.y.mul(&z1z1).mul(&self.z)
    }
}

impl Eq for JacobianPoint {}

/// `k·G` for secret `k` — the constant-schedule fixed-base path.
///
/// See [`mul_generator_ct_jacobian`]; this adds the final affine
/// normalization. Key generation, ECDSA signing nonces, ECQV request
/// secrets and CA blinding all come through here.
pub fn mul_generator_ct(k: &Scalar) -> AffinePoint {
    mul_generator_ct_jacobian(k).to_affine()
}

/// `k·G` for secret `k`, without the final affine normalization.
///
/// Walks the same precomputed table as [`mul_generator_vartime`] but
/// always-adds: each of the 64 windows performs one constant-time scan
/// of its 15 entries ([`crate::ct::lookup_affine`]) and one masked
/// mixed addition — a dummy, discarded by select, when the digit is
/// zero. Exactly 64 ct-additions and no doublings for every scalar.
///
/// Exceptional-case audit for `add_affine_ct`: windows are processed
/// low-to-high, so at window `w` the accumulator holds `S·G` with
/// `S = k mod 16^w < 16^w` and the entry is `d·16^w·G`, `1 ≤ d ≤ 15`.
/// `H = 0` needs `S ≡ ±d·16^w (mod n)`: `S = d·16^w` contradicts
/// `S < 16^w`; `S + d·16^w = n` contradicts `S + d·16^w ≤ k < n` for
/// real digits, and for dummies (`d = 1`) would need `16^w > n/2`,
/// i.e. `w ≥ 64`. Only the `S = 0` identity case remains, repaired by
/// select inside the addition.
pub fn mul_generator_ct_jacobian(k: &Scalar) -> JacobianPoint {
    let kv = k.to_canonical();
    let table = crate::precomp::generator_table();
    let mut acc = JacobianPoint::identity();
    for w in 0..crate::precomp::WINDOWS {
        let (entry, nonzero) = ct::lookup_affine(table.window(w), kv.nibble(w));
        let sum = acc.add_affine_ct(&entry);
        acc = JacobianPoint::conditional_select(&sum, &acc, nonzero);
    }
    acc
}

/// `k·G` for public `k` — the variable-time fixed-base path.
///
/// Walks the *wide* 8-bit comb of [`crate::precomp`] and skips zero
/// bytes, so at most 32 mixed additions, no doublings, and a schedule
/// that leaks `k`'s byte pattern. Only for public scalars: the `u1`
/// of ECDSA verification, benches and tests. The generic path
/// (`AffinePoint::generator().mul_vartime(k)`) remains the comparison
/// baseline in `benches/primitives.rs`.
pub fn mul_generator_vartime(k: &Scalar) -> AffinePoint {
    mul_generator_vartime_jacobian(k).to_affine()
}

/// [`mul_generator_vartime`] without the final affine normalization,
/// for callers that amortize the inversion via [`batch_normalize`].
pub fn mul_generator_vartime_jacobian(k: &Scalar) -> JacobianPoint {
    let kv = k.to_canonical();
    if kv.is_zero() {
        return JacobianPoint::identity();
    }
    let table = crate::precomp::generator_table_wide();
    let mut acc = JacobianPoint::identity();
    for w in 0..crate::precomp::WIDE_WINDOWS {
        let byte = kv.byte(w);
        if byte != 0 {
            acc = acc.add_affine(table.entry(w, byte));
        }
    }
    acc
}

/// Normalizes a batch of Jacobian points to affine with a single field
/// inversion (Montgomery's trick): the inverse of the product of all
/// `Z` coordinates is computed once, then unwound into each individual
/// `Z⁻¹` with two multiplications per point. Identity points map to
/// [`AffinePoint::identity`] and do not participate in the product.
pub fn batch_normalize(points: &[JacobianPoint]) -> Vec<AffinePoint> {
    // prefix[i] = product of z_j for non-identity j < i.
    let mut prefix = Vec::with_capacity(points.len());
    let mut acc = FieldElement::one();
    for p in points {
        prefix.push(acc);
        if !p.is_identity() {
            acc = acc.mul(&p.z);
        }
    }
    let mut suffix_inv = acc.invert();
    let mut out = vec![AffinePoint::identity(); points.len()];
    for (i, p) in points.iter().enumerate().rev() {
        if p.is_identity() {
            continue;
        }
        let z_inv = suffix_inv.mul(&prefix[i]);
        suffix_inv = suffix_inv.mul(&p.z);
        let z_inv2 = z_inv.square();
        out[i] = AffinePoint {
            x: p.x.mul(&z_inv2),
            y: p.y.mul(&z_inv2).mul(&z_inv),
            infinity: false,
        };
    }
    out
}

/// Montgomery's-trick normalization over a fixed-size array: one
/// shared field inversion for all `N` points, no allocation. Identity
/// entries map to [`AffinePoint::identity`] and skip the product —
/// inverting an empty product is `1⁻¹`, which is well defined — so
/// callers may leave unused slots at the identity.
fn normalize_fixed<const N: usize>(points: &[JacobianPoint; N]) -> [AffinePoint; N] {
    // prefix[i] = product of z_j for non-identity j < i.
    let mut prefix = [FieldElement::one(); N];
    let mut acc = FieldElement::one();
    for (slot, p) in prefix.iter_mut().zip(points) {
        *slot = acc;
        if !p.is_identity() {
            acc = acc.mul(&p.z);
        }
    }
    let mut suffix_inv = acc.invert();
    let mut out = [AffinePoint::identity(); N];
    for ((entry, p), pre) in out.iter_mut().zip(points).zip(&prefix).rev() {
        if p.is_identity() {
            continue;
        }
        let z_inv = suffix_inv.mul(pre);
        suffix_inv = suffix_inv.mul(&p.z);
        let z_inv2 = z_inv.square();
        *entry = AffinePoint {
            x: p.x.mul(&z_inv2),
            y: p.y.mul(&z_inv2).mul(&z_inv),
            infinity: false,
        };
    }
    out
}

/// Width-5 wNAF recoding: signed odd digits `±{1,3,…,15}`, at least
/// four zero digits between nonzero ones. Returns the digit array
/// (little-endian by bit position, zero-padded) and the number of
/// digits used.
///
/// Index bound: a nonzero digit at position `m` forces
/// `k > 2^m·16/31` (the top digit is positive and lower nonzero
/// digits, ≥5 apart, sum to less than `2^m·15/31`), so `k < 2^256`
/// caps `m` at 256 and the 257-entry array never overflows.
fn wnaf5_vartime(kv: &U256) -> ([i8; 257], usize) {
    let mut digits = [0i8; 257];
    let mut len = 0usize;
    let mut k = *kv;
    let mut i = 0usize;
    while !k.is_zero() {
        if k.is_odd() {
            // Signed residue mod 32: d ≡ k, d odd, −16 < d < 16.
            let low = (k.limbs()[0] & 0x1f) as i8;
            let d = if low >= 16 { low - 32 } else { low };
            k = if d >= 0 {
                k.wrapping_sub(&U256::from_u64(d as u64))
            } else {
                k.wrapping_add(&U256::from_u64((-d) as u64))
            };
            digits[i] = d;
            len = i + 1;
        }
        k = k.shr1();
        i += 1;
    }
    (digits, len)
}

/// Looks up `d·P` in a wNAF odd-multiples table (`d` odd, `|d| ≤ 15`):
/// entry `(|d|−1)/2`, negated for negative digits.
fn wnaf_entry_vartime(table: &[AffinePoint; 8], d: i8) -> AffinePoint {
    if d > 0 {
        table[(d as usize) >> 1]
    } else {
        table[((-d) as usize) >> 1].neg()
    }
}

/// Shamir/Straus double-scalar multiplication: computes `a·P + b·Q`
/// with one shared doubling ladder over interleaved width-5 wNAF
/// digits — two 8-entry odd-multiples tables normalized around a
/// *single* shared field inversion, one doubling per bit, and at most
/// one mixed addition per scalar per 5 bits. Variable-time by
/// construction; only for public inputs (ECDSA verification, the
/// eq. (1) ECQV public-key reconstruction, attack tooling).
// ct-vartime: interleaved wNAF, schedule depends on both scalars.
pub fn multi_scalar_mul(a: &Scalar, p: &AffinePoint, b: &Scalar, q: &AffinePoint) -> AffinePoint {
    multi_scalar_mul_jacobian(a, p, b, q).to_affine()
}

/// [`multi_scalar_mul`] without the final affine normalization, for
/// callers that amortize the inversion via [`batch_normalize`] or
/// compare results in the projective equivalence class.
// ct-vartime: interleaved wNAF, schedule depends on both scalars.
pub fn multi_scalar_mul_jacobian(
    a: &Scalar,
    p: &AffinePoint,
    b: &Scalar,
    q: &AffinePoint,
) -> JacobianPoint {
    let av = a.to_canonical();
    let bv = b.to_canonical();
    // A unit scalar contributes exactly one mixed addition of its
    // affine base at digit 0 — no table needed. The eq. (1)
    // reconstruction's `+ Q_CA` term rides this case on every
    // certificate validation.
    let unit_a = av == U256::ONE;
    let unit_b = bv == U256::ONE;
    let need_a = !unit_a && !av.is_zero() && !p.infinity;
    let need_b = !unit_b && !bv.is_zero() && !q.infinity;
    // Both odd-multiples tables normalize around one shared inversion;
    // unused halves stay at the identity and skip the product.
    let mut joint = [JacobianPoint::identity(); 16];
    if need_a {
        joint[..8].copy_from_slice(&JacobianPoint::from_affine(p).wnaf_table_vartime());
    }
    if need_b {
        joint[8..].copy_from_slice(&JacobianPoint::from_affine(q).wnaf_table_vartime());
    }
    let joint = normalize_fixed(&joint);
    let mut ta = [AffinePoint::identity(); 8];
    let mut tb = [AffinePoint::identity(); 8];
    ta.copy_from_slice(&joint[..8]);
    tb.copy_from_slice(&joint[8..]);

    let (da, la) = wnaf5_vartime(&av);
    let (db, lb) = wnaf5_vartime(&bv);
    let mut acc = JacobianPoint::identity();
    for i in (0..la.max(lb)).rev() {
        if !acc.is_identity() {
            acc = acc.double();
        }
        let dig_a = da[i];
        if dig_a != 0 {
            // An identity base contributes nothing: its table (or, for
            // a unit scalar, the base itself) adds the identity, which
            // `add_affine` passes through.
            acc = if unit_a {
                acc.add_affine(p)
            } else {
                acc.add_affine(&wnaf_entry_vartime(&ta, dig_a))
            };
        }
        let dig_b = db[i];
        if dig_b != 0 {
            acc = if unit_b {
                acc.add_affine(q)
            } else {
                acc.add_affine(&wnaf_entry_vartime(&tb, dig_b))
            };
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecq_crypto::HmacDrbg;

    #[test]
    fn generator_on_curve() {
        assert!(AffinePoint::generator().is_on_curve());
    }

    #[test]
    fn known_double_of_g() {
        // 2G, standard P-256 test vector.
        let two_g = AffinePoint::generator().mul_vartime(&Scalar::from_u64(2));
        assert_eq!(
            two_g.x.to_canonical().to_string(),
            "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978"
        );
        assert_eq!(
            two_g.y.to_canonical().to_string(),
            "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1"
        );
    }

    #[test]
    fn known_triple_of_g() {
        // 3G, standard P-256 test vector.
        let three_g = AffinePoint::generator().mul_vartime(&Scalar::from_u64(3));
        assert_eq!(
            three_g.x.to_canonical().to_string(),
            "5ecbe4d1a6330a44c8f7ef951d4bf165e6c6b721efada985fb41661bc6e7fd6c"
        );
        assert_eq!(
            three_g.y.to_canonical().to_string(),
            "8734640c4998ff7e374b06ce1a64a2ecd82ab036384fb83d9a79b127a27d5032"
        );
    }

    #[test]
    fn order_times_g_is_identity() {
        // n·G = O, checked via (n-1)·G + G.
        let n_minus_1 = Scalar::from_u64(1).neg();
        let p = mul_generator_vartime(&n_minus_1);
        let sum = p.add(&AffinePoint::generator());
        assert!(sum.infinity);
        // (n-1)·G == -G
        assert_eq!(p, AffinePoint::generator().neg());
    }

    #[test]
    fn add_commutative_and_assoc() {
        let g = AffinePoint::generator();
        let p = g.mul_vartime(&Scalar::from_u64(5));
        let q = g.mul_vartime(&Scalar::from_u64(11));
        let r = g.mul_vartime(&Scalar::from_u64(100));
        assert_eq!(p.add(&q), q.add(&p));
        assert_eq!(p.add(&q).add(&r), p.add(&q.add(&r)));
    }

    #[test]
    fn scalar_mul_distributes() {
        let g = AffinePoint::generator();
        let a = Scalar::from_u64(123);
        let b = Scalar::from_u64(456);
        assert_eq!(
            g.mul_vartime(&a).add(&g.mul_vartime(&b)),
            g.mul_vartime(&a.add(&b))
        );
        assert_eq!(g.mul_vartime(&a).mul_vartime(&b), g.mul_vartime(&a.mul(&b)));
    }

    #[test]
    fn identity_laws() {
        let g = AffinePoint::generator();
        let id = AffinePoint::identity();
        assert_eq!(g.add(&id), g);
        assert_eq!(id.add(&g), g);
        assert!(g.add(&g.neg()).infinity);
        assert!(g.mul_vartime(&Scalar::zero()).infinity);
        assert!(id.mul_vartime(&Scalar::from_u64(7)).infinity);
    }

    #[test]
    fn doubling_matches_addition() {
        let g = JacobianPoint::from_affine(&AffinePoint::generator());
        assert_eq!(g.double(), g.add(&g));
    }

    #[test]
    fn multi_scalar_matches_naive() {
        let mut rng = HmacDrbg::from_seed(5);
        let g = AffinePoint::generator();
        for _ in 0..4 {
            let a = Scalar::random(&mut rng);
            let b = Scalar::random(&mut rng);
            let q = g.mul_vartime(&Scalar::random(&mut rng));
            let fast = multi_scalar_mul(&a, &g, &b, &q);
            let naive = g.mul_vartime(&a).add(&q.mul_vartime(&b));
            assert_eq!(fast, naive);
        }
    }

    #[test]
    fn multi_scalar_edge_cases() {
        let mut rng = HmacDrbg::from_seed(0xE5);
        let g = AffinePoint::generator();
        let q = g.mul_vartime(&Scalar::random(&mut rng));
        let id = AffinePoint::identity();
        let r = Scalar::random(&mut rng);
        // Every combination of edge scalar × edge base against the
        // naive two-multiplication reference, including the unit-scalar
        // shortcut (eq. (1)'s `1·Q_CA` term) and identity bases.
        for (i, a) in edge_scalars().iter().enumerate() {
            for (j, b) in edge_scalars().iter().enumerate() {
                for (k, (p1, p2)) in [(g, q), (q, id), (id, q), (id, id)].iter().enumerate() {
                    let fast = multi_scalar_mul(a, p1, b, p2);
                    let naive = p1.mul_vartime(a).add(&p2.mul_vartime(b));
                    assert_eq!(fast, naive, "a {i}, b {j}, bases {k}");
                }
            }
        }
        // Jacobian variant agrees in the equivalence class.
        assert_eq!(
            multi_scalar_mul_jacobian(&r, &g, &Scalar::one(), &q).to_affine(),
            multi_scalar_mul(&r, &g, &Scalar::one(), &q)
        );
    }

    #[test]
    fn wnaf_matches_window_reference() {
        // The wNAF path against the retired 4-bit window walk, over the
        // same edge-scalar sweep the ct tests use plus extra sparse and
        // dense patterns, for generator / random / identity bases.
        let mut rng = HmacDrbg::from_seed(0xE6);
        let g = JacobianPoint::from_affine(&AffinePoint::generator());
        let bases = [
            g,
            g.mul_vartime(&Scalar::random(&mut rng)),
            JacobianPoint::identity(),
        ];
        let mut scalars = edge_scalars();
        scalars.push(Scalar::from_u64(0xFFFF_FFFF_FFFF_FFFF)); // dense NAF
        scalars.push(pow2_scalar(255)); // single top bit
        scalars.push(pow2_scalar(255).add(&Scalar::one())); // sparse ends
        for (bi, base) in bases.iter().enumerate() {
            for (i, k) in scalars.iter().enumerate() {
                assert_eq!(
                    base.mul_vartime(k),
                    base.mul_vartime_window(k),
                    "base {bi}, scalar {i}"
                );
            }
        }
    }

    #[test]
    fn wnaf_digits_are_valid_and_reconstruct() {
        let mut rng = HmacDrbg::from_seed(0xE7);
        let mut scalars = edge_scalars();
        for _ in 0..8 {
            scalars.push(Scalar::random(&mut rng));
        }
        for (i, k) in scalars.iter().enumerate() {
            let (digits, len) = wnaf5_vartime(&k.to_canonical());
            assert!(len <= 257, "scalar {i}: len {len}");
            let mut last_nonzero: Option<usize> = None;
            // Horner evaluation from the top digit back to the scalar.
            let mut acc = Scalar::zero();
            for j in (0..len).rev() {
                acc = acc.add(&acc);
                let d = digits[j];
                if d != 0 {
                    assert_eq!(d & 1, 1, "scalar {i}, digit {j}: even {d}");
                    assert!(d.abs() <= 15, "scalar {i}, digit {j}: wide {d}");
                    if let Some(prev) = last_nonzero {
                        assert!(prev - j >= 5, "scalar {i}: digits {prev},{j}");
                    }
                    last_nonzero = Some(j);
                    let mag = Scalar::from_u64(d.unsigned_abs() as u64);
                    acc = if d > 0 {
                        acc.add(&mag)
                    } else {
                        acc.add(&mag.neg())
                    };
                }
            }
            assert_eq!(acc, *k, "scalar {i} does not reconstruct");
        }
    }

    #[test]
    fn mul_random_scalars_stay_on_curve() {
        let mut rng = HmacDrbg::from_seed(6);
        let g = AffinePoint::generator();
        for _ in 0..4 {
            let k = Scalar::random(&mut rng);
            let p = g.mul_vartime(&k);
            assert!(p.is_on_curve());
            assert!(!p.infinity);
        }
    }

    #[test]
    fn jacobian_eq_across_representations() {
        let g = JacobianPoint::from_affine(&AffinePoint::generator());
        let doubled = g.double();
        // Same point reached two ways, different Z.
        let via_add = g.add(&g);
        assert_eq!(doubled, via_add);
        assert_eq!(doubled.to_affine(), via_add.to_affine());
    }

    #[test]
    fn from_coords_validates() {
        let g = AffinePoint::generator();
        assert!(AffinePoint::from_coords(g.x, g.y).is_some());
        assert!(AffinePoint::from_coords(g.x, g.x).is_none());
    }

    #[test]
    fn fixed_base_matches_generic_mul() {
        let mut rng = HmacDrbg::from_seed(7);
        let g = AffinePoint::generator();
        for _ in 0..8 {
            let k = Scalar::random(&mut rng);
            assert_eq!(mul_generator_vartime(&k), g.mul_vartime(&k));
        }
        // Edge scalars: 0, 1, n−1, and single-nibble values.
        assert!(mul_generator_vartime(&Scalar::zero()).infinity);
        assert_eq!(mul_generator_vartime(&Scalar::one()), g);
        let n_minus_1 = Scalar::from_u64(1).neg();
        assert_eq!(mul_generator_vartime(&n_minus_1), g.neg());
        for shift in [0u32, 4, 60, 252] {
            let k = Scalar::from_u64(9).mul(&pow2_scalar(shift));
            assert_eq!(
                mul_generator_vartime(&k),
                g.mul_vartime(&k),
                "shift {shift}"
            );
        }
    }

    fn pow2_scalar(bits: u32) -> Scalar {
        let mut s = Scalar::one();
        for _ in 0..bits {
            s = s.add(&s);
        }
        s
    }

    /// Edge scalars every ct test sweeps: the op-count must not depend
    /// on nibble patterns, so zero-rich and dense scalars both appear.
    fn edge_scalars() -> Vec<Scalar> {
        let mut rng = HmacDrbg::from_seed(0xC7);
        let mut scalars = vec![
            Scalar::zero(),
            Scalar::one(),
            Scalar::from_u64(1).neg(),     // n − 1
            Scalar::from_u64(15),          // one dense low nibble
            Scalar::from_u64(0x1000_0000), // single nibble mid-word
            pow2_scalar(252),              // only the top window set
            Scalar::from_u64(9).mul(&pow2_scalar(128)),
        ];
        for _ in 0..4 {
            scalars.push(Scalar::random(&mut rng));
        }
        scalars
    }

    #[test]
    fn ct_fixed_base_matches_vartime() {
        let g = AffinePoint::generator();
        for (i, k) in edge_scalars().iter().enumerate() {
            assert_eq!(mul_generator_ct(k), mul_generator_vartime(k), "scalar {i}");
            assert_eq!(
                mul_generator_ct_jacobian(k).to_affine(),
                mul_generator_vartime(k),
                "jacobian, scalar {i}"
            );
        }
        assert!(mul_generator_ct(&Scalar::zero()).infinity);
        assert_eq!(mul_generator_ct(&Scalar::one()), g);
    }

    #[test]
    fn ct_variable_base_matches_vartime() {
        let mut rng = HmacDrbg::from_seed(0xC8);
        let g = AffinePoint::generator();
        let bases = [
            g,
            g.mul_vartime(&Scalar::random(&mut rng)),
            AffinePoint::identity(),
        ];
        for (bi, base) in bases.iter().enumerate() {
            for (i, k) in edge_scalars().iter().enumerate() {
                assert_eq!(base.mul_ct(k), base.mul_vartime(k), "base {bi}, scalar {i}");
            }
        }
    }

    #[test]
    fn ct_fixed_base_schedule_is_scalar_independent() {
        // Acceptance: exactly 64 table additions (with dummies), no
        // doublings, for any scalar — zero-rich or dense.
        for (i, k) in edge_scalars().iter().enumerate() {
            let (_, counts) = ops::measure(|| mul_generator_ct(k));
            assert_eq!(counts.ct_adds, 64, "scalar {i}: {counts:?}");
            assert_eq!(counts.ct_doubles, 0, "scalar {i}: {counts:?}");
            assert_eq!(counts.adds, 0, "scalar {i}: {counts:?}");
            assert_eq!(counts.doubles, 0, "scalar {i}: {counts:?}");
        }
    }

    #[test]
    fn ct_variable_base_schedule_is_scalar_independent() {
        // Acceptance: a fixed double/add schedule — 256 ct-doublings
        // (4 per window) + 64 masked ct-additions, after a scalar-
        // independent table setup of 7 vartime adds + 7 doublings.
        let mut rng = HmacDrbg::from_seed(0xC9);
        let base = JacobianPoint::from_affine(
            &AffinePoint::generator().mul_vartime(&Scalar::random(&mut rng)),
        );
        let mut schedules = Vec::new();
        for (i, k) in edge_scalars().iter().enumerate() {
            let (_, counts) = ops::measure(|| base.mul_ct(k));
            assert_eq!(counts.ct_doubles, 256, "scalar {i}: {counts:?}");
            assert_eq!(counts.ct_adds, 64, "scalar {i}: {counts:?}");
            assert_eq!(counts.adds, 7, "scalar {i}: {counts:?}");
            assert_eq!(counts.doubles, 7, "scalar {i}: {counts:?}");
            schedules.push(counts);
        }
        // Identical schedules for every pair of distinct scalars.
        assert!(schedules.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn vartime_schedule_depends_on_scalar() {
        // Sanity check that the counter actually distinguishes the
        // vartime path: a sparse scalar performs fewer table additions.
        let dense = Scalar::from_u64(1).neg(); // n − 1: ~all nibbles set
        let sparse = Scalar::one();
        let (_, dense_counts) = ops::measure(|| mul_generator_vartime(&dense));
        let (_, sparse_counts) = ops::measure(|| mul_generator_vartime(&sparse));
        assert!(sparse_counts.adds < dense_counts.adds);
        assert_eq!(dense_counts.ct_adds, 0);
    }

    #[test]
    fn conditional_select_points() {
        let g = AffinePoint::generator();
        let id = AffinePoint::identity();
        assert_eq!(AffinePoint::conditional_select(&g, &id, u64::MAX), g);
        assert_eq!(AffinePoint::conditional_select(&g, &id, 0), id);
        let gj = JacobianPoint::from_affine(&g);
        let idj = JacobianPoint::identity();
        assert_eq!(JacobianPoint::conditional_select(&gj, &idj, u64::MAX), gj);
        assert!(JacobianPoint::conditional_select(&gj, &idj, 0).is_identity());
    }

    #[test]
    fn batch_normalize_matches_individual() {
        let mut rng = HmacDrbg::from_seed(8);
        let g = JacobianPoint::from_affine(&AffinePoint::generator());
        let mut points = vec![JacobianPoint::identity()];
        for _ in 0..5 {
            points.push(g.mul_vartime(&Scalar::random(&mut rng)));
        }
        points.push(JacobianPoint::identity());
        let batch = batch_normalize(&points);
        assert_eq!(batch.len(), points.len());
        for (jac, aff) in points.iter().zip(&batch) {
            assert_eq!(jac.to_affine(), *aff);
        }
        assert!(batch[0].infinity);
        assert!(batch.last().unwrap().infinity);
        assert!(batch_normalize(&[]).is_empty());
    }
}
