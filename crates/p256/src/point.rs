//! P-256 group operations.
//!
//! Points are manipulated in Jacobian coordinates (`x = X/Z²`,
//! `y = Y/Z³`) with `a = −3` folded into the doubling formula, exactly
//! as micro-ecc does. Scalar multiplication uses a 4-bit fixed window;
//! [`mul_generator`] goes through the precomputed fixed-base table of
//! [`crate::precomp`] instead (no doublings per call), and
//! [`multi_scalar_mul`] implements Shamir's trick for the
//! `u1·G + u2·Q` of ECDSA verification (an ablation toggle in the
//! benchmarks — micro-ecc itself performs two separate multiplications).

use crate::field::FieldElement;
use crate::scalar::Scalar;
use crate::u256::U256;
use std::sync::OnceLock;

/// Generator x-coordinate, big-endian hex.
pub const GX_HEX: &str = "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296";
/// Generator y-coordinate, big-endian hex.
pub const GY_HEX: &str = "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5";

/// A point in affine coordinates, or the point at infinity.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct AffinePoint {
    /// x-coordinate (meaningless when `infinity`).
    pub x: FieldElement,
    /// y-coordinate (meaningless when `infinity`).
    pub y: FieldElement,
    /// Whether this is the identity element.
    pub infinity: bool,
}

impl AffinePoint {
    /// The point at infinity (group identity).
    pub fn identity() -> Self {
        AffinePoint {
            x: FieldElement::zero(),
            y: FieldElement::zero(),
            infinity: true,
        }
    }

    /// The curve generator `G`.
    pub fn generator() -> Self {
        static G: OnceLock<AffinePoint> = OnceLock::new();
        *G.get_or_init(|| AffinePoint {
            x: FieldElement::from_canonical(&U256::from_be_hex(GX_HEX)).expect("Gx < p"),
            y: FieldElement::from_canonical(&U256::from_be_hex(GY_HEX)).expect("Gy < p"),
            infinity: false,
        })
    }

    /// Checks the affine curve equation `y² = x³ − 3x + b`.
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        let y2 = self.y.square();
        let x3 = self.x.square().mul(&self.x);
        let rhs = x3
            .sub(&self.x.double().add(&self.x)) // x³ − 3x
            .add(&FieldElement::curve_b());
        y2 == rhs
    }

    /// Constructs a point from affine coordinates, validating the curve
    /// equation. Returns `None` when `(x, y)` is not on the curve.
    pub fn from_coords(x: FieldElement, y: FieldElement) -> Option<Self> {
        let p = AffinePoint {
            x,
            y,
            infinity: false,
        };
        p.is_on_curve().then_some(p)
    }

    /// Point negation.
    pub fn neg(&self) -> Self {
        AffinePoint {
            x: self.x,
            y: self.y.neg(),
            infinity: self.infinity,
        }
    }

    /// Group addition (affine convenience; converts through Jacobian).
    pub fn add(&self, rhs: &AffinePoint) -> AffinePoint {
        JacobianPoint::from_affine(self).add_affine(rhs).to_affine()
    }

    /// Scalar multiplication `k·self`.
    pub fn mul(&self, k: &Scalar) -> AffinePoint {
        JacobianPoint::from_affine(self).mul(k).to_affine()
    }
}

/// A point in Jacobian projective coordinates.
#[derive(Clone, Copy, Debug)]
pub struct JacobianPoint {
    x: FieldElement,
    y: FieldElement,
    z: FieldElement,
}

impl JacobianPoint {
    /// The identity element (encoded with `Z = 0`).
    pub fn identity() -> Self {
        JacobianPoint {
            x: FieldElement::one(),
            y: FieldElement::one(),
            z: FieldElement::zero(),
        }
    }

    /// Whether this is the identity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Lifts an affine point.
    pub fn from_affine(p: &AffinePoint) -> Self {
        if p.infinity {
            Self::identity()
        } else {
            JacobianPoint {
                x: p.x,
                y: p.y,
                z: FieldElement::one(),
            }
        }
    }

    /// Projects back to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> AffinePoint {
        if self.is_identity() {
            return AffinePoint::identity();
        }
        let z_inv = self.z.invert();
        let z_inv2 = z_inv.square();
        let z_inv3 = z_inv2.mul(&z_inv);
        AffinePoint {
            x: self.x.mul(&z_inv2),
            y: self.y.mul(&z_inv3),
            infinity: false,
        }
    }

    /// Point doubling with `a = −3`
    /// (`M = 3(X−Z²)(X+Z²)`, standard dbl-2001-b shape).
    pub fn double(&self) -> JacobianPoint {
        if self.is_identity() || self.y.is_zero() {
            return Self::identity();
        }
        let zz = self.z.square();
        let m = self
            .x
            .sub(&zz)
            .mul(&self.x.add(&zz))
            .mul(&FieldElement::from_u64(3));
        let y2 = self.y.square();
        let s = self.x.mul(&y2).double().double(); // 4·X·Y²
        let x3 = m.square().sub(&s.double());
        let y4_8 = y2.square().double().double().double(); // 8·Y⁴
        let y3 = m.mul(&s.sub(&x3)).sub(&y4_8);
        let z3 = self.y.mul(&self.z).double();
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General Jacobian + Jacobian addition.
    pub fn add(&self, rhs: &JacobianPoint) -> JacobianPoint {
        if self.is_identity() {
            return *rhs;
        }
        if rhs.is_identity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x.mul(&z2z2);
        let u2 = rhs.x.mul(&z1z1);
        let s1 = self.y.mul(&z2z2).mul(&rhs.z);
        let s2 = rhs.y.mul(&z1z1).mul(&self.z);
        if u1 == u2 {
            if s1 == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2.sub(&u1);
        let r = s2.sub(&s1);
        let h2 = h.square();
        let h3 = h2.mul(&h);
        let u1h2 = u1.mul(&h2);
        let x3 = r.square().sub(&h3).sub(&u1h2.double());
        let y3 = r.mul(&u1h2.sub(&x3)).sub(&s1.mul(&h3));
        let z3 = self.z.mul(&rhs.z).mul(&h);
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed Jacobian + affine addition (saves a few multiplications).
    pub fn add_affine(&self, rhs: &AffinePoint) -> JacobianPoint {
        if rhs.infinity {
            return *self;
        }
        if self.is_identity() {
            return Self::from_affine(rhs);
        }
        let z1z1 = self.z.square();
        let u2 = rhs.x.mul(&z1z1);
        let s2 = rhs.y.mul(&z1z1).mul(&self.z);
        if self.x == u2 {
            if self.y == s2 {
                return self.double();
            }
            return Self::identity();
        }
        let h = u2.sub(&self.x);
        let r = s2.sub(&self.y);
        let h2 = h.square();
        let h3 = h2.mul(&h);
        let u1h2 = self.x.mul(&h2);
        let x3 = r.square().sub(&h3).sub(&u1h2.double());
        let y3 = r.mul(&u1h2.sub(&x3)).sub(&self.y.mul(&h3));
        let z3 = self.z.mul(&h);
        JacobianPoint {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Scalar multiplication with a 4-bit fixed window.
    ///
    /// Not constant-time: zero windows skip the table addition. The
    /// simulated protocols model timing through the device cost model,
    /// not through host-side execution time, so this is acceptable here
    /// (and is called out in the security notes of the README).
    pub fn mul(&self, k: &Scalar) -> JacobianPoint {
        let kv = k.to_canonical();
        if kv.is_zero() || self.is_identity() {
            return Self::identity();
        }
        // Precompute 1·P … 15·P.
        let mut table = [Self::identity(); 16];
        table[1] = *self;
        for i in 2..16 {
            table[i] = if i % 2 == 0 {
                table[i / 2].double()
            } else {
                table[i - 1].add(self)
            };
        }
        let mut acc = Self::identity();
        for w in (0..64).rev() {
            if !acc.is_identity() {
                acc = acc.double().double().double().double();
            }
            let nib = kv.nibble(w);
            if nib != 0 {
                acc = acc.add(&table[nib as usize]);
            }
        }
        acc
    }
}

impl PartialEq for JacobianPoint {
    fn eq(&self, other: &Self) -> bool {
        // Compare in the projective equivalence class:
        // X1·Z2² == X2·Z1² and Y1·Z2³ == Y2·Z1³.
        match (self.is_identity(), other.is_identity()) {
            (true, true) => return true,
            (true, false) | (false, true) => return false,
            _ => {}
        }
        let z1z1 = self.z.square();
        let z2z2 = other.z.square();
        self.x.mul(&z2z2) == other.x.mul(&z1z1)
            && self.y.mul(&z2z2).mul(&other.z) == other.y.mul(&z1z1).mul(&self.z)
    }
}

impl Eq for JacobianPoint {}

/// `k·G` — multiplication of the generator.
///
/// Uses the precomputed fixed-base table of [`crate::precomp`]: with
/// every `d · 16^w · G` multiple stored in affine form, the whole
/// multiplication is at most 64 mixed additions and one normalization,
/// with no doublings. The generic path
/// (`AffinePoint::generator().mul(k)`) remains available and is the
/// comparison baseline in `benches/primitives.rs`.
pub fn mul_generator(k: &Scalar) -> AffinePoint {
    mul_generator_jacobian(k).to_affine()
}

/// `k·G` without the final affine normalization.
///
/// Batch callers (e.g. ECQV batch issuance) accumulate many fixed-base
/// products and amortize the per-point field inversion through
/// [`batch_normalize`]; everyone else wants [`mul_generator`].
pub fn mul_generator_jacobian(k: &Scalar) -> JacobianPoint {
    let kv = k.to_canonical();
    if kv.is_zero() {
        return JacobianPoint::identity();
    }
    let table = crate::precomp::generator_table();
    let mut acc = JacobianPoint::identity();
    for w in 0..crate::precomp::WINDOWS {
        let nib = kv.nibble(w);
        if nib != 0 {
            acc = acc.add_affine(table.entry(w, nib));
        }
    }
    acc
}

/// Normalizes a batch of Jacobian points to affine with a single field
/// inversion (Montgomery's trick): the inverse of the product of all
/// `Z` coordinates is computed once, then unwound into each individual
/// `Z⁻¹` with two multiplications per point. Identity points map to
/// [`AffinePoint::identity`] and do not participate in the product.
pub fn batch_normalize(points: &[JacobianPoint]) -> Vec<AffinePoint> {
    // prefix[i] = product of z_j for non-identity j < i.
    let mut prefix = Vec::with_capacity(points.len());
    let mut acc = FieldElement::one();
    for p in points {
        prefix.push(acc);
        if !p.is_identity() {
            acc = acc.mul(&p.z);
        }
    }
    let mut suffix_inv = acc.invert();
    let mut out = vec![AffinePoint::identity(); points.len()];
    for (i, p) in points.iter().enumerate().rev() {
        if p.is_identity() {
            continue;
        }
        let z_inv = suffix_inv.mul(&prefix[i]);
        suffix_inv = suffix_inv.mul(&p.z);
        let z_inv2 = z_inv.square();
        out[i] = AffinePoint {
            x: p.x.mul(&z_inv2),
            y: p.y.mul(&z_inv2).mul(&z_inv),
            infinity: false,
        };
    }
    out
}

/// Shamir's trick: computes `a·P + b·Q` with a single shared
/// double-and-add pass. Used by the optimized ECDSA verification.
pub fn multi_scalar_mul(a: &Scalar, p: &AffinePoint, b: &Scalar, q: &AffinePoint) -> AffinePoint {
    let av = a.to_canonical();
    let bv = b.to_canonical();
    let pj = JacobianPoint::from_affine(p);
    let qj = JacobianPoint::from_affine(q);
    let pq = pj.add(&qj);
    let mut acc = JacobianPoint::identity();
    let bits = av.bit_len().max(bv.bit_len());
    for i in (0..bits).rev() {
        acc = acc.double();
        match (av.bit(i), bv.bit(i)) {
            (true, true) => acc = acc.add(&pq),
            (true, false) => acc = acc.add(&pj),
            (false, true) => acc = acc.add(&qj),
            (false, false) => {}
        }
    }
    acc.to_affine()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecq_crypto::HmacDrbg;

    #[test]
    fn generator_on_curve() {
        assert!(AffinePoint::generator().is_on_curve());
    }

    #[test]
    fn known_double_of_g() {
        // 2G, standard P-256 test vector.
        let two_g = AffinePoint::generator().mul(&Scalar::from_u64(2));
        assert_eq!(
            two_g.x.to_canonical().to_string(),
            "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978"
        );
        assert_eq!(
            two_g.y.to_canonical().to_string(),
            "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1"
        );
    }

    #[test]
    fn known_triple_of_g() {
        // 3G, standard P-256 test vector.
        let three_g = AffinePoint::generator().mul(&Scalar::from_u64(3));
        assert_eq!(
            three_g.x.to_canonical().to_string(),
            "5ecbe4d1a6330a44c8f7ef951d4bf165e6c6b721efada985fb41661bc6e7fd6c"
        );
        assert_eq!(
            three_g.y.to_canonical().to_string(),
            "8734640c4998ff7e374b06ce1a64a2ecd82ab036384fb83d9a79b127a27d5032"
        );
    }

    #[test]
    fn order_times_g_is_identity() {
        // n·G = O, checked via (n-1)·G + G.
        let n_minus_1 = Scalar::from_u64(1).neg();
        let p = mul_generator(&n_minus_1);
        let sum = p.add(&AffinePoint::generator());
        assert!(sum.infinity);
        // (n-1)·G == -G
        assert_eq!(p, AffinePoint::generator().neg());
    }

    #[test]
    fn add_commutative_and_assoc() {
        let g = AffinePoint::generator();
        let p = g.mul(&Scalar::from_u64(5));
        let q = g.mul(&Scalar::from_u64(11));
        let r = g.mul(&Scalar::from_u64(100));
        assert_eq!(p.add(&q), q.add(&p));
        assert_eq!(p.add(&q).add(&r), p.add(&q.add(&r)));
    }

    #[test]
    fn scalar_mul_distributes() {
        let g = AffinePoint::generator();
        let a = Scalar::from_u64(123);
        let b = Scalar::from_u64(456);
        assert_eq!(g.mul(&a).add(&g.mul(&b)), g.mul(&a.add(&b)));
        assert_eq!(g.mul(&a).mul(&b), g.mul(&a.mul(&b)));
    }

    #[test]
    fn identity_laws() {
        let g = AffinePoint::generator();
        let id = AffinePoint::identity();
        assert_eq!(g.add(&id), g);
        assert_eq!(id.add(&g), g);
        assert!(g.add(&g.neg()).infinity);
        assert!(g.mul(&Scalar::zero()).infinity);
        assert!(id.mul(&Scalar::from_u64(7)).infinity);
    }

    #[test]
    fn doubling_matches_addition() {
        let g = JacobianPoint::from_affine(&AffinePoint::generator());
        assert_eq!(g.double(), g.add(&g));
    }

    #[test]
    fn multi_scalar_matches_naive() {
        let mut rng = HmacDrbg::from_seed(5);
        let g = AffinePoint::generator();
        for _ in 0..4 {
            let a = Scalar::random(&mut rng);
            let b = Scalar::random(&mut rng);
            let q = g.mul(&Scalar::random(&mut rng));
            let fast = multi_scalar_mul(&a, &g, &b, &q);
            let naive = g.mul(&a).add(&q.mul(&b));
            assert_eq!(fast, naive);
        }
    }

    #[test]
    fn mul_random_scalars_stay_on_curve() {
        let mut rng = HmacDrbg::from_seed(6);
        let g = AffinePoint::generator();
        for _ in 0..4 {
            let k = Scalar::random(&mut rng);
            let p = g.mul(&k);
            assert!(p.is_on_curve());
            assert!(!p.infinity);
        }
    }

    #[test]
    fn jacobian_eq_across_representations() {
        let g = JacobianPoint::from_affine(&AffinePoint::generator());
        let doubled = g.double();
        // Same point reached two ways, different Z.
        let via_add = g.add(&g);
        assert_eq!(doubled, via_add);
        assert_eq!(doubled.to_affine(), via_add.to_affine());
    }

    #[test]
    fn from_coords_validates() {
        let g = AffinePoint::generator();
        assert!(AffinePoint::from_coords(g.x, g.y).is_some());
        assert!(AffinePoint::from_coords(g.x, g.x).is_none());
    }

    #[test]
    fn fixed_base_matches_generic_mul() {
        let mut rng = HmacDrbg::from_seed(7);
        let g = AffinePoint::generator();
        for _ in 0..8 {
            let k = Scalar::random(&mut rng);
            assert_eq!(mul_generator(&k), g.mul(&k));
        }
        // Edge scalars: 0, 1, n−1, and single-nibble values.
        assert!(mul_generator(&Scalar::zero()).infinity);
        assert_eq!(mul_generator(&Scalar::one()), g);
        let n_minus_1 = Scalar::from_u64(1).neg();
        assert_eq!(mul_generator(&n_minus_1), g.neg());
        for shift in [0u32, 4, 60, 252] {
            let k = Scalar::from_u64(9).mul(&pow2_scalar(shift));
            assert_eq!(mul_generator(&k), g.mul(&k), "shift {shift}");
        }
    }

    fn pow2_scalar(bits: u32) -> Scalar {
        let mut s = Scalar::one();
        for _ in 0..bits {
            s = s.add(&s);
        }
        s
    }

    #[test]
    fn batch_normalize_matches_individual() {
        let mut rng = HmacDrbg::from_seed(8);
        let g = JacobianPoint::from_affine(&AffinePoint::generator());
        let mut points = vec![JacobianPoint::identity()];
        for _ in 0..5 {
            points.push(g.mul(&Scalar::random(&mut rng)));
        }
        points.push(JacobianPoint::identity());
        let batch = batch_normalize(&points);
        assert_eq!(batch.len(), points.len());
        for (jac, aff) in points.iter().zip(&batch) {
            assert_eq!(jac.to_affine(), *aff);
        }
        assert!(batch[0].infinity);
        assert!(batch.last().unwrap().infinity);
        assert!(batch_normalize(&[]).is_empty());
    }
}
