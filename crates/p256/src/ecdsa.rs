//! ECDSA over P-256 with SHA-256.
//!
//! This is the authentication primitive of both the paper's STS design
//! (Algorithms 1 and 2) and the static S-ECDSA baseline. Signing is
//! deterministic (RFC 6979) by default — reproducible simulation — with
//! an optional randomized mode. Verification supports two strategies:
//! two separate scalar multiplications (micro-ecc's behaviour, the
//! default for the device cost model) and Shamir's trick (an ablation).

use crate::point::{
    mul_generator_ct, mul_generator_vartime_jacobian, multi_scalar_mul, AffinePoint, JacobianPoint,
};
use crate::rfc6979;
use crate::scalar::Scalar;
use crate::CurveError;
use ecq_crypto::sha256::sha256;
use ecq_crypto::HmacDrbg;

/// A raw `r ‖ s` ECDSA signature (the paper's `Sign(64)` / `dsign`).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Signature {
    /// The `r` component.
    pub r: Scalar,
    /// The `s` component.
    pub s: Scalar,
}

impl core::fmt::Debug for Signature {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let b = self.to_bytes();
        write!(
            f,
            "Signature({:02x}{:02x}…{:02x}{:02x})",
            b[0], b[1], b[62], b[63]
        )
    }
}

impl Signature {
    /// Serializes to 64 bytes (`r ‖ s`, big-endian).
    pub fn to_bytes(self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.r.to_be_bytes());
        out[32..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Parses a 64-byte `r ‖ s` signature.
    ///
    /// # Errors
    ///
    /// [`CurveError::InvalidSignature`] when either component is zero
    /// or out of range.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CurveError> {
        if bytes.len() != 64 {
            return Err(CurveError::InvalidSignature);
        }
        let mut rb = [0u8; 32];
        let mut sb = [0u8; 32];
        rb.copy_from_slice(&bytes[..32]);
        sb.copy_from_slice(&bytes[32..]);
        let r = Scalar::from_be_bytes(&rb).map_err(|_| CurveError::InvalidSignature)?;
        let s = Scalar::from_be_bytes(&sb).map_err(|_| CurveError::InvalidSignature)?;
        if r.is_zero() || s.is_zero() {
            return Err(CurveError::InvalidSignature);
        }
        Ok(Signature { r, s })
    }
}

/// Verification strategy for the `u1·G + u2·Q` computation.
///
/// Separate muls stay the default on measurement, not convention: the
/// fixed-base `u1·G` rides the 8-bit wide comb (no doublings at all)
/// while the Shamir ladder would force it through ~256 shared
/// doublings — a trade the comb wins even after the wNAF rework of
/// `u2·Q`. See the decision record in [`crate::precomp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum VerifyStrategy {
    /// Two independent scalar multiplications, then one addition —
    /// micro-ecc's approach and the measured winner (comb-backed
    /// `u1·G` + wNAF `u2·Q`).
    #[default]
    SeparateMuls,
    /// Shamir's trick: one interleaved double-and-add pass. Kept as an
    /// ablation; loses to [`Self::SeparateMuls`] because the shared
    /// ladder cannot use the fixed-base comb.
    Shamir,
}

fn hash_to_scalar(msg: &[u8]) -> Scalar {
    Scalar::from_be_bytes_reduced(&sha256(msg))
}

/// Signs `msg` (hashed internally with SHA-256) with deterministic
/// RFC 6979 nonces. Produces a low-s normalized signature.
pub fn sign(private: &Scalar, msg: &[u8]) -> Signature {
    let h = sha256(msg);
    sign_prehashed(private, &h)
}

/// Signs a precomputed 32-byte message hash.
pub fn sign_prehashed(private: &Scalar, hash: &[u8; 32]) -> Signature {
    let e = Scalar::from_be_bytes_reduced(hash);
    let mut k = rfc6979::generate_k(private, hash);
    loop {
        if let Some(sig) = sign_with_k(private, &e, &k) {
            return sig;
        }
        // Astronomically unlikely; perturb k deterministically.
        k = k.add(&Scalar::one());
    }
}

/// Signs with a randomized nonce drawn from `rng`.
pub fn sign_randomized(private: &Scalar, msg: &[u8], rng: &mut HmacDrbg) -> Signature {
    let e = hash_to_scalar(msg);
    loop {
        let k = Scalar::random(rng);
        if let Some(sig) = sign_with_k(private, &e, &k) {
            return sig;
        }
    }
}

fn sign_with_k(private: &Scalar, e: &Scalar, k: &Scalar) -> Option<Signature> {
    // The nonce multiplication leaks the private key if its schedule
    // leaks k, so it runs on the constant-time fixed-base path.
    let point = mul_generator_ct(k);
    if point.infinity {
        return None;
    }
    let r = Scalar::from_reduced(&point.x.to_canonical());
    if r.is_zero() {
        return None;
    }
    let s = k.invert().mul(&e.add(&r.mul(private)));
    if s.is_zero() {
        return None;
    }
    // Low-s normalization (avoids signature malleability).
    let s = if s.is_high() { s.neg() } else { s };
    Some(Signature { r, s })
}

/// Verifies a signature on `msg` (hashed internally) under `public`.
pub fn verify(public: &AffinePoint, msg: &[u8], sig: &Signature) -> bool {
    verify_with(public, msg, sig, VerifyStrategy::default())
}

/// Verifies with an explicit [`VerifyStrategy`].
pub fn verify_with(
    public: &AffinePoint,
    msg: &[u8],
    sig: &Signature,
    strategy: VerifyStrategy,
) -> bool {
    let h = sha256(msg);
    verify_prehashed(public, &h, sig, strategy)
}

/// Verifies a signature over a precomputed 32-byte hash.
pub fn verify_prehashed(
    public: &AffinePoint,
    hash: &[u8; 32],
    sig: &Signature,
    strategy: VerifyStrategy,
) -> bool {
    if public.infinity || !public.is_on_curve() || sig.r.is_zero() || sig.s.is_zero() {
        return false;
    }
    let e = Scalar::from_be_bytes_reduced(hash);
    let s_inv = sig.s.invert();
    let u1 = e.mul(&s_inv);
    let u2 = sig.r.mul(&s_inv);
    // u1/u2 derive from the public signature and hash, so verification
    // stays on the faster vartime paths.
    let point = match strategy {
        VerifyStrategy::SeparateMuls => {
            // u1·G rides the wide fixed-base comb (no doublings); the
            // sum stays Jacobian so the whole verification pays one
            // field inversion instead of three.
            let u1g = mul_generator_vartime_jacobian(&u1);
            let u2q = JacobianPoint::from_affine(public).mul_vartime(&u2);
            u1g.add(&u2q).to_affine()
        }
        VerifyStrategy::Shamir => multi_scalar_mul(&u1, &AffinePoint::generator(), &u2, public),
    };
    if point.infinity {
        return false;
    }
    Scalar::from_reduced(&point.x.to_canonical()) == sig.r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldElement;
    use crate::keys::KeyPair;
    use crate::u256::U256;

    fn rfc6979_key() -> Scalar {
        Scalar::from_canonical(&U256::from_be_hex(
            "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721",
        ))
        .unwrap()
    }

    // RFC 6979 A.2.5: P-256, SHA-256, message "sample".
    #[test]
    fn rfc6979_sample_signature() {
        let sig = sign(&rfc6979_key(), b"sample");
        assert_eq!(
            sig.r.to_canonical().to_string(),
            "efd48b2aacb6a8fd1140dd9cd45e81d69d2c877b56aaf991c34d0ea84eaf3716"
        );
        // RFC 6979 reports a high-s signature; our signer normalizes to
        // low-s, so the expected value is n − s_ref.
        let s_ref = Scalar::from_canonical(&U256::from_be_hex(
            "f7cb1c942d657c41d436c7a1b6e29f65f3e900dbb9aff4064dc4ab2f843acda8",
        ))
        .unwrap();
        assert!(s_ref.is_high());
        assert_eq!(sig.s, s_ref.neg());

        // The signature must verify under the RFC 6979 public key.
        let ux = FieldElement::from_canonical(&U256::from_be_hex(
            "60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce669622e60f29fb6",
        ))
        .unwrap();
        let uy = FieldElement::from_canonical(&U256::from_be_hex(
            "7903fe1008b8bc99a41ae9e95628bc64f2f1b20c2d7e9f5177a3c294d4462299",
        ))
        .unwrap();
        let public = AffinePoint::from_coords(ux, uy).expect("RFC key on curve");
        assert_eq!(public, mul_generator_ct(&rfc6979_key()));
        assert!(verify(&public, b"sample", &sig));
    }

    #[test]
    fn sign_verify_roundtrip_both_strategies() {
        let mut rng = HmacDrbg::from_seed(41);
        let kp = KeyPair::generate(&mut rng);
        let sig = sign(&kp.private, b"session transcript");
        assert!(verify_with(
            &kp.public,
            b"session transcript",
            &sig,
            VerifyStrategy::SeparateMuls
        ));
        assert!(verify_with(
            &kp.public,
            b"session transcript",
            &sig,
            VerifyStrategy::Shamir
        ));
    }

    #[test]
    fn verify_rejects_wrong_message_or_key() {
        let mut rng = HmacDrbg::from_seed(42);
        let kp = KeyPair::generate(&mut rng);
        let other = KeyPair::generate(&mut rng);
        let sig = sign(&kp.private, b"msg");
        assert!(!verify(&kp.public, b"msG", &sig));
        assert!(!verify(&other.public, b"msg", &sig));
    }

    #[test]
    fn verify_rejects_tampered_signature() {
        let mut rng = HmacDrbg::from_seed(43);
        let kp = KeyPair::generate(&mut rng);
        let sig = sign(&kp.private, b"msg");
        let bad_r = Signature {
            r: sig.r.add(&Scalar::one()),
            s: sig.s,
        };
        let bad_s = Signature {
            r: sig.r,
            s: sig.s.add(&Scalar::one()),
        };
        assert!(!verify(&kp.public, b"msg", &bad_r));
        assert!(!verify(&kp.public, b"msg", &bad_s));
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let sig = sign(&rfc6979_key(), b"abc");
        let parsed = Signature::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(parsed, sig);
        assert!(Signature::from_bytes(&[0u8; 64]).is_err()); // zero r/s
        assert!(Signature::from_bytes(&[0u8; 63]).is_err());
        assert!(Signature::from_bytes(&[0xffu8; 64]).is_err()); // out of range
    }

    #[test]
    fn randomized_signatures_differ_but_verify() {
        let mut rng = HmacDrbg::from_seed(44);
        let kp = KeyPair::generate(&mut rng);
        let s1 = sign_randomized(&kp.private, b"m", &mut rng);
        let s2 = sign_randomized(&kp.private, b"m", &mut rng);
        assert_ne!(s1.to_bytes(), s2.to_bytes());
        assert!(verify(&kp.public, b"m", &s1));
        assert!(verify(&kp.public, b"m", &s2));
    }

    #[test]
    fn low_s_normalization() {
        let mut rng = HmacDrbg::from_seed(45);
        for _ in 0..4 {
            let kp = KeyPair::generate(&mut rng);
            let sig = sign_randomized(&kp.private, b"normalize", &mut rng);
            assert!(!sig.s.is_high());
        }
    }

    #[test]
    fn verify_rejects_infinity_public_key() {
        let sig = sign(&rfc6979_key(), b"x");
        assert!(!verify(&AffinePoint::identity(), b"x", &sig));
    }
}
