//! Arithmetic in GF(p), the P-256 base field.
//!
//! `p = 2^256 − 2^224 + 2^192 + 2^96 − 1`. Elements are stored in
//! Montgomery form and every operation runs on the specialized
//! fixed-constant backend ([`crate::backend`]): unrolled
//! multiplication/squaring with the modulus limbs and `n0 = 1` folded
//! in at compile time, branch-free final reductions, and inversion /
//! square root via fixed Fermat addition chains instead of generic
//! square-and-multiply. The generic [`crate::mont::MontCtx`] engine is
//! no longer on any GF(p) path — it survives as the reference oracle
//! the backend proptests compare against.

use crate::backend::{self, MontParams};
use crate::u256::U256;

/// The P-256 prime modulus, big-endian hex.
pub const P_HEX: &str = "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff";

/// The curve coefficient `b`, big-endian hex (`a = −3` is implicit in
/// the point formulas).
pub const B_HEX: &str = "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b";

/// The prime as little-endian limbs.
const P_LIMBS: [u64; 4] = [
    0xffff_ffff_ffff_ffff,
    0x0000_0000_ffff_ffff,
    0x0000_0000_0000_0000,
    0xffff_ffff_0000_0001,
];

/// Compile-time Montgomery parameters for GF(p); `n0 = 1` here, so the
/// reduction multiplier in the unrolled backend folds away entirely.
const P_PARAMS: MontParams = MontParams::new(P_LIMBS);

/// The curve coefficient `b` in Montgomery form (computed once from
/// [`B_HEX`] at compile time would need const hex parsing; a one-time
/// lazy conversion is equivalent and keeps the constant auditable).
fn curve_b_mont() -> &'static FieldElement {
    static B: std::sync::OnceLock<FieldElement> = std::sync::OnceLock::new();
    B.get_or_init(|| FieldElement::from_canonical(&U256::from_be_hex(B_HEX)).expect("b < p"))
}

/// Counters for the field-operation schedule, mirroring `point::ops`:
/// the constant-time assertions use these to prove the inversion and
/// square-root chains run a value-independent sequence of
/// multiplications and squarings. Compiled for this crate's tests and
/// under the `schedule-counters` feature for cross-crate checks.
#[cfg(any(test, feature = "schedule-counters"))]
pub mod fe_ops {
    use std::cell::Cell;

    thread_local! {
        static MULS: Cell<u64> = const { Cell::new(0) };
        static SQUARES: Cell<u64> = const { Cell::new(0) };
    }

    /// Snapshot of this thread's field-operation counters.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct Counts {
        /// Multiplications recorded on this thread.
        pub muls: u64,
        /// Dedicated squarings recorded on this thread.
        pub squares: u64,
    }

    /// Counts one field multiplication on this thread.
    pub fn record_mul() {
        MULS.with(|c| c.set(c.get() + 1));
    }
    /// Counts one field squaring on this thread.
    pub fn record_square() {
        SQUARES.with(|c| c.set(c.get() + 1));
    }

    /// Runs `f` with zeroed counters and returns its result plus the
    /// field operations it performed on this thread.
    pub fn measure<R>(f: impl FnOnce() -> R) -> (R, Counts) {
        MULS.with(|c| c.set(0));
        SQUARES.with(|c| c.set(0));
        let result = f();
        let counts = Counts {
            muls: MULS.with(Cell::get),
            squares: SQUARES.with(Cell::get),
        };
        (result, counts)
    }
}

/// An element of GF(p) in Montgomery form.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct FieldElement(U256);

impl core::fmt::Debug for FieldElement {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fe(0x{})", self.to_canonical())
    }
}

impl FieldElement {
    /// The additive identity.
    pub fn zero() -> Self {
        FieldElement(U256::ZERO)
    }

    /// The multiplicative identity.
    pub fn one() -> Self {
        FieldElement(U256::from_limbs(P_PARAMS.r1))
    }

    /// The curve coefficient `b`.
    pub fn curve_b() -> Self {
        *curve_b_mont()
    }

    /// Builds a field element from a canonical integer `< p`.
    ///
    /// Returns `None` when `v >= p`.
    pub fn from_canonical(v: &U256) -> Option<Self> {
        if *v >= U256::from_limbs(P_LIMBS) {
            None
        } else {
            Some(FieldElement(U256::from_limbs(backend::mont_mul(
                &v.limbs(),
                &P_PARAMS.r2,
                &P_PARAMS,
            ))))
        }
    }

    /// Builds a field element reducing an arbitrary 256-bit value mod p.
    pub fn from_reduced(v: &U256) -> Self {
        let reduced = backend::reduce_once(&v.limbs(), &P_PARAMS);
        FieldElement(U256::from_limbs(backend::mont_mul(
            &reduced,
            &P_PARAMS.r2,
            &P_PARAMS,
        )))
    }

    /// Builds from a small integer.
    pub fn from_u64(v: u64) -> Self {
        FieldElement(U256::from_limbs(backend::mont_mul(
            &[v, 0, 0, 0],
            &P_PARAMS.r2,
            &P_PARAMS,
        )))
    }

    /// Returns the canonical (non-Montgomery) value.
    pub fn to_canonical(self) -> U256 {
        U256::from_limbs(backend::mont_mul(&self.0.limbs(), &[1, 0, 0, 0], &P_PARAMS))
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        self.to_canonical().to_be_bytes()
    }

    /// Parses 32 big-endian bytes; `None` when the value is `>= p`.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Option<Self> {
        Self::from_canonical(&U256::from_be_bytes(bytes))
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// All-ones mask when this is zero, without branching (Montgomery
    /// representation of zero is zero, so the raw limbs decide).
    pub fn ct_is_zero_mask(&self) -> u64 {
        self.0.ct_is_zero_mask()
    }

    /// Constant-time select: `a` when `mask` is all-ones, `b` when
    /// all-zeros. `mask` must be one of the two.
    pub fn conditional_select(a: &Self, b: &Self, mask: u64) -> Self {
        FieldElement(crate::ct::select_u256(&a.0, &b.0, mask))
    }

    /// Addition in GF(p).
    pub fn add(&self, rhs: &Self) -> Self {
        FieldElement(U256::from_limbs(backend::add_mod(
            &self.0.limbs(),
            &rhs.0.limbs(),
            &P_PARAMS,
        )))
    }

    /// Subtraction in GF(p).
    pub fn sub(&self, rhs: &Self) -> Self {
        FieldElement(U256::from_limbs(backend::sub_mod(
            &self.0.limbs(),
            &rhs.0.limbs(),
            &P_PARAMS,
        )))
    }

    /// Negation in GF(p).
    pub fn neg(&self) -> Self {
        FieldElement(U256::from_limbs(backend::neg_mod(
            &self.0.limbs(),
            &P_PARAMS,
        )))
    }

    /// Multiplication in GF(p).
    pub fn mul(&self, rhs: &Self) -> Self {
        #[cfg(any(test, feature = "schedule-counters"))]
        fe_ops::record_mul();
        FieldElement(U256::from_limbs(backend::mont_mul(
            &self.0.limbs(),
            &rhs.0.limbs(),
            &P_PARAMS,
        )))
    }

    /// Squaring in GF(p) — a dedicated pass (cross products computed
    /// once and doubled), measurably cheaper than `mul(self, self)`.
    pub fn square(&self) -> Self {
        #[cfg(any(test, feature = "schedule-counters"))]
        fe_ops::record_square();
        FieldElement(U256::from_limbs(backend::mont_sqr(
            &self.0.limbs(),
            &P_PARAMS,
        )))
    }

    /// Doubling (`2·self`).
    pub fn double(&self) -> Self {
        self.add(self)
    }

    /// Multiplication by a small constant.
    pub fn mul_u64(&self, k: u64) -> Self {
        self.mul(&FieldElement::from_u64(k))
    }

    /// `self^(2^n)`: `n` back-to-back squarings (chain helper).
    fn sqn(&self, n: usize) -> Self {
        let mut x = *self;
        for _ in 0..n {
            x = x.square();
        }
        x
    }

    /// The shared low-Hamming-weight powers `x^(2^k − 1)` for
    /// `k ∈ {2, 4, 8, 16, 32}` that both Fermat chains start from.
    fn small_pows(&self) -> [FieldElement; 5] {
        let x2 = self.square().mul(self);
        let x4 = x2.sqn(2).mul(&x2);
        let x8 = x4.sqn(4).mul(&x4);
        let x16 = x8.sqn(8).mul(&x8);
        let x32 = x16.sqn(16).mul(&x16);
        [x2, x4, x8, x16, x32]
    }

    /// Multiplicative inverse via the Fermat addition chain for
    /// `p − 2`: exactly 255 squarings and 13 multiplications for every
    /// input — no exponent-bit scanning, no value-dependent schedule
    /// (the test-only `fe_ops` counters assert this).
    ///
    /// # Panics
    ///
    /// Panics when `self` is zero.
    pub fn invert(&self) -> Self {
        assert!(!self.is_zero(), "attempted to invert zero");
        let [x2, x4, x8, x16, x32] = self.small_pows();
        // p − 2 in 32-bit words, most significant first:
        //   ffffffff 00000001 00000000 00000000
        //   00000000 ffffffff ffffffff fffffffd
        let mut t = x32.sqn(32).mul(self); // ffffffff 00000001
        t = t.sqn(128).mul(&x32); // three zero words, then ffffffff
        t = t.sqn(32).mul(&x32); // ffffffff
        t = t.sqn(16).mul(&x16); // fffffffd assembled from
        t = t.sqn(8).mul(&x8); //   16+8+4+2 ones…
        t = t.sqn(4).mul(&x4);
        t = t.sqn(2).mul(&x2);
        t.sqn(2).mul(self) // …and the final "01" bits
    }

    /// Square root, if one exists (`p ≡ 3 mod 4` ⇒ `sqrt = a^{(p+1)/4}`),
    /// via a fixed addition chain: the candidate costs 253 squarings
    /// and 7 multiplications, plus one squaring to verify it.
    ///
    /// Returns `None` for quadratic non-residues. Used by point
    /// decompression.
    pub fn sqrt(&self) -> Option<Self> {
        let [_, _, _, _, x32] = self.small_pows();
        // (p+1)/4 = 2^254 − 2^222 + 2^190 + 2^94: a 32-one block at the
        // top, two lone bits, and 94 trailing zeros.
        let mut t = x32.sqn(32).mul(self);
        t = t.sqn(96).mul(self);
        let candidate = t.sqn(94);
        if candidate.square() == *self {
            Some(candidate)
        } else {
            None
        }
    }

    /// Whether the canonical value is odd (used for compressed point
    /// parity).
    pub fn is_odd(&self) -> bool {
        self.to_canonical().is_odd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        let a = FieldElement::from_u64(123456789);
        assert_eq!(a.add(&FieldElement::zero()), a);
        assert_eq!(a.mul(&FieldElement::one()), a);
        assert_eq!(a.sub(&a), FieldElement::zero());
        assert_eq!(a.add(&a.neg()), FieldElement::zero());
    }

    #[test]
    fn inverse_roundtrip() {
        let a = FieldElement::from_u64(0xdead_beef_cafe_f00d);
        assert_eq!(a.mul(&a.invert()), FieldElement::one());
        // p − 1 is its own inverse (it is −1).
        let p_minus_1 = FieldElement::one().neg();
        assert_eq!(p_minus_1.invert(), p_minus_1);
        assert_eq!(FieldElement::one().invert(), FieldElement::one());
    }

    #[test]
    fn sqrt_of_square() {
        for v in [2u64, 3, 5, 1 << 40] {
            let a = FieldElement::from_u64(v);
            let sq = a.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root == a || root == a.neg(), "v={v}");
        }
    }

    #[test]
    fn non_residue_has_no_root() {
        // -1 is a non-residue mod p256 prime (p ≡ 3 mod 4).
        let minus_one = FieldElement::one().neg();
        assert!(minus_one.sqrt().is_none());
    }

    #[test]
    fn byte_roundtrip_and_range_check() {
        let a = FieldElement::from_u64(42);
        assert_eq!(FieldElement::from_be_bytes(&a.to_be_bytes()), Some(a));
        // p itself must be rejected.
        let p_bytes = U256::from_be_hex(P_HEX).to_be_bytes();
        assert!(FieldElement::from_be_bytes(&p_bytes).is_none());
        assert!(FieldElement::from_be_bytes(&[0xff; 32]).is_none());
    }

    #[test]
    fn curve_b_constant() {
        assert_eq!(FieldElement::curve_b().to_canonical().to_string(), B_HEX);
    }

    #[test]
    fn distributivity_sample() {
        let a = FieldElement::from_u64(77);
        let b = FieldElement::from_u64(1 << 50);
        let c = FieldElement::from_u64(u64::MAX);
        assert_eq!(a.add(&b).mul(&c), a.mul(&c).add(&b.mul(&c)));
    }

    #[test]
    fn square_matches_mul() {
        let mut a = FieldElement::from_u64(3);
        for _ in 0..32 {
            assert_eq!(a.square(), a.mul(&a));
            a = a.square().add(&FieldElement::one());
        }
    }

    #[test]
    fn limbs_hex_agree() {
        assert_eq!(U256::from_limbs(P_LIMBS), U256::from_be_hex(P_HEX));
    }

    #[test]
    fn inversion_schedule_is_value_independent() {
        // The Fermat chain must run the same multiplication/squaring
        // sequence for every input: 255 squarings + 13 multiplications.
        let mut schedules = Vec::new();
        for v in [1u64, 2, 0xdead_beef, u64::MAX] {
            let a = FieldElement::from_u64(v);
            let (_, counts) = fe_ops::measure(|| a.invert());
            assert_eq!(counts.squares, 255, "v={v}: {counts:?}");
            assert_eq!(counts.muls, 13, "v={v}: {counts:?}");
            schedules.push(counts);
        }
        let p_minus_1 = FieldElement::one().neg();
        let (_, counts) = fe_ops::measure(|| p_minus_1.invert());
        schedules.push(counts);
        assert!(schedules.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn sqrt_schedule_is_value_independent() {
        // Residues and non-residues must cost the same: 254 squarings
        // (253 chain + 1 verification) + 7 multiplications.
        let residue = FieldElement::from_u64(2).square();
        let non_residue = FieldElement::one().neg();
        let (r, counts_r) = fe_ops::measure(|| residue.sqrt());
        let (n, counts_n) = fe_ops::measure(|| non_residue.sqrt());
        assert!(r.is_some());
        assert!(n.is_none());
        assert_eq!(counts_r, counts_n);
        assert_eq!(counts_r.squares, 254, "{counts_r:?}");
        assert_eq!(counts_r.muls, 7, "{counts_r:?}");
    }
}
