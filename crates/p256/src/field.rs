//! Arithmetic in GF(p), the P-256 base field.
//!
//! `p = 2^256 − 2^224 + 2^192 + 2^96 − 1`. Elements are stored in
//! Montgomery form; the shared [`MontCtx`] is built once per process.

use crate::mont::MontCtx;
use crate::u256::U256;
use std::sync::OnceLock;

/// The P-256 prime modulus, big-endian hex.
pub const P_HEX: &str = "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff";

/// The curve coefficient `b`, big-endian hex (`a = −3` is implicit in
/// the point formulas).
pub const B_HEX: &str = "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b";

fn ctx() -> &'static MontCtx {
    static CTX: OnceLock<MontCtx> = OnceLock::new();
    CTX.get_or_init(|| MontCtx::new(U256::from_be_hex(P_HEX)))
}

/// An element of GF(p) in Montgomery form.
#[derive(Clone, Copy, PartialEq, Eq, Default)]
pub struct FieldElement(U256);

impl core::fmt::Debug for FieldElement {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Fe(0x{})", self.to_canonical())
    }
}

impl FieldElement {
    /// The additive identity.
    pub fn zero() -> Self {
        FieldElement(U256::ZERO)
    }

    /// The multiplicative identity.
    pub fn one() -> Self {
        FieldElement(ctx().r1)
    }

    /// The curve coefficient `b`.
    pub fn curve_b() -> Self {
        static B: OnceLock<FieldElement> = OnceLock::new();
        *B.get_or_init(|| FieldElement::from_canonical(&U256::from_be_hex(B_HEX)).expect("b < p"))
    }

    /// Builds a field element from a canonical integer `< p`.
    ///
    /// Returns `None` when `v >= p`.
    pub fn from_canonical(v: &U256) -> Option<Self> {
        if *v >= ctx().m {
            None
        } else {
            Some(FieldElement(ctx().to_mont(v)))
        }
    }

    /// Builds a field element reducing an arbitrary 256-bit value mod p.
    pub fn from_reduced(v: &U256) -> Self {
        FieldElement(ctx().to_mont(&ctx().reduce(v)))
    }

    /// Builds from a small integer.
    pub fn from_u64(v: u64) -> Self {
        FieldElement(ctx().to_mont(&U256::from_u64(v)))
    }

    /// Returns the canonical (non-Montgomery) value.
    pub fn to_canonical(self) -> U256 {
        ctx().from_mont(&self.0)
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        self.to_canonical().to_be_bytes()
    }

    /// Parses 32 big-endian bytes; `None` when the value is `>= p`.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Option<Self> {
        Self::from_canonical(&U256::from_be_bytes(bytes))
    }

    /// Whether this is zero.
    pub fn is_zero(&self) -> bool {
        self.0.is_zero()
    }

    /// All-ones mask when this is zero, without branching (Montgomery
    /// representation of zero is zero, so the raw limbs decide).
    pub fn ct_is_zero_mask(&self) -> u64 {
        self.0.ct_is_zero_mask()
    }

    /// Constant-time select: `a` when `mask` is all-ones, `b` when
    /// all-zeros. `mask` must be one of the two.
    pub fn conditional_select(a: &Self, b: &Self, mask: u64) -> Self {
        FieldElement(crate::ct::select_u256(&a.0, &b.0, mask))
    }

    /// Addition in GF(p).
    pub fn add(&self, rhs: &Self) -> Self {
        FieldElement(ctx().add(&self.0, &rhs.0))
    }

    /// Subtraction in GF(p).
    pub fn sub(&self, rhs: &Self) -> Self {
        FieldElement(ctx().sub(&self.0, &rhs.0))
    }

    /// Negation in GF(p).
    pub fn neg(&self) -> Self {
        FieldElement(ctx().neg(&self.0))
    }

    /// Multiplication in GF(p).
    pub fn mul(&self, rhs: &Self) -> Self {
        FieldElement(ctx().mont_mul(&self.0, &rhs.0))
    }

    /// Squaring in GF(p).
    pub fn square(&self) -> Self {
        self.mul(self)
    }

    /// Doubling (`2·self`).
    pub fn double(&self) -> Self {
        self.add(self)
    }

    /// Multiplication by a small constant.
    pub fn mul_u64(&self, k: u64) -> Self {
        self.mul(&FieldElement::from_u64(k))
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics when `self` is zero.
    pub fn invert(&self) -> Self {
        FieldElement(ctx().mont_inv(&self.0))
    }

    /// Square root, if one exists (`p ≡ 3 mod 4` ⇒ `sqrt = a^{(p+1)/4}`).
    ///
    /// Returns `None` for quadratic non-residues. Used by point
    /// decompression.
    pub fn sqrt(&self) -> Option<Self> {
        // (p+1)/4
        static EXP: OnceLock<U256> = OnceLock::new();
        let exp = EXP.get_or_init(|| {
            let (p1, carry) = ctx().m.adc(&U256::ONE);
            debug_assert!(!carry);
            p1.shr1().shr1()
        });
        let candidate = FieldElement(ctx().mont_pow(&self.0, exp));
        if candidate.square() == *self {
            Some(candidate)
        } else {
            None
        }
    }

    /// Whether the canonical value is odd (used for compressed point
    /// parity).
    pub fn is_odd(&self) -> bool {
        self.to_canonical().is_odd()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identities() {
        let a = FieldElement::from_u64(123456789);
        assert_eq!(a.add(&FieldElement::zero()), a);
        assert_eq!(a.mul(&FieldElement::one()), a);
        assert_eq!(a.sub(&a), FieldElement::zero());
        assert_eq!(a.add(&a.neg()), FieldElement::zero());
    }

    #[test]
    fn inverse_roundtrip() {
        let a = FieldElement::from_u64(0xdead_beef_cafe_f00d);
        assert_eq!(a.mul(&a.invert()), FieldElement::one());
    }

    #[test]
    fn sqrt_of_square() {
        for v in [2u64, 3, 5, 1 << 40] {
            let a = FieldElement::from_u64(v);
            let sq = a.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root == a || root == a.neg(), "v={v}");
        }
    }

    #[test]
    fn non_residue_has_no_root() {
        // -1 is a non-residue mod p256 prime (p ≡ 3 mod 4).
        let minus_one = FieldElement::one().neg();
        assert!(minus_one.sqrt().is_none());
    }

    #[test]
    fn byte_roundtrip_and_range_check() {
        let a = FieldElement::from_u64(42);
        assert_eq!(FieldElement::from_be_bytes(&a.to_be_bytes()), Some(a));
        // p itself must be rejected.
        let p_bytes = U256::from_be_hex(P_HEX).to_be_bytes();
        assert!(FieldElement::from_be_bytes(&p_bytes).is_none());
        assert!(FieldElement::from_be_bytes(&[0xff; 32]).is_none());
    }

    #[test]
    fn curve_b_constant() {
        assert_eq!(FieldElement::curve_b().to_canonical().to_string(), B_HEX);
    }

    #[test]
    fn distributivity_sample() {
        let a = FieldElement::from_u64(77);
        let b = FieldElement::from_u64(1 << 50);
        let c = FieldElement::from_u64(u64::MAX);
        assert_eq!(a.add(&b).mul(&c), a.mul(&c).add(&b.mul(&c)));
    }
}
