//! Constant-time selection primitives for secret-dependent curve paths.
//!
//! Everything secret-dependent in this crate — key generation, ECDH,
//! the ECDSA nonce multiplication, ECQV blinding and reconstruction —
//! routes through [`crate::point::mul_generator_ct`] and
//! [`crate::point::JacobianPoint::mul_ct`], which are built on the mask
//! arithmetic here: all-ones/all-zeros `u64` masks, branch-free
//! selects over [`U256`]/[`crate::FieldElement`]/points, and a table lookup
//! that scans *every* entry and keeps the match by mask, so neither the
//! branch predictor nor the data cache observes which window digit a
//! secret scalar produced.
//!
//! Scope of the model: these primitives remove secret-dependent
//! *control flow and table indexing* at the group-operation level. The
//! underlying Montgomery field arithmetic ([`crate::mont`]) retains its
//! value-dependent final conditional subtraction, like most portable
//! bignum code; that is documented in the README security notes.

use crate::point::AffinePoint;
use crate::u256::U256;

/// All-ones mask for `true`, all-zeros for `false`.
#[inline]
pub fn bool_mask(b: bool) -> u64 {
    (b as u64).wrapping_neg()
}

/// All-ones mask when `x == 0`, all-zeros otherwise, without branching.
#[inline]
pub fn is_zero_mask(x: u64) -> u64 {
    // `x | −x` has its top bit set exactly when x != 0.
    ((x | x.wrapping_neg()) >> 63).wrapping_sub(1)
}

/// All-ones mask when `a == b`, all-zeros otherwise.
#[inline]
pub fn eq_mask(a: u64, b: u64) -> u64 {
    is_zero_mask(a ^ b)
}

/// Selects `a` when `mask` is all-ones, `b` when all-zeros.
#[inline]
pub fn select_u64(a: u64, b: u64, mask: u64) -> u64 {
    (a & mask) | (b & !mask)
}

/// Constant-time window lookup: scans all 15 entries of a 4-bit window
/// table (`entries[i] = (i+1)·B`) and returns the digit's entry by
/// mask, plus the all-ones "digit is nonzero" mask.
///
/// For `digit == 0` the returned point is the dummy `entries[0]`
/// (`1·B`) with a zero mask — callers perform the addition anyway and
/// discard the result by select, keeping the schedule uniform.
pub fn lookup_affine(entries: &[AffinePoint; 15], digit: u8) -> (AffinePoint, u64) {
    let mut out = entries[0];
    for (i, entry) in entries.iter().enumerate().skip(1) {
        let take = eq_mask(digit as u64, (i + 1) as u64);
        out = AffinePoint::conditional_select(entry, &out, take);
    }
    (out, !is_zero_mask(digit as u64))
}

/// Constant-time select over [`U256`] (mask all-ones → `a`).
#[inline]
pub fn select_u256(a: &U256, b: &U256, mask: u64) -> U256 {
    let al = a.limbs();
    let bl = b.limbs();
    U256::from_limbs([
        select_u64(al[0], bl[0], mask),
        select_u64(al[1], bl[1], mask),
        select_u64(al[2], bl[2], mask),
        select_u64(al[3], bl[3], mask),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::mul_generator_vartime;
    use crate::scalar::Scalar;

    #[test]
    fn masks() {
        assert_eq!(bool_mask(true), u64::MAX);
        assert_eq!(bool_mask(false), 0);
        assert_eq!(is_zero_mask(0), u64::MAX);
        assert_eq!(is_zero_mask(1), 0);
        assert_eq!(is_zero_mask(u64::MAX), 0);
        assert_eq!(is_zero_mask(1 << 63), 0);
        assert_eq!(eq_mask(42, 42), u64::MAX);
        assert_eq!(eq_mask(42, 43), 0);
        assert_eq!(select_u64(7, 9, u64::MAX), 7);
        assert_eq!(select_u64(7, 9, 0), 9);
    }

    #[test]
    fn u256_select() {
        let a = U256::from_u64(5);
        let b = U256::MAX;
        assert_eq!(select_u256(&a, &b, u64::MAX), a);
        assert_eq!(select_u256(&a, &b, 0), b);
    }

    #[test]
    fn lookup_scans_every_digit() {
        // A window table over the generator: entries[i] = (i+1)·G.
        let mut entries = [AffinePoint::identity(); 15];
        for (i, e) in entries.iter_mut().enumerate() {
            *e = mul_generator_vartime(&Scalar::from_u64(i as u64 + 1));
        }
        for digit in 1..=15u8 {
            let (p, nonzero) = lookup_affine(&entries, digit);
            assert_eq!(p, entries[digit as usize - 1], "digit {digit}");
            assert_eq!(nonzero, u64::MAX);
        }
        let (dummy, nonzero) = lookup_affine(&entries, 0);
        assert_eq!(dummy, entries[0]);
        assert_eq!(nonzero, 0);
    }
}
