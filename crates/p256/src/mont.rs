//! Montgomery modular arithmetic over 256-bit odd moduli.
//!
//! This is the *generic* engine: any odd 256-bit modulus, constants
//! precomputed at construction (cheap: a couple hundred limb
//! operations) so that no hand-derived magic numbers need to be
//! trusted. Since the specialized fixed-constant backend
//! ([`crate::backend`]) took over the hot GF(p) and mod-n paths, the
//! role of [`MontCtx`] is the **reference oracle**: an independently
//! derived implementation the backend proptests
//! (`tests/proptest_field_backend.rs`) compare every operation
//! against, plus the engine for non-hot generic-modulus callers.

#![allow(clippy::needless_range_loop)] // index form mirrors the limb algorithms

use crate::u256::U256;

/// Precomputed context for Montgomery arithmetic mod an odd 256-bit
/// modulus `m` with `m > 2^255` (true for both P-256 moduli).
#[derive(Debug, Clone)]
pub struct MontCtx {
    /// The modulus.
    pub m: U256,
    /// `-m^{-1} mod 2^64`.
    n0: u64,
    /// `R mod m` where `R = 2^256` (this is `1` in Montgomery form).
    pub r1: U256,
    /// `R^2 mod m` (used to convert into Montgomery form).
    pub r2: U256,
}

impl MontCtx {
    /// Builds a context for modulus `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is even or `m <= 2^255` (not the P-256 shape).
    pub fn new(m: U256) -> Self {
        assert!(m.is_odd(), "Montgomery modulus must be odd");
        assert!(m.bit(255), "modulus must exceed 2^255");

        // n0 = -m^{-1} mod 2^64 by Newton–Hensel lifting.
        let m0 = m.limbs()[0];
        let mut inv: u64 = 1;
        for _ in 0..6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m0.wrapping_mul(inv)));
        }
        let n0 = inv.wrapping_neg();

        // R mod m = 2^256 - m   (valid because m > 2^255 ⇒ 2^256 < 2m).
        let r1 = m.wrapping_neg();

        // R^2 mod m by 256 modular doublings of R.
        let mut r2 = r1;
        for _ in 0..256 {
            r2 = Self::mod_double(&r2, &m);
        }

        MontCtx { m, n0, r1, r2 }
    }

    fn mod_double(x: &U256, m: &U256) -> U256 {
        let (d, carry) = x.shl1();
        let (r, borrow) = d.sbb(m);
        if carry || !borrow {
            r
        } else {
            d
        }
    }

    /// Modular addition of canonical (non-Montgomery) residues.
    pub fn add(&self, a: &U256, b: &U256) -> U256 {
        let (s, carry) = a.adc(b);
        let (r, borrow) = s.sbb(&self.m);
        if carry || !borrow {
            r
        } else {
            s
        }
    }

    /// Modular subtraction of canonical residues.
    pub fn sub(&self, a: &U256, b: &U256) -> U256 {
        let (d, borrow) = a.sbb(b);
        if borrow {
            d.wrapping_add(&self.m)
        } else {
            d
        }
    }

    /// Modular negation of a canonical residue.
    pub fn neg(&self, a: &U256) -> U256 {
        if a.is_zero() {
            U256::ZERO
        } else {
            self.m.wrapping_sub(a)
        }
    }

    /// Montgomery multiplication: returns `a·b·R^{-1} mod m`
    /// (CIOS over 4 limbs).
    pub fn mont_mul(&self, a: &U256, b: &U256) -> U256 {
        let al = a.limbs();
        let bl = b.limbs();
        let ml = self.m.limbs();
        // t has 6 active positions: 4 limbs + 2 overflow slots.
        let mut t = [0u64; 6];

        for i in 0..4 {
            // t += a[i] * b
            let mut carry = 0u128;
            for j in 0..4 {
                let acc = t[j] as u128 + (al[i] as u128) * (bl[j] as u128) + carry;
                t[j] = acc as u64;
                carry = acc >> 64;
            }
            let acc = t[4] as u128 + carry;
            t[4] = acc as u64;
            t[5] = (acc >> 64) as u64;

            // m-reduction step
            let u = t[0].wrapping_mul(self.n0);
            let acc = t[0] as u128 + (u as u128) * (ml[0] as u128);
            let mut carry = acc >> 64;
            for j in 1..4 {
                let acc = t[j] as u128 + (u as u128) * (ml[j] as u128) + carry;
                t[j - 1] = acc as u64;
                carry = acc >> 64;
            }
            let acc = t[4] as u128 + carry;
            t[3] = acc as u64;
            let acc2 = t[5] as u128 + (acc >> 64);
            t[4] = acc2 as u64;
            t[5] = (acc2 >> 64) as u64;
        }

        let result = U256::from_limbs([t[0], t[1], t[2], t[3]]);
        // Final conditional subtraction: result may be in [0, 2m). The
        // subtracted candidate is always computed and a mask picks the
        // reduced value — no branch on the (possibly secret) result.
        let (reduced, borrow) = result.sbb(&self.m);
        let take_reduced = !crate::ct::is_zero_mask(t[4]) | crate::ct::is_zero_mask(borrow as u64);
        crate::ct::select_u256(&reduced, &result, take_reduced)
    }

    /// The Montgomery reduction constant `-m^{-1} mod 2^64` (exposed so
    /// the specialized backend's compile-time constants can be checked
    /// against this runtime derivation).
    pub fn n0(&self) -> u64 {
        self.n0
    }

    /// Converts a canonical residue into Montgomery form (`a·R mod m`).
    pub fn to_mont(&self, a: &U256) -> U256 {
        self.mont_mul(a, &self.r2)
    }

    /// Converts out of Montgomery form (`a·R^{-1} mod m`).
    pub fn from_mont(&self, a: &U256) -> U256 {
        self.mont_mul(a, &U256::ONE)
    }

    /// Modular multiplication of canonical residues (convenience; two
    /// Montgomery passes).
    pub fn mul(&self, a: &U256, b: &U256) -> U256 {
        let am = self.to_mont(a);
        let bm = self.to_mont(b);
        self.from_mont(&self.mont_mul(&am, &bm))
    }

    /// Montgomery exponentiation: `base^exp · R mod m` for a Montgomery-
    /// form `base`; the result stays in Montgomery form.
    pub fn mont_pow(&self, base: &U256, exp: &U256) -> U256 {
        let mut acc = self.r1; // 1 in Montgomery form
        let bits = exp.bit_len();
        for i in (0..bits).rev() {
            acc = self.mont_mul(&acc, &acc);
            if exp.bit(i) {
                acc = self.mont_mul(&acc, base);
            }
        }
        acc
    }

    /// Modular inverse of a Montgomery-form element via Fermat's little
    /// theorem (`a^{m-2}`); valid because both P-256 moduli are prime.
    /// Returns a Montgomery-form result.
    ///
    /// # Panics
    ///
    /// Panics when `a` is zero (zero has no inverse).
    pub fn mont_inv(&self, a: &U256) -> U256 {
        assert!(!a.is_zero(), "attempted to invert zero");
        let exp = self.m.wrapping_sub(&U256::from_u64(2));
        self.mont_pow(a, &exp)
    }

    /// Reduces a 512-bit value mod m (schoolbook shift-subtract; used
    /// only at non-hot boundaries such as hash-to-scalar).
    pub fn reduce_wide(&self, wide: &[u64; 8]) -> U256 {
        // Process from the most significant bit down, maintaining
        // acc = value-so-far mod m.
        let mut acc = U256::ZERO;
        for i in (0..512).rev() {
            acc = Self::mod_double(&acc, &self.m);
            if (wide[i / 64] >> (i % 64)) & 1 == 1 {
                acc = self.add(&acc, &U256::ONE);
            }
        }
        acc
    }

    /// Reduces a canonical 256-bit value mod m (single conditional
    /// subtraction; valid because `m > 2^255`).
    pub fn reduce(&self, a: &U256) -> U256 {
        let (r, borrow) = a.sbb(&self.m);
        if borrow {
            *a
        } else {
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p256_prime() -> U256 {
        U256::from_be_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff")
    }

    fn p256_order() -> U256 {
        U256::from_be_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551")
    }

    /// Bit-by-bit reference modular multiplication for cross-checking.
    fn modmul_ref(a: &U256, b: &U256, m: &U256) -> U256 {
        let mut acc = U256::ZERO;
        for i in (0..b.bit_len()).rev() {
            acc = MontCtx::mod_double(&acc, m);
            if b.bit(i) {
                let ctx_free_add = {
                    let (s, carry) = acc.adc(a);
                    let (r, borrow) = s.sbb(m);
                    if carry || !borrow {
                        r
                    } else {
                        s
                    }
                };
                acc = ctx_free_add;
            }
        }
        acc
    }

    #[test]
    fn constants_sane() {
        let ctx = MontCtx::new(p256_prime());
        // r1 = 2^256 mod p must be < p and nonzero.
        assert!(ctx.r1 < ctx.m);
        assert!(!ctx.r1.is_zero());
        // to_mont(1) must equal r1.
        assert_eq!(ctx.to_mont(&U256::ONE), ctx.r1);
        // from_mont(to_mont(x)) is the identity.
        let x = U256::from_u64(0x1234_5678_9abc_def0);
        assert_eq!(ctx.from_mont(&ctx.to_mont(&x)), x);
    }

    #[test]
    fn mont_mul_matches_reference() {
        for m in [p256_prime(), p256_order()] {
            let ctx = MontCtx::new(m);
            let a = U256::from_be_hex(
                "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296",
            );
            let b = U256::from_be_hex(
                "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5",
            );
            assert_eq!(ctx.mul(&a, &b), modmul_ref(&a, &b, &m));
        }
    }

    #[test]
    fn add_sub_neg() {
        let ctx = MontCtx::new(p256_prime());
        let a = U256::from_u64(5);
        let b = ctx.m.wrapping_sub(&U256::from_u64(3)); // -3 mod p
        assert_eq!(ctx.add(&a, &b), U256::from_u64(2));
        assert_eq!(
            ctx.sub(&U256::from_u64(3), &U256::from_u64(5)),
            ctx.neg(&U256::from_u64(2))
        );
        assert_eq!(ctx.neg(&U256::ZERO), U256::ZERO);
        assert_eq!(ctx.add(&ctx.neg(&a), &a), U256::ZERO);
    }

    #[test]
    fn inversion_identity() {
        for m in [p256_prime(), p256_order()] {
            let ctx = MontCtx::new(m);
            for v in [2u64, 3, 0xdeadbeef, u64::MAX] {
                let a = ctx.to_mont(&U256::from_u64(v));
                let inv = ctx.mont_inv(&a);
                let prod = ctx.mont_mul(&a, &inv);
                assert_eq!(ctx.from_mont(&prod), U256::ONE, "v={v}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "invert zero")]
    fn invert_zero_panics() {
        let ctx = MontCtx::new(p256_prime());
        ctx.mont_inv(&U256::ZERO);
    }

    #[test]
    fn pow_small_cases() {
        let ctx = MontCtx::new(p256_prime());
        let two = ctx.to_mont(&U256::from_u64(2));
        // 2^10 = 1024
        let r = ctx.mont_pow(&two, &U256::from_u64(10));
        assert_eq!(ctx.from_mont(&r), U256::from_u64(1024));
        // x^0 = 1
        let r = ctx.mont_pow(&two, &U256::ZERO);
        assert_eq!(ctx.from_mont(&r), U256::ONE);
    }

    #[test]
    fn wide_reduction_matches_mul() {
        let ctx = MontCtx::new(p256_order());
        let a =
            U256::from_be_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632550");
        let b =
            U256::from_be_hex("00000000ffffffff00000000000000004319055258e8617b0c46353d039cdaaf");
        let wide = a.widening_mul(&b);
        assert_eq!(ctx.reduce_wide(&wide), ctx.mul(&a, &b));
    }

    #[test]
    fn reduce_single() {
        let ctx = MontCtx::new(p256_prime());
        assert_eq!(ctx.reduce(&U256::ZERO), U256::ZERO);
        assert_eq!(ctx.reduce(&ctx.m), U256::ZERO);
        assert_eq!(
            ctx.reduce(&ctx.m.wrapping_add(&U256::from_u64(7))),
            U256::from_u64(7)
        );
        assert_eq!(ctx.reduce(&U256::from_u64(7)), U256::from_u64(7));
    }
}
