//! 256-bit unsigned integer arithmetic over four 64-bit limbs.
//!
//! Limbs are stored least-significant first. Only the operations the
//! curve layers need are provided: carrying add/sub, widening multiply,
//! comparisons, bit access and big-endian (de)serialization.

#![allow(clippy::needless_range_loop)] // index form mirrors the limb algorithms

/// A 256-bit unsigned integer (little-endian limb order).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256 {
    limbs: [u64; 4],
}

impl core::fmt::Debug for U256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "U256(0x{:016x}{:016x}{:016x}{:016x})",
            self.limbs[3], self.limbs[2], self.limbs[1], self.limbs[0]
        )
    }
}

impl core::fmt::Display for U256 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{:016x}{:016x}{:016x}{:016x}",
            self.limbs[3], self.limbs[2], self.limbs[1], self.limbs[0]
        )
    }
}

impl U256 {
    /// The value 0.
    pub const ZERO: U256 = U256 { limbs: [0; 4] };
    /// The value 1.
    pub const ONE: U256 = U256 {
        limbs: [1, 0, 0, 0],
    };
    /// The maximum value, 2^256 − 1.
    pub const MAX: U256 = U256 {
        limbs: [u64::MAX; 4],
    };

    /// Constructs from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256 { limbs }
    }

    /// Returns the little-endian limbs.
    pub const fn limbs(&self) -> [u64; 4] {
        self.limbs
    }

    /// Constructs from a `u64`.
    pub const fn from_u64(v: u64) -> Self {
        U256 {
            limbs: [v, 0, 0, 0],
        }
    }

    /// Parses a big-endian hex string (exactly 64 hex digits, no prefix).
    ///
    /// # Panics
    ///
    /// Panics on malformed input; intended for constants and tests.
    pub fn from_be_hex(s: &str) -> Self {
        assert_eq!(s.len(), 64, "expected 64 hex chars");
        let mut bytes = [0u8; 32];
        for i in 0..32 {
            bytes[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("hex digit");
        }
        Self::from_be_bytes(&bytes)
    }

    /// Constructs from 32 big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for i in 0..4 {
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[8 * (3 - i)..8 * (3 - i) + 8]);
            limbs[i] = u64::from_be_bytes(chunk);
        }
        U256 { limbs }
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..4 {
            out[8 * (3 - i)..8 * (3 - i) + 8].copy_from_slice(&self.limbs[i].to_be_bytes());
        }
        out
    }

    /// Whether the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs == [0; 4]
    }

    /// Whether the value is odd.
    pub fn is_odd(&self) -> bool {
        self.limbs[0] & 1 == 1
    }

    /// Returns bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < 256, "bit index out of range");
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of significant bits (0 for zero).
    pub fn bit_len(&self) -> usize {
        for i in (0..4).rev() {
            if self.limbs[i] != 0 {
                return 64 * i + (64 - self.limbs[i].leading_zeros() as usize);
            }
        }
        0
    }

    /// Extracts the 4-bit window ending at bit `i*4` (for windowed
    /// scalar multiplication): bits `[4i, 4i+3]`.
    pub fn nibble(&self, i: usize) -> u8 {
        assert!(i < 64, "nibble index out of range");
        ((self.limbs[i / 16] >> (4 * (i % 16))) & 0xf) as u8
    }

    /// Extracts byte `i` (0 = least significant; the 8-bit window of
    /// the wide fixed-base comb).
    pub fn byte(&self, i: usize) -> u8 {
        assert!(i < 32, "byte index out of range");
        (self.limbs[i / 8] >> (8 * (i % 8))) as u8
    }

    /// `self + rhs`, returning the sum and the carry-out bit.
    pub fn adc(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = false;
        for i in 0..4 {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 | c2;
        }
        (U256 { limbs: out }, carry)
    }

    /// `self - rhs`, returning the difference and the borrow-out bit.
    pub fn sbb(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = false;
        for i in 0..4 {
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 | b2;
        }
        (U256 { limbs: out }, borrow)
    }

    /// Wrapping (mod 2^256) addition.
    pub fn wrapping_add(&self, rhs: &U256) -> U256 {
        self.adc(rhs).0
    }

    /// Wrapping (mod 2^256) subtraction.
    pub fn wrapping_sub(&self, rhs: &U256) -> U256 {
        self.sbb(rhs).0
    }

    /// Wrapping (mod 2^256) negation: `2^256 - self` for nonzero values.
    pub fn wrapping_neg(&self) -> U256 {
        U256::ZERO.wrapping_sub(self)
    }

    /// Full 256×256 → 512-bit multiplication.
    pub fn widening_mul(&self, rhs: &U256) -> [u64; 8] {
        let mut out = [0u64; 8];
        for i in 0..4 {
            let mut carry = 0u128;
            for j in 0..4 {
                let acc =
                    out[i + j] as u128 + (self.limbs[i] as u128) * (rhs.limbs[j] as u128) + carry;
                out[i + j] = acc as u64;
                carry = acc >> 64;
            }
            out[i + 4] = carry as u64;
        }
        out
    }

    /// Shifts left by one bit, returning the shifted value and the
    /// carried-out top bit.
    pub fn shl1(&self) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for i in 0..4 {
            out[i] = (self.limbs[i] << 1) | carry;
            carry = self.limbs[i] >> 63;
        }
        (U256 { limbs: out }, carry == 1)
    }

    /// All-ones mask when the value is zero, all-zeros otherwise,
    /// without branching on the (possibly secret) value.
    pub fn ct_is_zero_mask(&self) -> u64 {
        crate::ct::is_zero_mask(self.limbs[0] | self.limbs[1] | self.limbs[2] | self.limbs[3])
    }

    /// Shifts right by one bit.
    pub fn shr1(&self) -> U256 {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        for i in (0..4).rev() {
            out[i] = (self.limbs[i] >> 1) | (carry << 63);
            carry = self.limbs[i] & 1;
        }
        U256 { limbs: out }
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        for i in (0..4).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                core::cmp::Ordering::Equal => continue,
                ord => return ord,
            }
        }
        core::cmp::Ordering::Equal
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl ecq_crypto::zeroize::Zeroize for U256 {
    fn zeroize(&mut self) {
        ecq_crypto::zeroize::wipe_u64s(&mut self.limbs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn be_bytes_roundtrip() {
        let x =
            U256::from_be_hex("00112233445566778899aabbccddeeff0102030405060708090a0b0c0d0e0f10");
        assert_eq!(U256::from_be_bytes(&x.to_be_bytes()), x);
        assert_eq!(x.limbs()[0], 0x090a0b0c0d0e0f10);
        assert_eq!(x.limbs()[3], 0x0011223344556677);
    }

    #[test]
    fn hex_display_roundtrip() {
        let s = "ffffffff00000001000000000000000000000000ffffffffffffffffffffffff";
        assert_eq!(U256::from_be_hex(s).to_string(), s);
    }

    #[test]
    fn add_sub_roundtrip() {
        let a =
            U256::from_be_hex("00112233445566778899aabbccddeeff0102030405060708090a0b0c0d0e0f10");
        let b = U256::from_u64(0xdeadbeef);
        let (sum, c) = a.adc(&b);
        assert!(!c);
        let (diff, bo) = sum.sbb(&b);
        assert!(!bo);
        assert_eq!(diff, a);
    }

    #[test]
    fn overflow_carry() {
        let (s, c) = U256::MAX.adc(&U256::ONE);
        assert!(c);
        assert_eq!(s, U256::ZERO);
        let (d, b) = U256::ZERO.sbb(&U256::ONE);
        assert!(b);
        assert_eq!(d, U256::MAX);
    }

    #[test]
    fn widening_mul_small() {
        let a = U256::from_u64(u64::MAX);
        let prod = a.widening_mul(&a);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(prod[0], 1);
        assert_eq!(prod[1], u64::MAX - 1);
        assert_eq!(prod[2..], [0, 0, 0, 0, 0, 0]);
    }

    #[test]
    fn widening_mul_max() {
        let prod = U256::MAX.widening_mul(&U256::MAX);
        // (2^256-1)^2 = 2^512 - 2^257 + 1
        assert_eq!(prod[0], 1);
        assert_eq!(prod[1..4], [0, 0, 0]);
        assert_eq!(prod[4], u64::MAX - 1);
        assert_eq!(prod[5..], [u64::MAX, u64::MAX, u64::MAX]);
    }

    #[test]
    fn bits_and_nibbles() {
        let x = U256::from_u64(0b1011_0101);
        assert!(x.bit(0));
        assert!(!x.bit(1));
        assert!(x.bit(7));
        assert_eq!(x.nibble(0), 0x5);
        assert_eq!(x.nibble(1), 0xb);
        assert_eq!(x.bit_len(), 8);
        assert_eq!(U256::ZERO.bit_len(), 0);
        assert_eq!(U256::MAX.bit_len(), 256);
    }

    #[test]
    fn shifts() {
        let x =
            U256::from_be_hex("8000000000000000000000000000000000000000000000000000000000000001");
        let (shifted, carry) = x.shl1();
        assert!(carry);
        assert_eq!(shifted, U256::from_u64(2));
        assert_eq!(
            x.shr1().to_string(),
            "4000000000000000000000000000000000000000000000000000000000000000"
        );
    }

    #[test]
    fn ordering() {
        let small = U256::from_u64(5);
        let big =
            U256::from_be_hex("0000000000000000000000000000000100000000000000000000000000000000");
        assert!(small < big);
        assert!(big > small);
        assert_eq!(small.cmp(&small), core::cmp::Ordering::Equal);
    }

    #[test]
    fn wrapping_neg_is_twos_complement() {
        assert_eq!(U256::ONE.wrapping_neg(), U256::MAX);
        assert_eq!(U256::ZERO.wrapping_neg(), U256::ZERO);
    }
}
