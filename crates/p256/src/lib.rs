//! P-256 (secp256r1) elliptic-curve arithmetic from scratch.
//!
//! The paper implements its protocols in C on top of *micro-ecc*, a small
//! self-contained secp256r1 library. This crate is the Rust counterpart:
//! everything from 256-bit limb arithmetic up to ECDSA is implemented
//! here with no external cryptographic dependencies.
//!
//! Layers, bottom-up:
//!
//! * [`u256`] — 256-bit unsigned integers over 4×u64 limbs,
//! * [`mont`] — Montgomery modular arithmetic (shared by field & scalar),
//! * [`field`] — arithmetic in GF(p), the curve's base field,
//! * [`scalar`] — arithmetic mod `n`, the group order,
//! * [`point`] — affine/Jacobian group operations and scalar
//!   multiplication, split into constant-schedule `*_ct` paths for
//!   secret scalars and explicit `*_vartime` paths for public ones
//!   (4-bit windows; Shamir's trick for verification double mults),
//! * [`ct`] — the mask/select/table-scan primitives under the `*_ct`
//!   paths,
//! * [`precomp`] — the fixed-base window table behind
//!   [`point::mul_generator_ct`] / [`point::mul_generator_vartime`]
//!   (no doublings per `k·G`),
//! * [`encoding`] — SEC1 point (de)compression,
//! * [`ecdsa`] — deterministic (RFC 6979) and randomized ECDSA,
//! * [`ecdh`] — Diffie–Hellman: the static `Sk = Prk_a·Puk_b` of §II-A
//!   and the ephemeral `KPM = X_A·XG_B` of the paper's eq. (3),
//! * [`keys`] — key-pair generation.
//!
//! # Example
//!
//! ```
//! use ecq_crypto::HmacDrbg;
//! use ecq_p256::{ecdh, keys::KeyPair};
//!
//! let mut rng = HmacDrbg::from_seed(1);
//! let alice = KeyPair::generate(&mut rng);
//! let bob = KeyPair::generate(&mut rng);
//! let k_ab = ecdh::shared_secret(&alice.private, &bob.public).unwrap();
//! let k_ba = ecdh::shared_secret(&bob.private, &alice.public).unwrap();
//! assert_eq!(k_ab, k_ba);
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod ct;
pub mod ecdh;
pub mod ecdsa;
pub mod encoding;
pub mod field;
pub mod keys;
pub mod mont;
pub mod point;
pub mod precomp;
pub mod rfc6979;
pub mod scalar;
pub mod u256;

pub use field::FieldElement;
pub use point::{AffinePoint, JacobianPoint};
pub use scalar::Scalar;
pub use u256::U256;

/// Errors produced by curve-level operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CurveError {
    /// A point encoding was syntactically invalid or not on the curve.
    InvalidPoint,
    /// A scalar encoding was zero or not below the group order.
    InvalidScalar,
    /// An ECDSA signature failed structural validation.
    InvalidSignature,
    /// ECDH produced the point at infinity (invalid peer key).
    InfinityResult,
}

impl core::fmt::Display for CurveError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CurveError::InvalidPoint => write!(f, "invalid curve point encoding"),
            CurveError::InvalidScalar => write!(f, "scalar out of range"),
            CurveError::InvalidSignature => write!(f, "malformed ECDSA signature"),
            CurveError::InfinityResult => write!(f, "operation produced the point at infinity"),
        }
    }
}

impl std::error::Error for CurveError {}
