//! The specialized fixed-modulus field backend.
//!
//! [`crate::mont::MontCtx`] is a *generic* engine: the modulus, the
//! Montgomery constant `n0` and the conversion constants live behind a
//! runtime context, every multiplication loads them through a
//! reference, and the final reduction step branches on the
//! (secret-derived) result value. This module is the specialized
//! counterpart the hot paths run on:
//!
//! * all constants (`MontParams`) are derived **at compile time** by
//!   `const fn` from the modulus alone — the same "no hand-derived
//!   magic numbers" policy as `MontCtx::new`, but with zero runtime
//!   cost and full constant folding into the unrolled limb code. For
//!   the P-256 prime, `n0 = 1` and the sparse modulus limbs fold into
//!   shift/add forms;
//! * multiplication is a 4-limb CIOS pass and squaring a dedicated
//!   SOS pass (cross products computed once and doubled), both fully
//!   inlined;
//! * every reduction ends in a **branch-free** conditional
//!   subtraction: the candidate `t − m` is always computed and kept or
//!   discarded by an all-ones/all-zeros mask, so no secret-dependent
//!   branch or cmov-defeating pattern remains in the field layer.
//!
//! [`crate::field`] instantiates this engine for GF(p) and
//! [`crate::scalar`] for the order field mod n; `MontCtx` stays as the
//! independently-derived reference oracle the proptests compare
//! against (`crates/p256/tests/proptest_field_backend.rs`).

use crate::ct;

/// Compile-time Montgomery parameters for an odd 256-bit modulus
/// `m > 2^255` (both P-256 moduli qualify).
pub(crate) struct MontParams {
    /// The modulus limbs, little-endian.
    pub m: [u64; 4],
    /// `-m^{-1} mod 2^64` (`1` for the P-256 prime).
    pub n0: u64,
    /// `R mod m` with `R = 2^256` — Montgomery form of 1.
    pub r1: [u64; 4],
    /// `R^2 mod m` — the to-Montgomery conversion constant.
    pub r2: [u64; 4],
}

/// `a + b` over 4 limbs with carry-out.
#[inline(always)]
const fn adc4(a: &[u64; 4], b: &[u64; 4]) -> ([u64; 4], u64) {
    let mut out = [0u64; 4];
    let mut carry = 0u64;
    let mut i = 0;
    while i < 4 {
        let (s1, c1) = a[i].overflowing_add(b[i]);
        let (s2, c2) = s1.overflowing_add(carry);
        out[i] = s2;
        carry = (c1 as u64) | (c2 as u64);
        i += 1;
    }
    (out, carry)
}

/// `a - b` over 4 limbs with borrow-out.
#[inline(always)]
const fn sbb4(a: &[u64; 4], b: &[u64; 4]) -> ([u64; 4], u64) {
    let mut out = [0u64; 4];
    let mut borrow = 0u64;
    let mut i = 0;
    while i < 4 {
        let (d1, b1) = a[i].overflowing_sub(b[i]);
        let (d2, b2) = d1.overflowing_sub(borrow);
        out[i] = d2;
        borrow = (b1 as u64) | (b2 as u64);
        i += 1;
    }
    (out, borrow)
}

impl MontParams {
    /// Derives every constant from the modulus at compile time.
    ///
    /// Mirrors `MontCtx::new`: `n0` by Newton–Hensel lifting,
    /// `R mod m = 2^256 − m` (valid because `m > 2^255`), `R^2 mod m`
    /// by 256 modular doublings. Branches here run in the compiler,
    /// not on secrets.
    pub const fn new(m: [u64; 4]) -> Self {
        assert!(m[0] & 1 == 1, "Montgomery modulus must be odd");
        assert!(m[3] >> 63 == 1, "modulus must exceed 2^255");

        let mut inv: u64 = 1;
        let mut i = 0;
        while i < 6 {
            inv = inv.wrapping_mul(2u64.wrapping_sub(m[0].wrapping_mul(inv)));
            i += 1;
        }
        let n0 = inv.wrapping_neg();

        // R mod m = 2^256 − m.
        let (r1, _) = sbb4(&[0, 0, 0, 0], &m);

        // R^2 mod m by 256 modular doublings of R.
        let mut r2 = r1;
        let mut i = 0;
        while i < 256 {
            let carry = r2[3] >> 63;
            r2 = [
                r2[0] << 1,
                (r2[1] << 1) | (r2[0] >> 63),
                (r2[2] << 1) | (r2[1] >> 63),
                (r2[3] << 1) | (r2[2] >> 63),
            ];
            let (reduced, borrow) = sbb4(&r2, &m);
            if carry == 1 || borrow == 0 {
                r2 = reduced;
            }
            i += 1;
        }

        MontParams { m, n0, r1, r2 }
    }
}

/// Branch-free final reduction: a value `carry·2^256 + t` known to be
/// `< 2m` is reduced to `[0, m)` by computing `t − m` unconditionally
/// and selecting by mask.
#[inline(always)]
fn cond_sub(carry: u64, t: &[u64; 4], m: &[u64; 4]) -> [u64; 4] {
    let (r, borrow) = sbb4(t, m);
    // Take the subtracted value when the 2^256 bit is set (the value
    // certainly exceeds m) or when t >= m (no borrow).
    let take = !ct::is_zero_mask(carry) | ct::is_zero_mask(borrow);
    [
        ct::select_u64(r[0], t[0], take),
        ct::select_u64(r[1], t[1], take),
        ct::select_u64(r[2], t[2], take),
        ct::select_u64(r[3], t[3], take),
    ]
}

/// Montgomery multiplication `a·b·R^{-1} mod m` (CIOS over 4 limbs,
/// branch-free final step). Inputs must be `< m`.
#[inline(always)]
pub(crate) fn mont_mul(a: &[u64; 4], b: &[u64; 4], p: &MontParams) -> [u64; 4] {
    let m = &p.m;
    let mut t = [0u64; 6];
    let mut i = 0;
    while i < 4 {
        // t += a[i] * b
        let ai = a[i] as u128;
        let mut carry = 0u128;
        let mut j = 0;
        while j < 4 {
            let acc = t[j] as u128 + ai * (b[j] as u128) + carry;
            t[j] = acc as u64;
            carry = acc >> 64;
            j += 1;
        }
        let acc = t[4] as u128 + carry;
        t[4] = acc as u64;
        t[5] = (acc >> 64) as u64;

        // Reduction step: add u·m and shift one limb. For the P-256
        // prime n0 == 1, so `u` is just t[0].
        let u = t[0].wrapping_mul(p.n0) as u128;
        let acc = t[0] as u128 + u * (m[0] as u128);
        let mut carry = acc >> 64;
        let mut j = 1;
        while j < 4 {
            let acc = t[j] as u128 + u * (m[j] as u128) + carry;
            t[j - 1] = acc as u64;
            carry = acc >> 64;
            j += 1;
        }
        let acc = t[4] as u128 + carry;
        t[3] = acc as u64;
        let acc2 = t[5] as u128 + (acc >> 64);
        t[4] = acc2 as u64;
        t[5] = (acc2 >> 64) as u64;
        i += 1;
    }
    // For m > 2^255 the CIOS invariant keeps the result below 2m, so
    // t[5] is zero and t[4] is at most 1.
    cond_sub(t[4], &[t[0], t[1], t[2], t[3]], m)
}

/// The 512-bit square of a 256-bit value: cross products accumulated
/// once and doubled, then the diagonal squares added in.
#[inline(always)]
pub(crate) fn square_wide(a: &[u64; 4]) -> [u64; 8] {
    let mut r = [0u64; 8];

    // Cross products a_i·a_j (i < j) at positions i+j.
    let mut acc = (a[0] as u128) * (a[1] as u128);
    r[1] = acc as u64;
    let mut carry = acc >> 64;
    acc = (a[0] as u128) * (a[2] as u128) + carry;
    r[2] = acc as u64;
    carry = acc >> 64;
    acc = (a[0] as u128) * (a[3] as u128) + carry;
    r[3] = acc as u64;
    r[4] = (acc >> 64) as u64;

    acc = r[3] as u128 + (a[1] as u128) * (a[2] as u128);
    r[3] = acc as u64;
    carry = acc >> 64;
    acc = r[4] as u128 + (a[1] as u128) * (a[3] as u128) + carry;
    r[4] = acc as u64;
    r[5] = (acc >> 64) as u64;

    acc = r[5] as u128 + (a[2] as u128) * (a[3] as u128);
    r[5] = acc as u64;
    r[6] = (acc >> 64) as u64;

    // Double the cross products.
    r[7] = r[6] >> 63;
    r[6] = (r[6] << 1) | (r[5] >> 63);
    r[5] = (r[5] << 1) | (r[4] >> 63);
    r[4] = (r[4] << 1) | (r[3] >> 63);
    r[3] = (r[3] << 1) | (r[2] >> 63);
    r[2] = (r[2] << 1) | (r[1] >> 63);
    r[1] <<= 1;

    // Add the diagonal squares a_i² at positions (2i, 2i+1).
    let mut carry = 0u128;
    let mut i = 0;
    while i < 4 {
        let sq = (a[i] as u128) * (a[i] as u128);
        let lo = r[2 * i] as u128 + (sq as u64 as u128) + carry;
        r[2 * i] = lo as u64;
        let hi = r[2 * i + 1] as u128 + (sq >> 64) + (lo >> 64);
        r[2 * i + 1] = hi as u64;
        carry = hi >> 64;
        i += 1;
    }
    debug_assert_eq!(carry, 0, "a² < 2^512 must fit in eight limbs");
    r
}

/// Montgomery reduction of a 512-bit value: `t·R^{-1} mod m`, with the
/// result guaranteed `< m` for `t < m·2^256` (true for any product of
/// reduced operands). Carry propagation always walks the full limb
/// range — no data-dependent early exit.
#[inline(always)]
pub(crate) fn mont_reduce(wide: &[u64; 8], p: &MontParams) -> [u64; 4] {
    let m = &p.m;
    let mut t = *wide;
    let mut top = 0u64; // bit 512 accumulator
    let mut i = 0;
    while i < 4 {
        let u = t[i].wrapping_mul(p.n0) as u128;
        let mut carry = 0u128;
        let mut j = 0;
        while j < 4 {
            let acc = t[i + j] as u128 + u * (m[j] as u128) + carry;
            t[i + j] = acc as u64;
            carry = acc >> 64;
            j += 1;
        }
        // Propagate unconditionally through the remaining limbs.
        let mut k = i + 4;
        while k < 8 {
            let acc = t[k] as u128 + carry;
            t[k] = acc as u64;
            carry = acc >> 64;
            k += 1;
        }
        top += carry as u64;
        i += 1;
    }
    cond_sub(top, &[t[4], t[5], t[6], t[7]], m)
}

/// Montgomery squaring `a²·R^{-1} mod m` via [`square_wide`] +
/// [`mont_reduce`].
#[inline(always)]
pub(crate) fn mont_sqr(a: &[u64; 4], p: &MontParams) -> [u64; 4] {
    mont_reduce(&square_wide(a), p)
}

/// Modular addition of reduced operands, branch-free.
#[inline(always)]
pub(crate) fn add_mod(a: &[u64; 4], b: &[u64; 4], p: &MontParams) -> [u64; 4] {
    let (s, carry) = adc4(a, b);
    cond_sub(carry, &s, &p.m)
}

/// Modular subtraction of reduced operands, branch-free: the wrapped
/// difference and the `+m` repair are both computed, and the mask on
/// the borrow bit picks one.
#[inline(always)]
pub(crate) fn sub_mod(a: &[u64; 4], b: &[u64; 4], p: &MontParams) -> [u64; 4] {
    let (d, borrow) = sbb4(a, b);
    let (repaired, _) = adc4(&d, &p.m);
    let take_repair = !ct::is_zero_mask(borrow);
    [
        ct::select_u64(repaired[0], d[0], take_repair),
        ct::select_u64(repaired[1], d[1], take_repair),
        ct::select_u64(repaired[2], d[2], take_repair),
        ct::select_u64(repaired[3], d[3], take_repair),
    ]
}

/// Modular negation of a reduced operand, branch-free (`m − a`, masked
/// to zero when `a` is zero).
#[inline(always)]
pub(crate) fn neg_mod(a: &[u64; 4], p: &MontParams) -> [u64; 4] {
    let (r, _) = sbb4(&p.m, a);
    let zero = ct::is_zero_mask(a[0] | a[1] | a[2] | a[3]);
    [
        ct::select_u64(0, r[0], zero),
        ct::select_u64(0, r[1], zero),
        ct::select_u64(0, r[2], zero),
        ct::select_u64(0, r[3], zero),
    ]
}

/// Reduces an arbitrary 256-bit value into `[0, m)` (valid because
/// `m > 2^255` means one conditional subtraction suffices).
#[inline(always)]
pub(crate) fn reduce_once(a: &[u64; 4], p: &MontParams) -> [u64; 4] {
    cond_sub(0, a, &p.m)
}

/// Reduces a 512-bit value to the *canonical* residue mod m:
/// one Montgomery reduction (`·R^{-1}`) followed by a multiplication
/// by `R^2·R^{-1} = R` to undo the factor. Replaces the bit-by-bit
/// `MontCtx::reduce_wide` on hot hash-to-scalar paths.
///
/// For `t` up to `2^512 − 1` the inner reduction can exceed `m` by up
/// to `2^256`, so an extra branch-free subtraction runs before the
/// correction multiply.
#[inline(always)]
pub(crate) fn reduce_wide(wide: &[u64; 8], p: &MontParams) -> [u64; 4] {
    let t = mont_reduce(wide, p);
    // mont_reduce already bounds t < m for t < m·2^256; an arbitrary
    // 512-bit input is < 2^512 < (2m)·2^256, one more subtraction
    // covers the slack.
    let t = reduce_once(&t, p);
    mont_mul(&t, &p.r2, p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::u256::U256;

    const P: [u64; 4] = [
        0xffff_ffff_ffff_ffff,
        0x0000_0000_ffff_ffff,
        0x0000_0000_0000_0000,
        0xffff_ffff_0000_0001,
    ];
    const PARAMS: MontParams = MontParams::new(P);

    #[test]
    fn const_params_match_runtime_ctx() {
        let ctx = crate::mont::MontCtx::new(U256::from_limbs(P));
        assert_eq!(PARAMS.r1, ctx.r1.limbs());
        assert_eq!(PARAMS.r2, ctx.r2.limbs());
        assert_eq!(PARAMS.n0, ctx.n0());
        assert_eq!(PARAMS.n0, 1, "P-256 prime has n0 = 1");
    }

    #[test]
    fn mul_and_square_match_reference() {
        let ctx = crate::mont::MontCtx::new(U256::from_limbs(P));
        let a =
            U256::from_be_hex("6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296");
        let b =
            U256::from_be_hex("4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5");
        assert_eq!(
            mont_mul(&a.limbs(), &b.limbs(), &PARAMS),
            ctx.mont_mul(&a, &b).limbs()
        );
        assert_eq!(mont_sqr(&a.limbs(), &PARAMS), ctx.mont_mul(&a, &a).limbs());
    }

    #[test]
    fn wide_reduction_matches_reference() {
        let ctx = crate::mont::MontCtx::new(U256::from_limbs(P));
        let a = U256::MAX;
        let b =
            U256::from_be_hex("ffffffff00000001000000000000000000000000fffffffffffffffffffffffe");
        let wide = a.widening_mul(&b);
        assert_eq!(reduce_wide(&wide, &PARAMS), ctx.reduce_wide(&wide).limbs());
        // All-ones 512-bit value: the worst-case slack path.
        let ones = [u64::MAX; 8];
        assert_eq!(reduce_wide(&ones, &PARAMS), ctx.reduce_wide(&ones).limbs());
    }

    #[test]
    fn add_sub_neg_match_reference() {
        let ctx = crate::mont::MontCtx::new(U256::from_limbs(P));
        let a = U256::from_u64(5);
        let b = ctx.m.wrapping_sub(&U256::from_u64(3));
        assert_eq!(
            add_mod(&a.limbs(), &b.limbs(), &PARAMS),
            ctx.add(&a, &b).limbs()
        );
        assert_eq!(
            sub_mod(&a.limbs(), &b.limbs(), &PARAMS),
            ctx.sub(&a, &b).limbs()
        );
        assert_eq!(neg_mod(&a.limbs(), &PARAMS), ctx.neg(&a).limbs());
        assert_eq!(neg_mod(&[0; 4], &PARAMS), [0; 4]);
    }

    #[test]
    fn reduce_once_handles_edges() {
        assert_eq!(reduce_once(&[0; 4], &PARAMS), [0; 4]);
        assert_eq!(reduce_once(&P, &PARAMS), [0; 4]);
        assert_eq!(
            reduce_once(&U256::MAX.limbs(), &PARAMS),
            U256::MAX.wrapping_sub(&U256::from_limbs(P)).limbs()
        );
    }
}
