//! Elliptic-curve Diffie–Hellman.
//!
//! Two uses in the paper:
//!
//! * **static** (§II-A): `Sk = Prk_a · Puk_b` over the long-term,
//!   certificate-bound keys — this is the SKD every baseline uses;
//! * **ephemeral** (eq. (3)): `KPM = X_A · XG_B` over per-session
//!   random points — this is what gives STS its forward secrecy.
//!
//! The x-coordinate of the shared point is the secret. The scalar
//! multiplication is always secret-dependent here, so it runs on the
//! constant-schedule path ([`crate::point::JacobianPoint::mul_ct`]),
//! and the returned premaster wipes itself on drop.

use crate::point::AffinePoint;
use crate::scalar::Scalar;
use crate::CurveError;
use ecq_crypto::zeroize::Zeroizing;

/// Computes the ECDH shared secret (32-byte x-coordinate).
///
/// The premaster is returned in a [`Zeroizing`] wrapper so the bytes
/// are wiped once the caller's KDF has consumed them.
///
/// # Errors
///
/// * [`CurveError::InvalidPoint`] when the peer point is off-curve or
///   the identity (invalid-point attacks must not silently succeed);
/// * [`CurveError::InfinityResult`] when the product is the identity.
pub fn shared_secret(
    private: &Scalar,
    peer_public: &AffinePoint,
) -> Result<Zeroizing<[u8; 32]>, CurveError> {
    if peer_public.infinity || !peer_public.is_on_curve() {
        return Err(CurveError::InvalidPoint);
    }
    if private.is_zero() {
        return Err(CurveError::InvalidScalar);
    }
    let shared = peer_public.mul_ct(private);
    if shared.infinity {
        return Err(CurveError::InfinityResult);
    }
    Ok(Zeroizing::new(shared.x.to_be_bytes()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::FieldElement;
    use crate::keys::KeyPair;
    use ecq_crypto::HmacDrbg;

    #[test]
    fn commutativity() {
        let mut rng = HmacDrbg::from_seed(51);
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        assert_eq!(
            shared_secret(&a.private, &b.public).unwrap(),
            shared_secret(&b.private, &a.public).unwrap()
        );
    }

    #[test]
    fn distinct_peers_distinct_secrets() {
        let mut rng = HmacDrbg::from_seed(52);
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        let c = KeyPair::generate(&mut rng);
        assert_ne!(
            shared_secret(&a.private, &b.public).unwrap(),
            shared_secret(&a.private, &c.public).unwrap()
        );
    }

    #[test]
    fn rejects_identity_and_off_curve() {
        let mut rng = HmacDrbg::from_seed(53);
        let a = KeyPair::generate(&mut rng);
        assert_eq!(
            shared_secret(&a.private, &AffinePoint::identity()).unwrap_err(),
            CurveError::InvalidPoint
        );
        let off_curve = AffinePoint {
            x: FieldElement::from_u64(1),
            y: FieldElement::from_u64(1),
            infinity: false,
        };
        assert_eq!(
            shared_secret(&a.private, &off_curve).unwrap_err(),
            CurveError::InvalidPoint
        );
    }

    #[test]
    fn rejects_zero_private() {
        let mut rng = HmacDrbg::from_seed(54);
        let a = KeyPair::generate(&mut rng);
        assert_eq!(
            shared_secret(&Scalar::zero(), &a.public).unwrap_err(),
            CurveError::InvalidScalar
        );
    }

    #[test]
    fn premaster_matches_ct_point_mul() {
        let mut rng = HmacDrbg::from_seed(55);
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        let expected = b.public.mul_vartime(&a.private).x.to_be_bytes();
        assert_eq!(*shared_secret(&a.private, &b.public).unwrap(), expected);
    }
}
