//! RFC 6979 deterministic ECDSA nonce generation (SHA-256, P-256).
//!
//! Deterministic nonces make the simulated protocol runs reproducible
//! and remove the classic embedded pitfall the paper's introduction
//! cites (bad randomness on constrained devices leaking keys).

use crate::scalar::Scalar;
use crate::u256::U256;
use ecq_crypto::hmac::hmac_sha256_concat;

/// Derives the ECDSA nonce `k` for private key `x` and message hash
/// `h1` (already hashed, 32 bytes), per RFC 6979 §3.2.
pub fn generate_k(x: &Scalar, h1: &[u8; 32]) -> Scalar {
    let x_octets = x.to_be_bytes();
    let h_octets = bits2octets(h1);

    let mut k = [0u8; 32];
    let mut v = [1u8; 32];

    // K = HMAC_K(V || 0x00 || int2octets(x) || bits2octets(h1))
    k = hmac_sha256_concat(&k, &[&v, &[0x00], &x_octets, &h_octets]);
    v = hmac_sha256_concat(&k, &[&v]);
    // K = HMAC_K(V || 0x01 || int2octets(x) || bits2octets(h1))
    k = hmac_sha256_concat(&k, &[&v, &[0x01], &x_octets, &h_octets]);
    v = hmac_sha256_concat(&k, &[&v]);

    loop {
        v = hmac_sha256_concat(&k, &[&v]);
        let candidate = U256::from_be_bytes(&v);
        if !candidate.is_zero() && candidate < Scalar::order() {
            let s = Scalar::from_canonical(&candidate).expect("checked < n");
            if !s.is_zero() {
                return s;
            }
        }
        k = hmac_sha256_concat(&k, &[&v, &[0x00]]);
        v = hmac_sha256_concat(&k, &[&v]);
    }
}

/// RFC 6979 `bits2octets`: reduce the hash value mod n, re-encode.
fn bits2octets(h1: &[u8; 32]) -> [u8; 32] {
    Scalar::from_be_bytes_reduced(h1).to_be_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecq_crypto::sha256::sha256;

    // RFC 6979 A.2.5, P-256 + SHA-256, message "sample".
    #[test]
    fn rfc6979_sample_nonce() {
        let x = Scalar::from_be_bytes(
            &U256::from_be_hex("c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721")
                .to_be_bytes(),
        )
        .unwrap();
        let h1 = sha256(b"sample");
        let k = generate_k(&x, &h1);
        assert_eq!(
            k.to_canonical().to_string(),
            "a6e3c57dd01abe90086538398355dd4c3b17aa873382b0f24d6129493d8aad60"
        );
    }

    // RFC 6979 A.2.5, message "test".
    #[test]
    fn rfc6979_test_nonce() {
        let x = Scalar::from_be_bytes(
            &U256::from_be_hex("c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721")
                .to_be_bytes(),
        )
        .unwrap();
        let h1 = sha256(b"test");
        let k = generate_k(&x, &h1);
        assert_eq!(
            k.to_canonical().to_string(),
            "d16b6ae827f17175e040871a1c7ec3500192c4c92677336ec2537acaee0008e0"
        );
    }

    #[test]
    fn nonce_depends_on_key_and_message() {
        let x1 = Scalar::from_u64(1);
        let x2 = Scalar::from_u64(2);
        let h1 = sha256(b"m1");
        let h2 = sha256(b"m2");
        assert_ne!(generate_k(&x1, &h1), generate_k(&x2, &h1));
        assert_ne!(generate_k(&x1, &h1), generate_k(&x1, &h2));
        // Deterministic.
        assert_eq!(generate_k(&x1, &h1), generate_k(&x1, &h1));
    }
}
