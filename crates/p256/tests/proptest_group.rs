//! Property-based tests of the elliptic-curve group: abelian group
//! laws, scalar-multiplication homomorphism, encodings, ECDSA and ECDH
//! over random keys. Case counts are kept low — every case costs
//! several scalar multiplications.

use ecq_crypto::HmacDrbg;
use ecq_p256::ecdsa::{self, VerifyStrategy};
use ecq_p256::encoding;
use ecq_p256::keys::KeyPair;
use ecq_p256::point::{mul_generator, multi_scalar_mul, AffinePoint};
use ecq_p256::scalar::Scalar;
use ecq_p256::u256::U256;
use proptest::prelude::*;

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    any::<[u8; 32]>().prop_map(|b| {
        let s = Scalar::from_reduced(&U256::from_be_bytes(&b));
        if s.is_zero() {
            Scalar::one()
        } else {
            s
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn scalar_mul_is_homomorphic(a in arb_scalar(), b in arb_scalar()) {
        // (a+b)G = aG + bG and (a·b)G = a(bG).
        let g = AffinePoint::generator();
        prop_assert_eq!(g.mul(&a.add(&b)), g.mul(&a).add(&g.mul(&b)));
        prop_assert_eq!(g.mul(&a.mul(&b)), g.mul(&b).mul(&a));
    }

    #[test]
    fn group_is_abelian(a in arb_scalar(), b in arb_scalar()) {
        let p = mul_generator(&a);
        let q = mul_generator(&b);
        prop_assert_eq!(p.add(&q), q.add(&p));
        prop_assert!(p.add(&q).is_on_curve());
    }

    #[test]
    fn negation_cancels(a in arb_scalar()) {
        let p = mul_generator(&a);
        prop_assert!(p.add(&p.neg()).infinity);
        prop_assert_eq!(mul_generator(&a.neg()), p.neg());
    }

    #[test]
    fn encodings_roundtrip(a in arb_scalar()) {
        let p = mul_generator(&a);
        prop_assert_eq!(encoding::decode_compressed(&encoding::encode_compressed(&p)).unwrap(), p);
        prop_assert_eq!(encoding::decode_raw(&encoding::encode_raw(&p)).unwrap(), p);
        prop_assert_eq!(
            encoding::decode_uncompressed(&encoding::encode_uncompressed(&p)).unwrap(),
            p
        );
    }

    #[test]
    fn shamir_equals_naive(a in arb_scalar(), b in arb_scalar(), q_scalar in arb_scalar()) {
        let g = AffinePoint::generator();
        let q = mul_generator(&q_scalar);
        prop_assert_eq!(
            multi_scalar_mul(&a, &g, &b, &q),
            g.mul(&a).add(&q.mul(&b))
        );
    }

    #[test]
    fn ecdsa_roundtrip_and_strategy_agreement(key in arb_scalar(), msg in any::<[u8; 24]>()) {
        let kp = KeyPair::from_private(key);
        let sig = ecdsa::sign(&kp.private, &msg);
        prop_assert!(ecdsa::verify_with(&kp.public, &msg, &sig, VerifyStrategy::SeparateMuls));
        prop_assert!(ecdsa::verify_with(&kp.public, &msg, &sig, VerifyStrategy::Shamir));
        prop_assert!(!sig.s.is_high());
        // Tampered message rejected.
        let mut other = msg;
        other[0] ^= 1;
        prop_assert!(!ecdsa::verify(&kp.public, &other, &sig));
    }

    #[test]
    fn ecdh_commutes(seed in any::<u64>()) {
        let mut rng = HmacDrbg::from_seed(seed);
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        prop_assert_eq!(
            ecq_p256::ecdh::shared_secret(&a.private, &b.public).unwrap(),
            ecq_p256::ecdh::shared_secret(&b.private, &a.public).unwrap()
        );
    }
}
