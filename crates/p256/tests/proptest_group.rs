//! Property-based tests of the elliptic-curve group: abelian group
//! laws, scalar-multiplication homomorphism, ct/vartime agreement,
//! encodings, ECDSA and ECDH over random keys. Case counts are kept
//! low — every case costs several scalar multiplications.

use ecq_crypto::HmacDrbg;
use ecq_p256::ecdsa::{self, VerifyStrategy};
use ecq_p256::encoding;
use ecq_p256::keys::KeyPair;
use ecq_p256::point::{
    mul_generator_ct, mul_generator_vartime, multi_scalar_mul, AffinePoint, JacobianPoint,
};
use ecq_p256::scalar::Scalar;
use ecq_p256::u256::U256;
use proptest::prelude::*;

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    any::<[u8; 32]>().prop_map(|b| {
        let s = Scalar::from_reduced(&U256::from_be_bytes(&b));
        if s.is_zero() {
            Scalar::one()
        } else {
            s
        }
    })
}

/// Scalars with mostly-zero nibble patterns — the inputs where a
/// leaky schedule would diverge most from the dense case.
fn arb_sparse_scalar() -> impl Strategy<Value = Scalar> {
    (0usize..64, 1u64..16).prop_map(|(window, digit)| {
        let mut bytes = [0u8; 32];
        let bit = 4 * window;
        bytes[31 - bit / 8] = (digit as u8) << (bit % 8);
        Scalar::from_reduced(&U256::from_be_bytes(&bytes))
    })
}

/// The fixed edge cases every ct/vartime agreement property includes.
fn edge_scalars() -> Vec<Scalar> {
    vec![
        Scalar::zero(),
        Scalar::one(),
        Scalar::from_u64(1).neg(), // n − 1
        Scalar::from_u64(15),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn scalar_mul_is_homomorphic(a in arb_scalar(), b in arb_scalar()) {
        // (a+b)G = aG + bG and (a·b)G = a(bG).
        let g = AffinePoint::generator();
        prop_assert_eq!(
            g.mul_vartime(&a.add(&b)),
            g.mul_vartime(&a).add(&g.mul_vartime(&b))
        );
        prop_assert_eq!(g.mul_vartime(&a.mul(&b)), g.mul_vartime(&b).mul_vartime(&a));
    }

    #[test]
    fn group_is_abelian(a in arb_scalar(), b in arb_scalar()) {
        let p = mul_generator_vartime(&a);
        let q = mul_generator_vartime(&b);
        prop_assert_eq!(p.add(&q), q.add(&p));
        prop_assert!(p.add(&q).is_on_curve());
    }

    #[test]
    fn negation_cancels(a in arb_scalar()) {
        let p = mul_generator_vartime(&a);
        prop_assert!(p.add(&p.neg()).infinity);
        prop_assert_eq!(mul_generator_vartime(&a.neg()), p.neg());
    }

    #[test]
    fn ct_fixed_base_agrees_with_vartime(a in arb_scalar(), sparse in arb_sparse_scalar()) {
        for k in [a, sparse].into_iter().chain(edge_scalars()) {
            prop_assert_eq!(mul_generator_ct(&k), mul_generator_vartime(&k));
        }
    }

    #[test]
    fn ct_variable_base_agrees_with_vartime(
        base_scalar in arb_scalar(),
        a in arb_scalar(),
        sparse in arb_sparse_scalar(),
    ) {
        let base = mul_generator_vartime(&base_scalar);
        for k in [a, sparse].into_iter().chain(edge_scalars()) {
            prop_assert_eq!(base.mul_ct(&k), base.mul_vartime(&k));
        }
        // Jacobian entry point, non-unit Z: double the lifted base.
        let jac = JacobianPoint::from_affine(&base).double();
        prop_assert_eq!(jac.mul_ct(&a), jac.mul_vartime(&a));
    }

    #[test]
    fn encodings_roundtrip(a in arb_scalar()) {
        let p = mul_generator_vartime(&a);
        prop_assert_eq!(encoding::decode_compressed(&encoding::encode_compressed(&p)).unwrap(), p);
        prop_assert_eq!(encoding::decode_raw(&encoding::encode_raw(&p)).unwrap(), p);
        prop_assert_eq!(
            encoding::decode_uncompressed(&encoding::encode_uncompressed(&p)).unwrap(),
            p
        );
    }

    #[test]
    fn compressed_bytes_roundtrip(a in arb_scalar()) {
        // The total (non-panicking) method pair the wire format uses.
        let p = mul_generator_vartime(&a);
        let enc = p.to_bytes_compressed().unwrap();
        prop_assert_eq!(enc.len(), 33);
        prop_assert!(enc[0] == 0x02 || enc[0] == 0x03);
        prop_assert_eq!(AffinePoint::from_bytes_compressed(&enc).unwrap(), p);
        // Flipping the parity tag decodes to the negated point.
        let mut flipped = enc;
        flipped[0] ^= 0x01;
        prop_assert_eq!(AffinePoint::from_bytes_compressed(&flipped).unwrap(), p.neg());
    }

    #[test]
    fn compressed_bytes_reject_bad_prefixes(a in arb_scalar(), tag in any::<u8>()) {
        // Any tag other than 02/03 must be rejected, whatever the x.
        prop_assume!(tag != 0x02 && tag != 0x03);
        let p = mul_generator_vartime(&a);
        let mut enc = p.to_bytes_compressed().unwrap();
        enc[0] = tag;
        prop_assert!(AffinePoint::from_bytes_compressed(&enc).is_err());
        // Wrong lengths fail closed too.
        prop_assert!(AffinePoint::from_bytes_compressed(&enc[..32]).is_err());
        prop_assert!(AffinePoint::from_bytes_compressed(&[]).is_err());
    }

    #[test]
    fn compressed_bytes_reject_non_residues(x in any::<[u8; 32]>()) {
        // A random abscissa is on the curve for only ~half of all x;
        // whatever the decoder returns must itself be a curve point
        // that re-encodes to the same bytes — never a panic, never an
        // off-curve point.
        let mut enc = [0u8; 33];
        enc[0] = 0x02;
        enc[1..].copy_from_slice(&x);
        if let Ok(p) = AffinePoint::from_bytes_compressed(&enc) {
            prop_assert!(p.is_on_curve());
            prop_assert_eq!(p.to_bytes_compressed().unwrap(), enc);
        }
    }

    #[test]
    fn infinity_has_no_compressed_encoding(_x in any::<u8>()) {
        prop_assert!(AffinePoint::identity().to_bytes_compressed().is_err());
    }

    #[test]
    fn shamir_equals_naive(a in arb_scalar(), b in arb_scalar(), q_scalar in arb_scalar()) {
        let g = AffinePoint::generator();
        let q = mul_generator_vartime(&q_scalar);
        prop_assert_eq!(
            multi_scalar_mul(&a, &g, &b, &q),
            g.mul_vartime(&a).add(&q.mul_vartime(&b))
        );
    }

    #[test]
    fn wnaf_agrees_with_window_walk(
        base_scalar in arb_scalar(),
        a in arb_scalar(),
        sparse in arb_sparse_scalar(),
        dense_byte in 1u8..=255,
    ) {
        // The width-5 wNAF `mul_vartime` against the retired 4-bit
        // window walk it replaced, over random, sparse-NAF (single
        // nonzero digit), dense-NAF (every byte set) and edge scalars.
        let base = JacobianPoint::from_affine(&mul_generator_vartime(&base_scalar));
        let dense = Scalar::from_reduced(&U256::from_be_bytes(&[dense_byte; 32]));
        for k in [a, sparse, dense].into_iter().chain(edge_scalars()) {
            prop_assert_eq!(base.mul_vartime(&k), base.mul_vartime_window(&k));
        }
    }

    #[test]
    fn ecdsa_roundtrip_and_strategy_agreement(key in arb_scalar(), msg in any::<[u8; 24]>()) {
        let kp = KeyPair::from_private(key);
        let sig = ecdsa::sign(&kp.private, &msg);
        prop_assert!(ecdsa::verify_with(&kp.public, &msg, &sig, VerifyStrategy::SeparateMuls));
        prop_assert!(ecdsa::verify_with(&kp.public, &msg, &sig, VerifyStrategy::Shamir));
        prop_assert!(!sig.s.is_high());
        // Tampered message rejected.
        let mut other = msg;
        other[0] ^= 1;
        prop_assert!(!ecdsa::verify(&kp.public, &other, &sig));
    }

    #[test]
    fn ecdh_commutes(seed in any::<u64>()) {
        let mut rng = HmacDrbg::from_seed(seed);
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        prop_assert_eq!(
            ecq_p256::ecdh::shared_secret(&a.private, &b.public).unwrap(),
            ecq_p256::ecdh::shared_secret(&b.private, &a.public).unwrap()
        );
    }
}
