//! Property-based tests of the arithmetic layers: U256, field and
//! scalar ring laws over random operands.

use ecq_p256::field::FieldElement;
use ecq_p256::scalar::Scalar;
use ecq_p256::u256::U256;
use proptest::prelude::*;

fn arb_u256() -> impl Strategy<Value = U256> {
    any::<[u8; 32]>().prop_map(|b| U256::from_be_bytes(&b))
}

fn arb_fe() -> impl Strategy<Value = FieldElement> {
    arb_u256().prop_map(|v| FieldElement::from_reduced(&v))
}

fn arb_scalar() -> impl Strategy<Value = Scalar> {
    arb_u256().prop_map(|v| Scalar::from_reduced(&v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn u256_roundtrip(bytes in any::<[u8; 32]>()) {
        let v = U256::from_be_bytes(&bytes);
        prop_assert_eq!(v.to_be_bytes(), bytes);
    }

    #[test]
    fn u256_add_sub_inverse(a in arb_u256(), b in arb_u256()) {
        let (sum, _) = a.adc(&b);
        let (back, _) = sum.sbb(&b);
        prop_assert_eq!(back, a);
    }

    #[test]
    fn u256_shl_shr(a in arb_u256()) {
        // (a >> 1) << 1 clears only the lowest bit.
        let (doubled, _) = a.shr1().shl1();
        let mut expect = a.to_be_bytes();
        expect[31] &= 0xFE;
        prop_assert_eq!(doubled.to_be_bytes(), expect);
    }

    #[test]
    fn u256_mul_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.widening_mul(&b), b.widening_mul(&a));
    }

    #[test]
    fn field_add_commutes_and_associates(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn field_mul_commutes_and_associates(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    fn field_distributes(a in arb_fe(), b in arb_fe(), c in arb_fe()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn field_inverse_law(a in arb_fe()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a.mul(&a.invert()), FieldElement::one());
    }

    #[test]
    fn field_sqrt_consistent(a in arb_fe()) {
        let sq = a.square();
        let root = sq.sqrt().expect("squares always have roots");
        prop_assert!(root == a || root == a.neg());
    }

    #[test]
    fn field_neg_is_additive_inverse(a in arb_fe()) {
        prop_assert_eq!(a.add(&a.neg()), FieldElement::zero());
    }

    #[test]
    fn scalar_ring_laws(a in arb_scalar(), b in arb_scalar()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.sub(&b).add(&b), a);
    }

    #[test]
    fn scalar_inverse_law(a in arb_scalar()) {
        prop_assume!(!a.is_zero());
        prop_assert_eq!(a.mul(&a.invert()), Scalar::one());
    }

    #[test]
    fn scalar_bytes_roundtrip(a in arb_scalar()) {
        let bytes = a.to_be_bytes();
        prop_assert_eq!(Scalar::from_be_bytes(&bytes).unwrap(), a);
    }

    #[test]
    fn scalar_high_exclusive_with_neg(a in arb_scalar()) {
        prop_assume!(!a.is_zero());
        // Exactly one of a and −a is in the high half.
        prop_assert!(a.is_high() != a.neg().is_high());
    }
}
