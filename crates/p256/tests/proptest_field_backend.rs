//! The specialized field backend against the generic reference oracle.
//!
//! [`ecq_p256::field::FieldElement`] and [`ecq_p256::scalar::Scalar`]
//! run on the fixed-constant backend (compile-time Montgomery
//! constants, unrolled limb code, branch-free reductions, Fermat
//! addition chains). [`ecq_p256::mont::MontCtx`] derives every constant
//! independently at runtime and keeps the original loop/branch
//! algorithms — these properties pin the two against each other for
//! every operation over random values and the edge cases 0, 1, p−1 and
//! un-reduced 2^256−1, so a backend regression cannot hide behind its
//! own test vectors.

use ecq_p256::field::{FieldElement, P_HEX};
use ecq_p256::mont::MontCtx;
use ecq_p256::point::{mul_generator_vartime, multi_scalar_mul, AffinePoint};
use ecq_p256::scalar::{Scalar, N_HEX};
use ecq_p256::u256::U256;
use proptest::prelude::*;

fn p_ctx() -> MontCtx {
    MontCtx::new(U256::from_be_hex(P_HEX))
}

fn n_ctx() -> MontCtx {
    MontCtx::new(U256::from_be_hex(N_HEX))
}

/// Arbitrary 256-bit values, reduced into the field by the caller.
fn arb_u256() -> impl Strategy<Value = U256> {
    any::<[u8; 32]>().prop_map(|b| U256::from_be_bytes(&b))
}

/// The fixed edge values every agreement property includes: 0, 1,
/// p−1 (or n−1), and the maximal un-reduced input 2^256−1.
fn edge_values(modulus: &U256) -> Vec<U256> {
    vec![
        U256::ZERO,
        U256::ONE,
        modulus.wrapping_sub(&U256::ONE),
        U256::MAX,
    ]
}

/// Canonical product of two canonical residues, via the oracle.
fn ref_mul(ctx: &MontCtx, a: &U256, b: &U256) -> U256 {
    ctx.mul(a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn field_mul_and_square_match_reference(a in arb_u256(), b in arb_u256()) {
        let ctx = p_ctx();
        for a in edge_values(&ctx.m).into_iter().chain([a]) {
            for b in edge_values(&ctx.m).iter().chain([&b]) {
                let fa = FieldElement::from_reduced(&a);
                let fb = FieldElement::from_reduced(b);
                let ra = ctx.reduce(&a);
                let rb = ctx.reduce(b);
                prop_assert_eq!(fa.mul(&fb).to_canonical(), ref_mul(&ctx, &ra, &rb));
                prop_assert_eq!(fa.square().to_canonical(), ref_mul(&ctx, &ra, &ra));
            }
        }
    }

    #[test]
    fn field_add_sub_neg_match_reference(a in arb_u256(), b in arb_u256()) {
        let ctx = p_ctx();
        let fa = FieldElement::from_reduced(&a);
        let fb = FieldElement::from_reduced(&b);
        let ra = ctx.reduce(&a);
        let rb = ctx.reduce(&b);
        prop_assert_eq!(fa.add(&fb).to_canonical(), ctx.add(&ra, &rb));
        prop_assert_eq!(fa.sub(&fb).to_canonical(), ctx.sub(&ra, &rb));
        prop_assert_eq!(fa.neg().to_canonical(), ctx.neg(&ra));
    }

    #[test]
    fn field_inversion_matches_reference(a in arb_u256()) {
        let ctx = p_ctx();
        for v in edge_values(&ctx.m).into_iter().chain([a]) {
            let fa = FieldElement::from_reduced(&v);
            if fa.is_zero() {
                continue; // both sides panic on zero by contract
            }
            let ra = ctx.reduce(&v);
            let expected = ctx.from_mont(&ctx.mont_inv(&ctx.to_mont(&ra)));
            prop_assert_eq!(fa.invert().to_canonical(), expected);
        }
    }

    #[test]
    fn field_sqrt_matches_reference(a in arb_u256()) {
        // The oracle candidate is a^((p+1)/4) via generic mont_pow.
        let ctx = p_ctx();
        let exp = {
            let (p1, carry) = ctx.m.adc(&U256::ONE);
            prop_assert!(!carry);
            p1.shr1().shr1()
        };
        for v in edge_values(&ctx.m).into_iter().chain([a]) {
            let fa = FieldElement::from_reduced(&v);
            let ra = ctx.reduce(&v);
            let candidate = ctx.from_mont(&ctx.mont_pow(&ctx.to_mont(&ra), &exp));
            let is_root = ref_mul(&ctx, &candidate, &candidate) == ra;
            match fa.sqrt() {
                Some(root) => {
                    prop_assert!(is_root, "backend found a root the oracle refutes");
                    let r = root.to_canonical();
                    prop_assert!(r == candidate || r == ctx.neg(&candidate));
                }
                None => prop_assert!(!is_root, "backend missed a root the oracle found"),
            }
        }
    }

    #[test]
    fn scalar_ops_match_reference(a in arb_u256(), b in arb_u256()) {
        let ctx = n_ctx();
        for a in edge_values(&ctx.m).into_iter().chain([a]) {
            let sa = Scalar::from_reduced(&a);
            let sb = Scalar::from_reduced(&b);
            let ra = ctx.reduce(&a);
            let rb = ctx.reduce(&b);
            prop_assert_eq!(sa.mul(&sb).to_canonical(), ref_mul(&ctx, &ra, &rb));
            prop_assert_eq!(sa.square().to_canonical(), ref_mul(&ctx, &ra, &ra));
            prop_assert_eq!(sa.add(&sb).to_canonical(), ctx.add(&ra, &rb));
            prop_assert_eq!(sa.sub(&sb).to_canonical(), ctx.sub(&ra, &rb));
            if !sa.is_zero() {
                let expected = ctx.from_mont(&ctx.mont_inv(&ctx.to_mont(&ra)));
                prop_assert_eq!(sa.invert().to_canonical(), expected);
            }
        }
    }

    #[test]
    fn scalar_wide_reduction_matches_reference(lo in arb_u256(), hi in arb_u256()) {
        let ctx = n_ctx();
        let l = lo.limbs();
        let h = hi.limbs();
        let wide = [l[0], l[1], l[2], l[3], h[0], h[1], h[2], h[3]];
        prop_assert_eq!(Scalar::from_wide(&wide).to_canonical(), ctx.reduce_wide(&wide));
        // All-ones upper edge.
        let ones = [u64::MAX; 8];
        prop_assert_eq!(Scalar::from_wide(&ones).to_canonical(), ctx.reduce_wide(&ones));
    }

    #[test]
    fn straus_double_scalar_matches_two_single_muls(
        a in arb_u256(),
        b in arb_u256(),
        q_seed in arb_u256(),
    ) {
        let a = Scalar::from_reduced(&a);
        let b = Scalar::from_reduced(&b);
        let g = AffinePoint::generator();
        let q = mul_generator_vartime(&Scalar::from_reduced(&q_seed));
        prop_assert_eq!(
            multi_scalar_mul(&a, &g, &b, &q),
            g.mul_vartime(&a).add(&q.mul_vartime(&b))
        );
        // Unit scalars take the table-free fast path (the eq. (1)
        // reconstruction shape).
        prop_assert_eq!(
            multi_scalar_mul(&a, &g, &Scalar::one(), &q),
            mul_generator_vartime(&a).add(&q)
        );
        prop_assert_eq!(
            multi_scalar_mul(&Scalar::one(), &g, &b, &q),
            q.mul_vartime(&b).add(&g)
        );
        // Degenerate operands: zero scalars and identity bases.
        prop_assert_eq!(
            multi_scalar_mul(&Scalar::zero(), &g, &b, &q),
            q.mul_vartime(&b)
        );
        prop_assert_eq!(
            multi_scalar_mul(&a, &g, &Scalar::zero(), &q),
            g.mul_vartime(&a)
        );
        prop_assert_eq!(
            multi_scalar_mul(&a, &AffinePoint::identity(), &b, &q),
            q.mul_vartime(&b)
        );
        prop_assert!(multi_scalar_mul(
            &Scalar::zero(), &g, &Scalar::zero(), &q
        ).infinity);
    }
}
