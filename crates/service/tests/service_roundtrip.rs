//! End-to-end daemon/client tests over real loopback sockets.

use ecq_cert::ca::CertificateAuthority;
use ecq_cert::DeviceId;
use ecq_crypto::HmacDrbg;
use ecq_proto::framing::ErrorCode;
use ecq_proto::socket::{read_frame, write_frame};
use ecq_proto::{Credentials, Frame, TransportError};
use ecq_service::{ServiceAddr, ServiceClient, ServiceConfig, ServiceDaemon, ServiceError};
use ecq_sts::StsVariant;
use std::io::Write;
use std::time::Duration;

fn start_tcp(seed: u64) -> ServiceDaemon {
    ServiceDaemon::start(ServiceConfig::tcp("127.0.0.1:0").seed(seed)).expect("daemon starts")
}

fn tcp_addr(daemon: &ServiceDaemon) -> std::net::SocketAddr {
    match daemon.addr() {
        ServiceAddr::Tcp(addr) => *addr,
        #[cfg(unix)]
        ServiceAddr::Unix(_) => unreachable!("daemon bound to TCP"),
    }
}

#[test]
fn hello_returns_the_ca_key() {
    let mut daemon = start_tcp(11);
    let mut client = ServiceClient::connect_tcp(tcp_addr(&daemon)).unwrap();
    let ca_public = client.hello([1; 32]).unwrap();
    assert_eq!(ca_public, daemon.ca_public());
    daemon.shutdown();
    assert_eq!(daemon.stats().connections, 1);
}

#[test]
fn enroll_then_handshake_agrees_end_to_end() {
    let mut daemon = start_tcp(12);
    let mut client = ServiceClient::connect_tcp(tcp_addr(&daemon)).unwrap();
    client.hello([2; 32]).unwrap();

    let mut rng = HmacDrbg::from_seed(99);
    let creds = client
        .enroll(DeviceId::from_label("ecu-7"), &mut rng)
        .unwrap();
    assert!(creds.keys.is_consistent());
    assert_eq!(creds.cert.subject, DeviceId::from_label("ecu-7"));

    for variant in [
        StsVariant::Conventional,
        StsVariant::OptimizationI,
        StsVariant::OptimizationII,
    ] {
        let seed_a = rng.bytes32();
        let seed_b = rng.bytes32();
        let done = client
            .handshake(&creds, variant, 0, &seed_a, &seed_b)
            .unwrap();
        // Wire order A1, B1, A2, B2 — the paper's Table II exchange.
        let steps: Vec<&str> = done.messages.iter().map(|m| m.step).collect();
        assert_eq!(steps, ["A1", "B1", "A2", "B2"]);
    }
    daemon.shutdown();
    let stats = daemon.stats();
    assert_eq!(stats.enrollments, 1);
    assert_eq!(stats.handshakes, 3);
    assert_eq!(stats.errors, 0);
}

#[test]
fn crl_fetch_is_signed_and_tracks_revocations() {
    let mut daemon = start_tcp(13);
    let mut client = ServiceClient::connect_tcp(tcp_addr(&daemon)).unwrap();
    client.hello([3; 32]).unwrap();

    let crl = client.fetch_crl().unwrap();
    assert!(crl.is_empty());

    assert!(daemon.revoke(42));
    assert!(!daemon.revoke(42)); // idempotent
    let crl = client.fetch_crl().unwrap();
    assert!(crl.is_revoked(42));
    assert_eq!(crl.len(), 1);
    daemon.shutdown();
    assert_eq!(daemon.stats().crl_fetches, 2);
}

#[test]
fn crl_before_hello_is_refused_locally() {
    let daemon = start_tcp(14);
    let mut client = ServiceClient::connect_tcp(tcp_addr(&daemon)).unwrap();
    assert_eq!(client.fetch_crl().unwrap_err(), ServiceError::MissingHello);
}

#[cfg(unix)]
#[test]
fn unix_socket_serves_the_same_protocol() {
    let path = std::env::temp_dir().join(format!("ecq-service-{}.sock", std::process::id()));
    let mut daemon = ServiceDaemon::start(ServiceConfig::unix(&path).seed(15)).unwrap();
    let mut client = ServiceClient::connect(daemon.addr()).unwrap();
    let ca_public = client.hello([4; 32]).unwrap();
    assert_eq!(ca_public, daemon.ca_public());
    let mut rng = HmacDrbg::from_seed(7);
    let creds = client.enroll(DeviceId::from_label("u"), &mut rng).unwrap();
    let seed_a = rng.bytes32();
    let seed_b = rng.bytes32();
    client
        .handshake(&creds, StsVariant::Conventional, 0, &seed_a, &seed_b)
        .unwrap();
    daemon.shutdown();
    assert!(!path.exists(), "socket file removed on shutdown");
}

#[test]
fn injected_credentials_daemon_serves_handshakes() {
    // Build CA + responder exactly as a simulator setup would, inject.
    let mut rng = HmacDrbg::from_seed(500);
    let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
    let responder =
        Credentials::provision(&ca, DeviceId::from_label("resp"), 0, 1000, &mut rng).unwrap();
    let initiator =
        Credentials::provision(&ca, DeviceId::from_label("init"), 0, 1000, &mut rng).unwrap();
    let mut daemon =
        ServiceDaemon::start_with(ServiceConfig::tcp("127.0.0.1:0"), ca, responder).unwrap();
    let mut client = ServiceClient::connect_tcp(tcp_addr(&daemon)).unwrap();
    let seed_a = rng.bytes32();
    let seed_b = rng.bytes32();
    let done = client
        .handshake(&initiator, StsVariant::Conventional, 5, &seed_a, &seed_b)
        .unwrap();
    assert_eq!(done.messages.len(), 4);
    daemon.shutdown();
}

#[test]
fn garbage_bytes_get_a_typed_error_close() {
    let mut daemon = start_tcp(16);
    let mut stream = std::net::TcpStream::connect(tcp_addr(&daemon)).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    stream.write_all(b"GET / HTTP/1.1\r\n\r\n").unwrap();
    let reply = read_frame(&mut stream).unwrap();
    assert_eq!(
        reply,
        Frame::ErrorClose {
            code: ErrorCode::BadFrame.code()
        }
    );
    daemon.shutdown();
    assert_eq!(daemon.stats().errors, 1);
}

#[test]
fn version_skew_gets_a_typed_error_close() {
    let mut daemon = start_tcp(17);
    let mut stream = std::net::TcpStream::connect(tcp_addr(&daemon)).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut bytes = Frame::Hello { nonce: [0; 32] }.encode().unwrap();
    bytes[4] = 9; // future protocol version
    stream.write_all(&bytes).unwrap();
    let reply = read_frame(&mut stream).unwrap();
    assert_eq!(
        reply,
        Frame::ErrorClose {
            code: ErrorCode::BadFrame.code()
        }
    );
    daemon.shutdown();
}

#[test]
fn idle_connection_is_closed_with_deadline() {
    let mut daemon = ServiceDaemon::start(
        ServiceConfig::tcp("127.0.0.1:0")
            .seed(18)
            .read_timeout(Duration::from_millis(200)),
    )
    .unwrap();
    let mut stream = std::net::TcpStream::connect(tcp_addr(&daemon)).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Send nothing; the daemon must time the connection out.
    let reply = read_frame(&mut stream).unwrap();
    assert_eq!(
        reply,
        Frame::ErrorClose {
            code: ErrorCode::Deadline.code()
        }
    );
    daemon.shutdown();
}

#[test]
fn shutdown_notifies_in_flight_connections() {
    let mut daemon = start_tcp(19);
    let mut stream = std::net::TcpStream::connect(tcp_addr(&daemon)).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    // Ensure the worker picked the connection up before shutting down.
    write_frame(&mut stream, &Frame::Hello { nonce: [9; 32] }).unwrap();
    let hello = read_frame(&mut stream).unwrap();
    assert!(matches!(hello, Frame::HelloAck { .. }));
    daemon.shutdown();
    let reply = read_frame(&mut stream).unwrap();
    assert_eq!(
        reply,
        Frame::ErrorClose {
            code: ErrorCode::ShuttingDown.code()
        }
    );
    // The stream then closes for good.
    assert_eq!(read_frame(&mut stream).unwrap_err(), TransportError::Closed);
}

#[test]
fn handshake_with_foreign_credentials_fails_closed() {
    // Credentials from a *different* CA must not authenticate.
    let mut daemon = start_tcp(20);
    let mut rng = HmacDrbg::from_seed(777);
    let other_ca = CertificateAuthority::new(DeviceId::from_label("other"), &mut rng);
    let foreign =
        Credentials::provision(&other_ca, DeviceId::from_label("spy"), 0, 1000, &mut rng).unwrap();
    let mut client = ServiceClient::connect_tcp(tcp_addr(&daemon)).unwrap();
    let seed_a = rng.bytes32();
    let seed_b = rng.bytes32();
    let err = client
        .handshake(&foreign, StsVariant::Conventional, 0, &seed_a, &seed_b)
        .unwrap_err();
    // Either side may detect it first: the daemon refuses with a typed
    // close, or the client-side state machine rejects B1.
    match err {
        ServiceError::Refused(code) => assert_eq!(code, ErrorCode::HandshakeFailed.code()),
        ServiceError::Protocol(_) => {}
        other => panic!("unexpected error: {other:?}"),
    }
    daemon.shutdown();
}
