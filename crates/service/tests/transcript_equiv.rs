//! Socket transcripts are byte-identical to channel transcripts.
//!
//! The socket path changes the transport, nothing else: for the same
//! (credentials, config, seeds), every handshake message that crosses
//! the loopback daemon must encode to exactly the bytes the same
//! session produces over an in-memory [`ChannelTransport`]. This is
//! the property that lets wall-clock service benchmarks stand in for
//! simulator runs byte-for-byte.

use ecq_cert::ca::CertificateAuthority;
use ecq_cert::DeviceId;
use ecq_crypto::HmacDrbg;
use ecq_proto::{
    ChannelTransport, Credentials, Endpoint, Message, Role, SessionKey, StepOutput, Transport,
};
use ecq_service::{ServiceAddr, ServiceClient, ServiceConfig, ServiceDaemon};
use ecq_sts::{StsConfig, StsInitiator, StsResponder, StsVariant};
use proptest::prelude::*;

const VARIANTS: [StsVariant; 3] = [
    StsVariant::Conventional,
    StsVariant::OptimizationI,
    StsVariant::OptimizationII,
];

struct Setup {
    ca: CertificateAuthority,
    initiator: Credentials,
    responder: Credentials,
    seed_a: [u8; 32],
    seed_b: [u8; 32],
}

/// Derives CA, credentials and both session seeds from one master
/// seed, in a fixed draw order shared by both transports.
fn setup(seed: u64) -> Setup {
    let mut rng = HmacDrbg::from_seed(seed);
    let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
    let initiator =
        Credentials::provision(&ca, DeviceId::from_label("alice"), 0, 1000, &mut rng).unwrap();
    let responder =
        Credentials::provision(&ca, DeviceId::from_label("bob"), 0, 1000, &mut rng).unwrap();
    let seed_a = rng.bytes32();
    let seed_b = rng.bytes32();
    Setup {
        ca,
        initiator,
        responder,
        seed_a,
        seed_b,
    }
}

/// The reference run: same endpoints, same seed-derived RNG streams,
/// driven message-by-message over an in-memory channel transport.
fn channel_transcript(setup: &Setup, config: StsConfig) -> (SessionKey, Vec<Message>) {
    let mut rng_a = HmacDrbg::new(&setup.seed_a, b"sts-initiator");
    let mut rng_b = HmacDrbg::new(&setup.seed_b, b"sts-responder");
    let mut alice = StsInitiator::new(setup.initiator.clone(), config, &mut rng_a);
    let mut bob = StsResponder::new(setup.responder.clone(), config, &mut rng_b);
    let mut link = ChannelTransport::new(0);
    let mut messages = Vec::new();

    let opening = match alice.step(None).unwrap() {
        StepOutput::Send(message) => message,
        other => panic!("initiator must open with a send, got {other:?}"),
    };
    messages.push(opening.clone());
    link.send_frame(Role::Initiator, opening, 0).unwrap();

    let mut receiver = Role::Responder;
    for _ in 0..16 {
        if alice.is_established() && bob.is_established() {
            break;
        }
        let message = link
            .recv_frame(receiver, 0, 0)
            .unwrap()
            .expect("message due");
        let endpoint: &mut dyn Endpoint = match receiver {
            Role::Initiator => &mut alice,
            Role::Responder => &mut bob,
        };
        if let StepOutput::Send(reply) = endpoint.step(Some(&message)).unwrap() {
            messages.push(reply.clone());
            link.send_frame(receiver, reply, 0).unwrap();
        }
        receiver = receiver.peer();
    }
    assert!(alice.is_established() && bob.is_established());
    let key = alice.session_key().unwrap();
    assert_eq!(key, bob.session_key().unwrap());
    (key, messages)
}

fn socket_transcript(setup: &Setup, config: StsConfig) -> (SessionKey, Vec<Message>) {
    let mut daemon = ServiceDaemon::start_with(
        ServiceConfig::tcp("127.0.0.1:0"),
        setup.ca.clone(),
        setup.responder.clone(),
    )
    .unwrap();
    let addr = match daemon.addr() {
        ServiceAddr::Tcp(addr) => *addr,
        #[cfg(unix)]
        ServiceAddr::Unix(_) => unreachable!("daemon bound to TCP"),
    };
    let mut client = ServiceClient::connect_tcp(addr).unwrap();
    let done = client
        .handshake(
            &setup.initiator,
            config.variant,
            config.now,
            &setup.seed_a,
            &setup.seed_b,
        )
        .unwrap();
    daemon.shutdown();
    (done.key, done.messages)
}

fn assert_byte_identical(seed: u64, variant: StsVariant, now: u32) {
    let setup = setup(seed);
    let config = StsConfig { now, variant };
    let (channel_key, channel_messages) = channel_transcript(&setup, config);
    let (socket_key, socket_messages) = socket_transcript(&setup, config);

    assert_eq!(socket_key, channel_key, "session keys diverge");
    assert_eq!(
        socket_messages.len(),
        channel_messages.len(),
        "message counts diverge"
    );
    for (index, (socket, channel)) in socket_messages
        .iter()
        .zip(channel_messages.iter())
        .enumerate()
    {
        assert_eq!(socket.step, channel.step, "step order diverges at {index}");
        assert_eq!(
            socket.encode(),
            channel.encode(),
            "message {index} ({}) bytes diverge",
            channel.step
        );
    }
}

#[test]
fn conventional_socket_run_matches_channel_run() {
    assert_byte_identical(42, StsVariant::Conventional, 7);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// For ANY master seed, variant and clock, the loopback-socket
    /// handshake transcript is byte-identical to the channel-transport
    /// transcript of the same inputs, and both derive the same key.
    #[test]
    fn socket_transcript_is_byte_identical_to_channel(
        seed in 0u64..1_000_000,
        variant_index in 0usize..3,
        now in 0u32..1000,
    ) {
        assert_byte_identical(seed, VARIANTS[variant_index], now);
    }
}
