//! A unified byte stream over the daemon's two listener families.

use ecq_proto::socket::DeadlineStream;
use ecq_proto::TransportError;
use std::io::{Read, Write};
use std::time::Duration;

/// Either a TCP or a Unix-domain connection, behind one type so the
/// connection handler and the client are listener-agnostic.
#[derive(Debug)]
pub enum ServiceStream {
    /// A TCP connection.
    Tcp(std::net::TcpStream),
    /// A Unix-domain connection.
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixStream),
}

impl ServiceStream {
    /// Sets the write timeout (`None` blocks indefinitely).
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure as [`TransportError`].
    pub fn set_write_deadline(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        match self {
            ServiceStream::Tcp(s) => s.set_write_timeout(timeout).map_err(TransportError::from),
            #[cfg(unix)]
            ServiceStream::Unix(s) => s.set_write_timeout(timeout).map_err(TransportError::from),
        }
    }
}

impl Read for ServiceStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ServiceStream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            ServiceStream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for ServiceStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ServiceStream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            ServiceStream::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ServiceStream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            ServiceStream::Unix(s) => s.flush(),
        }
    }
}

impl DeadlineStream for ServiceStream {
    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        match self {
            ServiceStream::Tcp(s) => s.set_read_timeout(timeout).map_err(TransportError::from),
            #[cfg(unix)]
            ServiceStream::Unix(s) => s.set_read_timeout(timeout).map_err(TransportError::from),
        }
    }
}
