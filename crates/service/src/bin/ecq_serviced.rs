//! `ecq_serviced` — the CA + responder daemon, as a process.
//!
//! ```text
//! ecq_serviced [--bind ADDR | --unix PATH] [--seed N]
//!              [--valid-from N] [--valid-to N]
//!              [--read-timeout-ms N] [--max-seconds N]
//! ```
//!
//! Prints the bound address on stdout (`listening on ...`) once the
//! listener is up, then serves until killed — or for `--max-seconds`
//! when given, which is how the CI service job bounds the run.

use ecq_service::{ServiceAddr, ServiceConfig, ServiceDaemon};
use std::time::Duration;

struct Args {
    config: ServiceConfig,
    max_seconds: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut bind: Option<String> = None;
    #[cfg(unix)]
    let mut unix: Option<String> = None;
    let mut seed: u64 = 1;
    let mut valid_from: u32 = 0;
    let mut valid_to: u32 = u32::MAX;
    let mut read_timeout_ms: u64 = 5_000;
    let mut max_seconds: Option<u64> = None;

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--bind" => bind = Some(value("--bind")?),
            #[cfg(unix)]
            "--unix" => unix = Some(value("--unix")?),
            "--seed" => seed = parse(&value("--seed")?)?,
            "--valid-from" => valid_from = parse(&value("--valid-from")?)?,
            "--valid-to" => valid_to = parse(&value("--valid-to")?)?,
            "--read-timeout-ms" => read_timeout_ms = parse(&value("--read-timeout-ms")?)?,
            "--max-seconds" => max_seconds = Some(parse(&value("--max-seconds")?)?),
            other => return Err(format!("unknown flag: {other}")),
        }
    }

    #[cfg(unix)]
    let config = match unix {
        Some(path) => ServiceConfig::unix(path),
        None => ServiceConfig::tcp(bind.unwrap_or_else(|| "127.0.0.1:0".into())),
    };
    #[cfg(not(unix))]
    let config = ServiceConfig::tcp(bind.unwrap_or_else(|| "127.0.0.1:0".into()));

    Ok(Args {
        config: config
            .seed(seed)
            .validity(valid_from, valid_to)
            .read_timeout(Duration::from_millis(read_timeout_ms)),
        max_seconds,
    })
}

fn parse<T: std::str::FromStr>(text: &str) -> Result<T, String> {
    text.parse()
        .map_err(|_| format!("not a valid number: {text}"))
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("ecq_serviced: {message}");
            std::process::exit(2);
        }
    };
    let mut daemon = match ServiceDaemon::start(args.config) {
        Ok(daemon) => daemon,
        Err(error) => {
            eprintln!("ecq_serviced: failed to start: {error}");
            std::process::exit(1);
        }
    };
    match daemon.addr() {
        ServiceAddr::Tcp(addr) => println!("listening on tcp://{addr}"),
        #[cfg(unix)]
        ServiceAddr::Unix(path) => println!("listening on unix://{}", path.display()),
    }

    let mut elapsed = 0u64;
    loop {
        std::thread::sleep(Duration::from_secs(1));
        elapsed += 1;
        if let Some(limit) = args.max_seconds {
            if elapsed >= limit {
                break;
            }
        }
    }
    daemon.shutdown();
    let stats = daemon.stats();
    println!(
        "served: connections={} handshakes={} enrollments={} crl_fetches={} errors={}",
        stats.connections, stats.handshakes, stats.enrollments, stats.crl_fetches, stats.errors
    );
}
