//! Per-connection frame dispatch.
//!
//! `handle_connection` is a panic-reachability root for `ecq_lint`:
//! everything reachable from here must fail closed with a typed
//! [`ErrorCode`] frame, never a panic — a hostile peer controls every
//! byte this module reads.

use crate::daemon::Shared;
use crate::stream::ServiceStream;
use crate::variant_from_code;
use ecq_cert::requester::CertRequest;
use ecq_cert::DeviceId;
use ecq_crypto::HmacDrbg;
use ecq_p256::point::AffinePoint;
use ecq_proto::framing::ErrorCode;
use ecq_proto::socket::{write_frame, DeadlineStream};
use ecq_proto::{Endpoint, Frame, StepOutput, TransportError};
use ecq_sts::{StsConfig, StsResponder};
use std::io::Read;
use std::sync::atomic::Ordering;
use std::time::Duration;

/// Read-poll granularity: the connection wakes this often to notice a
/// daemon shutdown or an expired idle deadline.
const TICK: Duration = Duration::from_millis(50);

/// How one service of a frame (or a read attempt) ends.
enum Outcome {
    /// A complete frame was decoded.
    Frame(Frame),
    /// The idle deadline passed without a complete frame.
    Deadline,
    /// The daemon is shutting down.
    Shutdown,
    /// The peer closed the stream (or an unrecoverable read error).
    Closed,
    /// The byte stream is not a valid frame stream.
    Bad,
}

/// Accumulates stream bytes and yields complete frames.
struct FrameSource {
    buf: Vec<u8>,
}

impl FrameSource {
    fn new() -> Self {
        FrameSource { buf: Vec::new() }
    }

    /// Blocks (in `TICK` steps) until a complete frame arrives, the
    /// idle budget runs out, the daemon shuts down, or the stream
    /// fails. Buffered surplus bytes carry over to the next call, so a
    /// peer may batch frames in one write.
    fn next(&mut self, stream: &mut ServiceStream, shared: &Shared) -> Outcome {
        let mut waited = Duration::ZERO;
        let mut chunk = [0u8; 4096];
        loop {
            if !self.buf.is_empty() {
                match Frame::decode(&self.buf) {
                    Ok((frame, used)) => {
                        self.buf.drain(..used);
                        return Outcome::Frame(frame);
                    }
                    Err(TransportError::Truncated) => {} // need more bytes
                    Err(_) => return Outcome::Bad,
                }
            }
            if shared.shutdown.load(Ordering::SeqCst) {
                return Outcome::Shutdown;
            }
            if waited >= shared.read_timeout {
                return Outcome::Deadline;
            }
            match stream.read(&mut chunk) {
                Ok(0) => return Outcome::Closed,
                Ok(n) => {
                    if let Some(bytes) = chunk.get(..n) {
                        self.buf.extend_from_slice(bytes);
                    }
                }
                Err(e) => match e.kind() {
                    std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock => {
                        waited = waited.saturating_add(TICK);
                    }
                    std::io::ErrorKind::Interrupted => {}
                    _ => return Outcome::Closed,
                },
            }
        }
    }
}

/// Serves one accepted connection to completion. Never panics; every
/// abnormal end sends a typed [`ErrorCode`] frame before closing.
pub(crate) fn handle_connection(shared: &Shared, mut stream: ServiceStream) {
    shared.stats.connections.fetch_add(1, Ordering::Relaxed);
    if stream.set_read_deadline(Some(TICK)).is_err()
        || stream
            .set_write_deadline(Some(shared.write_timeout))
            .is_err()
    {
        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        return;
    }
    if let Err(Some(code)) = serve(shared, &mut stream) {
        // Administrative closes (daemon shutdown) are not peer
        // faults; everything else counts as a connection error.
        if code != ErrorCode::ShuttingDown {
            shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        }
        let _ = write_frame(&mut stream, &Frame::ErrorClose { code: code.code() });
    }
}

/// The dispatch loop. `Err(Some(code))` closes with a typed error
/// frame; `Err(None)` is a silent close (the peer already went away).
fn serve(shared: &Shared, stream: &mut ServiceStream) -> Result<(), Option<ErrorCode>> {
    let mut source = FrameSource::new();
    loop {
        match source.next(stream, shared) {
            Outcome::Frame(Frame::Hello { nonce: _ }) => {
                let ca_public = shared
                    .ca
                    .public_key()
                    .to_bytes_compressed()
                    .map_err(|_| Some(ErrorCode::BadFrame))?;
                write_frame(stream, &Frame::HelloAck { ca_public }).map_err(|_| None)?;
            }
            Outcome::Frame(Frame::EnrollRequest { subject, point }) => {
                let issued = enroll(shared, subject, &point)?;
                write_frame(stream, &issued).map_err(|_| None)?;
                shared.stats.enrollments.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::Frame(Frame::HsOpen { seed, variant, now }) => {
                handshake(shared, stream, &mut source, &seed, variant, now)?;
                shared.stats.handshakes.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::Frame(Frame::CrlRequest) => {
                let reply = crl_response(shared)?;
                write_frame(stream, &reply).map_err(|_| None)?;
                shared.stats.crl_fetches.fetch_add(1, Ordering::Relaxed);
            }
            Outcome::Frame(Frame::ErrorClose { .. }) => return Ok(()),
            // Server-to-client frames (and stray handshake messages
            // outside a session) are protocol violations here.
            Outcome::Frame(_) => return Err(Some(ErrorCode::BadFrame)),
            Outcome::Deadline => return Err(Some(ErrorCode::Deadline)),
            Outcome::Shutdown => return Err(Some(ErrorCode::ShuttingDown)),
            Outcome::Closed => return Ok(()),
            Outcome::Bad => return Err(Some(ErrorCode::BadFrame)),
        }
    }
}

fn enroll(
    shared: &Shared,
    subject: [u8; 16],
    point: &[u8; 33],
) -> Result<Frame, Option<ErrorCode>> {
    let point =
        AffinePoint::from_bytes_compressed(point).map_err(|_| Some(ErrorCode::EnrollRefused))?;
    let request = CertRequest {
        subject: DeviceId::from_bytes(subject),
        point,
    };
    let mut rng = shared
        .issue_rng
        .lock()
        .map_err(|_| Some(ErrorCode::EnrollRefused))?;
    let issued = shared
        .ca
        .issue(&request, shared.valid_from, shared.valid_to, &mut rng)
        .map_err(|_| Some(ErrorCode::EnrollRefused))?;
    Ok(Frame::EnrollIssued {
        cert: issued.certificate.to_bytes(),
        recon_private: issued.recon_private.to_be_bytes(),
    })
}

fn handshake(
    shared: &Shared,
    stream: &mut ServiceStream,
    source: &mut FrameSource,
    seed: &[u8; 32],
    variant: u8,
    now: u32,
) -> Result<(), Option<ErrorCode>> {
    let variant = variant_from_code(variant).ok_or(Some(ErrorCode::BadFrame))?;
    let config = StsConfig { now, variant };
    // The responder RNG stream is derived exactly as
    // `ecq_sts::establish` derives it from the session seed, which is
    // what makes socket transcripts comparable to simulator runs.
    let mut rng = HmacDrbg::new(seed, b"sts-responder");
    let mut responder = StsResponder::new(shared.responder.clone(), config, &mut rng);
    while !responder.is_established() {
        let message = match source.next(stream, shared) {
            Outcome::Frame(Frame::HsMessage(message)) => message,
            Outcome::Frame(_) => return Err(Some(ErrorCode::BadFrame)),
            Outcome::Deadline => return Err(Some(ErrorCode::Deadline)),
            Outcome::Shutdown => return Err(Some(ErrorCode::ShuttingDown)),
            Outcome::Closed => return Err(None),
            Outcome::Bad => return Err(Some(ErrorCode::BadFrame)),
        };
        match responder.step(Some(&message)) {
            Ok(StepOutput::Send(reply)) => {
                write_frame(stream, &Frame::HsMessage(reply)).map_err(|_| None)?;
            }
            Ok(StepOutput::Wait) | Ok(StepOutput::Established) => {}
            Err(_) => return Err(Some(ErrorCode::HandshakeFailed)),
        }
    }
    Ok(())
}

fn crl_response(shared: &Shared) -> Result<Frame, Option<ErrorCode>> {
    let crl = shared
        .crl
        .lock()
        .map_err(|_| Some(ErrorCode::BadFrame))?
        .to_bytes();
    let signature = shared.ca.sign_revocation_list(&crl).to_bytes().to_vec();
    Ok(Frame::CrlResponse { crl, signature })
}
