//! Daemon configuration.

use std::path::PathBuf;
use std::time::Duration;

/// Where the daemon listens.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BindAddr {
    /// A TCP socket address string (e.g. `127.0.0.1:0` for an
    /// ephemeral loopback port).
    Tcp(String),
    /// A Unix-domain socket path. A stale socket file at the path is
    /// removed before binding.
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Configuration for a [`crate::ServiceDaemon`].
///
/// Constructed through [`ServiceConfig::tcp`] / [`ServiceConfig::unix`]
/// and refined with the builder methods; the struct is
/// `#[non_exhaustive]` so future knobs do not break callers.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ServiceConfig {
    /// Listener address.
    pub bind: BindAddr,
    /// Seed for the daemon's deterministic RNG (CA key generation,
    /// responder provisioning, certificate serials and blindings).
    pub seed: u64,
    /// Validity-window start for certificates the CA issues.
    pub valid_from: u32,
    /// Validity-window end for certificates the CA issues.
    pub valid_to: u32,
    /// Per-connection idle deadline: a connection that sends no
    /// complete frame for this long is closed with a typed
    /// `Deadline` error frame.
    pub read_timeout: Duration,
    /// Per-connection write timeout for response frames.
    pub write_timeout: Duration,
}

impl ServiceConfig {
    /// A config listening on the given TCP address (use `127.0.0.1:0`
    /// for an ephemeral test port), with default timeouts and
    /// validity window.
    pub fn tcp(addr: impl Into<String>) -> Self {
        ServiceConfig {
            bind: BindAddr::Tcp(addr.into()),
            seed: 1,
            valid_from: 0,
            valid_to: u32::MAX,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
        }
    }

    /// A config listening on a Unix-domain socket path.
    #[cfg(unix)]
    pub fn unix(path: impl Into<PathBuf>) -> Self {
        let mut config = Self::tcp(String::new());
        config.bind = BindAddr::Unix(path.into());
        config
    }

    /// Sets the daemon RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the certificate validity window for issued certificates.
    #[must_use]
    pub fn validity(mut self, from: u32, to: u32) -> Self {
        self.valid_from = from;
        self.valid_to = to;
        self
    }

    /// Sets the per-connection idle deadline.
    #[must_use]
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Sets the per-connection write timeout.
    #[must_use]
    pub fn write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = timeout;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let config = ServiceConfig::tcp("127.0.0.1:0")
            .seed(7)
            .validity(10, 20)
            .read_timeout(Duration::from_millis(250))
            .write_timeout(Duration::from_millis(125));
        assert_eq!(config.bind, BindAddr::Tcp("127.0.0.1:0".into()));
        assert_eq!(config.seed, 7);
        assert_eq!((config.valid_from, config.valid_to), (10, 20));
        assert_eq!(config.read_timeout, Duration::from_millis(250));
        assert_eq!(config.write_timeout, Duration::from_millis(125));
    }

    #[cfg(unix)]
    #[test]
    fn unix_bind_keeps_defaults() {
        let config = ServiceConfig::unix("/tmp/ecq.sock");
        assert_eq!(config.bind, BindAddr::Unix(PathBuf::from("/tmp/ecq.sock")));
        assert_eq!(config.valid_to, u32::MAX);
    }
}
