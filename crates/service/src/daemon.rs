//! The long-running CA + responder daemon.

use crate::config::{BindAddr, ServiceConfig};
use crate::connection::handle_connection;
use crate::error::ServiceError;
use crate::stream::ServiceStream;
use ecq_cert::ca::CertificateAuthority;
use ecq_cert::revocation::RevocationList;
use ecq_cert::DeviceId;
use ecq_crypto::HmacDrbg;
use ecq_proto::Credentials;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// The address a started daemon actually listens on (the config may
/// have asked for an ephemeral port).
#[derive(Clone, Debug)]
pub enum ServiceAddr {
    /// Bound TCP address.
    Tcp(std::net::SocketAddr),
    /// Bound Unix-domain socket path.
    #[cfg(unix)]
    Unix(std::path::PathBuf),
}

/// Monotonic connection-loop counters, readable while the daemon runs.
#[derive(Debug, Default)]
pub(crate) struct Stats {
    pub connections: AtomicU64,
    pub handshakes: AtomicU64,
    pub enrollments: AtomicU64,
    pub crl_fetches: AtomicU64,
    pub errors: AtomicU64,
}

/// A point-in-time copy of the daemon counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted.
    pub connections: u64,
    /// Handshakes completed (responder reached establishment).
    pub handshakes: u64,
    /// Certificates issued.
    pub enrollments: u64,
    /// CRL fetches served.
    pub crl_fetches: u64,
    /// Connections that ended with a typed error frame.
    pub errors: u64,
}

/// State shared between the accept loop and every connection worker.
pub(crate) struct Shared {
    pub ca: CertificateAuthority,
    pub responder: Credentials,
    pub crl: Mutex<RevocationList>,
    /// Serial + blinding RNG for issuance; the lock serializes draws so
    /// issuance order alone determines the certificate stream.
    pub issue_rng: Mutex<HmacDrbg>,
    pub valid_from: u32,
    pub valid_to: u32,
    pub read_timeout: Duration,
    pub write_timeout: Duration,
    pub shutdown: AtomicBool,
    pub stats: Stats,
}

enum Listener {
    Tcp(std::net::TcpListener),
    #[cfg(unix)]
    Unix(std::os::unix::net::UnixListener),
}

impl Listener {
    fn accept(&self) -> std::io::Result<ServiceStream> {
        match self {
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                let _ = stream.set_nodelay(true);
                Ok(ServiceStream::Tcp(stream))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                Ok(ServiceStream::Unix(stream))
            }
        }
    }
}

/// A running CA + responder daemon.
///
/// The daemon owns one accept thread and one worker thread per live
/// connection. [`ServiceDaemon::shutdown`] (also run on drop) flips
/// the shared shutdown flag, unblocks the accept loop, and joins every
/// worker; in-flight connections receive a typed `ShuttingDown` error
/// frame at their next read tick.
pub struct ServiceDaemon {
    shared: Arc<Shared>,
    addr: ServiceAddr,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl ServiceDaemon {
    /// Starts a daemon whose CA and responder credentials are derived
    /// deterministically from `config.seed`.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] when provisioning fails or the listener cannot
    /// bind.
    pub fn start(config: ServiceConfig) -> Result<Self, ServiceError> {
        let mut rng = HmacDrbg::from_seed(config.seed);
        let ca = CertificateAuthority::new(DeviceId::from_label("service-ca"), &mut rng);
        let responder = Credentials::provision(
            &ca,
            DeviceId::from_label("service-responder"),
            config.valid_from,
            config.valid_to,
            &mut rng,
        )?;
        Self::start_with(config, ca, responder)
    }

    /// Starts a daemon with injected CA and responder credentials.
    ///
    /// This is the hook the transcript-equivalence test uses: it builds
    /// the *same* CA and credentials a simulator run derives, so the
    /// only difference between the socket path and the in-memory path
    /// is the transport.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] when the listener cannot bind.
    pub fn start_with(
        config: ServiceConfig,
        ca: CertificateAuthority,
        responder: Credentials,
    ) -> Result<Self, ServiceError> {
        // Issuance draws continue an independent stream personalized by
        // the CA identity, so injected-credential daemons still issue.
        let mut seed_rng = HmacDrbg::from_seed(config.seed);
        let issue_rng = HmacDrbg::new(&seed_rng.bytes32(), b"service-issue");
        let (listener, addr) = bind(&config.bind)?;
        let shared = Arc::new(Shared {
            ca,
            responder,
            crl: Mutex::new(RevocationList::new()),
            issue_rng: Mutex::new(issue_rng),
            valid_from: config.valid_from,
            valid_to: config.valid_to,
            read_timeout: config.read_timeout,
            write_timeout: config.write_timeout,
            shutdown: AtomicBool::new(false),
            stats: Stats::default(),
        });
        let accept_shared = Arc::clone(&shared);
        let accept = std::thread::Builder::new()
            .name("ecq-service-accept".into())
            .spawn(move || accept_loop(&accept_shared, listener))?;
        Ok(ServiceDaemon {
            shared,
            addr,
            accept: Some(accept),
        })
    }

    /// The bound listener address.
    pub fn addr(&self) -> &ServiceAddr {
        &self.addr
    }

    /// The CA public key clients authenticate against.
    pub fn ca_public(&self) -> ecq_p256::point::AffinePoint {
        self.shared.ca.public_key()
    }

    /// Revokes a certificate serial in the served CRL. Returns whether
    /// the serial was newly added.
    pub fn revoke(&self, serial: u64) -> bool {
        match self.shared.crl.lock() {
            Ok(mut crl) => crl.revoke(serial),
            Err(_) => false,
        }
    }

    /// A snapshot of the connection-loop counters.
    pub fn stats(&self) -> StatsSnapshot {
        let s = &self.shared.stats;
        StatsSnapshot {
            connections: s.connections.load(Ordering::Relaxed),
            handshakes: s.handshakes.load(Ordering::Relaxed),
            enrollments: s.enrollments.load(Ordering::Relaxed),
            crl_fetches: s.crl_fetches.load(Ordering::Relaxed),
            errors: s.errors.load(Ordering::Relaxed),
        }
    }

    /// Stops accepting, notifies in-flight connections and joins every
    /// worker thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept call with a throwaway connection.
        match &self.addr {
            ServiceAddr::Tcp(addr) => {
                let _ = std::net::TcpStream::connect_timeout(addr, Duration::from_secs(1));
            }
            #[cfg(unix)]
            ServiceAddr::Unix(path) => {
                let _ = std::os::unix::net::UnixStream::connect(path);
            }
        }
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
        #[cfg(unix)]
        if let ServiceAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for ServiceDaemon {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn bind(bind: &BindAddr) -> Result<(Listener, ServiceAddr), ServiceError> {
    match bind {
        BindAddr::Tcp(addr) => {
            let listener = std::net::TcpListener::bind(addr.as_str())?;
            let local = listener.local_addr()?;
            Ok((Listener::Tcp(listener), ServiceAddr::Tcp(local)))
        }
        #[cfg(unix)]
        BindAddr::Unix(path) => {
            let _ = std::fs::remove_file(path);
            let listener = std::os::unix::net::UnixListener::bind(path)?;
            Ok((Listener::Unix(listener), ServiceAddr::Unix(path.clone())))
        }
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: Listener) {
    let mut workers: Vec<std::thread::JoinHandle<()>> = Vec::new();
    loop {
        let stream = listener.accept();
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match stream {
            Ok(stream) => stream,
            Err(_) => continue, // transient accept failure; keep serving
        };
        let worker_shared = Arc::clone(shared);
        let spawned = std::thread::Builder::new()
            .name("ecq-service-conn".into())
            .spawn(move || handle_connection(&worker_shared, stream));
        match spawned {
            Ok(handle) => workers.push(handle),
            Err(_) => {
                // Thread exhaustion: drop the connection rather than
                // the daemon.
                shared.stats.errors.fetch_add(1, Ordering::Relaxed);
            }
        }
        // Reap finished workers so the handle list tracks live
        // connections instead of connection history.
        workers.retain(|h| !h.is_finished());
    }
    for handle in workers {
        let _ = handle.join();
    }
}
