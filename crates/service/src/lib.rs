//! Service mode: a long-running CA + responder daemon speaking the
//! versioned [`ecq_proto::framing`] wire format over real sockets.
//!
//! The paper's evaluation runs both handshake parties in one process;
//! this crate is the deployment-shaped counterpart. A
//! [`ServiceDaemon`] binds a TCP or Unix-domain listener and serves,
//! from a thread-per-connection loop:
//!
//! * **enrollment** — the ECQV request/issue exchange
//!   ([`ecq_proto::Frame::EnrollRequest`] →
//!   [`ecq_proto::Frame::EnrollIssued`]),
//! * **handshakes** — a full STS session against the daemon's
//!   responder credentials, one wire message per
//!   [`ecq_proto::Frame::HsMessage`] frame,
//! * **revocation** — CRL fetches signed by the CA
//!   ([`ecq_proto::Frame::CrlRequest`] →
//!   [`ecq_proto::Frame::CrlResponse`]).
//!
//! [`ServiceClient`] is the matching blocking client. Handshake RNG
//! streams on both sides are derived from an explicit session seed
//! (carried in [`ecq_proto::Frame::HsOpen`]) exactly the way
//! `ecq_sts::establish` derives them, so a socket transcript is
//! byte-identical to a simulator transcript of the same seed — the
//! property the `transcript_equiv` test pins down.
//!
//! Connections fail closed: every malformed frame, deadline overrun or
//! daemon shutdown surfaces as a typed
//! [`ecq_proto::Frame::ErrorClose`] before the socket drops, and the
//! frame decoder itself never panics on byte soup.

#![warn(missing_docs)]

pub mod client;
pub mod config;
mod connection;
pub mod daemon;
pub mod error;
pub mod stream;

pub use client::{ServiceClient, SocketHandshake};
pub use config::{BindAddr, ServiceConfig};
pub use daemon::{ServiceAddr, ServiceDaemon, StatsSnapshot};
pub use error::ServiceError;
pub use stream::ServiceStream;

// The socket transports live in `ecq_proto::socket` (the fleet uses
// them without depending on this crate); service mode re-exports them
// as its client-side transport vocabulary.
pub use ecq_proto::{SocketPair, StreamTransport};

/// The client-side [`ecq_proto::Transport`] over a service connection:
/// a [`StreamTransport`] framing handshake messages onto a
/// [`ServiceStream`].
pub type SocketTransport = StreamTransport<ServiceStream>;

use ecq_sts::StsVariant;

/// Wire code of an STS variant inside [`ecq_proto::Frame::HsOpen`].
pub fn variant_code(variant: StsVariant) -> u8 {
    match variant {
        StsVariant::Conventional => 0,
        StsVariant::OptimizationI => 1,
        StsVariant::OptimizationII => 2,
    }
}

/// Decodes an STS variant wire code; `None` for unknown codes (the
/// daemon refuses the handshake rather than guessing a schedule).
pub fn variant_from_code(code: u8) -> Option<StsVariant> {
    match code {
        0 => Some(StsVariant::Conventional),
        1 => Some(StsVariant::OptimizationI),
        2 => Some(StsVariant::OptimizationII),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_codes_roundtrip() {
        for v in [
            StsVariant::Conventional,
            StsVariant::OptimizationI,
            StsVariant::OptimizationII,
        ] {
            assert_eq!(variant_from_code(variant_code(v)), Some(v));
        }
        assert_eq!(variant_from_code(3), None);
        assert_eq!(variant_from_code(0xFF), None);
    }
}
