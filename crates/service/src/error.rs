//! The service-layer error type.

use ecq_cert::CertError;
use ecq_p256::CurveError;
use ecq_proto::{FrameKind, ProtocolError, TransportError};

/// Everything that can go wrong on a service connection, client or
/// daemon side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceError {
    /// Socket or frame-codec failure.
    Transport(TransportError),
    /// Handshake state-machine failure.
    Protocol(ProtocolError),
    /// Certificate issuance/reconstruction failure.
    Cert(CertError),
    /// Curve-level decode failure (bad compressed point, bad scalar).
    Curve(CurveError),
    /// The peer closed the connection with a typed
    /// [`ecq_proto::framing::ErrorCode`] wire code.
    Refused(u8),
    /// The peer answered with a frame kind the protocol state does not
    /// allow here.
    Unexpected(FrameKind),
    /// The operation needs the CA public key, which arrives in the
    /// hello exchange; call [`crate::ServiceClient::hello`] first.
    MissingHello,
    /// The CRL signature did not verify against the CA public key.
    BadCrlSignature,
}

impl core::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServiceError::Transport(e) => write!(f, "transport: {e}"),
            ServiceError::Protocol(e) => write!(f, "protocol: {e}"),
            ServiceError::Cert(e) => write!(f, "certificate: {e:?}"),
            ServiceError::Curve(e) => write!(f, "curve: {e:?}"),
            ServiceError::Refused(code) => {
                write!(f, "peer refused the connection (error code {code})")
            }
            ServiceError::Unexpected(kind) => {
                write!(f, "unexpected frame kind {kind:?} for the protocol state")
            }
            ServiceError::MissingHello => {
                write!(f, "CA public key unknown; run the hello exchange first")
            }
            ServiceError::BadCrlSignature => {
                write!(f, "CRL signature does not verify against the CA key")
            }
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Transport(e) => Some(e),
            ServiceError::Protocol(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TransportError> for ServiceError {
    fn from(e: TransportError) -> Self {
        ServiceError::Transport(e)
    }
}

impl From<ProtocolError> for ServiceError {
    fn from(e: ProtocolError) -> Self {
        ServiceError::Protocol(e)
    }
}

impl From<CertError> for ServiceError {
    fn from(e: CertError) -> Self {
        ServiceError::Cert(e)
    }
}

impl From<CurveError> for ServiceError {
    fn from(e: CurveError) -> Self {
        ServiceError::Curve(e)
    }
}

impl From<std::io::Error> for ServiceError {
    fn from(e: std::io::Error) -> Self {
        ServiceError::Transport(TransportError::from(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_typed_causes() {
        let e = ServiceError::from(TransportError::Timeout);
        assert_eq!(e, ServiceError::Transport(TransportError::Timeout));
        let e = ServiceError::from(CertError::Revoked);
        assert_eq!(e, ServiceError::Cert(CertError::Revoked));
        let io = std::io::Error::from(std::io::ErrorKind::TimedOut);
        assert_eq!(
            ServiceError::from(io),
            ServiceError::Transport(TransportError::Timeout)
        );
    }

    #[test]
    fn display_is_informative() {
        let text = ServiceError::Refused(4).to_string();
        assert!(text.contains("error code 4"));
        assert!(ServiceError::MissingHello.to_string().contains("hello"));
    }
}
