//! The blocking service client.

use crate::daemon::ServiceAddr;
use crate::error::ServiceError;
use crate::stream::ServiceStream;
use crate::variant_code;
use ecq_cert::ca::IssuedCert;
use ecq_cert::requester::CertRequester;
use ecq_cert::revocation::RevocationList;
use ecq_cert::{DeviceId, ImplicitCert};
use ecq_crypto::HmacDrbg;
use ecq_p256::ecdsa::{verify, Signature};
use ecq_p256::point::AffinePoint;
use ecq_p256::scalar::Scalar;
use ecq_proto::socket::{read_frame, write_frame, DeadlineStream};
use ecq_proto::{Credentials, Endpoint, Frame, Message, SessionKey, StepOutput};
use ecq_sts::{StsConfig, StsInitiator, StsVariant};
use std::time::Duration;

/// A completed socket handshake: the derived key plus the full wire
/// transcript in exchange order (A1, B1, A2, B2), for byte-level
/// comparison against simulator transcripts.
#[derive(Clone, Debug)]
pub struct SocketHandshake {
    /// The initiator-side session key. Key agreement is proven by the
    /// STS MAC exchange: establishment implies the responder derived
    /// the same key.
    pub key: SessionKey,
    /// Every handshake message, in wire order, both directions.
    pub messages: Vec<Message>,
}

/// A blocking client for one daemon connection.
///
/// Protocol order: [`ServiceClient::hello`] first (it learns the CA
/// public key that anchors enrollment and CRL verification), then any
/// mix of [`ServiceClient::enroll`], [`ServiceClient::handshake`] and
/// [`ServiceClient::fetch_crl`].
pub struct ServiceClient {
    stream: ServiceStream,
    ca_public: Option<AffinePoint>,
}

impl ServiceClient {
    /// Connects over TCP.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] on connect or socket-option failure.
    pub fn connect_tcp(addr: std::net::SocketAddr) -> Result<Self, ServiceError> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Self::over(ServiceStream::Tcp(stream))
    }

    /// Connects over a Unix-domain socket.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] on connect or socket-option failure.
    #[cfg(unix)]
    pub fn connect_unix(path: &std::path::Path) -> Result<Self, ServiceError> {
        let stream = std::os::unix::net::UnixStream::connect(path)?;
        Self::over(ServiceStream::Unix(stream))
    }

    /// Connects to whichever listener family `addr` names.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] on connect failure.
    pub fn connect(addr: &ServiceAddr) -> Result<Self, ServiceError> {
        match addr {
            ServiceAddr::Tcp(addr) => Self::connect_tcp(*addr),
            #[cfg(unix)]
            ServiceAddr::Unix(path) => Self::connect_unix(path),
        }
    }

    fn over(mut stream: ServiceStream) -> Result<Self, ServiceError> {
        stream.set_read_deadline(Some(Duration::from_secs(10)))?;
        stream.set_write_deadline(Some(Duration::from_secs(10)))?;
        Ok(ServiceClient {
            stream,
            ca_public: None,
        })
    }

    fn exchange(&mut self, request: &Frame) -> Result<Frame, ServiceError> {
        write_frame(&mut self.stream, request)?;
        self.read_reply()
    }

    fn read_reply(&mut self) -> Result<Frame, ServiceError> {
        match read_frame(&mut self.stream)? {
            Frame::ErrorClose { code } => Err(ServiceError::Refused(code)),
            frame => Ok(frame),
        }
    }

    /// Greets the daemon and learns (and caches) the CA public key.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] on transport failure or a non-hello reply.
    pub fn hello(&mut self, nonce: [u8; 32]) -> Result<AffinePoint, ServiceError> {
        match self.exchange(&Frame::Hello { nonce })? {
            Frame::HelloAck { ca_public } => {
                let point = AffinePoint::from_bytes_compressed(&ca_public)?;
                self.ca_public = Some(point);
                Ok(point)
            }
            other => Err(ServiceError::Unexpected(other.kind())),
        }
    }

    fn ca_public(&self) -> Result<AffinePoint, ServiceError> {
        self.ca_public.ok_or(ServiceError::MissingHello)
    }

    /// Enrolls `subject` with the daemon's CA: generates a request
    /// secret locally, sends the commitment point, reconstructs and
    /// validates the key pair from the issued certificate.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] on refusal, transport failure, or a
    /// reconstruction mismatch (which would indicate a dishonest CA).
    pub fn enroll(
        &mut self,
        subject: DeviceId,
        rng: &mut HmacDrbg,
    ) -> Result<Credentials, ServiceError> {
        let ca_public = self.ca_public()?;
        let requester = CertRequester::generate(subject, rng);
        let point = requester.request().point.to_bytes_compressed()?;
        let request = Frame::EnrollRequest {
            subject: *subject.as_bytes(),
            point,
        };
        match self.exchange(&request)? {
            Frame::EnrollIssued {
                cert,
                recon_private,
            } => {
                let certificate = ImplicitCert::from_bytes(&cert)?;
                let recon_private = Scalar::from_be_bytes(&recon_private)?;
                let issued = IssuedCert {
                    certificate,
                    recon_private,
                };
                let keys = requester.reconstruct(&issued, &ca_public)?;
                Ok(Credentials {
                    id: subject,
                    cert: issued.certificate,
                    keys,
                    ca_public,
                })
            }
            other => Err(ServiceError::Unexpected(other.kind())),
        }
    }

    /// Runs a full STS handshake against the daemon's responder.
    ///
    /// `seed_initiator` seeds the local initiator RNG stream and
    /// `seed_responder` travels in the `HsOpen` frame to seed the
    /// daemon's responder stream — the same two-stream derivation
    /// `ecq_sts::establish` performs, so the wire transcript of
    /// `(credentials, config, seeds)` is reproducible bit-for-bit.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] on transport failure, daemon refusal, or any
    /// handshake [`ecq_proto::ProtocolError`] (bad MAC, bad signature,
    /// revoked certificate).
    pub fn handshake(
        &mut self,
        credentials: &Credentials,
        variant: StsVariant,
        now: u32,
        seed_initiator: &[u8; 32],
        seed_responder: &[u8; 32],
    ) -> Result<SocketHandshake, ServiceError> {
        let config = StsConfig { now, variant };
        let mut rng = HmacDrbg::new(seed_initiator, b"sts-initiator");
        let mut initiator = StsInitiator::new(credentials.clone(), config, &mut rng);
        write_frame(
            &mut self.stream,
            &Frame::HsOpen {
                seed: *seed_responder,
                variant: variant_code(variant),
                now,
            },
        )?;
        let mut messages = Vec::new();
        match initiator.step(None)? {
            StepOutput::Send(message) => {
                write_frame(&mut self.stream, &Frame::HsMessage(message.clone()))?;
                messages.push(message);
            }
            _ => return Err(ServiceError::Protocol(ecq_proto::ProtocolError::Stalled)),
        }
        while !initiator.is_established() {
            let message = match self.read_reply()? {
                Frame::HsMessage(message) => message,
                other => return Err(ServiceError::Unexpected(other.kind())),
            };
            messages.push(message.clone());
            match initiator.step(Some(&message))? {
                StepOutput::Send(reply) => {
                    write_frame(&mut self.stream, &Frame::HsMessage(reply.clone()))?;
                    messages.push(reply);
                }
                StepOutput::Wait | StepOutput::Established => {}
            }
        }
        Ok(SocketHandshake {
            key: initiator.session_key()?,
            messages,
        })
    }

    /// Fetches the CA's revocation list and verifies its signature
    /// against the CA public key before parsing it.
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadCrlSignature`] when the signature fails,
    /// plus the usual transport/decode failures.
    pub fn fetch_crl(&mut self) -> Result<RevocationList, ServiceError> {
        let ca_public = self.ca_public()?;
        match self.exchange(&Frame::CrlRequest)? {
            Frame::CrlResponse { crl, signature } => {
                let signature = Signature::from_bytes(&signature)?;
                if !verify(&ca_public, &crl, &signature) {
                    return Err(ServiceError::BadCrlSignature);
                }
                Ok(RevocationList::from_bytes(&crl)?)
            }
            other => Err(ServiceError::Unexpected(other.kind())),
        }
    }
}
