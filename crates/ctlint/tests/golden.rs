//! Golden-fixture tests for all three passes: every finding class must
//! be detected at the expected file/line anchors, the clean fixtures
//! must stay silent, and each pass's fixture allowlist must suppress
//! (and report staleness) exactly as documented.

use ecq_lint::allowlist;
use ecq_lint::findings::Finding;
use ecq_lint::index::Index;
use ecq_lint::{determinism, panicreach, secretflow};

/// Indexes a single fixture file (in isolation, so call-graph edges
/// never cross fixtures).
fn index_fixture(fixture: &str) -> Index {
    let path = format!("{}/tests/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let mut ix = Index::default();
    ix.add_file(fixture, &src);
    ix
}

fn secret_flow(fixture: &str) -> Vec<Finding> {
    secretflow::analyze(&index_fixture(fixture), &secretflow::SecretFlow::default())
}

fn read_allow(file: &str, classes: &[&str]) -> Vec<allowlist::Entry> {
    let path = format!("{}/tests/fixtures/{file}", env!("CARGO_MANIFEST_DIR"));
    let (entries, errors) = allowlist::parse(&std::fs::read_to_string(path).unwrap(), classes);
    assert!(errors.is_empty(), "{errors:#?}");
    entries
}

fn anchors(findings: &[Finding]) -> Vec<(&str, u32, &str)> {
    findings
        .iter()
        .map(|f| (f.class.as_str(), f.line, f.ident.as_str()))
        .collect()
}

// ------------------------------------------------------- secret-flow

#[test]
fn vartime_call_fixture() {
    let found = secret_flow("vartime_call.rs");
    assert_eq!(
        anchors(&found),
        vec![
            // `derive` calls the vartime family directly...
            ("vartime-call", 11, "mul_vartime"),
            // ...and `helper` is reachable from `derive_indirect`'s
            // secret context (transitive taint).
            ("vartime-call", 21, "mul_vartime"),
        ],
        "{found:#?}"
    );
    assert_eq!(found[0].context, "derive");
    assert_eq!(found[1].context, "helper");
    // `mul_vartime`'s own body is the audited boundary — its call to
    // `table_walk` (line 5) must not be flagged.
    assert!(found.iter().all(|f| f.line != 5), "{found:#?}");
}

#[test]
fn secret_branch_fixture() {
    let found = secret_flow("secret_branch.rs");
    assert_eq!(
        anchors(&found),
        vec![
            ("secret-branch", 5, "key"),    // if key.is_zero()
            ("secret-branch", 9, "key"),    // while key.bit(..)
            ("secret-branch", 12, "key"),   // table[key.low_byte()..]
            ("secret-branch", 18, "nonce"), // match on ct-secret let
        ],
        "{found:#?}"
    );
}

#[test]
fn nonct_eq_fixture() {
    let found = secret_flow("nonct_eq.rs");
    assert_eq!(
        anchors(&found),
        vec![("nonct-eq", 5, "expected")],
        "{found:#?}"
    );
    assert_eq!(found[0].context, "tags_match");
}

#[test]
fn missing_zeroize_fixture() {
    let found = secret_flow("missing_zeroize.rs");
    assert_eq!(
        anchors(&found),
        vec![
            // Marker-typed field, no Drop/Zeroize anywhere.
            ("missing-zeroize", 5, "private"),
            // `// ct-secret` field annotation on a plain type.
            ("missing-zeroize", 11, "premaster"),
        ],
        "{found:#?}"
    );
    assert_eq!(found[0].context, "LeakyHandle");
    assert_eq!(found[1].context, "Draft");
    // `Guarded` (own Drop impl) and `Wrapped` (self-wiping Zeroizing
    // field) must both pass.
    assert!(
        found
            .iter()
            .all(|f| f.context != "Guarded" && f.context != "Wrapped"),
        "{found:#?}"
    );
}

#[test]
fn clean_fixture_is_silent() {
    let found = secret_flow("clean.rs");
    assert!(found.is_empty(), "{found:#?}");
}

#[test]
fn secret_flow_allowlist_suppresses_and_reports_stale() {
    let found = secret_flow("allowlisted.rs");
    assert_eq!(
        anchors(&found),
        vec![("vartime-call", 9, "mul_vartime")],
        "{found:#?}"
    );

    let entries = read_allow("allow.toml", secretflow::CLASSES);
    assert_eq!(entries.len(), 2);

    let applied = allowlist::apply(found, &entries);
    assert!(
        applied.unsuppressed.is_empty(),
        "{:#?}",
        applied.unsuppressed
    );
    assert_eq!(applied.suppressed.len(), 1);
    // The second entry names a function the fixture no longer has:
    // exactly it must surface as stale.
    assert_eq!(applied.stale.len(), 1);
    assert_eq!(applied.stale[0].context, "removed_function");
}

// ------------------------------------------------------- determinism

#[test]
fn determinism_offending_fixture() {
    let found = determinism::analyze(&index_fixture("determinism_offending.rs"));
    assert_eq!(
        anchors(&found),
        vec![
            ("unordered-iter", 5, "HashMap"),
            ("wall-clock", 6, "Instant"),
            ("thread-id", 7, "thread"),
            ("env-read", 8, "env"),
            ("unseeded-rng", 9, "thread_rng"),
            ("addr-order", 14, "as_ptr"),
            ("thread-id", 19, "ThreadId"),
        ],
        "{found:#?}"
    );
    // The helper is reached transitively; the chain is the evidence.
    let addr = found.iter().find(|f| f.class == "addr-order").unwrap();
    assert_eq!(addr.context, "helper");
    assert_eq!(addr.chain, vec!["run_worker", "helper"]);
    // SharedBus methods are roots by type, not by call.
    let tid = found.iter().find(|f| f.line == 19).unwrap();
    assert_eq!(tid.context, "SharedBus::arbitrate");
}

#[test]
fn determinism_clean_fixture_is_silent() {
    let found = determinism::analyze(&index_fixture("determinism_clean.rs"));
    assert!(found.is_empty(), "{found:#?}");
}

#[test]
fn determinism_allowlist_suppresses_and_reports_stale() {
    let found = determinism::analyze(&index_fixture("determinism_allowlisted.rs"));
    assert_eq!(
        anchors(&found),
        vec![
            ("wall-clock", 7, "Instant"),
            ("unordered-iter", 11, "HashMap")
        ],
        "{found:#?}"
    );

    let entries = read_allow("determinism_allow.toml", determinism::CLASSES);
    assert_eq!(entries.len(), 2);

    let applied = allowlist::apply(found, &entries);
    // Only the HashMap finding survives; the wall-clock one is
    // suppressed by the entry whose `context = "poll"` matches the
    // qualified `SharedBus::poll`.
    assert_eq!(applied.unsuppressed.len(), 1);
    assert_eq!(applied.unsuppressed[0].class, "unordered-iter");
    assert_eq!(applied.suppressed.len(), 1);
    assert_eq!(applied.stale.len(), 1);
    assert_eq!(applied.stale[0].context, "removed_function");
}

#[test]
fn determinism_allowlist_rejects_foreign_class() {
    // A panic-reach class inside the determinism allowlist is a
    // structural error, not a silently dead entry.
    let (entries, errors) = allowlist::parse(
        "[[allow]]\nclass = \"panic-unwrap\"\nfile = \"f\"\ncontext = \"c\"\n\
         justification = \"wrong vocabulary\"\n",
        determinism::CLASSES,
    );
    assert!(entries.is_empty());
    assert_eq!(errors.len(), 1, "{errors:#?}");
}

// ------------------------------------------------------- panic-reach

#[test]
fn panic_offending_fixture() {
    let found = panicreach::analyze(&index_fixture("panic_offending.rs"));
    assert_eq!(
        anchors(&found),
        vec![
            ("panic-unwrap", 4, "unwrap"),
            ("panic-unwrap", 5, "expect"),
            ("panic-macro", 7, "panic"),
            ("panic-index", 9, "items"),
            ("panic-div", 10, "n"),
            ("panic-macro", 15, "unreachable"),
        ],
        "{found:#?}"
    );
    // The transitive helper carries its reach chain as evidence.
    let helper = found.iter().find(|f| f.line == 15).unwrap();
    assert_eq!(helper.context, "helper");
    assert_eq!(helper.chain, vec!["run_sweep", "helper"]);
}

#[test]
fn panic_clean_fixture_is_silent() {
    let found = panicreach::analyze(&index_fixture("panic_clean.rs"));
    assert!(found.is_empty(), "{found:#?}");
}

#[test]
fn panic_allowlist_suppresses_and_reports_stale() {
    let found = panicreach::analyze(&index_fixture("panic_allowlisted.rs"));
    assert_eq!(
        anchors(&found),
        vec![("panic-index", 6, "xs"), ("panic-unwrap", 7, "unwrap")],
        "{found:#?}"
    );

    let entries = read_allow("panic_allow.toml", panicreach::CLASSES);
    assert_eq!(entries.len(), 2);

    let applied = allowlist::apply(found, &entries);
    assert_eq!(applied.unsuppressed.len(), 1);
    assert_eq!(applied.unsuppressed[0].class, "panic-unwrap");
    assert_eq!(applied.suppressed.len(), 1);
    assert_eq!(applied.stale.len(), 1);
    assert_eq!(applied.stale[0].context, "removed_function");
}
