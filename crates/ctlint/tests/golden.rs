//! Golden-fixture tests: each finding class must be detected at the
//! expected file/line anchors, the clean fixture must stay silent, and
//! the allowlist must suppress (and report staleness) exactly as
//! documented.

use ecq_lint::allowlist;
use ecq_lint::index::Index;
use ecq_lint::taint::{analyze, Class, Config, Finding};

/// Indexes a single fixture file (in isolation, so call-graph edges
/// never cross fixtures) and runs the analyzer over it.
fn findings_for(fixture: &str) -> Vec<Finding> {
    let path = format!("{}/tests/fixtures/{fixture}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let mut ix = Index::default();
    ix.add_file(fixture, &src);
    analyze(&ix, &Config::default())
}

fn anchors(findings: &[Finding]) -> Vec<(Class, u32, &str)> {
    findings
        .iter()
        .map(|f| (f.class, f.line, f.ident.as_str()))
        .collect()
}

#[test]
fn vartime_call_fixture() {
    let found = findings_for("vartime_call.rs");
    assert_eq!(
        anchors(&found),
        vec![
            // `derive` calls the vartime family directly...
            (Class::VartimeCall, 11, "mul_vartime"),
            // ...and `helper` is reachable from `derive_indirect`'s
            // secret context (transitive taint).
            (Class::VartimeCall, 21, "mul_vartime"),
        ],
        "{found:#?}"
    );
    assert_eq!(found[0].context, "derive");
    assert_eq!(found[1].context, "helper");
    // `mul_vartime`'s own body is the audited boundary — its call to
    // `table_walk` (line 5) must not be flagged.
    assert!(found.iter().all(|f| f.line != 5), "{found:#?}");
}

#[test]
fn secret_branch_fixture() {
    let found = findings_for("secret_branch.rs");
    assert_eq!(
        anchors(&found),
        vec![
            (Class::SecretBranch, 5, "key"),    // if key.is_zero()
            (Class::SecretBranch, 9, "key"),    // while key.bit(..)
            (Class::SecretBranch, 12, "key"),   // table[key.low_byte()..]
            (Class::SecretBranch, 18, "nonce"), // match on ct-secret let
        ],
        "{found:#?}"
    );
}

#[test]
fn nonct_eq_fixture() {
    let found = findings_for("nonct_eq.rs");
    assert_eq!(
        anchors(&found),
        vec![(Class::NonCtEq, 5, "expected")],
        "{found:#?}"
    );
    assert_eq!(found[0].context, "tags_match");
}

#[test]
fn missing_zeroize_fixture() {
    let found = findings_for("missing_zeroize.rs");
    assert_eq!(
        anchors(&found),
        vec![
            // Marker-typed field, no Drop/Zeroize anywhere.
            (Class::MissingZeroize, 5, "private"),
            // `// ct-secret` field annotation on a plain type.
            (Class::MissingZeroize, 11, "premaster"),
        ],
        "{found:#?}"
    );
    assert_eq!(found[0].context, "LeakyHandle");
    assert_eq!(found[1].context, "Draft");
    // `Guarded` (own Drop impl) and `Wrapped` (self-wiping Zeroizing
    // field) must both pass.
    assert!(
        found
            .iter()
            .all(|f| f.context != "Guarded" && f.context != "Wrapped"),
        "{found:#?}"
    );
}

#[test]
fn clean_fixture_is_silent() {
    let found = findings_for("clean.rs");
    assert!(found.is_empty(), "{found:#?}");
}

#[test]
fn allowlist_suppresses_and_reports_stale() {
    let found = findings_for("allowlisted.rs");
    assert_eq!(
        anchors(&found),
        vec![(Class::VartimeCall, 9, "mul_vartime")],
        "{found:#?}"
    );

    let allow_path = format!("{}/tests/fixtures/allow.toml", env!("CARGO_MANIFEST_DIR"));
    let (entries, errors) = allowlist::parse(&std::fs::read_to_string(allow_path).unwrap());
    assert!(errors.is_empty(), "{errors:#?}");
    assert_eq!(entries.len(), 2);

    let applied = allowlist::apply(found, &entries);
    assert!(
        applied.unsuppressed.is_empty(),
        "{:#?}",
        applied.unsuppressed
    );
    assert_eq!(applied.suppressed.len(), 1);
    // The second entry names a function the fixture no longer has:
    // exactly it must surface as stale.
    assert_eq!(applied.stale.len(), 1);
    assert_eq!(applied.stale[0].context, "removed_function");
}
