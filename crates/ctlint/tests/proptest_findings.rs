//! Property tests for the finding wire format: `findings_to_json` ∘
//! `findings_from_json` is the identity, and the serialized artifact
//! is byte-stable across production order — both a permutation of the
//! same finding list and a different file-discovery order into the
//! index must yield identical JSON. CI diffs the uploaded artifact
//! between runs, so any order-dependence would show up as noise.

use ecq_lint::findings::{findings_from_json, findings_to_json, Finding};
use ecq_lint::index::Index;
use ecq_lint::{determinism, panicreach};
use proptest::prelude::*;

/// Deterministic in-place permutation driven by a test-supplied seed
/// (Fisher–Yates over an xorshift stream; the vendored proptest
/// stand-in has no `prop_shuffle`).
fn permute<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed ^= seed << 13;
        seed ^= seed >> 7;
        seed ^= seed << 17;
        items.swap(i, (seed as usize) % (i + 1));
    }
}

/// One arbitrary finding. Text fields go through lossy UTF-8 so the
/// escaper sees quotes, backslashes and control bytes.
fn finding(spec: (Vec<u8>, Vec<u8>, u32, u8, u8)) -> Finding {
    let (msg, ident, line, which, chain_len) = spec;
    let shape = [
        ("secret-flow", "vartime-call"),
        ("determinism", "unordered-iter"),
        ("panic-reach", "panic-unwrap"),
    ][which as usize % 3];
    Finding {
        file: format!("crates/x/src/{which}.rs"),
        line,
        pass: shape.0.into(),
        class: shape.1.into(),
        context: format!("f{}", which % 7),
        ident: String::from_utf8_lossy(&ident).into_owned(),
        message: String::from_utf8_lossy(&msg).into_owned(),
        chain: (0..chain_len % 4).map(|c| format!("hop{c}")).collect(),
    }
}

fn findings_strategy() -> impl Strategy<Value = Vec<Finding>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(any::<u8>(), 0..48),
            proptest::collection::vec(any::<u8>(), 0..16),
            any::<u32>(),
            any::<u8>(),
            any::<u8>(),
        ),
        0..24,
    )
    .prop_map(|specs| specs.into_iter().map(finding).collect())
}

/// Synthetic sources with distinct function names: `a.rs` roots the
/// cone, the helpers in the other files are reached transitively and
/// carry one determinism and one panic-reach finding each.
const SOURCES: &[(&str, &str)] = &[
    (
        "a.rs",
        "fn run_sweep(xs: Vec<u32>, n: usize) -> u32 {\n    helper_b(xs, n) + helper_c(n)\n}\n",
    ),
    (
        "b.rs",
        "fn helper_b(xs: Vec<u32>, n: usize) -> u32 {\n    let m: HashMap<u32, u32> = HashMap::new();\n    xs[n] + m.len() as u32\n}\n",
    ),
    (
        "c.rs",
        "fn helper_c(n: usize) -> u32 {\n    let t = Instant::now();\n    100 / n as u32\n}\n",
    ),
];

fn analyze_in_order(order: &[usize]) -> String {
    let mut ix = Index::default();
    for &i in order {
        let (name, src) = SOURCES[i];
        ix.add_file(name, src);
    }
    let mut found = determinism::analyze(&ix);
    found.extend(panicreach::analyze(&ix));
    findings_to_json(&found)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn json_round_trips(findings in findings_strategy()) {
        let json = findings_to_json(&findings);
        let back = findings_from_json(&json).map_err(
            proptest::test_runner::TestCaseError::fail,
        )?;
        let mut expected = findings;
        expected.sort();
        prop_assert_eq!(back, expected);
    }

    #[test]
    fn json_is_stable_across_production_order(
        findings in findings_strategy(),
        seed in any::<u64>(),
    ) {
        let canonical = findings_to_json(&findings);
        let mut shuffled = findings;
        permute(&mut shuffled, seed);
        prop_assert_eq!(findings_to_json(&shuffled), canonical);
    }

    #[test]
    fn analysis_is_stable_across_file_discovery_order(seed in any::<u64>()) {
        let mut order = vec![0, 1, 2];
        permute(&mut order, seed);
        let json = analyze_in_order(&order);
        prop_assert_eq!(json, analyze_in_order(&[0, 1, 2]));
    }
}

/// The discovery-order fixture actually finds things (otherwise the
/// stability property above would pass vacuously on empty output).
#[test]
fn discovery_order_fixture_is_not_vacuous() {
    let json = analyze_in_order(&[0, 1, 2]);
    for class in ["unordered-iter", "wall-clock", "panic-index", "panic-div"] {
        assert!(json.contains(class), "missing {class} in {json}");
    }
}
