//! Property test: the lexer is a total function — arbitrary bytes
//! (lossily decoded) and arbitrary strings must never panic it, and
//! re-lexing its own token text must be stable.

use ecq_lint::lexer::lex;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_never_panics_on_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let src = String::from_utf8_lossy(&bytes);
        let toks = lex(&src);
        // Line numbers are 1-based and monotone.
        let mut last = 1u32;
        for t in &toks {
            prop_assert!(t.line >= last);
            last = t.line;
        }
    }

    #[test]
    fn lexer_never_panics_on_utf16_soup(units in proptest::collection::vec(any::<u16>(), 0..256)) {
        // UTF-16 lossy decoding reaches code points (including
        // surrogate repair) that byte-lossy decoding cannot.
        let src = String::from_utf16_lossy(&units);
        let _ = lex(&src);
    }

    #[test]
    fn lexing_is_stable(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let once = lex(&src);
        let twice = lex(&src);
        prop_assert_eq!(once, twice);
    }
}
