//! The CI gate as a test: the real workspace, scanned by all three
//! passes with their committed allowlists, must come back clean —
//! zero unsuppressed findings, zero stale entries, zero allowlist
//! errors per pass. This is the same check
//! `cargo run -p ecq_lint -- --pass all` and `scripts/verify.sh
//! ctlint` perform.

use std::path::Path;

#[test]
fn workspace_is_clean_under_committed_allowlists() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let passes = ecq_lint::select_passes("all").expect("`all` selects the registry");
    for p in &passes {
        let allowlist = root.join(p.default_allowlist());
        assert!(
            allowlist.exists(),
            "missing committed allowlist {}",
            allowlist.display()
        );
    }

    let report = ecq_lint::run(&root, &passes, None).expect("workspace scan");

    assert_eq!(report.passes.len(), 3, "all three passes must run");
    assert!(
        report.files > 50,
        "suspiciously few files scanned: {}",
        report.files
    );
    for pass in &report.passes {
        assert!(
            pass.is_clean(),
            "{} not clean under {}:\nunsuppressed: {:#?}\nstale: {:#?}\nerrors: {:#?}",
            pass.pass,
            pass.allowlist_path.display(),
            pass.unsuppressed,
            pass.stale,
            pass.allowlist_errors
        );
    }
    assert!(report.is_clean());

    // The committed lists document audited sites that exist today; the
    // secret-flow and panic-reach lists must stay live (staleness is
    // already a failure above, so a suppressed count of zero would
    // mean the list went dead wholesale). The determinism list is
    // deliberately empty: the hot path carries no justified
    // nondeterminism, and this pins that.
    let suppressed: std::collections::BTreeMap<&str, usize> = report
        .passes
        .iter()
        .map(|p| (p.pass.as_str(), p.suppressed.len()))
        .collect();
    assert!(
        suppressed.get("secret-flow").copied().unwrap_or(0) > 0,
        "secret-flow allowlist suppressed nothing"
    );
    assert!(
        suppressed.get("panic-reach").copied().unwrap_or(0) > 0,
        "panic-reach allowlist suppressed nothing"
    );
    assert_eq!(
        suppressed.get("determinism").copied().unwrap_or(0),
        0,
        "the determinism allowlist is deliberately empty; a new entry \
         means the hot path grew a justified nondeterminism — update \
         this pin alongside the justification"
    );

    // The JSON artifact CI uploads parses back, and a clean run's
    // per-pass finding arrays are empty.
    let json = report.to_json();
    assert!(json.contains("\"clean\":true"), "{json}");
    assert!(
        json.contains("\"unsuppressed\":[]"),
        "clean run must serialize empty finding arrays: {json}"
    );
}
