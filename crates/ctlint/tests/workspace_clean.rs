//! The CI gate as a test: the real workspace, scanned with the
//! committed allowlist, must come back clean — zero unsuppressed
//! findings, zero stale entries, zero allowlist errors. This is the
//! same check `cargo run -p ecq_lint` and `scripts/verify.sh ctlint`
//! perform.

use std::path::Path;

#[test]
fn workspace_is_clean_under_committed_allowlist() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let allowlist = root.join("ci/ctlint_allow.toml");
    assert!(allowlist.exists(), "missing {}", allowlist.display());

    let report = ecq_lint::run(&root, &ecq_lint::taint::Config::default(), Some(&allowlist))
        .expect("workspace scan");

    assert!(
        report.files > 50,
        "suspiciously few files scanned: {}",
        report.files
    );
    assert!(
        report.is_clean(),
        "workspace lint not clean:\nunsuppressed: {:#?}\nstale: {:#?}\nerrors: {:#?}",
        report.unsuppressed,
        report.stale,
        report.allowlist_errors
    );
    // The allowlist documents audited sites that exist today; if this
    // count drifts, entries were added or sites were fixed — both are
    // fine, but the committed file must stay live (no stale entries,
    // checked above).
    assert!(
        !report.suppressed.is_empty(),
        "allowlist suppressed nothing"
    );
}
