//! Dynamic companion to the static lint: drives real secret-bearing
//! paths — full STS handshakes from `ecq_sts` down through the curve,
//! plus ECDH and scalar inversion in isolation — under the
//! `schedule-counters` feature's runtime op counters, and asserts the
//! constant-time schedules are value-independent end-to-end across
//! crate boundaries (the static analyzer proves no vartime call is
//! *reachable*; this proves the ct paths actually taken perform an
//! input-independent operation sequence).

use ecq_cert::ca::CertificateAuthority;
use ecq_cert::DeviceId;
use ecq_crypto::HmacDrbg;
use ecq_p256::field::fe_ops;
use ecq_p256::point::{mul_generator_ct, ops};
use ecq_p256::scalar::scalar_ops;
use ecq_p256::Scalar;
use ecq_proto::Credentials;
use ecq_sts::{establish, StsConfig};

fn setup(seed: u64) -> (Credentials, Credentials, HmacDrbg) {
    let mut rng = HmacDrbg::from_seed(seed);
    let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
    let a = Credentials::provision(&ca, DeviceId::from_label("A"), 0, 3600, &mut rng)
        .expect("provision A");
    let b = Credentials::provision(&ca, DeviceId::from_label("B"), 0, 3600, &mut rng)
        .expect("provision B");
    (a, b, rng)
}

/// The whole handshake, counted at the group-operation level: however
/// the secrets vary, the constant-schedule add/double counts must not.
#[test]
fn handshake_ct_schedule_is_seed_independent() {
    let mut schedules = Vec::new();
    for seed in [0x1001u64, 0x2002, 0x3003, 0x4004] {
        let (a, b, mut rng) = setup(seed);
        let config = StsConfig::default();
        let (outcome, counts) = ops::measure(|| establish(&a, &b, &config, &mut rng));
        let outcome = outcome.expect("handshake");
        assert_eq!(outcome.initiator_key, outcome.responder_key);
        schedules.push((counts.ct_adds, counts.ct_doubles));
    }
    let first = schedules[0];
    assert!(
        first.0 > 0 && first.1 > 0,
        "handshake never touched the ct paths: {schedules:?}"
    );
    assert!(
        schedules.iter().all(|s| *s == first),
        "ct schedule varies with the handshake secrets: {schedules:?}"
    );
}

/// ECDH at field-multiplication granularity: the scalar ladder and the
/// final affine conversion must cost the same muls/squares for every
/// private key.
#[test]
fn ecdh_field_schedule_is_key_independent() {
    let mut rng = HmacDrbg::from_seed(0xECD4);
    let mut schedules = Vec::new();
    for _ in 0..4 {
        let private = Scalar::random(&mut rng);
        let peer = mul_generator_ct(&Scalar::random(&mut rng));
        let (shared, counts) = fe_ops::measure(|| ecq_p256::ecdh::shared_secret(&private, &peer));
        shared.expect("ecdh");
        schedules.push((counts.muls, counts.squares));
    }
    let first = schedules[0];
    assert!(
        first.0 > 0 && first.1 > 0,
        "no field ops counted: {schedules:?}"
    );
    assert!(
        schedules.iter().all(|s| *s == first),
        "ECDH field schedule varies with the private key: {schedules:?}"
    );
}

/// Scalar inversion (the s-computation path in ECDSA signing) uses a
/// fixed addition chain: identical scalar-mul/square counts for every
/// input.
#[test]
fn scalar_inversion_schedule_is_value_independent() {
    let mut rng = HmacDrbg::from_seed(0x15C4);
    let mut schedules = Vec::new();
    for _ in 0..4 {
        let k = Scalar::random(&mut rng);
        let (inv, counts) = scalar_ops::measure(|| k.invert());
        assert!(!inv.is_zero());
        schedules.push((counts.muls, counts.squares));
    }
    let first = schedules[0];
    assert!(
        first.0 > 0 && first.1 > 0,
        "no scalar ops counted: {schedules:?}"
    );
    assert!(
        schedules.iter().all(|s| *s == first),
        "scalar inversion schedule varies with the input: {schedules:?}"
    );
}
