//! Determinism fixture: one of every finding class, seeded from the
//! report-affecting roots (`run_worker` by name, a `SharedBus` method
//! by type) with one transitively reached helper.
fn run_worker() {
    let m: HashMap<u32, u32> = HashMap::new();
    let t = Instant::now();
    let id = thread::current().id();
    let v = env::var("ECQ_THREADS");
    let r = thread_rng();
    helper(b"x");
}

fn helper(buf: &[u8]) {
    let key = buf.as_ptr() as usize;
}

impl SharedBus {
    fn arbitrate(&self) {
        let tid = ThreadId::default();
    }
}
