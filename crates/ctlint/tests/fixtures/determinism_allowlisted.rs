//! Allowlist fixture for the determinism pass: `poll`'s wall-clock
//! read is covered by `determinism_allow.toml`; `drain`'s `HashMap`
//! is not and must stay unsuppressed. The allowlist also carries a
//! deliberately stale entry (`removed_function`).
impl SharedBus {
    fn poll(&self) {
        let t = Instant::now();
    }

    fn drain(&self) {
        let m: HashMap<u8, u8> = HashMap::new();
    }
}
