//! Fixture: a finding that `fixtures/allow.toml` suppresses.
//! Never compiled — fed to the analyzer by `tests/golden.rs`.

pub fn mul_vartime(s: &Scalar) -> Point {
    table_walk(s)
}

pub fn verify(sig: &Scalar, message: &[u8]) -> bool {
    let point = mul_vartime(sig);
    point.matches(message)
}
