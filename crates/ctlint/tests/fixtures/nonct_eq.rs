//! Fixture: non-constant-time equality on secret data.
//! Never compiled — fed to the analyzer by `tests/golden.rs`.

pub fn tags_match(expected: &SessionKey, received: &[u8]) -> bool {
    expected.as_bytes() == received
}
