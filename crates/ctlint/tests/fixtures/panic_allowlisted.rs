//! Allowlist fixture for the panic-reach pass: `step`'s indexing is
//! covered by `panic_allow.toml`; its `unwrap` is not and must stay
//! unsuppressed. The allowlist also carries a deliberately stale
//! entry (`removed_function`).
fn step(xs: Vec<u8>, i: usize) -> u8 {
    let a = xs[i];
    let b = xs.first().unwrap();
    a + b
}
