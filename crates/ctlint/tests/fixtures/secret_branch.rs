//! Fixture: secret-dependent control flow and indexing.
//! Never compiled — fed to the analyzer by `tests/golden.rs`.

pub fn process(key: &Scalar, table: &[u8]) -> u8 {
    if key.is_zero() {
        return 0;
    }
    let mut acc = 0u8;
    while key.bit(acc as usize) {
        acc += 1;
    }
    table[key.low_byte() as usize]
}

// A `// ct-secret` let annotation taints a local binding.
pub fn annotated(input: u64) -> u64 {
    let nonce = expand(input); // ct-secret
    match nonce {
        0 => 1,
        _ => 0,
    }
}
