//! Clean determinism fixture: the same roots, but ordered containers,
//! seeded randomness and the virtual clock — plus a `HashMap` in a
//! function *outside* the report-affecting cone, which must stay
//! silent (the pass is reachability-scoped, not a grep).
fn run_worker(seed: u64) {
    let m: BTreeMap<u32, u32> = BTreeMap::new();
    let mut rng = HmacDrbg::from_seed(seed);
    let now = virtual_now();
    helper(now);
}

fn virtual_now() -> u64 {
    0
}

fn helper(now: u64) {
    let _ = now;
}

fn unrelated_tooling() {
    let cache: HashMap<u32, u32> = HashMap::new();
}
