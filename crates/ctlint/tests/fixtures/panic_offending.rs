//! Panic-reach fixture: one of every finding class inside the
//! `run_sweep` root, plus a transitively reached panicking helper.
fn run_sweep(items: Vec<u32>, n: usize) -> u32 {
    let head = items.first().unwrap();
    let tail = items.last().expect("nonempty");
    if n > 9000 {
        panic!("too many sessions");
    }
    let picked = items[n];
    let ratio = *head / n as u32;
    helper(picked + ratio + *tail)
}

fn helper(x: u32) -> u32 {
    unreachable!("reached via run_sweep")
}
