//! Fixture: secret-holding structs without zeroize-on-drop.
//! Never compiled — fed to the analyzer by `tests/golden.rs`.

// Flagged: holds a marker-typed field, no Drop/Zeroize impl anywhere.
pub struct LeakyHandle {
    pub label: String,
    pub private: Scalar,
}

// Flagged: a `// ct-secret` field annotation taints a plain type.
pub struct Draft {
    // ct-secret
    pub premaster: [u8; 32],
}

// Not flagged: the struct wipes itself.
pub struct Guarded {
    pub private: Scalar,
}

impl Drop for Guarded {
    fn drop(&mut self) {
        self.private = Scalar::zero();
    }
}

// Not flagged: every tainted field's own type wipes itself on drop.
pub struct Wrapped {
    pub premaster: Zeroizing<[u8; 32]>,
}
