//! Clean panic-reach fixture: the same shape as the offending one,
//! but every operation fails closed — `get`, `unwrap_or`, clamped
//! divisors, literal divisions — and the panicking helper sits
//! *outside* the hot-path cone.
fn run_sweep(items: Vec<u32>, n: usize) -> u32 {
    let head = items.first().copied().unwrap_or(0);
    let picked = items.get(n).copied().unwrap_or_default();
    let divisor = n.max(1);
    let quarter = 100 / 4;
    head + picked + quarter
}

fn unreached_tooling() {
    panic!("never on the hot path");
}
