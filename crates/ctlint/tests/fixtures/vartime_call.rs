//! Fixture: a variable-time call reachable from a secret context.
//! Never compiled — fed to the analyzer by `tests/golden.rs`.

pub fn mul_vartime(s: &Scalar) -> Point {
    table_walk(s)
}

// Direct: a marker-typed parameter makes `derive` a secret context,
// and it calls into the vartime family.
pub fn derive(secret: &Scalar) -> Point {
    mul_vartime(secret)
}

// Transitive: `helper` has no tainted bindings of its own, but it is
// reachable from `derive_indirect`'s secret context.
pub fn derive_indirect(secret: &Scalar) -> Point {
    helper()
}

fn helper() -> Point {
    mul_vartime(&Scalar::one())
}
