//! Fixture: constant-time idiom that must produce zero findings.
//! Never compiled — fed to the analyzer by `tests/golden.rs`.

// Secret context, but every operation is schedule-silent: ct scalar
// mul, ct conditional select, ct equality.
pub fn derive(secret: &Scalar, peer: &Point) -> [u8; 32] {
    let shared = peer.mul_ct(secret);
    let bytes = shared.x_bytes();
    let mask = ct_select(&bytes, &ZERO, shared.infinity_flag());
    mask
}

pub fn tags_match(expected: &SessionKey, received: &[u8; 16]) -> bool {
    ecq_crypto::ct::eq(expected.as_bytes(), received)
}

// Public-input code may branch and index freely: nothing here is
// tainted, so the analyzer stays quiet.
pub fn route(table: &[u8], packet_len: usize) -> u8 {
    if packet_len > table.len() {
        return 0;
    }
    table[packet_len]
}
