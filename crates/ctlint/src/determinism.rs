//! The determinism-flow pass.
//!
//! The reproduction's core guarantee is that a `(config, seed)` fleet
//! report is bit-identical for any thread count — including under
//! seeded fault schedules. This pass proves the *static* half of that
//! contract: no function reachable from a report-affecting root may
//! consult a source of nondeterminism.
//!
//! **Roots.** Taint seeds from the report-affecting entry points — the
//! sweep drivers (`interleaved_sweep`, `run_sweep`, `run_worker`,
//! `handshake_sweep`, `run_epochs`, `run_lifecycle`, `enroll_all`),
//! report/scenario finalization (`finalize`), and every method of the
//! shared-bus / fault / report types (`SharedBus`, `FaultSpec`,
//! `FaultPlan`, `FleetReport`, `FleetCoordinator`, `Scenario`). The
//! cone is the transitive closure over the shared name-resolved call
//! graph.
//!
//! **Finding classes** (each anchored at the offending token, with the
//! root-first reach chain as evidence):
//! * `unordered-iter` — `HashMap`/`HashSet` (or a raw `RandomState`/
//!   `DefaultHasher`): iteration order is seeded per-process, so any
//!   use inside the cone can reorder report aggregation. Use
//!   `BTreeMap`/`BTreeSet` or index-keyed `Vec`s.
//! * `wall-clock` — `Instant`/`SystemTime`/`UNIX_EPOCH`: host time in
//!   a virtual-time simulation.
//! * `thread-id` — `thread::current()` / `ThreadId`: report content
//!   must not depend on which worker ran a session.
//! * `env-read` — `env::var*`: configuration must flow through
//!   `(config, seed)`, not ambient process state.
//! * `unseeded-rng` — `thread_rng`/`OsRng`/`getrandom`/`from_entropy`:
//!   all randomness must derive from the sweep seed.
//! * `addr-order` — `as_ptr()`/`as_mut_ptr()` cast to `usize`, or
//!   `addr_of!`: allocation addresses vary run to run, so
//!   address-keyed ordering is nondeterministic.
//!
//! Tooling files (the analyzer itself, benches, conformance tooling,
//! examples — see [`crate::pass::TOOLING_PREFIXES`]) are exempt from
//! *emission*: a bench measuring wall-clock time is doing its job.
//! Reachability still flows through them.

use crate::callgraph::CallGraph;
use crate::findings::Finding;
use crate::index::Index;
use crate::lexer::{Tok, TokKind};
use crate::pass::{hot_path_file, Pass};

/// The pass name, as spelled on the CLI.
pub const NAME: &str = "determinism";

/// The class vocabulary.
pub const CLASSES: &[&str] = &[
    "unordered-iter",
    "wall-clock",
    "thread-id",
    "env-read",
    "unseeded-rng",
    "addr-order",
];

/// Report-affecting root functions (simple names).
pub const ROOT_FNS: &[&str] = &[
    "interleaved_sweep",
    "run_sweep",
    "run_worker",
    "handshake_sweep",
    "run_epochs",
    "run_lifecycle",
    "enroll_all",
    "finalize",
];

/// Report-affecting root types: every method of these seeds the cone.
pub const ROOT_TYPES: &[&str] = &[
    "SharedBus",
    "FaultSpec",
    "FaultPlan",
    "FleetReport",
    "FleetCoordinator",
    "Scenario",
];

/// The determinism-flow pass.
pub struct Determinism;

impl Pass for Determinism {
    fn name(&self) -> &'static str {
        NAME
    }

    fn classes(&self) -> &'static [&'static str] {
        CLASSES
    }

    fn default_allowlist(&self) -> &'static str {
        "ci/determinism_allow.toml"
    }

    fn analyze(&self, ix: &Index) -> Vec<Finding> {
        analyze(ix)
    }
}

/// Runs the determinism-flow analysis.
pub fn analyze(ix: &Index) -> Vec<Finding> {
    let cg = CallGraph::build(ix);
    let reach = cg.reach(
        ix,
        |f| {
            ROOT_FNS.contains(&f.name.as_str())
                || f.self_type
                    .as_deref()
                    .is_some_and(|t| ROOT_TYPES.contains(&t))
        },
        |_| true,
    );

    let mut findings = Vec::new();
    for (i, f) in ix.fns.iter().enumerate() {
        if !reach.reachable[i] || !hot_path_file(&ix.files[f.file]) {
            continue;
        }
        let chain = reach.chain(ix, i);
        let sig: Vec<&Tok> = f.body.iter().filter(|t| !t.is_comment()).collect();
        for (j, t) in sig.iter().enumerate() {
            if t.kind != TokKind::Ident {
                continue;
            }
            let hit: Option<(&str, String)> = match t.text.as_str() {
                "HashMap" | "HashSet" | "RandomState" | "DefaultHasher" => Some((
                    "unordered-iter",
                    format!(
                        "`{}` uses `{}` in the report-affecting cone (iteration order is \
                         per-process; use BTreeMap/BTreeSet or index-keyed Vecs)",
                        f.qual, t.text
                    ),
                )),
                "Instant" | "SystemTime" | "UNIX_EPOCH" => Some((
                    "wall-clock",
                    format!(
                        "`{}` reads host time (`{}`) in the report-affecting cone (use the \
                         virtual clock)",
                        f.qual, t.text
                    ),
                )),
                "ThreadId" => Some((
                    "thread-id",
                    format!(
                        "`{}` depends on `ThreadId` in the report-affecting cone",
                        f.qual
                    ),
                )),
                "thread"
                    if sig.get(j + 1).is_some_and(|n| n.is_punct("::"))
                        && sig.get(j + 2).is_some_and(|n| n.is_ident("current")) =>
                {
                    Some((
                        "thread-id",
                        format!(
                            "`{}` calls `thread::current()` in the report-affecting cone",
                            f.qual
                        ),
                    ))
                }
                "env"
                    if sig.get(j + 1).is_some_and(|n| n.is_punct("::"))
                        && sig.get(j + 2).is_some_and(|n| {
                            n.kind == TokKind::Ident && n.text.starts_with("var")
                        }) =>
                {
                    Some((
                        "env-read",
                        format!(
                            "`{}` reads the process environment in the report-affecting cone \
                             (configuration must flow through (config, seed))",
                            f.qual
                        ),
                    ))
                }
                "thread_rng" | "OsRng" | "getrandom" | "from_entropy" => Some((
                    "unseeded-rng",
                    format!(
                        "`{}` draws unseeded randomness (`{}`) in the report-affecting cone \
                         (derive from the sweep seed)",
                        f.qual, t.text
                    ),
                )),
                "addr_of" | "addr_of_mut" => Some((
                    "addr-order",
                    format!(
                        "`{}` takes raw addresses (`{}`) in the report-affecting cone",
                        f.qual, t.text
                    ),
                )),
                "as_ptr" | "as_mut_ptr"
                    if sig[j + 1..].iter().take(6).any(|n| n.is_ident("usize")) =>
                {
                    Some((
                        "addr-order",
                        format!(
                            "`{}` orders by allocation address (`{} as usize`) in the \
                             report-affecting cone",
                            f.qual, t.text
                        ),
                    ))
                }
                _ => None,
            };
            if let Some((class, message)) = hit {
                findings.push(Finding {
                    file: ix.files[f.file].clone(),
                    line: t.line,
                    pass: NAME.to_string(),
                    class: class.to_string(),
                    context: f.qual.clone(),
                    ident: t.text.clone(),
                    message,
                    chain: chain.clone(),
                });
            }
        }
    }
    findings.sort();
    findings.dedup();
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let mut ix = Index::default();
        ix.add_file("t.rs", src);
        analyze(&ix)
    }

    #[test]
    fn flags_hashmap_in_cone_with_chain() {
        let f = run("fn run_worker() { drain(); }\n\
             fn drain() { let m: HashMap<u32, u32> = HashMap::new(); }\n");
        // Type annotation + constructor collapse to one finding (same
        // line, same ident).
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].class, "unordered-iter");
        assert_eq!(f[0].chain, vec!["run_worker", "drain"]);
    }

    #[test]
    fn ignores_hashmap_outside_cone() {
        let f = run("fn unrelated() { let m = HashMap::new(); }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn flags_wall_clock_and_thread_id() {
        let f = run("impl SharedBus { fn poll(&self) { let t = Instant::now(); \
             let id = thread::current().id(); } }\n");
        assert_eq!(f.len(), 2);
        assert!(f.iter().any(|x| x.class == "wall-clock"));
        assert!(f.iter().any(|x| x.class == "thread-id"));
    }

    #[test]
    fn flags_env_and_rng() {
        let f = run("fn finalize() { let v = env::var(\"X\"); let r = thread_rng(); }\n");
        assert!(f.iter().any(|x| x.class == "env-read"));
        assert!(f.iter().any(|x| x.class == "unseeded-rng"));
    }

    #[test]
    fn addr_order_needs_usize_cast() {
        // A bare as_ptr (e.g. a volatile zeroize write) is fine…
        let clean = run("fn run_sweep(b: &[u8]) { let p = b.as_ptr(); }\n");
        assert!(clean.is_empty());
        // …the usize cast for ordering is not.
        let bad = run("fn run_sweep(b: &[u8]) { let k = b.as_ptr() as usize; }\n");
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].class, "addr-order");
    }

    #[test]
    fn tooling_files_are_exempt() {
        let mut ix = Index::default();
        ix.add_file(
            "crates/bench/src/bin/fleet.rs",
            "fn run_sweep() { let t = Instant::now(); }\n",
        );
        assert!(analyze(&ix).is_empty());
    }
}
