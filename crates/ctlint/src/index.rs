//! Item indexing: a brace-matching scan over the token stream that
//! extracts the declarations the taint analysis needs — functions
//! (with parameter/return types and body token ranges), structs (with
//! field types), `impl` blocks (for `Self` types and `Drop`/`Zeroize`
//! coverage) — plus the two source annotations the lint understands:
//!
//! * `// ct-secret` on a `fn`, `struct`, field or `let` marks it as
//!   carrying secret material even though its type is not a marker.
//! * `// ct-vartime` on a `fn` declares it part of the variable-time
//!   family (same contract as a `*_vartime` name suffix): calling it
//!   from a secret context is a finding, while its own body is the
//!   audited vartime boundary.
//!
//! `#[cfg(test)]` modules are skipped entirely: test code compares
//! secrets with `assert_eq!` as a matter of course and is not a timing
//! surface.

use crate::lexer::{Tok, TokKind};

/// A function parameter: bound names (all identifiers in the pattern)
/// and the type's token text.
#[derive(Clone, Debug)]
pub struct Param {
    /// Identifiers bound by the parameter pattern.
    pub names: Vec<String>,
    /// The parameter type, as space-joined token text.
    pub ty: String,
}

/// An indexed function.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Simple name.
    pub name: String,
    /// `Type::name` for methods, `name` for free functions.
    pub qual: String,
    /// Index into [`Index::files`].
    pub file: usize,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// The `impl` block's `Self` type, when this is a method.
    pub self_type: Option<String>,
    /// Parameters (excluding any `self` receiver).
    pub params: Vec<Param>,
    /// Whether the function takes a `self` receiver.
    pub has_self: bool,
    /// Return type token text (empty for `()`).
    pub ret: String,
    /// Declared variable-time: `*_vartime` name or `// ct-vartime`.
    pub vartime: bool,
    /// Annotated `// ct-secret`.
    pub ct_secret: bool,
    /// Body tokens (comments included, for `let` annotations).
    pub body: Vec<Tok>,
}

/// A struct field.
#[derive(Clone, Debug)]
pub struct Field {
    /// Field name (`"0"`, `"1"`, … for tuple structs).
    pub name: String,
    /// Field type token text.
    pub ty: String,
    /// Annotated `// ct-secret`.
    pub ct_secret: bool,
}

/// An indexed struct.
#[derive(Clone, Debug)]
pub struct StructItem {
    /// Struct name.
    pub name: String,
    /// Index into [`Index::files`].
    pub file: usize,
    /// 1-based line of the `struct` keyword.
    pub line: u32,
    /// Fields.
    pub fields: Vec<Field>,
    /// Annotated `// ct-secret` on the struct itself.
    pub ct_secret: bool,
}

/// The whole-workspace item index.
#[derive(Default, Debug)]
pub struct Index {
    /// Scanned files, in scan order (relative paths).
    pub files: Vec<String>,
    /// All indexed functions.
    pub fns: Vec<FnItem>,
    /// All indexed structs.
    pub structs: Vec<StructItem>,
    /// Types with an `impl Drop for T`.
    pub drop_impls: Vec<String>,
    /// Types with an `impl Zeroize for T` (or the zeroize trait path).
    pub zeroize_impls: Vec<String>,
}

impl Index {
    /// Lexes and indexes one file, appending into this index.
    pub fn add_file(&mut self, rel_path: &str, src: &str) {
        let file = self.files.len();
        self.files.push(rel_path.to_string());
        let toks = crate::lexer::lex(src);
        let mut cur = Cursor {
            toks: &toks,
            pos: 0,
        };
        self.scan_items(&mut cur, file, None, usize::MAX);
    }

    /// Scans items until `end` (exclusive token position) or EOF.
    fn scan_items(
        &mut self,
        cur: &mut Cursor<'_>,
        file: usize,
        self_type: Option<&str>,
        end: usize,
    ) {
        let mut pend = Pending::default();
        while cur.pos < cur.toks.len().min(end) {
            let t = &cur.toks[cur.pos];
            match t.kind {
                TokKind::LineComment | TokKind::BlockComment => {
                    if t.is_annotation("ct-secret") {
                        pend.secret = true;
                    }
                    if t.is_annotation("ct-vartime") {
                        pend.vartime = true;
                    }
                    cur.pos += 1;
                }
                TokKind::Punct if t.text == "#" => {
                    // Attribute: #[...] or #![...]
                    let attr = cur.take_attr();
                    if attr.contains("cfg ( test") || attr.contains("cfg ( any ( test") {
                        pend.cfg_test = true;
                    }
                }
                TokKind::Ident => match t.text.as_str() {
                    "mod" => {
                        cur.pos += 1; // mod
                        if let Some(name_idx) = cur.next_significant(cur.pos) {
                            cur.pos = name_idx + 1; // past the module name
                        }
                        if cur.peek_is_punct("{") {
                            let open = cur.next_significant(cur.pos).unwrap_or(cur.pos);
                            let close = cur.matching_brace_at(open);
                            cur.pos = open + 1;
                            if pend.cfg_test {
                                cur.pos = close + 1;
                            } else {
                                self.scan_items(cur, file, self_type, close);
                                cur.pos = close + 1;
                            }
                        } else {
                            cur.skip_past_semi();
                        }
                        pend = Pending::default();
                    }
                    "impl" => {
                        let (target, is_drop, is_zeroize, body_open) = cur.parse_impl_header();
                        if let Some(open) = body_open {
                            let close = cur.matching_brace_at(open);
                            cur.pos = open + 1;
                            if pend.cfg_test {
                                cur.pos = close + 1;
                            } else {
                                if is_drop {
                                    self.drop_impls.push(target.clone());
                                }
                                if is_zeroize {
                                    self.zeroize_impls.push(target.clone());
                                }
                                self.scan_items(cur, file, Some(&target), close);
                                cur.pos = close + 1;
                            }
                        }
                        pend = Pending::default();
                    }
                    "trait" => {
                        // Default methods can carry real code; scan the
                        // block with no Self type.
                        cur.pos += 1;
                        if let Some(open) = cur.find_block_open() {
                            let close = cur.matching_brace_at(open);
                            cur.pos = open + 1;
                            if pend.cfg_test {
                                cur.pos = close + 1;
                            } else {
                                self.scan_items(cur, file, None, close);
                                cur.pos = close + 1;
                            }
                        }
                        pend = Pending::default();
                    }
                    "fn" => {
                        let parsed = cur.parse_fn(file, self_type, &pend);
                        if let Some(f) = parsed {
                            if !pend.cfg_test {
                                self.fns.push(f);
                            }
                        }
                        pend = Pending::default();
                    }
                    "struct" => {
                        let parsed = cur.parse_struct(file, &pend);
                        if let Some(s) = parsed {
                            if !pend.cfg_test {
                                self.structs.push(s);
                            }
                        }
                        pend = Pending::default();
                    }
                    _ => {
                        cur.pos += 1;
                        // Annotations survive visibility/qualifier
                        // keywords between the comment and the item.
                        if !matches!(
                            t.text.as_str(),
                            "pub" | "crate" | "const" | "unsafe" | "async" | "extern" | "in"
                        ) {
                            pend.secret = false;
                            pend.vartime = false;
                        }
                    }
                },
                TokKind::Punct if t.text == "(" || t.text == ")" => {
                    // `pub(crate)` parens and similar.
                    cur.pos += 1;
                }
                _ => {
                    // `;` ends a non-item statement (e.g. a
                    // `#[cfg(test)] use …;`): drop all pending state.
                    if t.is_punct(";") {
                        pend = Pending::default();
                    } else {
                        pend.secret = false;
                        pend.vartime = false;
                    }
                    cur.pos += 1;
                }
            }
        }
    }
}

/// Annotations waiting to attach to the next item.
#[derive(Default)]
struct Pending {
    secret: bool,
    vartime: bool,
    cfg_test: bool,
}

/// A position in a token slice with the navigation helpers the
/// indexer needs. All helpers are total: they stop at EOF rather than
/// panicking on malformed input.
struct Cursor<'a> {
    toks: &'a [Tok],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn peek_is_punct(&self, p: &str) -> bool {
        self.next_significant(self.pos)
            .map(|i| self.toks[i].is_punct(p))
            .unwrap_or(false)
    }

    /// Next non-comment token index at or after `from`.
    fn next_significant(&self, from: usize) -> Option<usize> {
        (from..self.toks.len()).find(|&i| !self.toks[i].is_comment())
    }

    /// Consumes an attribute starting at `#`; returns its joined text.
    fn take_attr(&mut self) -> String {
        let start = self.pos;
        self.pos += 1; // '#'
        if self
            .toks
            .get(self.pos)
            .map(|t| t.is_punct("!"))
            .unwrap_or(false)
        {
            self.pos += 1;
        }
        if self
            .toks
            .get(self.pos)
            .map(|t| t.is_punct("["))
            .unwrap_or(false)
        {
            let mut depth = 0usize;
            while self.pos < self.toks.len() {
                let t = &self.toks[self.pos];
                if t.is_punct("[") {
                    depth += 1;
                } else if t.is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        break;
                    }
                }
                self.pos += 1;
            }
        }
        join(&self.toks[start..self.pos.min(self.toks.len())])
    }

    /// Index of the `}` matching the `{` at `open`.
    fn matching_brace_at(&self, open: usize) -> usize {
        let mut depth = 0usize;
        for i in open..self.toks.len() {
            let t = &self.toks[i];
            if t.is_punct("{") {
                depth += 1;
            } else if t.is_punct("}") {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i;
                }
            }
        }
        self.toks.len().saturating_sub(1)
    }

    /// Finds the next top-level `{` before any `;` (for items whose
    /// header we do not model precisely).
    fn find_block_open(&self) -> Option<usize> {
        let mut i = self.pos;
        let mut angle = 0i32;
        while i < self.toks.len() {
            let t = &self.toks[i];
            // `>>` (and `<<`) lex as one token — a signature ending in
            // `Option<Box<dyn T>>` must still return to depth 0.
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct("<<") {
                angle += 2;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if t.is_punct(">>") {
                angle -= 2;
            } else if t.is_punct("{") && angle <= 0 {
                return Some(i);
            } else if t.is_punct(";") && angle <= 0 {
                return None;
            }
            i += 1;
        }
        None
    }

    fn skip_past_semi(&mut self) {
        while self.pos < self.toks.len() && !self.toks[self.pos].is_punct(";") {
            self.pos += 1;
        }
        self.pos = (self.pos + 1).min(self.toks.len());
    }

    /// Parses `impl<G> Trait for Type {` / `impl Type {` from the
    /// `impl` keyword. Returns (target type simple name, is Drop impl,
    /// is Zeroize impl, body-open token index).
    fn parse_impl_header(&mut self) -> (String, bool, bool, Option<usize>) {
        self.pos += 1; // impl
                       // Skip generic parameters.
        if self.peek_is_punct("<") {
            self.skip_angle_group();
        }
        let open = self.find_block_open();
        let header_end = open.unwrap_or(self.toks.len());
        let header: Vec<&Tok> = self.toks[self.pos.min(header_end)..header_end]
            .iter()
            .filter(|t| !t.is_comment())
            .collect();
        // Split at `for` (a trait impl) if present at angle depth 0.
        let mut for_split = None;
        let mut angle = 0i32;
        for (i, t) in header.iter().enumerate() {
            if t.is_punct("<") {
                angle += 1;
            } else if t.is_punct(">") {
                angle -= 1;
            } else if t.is_ident("for") && angle <= 0 {
                for_split = Some(i);
                break;
            }
        }
        let (trait_part, type_part): (&[&Tok], &[&Tok]) = match for_split {
            Some(i) => (&header[..i], &header[i + 1..]),
            None => (&[], &header[..]),
        };
        // Target type: last path-segment identifier before generics /
        // a `where` clause.
        let mut target = String::new();
        let mut angle2 = 0i32;
        for t in type_part {
            if t.is_punct("<") {
                angle2 += 1;
            } else if t.is_punct(">") {
                angle2 -= 1;
            } else if t.is_ident("where") && angle2 <= 0 {
                break;
            } else if t.kind == TokKind::Ident && angle2 <= 0 {
                target = t.text.clone();
            }
        }
        let trait_name = trait_part
            .iter()
            .rfind(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .unwrap_or_default();
        (
            target,
            trait_name == "Drop",
            trait_name == "Zeroize" || trait_name == "ZeroizeOnDrop",
            open,
        )
    }

    /// Skips a balanced `<...>` group starting at the next `<`.
    fn skip_angle_group(&mut self) {
        if let Some(start) = self.next_significant(self.pos) {
            if !self.toks[start].is_punct("<") {
                return;
            }
            let mut depth = 0i32;
            let mut i = start;
            while i < self.toks.len() {
                let t = &self.toks[i];
                if t.is_punct("<") || t.is_punct("<<") {
                    depth += if t.is_punct("<<") { 2 } else { 1 };
                } else if t.is_punct(">") || t.is_punct(">>") {
                    depth -= if t.is_punct(">>") { 2 } else { 1 };
                    if depth <= 0 {
                        self.pos = i + 1;
                        return;
                    }
                } else if t.is_punct("->") {
                    // `->` inside a generic bound (Fn() -> T) — ignore.
                }
                i += 1;
            }
            self.pos = self.toks.len();
        }
    }

    /// Parses a `fn` item from the `fn` keyword. Returns `None` for
    /// declarations without a name (malformed input).
    fn parse_fn(&mut self, file: usize, self_type: Option<&str>, pend: &Pending) -> Option<FnItem> {
        let line = self.toks[self.pos].line;
        self.pos += 1; // fn
        let name_idx = self.next_significant(self.pos)?;
        if self.toks[name_idx].kind != TokKind::Ident {
            self.pos = name_idx;
            return None;
        }
        let name = self.toks[name_idx].text.clone();
        self.pos = name_idx + 1;
        if self.peek_is_punct("<") {
            self.skip_angle_group();
        }
        // Parameter list.
        let mut params = Vec::new();
        let mut has_self = false;
        if let Some(open) = self.next_significant(self.pos) {
            if self.toks[open].is_punct("(") {
                let close = self.matching_paren_at(open);
                let mut start = open + 1;
                let mut depth = 0i32;
                let mut i = open + 1;
                while i <= close && i < self.toks.len() {
                    let t = &self.toks[i];
                    if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") || t.is_punct("<") {
                        depth += 1;
                    } else if t.is_punct(")")
                        || t.is_punct("]")
                        || t.is_punct("}")
                        || t.is_punct(">")
                    {
                        depth -= 1;
                    }
                    if (t.is_punct(",") && depth == 0) || i == close {
                        let seg = &self.toks[start..i];
                        if let Some(p) = parse_param(seg) {
                            if p.ty.is_empty() && p.names.iter().any(|n| n == "self") {
                                has_self = true;
                            } else if !p.names.is_empty() {
                                params.push(p);
                            }
                        }
                        start = i + 1;
                    }
                    i += 1;
                }
                self.pos = close + 1;
            }
        }
        // Return type: up to `{`, `;` or `where`.
        let mut ret = String::new();
        if let Some(arrow) = self.next_significant(self.pos) {
            if self.toks[arrow].is_punct("->") {
                let mut i = arrow + 1;
                let mut angle = 0i32;
                let mut parts = Vec::new();
                while i < self.toks.len() {
                    let t = &self.toks[i];
                    // `>>`/`<<` lex as one token each (see
                    // `find_block_open`).
                    if t.is_punct("<") {
                        angle += 1;
                    } else if t.is_punct("<<") {
                        angle += 2;
                    } else if t.is_punct(">") {
                        angle -= 1;
                    } else if t.is_punct(">>") {
                        angle -= 2;
                    }
                    if angle <= 0 && (t.is_punct("{") || t.is_punct(";") || t.is_ident("where")) {
                        break;
                    }
                    if !t.is_comment() {
                        parts.push(t.text.clone());
                    }
                    i += 1;
                }
                ret = parts.join(" ");
                self.pos = i;
            }
        }
        // Body (or `;` for a declaration).
        let mut body = Vec::new();
        if let Some(open) = self.find_block_open() {
            let close = self.matching_brace_at(open);
            body = self.toks[open + 1..close.min(self.toks.len())].to_vec();
            self.pos = close + 1;
        } else {
            self.skip_past_semi();
        }
        let vartime = pend.vartime || name.ends_with("_vartime");
        let qual = match self_type {
            Some(t) => format!("{t}::{name}"),
            None => name.clone(),
        };
        Some(FnItem {
            name,
            qual,
            file,
            line,
            self_type: self_type.map(str::to_string),
            params,
            has_self,
            ret,
            vartime,
            ct_secret: pend.secret,
            body,
        })
    }

    /// Index of the `)` matching the `(` at `open`.
    fn matching_paren_at(&self, open: usize) -> usize {
        let mut depth = 0i32;
        for i in open..self.toks.len() {
            let t = &self.toks[i];
            if t.is_punct("(") {
                depth += 1;
            } else if t.is_punct(")") {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
        }
        self.toks.len().saturating_sub(1)
    }

    /// Parses a `struct` item from the `struct` keyword.
    fn parse_struct(&mut self, file: usize, pend: &Pending) -> Option<StructItem> {
        let line = self.toks[self.pos].line;
        self.pos += 1; // struct
        let name_idx = self.next_significant(self.pos)?;
        if self.toks[name_idx].kind != TokKind::Ident {
            self.pos = name_idx;
            return None;
        }
        let name = self.toks[name_idx].text.clone();
        self.pos = name_idx + 1;
        if self.peek_is_punct("<") {
            self.skip_angle_group();
        }
        let mut fields = Vec::new();
        let mut ct_secret = pend.secret;
        if let Some(next) = self.next_significant(self.pos) {
            if self.toks[next].is_punct("{") {
                let close = self.matching_brace_at(next);
                fields = parse_named_fields(&self.toks[next + 1..close.min(self.toks.len())]);
                self.pos = close + 1;
            } else if self.toks[next].is_punct("(") {
                let close = self.matching_paren_at(next);
                let inner = &self.toks[next + 1..close.min(self.toks.len())];
                // Tuple fields: split top-level commas; a ct-secret
                // comment anywhere inside marks the struct.
                if inner.iter().any(|t| t.is_annotation("ct-secret")) {
                    ct_secret = true;
                }
                let mut depth = 0i32;
                let mut start = 0usize;
                for (i, t) in inner.iter().enumerate() {
                    if t.is_punct("(") || t.is_punct("<") || t.is_punct("[") {
                        depth += 1;
                    } else if t.is_punct(")") || t.is_punct(">") || t.is_punct("]") {
                        depth -= 1;
                    }
                    if (t.is_punct(",") && depth == 0) || i + 1 == inner.len() {
                        let end = if t.is_punct(",") { i } else { i + 1 };
                        let ty = join_significant(&inner[start..end]);
                        if !ty.is_empty() {
                            fields.push(Field {
                                name: fields.len().to_string(),
                                ty,
                                ct_secret: false,
                            });
                        }
                        start = i + 1;
                    }
                }
                self.pos = close + 1;
                self.skip_past_semi();
            } else {
                // Unit struct.
                self.skip_past_semi();
            }
        }
        Some(StructItem {
            name,
            file,
            line,
            fields,
            ct_secret,
        })
    }
}

/// Parses one named-field list (`vis name: Type, …` with attributes
/// and comments interleaved).
fn parse_named_fields(toks: &[Tok]) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut depth = 0i32;
    let mut start = 0usize;
    for (i, t) in toks.iter().enumerate() {
        if t.is_punct("(") || t.is_punct("<") || t.is_punct("[") || t.is_punct("{") {
            depth += 1;
        } else if t.is_punct(")") || t.is_punct(">") || t.is_punct("]") || t.is_punct("}") {
            depth -= 1;
        }
        if (t.is_punct(",") && depth == 0) || i + 1 == toks.len() {
            let end = if t.is_punct(",") { i } else { i + 1 };
            let seg = &toks[start..end];
            let ct_secret = seg.iter().any(|t| t.is_annotation("ct-secret"));
            // name is the last ident before the top-level `:`.
            let mut colon = None;
            let mut d2 = 0i32;
            for (j, s) in seg.iter().enumerate() {
                if s.is_punct("<") || s.is_punct("(") || s.is_punct("[") {
                    d2 += 1;
                } else if s.is_punct(">") || s.is_punct(")") || s.is_punct("]") {
                    d2 -= 1;
                } else if s.is_punct(":") && d2 == 0 {
                    colon = Some(j);
                    break;
                }
            }
            if let Some(c) = colon {
                let name = seg[..c]
                    .iter()
                    .rfind(|s| s.kind == TokKind::Ident)
                    .map(|s| s.text.clone());
                if let Some(name) = name {
                    fields.push(Field {
                        name,
                        ty: join_significant(&seg[c + 1..]),
                        ct_secret,
                    });
                }
            }
            start = i + 1;
        }
    }
    fields
}

/// Parses one parameter segment into bound names + type text.
fn parse_param(toks: &[Tok]) -> Option<Param> {
    let sig: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
    if sig.is_empty() {
        return None;
    }
    // Receiver forms: self, &self, &mut self, mut self, self: Type.
    let mut colon = None;
    let mut depth = 0i32;
    for (i, t) in sig.iter().enumerate() {
        if t.is_punct("<") || t.is_punct("(") || t.is_punct("[") {
            depth += 1;
        } else if t.is_punct(">") || t.is_punct(")") || t.is_punct("]") {
            depth -= 1;
        } else if t.is_punct(":") && depth == 0 {
            colon = Some(i);
            break;
        }
    }
    match colon {
        None => {
            let names: Vec<String> = sig
                .iter()
                .filter(|t| t.kind == TokKind::Ident && t.text != "mut")
                .map(|t| t.text.clone())
                .collect();
            Some(Param {
                names,
                ty: String::new(),
            })
        }
        Some(c) => {
            let names: Vec<String> = sig[..c]
                .iter()
                .filter(|t| t.kind == TokKind::Ident && t.text != "mut" && t.text != "ref")
                .map(|t| t.text.clone())
                .collect();
            let ty: String = sig[c + 1..]
                .iter()
                .map(|t| t.text.clone())
                .collect::<Vec<_>>()
                .join(" ");
            Some(Param { names, ty })
        }
    }
}

/// Joins token texts with spaces.
pub fn join(toks: &[Tok]) -> String {
    toks.iter()
        .map(|t| t.text.clone())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Joins non-comment token texts with spaces.
pub fn join_significant(toks: &[Tok]) -> String {
    toks.iter()
        .filter(|t| !t.is_comment())
        .map(|t| t.text.clone())
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(src: &str) -> Index {
        let mut ix = Index::default();
        ix.add_file("test.rs", src);
        ix
    }

    #[test]
    fn indexes_fns_structs_and_impls() {
        let ix = index_of(
            "struct KeyBox { k: Scalar, pub n: u32 }\n\
             impl Drop for KeyBox { fn drop(&mut self) {} }\n\
             impl KeyBox { fn get(&self, i: usize) -> u32 { self.n } }\n\
             fn free(a: &Scalar, b: u8) -> bool { false }\n",
        );
        assert_eq!(ix.structs.len(), 1);
        assert_eq!(ix.structs[0].fields.len(), 2);
        assert_eq!(ix.structs[0].fields[0].ty, "Scalar");
        assert!(ix.drop_impls.contains(&"KeyBox".to_string()));
        let get = ix.fns.iter().find(|f| f.name == "get").unwrap();
        assert_eq!(get.qual, "KeyBox::get");
        assert!(get.has_self);
        let free = ix.fns.iter().find(|f| f.name == "free").unwrap();
        assert_eq!(free.params.len(), 2);
        assert_eq!(free.params[0].ty, "& Scalar");
        assert_eq!(free.ret, "bool");
    }

    #[test]
    fn double_angle_return_type_does_not_swallow_next_fn() {
        // `>>` lexes as one token; a signature ending in it must not
        // leave the angle-depth tracker above zero (which would swallow
        // every following item into this fn's "body").
        let ix = index_of(
            "fn make(k: u8) -> Option<Box<dyn Iterator<Item = u8>>> { None }\n\
             fn after() {}\n",
        );
        let make = ix.fns.iter().find(|f| f.name == "make").unwrap();
        assert!(ix.fns.iter().any(|f| f.name == "after"));
        assert!(!make.ret.is_empty());
    }

    #[test]
    fn skips_cfg_test_modules() {
        let ix = index_of("#[cfg(test)]\nmod tests { fn hidden() {} }\nfn visible() {}\n");
        assert!(ix.fns.iter().any(|f| f.name == "visible"));
        assert!(!ix.fns.iter().any(|f| f.name == "hidden"));
    }

    #[test]
    fn attaches_annotations() {
        let ix = index_of(
            "// ct-vartime: zero-skipping walk\nfn shamir(a: u8) {}\n\
             // ct-secret\nfn derive_thing(x: u8) {}\n\
             struct Buf {\n    // ct-secret\n    data: [u8; 32],\n    len: usize,\n}\n",
        );
        assert!(ix.fns.iter().find(|f| f.name == "shamir").unwrap().vartime);
        assert!(
            ix.fns
                .iter()
                .find(|f| f.name == "derive_thing")
                .unwrap()
                .ct_secret
        );
        let buf = &ix.structs[0];
        assert!(buf.fields[0].ct_secret);
        assert!(!buf.fields[1].ct_secret);
    }

    #[test]
    fn vartime_suffix_marks_family() {
        let ix = index_of("fn mul_vartime(k: u8) {}\n");
        assert!(ix.fns[0].vartime);
    }
}
