//! The [`Pass`] trait and the registry of built-in passes.
//!
//! A pass owns a finding-class vocabulary, a default allowlist path
//! and an analysis over the shared front end (lexer → item index →
//! call graph). The driver in [`crate::run`] builds the index once and
//! hands it to every selected pass; each pass's findings are gated by
//! its own allowlist with the same stale-entry discipline.

use crate::findings::Finding;
use crate::index::Index;

/// One analysis pass over the shared item index.
pub trait Pass {
    /// CLI / report name (`secret-flow`, `determinism`, `panic-reach`).
    fn name(&self) -> &'static str;

    /// The finding classes this pass can emit — the valid vocabulary
    /// for its allowlist's `class` keys.
    fn classes(&self) -> &'static [&'static str];

    /// Default allowlist path, relative to the workspace root.
    fn default_allowlist(&self) -> &'static str;

    /// Runs the analysis. Findings come back sorted and deduplicated.
    fn analyze(&self, ix: &Index) -> Vec<Finding>;
}

/// All built-in passes, in canonical order.
pub fn all_passes() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(crate::secretflow::SecretFlow::default()),
        Box::new(crate::determinism::Determinism),
        Box::new(crate::panicreach::PanicReach),
    ]
}

/// Looks up a pass by CLI name; `"all"` is handled by the caller.
pub fn by_name(name: &str) -> Option<Box<dyn Pass>> {
    all_passes().into_iter().find(|p| p.name() == name)
}

/// The tooling path prefixes the determinism and panic-reachability
/// passes do not report on: the analyzer itself, benches (wall-clock
/// measurement is their purpose), the conformance/analysis tooling and
/// demo binaries. The secret-flow pass still scans everything — a
/// timing leak in an example is a leak. The whole-workspace call graph
/// is built regardless; only finding *emission* is filtered, so
/// reachability through these files is still tracked.
pub const TOOLING_PREFIXES: &[&str] = &[
    "crates/ctlint/",
    "crates/bench/",
    "crates/analysis/",
    "examples/",
];

/// Whether `file` is eligible for determinism / panic-reach findings.
pub fn hot_path_file(file: &str) -> bool {
    !TOOLING_PREFIXES.iter().any(|p| file.starts_with(p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_named() {
        let names: Vec<&str> = all_passes().iter().map(|p| p.name()).collect();
        assert_eq!(names, vec!["secret-flow", "determinism", "panic-reach"]);
        for n in names {
            assert_eq!(by_name(n).unwrap().name(), n);
        }
        assert!(by_name("all").is_none());
    }

    #[test]
    fn class_vocabularies_are_disjoint_and_nonempty() {
        let mut seen = std::collections::BTreeSet::new();
        for p in all_passes() {
            assert!(!p.classes().is_empty());
            for c in p.classes() {
                assert!(seen.insert(*c), "class `{c}` appears in two passes");
            }
        }
    }

    #[test]
    fn tooling_filter() {
        assert!(hot_path_file("crates/fleet/src/interleave.rs"));
        assert!(hot_path_file("det_offend.rs"));
        assert!(!hot_path_file("crates/bench/src/bin/fleet.rs"));
        assert!(!hot_path_file("crates/ctlint/src/lib.rs"));
    }
}
