//! The secret-flow pass: secrecy taint analysis over the item index.
//!
//! **Seeding.** A binding is tainted when its type mentions a marker
//! type (`Scalar`, `KeyPair`, `SessionKey`, `Zeroizing` by default —
//! the types PRs 3 and 5 built the constant-time machinery for) or it
//! carries a `// ct-secret` annotation. A function is a *secret
//! context* when it binds tainted state: a marker-typed parameter, a
//! `self` whose type is a marker or holds a tainted field, a
//! marker-typed return (it manufactures secrets), or a `// ct-secret`
//! annotation.
//!
//! **Propagation.** For the vartime-reachability check, secrecy flows
//! through the shared call graph ([`crate::callgraph`]): every
//! function transitively callable from a secret context is treated as
//! operating under secret-derived state. Edges out of vartime-family
//! functions are not followed — their bodies are the audited boundary.
//!
//! **Finding classes.**
//! 1. `vartime-call` — a call to a `*_vartime` / `// ct-vartime`
//!    function from a function in the secret-reachable set (the
//!    vartime family's own bodies are the audited boundary and are
//!    exempt).
//! 2. `secret-branch` — an `if`/`while`/`match` condition or array
//!    index that mentions a tainted binding inside a secret context
//!    (early returns under such a condition are the same finding).
//! 3. `nonct-eq` — `==`/`!=` with a tainted operand inside a secret
//!    context instead of `ecq_crypto::ct::eq`.
//! 4. `missing-zeroize` — a struct holding tainted fields where
//!    neither the struct (via `Drop`/`Zeroize`) nor every tainted
//!    field's own type wipes itself on drop.

use crate::callgraph::CallGraph;
use crate::findings::Finding;
use crate::index::{FnItem, Index};
use crate::lexer::{Tok, TokKind};
use crate::pass::Pass;
use std::collections::{BTreeSet, HashMap, HashSet};

/// Default marker types seeding the taint analysis.
pub const DEFAULT_MARKERS: &[&str] = &["Scalar", "KeyPair", "SessionKey", "Zeroizing"];

/// The pass name, as spelled on the CLI.
pub const NAME: &str = "secret-flow";

/// The class vocabulary.
pub const CLASSES: &[&str] = &[
    "vartime-call",
    "secret-branch",
    "nonct-eq",
    "missing-zeroize",
];

/// The secret-flow pass, configured by its marker-type list.
#[derive(Clone, Debug)]
pub struct SecretFlow {
    /// Marker type names seeding taint.
    pub markers: Vec<String>,
}

impl Default for SecretFlow {
    fn default() -> Self {
        SecretFlow {
            markers: DEFAULT_MARKERS.iter().map(|s| s.to_string()).collect(),
        }
    }
}

impl Pass for SecretFlow {
    fn name(&self) -> &'static str {
        NAME
    }

    fn classes(&self) -> &'static [&'static str] {
        CLASSES
    }

    fn default_allowlist(&self) -> &'static str {
        "ci/ctlint_allow.toml"
    }

    fn analyze(&self, ix: &Index) -> Vec<Finding> {
        analyze(ix, self)
    }
}

/// Builds a secret-flow finding (chain filled in by the caller when
/// the finding is reachability-based).
fn finding(file: &str, line: u32, class: &str, context: &str, ident: &str, msg: String) -> Finding {
    Finding {
        file: file.to_string(),
        line,
        pass: NAME.to_string(),
        class: class.to_string(),
        context: context.to_string(),
        ident: ident.to_string(),
        message: msg,
        chain: Vec::new(),
    }
}

/// Runs all four checks over an index. Findings are sorted by
/// (file, line).
pub fn analyze(ix: &Index, cfg: &SecretFlow) -> Vec<Finding> {
    let markers: HashSet<&str> = cfg.markers.iter().map(String::as_str).collect();
    let mentions_marker = |ty: &str| ty.split_whitespace().any(|w| markers.contains(w));

    // Struct-level taint: which structs hold tainted fields.
    let mut tainted_fields: HashMap<&str, Vec<&crate::index::Field>> = HashMap::new();
    for s in &ix.structs {
        let tf: Vec<_> = s
            .fields
            .iter()
            .filter(|f| f.ct_secret || mentions_marker(&f.ty))
            .collect();
        if !tf.is_empty() || s.ct_secret {
            tainted_fields.insert(s.name.as_str(), tf);
        }
    }

    // Secret contexts (direct seeding).
    let is_secret = |f: &FnItem| -> bool {
        if f.ct_secret {
            return true;
        }
        // A `// ct-secret` annotation on a `let` inside the body makes
        // the whole function a secret context.
        if f.body.iter().any(|t| t.is_annotation("ct-secret")) {
            return true;
        }
        if f.params.iter().any(|p| mentions_marker(&p.ty)) {
            return true;
        }
        if mentions_marker(&f.ret) {
            return true;
        }
        if f.has_self {
            if let Some(st) = &f.self_type {
                if markers.contains(st.as_str()) || tainted_fields.contains_key(st.as_str()) {
                    return true;
                }
            }
        }
        false
    };

    let cg = CallGraph::build(ix);

    // Vartime family: every *_vartime / ct-vartime fn name.
    let vartime_names: HashSet<&str> = ix
        .fns
        .iter()
        .filter(|f| f.vartime)
        .map(|f| f.name.as_str())
        .collect();

    // Reachability: BFS from secret contexts through the call graph.
    // Edges out of vartime-family functions are not followed — their
    // bodies are the audited boundary.
    let reach = cg.reach(ix, is_secret, |f| !f.vartime);

    let mut findings = Vec::new();

    // Class 1: vartime calls from the secret-reachable set.
    for (i, f) in ix.fns.iter().enumerate() {
        if !reach.reachable[i] || f.vartime {
            continue;
        }
        for (callee, line) in &cg.calls[i] {
            let is_vartime_call =
                callee.ends_with("_vartime") || vartime_names.contains(callee.as_str());
            if is_vartime_call {
                let mut out = finding(
                    &ix.files[f.file],
                    *line,
                    "vartime-call",
                    &f.qual,
                    callee,
                    format!(
                        "`{}` calls variable-time `{}` while reachable from a secret context",
                        f.qual, callee
                    ),
                );
                out.chain = reach.chain(ix, i);
                findings.push(out);
            }
        }
    }

    // Classes 2 and 3: token scans of secret-context bodies.
    for f in ix.fns.iter() {
        if f.vartime || !is_secret(f) {
            continue;
        }
        let tainted = tainted_bindings(f, &markers, &tainted_fields, &mentions_marker);
        if tainted.is_empty() {
            continue;
        }
        scan_body(f, &ix.files[f.file], &tainted, &mut findings);
    }

    // Class 4: secret-holding structs without zeroize-on-drop.
    let wipes: HashSet<&str> = ix
        .drop_impls
        .iter()
        .chain(ix.zeroize_impls.iter())
        .map(String::as_str)
        .collect();
    for s in &ix.structs {
        let Some(tf) = tainted_fields.get(s.name.as_str()) else {
            continue;
        };
        if wipes.contains(s.name.as_str()) {
            continue;
        }
        // Safe containment: every tainted field's own type wipes
        // itself on drop (`Zeroizing<…>` or a type with Drop/Zeroize).
        let self_wiping = |ty: &str| {
            ty.split_whitespace()
                .any(|w| w == "Zeroizing" || wipes.contains(w))
        };
        if !tf.is_empty() && tf.iter().all(|f| self_wiping(&f.ty)) {
            continue;
        }
        let culprit = tf
            .iter()
            .find(|f| !self_wiping(&f.ty))
            .map(|f| f.name.clone())
            .unwrap_or_default();
        findings.push(finding(
            &ix.files[s.file],
            s.line,
            "missing-zeroize",
            &s.name,
            &culprit,
            format!(
                "struct `{}` holds secret field `{}` but has no Drop/Zeroize impl",
                s.name, culprit
            ),
        ));
    }

    // A `nonct-eq` on a line shadows the `secret-branch` the same
    // condition would also raise — keep the more specific class.
    let eq_lines: HashSet<(String, u32)> = findings
        .iter()
        .filter(|f| f.class == "nonct-eq")
        .map(|f| (f.file.clone(), f.line))
        .collect();
    findings
        .retain(|f| f.class != "secret-branch" || !eq_lines.contains(&(f.file.clone(), f.line)));

    findings.sort();
    findings.dedup();
    findings
}

/// The tainted binding names visible in a function body.
fn tainted_bindings(
    f: &FnItem,
    markers: &HashSet<&str>,
    tainted_fields: &HashMap<&str, Vec<&crate::index::Field>>,
    mentions_marker: &dyn Fn(&str) -> bool,
) -> BTreeSet<String> {
    let mut tainted = BTreeSet::new();
    for p in &f.params {
        if mentions_marker(&p.ty) {
            for n in &p.names {
                tainted.insert(n.clone());
            }
        }
    }
    if f.has_self {
        if let Some(st) = &f.self_type {
            if markers.contains(st.as_str()) {
                tainted.insert("self".to_string());
            }
            if let Some(tf) = tainted_fields.get(st.as_str()) {
                // Approximation: the field names themselves — catches
                // `self.key`-style accesses in conditions.
                for field in tf {
                    tainted.insert(field.name.clone());
                }
            }
        }
    }
    // `let` bindings with an explicit marker type or a ct-secret
    // comment on the same or preceding line.
    let secret_lines: HashSet<u32> = f
        .body
        .iter()
        .filter(|t| t.is_annotation("ct-secret"))
        .map(|t| t.line)
        .collect();
    let sig: Vec<&Tok> = f.body.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in sig.iter().enumerate() {
        if !t.is_ident("let") {
            continue;
        }
        // Pattern: next idents up to `:`/`=` are the binding names.
        let mut names = Vec::new();
        let mut ty = Vec::new();
        let mut in_ty = false;
        let mut depth = 0i32;
        for s in sig.iter().skip(i + 1) {
            if s.is_punct("(") || s.is_punct("[") || s.is_punct("<") {
                depth += 1;
            } else if s.is_punct(")") || s.is_punct("]") || s.is_punct(">") {
                depth -= 1;
            } else if (s.is_punct("=") || s.is_punct(";")) && depth <= 0 {
                break;
            } else if s.is_punct(":") && depth <= 0 {
                in_ty = true;
                continue;
            }
            if s.kind == TokKind::Ident && s.text != "mut" && s.text != "ref" {
                if in_ty {
                    ty.push(s.text.clone());
                } else {
                    names.push(s.text.clone());
                }
            }
        }
        let annotated =
            secret_lines.contains(&t.line) || secret_lines.contains(&t.line.saturating_sub(1));
        let marked_ty = ty.iter().any(|w| markers.contains(w.as_str()));
        if annotated || marked_ty {
            for n in names {
                tainted.insert(n);
            }
        }
    }
    tainted
}

/// Scans one secret-context body for classes 2 and 3.
fn scan_body(f: &FnItem, file: &str, tainted: &BTreeSet<String>, findings: &mut Vec<Finding>) {
    let sig: Vec<&Tok> = f.body.iter().filter(|t| !t.is_comment()).collect();
    let is_tainted = |t: &Tok| t.kind == TokKind::Ident && tainted.contains(&t.text);

    let mut i = 0usize;
    while i < sig.len() {
        let t = sig[i];
        // Conditions: if / while / match up to the opening `{`.
        if t.is_ident("if") || t.is_ident("while") || t.is_ident("match") {
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut culprit: Option<&Tok> = None;
            while j < sig.len() {
                let s = sig[j];
                if s.is_punct("(") || s.is_punct("[") {
                    depth += 1;
                } else if s.is_punct(")") || s.is_punct("]") {
                    depth -= 1;
                } else if s.is_punct("{") && depth <= 0 {
                    break;
                }
                if culprit.is_none() && is_tainted(s) {
                    culprit = Some(s);
                }
                j += 1;
            }
            if let Some(c) = culprit {
                findings.push(finding(
                    file,
                    c.line,
                    "secret-branch",
                    &f.qual,
                    &c.text,
                    format!(
                        "`{}` branches (`{}`) on secret-derived `{}`",
                        f.qual, t.text, c.text
                    ),
                ));
            }
            i = j;
            continue;
        }
        // Array indexing by a tainted value: `expr [ … tainted … ]`
        // where `[` follows an ident/`)`/`]` (i.e. an index, not an
        // array literal).
        if t.is_punct("[") && i > 0 {
            let prev = sig[i - 1];
            let indexing = prev.kind == TokKind::Ident && !is_keyword(&prev.text)
                || prev.is_punct(")")
                || prev.is_punct("]");
            if indexing {
                let mut depth = 1i32;
                let mut j = i + 1;
                let mut culprit: Option<&Tok> = None;
                while j < sig.len() && depth > 0 {
                    let s = sig[j];
                    if s.is_punct("[") {
                        depth += 1;
                    } else if s.is_punct("]") {
                        depth -= 1;
                    }
                    if culprit.is_none() && is_tainted(s) {
                        culprit = Some(s);
                    }
                    j += 1;
                }
                if let Some(c) = culprit {
                    findings.push(finding(
                        file,
                        c.line,
                        "secret-branch",
                        &f.qual,
                        &c.text,
                        format!(
                            "`{}` indexes by secret-derived `{}` (cache-line leak)",
                            f.qual, c.text
                        ),
                    ));
                    i = j;
                    continue;
                }
            }
        }
        // Non-ct equality: `==` / `!=` with a tainted operand nearby.
        if t.is_punct("==") || t.is_punct("!=") {
            let lo = i.saturating_sub(6);
            let hi = (i + 7).min(sig.len());
            if let Some(c) = sig[lo..hi].iter().find(|s| is_tainted(s)) {
                findings.push(finding(
                    file,
                    t.line,
                    "nonct-eq",
                    &f.qual,
                    &c.text,
                    format!(
                        "`{}` compares secret-derived `{}` with `{}` (use ecq_crypto::ct::eq)",
                        f.qual, c.text, t.text
                    ),
                ));
            }
        }
        i += 1;
    }
}

/// Keywords that can precede `[` without it being an index expression.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return" | "break" | "in" | "else" | "match" | "if" | "while" | "loop" | "let" | "mut"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let mut ix = Index::default();
        ix.add_file("t.rs", src);
        analyze(&ix, &SecretFlow::default())
    }

    #[test]
    fn flags_vartime_call_from_secret_context() {
        let f = run("fn mul_vartime(k: u8) {}\nfn sign(d: &Scalar) { mul_vartime(3); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].class, "vartime-call");
        assert_eq!(f[0].context, "sign");
        assert_eq!(f[0].chain, vec!["sign"]);
    }

    #[test]
    fn flags_transitive_vartime_reachability_with_chain() {
        let f = run(
            "fn mul_vartime(k: u8) {}\nfn helper(x: u8) { mul_vartime(x); }\n\
             fn sign(d: &Scalar) { helper(1); }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].context, "helper");
        assert_eq!(f[0].chain, vec!["sign", "helper"]);
    }

    #[test]
    fn vartime_bodies_are_exempt() {
        let f =
            run("fn inner_vartime(k: u8) {}\nfn outer_vartime(k: &Scalar) { inner_vartime(1); }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn flags_secret_branch_and_index() {
        let f = run("fn process(k: &Scalar, table: &[u8]) -> u8 {\n\
                 if k.is_zero() { return 0; }\n\
                 table[k.low_bits()]\n\
             }\n");
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.class == "secret-branch"));
    }

    #[test]
    fn flags_nonct_eq_not_branch_on_same_line() {
        let f = run("fn check(pm: &Zeroizing<[u8; 32]>, other: &[u8; 32]) -> bool { pm.as_ref() == other }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].class, "nonct-eq");
    }

    #[test]
    fn flags_missing_zeroize_and_accepts_drop() {
        let f = run("struct Bad { d: Scalar }\nstruct Good { d: Scalar }\nimpl Drop for Good { fn drop(&mut self) {} }\nimpl Drop for Scalar { fn drop(&mut self) {} }\n");
        // `Bad` holds a Scalar (which wipes itself) — containment is
        // safe, so only structs with genuinely unwiped fields flag.
        assert!(f.is_empty());
    }

    #[test]
    fn flags_ct_secret_field_without_wipe() {
        let f = run("struct Premaster {\n    // ct-secret\n    bytes: [u8; 32],\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].class, "missing-zeroize");
        assert_eq!(f[0].context, "Premaster");
    }

    #[test]
    fn ct_secret_let_annotation_taints() {
        let f = run("fn kdf(seed: &[u8]) -> u8 {\n\
                 // ct-secret\n\
                 let k = expand(seed);\n\
                 if k > 3 { 1 } else { 0 }\n\
             }\n// ct-secret\nfn expand(s: &[u8]) -> u8 { 0 }\n");
        assert!(f
            .iter()
            .any(|x| x.class == "secret-branch" && x.ident == "k"));
    }
}
