//! `ecq_lint` — a workspace-wide secret-flow static analyzer.
//!
//! The paper's security argument rests on every secret-dependent
//! computation (ECQV blinding, STS ephemerals, ECDH, signing nonces)
//! being timing-silent. PRs 3 and 5 built the constant-time machinery;
//! this crate machine-checks the boundary between the `*_ct` and
//! `*_vartime` worlds instead of leaving it to `grep` and review:
//!
//! 1. it lexes and indexes every workspace source file (hand-rolled
//!    token scanner — the container is offline, so no `syn`),
//! 2. seeds a secrecy taint set from marker types (`Scalar`,
//!    `KeyPair`, `SessionKey`, `Zeroizing`) and `// ct-secret`
//!    annotations,
//! 3. propagates taint through the call graph, and
//! 4. reports four finding classes (see [`taint::Class`]):
//!    variable-time calls reachable from secret contexts,
//!    secret-dependent control flow or indexing, non-constant-time
//!    equality on secrets, and secret-holding types without
//!    zeroize-on-drop.
//!
//! Audited public-input vartime sites (ECDSA verification, the
//! eq. (1) reconstruction, Shamir/Straus, benches, attack tooling)
//! live in `ci/ctlint_allow.toml` with per-entry justifications; the
//! lint fails on any unsuppressed finding, any stale allowlist entry
//! and any entry missing its justification, so `cargo run -p ecq_lint`
//! is a CI-gated, zero-findings-clean pass.

#![deny(missing_docs)]

pub mod allowlist;
pub mod index;
pub mod lexer;
pub mod taint;

use index::Index;
use std::path::{Path, PathBuf};

/// Directory names never scanned: build output, vendored stand-ins,
/// test code (which compares secrets with `assert_eq!` by design) and
/// the lint's own seeded-violation fixtures.
pub const SKIP_DIRS: &[&str] = &["target", "third_party", "tests", "fixtures", ".git"];

/// Recursively collects the `.rs` files to scan under `root`,
/// skipping [`SKIP_DIRS`]. Paths come back sorted, relative to `root`.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Builds the item index for every source under `root`.
pub fn index_workspace(root: &Path) -> std::io::Result<Index> {
    let mut ix = Index::default();
    for rel in workspace_sources(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        ix.add_file(&rel.to_string_lossy().replace('\\', "/"), &src);
    }
    Ok(ix)
}

/// A full lint run: findings after allowlist application, plus any
/// allowlist problems.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned.
    pub files: usize,
    /// Functions indexed.
    pub fns: usize,
    /// Findings not covered by the allowlist.
    pub unsuppressed: Vec<taint::Finding>,
    /// Findings suppressed, with the justification that covered them.
    pub suppressed: Vec<(taint::Finding, String)>,
    /// Stale allowlist entries (matched nothing).
    pub stale: Vec<allowlist::Entry>,
    /// Structural allowlist errors (bad class, missing justification).
    pub allowlist_errors: Vec<allowlist::AllowlistError>,
}

impl Report {
    /// Whether the run is clean (gates CI).
    pub fn is_clean(&self) -> bool {
        self.unsuppressed.is_empty() && self.stale.is_empty() && self.allowlist_errors.is_empty()
    }
}

/// Runs the analyzer over `root` with `cfg`, applying the allowlist at
/// `allowlist_path` when it exists.
pub fn run(
    root: &Path,
    cfg: &taint::Config,
    allowlist_path: Option<&Path>,
) -> std::io::Result<Report> {
    let ix = index_workspace(root)?;
    let findings = taint::analyze(&ix, cfg);
    let (entries, allowlist_errors) = match allowlist_path {
        Some(p) if p.exists() => allowlist::parse(&std::fs::read_to_string(p)?),
        _ => (Vec::new(), Vec::new()),
    };
    let applied = allowlist::apply(findings, &entries);
    Ok(Report {
        files: ix.files.len(),
        fns: ix.fns.len(),
        unsuppressed: applied.unsuppressed,
        suppressed: applied
            .suppressed
            .into_iter()
            .map(|(f, i)| (f, entries[i].justification.clone()))
            .collect(),
        stale: applied.stale,
        allowlist_errors,
    })
}
