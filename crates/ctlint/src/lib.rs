//! `ecq_lint` — a workspace-wide multi-pass static analyzer.
//!
//! The paper's security argument and the reproduction's engineering
//! contracts are machine-checked here instead of left to `grep` and
//! review. One shared front end — a hand-rolled lexer (the container
//! is offline, so no `syn`), an item index and a name-resolved call
//! graph — feeds three passes behind the [`pass::Pass`] trait:
//!
//! * **`secret-flow`** ([`secretflow`]) — PR 6's constant-time
//!   boundary audit: vartime calls reachable from secret contexts,
//!   secret-dependent control flow or indexing, non-constant-time
//!   equality on secrets, and secret-holding types without
//!   zeroize-on-drop.
//! * **`determinism`** ([`determinism`]) — the static half of the
//!   bit-identical `(config, seed)` report guarantee: no unordered
//!   iteration, wall-clock reads, thread identity, environment reads,
//!   unseeded randomness or address-based ordering reachable from the
//!   report-affecting roots.
//! * **`panic-reach`** ([`panicreach`]) — no `unwrap`/`expect`,
//!   panicking macros, dynamic `Vec`/slice indexing or unguarded
//!   division reachable from the sweep and `Endpoint::step` hot
//!   paths: a poisoned session must fail closed as a typed error, not
//!   abort a million-device run.
//!
//! Every pass shares the same finding model ([`findings::Finding`]:
//! class, `file:line` anchor, reach-chain evidence) and the same
//! allowlist discipline ([`allowlist`]): per-pass committed lists
//! (`ci/ctlint_allow.toml`, `ci/determinism_allow.toml`,
//! `ci/panic_allow.toml`) whose every entry carries a justification
//! naming the invariant, and whose stale entries fail the lint. So
//! `cargo run -p ecq_lint -- --pass all` is a CI-gated,
//! zero-findings-clean pass.

#![deny(missing_docs)]

pub mod allowlist;
pub mod callgraph;
pub mod determinism;
pub mod findings;
pub mod index;
pub mod lexer;
pub mod panicreach;
pub mod pass;
pub mod secretflow;

use findings::Finding;
use index::Index;
use pass::Pass;
use std::path::{Path, PathBuf};

/// Directory names never scanned: build output, vendored stand-ins,
/// test code (which compares secrets with `assert_eq!` and `unwrap`s
/// by design) and the lint's own seeded-violation fixtures.
pub const SKIP_DIRS: &[&str] = &["target", "third_party", "tests", "fixtures", ".git"];

/// Recursively collects the `.rs` files to scan under `root`,
/// skipping [`SKIP_DIRS`]. Paths come back sorted, relative to `root`.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Builds the item index for every source under `root`.
pub fn index_workspace(root: &Path) -> std::io::Result<Index> {
    let mut ix = Index::default();
    for rel in workspace_sources(root)? {
        let src = std::fs::read_to_string(root.join(&rel))?;
        ix.add_file(&rel.to_string_lossy().replace('\\', "/"), &src);
    }
    Ok(ix)
}

/// One pass's result: findings after allowlist application, plus any
/// allowlist problems.
#[derive(Debug, Default)]
pub struct PassReport {
    /// Pass name.
    pub pass: String,
    /// The allowlist file consulted (may not exist — then empty).
    pub allowlist_path: PathBuf,
    /// Findings not covered by the allowlist.
    pub unsuppressed: Vec<Finding>,
    /// Findings suppressed, with the justification that covered them.
    pub suppressed: Vec<(Finding, String)>,
    /// Stale allowlist entries (matched nothing).
    pub stale: Vec<allowlist::Entry>,
    /// Structural allowlist errors (bad class, missing justification).
    pub allowlist_errors: Vec<allowlist::AllowlistError>,
}

impl PassReport {
    /// Whether this pass is clean.
    pub fn is_clean(&self) -> bool {
        self.unsuppressed.is_empty() && self.stale.is_empty() && self.allowlist_errors.is_empty()
    }
}

/// A full lint run over the selected passes.
#[derive(Debug, Default)]
pub struct Report {
    /// Files scanned.
    pub files: usize,
    /// Functions indexed.
    pub fns: usize,
    /// Per-pass results, in selection order.
    pub passes: Vec<PassReport>,
}

impl Report {
    /// Whether the whole run is clean (gates CI).
    pub fn is_clean(&self) -> bool {
        self.passes.iter().all(PassReport::is_clean)
    }

    /// JSON rendering of the run: scan counts, per-pass findings
    /// (unsuppressed), suppression/stale/error counts, and the clean
    /// verdict. The findings artifact CI uploads.
    pub fn to_json(&self) -> String {
        let passes: Vec<String> = self
            .passes
            .iter()
            .map(|p| {
                format!(
                    "{{\"pass\":\"{}\",\"unsuppressed\":{},\"suppressed\":{},\"stale\":{},\"allowlist_errors\":{},\"clean\":{}}}",
                    p.pass,
                    findings::findings_to_json(&p.unsuppressed),
                    p.suppressed.len(),
                    p.stale.len(),
                    p.allowlist_errors.len(),
                    p.is_clean()
                )
            })
            .collect();
        format!(
            "{{\"files\":{},\"fns\":{},\"clean\":{},\"passes\":[{}]}}",
            self.files,
            self.fns,
            self.is_clean(),
            passes.join(",")
        )
    }
}

/// Resolves a `--pass` argument to the passes to run (`"all"` selects
/// the full registry, in canonical order).
pub fn select_passes(name: &str) -> Option<Vec<Box<dyn Pass>>> {
    if name == "all" {
        return Some(pass::all_passes());
    }
    pass::by_name(name).map(|p| vec![p])
}

/// Runs `passes` over the workspace at `root`. Each pass's allowlist
/// is its default path under `root`, unless `allowlist_override` is
/// given (the CLI only permits an override with a single selected
/// pass). A missing allowlist file is treated as empty.
pub fn run(
    root: &Path,
    passes: &[Box<dyn Pass>],
    allowlist_override: Option<&Path>,
) -> std::io::Result<Report> {
    let ix = index_workspace(root)?;
    let mut report = Report {
        files: ix.files.len(),
        fns: ix.fns.len(),
        passes: Vec::with_capacity(passes.len()),
    };
    for p in passes {
        let findings = p.analyze(&ix);
        let path = allowlist_override
            .map(Path::to_path_buf)
            .unwrap_or_else(|| root.join(p.default_allowlist()));
        let (entries, allowlist_errors) = if path.exists() {
            allowlist::parse(&std::fs::read_to_string(&path)?, p.classes())
        } else {
            (Vec::new(), Vec::new())
        };
        let applied = allowlist::apply(findings, &entries);
        report.passes.push(PassReport {
            pass: p.name().to_string(),
            allowlist_path: path,
            unsuppressed: applied.unsuppressed,
            suppressed: applied
                .suppressed
                .into_iter()
                .map(|(f, i)| (f, entries[i].justification.clone()))
                .collect(),
            stale: applied.stale,
            allowlist_errors,
        });
    }
    Ok(report)
}
