//! The committed per-pass allowlists (`ci/ctlint_allow.toml`,
//! `ci/determinism_allow.toml`, `ci/panic_allow.toml`): audited sites
//! and other justified exceptions.
//!
//! Format — a TOML subset parsed by hand (the workspace is
//! dependency-free): an array of `[[allow]]` tables whose values are
//! all strings.
//!
//! ```toml
//! [[allow]]
//! class = "vartime-call"             # finding class (required)
//! file = "crates/p256/src/ecdsa.rs"  # scanned file (required)
//! context = "verify_with"            # enclosing fn / struct (required)
//! ident = "multi_scalar_mul"         # callee / binding (optional)
//! justification = "u1, u2 and Q are public in ECDSA verification"
//! ```
//!
//! The `class` key must belong to the owning pass's vocabulary
//! ([`crate::pass::Pass::classes`]). Every entry must carry a
//! non-empty `justification`, and every entry must suppress at least
//! one live finding — a stale entry (the code it excused was removed
//! or renamed) fails the lint, so an allowlist can only shrink in step
//! with the code.

use crate::findings::Finding;

/// One `[[allow]]` entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Finding class this entry suppresses (validated against the
    /// owning pass's vocabulary at parse time).
    pub class: String,
    /// Relative file path (exact match against the finding).
    pub file: String,
    /// Enclosing function (simple or `Type::name`) or struct name.
    pub context: String,
    /// Optional identifier (callee / tainted binding / field).
    pub ident: Option<String>,
    /// Why this site is allowed to stay.
    pub justification: String,
    /// 1-based line of the entry in the allowlist file.
    pub line: u32,
}

impl Entry {
    /// Whether this entry suppresses `f`.
    pub fn matches(&self, f: &Finding) -> bool {
        self.class == f.class
            && self.file == f.file
            && (self.context == f.context || f.context.ends_with(&format!("::{}", self.context)))
            && self.ident.as_ref().is_none_or(|i| *i == f.ident)
    }
}

/// A problem with the allowlist itself (parse error, bad class,
/// missing justification, stale entry).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowlistError {
    /// 1-based line in the allowlist file.
    pub line: u32,
    /// What is wrong.
    pub message: String,
}

/// A partially parsed `[[allow]]` table: its start line plus the
/// `(key, value, line)` triples seen so far.
type RawEntry = (u32, Vec<(String, String, u32)>);

/// Parses an allowlist, validating each `class` against
/// `valid_classes` (the owning pass's vocabulary). Returns entries
/// plus any structural errors (errors do not abort parsing — the
/// caller reports them all).
pub fn parse(src: &str, valid_classes: &[&str]) -> (Vec<Entry>, Vec<AllowlistError>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    let mut cur: Option<RawEntry> = None;

    let flush =
        |cur: &mut Option<RawEntry>, entries: &mut Vec<Entry>, errors: &mut Vec<AllowlistError>| {
            let Some((start, kvs)) = cur.take() else {
                return;
            };
            let get = |k: &str| {
                kvs.iter()
                    .find(|(key, _, _)| key == k)
                    .map(|(_, v, _)| v.clone())
            };
            let class = match get("class") {
                Some(c) if valid_classes.contains(&c.as_str()) => c,
                other => {
                    errors.push(AllowlistError {
                        line: start,
                        message: format!(
                            "entry needs a valid `class` for this pass ({}), got {:?}",
                            valid_classes.join(", "),
                            other.unwrap_or_default()
                        ),
                    });
                    return;
                }
            };
            let (Some(file), Some(context)) = (get("file"), get("context")) else {
                errors.push(AllowlistError {
                    line: start,
                    message: "entry needs `file` and `context`".into(),
                });
                return;
            };
            let justification = get("justification").unwrap_or_default();
            if justification.trim().is_empty() {
                errors.push(AllowlistError {
                    line: start,
                    message: format!("entry for `{context}` has no justification"),
                });
                return;
            }
            entries.push(Entry {
                class,
                file,
                context,
                ident: get("ident"),
                justification,
                line: start,
            });
        };

    for (lineno, raw) in src.lines().enumerate() {
        let line = strip_comment(raw).trim().to_string();
        let n = lineno as u32 + 1;
        if line.is_empty() {
            continue;
        }
        if line == "[[allow]]" {
            flush(&mut cur, &mut entries, &mut errors);
            cur = Some((n, Vec::new()));
            continue;
        }
        if line.starts_with('[') {
            flush(&mut cur, &mut entries, &mut errors);
            errors.push(AllowlistError {
                line: n,
                message: format!("unexpected table `{line}` (only [[allow]] is supported)"),
            });
            continue;
        }
        match (&mut cur, parse_kv(&line)) {
            (Some((_, kvs)), Some((k, v))) => kvs.push((k, v, n)),
            (None, Some(_)) => errors.push(AllowlistError {
                line: n,
                message: "key outside any [[allow]] entry".into(),
            }),
            (_, None) => errors.push(AllowlistError {
                line: n,
                message: format!("cannot parse line: {line}"),
            }),
        }
    }
    flush(&mut cur, &mut entries, &mut errors);
    (entries, errors)
}

/// Strips a `#` comment that is not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Parses `key = "value"`.
fn parse_kv(line: &str) -> Option<(String, String)> {
    let (k, v) = line.split_once('=')?;
    let v = v.trim();
    if v.len() < 2 || !v.starts_with('"') || !v.ends_with('"') {
        return None;
    }
    Some((
        k.trim().to_string(),
        v[1..v.len() - 1].replace("\\\"", "\""),
    ))
}

/// The result of applying an allowlist to a set of findings.
#[derive(Debug, Default)]
pub struct Applied {
    /// Findings not suppressed by any entry.
    pub unsuppressed: Vec<Finding>,
    /// `(finding, entry index)` for suppressed findings.
    pub suppressed: Vec<(Finding, usize)>,
    /// Entries that suppressed nothing (stale).
    pub stale: Vec<Entry>,
}

/// Applies `entries` to `findings`.
pub fn apply(findings: Vec<Finding>, entries: &[Entry]) -> Applied {
    let mut hits = vec![0usize; entries.len()];
    let mut out = Applied::default();
    for f in findings {
        match entries.iter().position(|e| e.matches(&f)) {
            Some(i) => {
                hits[i] += 1;
                out.suppressed.push((f, i));
            }
            None => out.unsuppressed.push(f),
        }
    }
    for (i, e) in entries.iter().enumerate() {
        if hits[i] == 0 {
            out.stale.push(e.clone());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const VALID: &[&str] = &["vartime-call", "missing-zeroize", "nonct-eq"];

    const SAMPLE: &str = r#"
# audited sites
[[allow]]
class = "vartime-call"
file = "crates/x/src/a.rs"
context = "verify"
ident = "mul_vartime"
justification = "inputs are public"

[[allow]]
class = "missing-zeroize"
file = "crates/x/src/b.rs"
context = "Signature"
justification = "signature components are public"
"#;

    #[test]
    fn parses_entries() {
        let (entries, errors) = parse(SAMPLE, VALID);
        assert!(errors.is_empty(), "{errors:?}");
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].class, "vartime-call");
        assert_eq!(entries[0].ident.as_deref(), Some("mul_vartime"));
    }

    #[test]
    fn rejects_missing_justification() {
        let (_e, errors) = parse(
            "[[allow]]\nclass = \"nonct-eq\"\nfile = \"f\"\ncontext = \"c\"\n",
            VALID,
        );
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("justification"));
    }

    #[test]
    fn rejects_class_outside_pass_vocabulary() {
        let (_e, errors) = parse(
            "[[allow]]\nclass = \"panic-unwrap\"\nfile = \"f\"\ncontext = \"c\"\n\
             justification = \"wrong pass\"\n",
            VALID,
        );
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("valid `class`"));
    }

    #[test]
    fn matches_qualified_contexts() {
        let (entries, _) = parse(SAMPLE, VALID);
        let f = Finding {
            file: "crates/x/src/a.rs".into(),
            line: 10,
            pass: "secret-flow".into(),
            class: "vartime-call".into(),
            context: "Ecdsa::verify".into(),
            ident: "mul_vartime".into(),
            message: String::new(),
            chain: Vec::new(),
        };
        assert!(entries[0].matches(&f));
    }

    #[test]
    fn stale_entries_surface() {
        let (entries, _) = parse(SAMPLE, VALID);
        let applied = apply(Vec::new(), &entries);
        assert_eq!(applied.stale.len(), 2);
    }
}
