//! The shared name-resolved call graph and reachability engine.
//!
//! Calls are resolved by simple name against the whole-workspace index
//! — an over-approximation (ambiguous names connect to every
//! candidate) that errs toward flagging; per-pass allowlists record
//! the audited exceptions. Reachability is a BFS from a pass-chosen
//! root set, with parent pointers retained so every finding can carry
//! a root-first call chain as reviewable evidence.

use crate::index::{FnItem, Index};
use crate::lexer::{Tok, TokKind};
use std::collections::HashMap;

/// The call graph over one [`Index`].
pub struct CallGraph {
    /// Simple fn name → indices into [`Index::fns`].
    by_name: HashMap<String, Vec<usize>>,
    /// Per-fn `(callee simple name, line)` call sites, parallel to
    /// [`Index::fns`].
    pub calls: Vec<Vec<(String, u32)>>,
}

/// The result of a reachability sweep: the cone and its BFS tree.
pub struct Reach {
    /// Whether fn `i` is in the cone, parallel to [`Index::fns`].
    pub reachable: Vec<bool>,
    /// BFS parent of fn `i` (`None` for roots and unreached fns).
    parent: Vec<Option<usize>>,
}

impl CallGraph {
    /// Builds the graph for `ix`.
    pub fn build(ix: &Index) -> Self {
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, f) in ix.fns.iter().enumerate() {
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        let calls = ix.fns.iter().map(|f| call_sites(&f.body)).collect();
        CallGraph { by_name, calls }
    }

    /// BFS from every fn where `seed` holds, following edges out of a
    /// fn only while `follow` holds for it (the secret-flow pass stops
    /// at the vartime boundary; the determinism/panic passes follow
    /// everything).
    pub fn reach(
        &self,
        ix: &Index,
        seed: impl Fn(&FnItem) -> bool,
        follow: impl Fn(&FnItem) -> bool,
    ) -> Reach {
        let mut reachable: Vec<bool> = ix.fns.iter().map(&seed).collect();
        let mut parent: Vec<Option<usize>> = vec![None; ix.fns.len()];
        // Visit in index order (a queue, not a stack) so parent chains
        // are shortest paths — the most readable evidence.
        let mut queue: std::collections::VecDeque<usize> = reachable
            .iter()
            .enumerate()
            .filter_map(|(i, &r)| r.then_some(i))
            .collect();
        while let Some(i) = queue.pop_front() {
            if !follow(&ix.fns[i]) {
                continue;
            }
            for (callee, _) in &self.calls[i] {
                if let Some(targets) = self.by_name.get(callee.as_str()) {
                    for &t in targets {
                        if !reachable[t] {
                            reachable[t] = true;
                            parent[t] = Some(i);
                            queue.push_back(t);
                        }
                    }
                }
            }
        }
        Reach { reachable, parent }
    }
}

impl Reach {
    /// The root-first chain of qualified fn names ending at fn `i`
    /// (just `[qual_i]` when `i` is itself a root). Empty when `i` is
    /// not in the cone.
    pub fn chain(&self, ix: &Index, i: usize) -> Vec<String> {
        if !self.reachable.get(i).copied().unwrap_or(false) {
            return Vec::new();
        }
        let mut rev = vec![ix.fns[i].qual.clone()];
        let mut cur = i;
        while let Some(p) = self.parent[cur] {
            rev.push(ix.fns[p].qual.clone());
            cur = p;
        }
        rev.reverse();
        rev
    }
}

/// Extracts `(callee simple name, line)` pairs from body tokens: an
/// identifier directly followed by `(`, or via turbofish `::<T>(`.
/// Macro invocations (`name!(…)`) are not calls, but their arguments
/// are scanned like any other tokens.
pub fn call_sites(body: &[Tok]) -> Vec<(String, u32)> {
    let sig: Vec<&Tok> = body.iter().filter(|t| !t.is_comment()).collect();
    let mut out = Vec::new();
    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // Keywords never name calls.
        if matches!(
            t.text.as_str(),
            "if" | "while"
                | "match"
                | "for"
                | "return"
                | "let"
                | "fn"
                | "move"
                | "in"
                | "as"
                | "loop"
                | "else"
                | "break"
                | "continue"
                | "unsafe"
                | "mut"
                | "ref"
                | "where"
        ) {
            continue;
        }
        let mut j = i + 1;
        // `name!` is a macro, not a call.
        if sig.get(j).map(|n| n.is_punct("!")).unwrap_or(false) {
            continue;
        }
        // Turbofish: name::<...>(
        if sig.get(j).map(|n| n.is_punct("::")).unwrap_or(false)
            && sig.get(j + 1).map(|n| n.is_punct("<")).unwrap_or(false)
        {
            let mut depth = 0i32;
            let mut k = j + 1;
            while k < sig.len() {
                if sig[k].is_punct("<") {
                    depth += 1;
                } else if sig[k].is_punct(">") || sig[k].is_punct(">>") {
                    depth -= if sig[k].is_punct(">>") { 2 } else { 1 };
                    if depth <= 0 {
                        break;
                    }
                }
                k += 1;
            }
            j = k + 1;
        }
        if sig.get(j).map(|n| n.is_punct("(")).unwrap_or(false) {
            // Skip path prefixes: in `a::b(…)` only `b` is the callee;
            // `i` already points at the segment before `(`.
            out.push((t.text.clone(), t.line));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_root_first() {
        let mut ix = Index::default();
        ix.add_file(
            "t.rs",
            "fn root() { a(); }\nfn a() { b(); }\nfn b() {}\nfn other() {}\n",
        );
        let cg = CallGraph::build(&ix);
        let reach = cg.reach(&ix, |f| f.name == "root", |_| true);
        let b = ix.fns.iter().position(|f| f.name == "b").unwrap();
        assert_eq!(reach.chain(&ix, b), vec!["root", "a", "b"]);
        let other = ix.fns.iter().position(|f| f.name == "other").unwrap();
        assert!(!reach.reachable[other]);
        assert!(reach.chain(&ix, other).is_empty());
    }

    #[test]
    fn follow_predicate_stops_propagation() {
        let mut ix = Index::default();
        ix.add_file(
            "t.rs",
            "fn root() { stop(); }\nfn stop() { hidden(); }\nfn hidden() {}\n",
        );
        let cg = CallGraph::build(&ix);
        let reach = cg.reach(&ix, |f| f.name == "root", |f| f.name != "stop");
        let stop = ix.fns.iter().position(|f| f.name == "stop").unwrap();
        let hidden = ix.fns.iter().position(|f| f.name == "hidden").unwrap();
        assert!(reach.reachable[stop]);
        assert!(!reach.reachable[hidden]);
    }
}
