//! Secrecy taint analysis over the item index.
//!
//! **Seeding.** A binding is tainted when its type mentions a marker
//! type (`Scalar`, `KeyPair`, `SessionKey`, `Zeroizing` by default —
//! the types PRs 3 and 5 built the constant-time machinery for) or it
//! carries a `// ct-secret` annotation. A function is a *secret
//! context* when it binds tainted state: a marker-typed parameter, a
//! `self` whose type is a marker or holds a tainted field, a
//! marker-typed return (it manufactures secrets), or a `// ct-secret`
//! annotation.
//!
//! **Propagation.** For the vartime-reachability check, secrecy flows
//! through the call graph: every function transitively callable from a
//! secret context is treated as operating under secret-derived state.
//! Calls are resolved by simple name against the whole-workspace index
//! (an over-approximation — ambiguous names connect to every
//! candidate — which errs toward flagging; the allowlist records the
//! audited exceptions).
//!
//! **Finding classes.**
//! 1. `vartime-call` — a call to a `*_vartime` / `// ct-vartime`
//!    function from a function in the secret-reachable set (the
//!    vartime family's own bodies are the audited boundary and are
//!    exempt).
//! 2. `secret-branch` — an `if`/`while`/`match` condition or array
//!    index that mentions a tainted binding inside a secret context
//!    (early returns under such a condition are the same finding).
//! 3. `nonct-eq` — `==`/`!=` with a tainted operand inside a secret
//!    context instead of `ecq_crypto::ct::eq`.
//! 4. `missing-zeroize` — a struct holding tainted fields where
//!    neither the struct (via `Drop`/`Zeroize`) nor every tainted
//!    field's own type wipes itself on drop.

use crate::index::{FnItem, Index};
use crate::lexer::{Tok, TokKind};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Default marker types seeding the taint analysis.
pub const DEFAULT_MARKERS: &[&str] = &["Scalar", "KeyPair", "SessionKey", "Zeroizing"];

/// The four finding classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Class {
    /// Variable-time call reachable from a secret context.
    VartimeCall,
    /// Secret-dependent branch, loop, match or array index.
    SecretBranch,
    /// Non-constant-time equality on tainted data.
    NonCtEq,
    /// Secret-holding struct without zeroize-on-drop.
    MissingZeroize,
}

impl Class {
    /// The class name used in reports and the allowlist.
    pub fn name(self) -> &'static str {
        match self {
            Class::VartimeCall => "vartime-call",
            Class::SecretBranch => "secret-branch",
            Class::NonCtEq => "nonct-eq",
            Class::MissingZeroize => "missing-zeroize",
        }
    }

    /// Parses a class name (as spelled in the allowlist).
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "vartime-call" => Some(Class::VartimeCall),
            "secret-branch" => Some(Class::SecretBranch),
            "nonct-eq" => Some(Class::NonCtEq),
            "missing-zeroize" => Some(Class::MissingZeroize),
            _ => None,
        }
    }
}

/// One finding.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Scanned file (relative path).
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Class.
    pub class: Class,
    /// Enclosing function (qualified) or struct name.
    pub context: String,
    /// The specific identifier involved (callee, tainted binding or
    /// field name).
    pub ident: String,
    /// Human-readable description.
    pub message: String,
}

/// Analysis configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Marker type names seeding taint.
    pub markers: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            markers: DEFAULT_MARKERS.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// Runs all four checks over an index. Findings are sorted by
/// (file, line, class).
pub fn analyze(ix: &Index, cfg: &Config) -> Vec<Finding> {
    let markers: HashSet<&str> = cfg.markers.iter().map(String::as_str).collect();
    let mentions_marker = |ty: &str| ty.split_whitespace().any(|w| markers.contains(w));

    // Struct-level taint: which structs hold tainted fields.
    let mut tainted_fields: HashMap<&str, Vec<&crate::index::Field>> = HashMap::new();
    for s in &ix.structs {
        let tf: Vec<_> = s
            .fields
            .iter()
            .filter(|f| f.ct_secret || mentions_marker(&f.ty))
            .collect();
        if !tf.is_empty() || s.ct_secret {
            tainted_fields.insert(s.name.as_str(), tf);
        }
    }

    // Secret contexts (direct seeding).
    let is_secret = |f: &FnItem| -> bool {
        if f.ct_secret {
            return true;
        }
        // A `// ct-secret` annotation on a `let` inside the body makes
        // the whole function a secret context.
        if f.body.iter().any(|t| t.is_annotation("ct-secret")) {
            return true;
        }
        if f.params.iter().any(|p| mentions_marker(&p.ty)) {
            return true;
        }
        if mentions_marker(&f.ret) {
            return true;
        }
        if f.has_self {
            if let Some(st) = &f.self_type {
                if markers.contains(st.as_str()) || tainted_fields.contains_key(st.as_str()) {
                    return true;
                }
            }
        }
        false
    };

    // Call graph by simple name.
    let by_name: HashMap<&str, Vec<usize>> = {
        let mut m: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, f) in ix.fns.iter().enumerate() {
            m.entry(f.name.as_str()).or_default().push(i);
        }
        m
    };
    let calls: Vec<Vec<(String, u32)>> = ix.fns.iter().map(|f| call_sites(&f.body)).collect();

    // Vartime family: every *_vartime / ct-vartime fn name.
    let vartime_names: HashSet<&str> = ix
        .fns
        .iter()
        .filter(|f| f.vartime)
        .map(|f| f.name.as_str())
        .collect();

    // Reachability: BFS from secret contexts through the call graph.
    // Edges out of vartime-family functions are not followed — their
    // bodies are the audited boundary.
    let mut reachable: Vec<bool> = ix.fns.iter().map(is_secret).collect();
    let mut work: Vec<usize> = reachable
        .iter()
        .enumerate()
        .filter_map(|(i, &r)| r.then_some(i))
        .collect();
    while let Some(i) = work.pop() {
        if ix.fns[i].vartime {
            continue;
        }
        for (callee, _) in &calls[i] {
            if let Some(targets) = by_name.get(callee.as_str()) {
                for &t in targets {
                    if !reachable[t] {
                        reachable[t] = true;
                        work.push(t);
                    }
                }
            }
        }
    }

    let mut findings = Vec::new();

    // Class 1: vartime calls from the secret-reachable set.
    for (i, f) in ix.fns.iter().enumerate() {
        if !reachable[i] || f.vartime {
            continue;
        }
        for (callee, line) in &calls[i] {
            let is_vartime_call =
                callee.ends_with("_vartime") || vartime_names.contains(callee.as_str());
            if is_vartime_call {
                findings.push(Finding {
                    file: ix.files[f.file].clone(),
                    line: *line,
                    class: Class::VartimeCall,
                    context: f.qual.clone(),
                    ident: callee.clone(),
                    message: format!(
                        "`{}` calls variable-time `{}` while reachable from a secret context",
                        f.qual, callee
                    ),
                });
            }
        }
    }

    // Classes 2 and 3: token scans of secret-context bodies.
    for f in ix.fns.iter() {
        if f.vartime || !is_secret(f) {
            continue;
        }
        let tainted = tainted_bindings(f, &markers, &tainted_fields, &mentions_marker);
        if tainted.is_empty() {
            continue;
        }
        scan_body(f, &ix.files[f.file], &tainted, &mut findings);
    }

    // Class 4: secret-holding structs without zeroize-on-drop.
    let wipes: HashSet<&str> = ix
        .drop_impls
        .iter()
        .chain(ix.zeroize_impls.iter())
        .map(String::as_str)
        .collect();
    for s in &ix.structs {
        let Some(tf) = tainted_fields.get(s.name.as_str()) else {
            continue;
        };
        if wipes.contains(s.name.as_str()) {
            continue;
        }
        // Safe containment: every tainted field's own type wipes
        // itself on drop (`Zeroizing<…>` or a type with Drop/Zeroize).
        let self_wiping = |ty: &str| {
            ty.split_whitespace()
                .any(|w| w == "Zeroizing" || wipes.contains(w))
        };
        if !tf.is_empty() && tf.iter().all(|f| self_wiping(&f.ty)) {
            continue;
        }
        let culprit = tf
            .iter()
            .find(|f| !self_wiping(&f.ty))
            .map(|f| f.name.clone())
            .unwrap_or_default();
        findings.push(Finding {
            file: ix.files[s.file].clone(),
            line: s.line,
            class: Class::MissingZeroize,
            context: s.name.clone(),
            ident: culprit.clone(),
            message: format!(
                "struct `{}` holds secret field `{}` but has no Drop/Zeroize impl",
                s.name, culprit
            ),
        });
    }

    // A `nonct-eq` on a line shadows the `secret-branch` the same
    // condition would also raise — keep the more specific class.
    let eq_lines: HashSet<(String, u32)> = findings
        .iter()
        .filter(|f| f.class == Class::NonCtEq)
        .map(|f| (f.file.clone(), f.line))
        .collect();
    findings.retain(|f| {
        f.class != Class::SecretBranch || !eq_lines.contains(&(f.file.clone(), f.line))
    });

    findings.sort();
    findings.dedup();
    findings
}

/// Extracts `(callee simple name, line)` pairs from body tokens: an
/// identifier directly followed by `(`, or via turbofish `::<T>(`.
/// Macro invocations (`name!(…)`) are not calls, but their arguments
/// are scanned like any other tokens.
fn call_sites(body: &[Tok]) -> Vec<(String, u32)> {
    let sig: Vec<&Tok> = body.iter().filter(|t| !t.is_comment()).collect();
    let mut out = Vec::new();
    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        // Keywords never name calls.
        if matches!(
            t.text.as_str(),
            "if" | "while"
                | "match"
                | "for"
                | "return"
                | "let"
                | "fn"
                | "move"
                | "in"
                | "as"
                | "loop"
                | "else"
                | "break"
                | "continue"
                | "unsafe"
                | "mut"
                | "ref"
                | "where"
        ) {
            continue;
        }
        let mut j = i + 1;
        // `name!` is a macro, not a call.
        if sig.get(j).map(|n| n.is_punct("!")).unwrap_or(false) {
            continue;
        }
        // Turbofish: name::<...>(
        if sig.get(j).map(|n| n.is_punct("::")).unwrap_or(false)
            && sig.get(j + 1).map(|n| n.is_punct("<")).unwrap_or(false)
        {
            let mut depth = 0i32;
            let mut k = j + 1;
            while k < sig.len() {
                if sig[k].is_punct("<") {
                    depth += 1;
                } else if sig[k].is_punct(">") || sig[k].is_punct(">>") {
                    depth -= if sig[k].is_punct(">>") { 2 } else { 1 };
                    if depth <= 0 {
                        break;
                    }
                }
                k += 1;
            }
            j = k + 1;
        }
        if sig.get(j).map(|n| n.is_punct("(")).unwrap_or(false) {
            // Skip path prefixes: in `a::b(…)` only `b` is the callee;
            // `i` already points at the segment before `(`.
            out.push((t.text.clone(), t.line));
        }
    }
    out
}

/// The tainted binding names visible in a function body.
fn tainted_bindings(
    f: &FnItem,
    markers: &HashSet<&str>,
    tainted_fields: &HashMap<&str, Vec<&crate::index::Field>>,
    mentions_marker: &dyn Fn(&str) -> bool,
) -> BTreeSet<String> {
    let mut tainted = BTreeSet::new();
    for p in &f.params {
        if mentions_marker(&p.ty) {
            for n in &p.names {
                tainted.insert(n.clone());
            }
        }
    }
    if f.has_self {
        if let Some(st) = &f.self_type {
            if markers.contains(st.as_str()) {
                tainted.insert("self".to_string());
            }
            if let Some(tf) = tainted_fields.get(st.as_str()) {
                // Approximation: the field names themselves — catches
                // `self.key`-style accesses in conditions.
                for field in tf {
                    tainted.insert(field.name.clone());
                }
            }
        }
    }
    // `let` bindings with an explicit marker type or a ct-secret
    // comment on the same or preceding line.
    let secret_lines: HashSet<u32> = f
        .body
        .iter()
        .filter(|t| t.is_annotation("ct-secret"))
        .map(|t| t.line)
        .collect();
    let sig: Vec<&Tok> = f.body.iter().filter(|t| !t.is_comment()).collect();
    for (i, t) in sig.iter().enumerate() {
        if !t.is_ident("let") {
            continue;
        }
        // Pattern: next idents up to `:`/`=` are the binding names.
        let mut names = Vec::new();
        let mut ty = Vec::new();
        let mut in_ty = false;
        let mut depth = 0i32;
        for s in sig.iter().skip(i + 1) {
            if s.is_punct("(") || s.is_punct("[") || s.is_punct("<") {
                depth += 1;
            } else if s.is_punct(")") || s.is_punct("]") || s.is_punct(">") {
                depth -= 1;
            } else if (s.is_punct("=") || s.is_punct(";")) && depth <= 0 {
                break;
            } else if s.is_punct(":") && depth <= 0 {
                in_ty = true;
                continue;
            }
            if s.kind == TokKind::Ident && s.text != "mut" && s.text != "ref" {
                if in_ty {
                    ty.push(s.text.clone());
                } else {
                    names.push(s.text.clone());
                }
            }
        }
        let annotated =
            secret_lines.contains(&t.line) || secret_lines.contains(&t.line.saturating_sub(1));
        let marked_ty = ty.iter().any(|w| markers.contains(w.as_str()));
        if annotated || marked_ty {
            for n in names {
                tainted.insert(n);
            }
        }
    }
    tainted
}

/// Scans one secret-context body for classes 2 and 3.
fn scan_body(f: &FnItem, file: &str, tainted: &BTreeSet<String>, findings: &mut Vec<Finding>) {
    let sig: Vec<&Tok> = f.body.iter().filter(|t| !t.is_comment()).collect();
    let is_tainted = |t: &Tok| t.kind == TokKind::Ident && tainted.contains(&t.text);

    let mut i = 0usize;
    while i < sig.len() {
        let t = sig[i];
        // Conditions: if / while / match up to the opening `{`.
        if t.is_ident("if") || t.is_ident("while") || t.is_ident("match") {
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut culprit: Option<&Tok> = None;
            while j < sig.len() {
                let s = sig[j];
                if s.is_punct("(") || s.is_punct("[") {
                    depth += 1;
                } else if s.is_punct(")") || s.is_punct("]") {
                    depth -= 1;
                } else if s.is_punct("{") && depth <= 0 {
                    break;
                }
                if culprit.is_none() && is_tainted(s) {
                    culprit = Some(s);
                }
                j += 1;
            }
            if let Some(c) = culprit {
                findings.push(Finding {
                    file: file.to_string(),
                    line: c.line,
                    class: Class::SecretBranch,
                    context: f.qual.clone(),
                    ident: c.text.clone(),
                    message: format!(
                        "`{}` branches (`{}`) on secret-derived `{}`",
                        f.qual, t.text, c.text
                    ),
                });
            }
            i = j;
            continue;
        }
        // Array indexing by a tainted value: `expr [ … tainted … ]`
        // where `[` follows an ident/`)`/`]` (i.e. an index, not an
        // array literal).
        if t.is_punct("[") && i > 0 {
            let prev = sig[i - 1];
            let indexing = prev.kind == TokKind::Ident && !is_keyword(&prev.text)
                || prev.is_punct(")")
                || prev.is_punct("]");
            if indexing {
                let mut depth = 1i32;
                let mut j = i + 1;
                let mut culprit: Option<&Tok> = None;
                while j < sig.len() && depth > 0 {
                    let s = sig[j];
                    if s.is_punct("[") {
                        depth += 1;
                    } else if s.is_punct("]") {
                        depth -= 1;
                    }
                    if culprit.is_none() && is_tainted(s) {
                        culprit = Some(s);
                    }
                    j += 1;
                }
                if let Some(c) = culprit {
                    findings.push(Finding {
                        file: file.to_string(),
                        line: c.line,
                        class: Class::SecretBranch,
                        context: f.qual.clone(),
                        ident: c.text.clone(),
                        message: format!(
                            "`{}` indexes by secret-derived `{}` (cache-line leak)",
                            f.qual, c.text
                        ),
                    });
                    i = j;
                    continue;
                }
            }
        }
        // Non-ct equality: `==` / `!=` with a tainted operand nearby.
        if t.is_punct("==") || t.is_punct("!=") {
            let lo = i.saturating_sub(6);
            let hi = (i + 7).min(sig.len());
            if let Some(c) = sig[lo..hi].iter().find(|s| is_tainted(s)) {
                findings.push(Finding {
                    file: file.to_string(),
                    line: t.line,
                    class: Class::NonCtEq,
                    context: f.qual.clone(),
                    ident: c.text.clone(),
                    message: format!(
                        "`{}` compares secret-derived `{}` with `{}` (use ecq_crypto::ct::eq)",
                        f.qual, c.text, t.text
                    ),
                });
            }
        }
        i += 1;
    }
}

/// Keywords that can precede `[` without it being an index expression.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return" | "break" | "in" | "else" | "match" | "if" | "while" | "loop" | "let" | "mut"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let mut ix = Index::default();
        ix.add_file("t.rs", src);
        analyze(&ix, &Config::default())
    }

    #[test]
    fn flags_vartime_call_from_secret_context() {
        let f = run("fn mul_vartime(k: u8) {}\nfn sign(d: &Scalar) { mul_vartime(3); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].class, Class::VartimeCall);
        assert_eq!(f[0].context, "sign");
    }

    #[test]
    fn flags_transitive_vartime_reachability() {
        let f = run(
            "fn mul_vartime(k: u8) {}\nfn helper(x: u8) { mul_vartime(x); }\n\
             fn sign(d: &Scalar) { helper(1); }\n",
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].context, "helper");
    }

    #[test]
    fn vartime_bodies_are_exempt() {
        let f =
            run("fn inner_vartime(k: u8) {}\nfn outer_vartime(k: &Scalar) { inner_vartime(1); }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn flags_secret_branch_and_index() {
        let f = run("fn process(k: &Scalar, table: &[u8]) -> u8 {\n\
                 if k.is_zero() { return 0; }\n\
                 table[k.low_bits()]\n\
             }\n");
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.class == Class::SecretBranch));
    }

    #[test]
    fn flags_nonct_eq_not_branch_on_same_line() {
        let f = run("fn check(pm: &Zeroizing<[u8; 32]>, other: &[u8; 32]) -> bool { pm.as_ref() == other }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].class, Class::NonCtEq);
    }

    #[test]
    fn flags_missing_zeroize_and_accepts_drop() {
        let f = run("struct Bad { d: Scalar }\nstruct Good { d: Scalar }\nimpl Drop for Good { fn drop(&mut self) {} }\nimpl Drop for Scalar { fn drop(&mut self) {} }\n");
        // `Bad` holds a Scalar (which wipes itself) — containment is
        // safe, so only structs with genuinely unwiped fields flag.
        assert!(f.is_empty());
    }

    #[test]
    fn flags_ct_secret_field_without_wipe() {
        let f = run("struct Premaster {\n    // ct-secret\n    bytes: [u8; 32],\n}\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].class, Class::MissingZeroize);
        assert_eq!(f[0].context, "Premaster");
    }

    #[test]
    fn ct_secret_let_annotation_taints() {
        let f = run("fn kdf(seed: &[u8]) -> u8 {\n\
                 // ct-secret\n\
                 let k = expand(seed);\n\
                 if k > 3 { 1 } else { 0 }\n\
             }\n// ct-secret\nfn expand(s: &[u8]) -> u8 { 0 }\n");
        assert!(f
            .iter()
            .any(|x| x.class == Class::SecretBranch && x.ident == "k"));
    }
}
