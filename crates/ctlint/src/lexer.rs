//! A token-level Rust lexer.
//!
//! The analyzer only needs token streams — identifiers, punctuation,
//! literals and comments, each with a line number — not a full syntax
//! tree, so this is a small hand-rolled scanner (the container is
//! offline; no `syn`). It must never panic: `tests/proptest_lexer.rs`
//! feeds it arbitrary byte soup. Unterminated strings or comments are
//! closed implicitly at end of input.

/// What kind of token a [`Tok`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`fn`, `Scalar`, `if`, …).
    Ident,
    /// A lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// A numeric literal (possibly partial: `1.5` lexes as `1 . 5`,
    /// which is enough for the analyses here).
    Num,
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// A character literal (`'x'`, `'\n'`).
    Char,
    /// A `// …` comment (text includes the slashes).
    LineComment,
    /// A `/* … */` comment (nesting handled; text includes delimiters).
    BlockComment,
    /// Punctuation, one or two characters (`{`, `==`, `->`, `::`, …).
    Punct,
}

/// One lexed token: kind, verbatim text and 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// The token's source text.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    /// Whether this token is a comment of either kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }

    /// Whether this token is exactly the punctuation `p`.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// Whether this token is exactly the identifier/keyword `w`.
    pub fn is_ident(&self, w: &str) -> bool {
        self.kind == TokKind::Ident && self.text == w
    }

    /// Whether this token is a `// <name>` lint annotation. Doc
    /// comments (`///`, `//!`, `/** */`) never count — they describe
    /// annotations without applying them — and the name must lead the
    /// comment body (so prose that merely mentions an annotation is
    /// inert).
    pub fn is_annotation(&self, name: &str) -> bool {
        let body = match self.kind {
            TokKind::LineComment => {
                let rest = self.text.trim_start_matches('/');
                // A doc comment strips to fewer leading chars removed?
                // `///x` -> "x" with 3 slashes; distinguish by count.
                if self.text.len() - rest.len() != 2 || rest.starts_with('!') {
                    return false;
                }
                rest
            }
            TokKind::BlockComment => {
                let inner = self
                    .text
                    .strip_prefix("/*")
                    .and_then(|s| s.strip_suffix("*/"))
                    .unwrap_or("");
                if inner.starts_with('*') || inner.starts_with('!') {
                    return false;
                }
                inner
            }
            _ => return false,
        };
        body.trim_start().starts_with(name)
    }
}

/// Two-character punctuation recognized as single tokens. Order does
/// not matter — the match is exact on the next two characters.
const PUNCT2: &[&str] = &[
    "==", "!=", "<=", ">=", "->", "=>", "::", "..", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=",
    "%=", "^=", "|=", "&=",
];

/// Lexes `src` into tokens. Total function: any input (including
/// invalid Rust) produces a token list without panicking.
pub fn lex(src: &str) -> Vec<Tok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;

    while i < chars.len() {
        let c = chars[i];
        let start_line = line;

        // Whitespace.
        if c.is_whitespace() {
            if c == '\n' {
                line += 1;
            }
            i += 1;
            continue;
        }

        // Comments.
        if c == '/' && i + 1 < chars.len() {
            if chars[i + 1] == '/' {
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::LineComment,
                    text: chars[start..i].iter().collect(),
                    line: start_line,
                });
                continue;
            }
            if chars[i + 1] == '*' {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '/' && i + 1 < chars.len() && chars[i + 1] == '*' {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && i + 1 < chars.len() && chars[i + 1] == '/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        if chars[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::BlockComment,
                    text: chars[start..i.min(chars.len())].iter().collect(),
                    line: start_line,
                });
                continue;
            }
        }

        // Raw strings: r"…", r#"…"#, br"…", br#"…"# (any hash count).
        if (c == 'r' || c == 'b' || c == 'c') && raw_string_start(&chars, i) {
            let start = i;
            // Skip the prefix letters.
            while i < chars.len() && chars[i] != '"' && chars[i] != '#' {
                i += 1;
            }
            let mut hashes = 0usize;
            while i < chars.len() && chars[i] == '#' {
                hashes += 1;
                i += 1;
            }
            i += 1; // opening quote
                    // Scan for `"` followed by `hashes` hashes.
            while i < chars.len() {
                if chars[i] == '"'
                    && chars[i + 1..].iter().take_while(|&&h| h == '#').count() >= hashes
                {
                    i += 1 + hashes;
                    break;
                }
                if chars[i] == '\n' {
                    line += 1;
                }
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Str,
                text: chars[start..i.min(chars.len())].iter().collect(),
                line: start_line,
            });
            continue;
        }

        // Plain and byte strings.
        if c == '"' || ((c == 'b' || c == 'c') && i + 1 < chars.len() && chars[i + 1] == '"') {
            let start = i;
            i += if c == '"' { 1 } else { 2 };
            while i < chars.len() {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            toks.push(Tok {
                kind: TokKind::Str,
                text: chars[start..i.min(chars.len())].iter().collect(),
                line: start_line,
            });
            continue;
        }

        // Char literals vs lifetimes.
        if c == '\'' {
            let start = i;
            i += 1;
            if i < chars.len() && chars[i] == '\\' {
                // Escaped char literal: consume escape then to closing quote.
                i += 2;
                while i < chars.len() && chars[i] != '\'' {
                    i += 1;
                }
                i = (i + 1).min(chars.len());
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: chars[start..i.min(chars.len())].iter().collect(),
                    line: start_line,
                });
            } else if i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                // Could be 'a' (char) or 'a (lifetime): scan the ident.
                let mut j = i;
                while j < chars.len() && (chars[j].is_alphanumeric() || chars[j] == '_') {
                    j += 1;
                }
                if j < chars.len() && chars[j] == '\'' && j == i + 1 {
                    i = j + 1;
                    toks.push(Tok {
                        kind: TokKind::Char,
                        text: chars[start..i].iter().collect(),
                        line: start_line,
                    });
                } else {
                    i = j;
                    toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: chars[start..i].iter().collect(),
                        line: start_line,
                    });
                }
            } else if i < chars.len() && chars[i] != '\'' {
                // Something like '(' — a char literal of punctuation.
                while i < chars.len() && chars[i] != '\'' && chars[i] != '\n' {
                    i += 1;
                }
                i = (i + 1).min(chars.len());
                toks.push(Tok {
                    kind: TokKind::Char,
                    text: chars[start..i.min(chars.len())].iter().collect(),
                    line: start_line,
                });
            } else {
                // Lone or doubled quote; emit as punct to make progress.
                i += 1;
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: "'".to_string(),
                    line: start_line,
                });
            }
            continue;
        }

        // Numbers (integer part only; `.` lexes separately, which the
        // analyses never need to rejoin).
        if c.is_ascii_digit() {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: chars[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }

        // Identifiers and keywords (including raw idents `r#type`).
        if c.is_alphabetic() || c == '_' {
            let start = i;
            while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                i += 1;
            }
            // Raw identifier prefix `r#ident`.
            if i == start + 1 && chars[start] == 'r' && i < chars.len() && chars[i] == '#' {
                i += 1;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::Ident,
                text: chars[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }

        // Two-char punctuation, then single char.
        if i + 1 < chars.len() {
            let two: String = chars[i..i + 2].iter().collect();
            if PUNCT2.contains(&two.as_str()) {
                i += 2;
                toks.push(Tok {
                    kind: TokKind::Punct,
                    text: two,
                    line: start_line,
                });
                continue;
            }
        }
        i += 1;
        toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line: start_line,
        });
    }
    toks
}

/// Whether position `i` (at `r`, `b` or `c`) starts a raw string:
/// the letters may be `r`, `br`, `cr` followed by `#*"`.
fn raw_string_start(chars: &[char], i: usize) -> bool {
    let mut j = i;
    // Up to two prefix letters ending in `r`.
    if chars[j] == 'b' || chars[j] == 'c' {
        j += 1;
        if j >= chars.len() || chars[j] != 'r' {
            return false;
        }
    }
    if chars[j] != 'r' {
        return false;
    }
    j += 1;
    while j < chars.len() && chars[j] == '#' {
        j += 1;
    }
    j < chars.len() && chars[j] == '"'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_idents_puncts_and_lines() {
        let toks = lex("fn foo(a: u8) -> bool {\n    a == 3\n}\n");
        assert!(toks.iter().any(|t| t.is_ident("fn")));
        assert!(toks.iter().any(|t| t.is_punct("->")));
        let eq = toks.iter().find(|t| t.is_punct("==")).unwrap();
        assert_eq!(eq.line, 2);
    }

    #[test]
    fn distinguishes_chars_and_lifetimes() {
        let toks = lex("let c = 'x'; fn f<'a>(v: &'a [u8]) {} let n = '\\n';");
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
        assert_eq!(
            toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(),
            2
        );
    }

    #[test]
    fn handles_nested_comments_and_raw_strings() {
        let toks = lex(r##"/* a /* b */ c */ let s = r#"quote " inside"#; // tail"##);
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokKind::BlockComment)
                .count(),
            1
        );
        assert_eq!(toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert_eq!(
            toks.iter()
                .filter(|t| t.kind == TokKind::LineComment)
                .count(),
            1
        );
    }

    #[test]
    fn survives_unterminated_input() {
        let _ = lex("\"unterminated");
        let _ = lex("/* never closed");
        let _ = lex("r#\"raw forever");
        let _ = lex("'");
    }
}
