//! The panic-reachability pass.
//!
//! The ROADMAP's million-device-sweep item makes abort-on-panic
//! unacceptable: one poisoned session must fail closed as a typed
//! error counted in the report, not kill a multi-hour run. This pass
//! statically enumerates every potential panic site reachable from
//! the sweep hot paths, so each is either converted to a typed
//! fail-closed error (`ProtocolError` / `CertError` already model
//! this) or carries a justified allowlist entry naming the invariant
//! that makes it unreachable.
//!
//! **Roots.** The sweep drivers (`interleaved_sweep`, `run_sweep`,
//! `run_worker`) and every `step` implementation (the `Endpoint::step`
//! message pump). The cone is the transitive closure over the shared
//! name-resolved call graph.
//!
//! **Finding classes** (anchored at the offending token, with the
//! root-first reach chain as evidence):
//! * `panic-unwrap` — `.unwrap()` / `.expect()` (and the `_err`
//!   variants). `unwrap_or*` never panics and is not flagged.
//! * `panic-macro` — `panic!` / `unreachable!` / `todo!` /
//!   `unimplemented!`. `assert!`/`debug_assert!` are deliberately
//!   excluded: they state API contracts at public boundaries and the
//!   dynamic suite exercises them.
//! * `panic-index` — `base[i]` where `base` resolves (via parameter,
//!   explicitly typed `let`, or `self` field) to a `Vec`/`VecDeque`/
//!   slice and `i` is not a bare literal. Unresolvable bases,
//!   fixed-length arrays (`[T; N]`, typically index-masked) and range
//!   slicing (`&b[..n]`, predominantly length-guarded decode framing
//!   covered by the fail-closed decode suite) are documented
//!   under-approximations.
//! * `panic-div` — integer `/` or `%` with a non-literal divisor
//!   (float division does not panic and is skipped).
//!
//! Tooling files ([`crate::pass::TOOLING_PREFIXES`]) are exempt from
//! emission; reachability still flows through them.

use crate::callgraph::CallGraph;
use crate::findings::Finding;
use crate::index::Index;
use crate::lexer::{Tok, TokKind};
use crate::pass::{hot_path_file, Pass};
use std::collections::HashMap;

/// The pass name, as spelled on the CLI.
pub const NAME: &str = "panic-reach";

/// The class vocabulary.
pub const CLASSES: &[&str] = &["panic-unwrap", "panic-macro", "panic-index", "panic-div"];

/// Hot-path root functions (simple names). `step` covers every
/// `Endpoint::step` implementation; `handle_connection` is the service
/// daemon's per-connection worker, which faces untrusted socket bytes.
pub const ROOT_FNS: &[&str] = &[
    "interleaved_sweep",
    "run_sweep",
    "run_worker",
    "step",
    "handle_connection",
];

/// The panic-reachability pass.
pub struct PanicReach;

impl Pass for PanicReach {
    fn name(&self) -> &'static str {
        NAME
    }

    fn classes(&self) -> &'static [&'static str] {
        CLASSES
    }

    fn default_allowlist(&self) -> &'static str {
        "ci/panic_allow.toml"
    }

    fn analyze(&self, ix: &Index) -> Vec<Finding> {
        analyze(ix)
    }
}

/// Runs the panic-reachability analysis.
pub fn analyze(ix: &Index) -> Vec<Finding> {
    let cg = CallGraph::build(ix);
    let reach = cg.reach(ix, |f| ROOT_FNS.contains(&f.name.as_str()), |_| true);

    // Struct name → (field name → field type), for `self.field[i]`.
    let struct_fields: HashMap<&str, HashMap<&str, &str>> = ix
        .structs
        .iter()
        .map(|s| {
            (
                s.name.as_str(),
                s.fields
                    .iter()
                    .map(|f| (f.name.as_str(), f.ty.as_str()))
                    .collect(),
            )
        })
        .collect();

    let mut findings = Vec::new();
    for (i, f) in ix.fns.iter().enumerate() {
        if !reach.reachable[i] || !hot_path_file(&ix.files[f.file]) {
            continue;
        }
        let chain = reach.chain(ix, i);
        let file = ix.files[f.file].clone();
        let mut emit = |line: u32, class: &str, ident: &str, message: String| {
            findings.push(Finding {
                file: file.clone(),
                line,
                pass: NAME.to_string(),
                class: class.to_string(),
                context: f.qual.clone(),
                ident: ident.to_string(),
                message,
                chain: chain.clone(),
            });
        };

        // Class 1: unwrap/expect call sites.
        for (callee, line) in &cg.calls[i] {
            if matches!(
                callee.as_str(),
                "unwrap" | "expect" | "unwrap_err" | "expect_err"
            ) {
                emit(
                    *line,
                    "panic-unwrap",
                    callee,
                    format!(
                        "`{}` calls `.{}()` on the sweep hot path (convert to a typed \
                         fail-closed error or justify the invariant)",
                        f.qual, callee
                    ),
                );
            }
        }

        let sig: Vec<&Tok> = f.body.iter().filter(|t| !t.is_comment()).collect();
        let lets = typed_lets(&sig);
        for (j, t) in sig.iter().enumerate() {
            // Class 2: panicking macros.
            if t.kind == TokKind::Ident
                && matches!(
                    t.text.as_str(),
                    "panic" | "unreachable" | "todo" | "unimplemented"
                )
                && sig.get(j + 1).is_some_and(|n| n.is_punct("!"))
            {
                emit(
                    t.line,
                    "panic-macro",
                    &t.text,
                    format!(
                        "`{}` can `{}!` on the sweep hot path (fail closed instead)",
                        f.qual, t.text
                    ),
                );
            }
            // Class 3: dynamic indexing into a Vec/slice.
            if t.is_punct("[") && j > 0 {
                let prev = sig[j - 1];
                if prev.kind == TokKind::Ident && !is_keyword(&prev.text) {
                    if let Some(ty) = base_type(f, &struct_fields, &lets, &sig, j) {
                        if growable(&ty) {
                            if let Some(ident) = dynamic_index(&sig, j) {
                                emit(
                                    prev.line,
                                    "panic-index",
                                    &prev.text,
                                    format!(
                                        "`{}` indexes `{}` (a {}) by `{}` on the sweep hot \
                                         path (use .get() and fail closed, or justify the \
                                         bounds invariant)",
                                        f.qual,
                                        prev.text,
                                        ty.trim(),
                                        ident
                                    ),
                                );
                            }
                        }
                    }
                }
            }
            // Class 4: integer division / remainder by a non-literal.
            if (t.is_punct("/") || t.is_punct("%")) && j > 0 {
                let prev = sig[j - 1];
                let binary_pos = prev.kind == TokKind::Ident && !is_keyword(&prev.text)
                    || prev.kind == TokKind::Num
                    || prev.is_punct(")")
                    || prev.is_punct("]");
                let next_literal = sig.get(j + 1).is_some_and(|n| n.kind == TokKind::Num);
                if binary_pos && !next_literal && !float_context(&sig, j, f, &lets) {
                    let divisor = sig.get(j + 1).map(|n| n.text.clone()).unwrap_or_default();
                    emit(
                        t.line,
                        "panic-div",
                        &divisor,
                        format!(
                            "`{}` divides (`{}`) by non-literal `{}` on the sweep hot path \
                             (guard the divisor or justify the nonzero invariant)",
                            f.qual, t.text, divisor
                        ),
                    );
                }
            }
        }
    }
    findings.sort();
    findings.dedup();
    findings
}

/// `let` bindings with an explicit type: name → space-joined type.
fn typed_lets(sig: &[&Tok]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    for (i, t) in sig.iter().enumerate() {
        if !t.is_ident("let") {
            continue;
        }
        let mut names = Vec::new();
        let mut ty = Vec::new();
        let mut in_ty = false;
        let mut depth = 0i32;
        for s in sig.iter().skip(i + 1) {
            if s.is_punct("(") || s.is_punct("[") || s.is_punct("<") {
                depth += 1;
            } else if s.is_punct(")") || s.is_punct("]") || s.is_punct(">") {
                depth -= 1;
            } else if s.is_punct(">>") {
                depth -= 2;
            } else if (s.is_punct("=") || s.is_punct(";")) && depth <= 0 {
                break;
            } else if s.is_punct(":") && depth <= 0 {
                in_ty = true;
                continue;
            }
            if in_ty {
                ty.push(s.text.clone());
            } else if s.kind == TokKind::Ident && s.text != "mut" && s.text != "ref" {
                names.push(s.text.clone());
            }
        }
        if !ty.is_empty() {
            let ty = ty.join(" ");
            for n in names {
                out.insert(n, ty.clone());
            }
        }
    }
    out
}

/// Resolves the type of the indexed base at `sig[j - 1]` (where
/// `sig[j]` is `[`): `self.field` via the impl type's fields, else a
/// parameter, else an explicitly typed `let`.
fn base_type(
    f: &crate::index::FnItem,
    struct_fields: &HashMap<&str, HashMap<&str, &str>>,
    lets: &HashMap<String, String>,
    sig: &[&Tok],
    j: usize,
) -> Option<String> {
    let name = &sig[j - 1].text;
    let is_self_field = j >= 3 && sig[j - 2].is_punct(".") && sig[j - 3].is_ident("self");
    if is_self_field {
        let st = f.self_type.as_deref()?;
        return struct_fields
            .get(st)?
            .get(name.as_str())
            .map(|t| t.to_string());
    }
    // A field access on something other than `self` is unresolvable.
    if j >= 2 && sig[j - 2].is_punct(".") {
        return None;
    }
    for p in &f.params {
        if p.names.iter().any(|n| n == name) {
            return Some(p.ty.clone());
        }
    }
    lets.get(name.as_str()).cloned()
}

/// Whether a resolved type is growable / dynamically sized — the
/// index-panic surface. Fixed-length arrays (`[T; N]`) are excluded.
fn growable(ty: &str) -> bool {
    let words: Vec<&str> = ty.split_whitespace().collect();
    words.iter().any(|w| *w == "Vec" || *w == "VecDeque") || (ty.contains('[') && !ty.contains(';'))
}

/// The index expression between `sig[j]` (`[`) and its matching `]`,
/// when it is dynamic: not a bare literal, not a range. Returns a
/// display name for the index.
fn dynamic_index(sig: &[&Tok], j: usize) -> Option<String> {
    let mut depth = 1i32;
    let mut k = j + 1;
    let mut inner: Vec<&Tok> = Vec::new();
    while k < sig.len() && depth > 0 {
        let s = sig[k];
        if s.is_punct("[") || s.is_punct("(") {
            depth += 1;
        } else if s.is_punct("]") || s.is_punct(")") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        }
        inner.push(s);
        k += 1;
    }
    if inner.is_empty() {
        return None;
    }
    // Bare literal index: `v[0]` (leading-element framing, checked at
    // decode boundaries).
    if inner.len() == 1 && inner[0].kind == TokKind::Num {
        return None;
    }
    // Range slicing: length-guarded decode framing, covered by the
    // fail-closed decode suite.
    if inner.iter().any(|s| s.is_punct("..") || s.is_punct("..=")) {
        return None;
    }
    Some(
        inner
            .iter()
            .map(|s| s.text.as_str())
            .collect::<Vec<_>>()
            .join(""),
    )
}

/// Whether the tokens around a `/` look like float arithmetic: a float
/// literal or `f64`/`f32` mention nearby, or an operand whose type
/// (via parameter or typed `let`) is a float.
fn float_context(
    sig: &[&Tok],
    j: usize,
    f: &crate::index::FnItem,
    lets: &HashMap<String, String>,
) -> bool {
    let lo = j.saturating_sub(4);
    let hi = (j + 5).min(sig.len());
    if sig[lo..hi].iter().any(|s| {
        (s.kind == TokKind::Num
            && (s.text.contains('.') || s.text.ends_with("f64") || s.text.ends_with("f32")))
            || (s.kind == TokKind::Ident && (s.text == "f64" || s.text == "f32"))
    }) {
        return true;
    }
    let is_float_ident = |t: &Tok| {
        if t.kind != TokKind::Ident {
            return false;
        }
        let ty = f
            .params
            .iter()
            .find(|p| p.names.contains(&t.text))
            .map(|p| p.ty.clone())
            .or_else(|| lets.get(&t.text).cloned());
        ty.is_some_and(|ty| ty.split_whitespace().any(|w| w == "f64" || w == "f32"))
    };
    (j > 0 && is_float_ident(sig[j - 1])) || sig.get(j + 1).is_some_and(|t| is_float_ident(t))
}

/// Keywords that can precede `[` / `/` without forming the flagged
/// expression shape.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "return"
            | "break"
            | "in"
            | "else"
            | "match"
            | "if"
            | "while"
            | "loop"
            | "let"
            | "mut"
            | "as"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> Vec<Finding> {
        let mut ix = Index::default();
        ix.add_file("t.rs", src);
        analyze(&ix)
    }

    #[test]
    fn flags_unwrap_with_chain() {
        let f = run("fn run_worker() { helper(); }\n\
             fn helper() { let x: Option<u8> = None; let y = x.unwrap(); }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].class, "panic-unwrap");
        assert_eq!(f[0].chain, vec!["run_worker", "helper"]);
    }

    #[test]
    fn unwrap_or_is_not_flagged() {
        let f = run("fn step() { let x: Option<u8> = None; let y = x.unwrap_or(0); }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn flags_panicking_macros_not_asserts() {
        let f = run("fn run_sweep(n: usize) {\n\
                 assert!(n > 0, \"contract\");\n\
                 if n > 9 { unreachable!(\"cannot happen\"); }\n\
             }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].class, "panic-macro");
        assert_eq!(f[0].ident, "unreachable");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn flags_vec_index_not_array_or_literal() {
        let f = run("fn step(v: Vec<u8>, a: [u8; 4], i: usize) -> u8 {\n\
                 let x = v[i];\n\
                 let y = a[i];\n\
                 let z = v[0];\n\
                 x + y + z\n\
             }\n");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].class, "panic-index");
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].ident, "v");
    }

    #[test]
    fn resolves_self_field_and_slice_param() {
        let f = run("struct Fleet { devices: Vec<u8> }\n\
             impl Fleet { fn step(&self, i: usize, buf: &[u8]) -> u8 {\n\
                 self.devices[i] + buf[i]\n\
             } }\n");
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.class == "panic-index"));
    }

    #[test]
    fn range_slicing_is_exempt() {
        let f = run("fn step(buf: &[u8], n: usize) -> u8 { let s = &buf[..n]; s.len() as u8 }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn flags_nonliteral_division_only() {
        let f = run("fn run_sweep(total: usize, threads: usize) -> usize {\n\
                 let a = total / 2;\n\
                 let b = total / threads;\n\
                 let c = total % threads;\n\
                 a + b + c\n\
             }\n");
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|x| x.class == "panic-div"));
        assert!(f.iter().all(|x| x.ident == "threads"));
    }

    #[test]
    fn float_division_is_exempt() {
        let f = run("fn run_sweep(total: f64, rate: f64) -> f64 { total / rate }\n");
        assert!(f.is_empty());
    }

    #[test]
    fn outside_cone_is_clean() {
        let f = run("fn unrelated(v: Vec<u8>, i: usize) -> u8 { v[i].wrapping_add(1) }\n");
        assert!(f.is_empty());
    }
}
