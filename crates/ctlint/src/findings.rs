//! The pass-agnostic finding model and its JSON wire format.
//!
//! Every pass reports the same shape: a class name (pass-specific
//! vocabulary, validated against [`crate::pass::Pass::classes`]), a
//! `file:line` anchor, the enclosing context (function or struct), the
//! specific identifier involved, a human-readable message and — for
//! reachability-based findings — the call chain from the pass's taint
//! root down to the flagged function, as evidence a reviewer can walk.
//!
//! The JSON encoding is hand-rolled (the workspace is dependency-free)
//! and round-trips: [`findings_to_json`] ∘ [`findings_from_json`] is
//! the identity, property-tested in `tests/proptest_findings.rs`, and
//! the output is byte-stable for a given finding set because findings
//! are sorted before serialization.

/// One finding, from any pass.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Scanned file (relative path, `/`-separated).
    pub file: String,
    /// 1-based line anchor.
    pub line: u32,
    /// The pass that produced the finding (`secret-flow`,
    /// `determinism`, `panic-reach`).
    pub pass: String,
    /// Finding class (pass-specific, e.g. `vartime-call`,
    /// `unordered-iter`, `panic-unwrap`).
    pub class: String,
    /// Enclosing function (qualified) or struct name.
    pub context: String,
    /// The specific identifier involved (callee, tainted binding or
    /// field name).
    pub ident: String,
    /// Human-readable description.
    pub message: String,
    /// Reach-chain evidence: qualified function names from a taint
    /// root (first) to the flagged context (last). Empty when the
    /// finding is not reachability-based (e.g. a struct-level finding).
    pub chain: Vec<String>,
}

impl Finding {
    /// `root -> a -> b` rendering of the reach chain, or `""`.
    pub fn chain_text(&self) -> String {
        self.chain.join(" -> ")
    }
}

/// Escapes `s` as JSON string contents (no surrounding quotes).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes one finding as a JSON object.
pub fn finding_to_json(f: &Finding) -> String {
    let chain: Vec<String> = f
        .chain
        .iter()
        .map(|c| format!("\"{}\"", escape(c)))
        .collect();
    format!(
        "{{\"file\":\"{}\",\"line\":{},\"pass\":\"{}\",\"class\":\"{}\",\"context\":\"{}\",\"ident\":\"{}\",\"message\":\"{}\",\"chain\":[{}]}}",
        escape(&f.file),
        f.line,
        escape(&f.pass),
        escape(&f.class),
        escape(&f.context),
        escape(&f.ident),
        escape(&f.message),
        chain.join(",")
    )
}

/// Serializes a finding list as a JSON array (sorted copy, so the
/// output is independent of production order).
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut sorted: Vec<&Finding> = findings.iter().collect();
    sorted.sort();
    let items: Vec<String> = sorted.iter().map(|f| finding_to_json(f)).collect();
    format!("[{}]", items.join(","))
}

/// Parses the output of [`findings_to_json`] back into findings.
///
/// This is a minimal JSON reader for exactly the schema this module
/// writes (used by the round-trip property test and by downstream
/// tooling that consumes the CI artifact); it is total — malformed
/// input yields `Err`, never a panic.
pub fn findings_from_json(src: &str) -> Result<Vec<Finding>, String> {
    let mut p = Parser {
        chars: src.chars().collect(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.chars.len() {
        return Err(format!("trailing input at offset {}", p.pos));
    }
    let Json::Array(items) = v else {
        return Err("top level must be an array".into());
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let Json::Object(kvs) = item else {
            return Err("array items must be objects".into());
        };
        let get_str = |k: &str| -> Result<String, String> {
            match kvs.iter().find(|(key, _)| key == k) {
                Some((_, Json::String(s))) => Ok(s.clone()),
                _ => Err(format!("missing string field `{k}`")),
            }
        };
        let line = match kvs.iter().find(|(key, _)| key == "line") {
            Some((_, Json::Number(n))) => *n,
            _ => return Err("missing numeric field `line`".into()),
        };
        let chain = match kvs.iter().find(|(key, _)| key == "chain") {
            Some((_, Json::Array(items))) => {
                let mut c = Vec::with_capacity(items.len());
                for i in items {
                    match i {
                        Json::String(s) => c.push(s.clone()),
                        _ => return Err("chain entries must be strings".into()),
                    }
                }
                c
            }
            _ => return Err("missing array field `chain`".into()),
        };
        out.push(Finding {
            file: get_str("file")?,
            line,
            pass: get_str("pass")?,
            class: get_str("class")?,
            context: get_str("context")?,
            ident: get_str("ident")?,
            message: get_str("message")?,
            chain,
        });
    }
    Ok(out)
}

/// The JSON subset the findings schema uses.
enum Json {
    String(String),
    Number(u32),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn eat(&mut self, c: char) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{c}` at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some('"') => Ok(Json::String(self.string()?)),
            Some('[') => {
                self.eat('[')?;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(']') {
                    self.eat(']')?;
                    return Ok(Json::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => self.eat(',')?,
                        Some(']') => {
                            self.eat(']')?;
                            return Ok(Json::Array(items));
                        }
                        _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
                    }
                }
            }
            Some('{') => {
                self.eat('{')?;
                let mut kvs = Vec::new();
                self.skip_ws();
                if self.peek() == Some('}') {
                    self.eat('}')?;
                    return Ok(Json::Object(kvs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.eat(':')?;
                    let val = self.value()?;
                    kvs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => self.eat(',')?,
                        Some('}') => {
                            self.eat('}')?;
                            return Ok(Json::Object(kvs));
                        }
                        _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
                    }
                }
            }
            Some(c) if c.is_ascii_digit() => {
                let mut n: u64 = 0;
                while let Some(c) = self.peek() {
                    let Some(d) = c.to_digit(10) else { break };
                    n = n.saturating_mul(10).saturating_add(d as u64);
                    self.pos += 1;
                }
                Ok(Json::Number(n.min(u32::MAX as u64) as u32))
            }
            _ => Err(format!("unexpected input at offset {}", self.pos)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat('"')?;
        let mut out = String::new();
        while let Some(c) = self.peek() {
            self.pos += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'u' => {
                            let mut code = 0u32;
                            for _ in 0..4 {
                                let h = self.peek().ok_or("truncated \\u escape")?;
                                let d = h.to_digit(16).ok_or("bad \\u escape digit")?;
                                code = code * 16 + d;
                                self.pos += 1;
                            }
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("unknown escape `\\{other}`")),
                    }
                }
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Finding {
        Finding {
            file: "crates/x/src/a.rs".into(),
            line: 42,
            pass: "determinism".into(),
            class: "unordered-iter".into(),
            context: "Worker::drain".into(),
            ident: "HashMap".into(),
            message: "uses `HashMap` — \"unordered\"\n".into(),
            chain: vec!["run_worker".into(), "Worker::drain".into()],
        }
    }

    #[test]
    fn json_round_trips() {
        let f = vec![sample()];
        let json = findings_to_json(&f);
        assert_eq!(findings_from_json(&json).unwrap(), f);
    }

    #[test]
    fn empty_list_round_trips() {
        assert_eq!(findings_from_json("[]").unwrap(), Vec::<Finding>::new());
        assert_eq!(findings_to_json(&[]), "[]");
    }

    #[test]
    fn escapes_control_chars() {
        let mut f = sample();
        f.message = "a\u{1}b".into();
        let json = findings_to_json(&[f.clone()]);
        assert!(json.contains("\\u0001"));
        assert_eq!(findings_from_json(&json).unwrap(), vec![f]);
    }

    #[test]
    fn serialization_is_order_independent() {
        let mut a = sample();
        a.line = 1;
        let mut b = sample();
        b.line = 2;
        assert_eq!(
            findings_to_json(&[a.clone(), b.clone()]),
            findings_to_json(&[b, a])
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(findings_from_json("{").is_err());
        assert!(findings_from_json("[{}]").is_err());
        assert!(findings_from_json("[1]").is_err());
    }
}
