//! `cargo run -p ecq_lint` — the CI entry point for the secret-flow
//! static analyzer. Exits nonzero on any unsuppressed finding, stale
//! allowlist entry or malformed allowlist.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allowlist: Option<PathBuf> = None;
    let mut verbose = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().unwrap_or_else(|| ".".into()));
            }
            "--allowlist" => {
                allowlist = args.next().map(PathBuf::from);
            }
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: ecq_lint [--root DIR] [--allowlist FILE] [--verbose]\n\
                     Scans DIR (default .) for secret-flow findings; the allowlist\n\
                     defaults to DIR/ci/ctlint_allow.toml."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ecq_lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let allowlist = allowlist.unwrap_or_else(|| root.join("ci/ctlint_allow.toml"));

    let report = match ecq_lint::run(&root, &ecq_lint::taint::Config::default(), Some(&allowlist)) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ecq_lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    for e in &report.allowlist_errors {
        println!(
            "{}:{}: [allowlist] {}",
            allowlist.display(),
            e.line,
            e.message
        );
    }
    for e in &report.stale {
        println!(
            "{}:{}: [allowlist] stale entry for `{}` in {} — no live finding matches it",
            allowlist.display(),
            e.line,
            e.context,
            e.file
        );
    }
    for f in &report.unsuppressed {
        println!("{}:{}: [{}] {}", f.file, f.line, f.class.name(), f.message);
    }
    if verbose {
        for (f, why) in &report.suppressed {
            println!(
                "{}:{}: [{}] allowed: {} — {}",
                f.file,
                f.line,
                f.class.name(),
                f.message,
                why
            );
        }
    }

    println!(
        "ecq_lint: {} files, {} fns; {} finding(s), {} allowed, {} stale allowlist entr{}",
        report.files,
        report.fns,
        report.unsuppressed.len(),
        report.suppressed.len(),
        report.stale.len(),
        if report.stale.len() == 1 { "y" } else { "ies" }
    );

    if report.is_clean() {
        println!("ecq_lint: clean");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
