//! `cargo run -p ecq_lint` — the CI entry point for the multi-pass
//! static analyzer. Exits nonzero on any unsuppressed finding, stale
//! allowlist entry or malformed allowlist in any selected pass.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut allowlist: Option<PathBuf> = None;
    let mut pass = String::from("all");
    let mut json = false;
    let mut verbose = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                root = PathBuf::from(args.next().unwrap_or_else(|| ".".into()));
            }
            "--allowlist" => {
                allowlist = args.next().map(PathBuf::from);
            }
            "--pass" => {
                pass = args.next().unwrap_or_else(|| "all".into());
            }
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("human") | None => json = false,
                Some(other) => {
                    eprintln!("ecq_lint: unknown format `{other}` (human|json)");
                    return ExitCode::from(2);
                }
            },
            "--verbose" | "-v" => verbose = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: ecq_lint [--root DIR] [--pass NAME] [--format human|json]\n\
                     \x20               [--allowlist FILE] [--verbose]\n\
                     Scans DIR (default .) with the selected pass(es):\n\
                     \x20 secret-flow   ct/vartime boundary audit (ci/ctlint_allow.toml)\n\
                     \x20 determinism   report-affecting nondeterminism (ci/determinism_allow.toml)\n\
                     \x20 panic-reach   sweep hot-path panic sites (ci/panic_allow.toml)\n\
                     \x20 all           every pass (default)\n\
                     --allowlist overrides the default path (single pass only).\n\
                     --format json emits the findings artifact on stdout."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("ecq_lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let Some(passes) = ecq_lint::select_passes(&pass) else {
        eprintln!("ecq_lint: unknown pass `{pass}` (secret-flow|determinism|panic-reach|all)");
        return ExitCode::from(2);
    };
    if allowlist.is_some() && passes.len() != 1 {
        eprintln!("ecq_lint: --allowlist needs a single --pass (it overrides that pass's file)");
        return ExitCode::from(2);
    }

    let report = match ecq_lint::run(&root, &passes, allowlist.as_deref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ecq_lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if json {
        // JSON mode keeps stdout machine-readable: exactly one object.
        println!("{}", report.to_json());
        return if report.is_clean() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    for p in &report.passes {
        let al = p.allowlist_path.display();
        for e in &p.allowlist_errors {
            println!("{}:{}: [{}/allowlist] {}", al, e.line, p.pass, e.message);
        }
        for e in &p.stale {
            println!(
                "{}:{}: [{}/allowlist] stale entry for `{}` in {} — no live finding matches it",
                al, e.line, p.pass, e.context, e.file
            );
        }
        for f in &p.unsuppressed {
            println!("{}:{}: [{}] {}", f.file, f.line, f.class, f.message);
            if !f.chain.is_empty() && f.chain.len() > 1 {
                println!("    reached via {}", f.chain_text());
            }
        }
        if verbose {
            for (f, why) in &p.suppressed {
                println!(
                    "{}:{}: [{}] allowed: {} — {}",
                    f.file, f.line, f.class, f.message, why
                );
            }
        }
        println!(
            "ecq_lint[{}]: {} finding(s), {} allowed, {} stale allowlist entr{}",
            p.pass,
            p.unsuppressed.len(),
            p.suppressed.len(),
            p.stale.len(),
            if p.stale.len() == 1 { "y" } else { "ies" }
        );
    }

    println!(
        "ecq_lint: {} files, {} fns scanned",
        report.files, report.fns
    );
    if report.is_clean() {
        println!("ecq_lint: clean");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
