//! The paper's four evaluation boards (§V-A) with fitted cost tables
//! and the original Table I values for paper-vs-measured reporting.

use crate::profile::{costs_from_op_times, DeviceProfile};
use ecq_proto::ProtocolKind;

/// The four hardware platforms of the paper's Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DevicePreset {
    /// Low-end: Arduino ATmega2560, 8-bit @ 16 MHz.
    ATmega2560,
    /// Mid-tier: NXP S32K144, Cortex-M4F 32-bit @ 80 MHz.
    S32K144,
    /// Mid-tier: STM32F767, Cortex-M7 32-bit @ 216 MHz.
    Stm32F767,
    /// High-end: Raspberry Pi 4, Cortex-A72 64-bit @ 1.5 GHz.
    RaspberryPi4,
}

impl DevicePreset {
    /// All presets in Table I column order.
    pub const ALL: [DevicePreset; 4] = [
        DevicePreset::ATmega2560,
        DevicePreset::S32K144,
        DevicePreset::Stm32F767,
        DevicePreset::RaspberryPi4,
    ];

    /// The fitted per-side STS operation times `[Op1, Op2, Op3, Op4]`
    /// in ms, inverted from the paper's Table I via eqs. (5)–(8)
    /// (derivation in DESIGN.md §5).
    pub fn fitted_op_times(&self) -> [f64; 4] {
        match self {
            DevicePreset::ATmega2560 => [4701.385, 4581.80, 9269.42, 4578.41],
            DevicePreset::S32K144 => [364.305, 376.16, 689.71, 381.18],
            DevicePreset::Stm32F767 => [320.15, 344.05, 598.77, 318.065],
            DevicePreset::RaspberryPi4 => [2.245, 2.39, 4.56, 2.435],
        }
    }

    /// Builds the cost table for this board.
    pub fn profile(&self) -> DeviceProfile {
        // Symmetric-primitive constants scale roughly with the board's
        // integer throughput; they are deliberately small relative to
        // the EC operations (the paper's Table I is EC-dominated).
        let (name, class, aes, mac, kdf, rng, hash) = match self {
            DevicePreset::ATmega2560 => (
                "ATMega2560",
                "Arduino, 8-bit AVR @ 16 MHz",
                0.55,
                6.0,
                24.0,
                1.6,
                0.9,
            ),
            DevicePreset::S32K144 => (
                "S32K144",
                "NXP, ARM Cortex-M4F 32-bit @ 80 MHz",
                0.03,
                0.45,
                1.8,
                0.12,
                0.07,
            ),
            DevicePreset::Stm32F767 => (
                "STM32F767",
                "ST, ARM Cortex-M7 32-bit @ 216 MHz",
                0.012,
                0.18,
                0.75,
                0.05,
                0.03,
            ),
            DevicePreset::RaspberryPi4 => (
                "RaspberryPi 4",
                "ARM Cortex-A72 64-bit @ 1.5 GHz",
                0.0001,
                0.0015,
                0.006,
                0.0005,
                0.00025,
            ),
        };
        DeviceProfile {
            name,
            class,
            costs: costs_from_op_times(self.fitted_op_times(), aes, mac, kdf, rng, hash),
        }
    }

    /// The paper's Table I value (ms) for a protocol on this board —
    /// the reference the benches compare the simulation against.
    pub fn paper_table1(&self, kind: ProtocolKind) -> f64 {
        use DevicePreset::*;
        use ProtocolKind::*;
        match (self, kind) {
            (ATmega2560, SEcdsa) => 36859.26,
            (ATmega2560, SEcdsaExt) => 36882.64,
            (ATmega2560, Sts) => 46262.03,
            (ATmega2560, StsOptI) => 41680.23,
            (ATmega2560, StsOptII) => 32410.81,
            (ATmega2560, Scianc) => 8990.49,
            (ATmega2560, Poramb) => 17932.17,
            (S32K144, SEcdsa) => 2894.1,
            (S32K144, SEcdsaExt) => 2976.2,
            (S32K144, Sts) => 3622.71,
            (S32K144, StsOptI) => 3246.55,
            (S32K144, StsOptII) => 2556.84,
            (S32K144, Scianc) => 721.67,
            (S32K144, Poramb) => 1471.66,
            (Stm32F767, SEcdsa) => 2521.77,
            (Stm32F767, SEcdsaExt) => 2602.69,
            (Stm32F767, Sts) => 3162.07,
            (Stm32F767, StsOptI) => 2818.02,
            (Stm32F767, StsOptII) => 2219.25,
            (Stm32F767, Scianc) => 628.1,
            (Stm32F767, Poramb) => 1263.0,
            (RaspberryPi4, SEcdsa) => 18.76,
            (RaspberryPi4, SEcdsaExt) => 18.68,
            (RaspberryPi4, Sts) => 23.26,
            (RaspberryPi4, StsOptI) => 20.87,
            (RaspberryPi4, StsOptII) => 16.31,
            (RaspberryPi4, Scianc) => 4.58,
            (RaspberryPi4, Poramb) => 8.98,
        }
    }
}

impl core::fmt::Display for DevicePreset {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.profile().name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fitted_times_reconstruct_paper_s_ecdsa() {
        // 2·(Op2+Op3+Op4) must equal the paper's S-ECDSA column.
        for preset in DevicePreset::ALL {
            let [_, op2, op3, op4] = preset.fitted_op_times();
            let s_ecdsa = 2.0 * (op2 + op3 + op4);
            let paper = preset.paper_table1(ProtocolKind::SEcdsa);
            assert!(
                (s_ecdsa - paper).abs() / paper < 1e-3,
                "{preset:?}: {s_ecdsa} vs {paper}"
            );
        }
    }

    #[test]
    fn fitted_times_reconstruct_paper_sts_family() {
        for preset in DevicePreset::ALL {
            let [op1, op2, op3, op4] = preset.fitted_op_times();
            let sts = 2.0 * (op1 + op2 + op3 + op4);
            assert!((sts - preset.paper_table1(ProtocolKind::Sts)).abs() < 0.01);
            let opt1 = sts - op2;
            assert!((opt1 - preset.paper_table1(ProtocolKind::StsOptI)).abs() < 0.01);
            let opt2 = sts - op2 - op3;
            assert!((opt2 - preset.paper_table1(ProtocolKind::StsOptII)).abs() < 0.01);
        }
    }

    #[test]
    fn device_ordering_by_speed() {
        // ATmega ≫ S32K > STM32 ≫ RPi4 for every op class.
        let profiles: Vec<_> = DevicePreset::ALL.iter().map(|p| p.profile()).collect();
        for i in 0..3 {
            assert!(profiles[i].costs.sign_ms > profiles[i + 1].costs.sign_ms);
            assert!(profiles[i].costs.keygen_ms > profiles[i + 1].costs.keygen_ms);
        }
    }

    #[test]
    fn all_costs_positive() {
        for preset in DevicePreset::ALL {
            let c = preset.profile().costs;
            for v in [
                c.keygen_ms,
                c.recon_ms,
                c.ecdh_ms,
                c.sign_ms,
                c.verify_ms,
                c.aes_block_ms,
                c.mac_ms,
                c.kdf_ms,
                c.rng32_ms,
                c.hash_block_ms,
            ] {
                assert!(v > 0.0, "{preset:?} has non-positive cost {v}");
            }
        }
    }

    #[test]
    fn display_names() {
        assert_eq!(DevicePreset::Stm32F767.to_string(), "STM32F767");
        assert_eq!(DevicePreset::RaspberryPi4.to_string(), "RaspberryPi 4");
    }
}
