//! Per-device primitive cost tables.

use ecq_proto::PrimitiveOp;

/// Millisecond costs of each primitive class on one device.
///
/// The EC costs are fitted from the paper's Table I (see crate docs);
/// the symmetric costs are small device-scaled constants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PrimitiveCosts {
    /// Ephemeral key generation (random scalar + base multiplication).
    pub keygen_ms: f64,
    /// ECQV public-key reconstruction (eq. (1)).
    pub recon_ms: f64,
    /// ECDH point multiplication.
    pub ecdh_ms: f64,
    /// ECDSA signature generation.
    pub sign_ms: f64,
    /// ECDSA signature verification.
    pub verify_ms: f64,
    /// One AES-128 block operation.
    pub aes_block_ms: f64,
    /// One HMAC/CMAC tag over a short message.
    pub mac_ms: f64,
    /// One HKDF session-key derivation.
    pub kdf_ms: f64,
    /// Drawing 32 random bytes.
    pub rng32_ms: f64,
    /// One SHA-256 compression block.
    pub hash_block_ms: f64,
}

/// A named device with its cost table.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceProfile {
    /// Human-readable board name (Table I column header).
    pub name: &'static str,
    /// Hardware class blurb from §V-A (cpu, word size, clock).
    pub class: &'static str,
    /// The primitive cost table.
    pub costs: PrimitiveCosts,
}

impl DeviceProfile {
    /// The simulated cost of one primitive invocation, in ms.
    pub fn cost_of(&self, op: &PrimitiveOp) -> f64 {
        let c = &self.costs;
        match op {
            PrimitiveOp::EphemeralKeyGen => c.keygen_ms,
            PrimitiveOp::PublicKeyReconstruction => c.recon_ms,
            PrimitiveOp::EcdhDerive => c.ecdh_ms,
            PrimitiveOp::EcdsaSign => c.sign_ms,
            PrimitiveOp::EcdsaVerify => c.verify_ms,
            PrimitiveOp::AesEncrypt { blocks } | PrimitiveOp::AesDecrypt { blocks } => {
                c.aes_block_ms * (*blocks as f64)
            }
            PrimitiveOp::MacTag | PrimitiveOp::MacVerify => c.mac_ms,
            PrimitiveOp::Kdf => c.kdf_ms,
            PrimitiveOp::Hash { bytes } => {
                // SHA-256 pads to 64-byte blocks (9 bytes minimum pad).
                let blocks = (bytes + 9).div_ceil(64);
                c.hash_block_ms * blocks as f64
            }
            PrimitiveOp::RandomBytes { bytes } => c.rng32_ms * (bytes.div_ceil(32) as f64),
        }
    }
}

/// Builds a cost table from the four fitted per-side operation times
/// (`Op1..Op4`, ms) and the device's symmetric-primitive constants.
///
/// Inverts the decomposition used by the timing model:
///
/// * `Op1 = keygen + rng32`
/// * `Op2 = recon + ecdh + kdf` (reconstruction and ECDH split evenly —
///   both are one scalar multiplication in micro-ecc)
/// * `Op3 = sign + 4·aes_block` (64-byte response = 4 CTR blocks)
/// * `Op4 = verify + 4·aes_block`
pub fn costs_from_op_times(
    op: [f64; 4],
    aes_block_ms: f64,
    mac_ms: f64,
    kdf_ms: f64,
    rng32_ms: f64,
    hash_block_ms: f64,
) -> PrimitiveCosts {
    let ec_half = (op[1] - kdf_ms) / 2.0;
    PrimitiveCosts {
        keygen_ms: op[0] - rng32_ms,
        recon_ms: ec_half,
        ecdh_ms: ec_half,
        sign_ms: op[2] - 4.0 * aes_block_ms,
        verify_ms: op[3] - 4.0 * aes_block_ms,
        aes_block_ms,
        mac_ms,
        kdf_ms,
        rng32_ms,
        hash_block_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DeviceProfile {
        DeviceProfile {
            name: "test",
            class: "test-class",
            costs: costs_from_op_times([100.0, 90.0, 200.0, 110.0], 0.5, 1.0, 4.0, 2.0, 0.1),
        }
    }

    #[test]
    fn inversion_reconstructs_op_times() {
        let p = sample();
        let c = &p.costs;
        assert!((c.keygen_ms + c.rng32_ms - 100.0).abs() < 1e-9);
        assert!((c.recon_ms + c.ecdh_ms + c.kdf_ms - 90.0).abs() < 1e-9);
        assert!((c.sign_ms + 4.0 * c.aes_block_ms - 200.0).abs() < 1e-9);
        assert!((c.verify_ms + 4.0 * c.aes_block_ms - 110.0).abs() < 1e-9);
    }

    #[test]
    fn cost_of_parameterized_ops() {
        let p = sample();
        assert_eq!(p.cost_of(&PrimitiveOp::AesEncrypt { blocks: 4 }), 2.0);
        assert_eq!(p.cost_of(&PrimitiveOp::AesDecrypt { blocks: 1 }), 0.5);
        assert_eq!(p.cost_of(&PrimitiveOp::RandomBytes { bytes: 32 }), 2.0);
        assert_eq!(p.cost_of(&PrimitiveOp::RandomBytes { bytes: 33 }), 4.0);
        // 101-byte cert: 101+9=110 → 2 blocks.
        assert!((p.cost_of(&PrimitiveOp::Hash { bytes: 101 }) - 0.2).abs() < 1e-12);
        assert_eq!(p.cost_of(&PrimitiveOp::MacTag), 1.0);
        assert_eq!(p.cost_of(&PrimitiveOp::MacVerify), 1.0);
    }

    #[test]
    fn ec_ops_dominate_symmetric() {
        let p = sample();
        assert!(p.cost_of(&PrimitiveOp::EcdsaSign) > 50.0 * p.cost_of(&PrimitiveOp::MacTag));
    }
}
