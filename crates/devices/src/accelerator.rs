//! Hardware security modules and crypto accelerators — the paper's
//! future work (§VI): "we plan to investigate the influence of
//! security modules and hardware accelerators when considering the
//! implicit certificate protocols on embedded devices, especially
//! those related to session establishment."
//!
//! An [`Accelerator`] transforms a [`DeviceProfile`] by scaling the
//! primitive classes it offloads. The presets are modeled on common
//! automotive/IoT silicon:
//!
//! * [`Accelerator::SHE`] — an SHE-like module: AES in hardware,
//!   everything else on the core (SHE has no public-key support);
//! * [`Accelerator::HSM_FULL`] — an EVITA-full-class HSM with an ECC
//!   coprocessor (point multiplications ~10× faster) plus hash/AES
//!   engines;
//! * [`Accelerator::INSTRUCTION_EXT`] — ARMv8-style crypto instruction
//!   extensions: big symmetric gains, modest EC gains (field
//!   multiplication still on the integer pipeline).
//!
//! The speedups are parameters, not measurements — the point of the
//! model is *which protocol benefits most*: STS is EC-bound, so an ECC
//! coprocessor closes almost the whole gap to the symmetric-only
//! baselines, while an AES-only SHE barely moves any KD protocol.

use crate::profile::{DeviceProfile, PrimitiveCosts};

/// A crypto-offload model: divide each primitive class's cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Accelerator {
    /// Display name.
    pub name: &'static str,
    /// Speedup on EC operations (keygen, recon, ECDH, sign, verify).
    pub ec_speedup: f64,
    /// Speedup on AES block operations.
    pub aes_speedup: f64,
    /// Speedup on hash/MAC/KDF operations.
    pub hash_speedup: f64,
    /// Speedup on random-number generation (TRNG).
    pub rng_speedup: f64,
}

impl Accelerator {
    /// No acceleration (identity transform).
    pub const NONE: Accelerator = Accelerator {
        name: "software only",
        ec_speedup: 1.0,
        aes_speedup: 1.0,
        hash_speedup: 1.0,
        rng_speedup: 1.0,
    };

    /// SHE-like module: AES and TRNG in hardware, no public-key
    /// support.
    pub const SHE: Accelerator = Accelerator {
        name: "SHE (AES+TRNG)",
        ec_speedup: 1.0,
        aes_speedup: 20.0,
        hash_speedup: 1.0,
        rng_speedup: 10.0,
    };

    /// EVITA-full-class HSM: ECC coprocessor + hash + AES engines.
    pub const HSM_FULL: Accelerator = Accelerator {
        name: "HSM full (ECC copro)",
        ec_speedup: 10.0,
        aes_speedup: 20.0,
        hash_speedup: 8.0,
        rng_speedup: 10.0,
    };

    /// CPU crypto instruction extensions.
    pub const INSTRUCTION_EXT: Accelerator = Accelerator {
        name: "crypto ISA ext.",
        ec_speedup: 2.5,
        aes_speedup: 12.0,
        hash_speedup: 6.0,
        rng_speedup: 1.0,
    };

    /// The preset lineup for the `hsm` bench binary.
    pub const ALL: [Accelerator; 4] = [
        Accelerator::NONE,
        Accelerator::SHE,
        Accelerator::INSTRUCTION_EXT,
        Accelerator::HSM_FULL,
    ];

    /// Applies the acceleration to a device profile.
    ///
    /// # Panics
    ///
    /// Panics when any speedup is not strictly positive.
    pub fn apply(&self, base: &DeviceProfile) -> DeviceProfile {
        assert!(
            self.ec_speedup > 0.0
                && self.aes_speedup > 0.0
                && self.hash_speedup > 0.0
                && self.rng_speedup > 0.0,
            "speedups must be positive"
        );
        let c = &base.costs;
        DeviceProfile {
            name: base.name,
            class: base.class,
            costs: PrimitiveCosts {
                keygen_ms: c.keygen_ms / self.ec_speedup,
                recon_ms: c.recon_ms / self.ec_speedup,
                ecdh_ms: c.ecdh_ms / self.ec_speedup,
                sign_ms: c.sign_ms / self.ec_speedup,
                verify_ms: c.verify_ms / self.ec_speedup,
                aes_block_ms: c.aes_block_ms / self.aes_speedup,
                mac_ms: c.mac_ms / self.hash_speedup,
                kdf_ms: c.kdf_ms / self.hash_speedup,
                rng32_ms: c.rng32_ms / self.rng_speedup,
                hash_block_ms: c.hash_block_ms / self.hash_speedup,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::DevicePreset;
    use crate::timing::sts_operation_times;

    #[test]
    fn none_is_identity() {
        let base = DevicePreset::S32K144.profile();
        assert_eq!(Accelerator::NONE.apply(&base).costs, base.costs);
    }

    #[test]
    fn she_barely_helps_kd_protocols() {
        // The KD handshake is EC-bound: AES offload alone must change
        // the STS per-side total by well under 1 %.
        let base = DevicePreset::Stm32F767.profile();
        let she = Accelerator::SHE.apply(&base);
        let t_base: f64 = sts_operation_times(&base).iter().sum();
        let t_she: f64 = sts_operation_times(&she).iter().sum();
        assert!(t_she < t_base);
        assert!((t_base - t_she) / t_base < 0.01);
    }

    #[test]
    fn hsm_closes_most_of_the_gap() {
        let base = DevicePreset::Stm32F767.profile();
        let hsm = Accelerator::HSM_FULL.apply(&base);
        let t_base: f64 = sts_operation_times(&base).iter().sum();
        let t_hsm: f64 = sts_operation_times(&hsm).iter().sum();
        assert!(t_hsm < t_base / 8.0, "{t_hsm} vs {t_base}");
    }

    #[test]
    fn ordering_of_accelerators() {
        let base = DevicePreset::ATmega2560.profile();
        let totals: Vec<f64> = Accelerator::ALL
            .iter()
            .map(|a| sts_operation_times(&a.apply(&base)).iter().sum())
            .collect();
        // NONE > SHE > ISA ext > HSM full for an EC-bound workload.
        assert!(totals[0] > totals[1]);
        assert!(totals[1] > totals[2]);
        assert!(totals[2] > totals[3]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_speedup_rejected() {
        let bad = Accelerator {
            name: "bad",
            ec_speedup: 0.0,
            aes_speedup: 1.0,
            hash_speedup: 1.0,
            rng_speedup: 1.0,
        };
        bad.apply(&DevicePreset::S32K144.profile());
    }
}
