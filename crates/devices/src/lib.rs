//! Embedded-device cost models for the paper's four evaluation boards.
//!
//! We cannot clock an 8-bit ATmega2560 on the host, so timing is
//! simulated: the protocols execute real cryptography and record a
//! [`ecq_proto::OpTrace`]; this crate integrates those traces against
//! per-board primitive cost tables.
//!
//! # Calibration (see DESIGN.md §5)
//!
//! The paper's Table I plus its optimization formulas (eqs. (5)–(8))
//! over-determine the per-side operation times, so the cost tables are
//! *inverted from the paper's own measurements*:
//!
//! ```text
//! Op1 = (STS − S-ECDSA) / 2        Op2 = STS − Opt.I
//! Op3 = Opt.I − Opt.II             Op4 = STS/2 − (Op1+Op2+Op3)
//! ```
//!
//! With those anchors the S-ECDSA and STS-family rows reproduce the
//! paper's Table I essentially exactly; SCIANC and PORAMB (whose costs
//! follow from their own operation counts) land within ~2–10 % with
//! ordering and ratios preserved. EXPERIMENTS.md records the deltas.
//!
//! # Example
//!
//! ```
//! use ecq_devices::{DevicePreset, timing::sts_operation_times};
//!
//! let stm = DevicePreset::Stm32F767.profile();
//! let ops = sts_operation_times(&stm);
//! // Fig. 3: Op3 (sign + encrypt) dominates on the STM32F767.
//! assert!(ops[2] > ops[0] && ops[2] > ops[1] && ops[2] > ops[3]);
//! ```

#![warn(missing_docs)]

pub mod accelerator;
pub mod presets;
pub mod profile;
pub mod timing;

pub use accelerator::Accelerator;
pub use presets::DevicePreset;
pub use profile::{DeviceProfile, PrimitiveCosts};
pub use timing::{integrate, pair_total, protocol_pair_time, PhaseTimes};
