//! Trace integration and the eqs. (5)–(8) schedule arithmetic.

use crate::profile::DeviceProfile;
use ecq_proto::{OpTrace, ProtocolKind, StsPhase, Transcript};

/// Per-phase integrated times for one endpoint, in ms.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct PhaseTimes {
    /// Op1 — request phase.
    pub op1: f64,
    /// Op2 — key reconstruction/derivation.
    pub op2: f64,
    /// Op3 — signature generation + encryption.
    pub op3: f64,
    /// Op4 — decryption + verification.
    pub op4: f64,
    /// Everything outside the Op1–Op4 taxonomy.
    pub other: f64,
}

impl PhaseTimes {
    /// Total per-side time (the `Σ T_Op` of eq. (5), plus `other`).
    pub fn total(&self) -> f64 {
        self.op1 + self.op2 + self.op3 + self.op4 + self.other
    }

    /// The time booked under one phase.
    pub fn phase(&self, phase: StsPhase) -> f64 {
        match phase {
            StsPhase::Op1Request => self.op1,
            StsPhase::Op2KeyDerivation => self.op2,
            StsPhase::Op3SignEncrypt => self.op3,
            StsPhase::Op4DecryptVerify => self.op4,
            StsPhase::Other => self.other,
        }
    }
}

/// Integrates one endpoint's trace against a device cost table.
pub fn integrate(trace: &OpTrace, device: &DeviceProfile) -> PhaseTimes {
    let mut out = PhaseTimes::default();
    for entry in trace.entries() {
        let cost = device.cost_of(&entry.op);
        match entry.phase {
            StsPhase::Op1Request => out.op1 += cost,
            StsPhase::Op2KeyDerivation => out.op2 += cost,
            StsPhase::Op3SignEncrypt => out.op3 += cost,
            StsPhase::Op4DecryptVerify => out.op4 += cost,
            StsPhase::Other => out.other += cost,
        }
    }
    out
}

/// Total protocol time for a device pair per eqs. (5)–(8).
///
/// * Conventional (eq. (5)): `τ = Σ_A T_Op + Σ_B T_Op` — strictly
///   sequential message-driven execution.
/// * With pipelined phases (eqs. (6)–(8)): each pipelined phase runs
///   concurrently on both devices, so the pair pays
///   `max(T_A, T_B) = T_A + T_B − min(T_A, T_B)` for it. For identical
///   devices the saving is exactly one device's phase time (eqs.
///   (7)/(8)); for different devices the residual `|T_A − T_B|`
///   matches eq. (6).
pub fn pair_total(times_a: &PhaseTimes, times_b: &PhaseTimes, pipelined: &[StsPhase]) -> f64 {
    let mut total = times_a.total() + times_b.total();
    for phase in pipelined {
        total -= times_a.phase(*phase).min(times_b.phase(*phase));
    }
    total
}

/// The phases a protocol variant pipelines (Table I rows).
pub fn pipelined_phases(kind: ProtocolKind) -> &'static [StsPhase] {
    match kind {
        ProtocolKind::StsOptI => &[StsPhase::Op2KeyDerivation],
        ProtocolKind::StsOptII => &[StsPhase::Op2KeyDerivation, StsPhase::Op3SignEncrypt],
        _ => &[],
    }
}

/// Total simulated time (ms) of a handshake transcript for a device
/// pair, honouring the protocol's pipelining schedule.
pub fn protocol_pair_time(
    kind: ProtocolKind,
    transcript: &Transcript,
    device_a: &DeviceProfile,
    device_b: &DeviceProfile,
) -> f64 {
    let a = integrate(transcript.trace(ecq_proto::Role::Initiator), device_a);
    let b = integrate(transcript.trace(ecq_proto::Role::Responder), device_b);
    pair_total(&a, &b, pipelined_phases(kind))
}

/// The Fig. 3 data series: per-side STS operation times
/// `[Op1, Op2, Op3, Op4]` on a device, from the cost table's
/// decomposition (keygen+rng, recon+ecdh+kdf, sign+4·AES,
/// verify+4·AES).
pub fn sts_operation_times(device: &DeviceProfile) -> [f64; 4] {
    let c = &device.costs;
    [
        c.keygen_ms + c.rng32_ms,
        c.recon_ms + c.ecdh_ms + c.kdf_ms,
        c.sign_ms + 4.0 * c.aes_block_ms,
        c.verify_ms + 4.0 * c.aes_block_ms,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::DevicePreset;
    use ecq_proto::PrimitiveOp;

    fn sts_like_trace() -> OpTrace {
        // One side of an STS run, as the real endpoints record it.
        let mut t = OpTrace::new();
        t.record(StsPhase::Op1Request, PrimitiveOp::RandomBytes { bytes: 32 });
        t.record(StsPhase::Op1Request, PrimitiveOp::EphemeralKeyGen);
        t.record(StsPhase::Op2KeyDerivation, PrimitiveOp::EcdhDerive);
        t.record(StsPhase::Op2KeyDerivation, PrimitiveOp::Kdf);
        t.record(
            StsPhase::Op2KeyDerivation,
            PrimitiveOp::PublicKeyReconstruction,
        );
        t.record(StsPhase::Op3SignEncrypt, PrimitiveOp::EcdsaSign);
        t.record(
            StsPhase::Op3SignEncrypt,
            PrimitiveOp::AesEncrypt { blocks: 4 },
        );
        t.record(
            StsPhase::Op4DecryptVerify,
            PrimitiveOp::AesDecrypt { blocks: 4 },
        );
        t.record(StsPhase::Op4DecryptVerify, PrimitiveOp::EcdsaVerify);
        t
    }

    #[test]
    fn integration_reproduces_fitted_op_times() {
        for preset in DevicePreset::ALL {
            let profile = preset.profile();
            let times = integrate(&sts_like_trace(), &profile);
            let fitted = preset.fitted_op_times();
            assert!((times.op1 - fitted[0]).abs() < 1e-6, "{preset:?} op1");
            assert!((times.op2 - fitted[1]).abs() < 1e-6, "{preset:?} op2");
            assert!((times.op3 - fitted[2]).abs() < 1e-6, "{preset:?} op3");
            assert!((times.op4 - fitted[3]).abs() < 1e-6, "{preset:?} op4");
        }
    }

    #[test]
    fn identical_pair_matches_paper_equations() {
        let profile = DevicePreset::Stm32F767.profile();
        let a = integrate(&sts_like_trace(), &profile);
        let b = a;
        let conventional = pair_total(&a, &b, &[]);
        let opt1 = pair_total(&a, &b, pipelined_phases(ProtocolKind::StsOptI));
        let opt2 = pair_total(&a, &b, pipelined_phases(ProtocolKind::StsOptII));
        // eq. (7): τ' = τ − T_Op2 ; eq. (8): τ'' = τ − T_Op2 − T_Op3.
        assert!((conventional - opt1 - a.op2).abs() < 1e-9);
        assert!((conventional - opt2 - a.op2 - a.op3).abs() < 1e-9);
        assert!(opt2 < opt1 && opt1 < conventional);
    }

    #[test]
    fn heterogeneous_pair_follows_eq6() {
        // eq. (6): pipelining across different boards leaves the
        // residual |T_A − T_B|.
        let stm = DevicePreset::Stm32F767.profile();
        let s32 = DevicePreset::S32K144.profile();
        let a = integrate(&sts_like_trace(), &stm);
        let b = integrate(&sts_like_trace(), &s32);
        let opt1 = pair_total(&a, &b, pipelined_phases(ProtocolKind::StsOptI));
        let conventional = pair_total(&a, &b, &[]);
        let residual = (a.op2 - b.op2).abs();
        let expected_saving = a.op2 + b.op2 - (a.op2.min(b.op2));
        assert!((conventional - opt1 - (a.op2 + b.op2 - expected_saving)).abs() < 1e-9);
        // Residual interpretation: pipelined phase now costs max = min + |diff|.
        assert!(((conventional - opt1) - (a.op2.min(b.op2))).abs() < 1e-9);
        assert!(residual < a.op2 + b.op2);
    }

    #[test]
    fn fig3_shape_op3_dominates() {
        let ops = sts_operation_times(&DevicePreset::Stm32F767.profile());
        assert!(ops[2] > ops[0]);
        assert!(ops[2] > ops[1]);
        assert!(ops[2] > ops[3]);
        // Fitted absolute values.
        assert!((ops[0] - 320.15).abs() < 1e-6);
        assert!((ops[2] - 598.77).abs() < 1e-6);
    }

    #[test]
    fn phase_accessor_consistency() {
        let profile = DevicePreset::S32K144.profile();
        let t = integrate(&sts_like_trace(), &profile);
        assert_eq!(t.phase(StsPhase::Op1Request), t.op1);
        assert_eq!(t.phase(StsPhase::Other), t.other);
        assert!(t.total() > 0.0);
    }
}
