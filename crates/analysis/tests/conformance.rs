//! Adversarial conformance suite: every named fault scenario must end
//! in its paper-predicted outcome.
//!
//! The contract under test (see `ecq_fleet::scenario`): a handshake on
//! a faulted shared bus either completes with bit-equal session keys on
//! both endpoints or fails closed with the *specific* expected error —
//! never a silent key mismatch, never a session keyed against a peer
//! whose revocation already propagated, and never collateral damage to
//! bystander sessions sharing the bus.

use ecq_fleet::scenario::{by_name, catalog, Expected};
use ecq_proto::ProtocolError;

/// Every catalog scenario runs and satisfies its contract. One test
/// per scenario would be nicer output-wise, but the catalog is data —
/// iterating it here means adding a scenario automatically puts it
/// under conformance.
#[test]
fn every_scenario_meets_its_predicted_outcome() {
    assert!(catalog().len() >= 8, "catalog shrank below the spec floor");
    for scenario in catalog() {
        let out = scenario.verify();
        // Fault evidence must reach the report: an injected scenario
        // with all-zero counters means the fault never fired.
        let c = out.report.faults;
        let injected = c.dropped
            + c.corrupted
            + c.duplicated
            + c.held_back
            + c.delayed
            + c.replayed
            + c.storm_frames;
        let has_revocation = scenario.revocation.is_some();
        let has_skew = scenario.faults.skew_ppm != [0, 0];
        assert!(
            injected > 0 || has_revocation || has_skew,
            "{}: fault schedule left no trace in the report",
            scenario.name
        );
    }
}

/// The catalog covers both conformance classes: sound completion under
/// degradation AND fail-closed rejection, across distinct error kinds.
#[test]
fn catalog_spans_completion_and_fail_closed_outcomes() {
    let mut completes = 0;
    let mut fails: Vec<ProtocolError> = Vec::new();
    for s in catalog() {
        match s.expected {
            Expected::Completes | Expected::CompletesSlower => completes += 1,
            Expected::FailsClosed(e) => {
                if !fails.contains(&e) {
                    fails.push(e);
                }
            }
        }
    }
    assert!(completes >= 2, "need scenarios that survive their faults");
    assert!(
        fails.len() >= 4,
        "need ≥4 distinct fail-closed error kinds, got {fails:?}"
    );
    assert!(
        fails.contains(&ProtocolError::AuthenticationFailed),
        "a corruption scenario must surface as an authentication failure"
    );
    assert!(
        fails.contains(&ProtocolError::Timeout),
        "a loss scenario must surface as a fail-closed timeout"
    );
}

/// Scenario runs are deterministic: the same scenario reproduces the
/// same report bit-for-bit (outcome digest included).
#[test]
fn scenario_runs_are_reproducible() {
    let scenario = by_name("corrupt-b1-auth").expect("catalog scenario");
    let a = scenario.run();
    let b = scenario.run();
    assert_eq!(a.report, b.report);
    assert_eq!(a.session_failures, b.session_failures);
    assert_eq!(a.makespan_us, b.makespan_us);
}

/// The stale-CRL window is a real exposure: the *same* revocation
/// event flips the outcome purely on CRL propagation latency.
#[test]
fn crl_propagation_latency_flips_the_revocation_outcome() {
    let prompt = by_name("revocation-mid-handshake").expect("catalog scenario");
    let stale = by_name("stale-crl-accept-window").expect("catalog scenario");
    let denied = prompt.run();
    let accepted = stale.run();
    assert_eq!(
        denied.target_failure,
        Some(ProtocolError::Cert(ecq_cert::CertError::Revoked))
    );
    assert!(!denied.target_keyed);
    assert_eq!(accepted.target_failure, None);
    assert!(
        accepted.target_keyed,
        "inside the stale window the revoked peer is still accepted — \
         that acceptance *is* the measured exposure"
    );
}

/// An arbitration storm costs time, not soundness: same keys as the
/// fault-free baseline timeline would produce, later.
#[test]
fn arbitration_storm_slows_but_never_corrupts() {
    let out = by_name("arbitration-storm")
        .expect("catalog scenario")
        .verify();
    assert!(out.report.faults.storm_frames > 0, "storm never fired");
    assert_eq!(out.report.faults.messages_lost, 0);
    assert_eq!(out.report.timeouts, 0);
}
