//! The threat model of §IV-A and the protection scale of Table III.

/// The five threats the design must answer (paper §IV-A).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Threat {
    /// T1 — past data exposure.
    PastDataExposure,
    /// T2 — man-in-the-middle attacks.
    Mitm,
    /// T3 — node capturing attacks.
    NodeCapture,
    /// T4 — key data reuse for further session calculations.
    KeyDataReuse,
    /// T5 — key derivation exploitation.
    KeyDerivationExploit,
}

impl Threat {
    /// All threats, T1–T5.
    pub const ALL: [Threat; 5] = [
        Threat::PastDataExposure,
        Threat::Mitm,
        Threat::NodeCapture,
        Threat::KeyDataReuse,
        Threat::KeyDerivationExploit,
    ];

    /// The paper's tag ("T1"…"T5").
    pub fn tag(&self) -> &'static str {
        match self {
            Threat::PastDataExposure => "T1",
            Threat::Mitm => "T2",
            Threat::NodeCapture => "T3",
            Threat::KeyDataReuse => "T4",
            Threat::KeyDerivationExploit => "T5",
        }
    }

    /// Human-readable name (Table III row labels).
    pub fn label(&self) -> &'static str {
        match self {
            Threat::PastDataExposure => "Data exposure",
            Threat::Mitm => "MitM / Auth. procedure",
            Threat::NodeCapture => "Node capturing",
            Threat::KeyDataReuse => "Key data reuse",
            Threat::KeyDerivationExploit => "Key der. exploit",
        }
    }

    /// Which system asset the threat targets (Fig. 8 left column).
    pub fn asset(&self) -> &'static str {
        match self {
            Threat::PastDataExposure | Threat::KeyDataReuse => "Session Data",
            Threat::Mitm | Threat::NodeCapture | Threat::KeyDerivationExploit => {
                "Security Credentials"
            }
        }
    }
}

/// Table III's three-level protection scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Protection {
    /// ✗ — weak or no countermeasure.
    Weak,
    /// ∆ — partial protection.
    Partial,
    /// ✓ — fully protected.
    Full,
}

impl Protection {
    /// The paper's glyph.
    pub fn glyph(&self) -> &'static str {
        match self {
            Protection::Weak => "✗",
            Protection::Partial => "∆",
            Protection::Full => "✓",
        }
    }
}

impl core::fmt::Display for Protection {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.glyph())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_and_assets() {
        assert_eq!(Threat::PastDataExposure.tag(), "T1");
        assert_eq!(Threat::KeyDerivationExploit.tag(), "T5");
        assert_eq!(Threat::PastDataExposure.asset(), "Session Data");
        assert_eq!(Threat::Mitm.asset(), "Security Credentials");
    }

    #[test]
    fn protection_is_ordered() {
        assert!(Protection::Weak < Protection::Partial);
        assert!(Protection::Partial < Protection::Full);
        assert_eq!(Protection::Full.glyph(), "✓");
    }
}
