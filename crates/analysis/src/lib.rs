//! Security analysis of the KD protocols (paper §IV-A, §V-D).
//!
//! Two complementary halves:
//!
//! * a **rule-based model** ([`properties`], [`threats`], [`rules`])
//!   that derives the paper's Table III from structural protocol
//!   properties rather than hardcoding verdicts, and renders the Fig. 8
//!   threat/countermeasure diagram ([`diagram`]);
//! * **executable attacks** ([`attacks`]) that turn the qualitative
//!   claims into passing tests: passive capture plus later key
//!   compromise (forward secrecy), key-material reuse, MitM without CA
//!   material, and a key-compromise-impersonation (KCI) attack that
//!   succeeds against the session-key-bound baseline and fails against
//!   STS.

#![warn(missing_docs)]

pub mod attacks;
pub mod diagram;
pub mod properties;
pub mod rules;
pub mod threats;

pub use properties::{AuthMechanism, KeyDiversification, ProtocolProperties};
pub use rules::{security_matrix, SecurityMatrix};
pub use threats::{Protection, Threat};
