//! The Fig. 8 threat-model block diagram for the STS-ECQV KD.
//!
//! Assets ← threats ← countermeasures, with the one partial edge the
//! paper marks `[R]`: node capture is only mitigated for *past*
//! traffic.

use crate::threats::Threat;

/// The countermeasures of Fig. 8.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Countermeasure {
    /// C1 — forward secrecy (ephemeral STS exchange).
    ForwardSecrecy,
    /// C2 — ECDSA authentication under ECQV-certified keys.
    EcdsaAuthentication,
    /// C3 — the combined STS & ECQV protocol property (encrypted,
    /// transcript-bound authentication responses).
    StsEcqvProperty,
}

impl Countermeasure {
    /// The paper's tag.
    pub fn tag(&self) -> &'static str {
        match self {
            Countermeasure::ForwardSecrecy => "C1",
            Countermeasure::EcdsaAuthentication => "C2",
            Countermeasure::StsEcqvProperty => "C3",
        }
    }

    /// Label text.
    pub fn label(&self) -> &'static str {
        match self {
            Countermeasure::ForwardSecrecy => "Forward Secrecy",
            Countermeasure::EcdsaAuthentication => "ECDSA Authentication",
            Countermeasure::StsEcqvProperty => "STS & ECQV Property",
        }
    }
}

/// An edge of the diagram: countermeasure → threat, possibly partial.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Mitigation {
    /// The countermeasure.
    pub counter: Countermeasure,
    /// The threat it addresses.
    pub threat: Threat,
    /// Whether protection is only partial (the paper's `[R]` edge).
    pub partial: bool,
}

/// The Fig. 8 edge set for the STS-ECQV design.
pub fn mitigations() -> Vec<Mitigation> {
    use Countermeasure::*;
    vec![
        Mitigation {
            counter: ForwardSecrecy,
            threat: Threat::PastDataExposure,
            partial: false,
        },
        Mitigation {
            counter: ForwardSecrecy,
            threat: Threat::NodeCapture,
            partial: true, // [R]: past messages only
        },
        Mitigation {
            counter: ForwardSecrecy,
            threat: Threat::KeyDataReuse,
            partial: false,
        },
        Mitigation {
            counter: EcdsaAuthentication,
            threat: Threat::Mitm,
            partial: false,
        },
        Mitigation {
            counter: StsEcqvProperty,
            threat: Threat::KeyDerivationExploit,
            partial: false,
        },
        Mitigation {
            counter: StsEcqvProperty,
            threat: Threat::KeyDataReuse,
            partial: false,
        },
    ]
}

/// Renders the diagram as indented text.
pub fn render_text() -> String {
    let mut out = String::new();
    out.push_str("STS-ECQV KD threat model (paper Fig. 8)\n");
    out.push_str("=======================================\n");
    for asset in ["Session Data", "Security Credentials"] {
        out.push_str(&format!("[asset] {asset}\n"));
        for threat in Threat::ALL {
            if threat.asset() != asset {
                continue;
            }
            out.push_str(&format!("  [{}] {}\n", threat.tag(), threat.label()));
            for m in mitigations().iter().filter(|m| m.threat == threat) {
                out.push_str(&format!(
                    "    ← [{}] {}{}\n",
                    m.counter.tag(),
                    m.counter.label(),
                    if m.partial {
                        "  [R] partial protection"
                    } else {
                        ""
                    }
                ));
            }
        }
    }
    out
}

/// Renders the diagram in Graphviz DOT.
pub fn render_dot() -> String {
    let mut out = String::from("digraph sts_ecqv_threat_model {\n  rankdir=LR;\n");
    out.push_str("  node [shape=box];\n");
    for threat in Threat::ALL {
        out.push_str(&format!(
            "  \"{}\" -> \"{}\";\n",
            threat.tag(),
            threat.asset()
        ));
        out.push_str(&format!(
            "  \"{}\" [label=\"{} {}\"];\n",
            threat.tag(),
            threat.tag(),
            threat.label()
        ));
    }
    for m in mitigations() {
        out.push_str(&format!(
            "  \"{}\" -> \"{}\" [style={}];\n",
            m.counter.tag(),
            m.threat.tag(),
            if m.partial { "dashed" } else { "solid" }
        ));
        out.push_str(&format!(
            "  \"{}\" [label=\"{} {}\" shape=ellipse];\n",
            m.counter.tag(),
            m.counter.tag(),
            m.counter.label()
        ));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_threat_has_a_mitigation() {
        let edges = mitigations();
        for threat in Threat::ALL {
            assert!(
                edges.iter().any(|m| m.threat == threat),
                "{threat:?} unmitigated"
            );
        }
    }

    #[test]
    fn node_capture_is_the_only_partial_edge() {
        let partials: Vec<_> = mitigations().into_iter().filter(|m| m.partial).collect();
        assert_eq!(partials.len(), 1);
        assert_eq!(partials[0].threat, Threat::NodeCapture);
    }

    #[test]
    fn text_render_mentions_everything() {
        let s = render_text();
        for threat in Threat::ALL {
            assert!(s.contains(threat.tag()));
        }
        assert!(s.contains("[R] partial"));
        assert!(s.contains("Session Data"));
    }

    #[test]
    fn dot_render_is_valid_shape() {
        let s = render_dot();
        assert!(s.starts_with("digraph"));
        assert!(s.ends_with("}\n"));
        assert!(s.contains("style=dashed"));
    }
}
