//! The key-data-reuse experiment (threat T4).
//!
//! §II-A: with a static KD, "as long as the private and public key
//! pairs are not updated, the underlying session key will also not
//! change". This module measures exactly that: the entropy source of
//! every session under fixed certificates.

use super::TestDeployment;
use ecq_baselines::{establish_s_ecdsa, establish_scianc, skd};
use ecq_proto::ProtocolError;
use ecq_sts::{establish, StsConfig};

/// Result of running `n` sessions under unchanged certificates.
#[derive(Debug)]
pub struct ReuseReport {
    /// Distinct session keys observed.
    pub distinct_session_keys: usize,
    /// Distinct underlying premaster secrets observed.
    pub distinct_premasters: usize,
    /// Sessions run.
    pub sessions: usize,
}

/// Runs `n` S-ECDSA sessions: keys differ (nonces) but the premaster
/// is constant — the "key data reuse" weakness.
///
/// # Errors
///
/// Propagates handshake errors.
pub fn s_ecdsa_reuse(
    deployment: &mut TestDeployment,
    n: usize,
) -> Result<ReuseReport, ProtocolError> {
    let mut keys = Vec::new();
    for _ in 0..n {
        let out = establish_s_ecdsa(
            &deployment.alice,
            &deployment.bob,
            0,
            false,
            &mut deployment.rng,
        )?;
        keys.push(*out.initiator_key.as_bytes());
    }
    // The premaster is recomputable without any session state:
    let premaster = skd::static_premaster(&deployment.alice, &deployment.bob.cert)?;
    let premasters = vec![*premaster; n]; // identical every session
    Ok(report(keys, premasters))
}

/// Runs `n` SCIANC sessions (same structural weakness).
///
/// # Errors
///
/// Propagates handshake errors.
pub fn scianc_reuse(
    deployment: &mut TestDeployment,
    n: usize,
) -> Result<ReuseReport, ProtocolError> {
    let mut keys = Vec::new();
    for _ in 0..n {
        let out = establish_scianc(&deployment.alice, &deployment.bob, 0, &mut deployment.rng)?;
        keys.push(*out.initiator_key.as_bytes());
    }
    let premaster = skd::static_premaster(&deployment.alice, &deployment.bob.cert)?;
    Ok(report(keys, vec![*premaster; n]))
}

/// Runs `n` STS sessions: both the keys *and* the underlying
/// premasters are fresh.
///
/// # Errors
///
/// Propagates handshake errors.
pub fn sts_reuse(deployment: &mut TestDeployment, n: usize) -> Result<ReuseReport, ProtocolError> {
    let mut keys = Vec::new();
    let mut premasters = Vec::new();
    for _ in 0..n {
        let out = establish(
            &deployment.alice,
            &deployment.bob,
            &StsConfig::default(),
            &mut deployment.rng,
        )?;
        keys.push(*out.initiator_key.as_bytes());
        // The session key is the only artifact; each is derived from a
        // distinct ephemeral premaster (witnessed by key distinctness —
        // HKDF with identical premaster+salt would collide).
        premasters.push(*out.initiator_key.as_bytes());
    }
    Ok(report(keys, premasters))
}

fn report(keys: Vec<[u8; 32]>, premasters: Vec<[u8; 32]>) -> ReuseReport {
    let sessions = keys.len();
    let mut k = keys;
    k.sort();
    k.dedup();
    let mut p = premasters;
    p.sort();
    p.dedup();
    ReuseReport {
        distinct_session_keys: k.len(),
        distinct_premasters: p.len(),
        sessions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skd_premaster_is_reused() {
        let mut d = TestDeployment::new(311);
        let r = s_ecdsa_reuse(&mut d, 5).unwrap();
        assert_eq!(r.sessions, 5);
        assert_eq!(r.distinct_session_keys, 5, "nonces diversify the output");
        assert_eq!(
            r.distinct_premasters, 1,
            "but the secret base never changes"
        );

        let r = scianc_reuse(&mut d, 5).unwrap();
        assert_eq!(r.distinct_premasters, 1);
    }

    #[test]
    fn sts_everything_fresh() {
        let mut d = TestDeployment::new(312);
        let r = sts_reuse(&mut d, 5).unwrap();
        assert_eq!(r.distinct_session_keys, 5);
        assert_eq!(r.distinct_premasters, 5);
    }
}
