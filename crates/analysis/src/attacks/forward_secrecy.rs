//! The forward-secrecy experiment (threat T1, "past data exposure").
//!
//! Scenario: a passive eavesdropper records a complete handshake plus
//! encrypted application traffic. *Later*, the devices' long-term
//! private keys leak (node capture, extraction, disclosure — the
//! OWASP/SEC-Consult scenarios the paper's introduction cites). Can
//! the recorded traffic now be decrypted?
//!
//! * **S-ECDSA**: yes. The premaster is `Prk_A·Q_B`; the attacker
//!   holds `Prk_A`, derives `Q_B` implicitly from the certificate in
//!   the recorded `B1`, reads the nonces from `A1`/`B1`, and re-runs
//!   the KDF.
//! * **STS**: no. The premaster is `X_A·XG_B` over ephemeral secrets
//!   that were erased when the session closed; the long-term keys only
//!   ever signed. The best the attacker can do is the static secret —
//!   which derives a different key.

use super::TestDeployment;
use ecq_baselines::{establish_s_ecdsa, s_ecdsa};
use ecq_cert::ImplicitCert;
use ecq_p256::point::AffinePoint;
use ecq_p256::scalar::Scalar;
use ecq_proto::{FieldKind, Message, ProtocolError, SessionKey, Transcript};
use ecq_sts::{establish, StsConfig};

/// Everything a passive eavesdropper captures.
#[derive(Debug)]
pub struct CapturedSession {
    /// The recorded handshake.
    pub transcript: Transcript,
    /// Recorded ciphertext of application data sent under the session
    /// key after establishment.
    pub ciphertext: Vec<u8>,
    /// The true plaintext (known to the experiment for verification,
    /// not to the attacker).
    pub plaintext: Vec<u8>,
    /// The true session key (for verification only).
    pub true_key: SessionKey,
}

/// CTR direction byte used for the recorded application data.
const APP_DIR: u8 = 0xDD;

fn encrypt_app_data(key: &SessionKey, plaintext: &[u8]) -> Vec<u8> {
    let mut data = plaintext.to_vec();
    key.apply_stream(APP_DIR, &mut data);
    data
}

/// Runs an S-ECDSA session and records it.
///
/// # Errors
///
/// Propagates handshake errors.
pub fn capture_s_ecdsa(deployment: &mut TestDeployment) -> Result<CapturedSession, ProtocolError> {
    let out = establish_s_ecdsa(
        &deployment.alice,
        &deployment.bob,
        0,
        false,
        &mut deployment.rng,
    )?;
    let plaintext = b"BMS cell telemetry: v=3.71V t=25.4C soc=81%".to_vec();
    let ciphertext = encrypt_app_data(&out.initiator_key, &plaintext);
    Ok(CapturedSession {
        transcript: out.transcript,
        ciphertext,
        plaintext,
        true_key: out.initiator_key,
    })
}

/// Runs an STS session and records it.
///
/// # Errors
///
/// Propagates handshake errors.
pub fn capture_sts(deployment: &mut TestDeployment) -> Result<CapturedSession, ProtocolError> {
    let out = establish(
        &deployment.alice,
        &deployment.bob,
        &StsConfig::default(),
        &mut deployment.rng,
    )?;
    let plaintext = b"BMS cell telemetry: v=3.71V t=25.4C soc=81%".to_vec();
    let ciphertext = encrypt_app_data(&out.initiator_key, &plaintext);
    Ok(CapturedSession {
        transcript: out.transcript,
        ciphertext,
        plaintext,
        true_key: out.initiator_key,
    })
}

/// Offline S-ECDSA decryption with a leaked long-term key.
///
/// The attacker holds `leaked_alice_private` and the public CA key;
/// everything else is read from the recorded transcript.
///
/// Returns the recovered plaintext when the attack succeeds.
pub fn s_ecdsa_offline_decrypt(
    captured: &CapturedSession,
    leaked_alice_private: &Scalar,
    ca_public: &AffinePoint,
) -> Option<Vec<u8>> {
    // Parse A1 and B1 from the recorded bytes.
    let a1 = Message::decode(
        "A1",
        &[FieldKind::Id, FieldKind::Nonce],
        &captured.transcript.messages().first()?.bytes,
    )
    .ok()?;
    let b1 = Message::decode(
        "B1",
        &[
            FieldKind::Id,
            FieldKind::Cert,
            FieldKind::Signature,
            FieldKind::Nonce,
        ],
        &captured.transcript.messages().get(1)?.bytes,
    )
    .ok()?;

    let nonce_a = a1.field(FieldKind::Nonce).ok()?;
    let nonce_b = b1.field(FieldKind::Nonce).ok()?;
    let cert_b = ImplicitCert::from_bytes(b1.field(FieldKind::Cert).ok()?).ok()?;

    // Implicit public-key derivation needs only public material.
    let q_b = ecq_cert::reconstruct_public_key(&cert_b, ca_public).ok()?;
    let premaster = ecq_p256::ecdh::shared_secret(leaked_alice_private, &q_b).ok()?;
    let salt = [nonce_a, nonce_b].concat();
    let key = SessionKey::derive(premaster.as_slice(), &salt, s_ecdsa::KDF_LABEL);

    let mut plain = captured.ciphertext.clone();
    key.apply_stream(APP_DIR, &mut plain);
    Some(plain)
}

/// The best offline attack against a recorded STS session with leaked
/// long-term keys: recompute the *static* secret and try it (with the
/// recorded ephemeral points as salt). Returns the candidate
/// "plaintext" — which the caller will find to be garbage.
pub fn sts_offline_decrypt_attempt(
    captured: &CapturedSession,
    leaked_alice_private: &Scalar,
    ca_public: &AffinePoint,
) -> Option<Vec<u8>> {
    let a1 = Message::decode(
        "A1",
        &[FieldKind::Id, FieldKind::EphemeralPoint],
        &captured.transcript.messages().first()?.bytes,
    )
    .ok()?;
    let b1 = Message::decode(
        "B1",
        &[
            FieldKind::Id,
            FieldKind::Cert,
            FieldKind::EphemeralPoint,
            FieldKind::Response,
        ],
        &captured.transcript.messages().get(1)?.bytes,
    )
    .ok()?;
    let xg_a = a1.field(FieldKind::EphemeralPoint).ok()?;
    let xg_b = b1.field(FieldKind::EphemeralPoint).ok()?;
    let cert_b = ImplicitCert::from_bytes(b1.field(FieldKind::Cert).ok()?).ok()?;

    // The attacker knows Prk_A and Q_B — but the session premaster was
    // X_A·XG_B, and X_A is gone. The static secret is the only thing
    // derivable:
    let q_b = ecq_cert::reconstruct_public_key(&cert_b, ca_public).ok()?;
    let static_secret = ecq_p256::ecdh::shared_secret(leaked_alice_private, &q_b).ok()?;
    let salt = [xg_a, xg_b].concat();
    let candidate = SessionKey::derive(static_secret.as_slice(), &salt, ecq_sts::KDF_LABEL);

    let mut plain = captured.ciphertext.clone();
    candidate.apply_stream(APP_DIR, &mut plain);
    Some(plain)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s_ecdsa_past_traffic_decrypts_after_key_leak() {
        let mut d = TestDeployment::new(301);
        let captured = capture_s_ecdsa(&mut d).unwrap();
        let leaked = d.alice.keys.private; // the later compromise
        let recovered =
            s_ecdsa_offline_decrypt(&captured, &leaked, &d.ca.public_key()).expect("attack runs");
        assert_eq!(
            recovered, captured.plaintext,
            "S-ECDSA lacks forward secrecy"
        );
    }

    #[test]
    fn s_ecdsa_attack_also_works_with_bobs_key() {
        // Symmetric: either side's leak suffices. With Bob's key the
        // attacker derives Q_A from Cert_A in A2 — equivalent attack,
        // demonstrated through the recomputed static secret.
        let mut d = TestDeployment::new(302);
        let captured = capture_s_ecdsa(&mut d).unwrap();
        // Recompute from Bob's side directly (Q_A from credentials is
        // public via the certificate):
        let premaster =
            ecq_p256::ecdh::shared_secret(&d.bob.keys.private, &d.alice.keys.public).unwrap();
        let a1 = &captured.transcript.messages()[0].bytes;
        let b1 = &captured.transcript.messages()[1].bytes;
        let salt = [&a1[16..48], &b1[181..213]].concat();
        let key = SessionKey::derive(premaster.as_slice(), &salt, s_ecdsa::KDF_LABEL);
        assert_eq!(key, captured.true_key);
    }

    #[test]
    fn sts_past_traffic_survives_key_leak() {
        let mut d = TestDeployment::new(303);
        let captured = capture_sts(&mut d).unwrap();
        let leaked_a = d.alice.keys.private;
        let leaked_b = d.bob.keys.private;
        let attempt =
            sts_offline_decrypt_attempt(&captured, &leaked_a, &d.ca.public_key()).unwrap();
        assert_ne!(attempt, captured.plaintext, "STS must keep forward secrecy");
        // Even with BOTH long-term keys the static secret is wrong.
        let attempt_b =
            sts_offline_decrypt_attempt(&captured, &leaked_b, &d.ca.public_key()).unwrap();
        assert_ne!(attempt_b, captured.plaintext);
    }

    #[test]
    fn sts_key_is_not_the_static_key() {
        let mut d = TestDeployment::new(304);
        let captured = capture_sts(&mut d).unwrap();
        let static_secret =
            ecq_p256::ecdh::shared_secret(&d.alice.keys.private, &d.bob.keys.public).unwrap();
        // No salt choice makes the static secret equal the session key.
        let candidate = SessionKey::derive(static_secret.as_slice(), b"", ecq_sts::KDF_LABEL);
        assert_ne!(candidate, captured.true_key);
    }
}
