//! Man-in-the-middle experiments (threat T2).
//!
//! Two attacker models against STS:
//!
//! 1. **Rogue-certificate attacker**: holds a syntactically valid
//!    implicit certificate — but from a different CA. The implicit
//!    derivation (eq. (1)) under the victim's CA key yields a public
//!    key the attacker does not control, so the authentication
//!    response never verifies.
//! 2. **Point-substitution attacker**: relays the handshake but
//!    replaces an ephemeral point with its own (the classic unauth-DH
//!    MitM). The STS signatures cover `XG_own ‖ XG_peer`, so the
//!    substitution breaks verification.

use super::TestDeployment;
use ecq_cert::ca::CertificateAuthority;
use ecq_cert::DeviceId;
use ecq_crypto::HmacDrbg;
use ecq_p256::encoding::encode_raw;
use ecq_p256::point::mul_generator_vartime;
use ecq_p256::scalar::Scalar;
use ecq_proto::{Credentials, Endpoint, FieldKind, ProtocolError};
use ecq_sts::{StsConfig, StsInitiator, StsResponder};

/// Outcome of a MitM attempt.
#[derive(Debug, PartialEq, Eq)]
pub enum MitmOutcome {
    /// The victim rejected the attacker (the desired result).
    Rejected(ProtocolError),
    /// The victim established a session with the attacker.
    Compromised,
}

/// Attack 1: a rogue-CA attacker answers Alice's STS request with its
/// own certificate chain.
pub fn sts_rogue_certificate(deployment: &mut TestDeployment) -> MitmOutcome {
    // The attacker runs its own CA and provisions itself — everything
    // self-consistent, just not rooted in the victim's CA.
    let mut attacker_rng = HmacDrbg::from_seed(0xEE11);
    let rogue_ca = CertificateAuthority::new(DeviceId::from_label("rogueCA"), &mut attacker_rng);
    let attacker_creds = Credentials::provision(
        &rogue_ca,
        DeviceId::from_label("bob"), // even claims to be bob
        0,
        1000,
        &mut attacker_rng,
    )
    .expect("attacker self-provisioning");

    let config = StsConfig::default();
    let mut alice = StsInitiator::new(deployment.alice.clone(), config, &mut deployment.rng);
    // The attacker plays a fully honest STS responder — with the wrong root.
    let mut attacker = StsResponder::new(attacker_creds, config, &mut attacker_rng);

    let a1 = alice.start().expect("start").expect("A1");
    let b1 = attacker
        .on_message(&a1)
        .expect("attacker replies")
        .expect("B1");
    match alice.on_message(&b1) {
        Err(e) => MitmOutcome::Rejected(e),
        Ok(_) => MitmOutcome::Compromised,
    }
}

/// Attack 2: a relay attacker substitutes Bob's ephemeral point with
/// its own in flight.
pub fn sts_point_substitution(deployment: &mut TestDeployment) -> MitmOutcome {
    let config = StsConfig::default();
    let mut rng_b = HmacDrbg::new(&deployment.rng.bytes32(), b"bob");
    let mut alice = StsInitiator::new(deployment.alice.clone(), config, &mut deployment.rng);
    let mut bob = StsResponder::new(deployment.bob.clone(), config, &mut rng_b);

    let a1 = alice.start().expect("start").expect("A1");
    let mut b1 = bob.on_message(&a1).expect("bob replies").expect("B1");

    // The attacker swaps XG_B for a point it controls.
    let evil_scalar = Scalar::from_u64(0xEEEE);
    let evil_point = encode_raw(&mul_generator_vartime(&evil_scalar));
    for f in &mut b1.fields {
        if f.kind == FieldKind::EphemeralPoint {
            f.bytes = evil_point.to_vec();
        }
    }
    match alice.on_message(&b1) {
        Err(e) => MitmOutcome::Rejected(e),
        Ok(_) => MitmOutcome::Compromised,
    }
}

/// Attack 3: a replay attacker records Bob's `B1` from an old session
/// and replays it into a new handshake with Alice. The old signature
/// covers the *old* ephemeral pair, so the fresh `XG_A` breaks it —
/// STS is replay-safe by construction.
pub fn sts_replay(deployment: &mut TestDeployment) -> MitmOutcome {
    let config = StsConfig::default();

    // Session 1: honest; the attacker records B1.
    let mut rng_b = HmacDrbg::new(&deployment.rng.bytes32(), b"bob1");
    let mut alice1 = StsInitiator::new(deployment.alice.clone(), config, &mut deployment.rng);
    let mut bob1 = StsResponder::new(deployment.bob.clone(), config, &mut rng_b);
    let a1 = alice1.start().expect("start").expect("A1");
    let recorded_b1 = bob1.on_message(&a1).expect("bob replies").expect("B1");

    // Session 2: the attacker answers Alice's fresh request with the
    // recorded message.
    let mut alice2 = StsInitiator::new(deployment.alice.clone(), config, &mut deployment.rng);
    let _a1_fresh = alice2.start().expect("start").expect("A1");
    match alice2.on_message(&recorded_b1) {
        Err(e) => MitmOutcome::Rejected(e),
        Ok(_) => MitmOutcome::Compromised,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rogue_certificate_rejected() {
        let mut d = TestDeployment::new(321);
        assert_eq!(
            sts_rogue_certificate(&mut d),
            MitmOutcome::Rejected(ProtocolError::AuthenticationFailed)
        );
    }

    #[test]
    fn point_substitution_rejected() {
        let mut d = TestDeployment::new(322);
        assert_eq!(
            sts_point_substitution(&mut d),
            MitmOutcome::Rejected(ProtocolError::AuthenticationFailed)
        );
    }

    #[test]
    fn replayed_b1_rejected() {
        let mut d = TestDeployment::new(323);
        assert_eq!(
            sts_replay(&mut d),
            MitmOutcome::Rejected(ProtocolError::AuthenticationFailed)
        );
    }
}
