//! Key-compromise impersonation (KCI).
//!
//! The paper's introduction singles KCI out: "a man-in-the-middle
//! attack where an attacker can impersonate the trusted server side to
//! manipulate the key derivation process" \[12\]. The attacker model:
//! the *victim's* long-term key has leaked; can the attacker now
//! impersonate *someone else* to the victim?
//!
//! * **SCIANC** falls: authentication MACs are keyed by the session
//!   key, and the session key is `KDF(Prk_victim·Q_peer, nonces)` —
//!   computable from the victim's leaked key plus public certificates.
//!   The attacker answers the victim's handshake as "bob" and passes
//!   authentication without ever holding Bob's key.
//! * **STS** resists: the attacker can pick its own ephemeral (and
//!   thus knows the session key), but the authentication response must
//!   contain a signature under *Bob's* implicitly certified key over
//!   the ephemeral exchange — which the victim's leaked key cannot
//!   produce.

use super::TestDeployment;
use ecq_baselines::scianc::{self, SciancInitiator};
use ecq_crypto::HmacDrbg;
use ecq_p256::encoding::{decode_raw, encode_raw};
use ecq_p256::point::mul_generator_vartime;
use ecq_p256::scalar::Scalar;
use ecq_proto::{Endpoint, FieldKind, Message, ProtocolError, Role, SessionKey, WireField};
use ecq_sts::auth::{auth_response, DIR_RESPONDER};
use ecq_sts::{StsConfig, StsInitiator};

/// Outcome of a KCI attempt against a victim initiator.
#[derive(Debug, PartialEq, Eq)]
pub enum KciOutcome {
    /// The victim accepted the impersonation AND the attacker knows
    /// the established session key — full compromise.
    Compromised,
    /// The victim rejected the handshake.
    Rejected(ProtocolError),
}

/// KCI against SCIANC: impersonate Bob to Alice using only Alice's
/// leaked private key and public certificates.
pub fn scianc_kci(deployment: &mut TestDeployment) -> KciOutcome {
    let leaked_alice_priv: Scalar = deployment.alice.keys.private; // the compromise
    let bob_cert = deployment.bob.cert; // public
    let ca_public = deployment.ca.public_key(); // public

    let mut alice = SciancInitiator::new(deployment.alice.clone(), 0, &mut deployment.rng);
    let a1 = alice.start().expect("start").expect("A1");
    let nonce_a = a1.field(FieldKind::Nonce).expect("nonce").to_vec();

    // Attacker crafts B1 with Bob's public certificate and its own nonce.
    let mut attacker_rng = HmacDrbg::from_seed(0xA77A_C0DE);
    let nonce_e = attacker_rng.bytes32();
    let b1 = Message::new(
        "B1",
        vec![
            WireField::new(FieldKind::Id, bob_cert.subject.as_bytes().to_vec()),
            WireField::new(FieldKind::Nonce, nonce_e.to_vec()),
            WireField::new(FieldKind::Cert, bob_cert.to_bytes().to_vec()),
        ],
    );

    let a2 = match alice.on_message(&b1) {
        Ok(Some(m)) => m,
        Ok(None) => return KciOutcome::Rejected(ProtocolError::UnexpectedMessage),
        Err(e) => return KciOutcome::Rejected(e),
    };

    // The attacker derives the same session key from the LEAKED key:
    // KS = KDF(Prk_alice · Q_bob, nonce_a ‖ nonce_e).
    let q_bob = ecq_cert::reconstruct_public_key(&bob_cert, &ca_public).expect("public derivation");
    let premaster = ecq_p256::ecdh::shared_secret(&leaked_alice_priv, &q_bob).expect("ecdh");
    let salt = [nonce_a.as_slice(), nonce_e.as_slice()].concat();
    let ks = SessionKey::derive(premaster.as_slice(), &salt, scianc::KDF_LABEL);

    // Sanity: the attacker's A2 check confirms it holds Alice's key.
    let expect_a2 = scianc::auth_mac(&ks, Role::Initiator, &nonce_a, &nonce_e);
    if a2.field(FieldKind::Mac).expect("mac") != expect_a2 {
        return KciOutcome::Rejected(ProtocolError::AuthenticationFailed);
    }

    // Forge Bob's authentication MAC.
    let forged = scianc::auth_mac(&ks, Role::Responder, &nonce_a, &nonce_e);
    let b2 = Message::new("B2", vec![WireField::new(FieldKind::Mac, forged.to_vec())]);
    match alice.on_message(&b2) {
        Ok(_) if alice.is_established() => KciOutcome::Compromised,
        Ok(_) => KciOutcome::Rejected(ProtocolError::Stalled),
        Err(e) => KciOutcome::Rejected(e),
    }
}

/// KCI against STS: the same attacker model. The attacker controls
/// the session key (its own ephemeral) but must forge Bob's signature
/// over the ephemeral exchange — with only Alice's key, the best
/// forgery is a signature under the *wrong* key.
pub fn sts_kci(deployment: &mut TestDeployment) -> KciOutcome {
    let leaked_alice_priv = deployment.alice.keys.private;
    let bob_cert = deployment.bob.cert;

    let config = StsConfig::default();
    let mut alice = StsInitiator::new(deployment.alice.clone(), config, &mut deployment.rng);
    let a1 = alice.start().expect("start").expect("A1");
    let xg_a: [u8; 64] = a1
        .field(FieldKind::EphemeralPoint)
        .expect("xg")
        .try_into()
        .expect("64 bytes");

    // Attacker's own ephemeral: it will know the session key.
    let x_e = Scalar::from_u64(0x5EED_5EED);
    let xg_e = encode_raw(&mul_generator_vartime(&x_e));
    let alice_point = decode_raw(&xg_a).expect("valid point");
    let premaster = ecq_p256::ecdh::shared_secret(&x_e, &alice_point).expect("ecdh");
    let salt = [xg_a.as_slice(), xg_e.as_slice()].concat();
    let ks = SessionKey::derive(premaster.as_slice(), &salt, ecq_sts::KDF_LABEL);

    // Forge the response: the only private key available is Alice's.
    let mut scratch = ecq_proto::OpTrace::new();
    let resp = auth_response(
        &ks,
        &leaked_alice_priv,
        &xg_e,
        &xg_a,
        DIR_RESPONDER,
        &mut scratch,
    );

    let b1 = Message::new(
        "B1",
        vec![
            WireField::new(FieldKind::Id, bob_cert.subject.as_bytes().to_vec()),
            WireField::new(FieldKind::Cert, bob_cert.to_bytes().to_vec()),
            WireField::new(FieldKind::EphemeralPoint, xg_e.to_vec()),
            WireField::new(FieldKind::Response, resp.to_vec()),
        ],
    );
    match alice.on_message(&b1) {
        Ok(_) if alice.is_established() => KciOutcome::Compromised,
        Ok(_) => {
            // Handshake continued; it can only complete if the forged
            // signature verified — which it must not have.
            KciOutcome::Compromised
        }
        Err(e) => KciOutcome::Rejected(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scianc_falls_to_kci() {
        let mut d = TestDeployment::new(331);
        assert_eq!(scianc_kci(&mut d), KciOutcome::Compromised);
    }

    #[test]
    fn sts_resists_kci() {
        let mut d = TestDeployment::new(332);
        assert_eq!(
            sts_kci(&mut d),
            KciOutcome::Rejected(ProtocolError::AuthenticationFailed)
        );
    }
}
