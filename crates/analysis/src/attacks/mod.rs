//! Executable attack simulations.
//!
//! Each module turns one qualitative claim of the paper's §V-D into a
//! machine-checked experiment against the *real* protocol
//! implementations:
//!
//! * [`forward_secrecy`] — record traffic, later leak long-term keys:
//!   S-ECDSA sessions decrypt offline, STS sessions do not (T1);
//! * [`key_reuse`] — the SKD premaster is constant across sessions
//!   while STS keys are fresh (T4);
//! * [`mitm`] — an active attacker without CA-certified material, and
//!   one who tampers with ephemeral points mid-handshake, both fail
//!   against STS (T2);
//! * [`kci`] — key-compromise impersonation: with the victim's leaked
//!   long-term key an attacker successfully impersonates a peer in the
//!   session-key-bound baseline but not in STS (T5/KCI, the attack the
//!   paper's introduction highlights from TLS \[12\]).

pub mod forward_secrecy;
pub mod kci;
pub mod key_reuse;
pub mod mitm;

use ecq_cert::ca::CertificateAuthority;
use ecq_cert::DeviceId;
use ecq_crypto::HmacDrbg;
use ecq_proto::Credentials;

/// A reproducible two-device deployment for attack experiments.
#[derive(Debug)]
pub struct TestDeployment {
    /// Alice's credentials.
    pub alice: Credentials,
    /// Bob's credentials.
    pub bob: Credentials,
    /// The CA (attackers may know its *public* key).
    pub ca: CertificateAuthority,
    /// RNG stream for the experiment.
    pub rng: HmacDrbg,
}

impl TestDeployment {
    /// Provisions Alice and Bob under one CA.
    pub fn new(seed: u64) -> Self {
        let mut rng = HmacDrbg::from_seed(seed);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let alice = Credentials::provision(&ca, DeviceId::from_label("alice"), 0, 1000, &mut rng)
            .expect("provision alice");
        let bob = Credentials::provision(&ca, DeviceId::from_label("bob"), 0, 1000, &mut rng)
            .expect("provision bob");
        TestDeployment {
            alice,
            bob,
            ca,
            rng,
        }
    }
}
