//! Structural protocol properties from which Table III is derived.

use ecq_proto::ProtocolKind;

/// How peers authenticate each other.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AuthMechanism {
    /// ECDSA signatures under ECQV-certified keys (S-ECDSA, STS).
    EcdsaSignature,
    /// Symmetric MACs keyed by the derived session key (SCIANC).
    SymmetricSessionBound,
    /// Symmetric MACs under pre-shared per-peer keys (PORAMB).
    SymmetricPreShared,
}

/// How the session key varies across communication sessions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KeyDiversification {
    /// Fresh ephemeral Diffie–Hellman per session (STS): the
    /// underlying secret itself changes.
    Ephemeral,
    /// Public nonces mixed into the KDF over a static premaster
    /// (SCIANC): the output varies but the secret base does not.
    NonceMixed,
    /// The key is a direct function of the certificate material
    /// (S-ECDSA, PORAMB's pairwise base secret).
    Static,
}

/// The property sheet of one protocol family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProtocolProperties {
    /// The protocol.
    pub kind: ProtocolKind,
    /// Authentication mechanism.
    pub auth: AuthMechanism,
    /// Key diversification class.
    pub diversification: KeyDiversification,
    /// Whether compromise of long-term keys reveals past session keys
    /// from recorded transcripts (¬ forward secrecy).
    pub past_sessions_recoverable: bool,
    /// Whether a node must store one secret per peer (update burden).
    pub per_peer_key_storage: bool,
    /// Whether the session key and the authentication secret coincide.
    pub session_key_bound_auth: bool,
}

impl ProtocolProperties {
    /// The property sheet for each of the four Table III columns.
    /// (The STS optimization variants share STS's sheet — they change
    /// scheduling, not structure.)
    pub fn of(kind: ProtocolKind) -> Self {
        match kind {
            ProtocolKind::Sts | ProtocolKind::StsOptI | ProtocolKind::StsOptII => {
                ProtocolProperties {
                    kind: ProtocolKind::Sts,
                    auth: AuthMechanism::EcdsaSignature,
                    diversification: KeyDiversification::Ephemeral,
                    past_sessions_recoverable: false,
                    per_peer_key_storage: false,
                    session_key_bound_auth: false,
                }
            }
            ProtocolKind::SEcdsa | ProtocolKind::SEcdsaExt => ProtocolProperties {
                kind: ProtocolKind::SEcdsa,
                auth: AuthMechanism::EcdsaSignature,
                diversification: KeyDiversification::Static,
                past_sessions_recoverable: true,
                per_peer_key_storage: false,
                session_key_bound_auth: false,
            },
            ProtocolKind::Scianc => ProtocolProperties {
                kind: ProtocolKind::Scianc,
                auth: AuthMechanism::SymmetricSessionBound,
                diversification: KeyDiversification::NonceMixed,
                past_sessions_recoverable: true,
                per_peer_key_storage: false,
                session_key_bound_auth: true,
            },
            ProtocolKind::Poramb => ProtocolProperties {
                kind: ProtocolKind::Poramb,
                auth: AuthMechanism::SymmetricPreShared,
                diversification: KeyDiversification::Static,
                past_sessions_recoverable: true,
                per_peer_key_storage: true,
                session_key_bound_auth: false,
            },
        }
    }

    /// The four distinct Table III columns in paper order.
    pub fn table3_columns() -> [ProtocolProperties; 4] {
        [
            Self::of(ProtocolKind::SEcdsa),
            Self::of(ProtocolKind::Sts),
            Self::of(ProtocolKind::Scianc),
            Self::of(ProtocolKind::Poramb),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_sts_is_ephemeral() {
        for p in ProtocolProperties::table3_columns() {
            let ephemeral = p.diversification == KeyDiversification::Ephemeral;
            assert_eq!(ephemeral, p.kind == ProtocolKind::Sts);
            assert_eq!(!ephemeral, p.past_sessions_recoverable);
        }
    }

    #[test]
    fn optimization_variants_share_sts_sheet() {
        assert_eq!(
            ProtocolProperties::of(ProtocolKind::StsOptI),
            ProtocolProperties::of(ProtocolKind::Sts)
        );
        assert_eq!(
            ProtocolProperties::of(ProtocolKind::StsOptII),
            ProtocolProperties::of(ProtocolKind::Sts)
        );
        assert_eq!(
            ProtocolProperties::of(ProtocolKind::SEcdsaExt),
            ProtocolProperties::of(ProtocolKind::SEcdsa)
        );
    }

    #[test]
    fn poramb_storage_burden() {
        assert!(ProtocolProperties::of(ProtocolKind::Poramb).per_peer_key_storage);
        assert!(!ProtocolProperties::of(ProtocolKind::Sts).per_peer_key_storage);
    }

    #[test]
    fn scianc_binds_auth_to_session_key() {
        assert!(ProtocolProperties::of(ProtocolKind::Scianc).session_key_bound_auth);
        assert!(!ProtocolProperties::of(ProtocolKind::SEcdsa).session_key_bound_auth);
    }
}
