//! Derivation of the paper's Table III from protocol properties.
//!
//! Each cell follows from §V-D's arguments, encoded as rules:
//!
//! * **Data exposure (T1)** — full only with forward secrecy; every
//!   SKD leaves recorded traffic decryptable after a later key leak.
//! * **Node capturing (T3)** — nobody is fully protected ("even with
//!   STS, the protection can only be guaranteed for the previous
//!   messages, not the future ones"); signature-based designs degrade
//!   gracefully (∆), symmetric designs hand the attacker reusable
//!   authentication secrets (✗).
//! * **Key data reuse (T4)** — full with ephemeral secrets; partial
//!   with nonce-mixed KDFs (output varies, base secret does not);
//!   weak when the key is a direct function of certificate material.
//! * **Key derivation exploitation (T5)** — full when every key is
//!   fresh, high-entropy and held only by the two parties; partial
//!   otherwise.
//! * **Authentication procedure** — full for ECDSA mutual
//!   authentication; partial for the symmetric schemes (SCIANC ties
//!   authentication to the session key; PORAMB needs per-peer key
//!   storage, making updates troublesome).

use crate::properties::{AuthMechanism, KeyDiversification, ProtocolProperties};
use crate::threats::{Protection, Threat};
use ecq_proto::ProtocolKind;

/// Rates one protocol against one threat.
pub fn rate(props: &ProtocolProperties, threat: Threat) -> Protection {
    match threat {
        Threat::PastDataExposure => {
            if props.past_sessions_recoverable {
                Protection::Weak
            } else {
                Protection::Full
            }
        }
        Threat::NodeCapture => match props.auth {
            // Captured signature keys do not decrypt *previous*
            // STS/S-ECDSA-authenticated traffic by themselves… but no
            // scheme protects future traffic from a captured node.
            AuthMechanism::EcdsaSignature => Protection::Partial,
            _ => Protection::Weak,
        },
        Threat::KeyDataReuse => match props.diversification {
            KeyDiversification::Ephemeral => Protection::Full,
            KeyDiversification::NonceMixed => Protection::Partial,
            KeyDiversification::Static => Protection::Weak,
        },
        Threat::KeyDerivationExploit => {
            if props.diversification == KeyDiversification::Ephemeral {
                Protection::Full
            } else {
                Protection::Partial
            }
        }
        Threat::Mitm => match props.auth {
            AuthMechanism::EcdsaSignature => Protection::Full,
            _ => Protection::Partial,
        },
    }
}

/// The assembled Table III.
#[derive(Clone, Debug)]
pub struct SecurityMatrix {
    /// Column protocols in paper order.
    pub columns: Vec<ProtocolKind>,
    /// Rows: `(threat, per-column protection)`.
    pub rows: Vec<(Threat, Vec<Protection>)>,
}

/// Builds Table III (row order matching the paper: data exposure, node
/// capturing, key data reuse, key derivation exploit, authentication
/// procedure).
pub fn security_matrix() -> SecurityMatrix {
    let columns_props = ProtocolProperties::table3_columns();
    let row_order = [
        Threat::PastDataExposure,
        Threat::NodeCapture,
        Threat::KeyDataReuse,
        Threat::KeyDerivationExploit,
        Threat::Mitm,
    ];
    SecurityMatrix {
        columns: columns_props.iter().map(|p| p.kind).collect(),
        rows: row_order
            .iter()
            .map(|t| (*t, columns_props.iter().map(|p| rate(p, *t)).collect()))
            .collect(),
    }
}

impl SecurityMatrix {
    /// The protection of `kind` against `threat`.
    pub fn lookup(&self, kind: ProtocolKind, threat: Threat) -> Option<Protection> {
        let col = self.columns.iter().position(|k| *k == kind)?;
        self.rows
            .iter()
            .find(|(t, _)| *t == threat)
            .map(|(_, cells)| cells[col])
    }

    /// Renders the paper-style table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<18}", ""));
        for c in &self.columns {
            out.push_str(&format!("{:>12}", c.label()));
        }
        out.push('\n');
        for (threat, cells) in &self.rows {
            out.push_str(&format!("{:<18}", threat.label()));
            for p in cells {
                out.push_str(&format!("{:>12}", p.glyph()));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The literal Table III of the paper (column order S-ECDSA, STS,
    /// SCIANC, PORAMB).
    const PAPER_TABLE3: [(Threat, [Protection; 4]); 5] = [
        (
            Threat::PastDataExposure,
            [
                Protection::Weak,
                Protection::Full,
                Protection::Weak,
                Protection::Weak,
            ],
        ),
        (
            Threat::NodeCapture,
            [
                Protection::Partial,
                Protection::Partial,
                Protection::Weak,
                Protection::Weak,
            ],
        ),
        (
            Threat::KeyDataReuse,
            [
                Protection::Weak,
                Protection::Full,
                Protection::Partial,
                Protection::Weak,
            ],
        ),
        (
            Threat::KeyDerivationExploit,
            [
                Protection::Partial,
                Protection::Full,
                Protection::Partial,
                Protection::Partial,
            ],
        ),
        (
            Threat::Mitm,
            [
                Protection::Full,
                Protection::Full,
                Protection::Partial,
                Protection::Partial,
            ],
        ),
    ];

    #[test]
    fn derived_matrix_reproduces_paper_table3() {
        let matrix = security_matrix();
        assert_eq!(
            matrix.columns,
            vec![
                ProtocolKind::SEcdsa,
                ProtocolKind::Sts,
                ProtocolKind::Scianc,
                ProtocolKind::Poramb
            ]
        );
        for (threat, expected) in PAPER_TABLE3 {
            for (i, kind) in matrix.columns.clone().into_iter().enumerate() {
                assert_eq!(
                    matrix.lookup(kind, threat),
                    Some(expected[i]),
                    "{threat:?} / {kind:?}"
                );
            }
        }
    }

    #[test]
    fn sts_dominates_every_row() {
        let matrix = security_matrix();
        for (threat, cells) in &matrix.rows {
            let sts = matrix.lookup(ProtocolKind::Sts, *threat).unwrap();
            for p in cells {
                assert!(sts >= *p, "{threat:?}");
            }
        }
    }

    #[test]
    fn render_contains_glyphs_and_labels() {
        let s = security_matrix().render();
        assert!(s.contains("S-ECDSA"));
        assert!(s.contains("✓"));
        assert!(s.contains("∆"));
        assert!(s.contains("✗"));
        assert!(s.contains("Key data reuse"));
    }
}
