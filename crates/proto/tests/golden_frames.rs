//! Golden byte fixtures for the service wire format: one pinned
//! encoding per frame kind, plus pinned *rejections* for version skew
//! and header corruption.
//!
//! The fixture file is the compatibility contract made visible: any
//! change to the header layout, field order, length prefixes or step
//! codes shows up as a hex diff. Deliberate format changes (a version
//! bump) regenerate it with
//! `GOLDEN_FRAMES_REGENERATE=1 cargo test -p ecq_proto --test golden_frames`.

use ecq_proto::framing::{ErrorCode, Frame, FrameKind, MAX_PAYLOAD, VERSION};
use ecq_proto::wire::{FieldKind, Message, WireField};
use ecq_proto::TransportError;

fn fixture_path() -> String {
    format!(
        "{}/tests/fixtures/golden_frames.txt",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Deterministic sample for every frame kind; patterned fill bytes so
/// a diff localizes which field moved.
fn all_frames() -> Vec<(&'static str, Frame)> {
    vec![
        ("hello", Frame::Hello { nonce: [0xA1; 32] }),
        (
            "hello_ack",
            Frame::HelloAck {
                ca_public: [0xB2; 33],
            },
        ),
        (
            "enroll_request",
            Frame::EnrollRequest {
                subject: [0xC3; 16],
                point: [0xD4; 33],
            },
        ),
        (
            "enroll_issued",
            Frame::EnrollIssued {
                cert: [0xE5; 101],
                recon_private: [0xF6; 32],
            },
        ),
        (
            "hs_open",
            Frame::HsOpen {
                seed: [0x17; 32],
                variant: 2,
                now: 0x0102_0304,
            },
        ),
        (
            "hs_message",
            Frame::HsMessage(Message::new(
                "B1",
                vec![
                    WireField::new(FieldKind::Id, vec![0x28; 16]),
                    WireField::new(FieldKind::Cert, vec![0x39; 101]),
                    WireField::new(FieldKind::EphemeralPoint, vec![0x4A; 64]),
                    WireField::new(FieldKind::Response, vec![0x5B; 64]),
                ],
            )),
        ),
        ("crl_request", Frame::CrlRequest),
        (
            "crl_response",
            Frame::CrlResponse {
                crl: vec![0x6C; 24],
                signature: vec![0x7D; 64],
            },
        ),
        (
            "error_close",
            Frame::ErrorClose {
                code: ErrorCode::ShuttingDown.code(),
            },
        ),
    ]
}

fn render() -> String {
    let mut out = String::from("# frame_kind hex_encoding\n");
    for (name, frame) in all_frames() {
        let bytes = frame.encode().expect("golden frames encode");
        out.push_str(&format!("{name} {}\n", hex(&bytes)));
    }
    out
}

#[test]
fn every_frame_kind_matches_its_golden_bytes() {
    let rendered = render();
    let path = fixture_path();
    if std::env::var_os("GOLDEN_FRAMES_REGENERATE").is_some() {
        std::fs::write(&path, &rendered).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {path}: {e}; regenerate with GOLDEN_FRAMES_REGENERATE=1")
    });
    for (n, (got, want)) in rendered.lines().zip(expected.lines()).enumerate() {
        assert_eq!(
            got,
            want,
            "wire encoding diverges from fixture at line {} — this is a \
             format break; if intentional, bump VERSION and regenerate",
            n + 1
        );
    }
    assert_eq!(rendered.lines().count(), expected.lines().count());
}

#[test]
fn golden_bytes_decode_back_to_their_frames() {
    // The fixture is not just pinned — it stays *decodable*, and the
    // decode consumes exactly the encoded length (no trailing slack).
    for (name, frame) in all_frames() {
        let bytes = frame.encode().unwrap();
        let (decoded, used) = Frame::decode(&bytes).unwrap();
        assert_eq!(used, bytes.len(), "{name}");
        assert_eq!(decoded, frame, "{name}");
    }
}

/// Version skew is rejected on EVERY frame kind, before any payload
/// parsing: a v2 peer gets `BadVersion`, never a misparse.
#[test]
fn version_skew_is_rejected_for_every_kind() {
    for (name, frame) in all_frames() {
        let mut bytes = frame.encode().unwrap();
        for skew in [0u8, VERSION + 1, 0xFF] {
            bytes[4] = skew;
            assert_eq!(
                Frame::decode(&bytes),
                Err(TransportError::BadVersion { got: skew }),
                "{name} with version {skew}"
            );
        }
    }
}

/// The other header gates hold for every kind too: magic, crypto
/// suite, reserved flags, oversized declared length.
#[test]
fn header_gates_hold_for_every_kind() {
    for (name, frame) in all_frames() {
        let good = frame.encode().unwrap();

        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert_eq!(
            Frame::decode(&bad),
            Err(TransportError::BadMagic),
            "{name} magic"
        );

        let mut bad = good.clone();
        bad[5] = 0x18;
        assert_eq!(
            Frame::decode(&bad),
            Err(TransportError::BadCrypto { got: 0x18 }),
            "{name} crypto"
        );

        let mut bad = good.clone();
        bad[7] = 0x01;
        assert_eq!(
            Frame::decode(&bad),
            Err(TransportError::Malformed),
            "{name} flags"
        );

        let mut bad = good.clone();
        bad[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_be_bytes());
        assert_eq!(
            Frame::decode(&bad),
            Err(TransportError::FrameTooLarge {
                len: MAX_PAYLOAD + 1,
                max: MAX_PAYLOAD,
            }),
            "{name} length"
        );
    }
}

#[test]
fn frame_kind_codes_are_pinned() {
    // The (kind, code) table itself is part of the wire contract.
    let pinned: [(FrameKind, u8); 9] = [
        (FrameKind::Hello, 0x01),
        (FrameKind::HelloAck, 0x02),
        (FrameKind::EnrollRequest, 0x10),
        (FrameKind::EnrollIssued, 0x11),
        (FrameKind::HsOpen, 0x20),
        (FrameKind::HsMessage, 0x21),
        (FrameKind::CrlRequest, 0x30),
        (FrameKind::CrlResponse, 0x31),
        (FrameKind::ErrorClose, 0x7F),
    ];
    for (kind, code) in pinned {
        assert_eq!(kind.code(), code, "{kind:?}");
        assert_eq!(FrameKind::from_code(code), Ok(kind));
    }
}
