//! Decoder fuzz: the service wire decoder is total. Arbitrary byte
//! soup, mutated valid frames and hostile declared lengths must all
//! come back as typed [`TransportError`]s — never a panic, never an
//! out-of-bounds read, never an unbounded allocation.
//!
//! This is the proptest half of the CI `service` job's fuzz gate (the
//! other half drives the live daemon with garbage over a real socket).

use ecq_proto::framing::{decode_message, Frame, HEADER_LEN, MAGIC, MAX_PAYLOAD};
use ecq_proto::wire::{FieldKind, Message, WireField};
use ecq_proto::TransportError;
use proptest::prelude::*;

fn sample_frame() -> Frame {
    Frame::HsMessage(Message::new(
        "A2",
        vec![
            WireField::new(FieldKind::Id, vec![1; 16]),
            WireField::new(FieldKind::Signature, vec![2; 64]),
            WireField::new(FieldKind::Mac, vec![3; 32]),
        ],
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Pure byte soup: decode returns, and on success reports a
    /// consumed length inside the input.
    #[test]
    fn random_bytes_never_panic_the_decoder(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        // A typed rejection is the expected outcome for most soup.
        if let Ok((_, used)) = Frame::decode(&bytes) {
            prop_assert!(used <= bytes.len());
        }
    }

    /// Byte soup behind a valid header prefix: exercises the payload
    /// decoders, which see attacker-controlled bytes after the header
    /// gates pass.
    #[test]
    fn framed_soup_never_panics_the_payload_decoders(
        kind_code in any::<u8>(),
        payload in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.push(1); // VERSION
        bytes.push(0x17); // CRYPTO_P256_SHA256
        bytes.push(kind_code);
        bytes.push(0);
        bytes.extend_from_slice(&(payload.len() as u32).to_be_bytes());
        bytes.extend_from_slice(&payload);
        let _ = Frame::decode(&bytes); // must return, Ok or typed Err
    }

    /// Single-byte mutations of a valid frame: decode stays total and
    /// never consumes more than it was given.
    #[test]
    fn mutated_valid_frames_never_panic(pos in 0usize..200, val in any::<u8>()) {
        let mut bytes = sample_frame().encode().unwrap();
        let pos = pos % bytes.len();
        bytes[pos] = val;
        if let Ok((_, used)) = Frame::decode(&bytes) {
            prop_assert!(used <= bytes.len());
        }
    }

    /// Hostile declared lengths: a header announcing up to u32::MAX
    /// payload bytes (with none attached) must reject without trying
    /// to allocate or read them.
    #[test]
    fn hostile_declared_lengths_are_rejected(len in any::<u32>()) {
        let mut bytes = Vec::with_capacity(HEADER_LEN);
        bytes.extend_from_slice(&MAGIC);
        bytes.push(1);
        bytes.push(0x17);
        bytes.push(0x30); // CrlRequest
        bytes.push(0);
        bytes.extend_from_slice(&len.to_be_bytes());
        match Frame::decode(&bytes) {
            Ok((frame, used)) => {
                prop_assert_eq!(len, 0);
                prop_assert_eq!(used, HEADER_LEN);
                prop_assert_eq!(frame, Frame::CrlRequest);
            }
            Err(e) if len > MAX_PAYLOAD => {
                prop_assert_eq!(e, TransportError::FrameTooLarge { len, max: MAX_PAYLOAD });
            }
            Err(e) => prop_assert_eq!(e, TransportError::Truncated),
        }
    }

    /// The handshake-message payload decoder is total on its own.
    #[test]
    fn message_decoder_is_total(payload in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decode_message(&payload);
    }

    /// Truncation at every prefix of a valid frame is always the typed
    /// `Truncated` error — the signal a streaming reader relies on to
    /// keep buffering instead of tearing the connection down.
    #[test]
    fn every_truncation_is_typed(cut_seed in any::<usize>()) {
        let bytes = sample_frame().encode().unwrap();
        let cut = cut_seed % bytes.len();
        prop_assert_eq!(Frame::decode(&bytes[..cut]), Err(TransportError::Truncated));
    }
}
