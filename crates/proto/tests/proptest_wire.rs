//! Property-based tests of the wire message model.

use ecq_proto::{FieldKind, Message, WireField};
use proptest::prelude::*;

const ALL_KINDS: [FieldKind; 11] = [
    FieldKind::Id,
    FieldKind::Nonce,
    FieldKind::Cert,
    FieldKind::Signature,
    FieldKind::EphemeralPoint,
    FieldKind::Response,
    FieldKind::Mac,
    FieldKind::Hello,
    FieldKind::Ack,
    FieldKind::Fin,
    FieldKind::Finish,
];

fn arb_layout() -> impl Strategy<Value = Vec<FieldKind>> {
    proptest::collection::vec(0usize..ALL_KINDS.len(), 1..6)
        .prop_map(|idxs| idxs.into_iter().map(|i| ALL_KINDS[i]).collect())
}

fn message_for(layout: &[FieldKind], fill: u8) -> Message {
    Message::new(
        "T1",
        layout
            .iter()
            .enumerate()
            .map(|(i, k)| WireField::new(*k, vec![fill.wrapping_add(i as u8); k.wire_len()]))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn encode_decode_roundtrips_any_layout(layout in arb_layout(), fill in any::<u8>()) {
        let msg = message_for(&layout, fill);
        let bytes = msg.encode();
        prop_assert_eq!(bytes.len(), msg.wire_len());
        let decoded = Message::decode("T1", &layout, &bytes).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn wire_len_is_sum_of_field_lens(layout in arb_layout()) {
        let msg = message_for(&layout, 0);
        let expect: usize = layout.iter().map(|k| k.wire_len()).sum();
        prop_assert_eq!(msg.wire_len(), expect);
    }

    #[test]
    fn decode_rejects_any_length_perturbation(layout in arb_layout(), delta in 1usize..16) {
        let msg = message_for(&layout, 1);
        let mut bytes = msg.encode();
        // Longer input must be rejected.
        bytes.extend(std::iter::repeat_n(0u8, delta));
        prop_assert!(Message::decode("T1", &layout, &bytes).is_err());
        // Shorter input must be rejected (when possible).
        let msg_bytes = msg.encode();
        if msg_bytes.len() > delta {
            prop_assert!(
                Message::decode("T1", &layout, &msg_bytes[..msg_bytes.len() - delta]).is_err()
            );
        }
    }

    #[test]
    fn field_lookup_finds_every_occurrence(layout in arb_layout()) {
        let msg = message_for(&layout, 3);
        for kind in ALL_KINDS {
            let expected = layout.iter().filter(|k| **k == kind).count();
            let mut found = 0;
            while msg.field_nth(kind, found).is_ok() {
                found += 1;
            }
            prop_assert_eq!(found, expected);
        }
    }

    #[test]
    fn describe_lists_every_field_in_order(layout in arb_layout()) {
        let msg = message_for(&layout, 9);
        let desc = msg.describe_fields();
        let parts: Vec<&str> = desc.split(", ").collect();
        prop_assert_eq!(parts.len(), layout.len());
        for (part, kind) in parts.iter().zip(layout.iter()) {
            prop_assert!(part.starts_with(kind.label()), "{} vs {}", part, kind.label());
        }
    }
}
