//! Message-granularity transports between two handshake endpoints.
//!
//! A [`Transport`] carries one link's wire messages between the
//! [`crate::endpoint::Role::Initiator`] and the
//! [`crate::endpoint::Role::Responder`] with explicit virtual-time
//! latency, so a discrete-event scheduler can deliver each handshake
//! message as its own event instead of running a handshake to
//! completion in one step. Two implementations exist:
//!
//! * [`ChannelTransport`] (here) — an in-memory FIFO pair with a fixed
//!   per-message latency; the reference implementation and the fast
//!   path for tests,
//! * `ecq_simnet::transport::CanLink` — frames routed through the
//!   CAN-FD bus and ISO 15765-2 segmentation models with per-link
//!   latency from the `ecq_devices` cost tables.
//!
//! The contract every implementation upholds:
//!
//! 1. **Determinism** (virtual-time transports) — delivery times are a
//!    pure function of the submitted messages and their timestamps; no
//!    wall clock, no randomness. Real-socket transports trade this for
//!    wall-clock concurrency and live outside the simulator's
//!    determinism envelope (see `ecq_service`).
//! 2. **FIFO per direction** — messages from one role arrive in the
//!    order they were sent (a CAN link cannot reorder one sender's
//!    ISO-TP messages).
//! 3. **Positive progress** — `send_frame` never returns a time earlier
//!    than `now`, so an event scheduler driving the link always
//!    advances.
//! 4. **Fail closed** — a frame the link cannot carry or decode is
//!    surfaced as a typed [`TransportError`], never delivered partially
//!    and never panicked on.

use crate::endpoint::Role;
use crate::error::TransportError;
use crate::wire::Message;
use std::collections::VecDeque;

/// Virtual time in microseconds (the fleet scheduler's clock).
pub type TransportTime = u64;

/// A bidirectional link carrying wire messages between the two roles of
/// one handshake, with virtual-time delivery accounting.
///
/// The API is framed: one handshake [`Message`] in, one frame on the
/// link, one [`Message`] out. Virtual-time implementations
/// ([`ChannelTransport`], `ecq_simnet::transport::CanLink`) are
/// infallible in practice and always return `Ok`; real-socket
/// implementations (`ecq_service::SocketTransport`) surface I/O and
/// framing failures as [`TransportError`].
pub trait Transport {
    /// Submits `message` from `from` at virtual time `now_us`. Returns
    /// the virtual time at which the peer can receive it.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] when the frame cannot be carried
    /// (encoding failure, oversized frame, socket I/O failure).
    fn send_frame(
        &mut self,
        from: Role,
        message: Message,
        now_us: TransportTime,
    ) -> Result<TransportTime, TransportError>;

    /// Delivers the earliest message queued for `to` whose delivery
    /// time is `<= now_us`, or `Ok(None)` when nothing has arrived yet.
    ///
    /// `deadline_us` is the caller's receive deadline. Virtual-time
    /// transports never block and treat it as advisory; blocking
    /// socket transports wait up to `deadline_us - now_us`
    /// (wall-clock microseconds) for a frame before returning
    /// [`TransportError::Timeout`].
    ///
    /// # Errors
    ///
    /// Returns [`TransportError`] when a frame arrives but cannot be
    /// decoded, or when the link itself fails.
    fn recv_frame(
        &mut self,
        to: Role,
        now_us: TransportTime,
        deadline_us: TransportTime,
    ) -> Result<Option<Message>, TransportError>;

    /// The earliest pending delivery time for `to`, if any message is
    /// in flight toward it.
    fn next_delivery(&self, to: Role) -> Option<TransportTime>;

    /// Total payload bytes accepted by [`Transport::send_frame`] so far.
    fn bytes_carried(&self) -> u64;

    /// Total messages accepted by [`Transport::send_frame`] so far.
    fn messages_carried(&self) -> u64;

    /// Link-layer frames moved so far (0 for transports that do not
    /// segment messages into frames).
    fn frames_carried(&self) -> u64 {
        0
    }
}

/// The per-direction FIFO delivery queues every transport
/// implementation shares. `push` clamps each delivery to no earlier
/// than the last one queued toward the same receiver, so the
/// FIFO-per-direction contract holds by construction even when a
/// transport's latency model would otherwise let a small late message
/// overtake a large earlier one.
#[derive(Debug, Default)]
pub struct DirectionalQueues {
    to_initiator: VecDeque<(TransportTime, Message)>,
    to_responder: VecDeque<(TransportTime, Message)>,
    /// Last queued delivery time per receiver (`[initiator, responder]`).
    floor: [TransportTime; 2],
}

fn receiver_index(receiver: Role) -> usize {
    match receiver {
        Role::Initiator => 0,
        Role::Responder => 1,
    }
}

impl DirectionalQueues {
    /// Empty queues.
    pub fn new() -> Self {
        Self::default()
    }

    fn queue_mut(&mut self, receiver: Role) -> &mut VecDeque<(TransportTime, Message)> {
        match receiver {
            Role::Initiator => &mut self.to_initiator,
            Role::Responder => &mut self.to_responder,
        }
    }

    fn queue(&self, receiver: Role) -> &VecDeque<(TransportTime, Message)> {
        match receiver {
            Role::Initiator => &self.to_initiator,
            Role::Responder => &self.to_responder,
        }
    }

    /// Queues a delivery toward `receiver`; returns the effective
    /// delivery time (clamped so one direction never reorders).
    pub fn push(&mut self, receiver: Role, at: TransportTime, message: Message) -> TransportTime {
        let idx = receiver_index(receiver);
        let at = at.max(self.floor[idx]);
        self.floor[idx] = at;
        self.queue_mut(receiver).push_back((at, message));
        at
    }

    /// Pops the earliest message for `receiver` that is due by `now`.
    pub fn pop_due(&mut self, receiver: Role, now: TransportTime) -> Option<Message> {
        let queue = self.queue_mut(receiver);
        match queue.front() {
            Some((at, _)) if *at <= now => queue.pop_front().map(|(_, m)| m),
            _ => None,
        }
    }

    /// The earliest pending delivery time for `receiver`.
    pub fn next_delivery(&self, receiver: Role) -> Option<TransportTime> {
        self.queue(receiver).front().map(|(at, _)| *at)
    }
}

/// An in-memory channel transport: two FIFO queues with a fixed
/// per-message latency. The zero-latency configuration reproduces the
/// classic run-to-completion message order exactly.
#[derive(Debug, Default)]
pub struct ChannelTransport {
    latency_us: TransportTime,
    queues: DirectionalQueues,
    bytes: u64,
    messages: u64,
}

impl ChannelTransport {
    /// Creates a channel with a fixed per-message latency in virtual
    /// microseconds (0 is allowed: delivery at the send timestamp).
    pub fn new(latency_us: TransportTime) -> Self {
        ChannelTransport {
            latency_us,
            ..Self::default()
        }
    }
}

impl Transport for ChannelTransport {
    fn send_frame(
        &mut self,
        from: Role,
        message: Message,
        now_us: TransportTime,
    ) -> Result<TransportTime, TransportError> {
        self.bytes += message.wire_len() as u64;
        self.messages += 1;
        Ok(self
            .queues
            .push(from.peer(), now_us.saturating_add(self.latency_us), message))
    }

    fn recv_frame(
        &mut self,
        to: Role,
        now_us: TransportTime,
        _deadline_us: TransportTime,
    ) -> Result<Option<Message>, TransportError> {
        Ok(self.queues.pop_due(to, now_us))
    }

    fn next_delivery(&self, to: Role) -> Option<TransportTime> {
        self.queues.next_delivery(to)
    }

    fn bytes_carried(&self) -> u64 {
        self.bytes
    }

    fn messages_carried(&self) -> u64 {
        self.messages
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{FieldKind, WireField};

    fn msg(step: &'static str, byte: u8) -> Message {
        Message::new(step, vec![WireField::new(FieldKind::Ack, vec![byte])])
    }

    /// Non-blocking receive helper: virtual transports ignore the
    /// deadline, so pass `now` for both.
    fn take(t: &mut ChannelTransport, to: Role, now: TransportTime) -> Option<Message> {
        t.recv_frame(to, now, now).unwrap()
    }

    #[test]
    fn latency_defers_delivery() {
        let mut t = ChannelTransport::new(250);
        let at = t.send_frame(Role::Initiator, msg("A1", 1), 100).unwrap();
        assert_eq!(at, 350);
        assert_eq!(t.next_delivery(Role::Responder), Some(350));
        assert!(take(&mut t, Role::Responder, 349).is_none());
        let m = take(&mut t, Role::Responder, 350).unwrap();
        assert_eq!(m.step, "A1");
        assert!(take(&mut t, Role::Responder, 400).is_none());
    }

    #[test]
    fn directions_are_independent() {
        let mut t = ChannelTransport::new(0);
        t.send_frame(Role::Initiator, msg("A1", 1), 0).unwrap();
        t.send_frame(Role::Responder, msg("B1", 2), 0).unwrap();
        assert_eq!(take(&mut t, Role::Initiator, 0).unwrap().step, "B1");
        assert_eq!(take(&mut t, Role::Responder, 0).unwrap().step, "A1");
        assert_eq!(t.messages_carried(), 2);
        assert_eq!(t.bytes_carried(), 2);
    }

    #[test]
    fn fifo_within_a_direction() {
        let mut t = ChannelTransport::new(10);
        t.send_frame(Role::Initiator, msg("A1", 1), 0).unwrap();
        t.send_frame(Role::Initiator, msg("A2", 2), 5).unwrap();
        assert_eq!(take(&mut t, Role::Responder, 100).unwrap().step, "A1");
        assert_eq!(take(&mut t, Role::Responder, 100).unwrap().step, "A2");
        assert!(take(&mut t, Role::Responder, 100).is_none());
        assert_eq!(t.next_delivery(Role::Responder), None);
    }

    #[test]
    fn queues_clamp_out_of_order_deliveries() {
        // A latency model that would let a later, smaller message
        // overtake an earlier large one gets clamped to FIFO order.
        let mut q = DirectionalQueues::new();
        assert_eq!(q.push(Role::Responder, 500, msg("B1", 1)), 500);
        assert_eq!(q.push(Role::Responder, 200, msg("B2", 2)), 500);
        // The other direction is unaffected.
        assert_eq!(q.push(Role::Initiator, 200, msg("A1", 3)), 200);
        assert_eq!(q.next_delivery(Role::Responder), Some(500));
        assert_eq!(q.pop_due(Role::Responder, 500).unwrap().step, "B1");
        assert_eq!(q.pop_due(Role::Responder, 500).unwrap().step, "B2");
    }

    #[test]
    fn zero_latency_delivers_at_send_time() {
        let mut t = ChannelTransport::new(0);
        let at = t.send_frame(Role::Responder, msg("B2", 1), 77).unwrap();
        assert_eq!(at, 77);
        assert!(take(&mut t, Role::Initiator, 77).is_some());
    }
}
