//! Primitive-operation traces.
//!
//! Protocol endpoints execute *real* cryptography on the host, but the
//! paper's Table I reports times on four embedded boards. The bridge is
//! this trace: every primitive a protocol invokes is recorded here,
//! tagged with the STS operation phase (§IV-C's Op1–Op4), and the
//! device cost model in `ecq-devices` integrates the trace against a
//! per-board cost table.

/// The four STS protocol operations of §IV-C, plus a bucket for work
/// outside that taxonomy (baseline-only primitives such as MAC tags).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum StsPhase {
    /// Op1 — request phase; random `XG` point derivation.
    Op1Request,
    /// Op2 — public-key reconstruction and premaster/session key
    /// generation.
    Op2KeyDerivation,
    /// Op3 — authentication signature derivation and encryption.
    Op3SignEncrypt,
    /// Op4 — authentication signature decryption and verification.
    Op4DecryptVerify,
    /// Work not belonging to an STS operation (nonce generation,
    /// baseline MACs, finished messages, …).
    Other,
}

impl StsPhase {
    /// Short label ("Op1" … "Op4", "—").
    pub fn label(&self) -> &'static str {
        match self {
            StsPhase::Op1Request => "Op1",
            StsPhase::Op2KeyDerivation => "Op2",
            StsPhase::Op3SignEncrypt => "Op3",
            StsPhase::Op4DecryptVerify => "Op4",
            StsPhase::Other => "—",
        }
    }
}

/// A cryptographic primitive invocation, at the granularity the device
/// cost model bills.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrimitiveOp {
    /// Ephemeral key generation: one random scalar + one base-point
    /// multiplication (the paper's eq. (2)).
    EphemeralKeyGen,
    /// ECQV public-key reconstruction (eq. (1)): hash, point multiply,
    /// point add.
    PublicKeyReconstruction,
    /// ECDH shared-secret derivation: one point multiplication.
    EcdhDerive,
    /// ECDSA signature generation.
    EcdsaSign,
    /// ECDSA signature verification (two point multiplications in the
    /// micro-ecc-style default).
    EcdsaVerify,
    /// AES-CTR encryption of `blocks` 16-byte blocks.
    AesEncrypt {
        /// Number of 16-byte blocks processed.
        blocks: usize,
    },
    /// AES-CTR decryption of `blocks` 16-byte blocks.
    AesDecrypt {
        /// Number of 16-byte blocks processed.
        blocks: usize,
    },
    /// HMAC/CMAC tag generation.
    MacTag,
    /// HMAC/CMAC tag verification.
    MacVerify,
    /// Session-key KDF invocation (HKDF, eq. (4)).
    Kdf,
    /// A plain hash computation over `bytes` bytes.
    Hash {
        /// Input length in bytes.
        bytes: usize,
    },
    /// Drawing `bytes` random bytes from the RNG.
    RandomBytes {
        /// Number of bytes drawn.
        bytes: usize,
    },
}

/// One trace entry: a primitive tagged with its protocol phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEntry {
    /// Which STS operation (or `Other`) this work belongs to.
    pub phase: StsPhase,
    /// The primitive performed.
    pub op: PrimitiveOp,
}

/// An append-only log of primitives executed by one endpoint.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OpTrace {
    entries: Vec<TraceEntry>,
}

impl OpTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a primitive in the given phase.
    pub fn record(&mut self, phase: StsPhase, op: PrimitiveOp) {
        self.entries.push(TraceEntry { phase, op });
    }

    /// All entries in execution order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of recorded primitives.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries belonging to one phase.
    pub fn phase_entries(&self, phase: StsPhase) -> impl Iterator<Item = &TraceEntry> {
        self.entries.iter().filter(move |e| e.phase == phase)
    }

    /// Counts occurrences of an exact primitive op.
    pub fn count_op(&self, op: PrimitiveOp) -> usize {
        self.entries.iter().filter(|e| e.op == op).count()
    }

    /// Merges another trace into this one (in order).
    pub fn extend(&mut self, other: &OpTrace) {
        self.entries.extend_from_slice(&other.entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_query() {
        let mut t = OpTrace::new();
        assert!(t.is_empty());
        t.record(StsPhase::Op1Request, PrimitiveOp::EphemeralKeyGen);
        t.record(StsPhase::Op2KeyDerivation, PrimitiveOp::EcdhDerive);
        t.record(StsPhase::Op2KeyDerivation, PrimitiveOp::Kdf);
        assert_eq!(t.len(), 3);
        assert_eq!(t.phase_entries(StsPhase::Op2KeyDerivation).count(), 2);
        assert_eq!(t.count_op(PrimitiveOp::EcdhDerive), 1);
        assert_eq!(t.count_op(PrimitiveOp::EcdsaSign), 0);
    }

    #[test]
    fn parameterized_ops_distinguished() {
        let mut t = OpTrace::new();
        t.record(
            StsPhase::Op3SignEncrypt,
            PrimitiveOp::AesEncrypt { blocks: 4 },
        );
        assert_eq!(t.count_op(PrimitiveOp::AesEncrypt { blocks: 4 }), 1);
        assert_eq!(t.count_op(PrimitiveOp::AesEncrypt { blocks: 2 }), 0);
    }

    #[test]
    fn extend_concatenates() {
        let mut a = OpTrace::new();
        a.record(StsPhase::Op1Request, PrimitiveOp::EphemeralKeyGen);
        let mut b = OpTrace::new();
        b.record(StsPhase::Other, PrimitiveOp::MacTag);
        a.extend(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.entries()[1].op, PrimitiveOp::MacTag);
    }

    #[test]
    fn phase_labels() {
        assert_eq!(StsPhase::Op1Request.label(), "Op1");
        assert_eq!(StsPhase::Op4DecryptVerify.label(), "Op4");
    }
}
