//! Shared protocol infrastructure for the key-derivation protocols.
//!
//! Everything the concrete protocols (STS in `ecq-sts`, the baselines in
//! `ecq-baselines`) have in common lives here:
//!
//! * [`wire`] — the typed message/field model whose byte sizes reproduce
//!   the paper's Table II exactly,
//! * [`trace`] — the primitive-operation trace that the device cost
//!   model (`ecq-devices`) integrates into Table I timings,
//! * [`session`] — session key material and the KDF chain of eq. (4),
//! * [`endpoint`] — the two-party state-machine abstraction (poll-style
//!   [`endpoint::Endpoint::step`]) and the run-to-completion driver
//!   that produces [`transcript::Transcript`]s,
//! * [`transport`] — the message-granularity [`transport::Transport`]
//!   link abstraction with the in-memory channel implementation,
//! * [`framing`] — the versioned, length-prefixed service wire format
//!   (magic, protocol version, cryptosystem identifier) with a total
//!   fail-closed decoder,
//! * [`socket`] — real-socket [`transport::Transport`] implementations
//!   over the framing layer (TCP / Unix streams, in-process pairs),
//! * [`error`] — the shared error types ([`ProtocolError`],
//!   [`TransportError`]).

#![warn(missing_docs)]

pub mod credentials;
pub mod endpoint;
pub mod error;
pub mod framing;
pub mod session;
pub mod socket;
pub mod trace;
pub mod transcript;
pub mod transport;
pub mod wire;

pub use credentials::Credentials;
pub use endpoint::{run_handshake, Endpoint, Role, StepOutput};
pub use error::{ProtocolError, TransportError};
pub use framing::{Frame, FrameKind};
pub use session::SessionKey;
pub use socket::{SocketPair, StreamTransport};
pub use trace::{OpTrace, PrimitiveOp, StsPhase};
pub use transcript::Transcript;
pub use transport::{ChannelTransport, DirectionalQueues, Transport, TransportTime};
pub use wire::{FieldKind, Message, WireField};

/// The seven protocol variants evaluated in the paper (Tables I–III).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProtocolKind {
    /// Static ECDSA key derivation (Basic et al. \[5\]).
    SEcdsa,
    /// S-ECDSA with the extended finished-message handling.
    SEcdsaExt,
    /// STS dynamic key derivation (this paper), conventional schedule.
    Sts,
    /// STS with optimization I (Op2 pipelined across devices, eq. (7)).
    StsOptI,
    /// STS with optimization II (Op2 and Op3 pipelined, eq. (8)).
    StsOptII,
    /// Sciancalepore et al. \[4\]: SKD + symmetric authentication.
    Scianc,
    /// Porambage et al. \[3\]: two-phase pairwise establishment.
    Poramb,
}

impl ProtocolKind {
    /// All variants in the paper's Table I row order.
    pub const ALL: [ProtocolKind; 7] = [
        ProtocolKind::SEcdsa,
        ProtocolKind::SEcdsaExt,
        ProtocolKind::Sts,
        ProtocolKind::StsOptI,
        ProtocolKind::StsOptII,
        ProtocolKind::Scianc,
        ProtocolKind::Poramb,
    ];

    /// The distinct wire formats of Table II (the STS optimizations do
    /// not change the transmitted data — §V-B of the paper).
    pub const WIRE_DISTINCT: [ProtocolKind; 5] = [
        ProtocolKind::SEcdsa,
        ProtocolKind::SEcdsaExt,
        ProtocolKind::Sts,
        ProtocolKind::Scianc,
        ProtocolKind::Poramb,
    ];

    /// The paper's display name.
    pub fn label(&self) -> &'static str {
        match self {
            ProtocolKind::SEcdsa => "S-ECDSA",
            ProtocolKind::SEcdsaExt => "S-ECDSA (ext.)",
            ProtocolKind::Sts => "STS",
            ProtocolKind::StsOptI => "STS (opt. I)",
            ProtocolKind::StsOptII => "STS (opt. II)",
            ProtocolKind::Scianc => "SCIANC",
            ProtocolKind::Poramb => "PORAMB",
        }
    }

    /// Whether the variant performs a *dynamic* key derivation
    /// (fresh ephemeral secret per communication session). Only STS
    /// does — §V-A: "Only STS is the true DKD".
    pub fn is_dynamic(&self) -> bool {
        matches!(
            self,
            ProtocolKind::Sts | ProtocolKind::StsOptI | ProtocolKind::StsOptII
        )
    }
}

impl core::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_unique_labels() {
        let mut labels: Vec<&str> = ProtocolKind::ALL.iter().map(|p| p.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), 7);
    }

    #[test]
    fn only_sts_family_is_dynamic() {
        assert!(ProtocolKind::Sts.is_dynamic());
        assert!(ProtocolKind::StsOptI.is_dynamic());
        assert!(ProtocolKind::StsOptII.is_dynamic());
        assert!(!ProtocolKind::SEcdsa.is_dynamic());
        assert!(!ProtocolKind::SEcdsaExt.is_dynamic());
        assert!(!ProtocolKind::Scianc.is_dynamic());
        assert!(!ProtocolKind::Poramb.is_dynamic());
    }
}
