//! Session key material and the KDF chain.
//!
//! The paper's eq. (4): `KS = KDF(KPM, salt)`. The 32 bytes of output
//! split into a 16-byte AES-128 encryption key (matching the paper's
//! 128-bit AES configuration) and a 16-byte MAC key for protocols that
//! authenticate with symmetric tags.

use ecq_crypto::ctr::{aes128_ctr_apply, NONCE_LEN};
use ecq_crypto::hkdf::hkdf_sha256;
use ecq_crypto::zeroize::Zeroize;

/// Length of the derived session secret in bytes.
pub const SESSION_KEY_LEN: usize = 32;

/// A derived session key (`KS` in the paper).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SessionKey {
    bytes: [u8; SESSION_KEY_LEN],
}

impl core::fmt::Debug for SessionKey {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material; show a short non-invertible tag.
        let fp = ecq_crypto::sha256::sha256(&self.bytes);
        write!(f, "SessionKey(fp:{:02x}{:02x})", fp[0], fp[1])
    }
}

impl SessionKey {
    /// Derives `KS = KDF(KPM, salt)` with the protocol name as the HKDF
    /// info string for domain separation between protocol families.
    pub fn derive(premaster: &[u8], salt: &[u8], protocol_label: &[u8]) -> Self {
        let mut bytes = [0u8; SESSION_KEY_LEN];
        hkdf_sha256(salt, premaster, protocol_label, &mut bytes);
        SessionKey { bytes }
    }

    /// Builds from raw bytes (tests and attack simulations only).
    pub fn from_bytes(bytes: [u8; SESSION_KEY_LEN]) -> Self {
        SessionKey { bytes }
    }

    /// The full 32 bytes.
    pub fn as_bytes(&self) -> &[u8; SESSION_KEY_LEN] {
        &self.bytes
    }

    /// The AES-128 encryption half.
    pub fn enc_key(&self) -> [u8; 16] {
        self.bytes[..16].try_into().expect("16 bytes")
    }

    /// The MAC half.
    pub fn mac_key(&self) -> [u8; 16] {
        self.bytes[16..].try_into().expect("16 bytes")
    }

    /// Encrypts/decrypts `data` in place with AES-128-CTR under the
    /// encryption half. `direction` separates the two flow directions'
    /// keystreams (the paper's `Resp_A` vs `Resp_B`).
    pub fn apply_stream(&self, direction: u8, data: &mut [u8]) {
        let mut nonce = [0u8; NONCE_LEN];
        nonce[0] = direction;
        aes128_ctr_apply(&self.enc_key(), &nonce, data);
    }
}

impl Zeroize for SessionKey {
    /// Wipes the key bytes (volatile stores; see
    /// [`ecq_crypto::zeroize`]). The STS endpoints and
    /// `SessionManager` call this when their state drops.
    fn zeroize(&mut self) {
        self.bytes.zeroize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic_and_separated() {
        let a = SessionKey::derive(b"premaster", b"salt", b"STS");
        let b = SessionKey::derive(b"premaster", b"salt", b"STS");
        assert_eq!(a, b);
        assert_ne!(a, SessionKey::derive(b"premaster", b"salt", b"S-ECDSA"));
        assert_ne!(a, SessionKey::derive(b"premaster", b"other", b"STS"));
        assert_ne!(a, SessionKey::derive(b"other", b"salt", b"STS"));
    }

    #[test]
    fn halves_differ() {
        let k = SessionKey::derive(b"pm", b"s", b"p");
        assert_ne!(k.enc_key(), k.mac_key());
    }

    #[test]
    fn stream_roundtrip_and_direction_separation() {
        let k = SessionKey::derive(b"pm", b"s", b"p");
        let mut a = *b"0123456789abcdef0123456789abcdef";
        let mut b = a;
        k.apply_stream(0, &mut a);
        k.apply_stream(1, &mut b);
        assert_ne!(a, b, "directions must use distinct keystreams");
        k.apply_stream(0, &mut a);
        assert_eq!(&a, b"0123456789abcdef0123456789abcdef");
    }

    #[test]
    fn debug_never_leaks() {
        let k = SessionKey::from_bytes([0xab; 32]);
        let dbg = format!("{k:?}");
        assert!(!dbg.contains("abab"));
        assert!(dbg.contains("fp:"));
    }

    #[test]
    fn zeroize_wipes_key_bytes() {
        let mut k = SessionKey::from_bytes([0xab; 32]);
        k.zeroize();
        assert_eq!(k.as_bytes(), &[0u8; 32]);
    }
}
