//! Handshake transcripts: everything needed to reproduce Table II
//! (bytes on the wire) and Table I (primitive traces → device time).

use crate::endpoint::Role;
use crate::trace::OpTrace;
use crate::wire::Message;

/// A logged wire message: sender, step label, per-field accounting and
/// the raw bytes (kept so attack simulations can replay/decrypt later).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoggedMessage {
    /// Which role sent the message.
    pub sender: Role,
    /// The paper's step label ("A1", "B2", …).
    pub step: &'static str,
    /// `"Label(len)"` field description, Table II style.
    pub fields: String,
    /// Total wire bytes.
    pub wire_len: usize,
    /// The raw encoded bytes (what a passive eavesdropper captures).
    pub bytes: Vec<u8>,
}

impl LoggedMessage {
    /// Logs a message as the driver passes it across.
    pub fn from_message(sender: Role, msg: &Message) -> Self {
        LoggedMessage {
            sender,
            step: msg.step,
            fields: msg.describe_fields(),
            wire_len: msg.wire_len(),
            bytes: msg.encode(),
        }
    }
}

/// A complete two-party handshake record.
#[derive(Clone, Debug, Default)]
pub struct Transcript {
    messages: Vec<LoggedMessage>,
    trace_initiator: OpTrace,
    trace_responder: OpTrace,
}

impl Transcript {
    /// Assembles a transcript from driver output.
    pub fn new(
        messages: Vec<LoggedMessage>,
        trace_initiator: OpTrace,
        trace_responder: OpTrace,
    ) -> Self {
        Transcript {
            messages,
            trace_initiator,
            trace_responder,
        }
    }

    /// The logged messages in exchange order.
    pub fn messages(&self) -> &[LoggedMessage] {
        &self.messages
    }

    /// Number of communication steps (Table II's "steps" count).
    pub fn step_count(&self) -> usize {
        self.messages.len()
    }

    /// Total bytes across all messages (Table II's "Total" row).
    pub fn total_bytes(&self) -> usize {
        self.messages.iter().map(|m| m.wire_len).sum()
    }

    /// The primitive trace of one role.
    pub fn trace(&self, role: Role) -> &OpTrace {
        match role {
            Role::Initiator => &self.trace_initiator,
            Role::Responder => &self.trace_responder,
        }
    }

    /// Renders the Table II column for this protocol: one line per step
    /// plus the total.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for m in &self.messages {
            out.push_str(&format!("{}: {}\n", m.step, m.fields));
        }
        out.push_str(&format!(
            "Total {}: {} B\n",
            self.step_count(),
            self.total_bytes()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{FieldKind, WireField};

    fn msg(step: &'static str, kinds: &[FieldKind]) -> Message {
        Message::new(
            step,
            kinds
                .iter()
                .map(|k| WireField::new(*k, vec![0u8; k.wire_len()]))
                .collect(),
        )
    }

    #[test]
    fn accounting() {
        let t = Transcript::new(
            vec![
                LoggedMessage::from_message(
                    Role::Initiator,
                    &msg("A1", &[FieldKind::Id, FieldKind::EphemeralPoint]),
                ),
                LoggedMessage::from_message(Role::Responder, &msg("B1", &[FieldKind::Ack])),
            ],
            OpTrace::new(),
            OpTrace::new(),
        );
        assert_eq!(t.step_count(), 2);
        assert_eq!(t.total_bytes(), 16 + 64 + 1);
        let desc = t.describe();
        assert!(desc.contains("A1: ID(16), XG(64)"));
        assert!(desc.contains("Total 2: 81 B"));
    }

    #[test]
    fn logged_bytes_match_encoding() {
        let m = msg("A1", &[FieldKind::Nonce]);
        let logged = LoggedMessage::from_message(Role::Initiator, &m);
        assert_eq!(logged.bytes, m.encode());
        assert_eq!(logged.wire_len, 32);
    }
}
