//! Protocol error type shared by all handshake implementations.

use ecq_cert::CertError;
use ecq_p256::CurveError;

/// Errors surfaced by the transport layer — framing, socket I/O and
/// per-connection deadlines — kept separate from [`ProtocolError`] so a
/// handshake state machine never has to pattern-match on wire plumbing.
///
/// Every variant is a *fail-closed* rejection: a frame that trips one of
/// these is dropped in its entirety and the decoder state resets. The
/// type is `Copy` so transports can surface it through the same
/// value-oriented plumbing as [`ProtocolError`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// An operating-system I/O error, reduced to its [`std::io::ErrorKind`]
    /// (the rich error is not `Copy`; the kind is what callers branch on).
    Io(std::io::ErrorKind),
    /// A read or write did not complete before the connection deadline.
    Timeout,
    /// The peer closed the connection mid-frame.
    Closed,
    /// A frame header declared a payload longer than the negotiated cap.
    FrameTooLarge {
        /// Declared payload length.
        len: u32,
        /// The decoder's hard cap.
        max: u32,
    },
    /// The frame did not start with the protocol magic.
    BadMagic,
    /// The frame carried an unknown protocol version.
    BadVersion {
        /// The version byte received.
        got: u8,
    },
    /// The frame named a cryptosystem this build does not implement.
    BadCrypto {
        /// The cryptosystem identifier received.
        got: u8,
    },
    /// The frame ended before its declared payload did.
    Truncated,
    /// The frame parsed structurally but its payload is not a valid
    /// encoding of any known message.
    Malformed,
}

impl core::fmt::Display for TransportError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            TransportError::Io(kind) => write!(f, "transport i/o error: {kind}"),
            TransportError::Timeout => write!(f, "transport deadline exceeded"),
            TransportError::Closed => write!(f, "peer closed the connection"),
            TransportError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds cap of {max}")
            }
            TransportError::BadMagic => write!(f, "frame does not start with protocol magic"),
            TransportError::BadVersion { got } => {
                write!(f, "unsupported protocol version {got:#04x}")
            }
            TransportError::BadCrypto { got } => {
                write!(f, "unsupported cryptosystem identifier {got:#04x}")
            }
            TransportError::Truncated => write!(f, "frame truncated before declared length"),
            TransportError::Malformed => write!(f, "frame payload is malformed"),
        }
    }
}

impl std::error::Error for TransportError {}

impl From<std::io::Error> for TransportError {
    fn from(e: std::io::Error) -> Self {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
                TransportError::Timeout
            }
            std::io::ErrorKind::UnexpectedEof => TransportError::Closed,
            kind => TransportError::Io(kind),
        }
    }
}

/// Errors surfaced by protocol endpoints and the handshake driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// A curve-level operation failed.
    Curve(CurveError),
    /// A certificate-level operation failed.
    Cert(CertError),
    /// Peer authentication failed (bad signature or MAC).
    AuthenticationFailed,
    /// A message arrived out of order or in an unexpected state.
    UnexpectedMessage,
    /// A message could not be decoded.
    Decode,
    /// The session key was requested before establishment.
    NotEstablished,
    /// The handshake driver exceeded its round budget (protocol bug or
    /// a deadlocked state machine).
    Stalled,
    /// The handshake did not complete before its virtual-time deadline
    /// (lost or withheld wire messages — the fail-closed outcome for a
    /// lossy or adversarial medium).
    Timeout,
    /// Both endpoints reported establishment but derived different
    /// session keys — never acceptable silently; surfacing it is the
    /// conformance suite's core soundness check.
    KeyMismatch,
    /// The simulation lost the session's state mid-sweep (a broken
    /// scheduler invariant or a crashed worker). The session fails
    /// closed — no key is reported — while the rest of the fleet
    /// completes.
    Poisoned,
    /// The transport under the handshake failed (framing, socket I/O
    /// or a connection deadline). See [`TransportError`].
    Transport(TransportError),
}

impl core::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtocolError::Curve(e) => write!(f, "curve error: {e}"),
            ProtocolError::Cert(e) => write!(f, "certificate error: {e}"),
            ProtocolError::AuthenticationFailed => write!(f, "peer authentication failed"),
            ProtocolError::UnexpectedMessage => write!(f, "unexpected protocol message"),
            ProtocolError::Decode => write!(f, "message decoding failed"),
            ProtocolError::NotEstablished => write!(f, "session not established"),
            ProtocolError::Stalled => write!(f, "handshake stalled"),
            ProtocolError::Timeout => write!(f, "handshake timed out"),
            ProtocolError::KeyMismatch => write!(f, "session keys disagree"),
            ProtocolError::Poisoned => write!(f, "session state lost mid-sweep; failed closed"),
            ProtocolError::Transport(e) => write!(f, "transport error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Curve(e) => Some(e),
            ProtocolError::Cert(e) => Some(e),
            ProtocolError::Transport(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CurveError> for ProtocolError {
    fn from(e: CurveError) -> Self {
        ProtocolError::Curve(e)
    }
}

impl From<CertError> for ProtocolError {
    fn from(e: CertError) -> Self {
        ProtocolError::Cert(e)
    }
}

impl From<TransportError> for ProtocolError {
    fn from(e: TransportError) -> Self {
        ProtocolError::Transport(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e = ProtocolError::Curve(CurveError::InvalidPoint);
        assert!(e.to_string().contains("curve error"));
        assert!(e.source().is_some());
        assert!(ProtocolError::Decode.source().is_none());
    }

    #[test]
    fn conversions() {
        let e: ProtocolError = CurveError::InvalidScalar.into();
        assert_eq!(e, ProtocolError::Curve(CurveError::InvalidScalar));
        let e: ProtocolError = CertError::Expired.into();
        assert_eq!(e, ProtocolError::Cert(CertError::Expired));
        let e: ProtocolError = TransportError::BadMagic.into();
        assert_eq!(e, ProtocolError::Transport(TransportError::BadMagic));
    }

    #[test]
    fn io_error_reduction() {
        let timeout = std::io::Error::new(std::io::ErrorKind::TimedOut, "slow");
        assert_eq!(TransportError::from(timeout), TransportError::Timeout);
        let block = std::io::Error::new(std::io::ErrorKind::WouldBlock, "later");
        assert_eq!(TransportError::from(block), TransportError::Timeout);
        let eof = std::io::Error::new(std::io::ErrorKind::UnexpectedEof, "gone");
        assert_eq!(TransportError::from(eof), TransportError::Closed);
        let refused = std::io::Error::new(std::io::ErrorKind::ConnectionRefused, "no");
        assert_eq!(
            TransportError::from(refused),
            TransportError::Io(std::io::ErrorKind::ConnectionRefused)
        );
        assert!(TransportError::Timeout.to_string().contains("deadline"));
        let e = ProtocolError::Transport(TransportError::BadVersion { got: 9 });
        assert!(e.source().is_some());
    }
}
