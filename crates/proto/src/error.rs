//! Protocol error type shared by all handshake implementations.

use ecq_cert::CertError;
use ecq_p256::CurveError;

/// Errors surfaced by protocol endpoints and the handshake driver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolError {
    /// A curve-level operation failed.
    Curve(CurveError),
    /// A certificate-level operation failed.
    Cert(CertError),
    /// Peer authentication failed (bad signature or MAC).
    AuthenticationFailed,
    /// A message arrived out of order or in an unexpected state.
    UnexpectedMessage,
    /// A message could not be decoded.
    Decode,
    /// The session key was requested before establishment.
    NotEstablished,
    /// The handshake driver exceeded its round budget (protocol bug or
    /// a deadlocked state machine).
    Stalled,
    /// The handshake did not complete before its virtual-time deadline
    /// (lost or withheld wire messages — the fail-closed outcome for a
    /// lossy or adversarial medium).
    Timeout,
    /// Both endpoints reported establishment but derived different
    /// session keys — never acceptable silently; surfacing it is the
    /// conformance suite's core soundness check.
    KeyMismatch,
    /// The simulation lost the session's state mid-sweep (a broken
    /// scheduler invariant or a crashed worker). The session fails
    /// closed — no key is reported — while the rest of the fleet
    /// completes.
    Poisoned,
}

impl core::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProtocolError::Curve(e) => write!(f, "curve error: {e}"),
            ProtocolError::Cert(e) => write!(f, "certificate error: {e}"),
            ProtocolError::AuthenticationFailed => write!(f, "peer authentication failed"),
            ProtocolError::UnexpectedMessage => write!(f, "unexpected protocol message"),
            ProtocolError::Decode => write!(f, "message decoding failed"),
            ProtocolError::NotEstablished => write!(f, "session not established"),
            ProtocolError::Stalled => write!(f, "handshake stalled"),
            ProtocolError::Timeout => write!(f, "handshake timed out"),
            ProtocolError::KeyMismatch => write!(f, "session keys disagree"),
            ProtocolError::Poisoned => write!(f, "session state lost mid-sweep; failed closed"),
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Curve(e) => Some(e),
            ProtocolError::Cert(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CurveError> for ProtocolError {
    fn from(e: CurveError) -> Self {
        ProtocolError::Curve(e)
    }
}

impl From<CertError> for ProtocolError {
    fn from(e: CertError) -> Self {
        ProtocolError::Cert(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_and_source() {
        let e = ProtocolError::Curve(CurveError::InvalidPoint);
        assert!(e.to_string().contains("curve error"));
        assert!(e.source().is_some());
        assert!(ProtocolError::Decode.source().is_none());
    }

    #[test]
    fn conversions() {
        let e: ProtocolError = CurveError::InvalidScalar.into();
        assert_eq!(e, ProtocolError::Curve(CurveError::InvalidScalar));
        let e: ProtocolError = CertError::Expired.into();
        assert_eq!(e, ProtocolError::Cert(CertError::Expired));
    }
}
