//! Device credentials: the output of the paper's deployment phases
//! (1) device authentication and (2) certificate derivation (Fig. 1).
//!
//! Every session protocol starts from a [`Credentials`] bundle: the
//! device identity, its implicit certificate, the reconstructed key
//! pair and the CA public key needed to derive peers' keys.

use ecq_cert::ca::CertificateAuthority;
use ecq_cert::requester::CertRequester;
use ecq_cert::{CertError, DeviceId, ImplicitCert};
use ecq_crypto::HmacDrbg;
use ecq_p256::keys::KeyPair;
use ecq_p256::point::AffinePoint;

/// Long-term credential state of one device.
#[derive(Clone, Debug)]
pub struct Credentials {
    /// The device identity.
    pub id: DeviceId,
    /// The device's implicit certificate (`Cert_X`).
    pub cert: ImplicitCert,
    /// The ECQV-reconstructed key pair (`Prk_X`, `Puk_X`).
    pub keys: KeyPair,
    /// The CA public key `Q_CA` used for implicit derivation of peers.
    pub ca_public: AffinePoint,
}

impl Credentials {
    /// Runs the full provisioning flow against a CA: request →
    /// issuance → key reconstruction (the paper's phases 1–2).
    ///
    /// # Errors
    ///
    /// Propagates [`CertError`] from issuance or reconstruction.
    pub fn provision(
        ca: &CertificateAuthority,
        id: DeviceId,
        valid_from: u32,
        valid_to: u32,
        rng: &mut HmacDrbg,
    ) -> Result<Self, CertError> {
        let requester = CertRequester::generate(id, rng);
        let issued = ca.issue(&requester.request(), valid_from, valid_to, rng)?;
        let keys = requester.reconstruct(&issued, &ca.public_key())?;
        Ok(Credentials {
            id,
            cert: issued.certificate,
            keys,
            ca_public: ca.public_key(),
        })
    }

    /// Certificate renewal: re-runs the request/issue flow for the
    /// same identity with a new validity window. ECQV renewal is a
    /// fresh issuance — the new certificate embeds a fresh CA blinding
    /// and the device draws a fresh request secret, so the long-term
    /// key pair rotates with the certificate. This is exactly the
    /// paper's §I observation about static KD: keys "would only be
    /// changed by the change of the certificates".
    ///
    /// # Errors
    ///
    /// Propagates [`CertError`] from issuance or reconstruction.
    pub fn renew(
        &self,
        ca: &CertificateAuthority,
        valid_from: u32,
        valid_to: u32,
        rng: &mut HmacDrbg,
    ) -> Result<Self, CertError> {
        Self::provision(ca, self.id, valid_from, valid_to, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecq_cert::reconstruct_public_key;

    #[test]
    fn provisioning_yields_consistent_credentials() {
        let mut rng = HmacDrbg::from_seed(81);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let creds = Credentials::provision(&ca, DeviceId::from_label("ecu"), 0, 100, &mut rng)
            .expect("provisioning succeeds");
        assert!(creds.keys.is_consistent());
        assert_eq!(creds.cert.subject, creds.id);
        assert_eq!(
            reconstruct_public_key(&creds.cert, &creds.ca_public).unwrap(),
            creds.keys.public
        );
    }

    #[test]
    fn two_devices_same_ca_interoperate() {
        let mut rng = HmacDrbg::from_seed(82);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let a = Credentials::provision(&ca, DeviceId::from_label("a"), 0, 100, &mut rng).unwrap();
        let b = Credentials::provision(&ca, DeviceId::from_label("b"), 0, 100, &mut rng).unwrap();
        // Each can implicitly derive the other's public key.
        assert_eq!(
            reconstruct_public_key(&b.cert, &a.ca_public).unwrap(),
            b.keys.public
        );
        assert_eq!(
            reconstruct_public_key(&a.cert, &b.ca_public).unwrap(),
            a.keys.public
        );
    }
}
