//! Typed wire messages with byte-exact size accounting.
//!
//! The paper's Table II itemizes every handshake step as a list of
//! fields with fixed sizes (`ID(16)`, `Cert(101)`, `XG(64)`, …). This
//! module models messages the same way: a [`Message`] is an ordered
//! list of [`WireField`]s, each a [`FieldKind`] plus payload bytes. The
//! canonical encoding is the plain concatenation of the payloads, so
//! `Message::wire_len` is exactly the byte count the paper reports.

use crate::error::ProtocolError;

/// The field vocabulary of the paper's Table II.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FieldKind {
    /// Device identifier, 16 bytes.
    Id,
    /// Random nonce, 32 bytes.
    Nonce,
    /// Implicit certificate, 101 bytes.
    Cert,
    /// ECDSA signature, 64 bytes.
    Signature,
    /// Ephemeral EC point `XG`, 64 bytes (raw `x‖y`).
    EphemeralPoint,
    /// Encrypted authentication response `Resp`, 64 bytes.
    Response,
    /// Message authentication code, 32 bytes.
    Mac,
    /// Hello payload (PORAMB), 32 bytes.
    Hello,
    /// Acknowledgement, 1 byte.
    Ack,
    /// Extended finished message (S-ECDSA ext.), 96 bytes.
    Fin,
    /// PORAMB finish blob, 197 bytes.
    Finish,
}

impl FieldKind {
    /// The fixed wire size of this field kind, as accounted by the
    /// paper (Table II).
    pub const fn wire_len(&self) -> usize {
        match self {
            FieldKind::Id => 16,
            FieldKind::Nonce => 32,
            FieldKind::Cert => 101,
            FieldKind::Signature => 64,
            FieldKind::EphemeralPoint => 64,
            FieldKind::Response => 64,
            FieldKind::Mac => 32,
            FieldKind::Hello => 32,
            FieldKind::Ack => 1,
            FieldKind::Fin => 96,
            FieldKind::Finish => 197,
        }
    }

    /// The paper's display label for the field.
    pub const fn label(&self) -> &'static str {
        match self {
            FieldKind::Id => "ID",
            FieldKind::Nonce => "Nonce",
            FieldKind::Cert => "Cert",
            FieldKind::Signature => "Sign",
            FieldKind::EphemeralPoint => "XG",
            FieldKind::Response => "Resp",
            FieldKind::Mac => "MAC",
            FieldKind::Hello => "Hello",
            FieldKind::Ack => "ACK",
            FieldKind::Fin => "Fin",
            FieldKind::Finish => "Finish",
        }
    }
}

/// One field of a wire message.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WireField {
    /// The field kind (fixes the expected length).
    pub kind: FieldKind,
    /// The payload bytes.
    pub bytes: Vec<u8>,
}

impl WireField {
    /// Creates a field, validating the payload length against the kind.
    ///
    /// # Panics
    ///
    /// Panics when the payload length does not match
    /// [`FieldKind::wire_len`] — protocol code constructs fields from
    /// fixed-size arrays, so a mismatch is a programming error.
    pub fn new(kind: FieldKind, bytes: Vec<u8>) -> Self {
        assert_eq!(
            bytes.len(),
            kind.wire_len(),
            "field {:?} must be {} bytes, got {}",
            kind,
            kind.wire_len(),
            bytes.len()
        );
        WireField { kind, bytes }
    }
}

/// A protocol message: a step label (the paper's "A1", "B1", …) plus an
/// ordered list of fields.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message {
    /// Step label in the paper's notation.
    pub step: &'static str,
    /// Ordered fields.
    pub fields: Vec<WireField>,
}

impl Message {
    /// Builds a message from `(kind, bytes)` pairs.
    pub fn new(step: &'static str, fields: Vec<WireField>) -> Self {
        Message { step, fields }
    }

    /// Total wire length in bytes (the Table II accounting unit).
    pub fn wire_len(&self) -> usize {
        self.fields.iter().map(|f| f.bytes.len()).sum()
    }

    /// Canonical encoding: field payloads concatenated in order.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.wire_len());
        for f in &self.fields {
            out.extend_from_slice(&f.bytes);
        }
        out
    }

    /// Decodes a byte string against an expected field layout.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Decode`] when the total length does not match
    /// the layout.
    pub fn decode(
        step: &'static str,
        layout: &[FieldKind],
        bytes: &[u8],
    ) -> Result<Self, ProtocolError> {
        let expect: usize = layout.iter().map(|k| k.wire_len()).sum();
        if bytes.len() != expect {
            return Err(ProtocolError::Decode);
        }
        let mut fields = Vec::with_capacity(layout.len());
        let mut offset = 0;
        for kind in layout {
            let len = kind.wire_len();
            fields.push(WireField::new(*kind, bytes[offset..offset + len].to_vec()));
            offset += len;
        }
        Ok(Message { step, fields })
    }

    /// Returns the payload of the first field of `kind`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Decode`] when the field is absent.
    pub fn field(&self, kind: FieldKind) -> Result<&[u8], ProtocolError> {
        self.fields
            .iter()
            .find(|f| f.kind == kind)
            .map(|f| f.bytes.as_slice())
            .ok_or(ProtocolError::Decode)
    }

    /// Returns the payload of the `n`-th field of `kind` (0-based), for
    /// messages carrying repeated kinds.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::Decode`] when fewer than `n+1` such fields
    /// exist.
    pub fn field_nth(&self, kind: FieldKind, n: usize) -> Result<&[u8], ProtocolError> {
        self.fields
            .iter()
            .filter(|f| f.kind == kind)
            .nth(n)
            .map(|f| f.bytes.as_slice())
            .ok_or(ProtocolError::Decode)
    }

    /// A `"Label(len)"` rendering of the field list, matching the
    /// paper's Table II cells (e.g. `"ID(16), XG(64)"`).
    pub fn describe_fields(&self) -> String {
        self.fields
            .iter()
            .map(|f| format!("{}({})", f.kind.label(), f.bytes.len()))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_sizes_match_paper() {
        assert_eq!(FieldKind::Id.wire_len(), 16);
        assert_eq!(FieldKind::Nonce.wire_len(), 32);
        assert_eq!(FieldKind::Cert.wire_len(), 101);
        assert_eq!(FieldKind::Signature.wire_len(), 64);
        assert_eq!(FieldKind::EphemeralPoint.wire_len(), 64);
        assert_eq!(FieldKind::Response.wire_len(), 64);
        assert_eq!(FieldKind::Mac.wire_len(), 32);
        assert_eq!(FieldKind::Hello.wire_len(), 32);
        assert_eq!(FieldKind::Ack.wire_len(), 1);
        assert_eq!(FieldKind::Fin.wire_len(), 96);
        assert_eq!(FieldKind::Finish.wire_len(), 197);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let msg = Message::new(
            "A1",
            vec![
                WireField::new(FieldKind::Id, vec![1; 16]),
                WireField::new(FieldKind::EphemeralPoint, vec![2; 64]),
            ],
        );
        assert_eq!(msg.wire_len(), 80);
        let bytes = msg.encode();
        let decoded =
            Message::decode("A1", &[FieldKind::Id, FieldKind::EphemeralPoint], &bytes).unwrap();
        assert_eq!(decoded, msg);
    }

    #[test]
    fn decode_rejects_wrong_length() {
        assert!(Message::decode("A1", &[FieldKind::Id], &[0u8; 15]).is_err());
        assert!(Message::decode("A1", &[FieldKind::Id], &[0u8; 17]).is_err());
    }

    #[test]
    #[should_panic(expected = "must be 16 bytes")]
    fn field_length_mismatch_panics() {
        WireField::new(FieldKind::Id, vec![0; 15]);
    }

    #[test]
    fn field_lookup() {
        let msg = Message::new(
            "B2",
            vec![
                WireField::new(FieldKind::Cert, vec![0; 101]),
                WireField::new(FieldKind::Nonce, vec![1; 32]),
                WireField::new(FieldKind::Nonce, vec![2; 32]),
            ],
        );
        assert_eq!(msg.field(FieldKind::Cert).unwrap().len(), 101);
        assert_eq!(msg.field_nth(FieldKind::Nonce, 1).unwrap()[0], 2);
        assert!(msg.field(FieldKind::Ack).is_err());
        assert!(msg.field_nth(FieldKind::Nonce, 2).is_err());
    }

    #[test]
    fn describe_matches_paper_style() {
        let msg = Message::new(
            "A1",
            vec![
                WireField::new(FieldKind::Id, vec![0; 16]),
                WireField::new(FieldKind::EphemeralPoint, vec![0; 64]),
            ],
        );
        assert_eq!(msg.describe_fields(), "ID(16), XG(64)");
    }
}
