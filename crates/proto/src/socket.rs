//! Real-socket implementations of the [`Transport`] contract.
//!
//! [`StreamTransport`] frames handshake messages over any byte stream
//! (TCP, Unix domain sockets, an in-process socket pair) using the
//! versioned [`crate::framing`] wire format. Unlike the virtual-time
//! transports, delivery here is wall-clock: `send_frame` writes the
//! frame immediately and returns `now_us` unchanged, and `recv_frame`
//! blocks on the stream for up to `deadline_us − now_us` wall-clock
//! microseconds.
//!
//! [`SocketPair`] joins two [`StreamTransport`]s over an in-process
//! socket pair into one bidirectional [`Transport`], so the fleet
//! sweep can push every wire message of a session through a real
//! kernel socket buffer (the `TransportKind::Socket` smoke path): same
//! bytes, same order, real file descriptors.

use crate::endpoint::Role;
use crate::error::TransportError;
use crate::framing::{Frame, HEADER_LEN};
use crate::transport::{Transport, TransportTime};
use crate::wire::Message;
use std::io::{Read, Write};
use std::time::Duration;

/// A byte stream with a settable read deadline — the capability
/// [`StreamTransport::recv_frame`] needs to honor its deadline
/// parameter on a blocking socket.
pub trait DeadlineStream: Read + Write {
    /// Sets the read timeout for subsequent reads (`None` blocks
    /// indefinitely).
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure as [`TransportError`].
    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> Result<(), TransportError>;
}

impl DeadlineStream for std::net::TcpStream {
    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        std::net::TcpStream::set_read_timeout(self, timeout).map_err(TransportError::from)
    }
}

#[cfg(unix)]
impl DeadlineStream for std::os::unix::net::UnixStream {
    fn set_read_deadline(&mut self, timeout: Option<Duration>) -> Result<(), TransportError> {
        std::os::unix::net::UnixStream::set_read_timeout(self, timeout)
            .map_err(TransportError::from)
    }
}

/// Reads exactly one frame from `stream`: a 12-byte header (validated
/// before any payload byte is read) followed by the declared payload.
///
/// # Errors
///
/// Header/payload decode errors from [`crate::framing`], plus
/// [`TransportError::Timeout`] / [`TransportError::Closed`] from the
/// stream itself.
pub fn read_frame<S: Read>(stream: &mut S) -> Result<Frame, TransportError> {
    let mut header = [0u8; HEADER_LEN];
    stream.read_exact(&mut header)?;
    let (kind, len) = Frame::parse_header(&header)?;
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Frame::decode_payload(kind, &payload)
}

/// Writes one frame to `stream` and flushes it.
///
/// # Errors
///
/// Frame-encode errors plus stream I/O errors, as [`TransportError`].
pub fn write_frame<S: Write>(stream: &mut S, frame: &Frame) -> Result<(), TransportError> {
    let bytes = frame.encode()?;
    stream.write_all(&bytes)?;
    stream.flush()?;
    Ok(())
}

/// One endpoint's framed view of a byte stream: handshake messages go
/// out as [`Frame::HsMessage`] frames and come back the same way.
///
/// The transport is single-ended — it speaks for `local` and refuses
/// sends or receives on behalf of the peer (those travel on the peer's
/// own stream). An unexpected frame kind on the stream (a typed
/// [`Frame::ErrorClose`], a stray control frame) surfaces as
/// [`TransportError::Malformed`] rather than being skipped: control
/// traffic is a connection-setup concern, finished before a transport
/// is constructed.
#[derive(Debug)]
pub struct StreamTransport<S: DeadlineStream> {
    stream: S,
    local: Role,
    bytes: u64,
    messages: u64,
    frames: u64,
}

impl<S: DeadlineStream> StreamTransport<S> {
    /// Wraps `stream` as `local`'s framed transport.
    pub fn new(stream: S, local: Role) -> Self {
        StreamTransport {
            stream,
            local,
            bytes: 0,
            messages: 0,
            frames: 0,
        }
    }

    /// The local role this transport speaks for.
    pub fn local_role(&self) -> Role {
        self.local
    }

    /// Consumes the transport, returning the underlying stream.
    pub fn into_inner(self) -> S {
        self.stream
    }

    /// Shared access to the underlying stream.
    pub fn get_ref(&self) -> &S {
        &self.stream
    }
}

impl<S: DeadlineStream> Transport for StreamTransport<S> {
    /// Writes the message as one frame, immediately. The returned time
    /// is `now_us` — wall-clock sockets have no virtual latency model;
    /// elapsed time is measured by the caller, not simulated.
    fn send_frame(
        &mut self,
        from: Role,
        message: Message,
        now_us: TransportTime,
    ) -> Result<TransportTime, TransportError> {
        if from != self.local {
            return Err(TransportError::Malformed);
        }
        let wire_len = message.wire_len() as u64;
        write_frame(&mut self.stream, &Frame::HsMessage(message))?;
        self.bytes += wire_len;
        self.messages += 1;
        self.frames += 1;
        Ok(now_us)
    }

    /// Blocks for up to `deadline_us − now_us` wall-clock microseconds
    /// for the peer's next handshake frame. A zero budget means "wait
    /// indefinitely" (a caller that wants a pure poll should use a
    /// 1 µs budget instead — blocking sockets cannot poll exactly).
    fn recv_frame(
        &mut self,
        to: Role,
        now_us: TransportTime,
        deadline_us: TransportTime,
    ) -> Result<Option<Message>, TransportError> {
        if to != self.local {
            return Err(TransportError::Malformed);
        }
        let budget = deadline_us.saturating_sub(now_us);
        let timeout = if budget == 0 {
            None
        } else {
            Some(Duration::from_micros(budget))
        };
        self.stream.set_read_deadline(timeout)?;
        match read_frame(&mut self.stream)? {
            Frame::HsMessage(message) => {
                self.frames += 1;
                Ok(Some(message))
            }
            _ => Err(TransportError::Malformed),
        }
    }

    /// Real sockets cannot peek a delivery schedule; `None` always.
    fn next_delivery(&self, _to: Role) -> Option<TransportTime> {
        None
    }

    fn bytes_carried(&self) -> u64 {
        self.bytes
    }

    fn messages_carried(&self) -> u64 {
        self.messages
    }

    /// Frames moved in either direction on this endpoint's stream.
    fn frames_carried(&self) -> u64 {
        self.frames
    }
}

#[cfg(unix)]
type PairStream = std::os::unix::net::UnixStream;
#[cfg(not(unix))]
type PairStream = std::net::TcpStream;

/// Both ends of an in-process socket pair, presented as one
/// bidirectional [`Transport`]: sends from a role go into that role's
/// socket end, receives drain the other end. Every message crosses a
/// real kernel socket buffer in the versioned frame format.
///
/// Delivery is immediate in virtual time (like a zero-latency
/// [`crate::transport::ChannelTransport`]): the sweep scheduler learns
/// nothing about wall-clock socket timing, which keeps reports
/// deterministic, while the byte path is exercised for real.
#[derive(Debug)]
pub struct SocketPair {
    initiator: StreamTransport<PairStream>,
    responder: StreamTransport<PairStream>,
    /// Pending delivery bookkeeping per receiver
    /// (`[initiator, responder]`): the kernel buffer holds the bytes;
    /// these hold the virtual delivery times `next_delivery` reports.
    pending: [std::collections::VecDeque<TransportTime>; 2],
}

fn pair_streams() -> Result<(PairStream, PairStream), TransportError> {
    #[cfg(unix)]
    {
        let (a, b) = std::os::unix::net::UnixStream::pair()?;
        Ok((a, b))
    }
    #[cfg(not(unix))]
    {
        let listener = std::net::TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let a = std::net::TcpStream::connect(addr)?;
        let (b, _) = listener.accept()?;
        a.set_nodelay(true)?;
        b.set_nodelay(true)?;
        Ok((a, b))
    }
}

impl SocketPair {
    /// Opens a fresh in-process socket pair (a Unix socketpair where
    /// available, a loopback TCP pair otherwise).
    ///
    /// # Errors
    ///
    /// [`TransportError`] when the operating system refuses the pair
    /// (fd exhaustion being the realistic cause).
    pub fn open() -> Result<Self, TransportError> {
        let (a, b) = pair_streams()?;
        Ok(SocketPair {
            initiator: StreamTransport::new(a, Role::Initiator),
            responder: StreamTransport::new(b, Role::Responder),
            pending: [Default::default(), Default::default()],
        })
    }

    fn end_mut(&mut self, role: Role) -> &mut StreamTransport<PairStream> {
        match role {
            Role::Initiator => &mut self.initiator,
            Role::Responder => &mut self.responder,
        }
    }

    fn pending_mut(&mut self, receiver: Role) -> &mut std::collections::VecDeque<TransportTime> {
        match receiver {
            Role::Initiator => &mut self.pending[0],
            Role::Responder => &mut self.pending[1],
        }
    }
}

impl Transport for SocketPair {
    fn send_frame(
        &mut self,
        from: Role,
        message: Message,
        now_us: TransportTime,
    ) -> Result<TransportTime, TransportError> {
        let at = self.end_mut(from).send_frame(from, message, now_us)?;
        self.pending_mut(from.peer()).push_back(at);
        Ok(at)
    }

    fn recv_frame(
        &mut self,
        to: Role,
        now_us: TransportTime,
        _deadline_us: TransportTime,
    ) -> Result<Option<Message>, TransportError> {
        match self.pending_mut(to).front() {
            Some(at) if *at <= now_us => {}
            _ => return Ok(None),
        }
        self.pending_mut(to).pop_front();
        // The sender's write preceded this call in program order, so
        // the bytes sit in the kernel buffer; a generous wall-clock
        // deadline only guards against a torn write.
        self.end_mut(to).recv_frame(to, 0, 1_000_000)
    }

    fn next_delivery(&self, to: Role) -> Option<TransportTime> {
        let queue = match to {
            Role::Initiator => &self.pending[0],
            Role::Responder => &self.pending[1],
        };
        queue.front().copied()
    }

    fn bytes_carried(&self) -> u64 {
        self.initiator.bytes_carried() + self.responder.bytes_carried()
    }

    fn messages_carried(&self) -> u64 {
        self.initiator.messages_carried() + self.responder.messages_carried()
    }

    fn frames_carried(&self) -> u64 {
        // Count each frame once, at its sending end.
        self.initiator.messages_carried() + self.responder.messages_carried()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{FieldKind, WireField};

    fn msg(step: &'static str, byte: u8) -> Message {
        Message::new(step, vec![WireField::new(FieldKind::Ack, vec![byte])])
    }

    #[test]
    fn socket_pair_carries_messages_both_ways() {
        let mut pair = SocketPair::open().unwrap();
        pair.send_frame(Role::Initiator, msg("A1", 1), 5).unwrap();
        pair.send_frame(Role::Responder, msg("B1", 2), 5).unwrap();
        assert_eq!(pair.next_delivery(Role::Responder), Some(5));
        let got = pair.recv_frame(Role::Responder, 5, 5).unwrap().unwrap();
        assert_eq!(got, msg("A1", 1));
        let got = pair.recv_frame(Role::Initiator, 5, 5).unwrap().unwrap();
        assert_eq!(got, msg("B1", 2));
        assert_eq!(pair.messages_carried(), 2);
        assert_eq!(pair.bytes_carried(), 2);
        assert_eq!(pair.frames_carried(), 2);
    }

    #[test]
    fn socket_pair_is_fifo_and_time_gated() {
        let mut pair = SocketPair::open().unwrap();
        pair.send_frame(Role::Initiator, msg("A1", 1), 10).unwrap();
        pair.send_frame(Role::Initiator, msg("A2", 2), 20).unwrap();
        // Nothing is due before its virtual send time.
        assert!(pair.recv_frame(Role::Responder, 9, 9).unwrap().is_none());
        assert_eq!(
            pair.recv_frame(Role::Responder, 10, 10)
                .unwrap()
                .unwrap()
                .step,
            "A1"
        );
        assert_eq!(
            pair.recv_frame(Role::Responder, 20, 20)
                .unwrap()
                .unwrap()
                .step,
            "A2"
        );
        assert!(pair.recv_frame(Role::Responder, 30, 30).unwrap().is_none());
    }

    #[test]
    fn stream_transport_rejects_wrong_role() {
        let (a, _b) = pair_streams().unwrap();
        let mut end = StreamTransport::new(a, Role::Initiator);
        assert_eq!(
            end.send_frame(Role::Responder, msg("A1", 1), 0),
            Err(TransportError::Malformed)
        );
        assert_eq!(
            end.recv_frame(Role::Responder, 0, 0),
            Err(TransportError::Malformed)
        );
    }

    #[test]
    fn recv_deadline_times_out() {
        let mut pair = SocketPair::open().unwrap();
        // Bypass the bookkeeping: read directly on the raw end with a
        // small wall-clock budget and nothing in flight.
        let end = pair.end_mut(Role::Initiator);
        let err = end.recv_frame(Role::Initiator, 0, 50_000).unwrap_err();
        assert_eq!(err, TransportError::Timeout);
    }

    #[test]
    fn control_frame_on_a_handshake_stream_is_malformed() {
        let mut pair = SocketPair::open().unwrap();
        write_frame(&mut pair.responder.stream, &Frame::CrlRequest).unwrap();
        let err = pair
            .initiator
            .recv_frame(Role::Initiator, 0, 1_000_000)
            .unwrap_err();
        assert_eq!(err, TransportError::Malformed);
    }
}
