//! The versioned service wire format: length-prefixed frames carrying
//! enrollment, handshake and revocation traffic over real sockets.
//!
//! Every frame starts with a fixed 12-byte header:
//!
//! | offset | size | field |
//! |---|---|---|
//! | 0 | 4 | magic `"ECQS"` |
//! | 4 | 1 | protocol version (currently [`VERSION`]) |
//! | 5 | 1 | cryptosystem identifier ([`CRYPTO_P256_SHA256`]) |
//! | 6 | 1 | frame kind ([`FrameKind`]) |
//! | 7 | 1 | flags (must be 0 in version 1) |
//! | 8 | 4 | payload length, u32 big-endian |
//!
//! followed by exactly `length` payload bytes. Public keys travel as
//! 33-byte compressed SEC1 points; signatures and variable-length blobs
//! (the CRL) are u16-length-prefixed inside the payload.
//!
//! The decoder is **total and fail-closed**: every reject is a typed
//! [`TransportError`] — unknown magic, version or cryptosystem,
//! oversized or truncated frames, and structurally invalid payloads all
//! refuse the frame without panicking. Arbitrary byte soup must never
//! crash it (the service CI job fuzzes exactly that).
//!
//! Versioning and compatibility rules:
//!
//! * The magic never changes; anything else is not this protocol.
//! * A version bump may change everything after the version byte.
//!   Decoders reject versions they do not implement with
//!   [`TransportError::BadVersion`] — there is no downgrade path on a
//!   single connection.
//! * The cryptosystem byte pins the curve/hash suite (P-256 + SHA-256,
//!   the paper's prototype); a peer offering anything else is rejected
//!   with [`TransportError::BadCrypto`] before any payload is parsed.
//! * Flags are reserved: version-1 decoders reject nonzero flags, so
//!   future senders cannot silently assume an extension was honored.

use crate::error::TransportError;
use crate::wire::{FieldKind, Message, WireField};

/// Frame magic: the first four bytes of every service frame.
pub const MAGIC: [u8; 4] = *b"ECQS";

/// The wire-format version this build speaks.
pub const VERSION: u8 = 1;

/// Cryptosystem identifier: secp256r1 + SHA-256 (matches the curve
/// identifier byte inside the ECQV minimal certificate).
pub const CRYPTO_P256_SHA256: u8 = 0x17;

/// Fixed frame-header length in bytes.
pub const HEADER_LEN: usize = 12;

/// Hard cap on a frame payload. Handshake messages top out at 245
/// bytes; the CRL grows with revocations, so the cap leaves generous
/// headroom while bounding per-connection memory.
pub const MAX_PAYLOAD: u32 = 16 * 1024;

/// The frame vocabulary of the service protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameKind {
    /// Client greeting (carries a client nonce).
    Hello,
    /// Daemon reply to [`FrameKind::Hello`]: the CA public key.
    HelloAck,
    /// Enrollment request: subject identity + request point.
    EnrollRequest,
    /// Enrollment result: certificate + private-key contribution
    /// (the ECQV `r` value — enrollment is a provisioning channel).
    EnrollIssued,
    /// Opens a handshake session against the daemon's responder.
    HsOpen,
    /// One handshake wire message ([`Message`]).
    HsMessage,
    /// Requests the CA's current revocation list.
    CrlRequest,
    /// The CRL plus the CA's signature over it.
    CrlResponse,
    /// Typed terminal error; the sender closes after this frame.
    ErrorClose,
}

impl FrameKind {
    /// The wire code of this frame kind.
    pub const fn code(self) -> u8 {
        match self {
            FrameKind::Hello => 0x01,
            FrameKind::HelloAck => 0x02,
            FrameKind::EnrollRequest => 0x10,
            FrameKind::EnrollIssued => 0x11,
            FrameKind::HsOpen => 0x20,
            FrameKind::HsMessage => 0x21,
            FrameKind::CrlRequest => 0x30,
            FrameKind::CrlResponse => 0x31,
            FrameKind::ErrorClose => 0x7F,
        }
    }

    /// Decodes a frame-kind byte.
    ///
    /// # Errors
    ///
    /// [`TransportError::Malformed`] on an unknown code.
    pub fn from_code(code: u8) -> Result<Self, TransportError> {
        match code {
            0x01 => Ok(FrameKind::Hello),
            0x02 => Ok(FrameKind::HelloAck),
            0x10 => Ok(FrameKind::EnrollRequest),
            0x11 => Ok(FrameKind::EnrollIssued),
            0x20 => Ok(FrameKind::HsOpen),
            0x21 => Ok(FrameKind::HsMessage),
            0x30 => Ok(FrameKind::CrlRequest),
            0x31 => Ok(FrameKind::CrlResponse),
            0x7F => Ok(FrameKind::ErrorClose),
            _ => Err(TransportError::Malformed),
        }
    }
}

/// A decoded service frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Client greeting.
    Hello {
        /// Client-chosen nonce (transcript freshness, not secret).
        nonce: [u8; 32],
    },
    /// Daemon greeting reply.
    HelloAck {
        /// The CA public key, compressed SEC1.
        ca_public: [u8; 33],
    },
    /// Enrollment request.
    EnrollRequest {
        /// Subject device identity.
        subject: [u8; 16],
        /// The requester's commitment point, compressed SEC1.
        point: [u8; 33],
    },
    /// Enrollment result.
    EnrollIssued {
        /// The implicit certificate (the 101-byte minimal encoding).
        cert: [u8; 101],
        /// The CA's private-key contribution `r`.
        recon_private: [u8; 32],
    },
    /// Handshake session open.
    HsOpen {
        /// Session seed: both sides derive their handshake RNG streams
        /// from it, which is what makes a socket transcript comparable
        /// byte-for-byte to a simulator run of the same seed.
        seed: [u8; 32],
        /// STS variant code (0 conventional, 1 opt. I, 2 opt. II).
        variant: u8,
        /// Certificate-validity clock for the handshake.
        now: u32,
    },
    /// One handshake message.
    HsMessage(Message),
    /// CRL fetch.
    CrlRequest,
    /// CRL fetch reply.
    CrlResponse {
        /// The serialized revocation list.
        crl: Vec<u8>,
        /// The CA's ECDSA signature over `crl` (length-prefixed on the
        /// wire; 64 bytes for P-256).
        signature: Vec<u8>,
    },
    /// Typed terminal error.
    ErrorClose {
        /// An [`ErrorCode`] wire code (unknown codes are carried
        /// through — the connection is closing either way).
        code: u8,
    },
}

/// Error codes carried by [`Frame::ErrorClose`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request frame could not be decoded.
    BadFrame,
    /// Enrollment was refused (bad request point or CA failure).
    EnrollRefused,
    /// The handshake failed (authentication, decode, or state error).
    HandshakeFailed,
    /// The connection exceeded a server-side deadline.
    Deadline,
    /// The daemon is shutting down.
    ShuttingDown,
}

impl ErrorCode {
    /// The wire code of this error.
    pub const fn code(self) -> u8 {
        match self {
            ErrorCode::BadFrame => 1,
            ErrorCode::EnrollRefused => 2,
            ErrorCode::HandshakeFailed => 3,
            ErrorCode::Deadline => 4,
            ErrorCode::ShuttingDown => 5,
        }
    }
}

/// Step-label table for handshake messages on the wire. Only the
/// two-party handshake vocabulary is carried; an unknown label is an
/// encode-time error (fail closed, not a panic).
const STEP_TABLE: [(&str, u8); 6] = [
    ("A1", 0x01),
    ("A2", 0x02),
    ("A3", 0x03),
    ("B1", 0x11),
    ("B2", 0x12),
    ("B3", 0x13),
];

fn step_code(step: &str) -> Result<u8, TransportError> {
    STEP_TABLE
        .iter()
        .find(|(label, _)| *label == step)
        .map(|(_, code)| *code)
        .ok_or(TransportError::Malformed)
}

fn step_label(code: u8) -> Result<&'static str, TransportError> {
    STEP_TABLE
        .iter()
        .find(|(_, c)| *c == code)
        .map(|(label, _)| *label)
        .ok_or(TransportError::Malformed)
}

const FIELD_TABLE: [(FieldKind, u8); 11] = [
    (FieldKind::Id, 1),
    (FieldKind::Nonce, 2),
    (FieldKind::Cert, 3),
    (FieldKind::Signature, 4),
    (FieldKind::EphemeralPoint, 5),
    (FieldKind::Response, 6),
    (FieldKind::Mac, 7),
    (FieldKind::Hello, 8),
    (FieldKind::Ack, 9),
    (FieldKind::Fin, 10),
    (FieldKind::Finish, 11),
];

fn field_code(kind: FieldKind) -> u8 {
    FIELD_TABLE
        .iter()
        .find(|(k, _)| *k == kind)
        .map(|(_, c)| *c)
        .unwrap_or(0) // unreachable: the table covers the enum
}

fn field_kind(code: u8) -> Result<FieldKind, TransportError> {
    FIELD_TABLE
        .iter()
        .find(|(_, c)| *c == code)
        .map(|(k, _)| *k)
        .ok_or(TransportError::Malformed)
}

/// A cursor over an immutable payload; every read is checked, so the
/// decoder cannot index out of bounds.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TransportError> {
        let end = self.pos.checked_add(n).ok_or(TransportError::Truncated)?;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or(TransportError::Truncated)?;
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, TransportError> {
        self.take(1)?
            .first()
            .copied()
            .ok_or(TransportError::Truncated)
    }

    fn u16(&mut self) -> Result<u16, TransportError> {
        let b = self.take(2)?;
        let mut arr = [0u8; 2];
        arr.copy_from_slice(b);
        Ok(u16::from_be_bytes(arr))
    }

    fn u32(&mut self) -> Result<u32, TransportError> {
        let b = self.take(4)?;
        let mut arr = [0u8; 4];
        arr.copy_from_slice(b);
        Ok(u32::from_be_bytes(arr))
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], TransportError> {
        let b = self.take(N)?;
        let mut arr = [0u8; N];
        arr.copy_from_slice(b);
        Ok(arr)
    }

    /// A u16-length-prefixed byte string.
    fn blob(&mut self) -> Result<Vec<u8>, TransportError> {
        let len = self.u16()? as usize;
        Ok(self.take(len)?.to_vec())
    }

    fn finish(&self) -> Result<(), TransportError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(TransportError::Malformed)
        }
    }
}

fn push_blob(out: &mut Vec<u8>, bytes: &[u8]) -> Result<(), TransportError> {
    let len = u16::try_from(bytes.len()).map_err(|_| TransportError::Malformed)?;
    out.extend_from_slice(&len.to_be_bytes());
    out.extend_from_slice(bytes);
    Ok(())
}

/// Encodes a handshake [`Message`] as a frame payload: step code, field
/// count, then `kind ‖ u16 length ‖ bytes` per field (signatures and
/// every other field are length-prefixed uniformly).
///
/// # Errors
///
/// [`TransportError::Malformed`] when the step label is outside the
/// two-party handshake vocabulary.
pub fn encode_message(message: &Message) -> Result<Vec<u8>, TransportError> {
    let mut out = Vec::with_capacity(2 + message.wire_len() + 3 * message.fields.len());
    out.push(step_code(message.step)?);
    let count = u8::try_from(message.fields.len()).map_err(|_| TransportError::Malformed)?;
    out.push(count);
    for field in &message.fields {
        out.push(field_code(field.kind));
        push_blob(&mut out, &field.bytes)?;
    }
    Ok(out)
}

/// Decodes a handshake [`Message`] from a frame payload. Total: every
/// structural defect is a typed error, and field lengths are validated
/// against [`FieldKind::wire_len`] before a [`WireField`] is built (so
/// the constructor's length assertion can never fire on wire input).
///
/// # Errors
///
/// [`TransportError::Truncated`] or [`TransportError::Malformed`].
pub fn decode_message(payload: &[u8]) -> Result<Message, TransportError> {
    let mut r = Reader::new(payload);
    let step = step_label(r.u8()?)?;
    let count = r.u8()? as usize;
    let mut fields = Vec::with_capacity(count.min(16));
    for _ in 0..count {
        let kind = field_kind(r.u8()?)?;
        let bytes = r.blob()?;
        if bytes.len() != kind.wire_len() {
            return Err(TransportError::Malformed);
        }
        fields.push(WireField::new(kind, bytes));
    }
    r.finish()?;
    Ok(Message::new(step, fields))
}

impl Frame {
    /// The kind tag of this frame.
    pub fn kind(&self) -> FrameKind {
        match self {
            Frame::Hello { .. } => FrameKind::Hello,
            Frame::HelloAck { .. } => FrameKind::HelloAck,
            Frame::EnrollRequest { .. } => FrameKind::EnrollRequest,
            Frame::EnrollIssued { .. } => FrameKind::EnrollIssued,
            Frame::HsOpen { .. } => FrameKind::HsOpen,
            Frame::HsMessage(_) => FrameKind::HsMessage,
            Frame::CrlRequest => FrameKind::CrlRequest,
            Frame::CrlResponse { .. } => FrameKind::CrlResponse,
            Frame::ErrorClose { .. } => FrameKind::ErrorClose,
        }
    }

    fn payload(&self) -> Result<Vec<u8>, TransportError> {
        match self {
            Frame::Hello { nonce } => Ok(nonce.to_vec()),
            Frame::HelloAck { ca_public } => Ok(ca_public.to_vec()),
            Frame::EnrollRequest { subject, point } => {
                let mut out = Vec::with_capacity(49);
                out.extend_from_slice(subject);
                out.extend_from_slice(point);
                Ok(out)
            }
            Frame::EnrollIssued {
                cert,
                recon_private,
            } => {
                let mut out = Vec::with_capacity(133);
                out.extend_from_slice(cert);
                out.extend_from_slice(recon_private);
                Ok(out)
            }
            Frame::HsOpen { seed, variant, now } => {
                let mut out = Vec::with_capacity(37);
                out.extend_from_slice(seed);
                out.push(*variant);
                out.extend_from_slice(&now.to_be_bytes());
                Ok(out)
            }
            Frame::HsMessage(message) => encode_message(message),
            Frame::CrlRequest => Ok(Vec::new()),
            Frame::CrlResponse { crl, signature } => {
                let mut out = Vec::with_capacity(4 + crl.len() + signature.len());
                push_blob(&mut out, crl)?;
                push_blob(&mut out, signature)?;
                Ok(out)
            }
            Frame::ErrorClose { code } => Ok(vec![*code]),
        }
    }

    /// Encodes the frame: 12-byte header plus payload.
    ///
    /// # Errors
    ///
    /// [`TransportError::Malformed`] when the payload cannot be encoded
    /// (unknown step label, oversized blob), and
    /// [`TransportError::FrameTooLarge`] when the payload exceeds
    /// [`MAX_PAYLOAD`].
    pub fn encode(&self) -> Result<Vec<u8>, TransportError> {
        let payload = self.payload()?;
        let len = u32::try_from(payload.len()).map_err(|_| TransportError::FrameTooLarge {
            len: u32::MAX,
            max: MAX_PAYLOAD,
        })?;
        if len > MAX_PAYLOAD {
            return Err(TransportError::FrameTooLarge {
                len,
                max: MAX_PAYLOAD,
            });
        }
        let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(CRYPTO_P256_SHA256);
        out.push(self.kind().code());
        out.push(0); // flags, reserved in version 1
        out.extend_from_slice(&len.to_be_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }

    /// Decodes one frame from the front of `bytes`; returns the frame
    /// and the number of bytes consumed. Total and fail-closed: any
    /// byte soup yields a typed error, never a panic.
    ///
    /// # Errors
    ///
    /// Every [`TransportError`] decode variant: `Truncated` when the
    /// header or declared payload is incomplete, `BadMagic` /
    /// `BadVersion` / `BadCrypto` on header mismatches,
    /// `FrameTooLarge` on an oversized declared length, `Malformed` on
    /// structurally invalid payloads.
    pub fn decode(bytes: &[u8]) -> Result<(Frame, usize), TransportError> {
        let mut r = Reader::new(bytes);
        let magic: [u8; 4] = r.array()?;
        if magic != MAGIC {
            return Err(TransportError::BadMagic);
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(TransportError::BadVersion { got: version });
        }
        let crypto = r.u8()?;
        if crypto != CRYPTO_P256_SHA256 {
            return Err(TransportError::BadCrypto { got: crypto });
        }
        let kind = FrameKind::from_code(r.u8()?)?;
        let flags = r.u8()?;
        if flags != 0 {
            return Err(TransportError::Malformed);
        }
        let len = r.u32()?;
        if len > MAX_PAYLOAD {
            return Err(TransportError::FrameTooLarge {
                len,
                max: MAX_PAYLOAD,
            });
        }
        let payload = r.take(len as usize)?;
        let frame = Frame::decode_payload(kind, payload)?;
        Ok((frame, HEADER_LEN + len as usize))
    }

    /// Decodes a frame payload whose header was already validated.
    /// Exposed so stream transports can read the header and payload in
    /// two exact reads without re-buffering.
    ///
    /// # Errors
    ///
    /// [`TransportError::Truncated`] / [`TransportError::Malformed`] on
    /// structurally invalid payloads.
    pub fn decode_payload(kind: FrameKind, payload: &[u8]) -> Result<Frame, TransportError> {
        let mut r = Reader::new(payload);
        let frame = match kind {
            FrameKind::Hello => Frame::Hello { nonce: r.array()? },
            FrameKind::HelloAck => Frame::HelloAck {
                ca_public: r.array()?,
            },
            FrameKind::EnrollRequest => Frame::EnrollRequest {
                subject: r.array()?,
                point: r.array()?,
            },
            FrameKind::EnrollIssued => Frame::EnrollIssued {
                cert: r.array()?,
                recon_private: r.array()?,
            },
            FrameKind::HsOpen => Frame::HsOpen {
                seed: r.array()?,
                variant: r.u8()?,
                now: r.u32()?,
            },
            FrameKind::HsMessage => return decode_message(payload).map(Frame::HsMessage),
            FrameKind::CrlRequest => Frame::CrlRequest,
            FrameKind::CrlResponse => Frame::CrlResponse {
                crl: r.blob()?,
                signature: r.blob()?,
            },
            FrameKind::ErrorClose => Frame::ErrorClose { code: r.u8()? },
        };
        r.finish()?;
        Ok(frame)
    }

    /// Parses the already-validated fixed header of a frame, returning
    /// `(kind, payload length)`. Rejects bad magic/version/crypto/flags
    /// and oversized declared lengths — the first line of defense for a
    /// streaming reader, before any payload byte is read.
    ///
    /// # Errors
    ///
    /// The same header errors as [`Frame::decode`].
    pub fn parse_header(header: &[u8; HEADER_LEN]) -> Result<(FrameKind, u32), TransportError> {
        let mut r = Reader::new(header);
        let magic: [u8; 4] = r.array()?;
        if magic != MAGIC {
            return Err(TransportError::BadMagic);
        }
        let version = r.u8()?;
        if version != VERSION {
            return Err(TransportError::BadVersion { got: version });
        }
        let crypto = r.u8()?;
        if crypto != CRYPTO_P256_SHA256 {
            return Err(TransportError::BadCrypto { got: crypto });
        }
        let kind = FrameKind::from_code(r.u8()?)?;
        let flags = r.u8()?;
        if flags != 0 {
            return Err(TransportError::Malformed);
        }
        let len = r.u32()?;
        if len > MAX_PAYLOAD {
            return Err(TransportError::FrameTooLarge {
                len,
                max: MAX_PAYLOAD,
            });
        }
        Ok((kind, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_message() -> Message {
        Message::new(
            "B1",
            vec![
                WireField::new(FieldKind::Id, vec![7; 16]),
                WireField::new(FieldKind::Cert, vec![8; 101]),
                WireField::new(FieldKind::EphemeralPoint, vec![9; 64]),
                WireField::new(FieldKind::Response, vec![10; 64]),
            ],
        )
    }

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello { nonce: [1; 32] },
            Frame::HelloAck { ca_public: [2; 33] },
            Frame::EnrollRequest {
                subject: [3; 16],
                point: [4; 33],
            },
            Frame::EnrollIssued {
                cert: [5; 101],
                recon_private: [6; 32],
            },
            Frame::HsOpen {
                seed: [7; 32],
                variant: 2,
                now: 0x0102_0304,
            },
            Frame::HsMessage(sample_message()),
            Frame::CrlRequest,
            Frame::CrlResponse {
                crl: vec![9; 40],
                signature: vec![10; 64],
            },
            Frame::ErrorClose {
                code: ErrorCode::Deadline.code(),
            },
        ]
    }

    #[test]
    fn every_frame_roundtrips() {
        for frame in all_frames() {
            let bytes = frame.encode().unwrap();
            let (decoded, used) = Frame::decode(&bytes).unwrap();
            assert_eq!(used, bytes.len(), "{:?}", frame.kind());
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn header_parses_standalone() {
        let bytes = Frame::CrlRequest.encode().unwrap();
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&bytes[..HEADER_LEN]);
        let (kind, len) = Frame::parse_header(&header).unwrap();
        assert_eq!(kind, FrameKind::CrlRequest);
        assert_eq!(len, 0);
    }

    #[test]
    fn version_skew_is_rejected() {
        let mut bytes = Frame::Hello { nonce: [0; 32] }.encode().unwrap();
        bytes[4] = 2;
        assert_eq!(
            Frame::decode(&bytes),
            Err(TransportError::BadVersion { got: 2 })
        );
    }

    #[test]
    fn bad_magic_and_crypto_are_rejected() {
        let mut bytes = Frame::Hello { nonce: [0; 32] }.encode().unwrap();
        bytes[0] = b'X';
        assert_eq!(Frame::decode(&bytes), Err(TransportError::BadMagic));
        let mut bytes = Frame::Hello { nonce: [0; 32] }.encode().unwrap();
        bytes[5] = 0x18;
        assert_eq!(
            Frame::decode(&bytes),
            Err(TransportError::BadCrypto { got: 0x18 })
        );
    }

    #[test]
    fn nonzero_flags_are_rejected() {
        let mut bytes = Frame::CrlRequest.encode().unwrap();
        bytes[7] = 0x80;
        assert_eq!(Frame::decode(&bytes), Err(TransportError::Malformed));
    }

    #[test]
    fn oversized_length_is_rejected_before_payload() {
        let mut bytes = Frame::CrlRequest.encode().unwrap();
        bytes[8..12].copy_from_slice(&(MAX_PAYLOAD + 1).to_be_bytes());
        assert_eq!(
            Frame::decode(&bytes),
            Err(TransportError::FrameTooLarge {
                len: MAX_PAYLOAD + 1,
                max: MAX_PAYLOAD,
            })
        );
    }

    #[test]
    fn truncation_is_typed() {
        let bytes = Frame::Hello { nonce: [0; 32] }.encode().unwrap();
        for cut in 0..bytes.len() {
            assert_eq!(
                Frame::decode(&bytes[..cut]),
                Err(TransportError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_bytes_in_payload_are_rejected() {
        // Declare one extra payload byte on a Hello — structurally
        // complete frame, semantically overlong payload.
        let mut bytes = Frame::Hello { nonce: [0; 32] }.encode().unwrap();
        bytes[8..12].copy_from_slice(&33u32.to_be_bytes());
        bytes.push(0xEE);
        assert_eq!(Frame::decode(&bytes), Err(TransportError::Malformed));
    }

    #[test]
    fn message_roundtrip_and_rejections() {
        let msg = sample_message();
        let payload = encode_message(&msg).unwrap();
        assert_eq!(decode_message(&payload).unwrap(), msg);

        // Unknown step label refuses to encode.
        let odd = Message::new("T9", vec![]);
        assert_eq!(encode_message(&odd), Err(TransportError::Malformed));

        // A field length that disagrees with its kind is refused
        // before WireField's constructor could assert.
        let mut bad = encode_message(&Message::new(
            "A1",
            vec![WireField::new(FieldKind::Ack, vec![1])],
        ))
        .unwrap();
        let last = bad.len() - 1;
        bad[last - 2] = 0; // length 0 for a 1-byte Ack…
        bad.truncate(last); // …and drop the byte itself
        assert!(decode_message(&bad).is_err());

        // Unknown field code.
        let bad = vec![0x01, 1, 0xEE, 0, 1, 0];
        assert_eq!(decode_message(&bad), Err(TransportError::Malformed));
    }

    #[test]
    fn error_codes_are_distinct() {
        let codes = [
            ErrorCode::BadFrame,
            ErrorCode::EnrollRefused,
            ErrorCode::HandshakeFailed,
            ErrorCode::Deadline,
            ErrorCode::ShuttingDown,
        ];
        let mut raw: Vec<u8> = codes.iter().map(|c| c.code()).collect();
        raw.sort_unstable();
        raw.dedup();
        assert_eq!(raw.len(), codes.len());
    }
}
