//! The two-party endpoint abstraction and handshake driver.

use crate::error::ProtocolError;
use crate::session::SessionKey;
use crate::trace::OpTrace;
use crate::transcript::{LoggedMessage, Transcript};
use crate::wire::Message;
use ecq_cert::DeviceId;

/// The two handshake roles — the paper's ALICE (initiator) and BOB
/// (responder) of Fig. 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Role {
    /// The party that opens the session (ALICE / device A).
    Initiator,
    /// The party that answers (BOB / device B).
    Responder,
}

impl Role {
    /// The opposite role.
    pub fn peer(&self) -> Role {
        match self {
            Role::Initiator => Role::Responder,
            Role::Responder => Role::Initiator,
        }
    }

    /// The paper's step-label prefix for this role ("A" or "B").
    pub fn prefix(&self) -> &'static str {
        match self {
            Role::Initiator => "A",
            Role::Responder => "B",
        }
    }
}

/// What a poll-style endpoint asks of its driver after one step.
///
/// [`Endpoint::step`] turns the message-callback interface into an
/// explicit state machine a scheduler can advance one wire message at a
/// time: feed an incoming message (or `None` to kick off an initiator),
/// get back the transport action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepOutput {
    /// Hand this message to the transport for delivery to the peer.
    Send(Message),
    /// Nothing to send; the endpoint waits for the next incoming
    /// message.
    Wait,
    /// The handshake completed on this side and no further message is
    /// owed. (A side that completes *while* sending its last message
    /// reports `Send` first; the completion is visible through
    /// [`Endpoint::is_established`].)
    Established,
}

/// A protocol endpoint: one side of a two-party key-derivation
/// handshake, advanced by feeding it messages.
pub trait Endpoint {
    /// This endpoint's identity.
    fn id(&self) -> DeviceId;

    /// This endpoint's role.
    fn role(&self) -> Role;

    /// Called once on the initiator to produce the opening message.
    /// Responders return `Ok(None)`.
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`] aborting the handshake.
    fn start(&mut self) -> Result<Option<Message>, ProtocolError>;

    /// Feeds an incoming message; returns the reply, if any.
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`] aborting the handshake (authentication
    /// failure, decode error, unexpected state).
    fn on_message(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError>;

    /// Whether the handshake has completed on this side.
    fn is_established(&self) -> bool;

    /// The derived session key.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::NotEstablished`] before completion.
    fn session_key(&self) -> Result<SessionKey, ProtocolError>;

    /// The primitive-operation trace accumulated so far.
    fn trace(&self) -> &OpTrace;

    /// Advances the state machine by one message: `None` kicks off an
    /// initiator (a responder answers [`StepOutput::Wait`]), `Some`
    /// feeds an incoming wire message. This is the poll-style interface
    /// message-granularity schedulers drive; [`run_handshake`] is a
    /// run-to-completion loop over exactly this method.
    ///
    /// # Errors
    ///
    /// Any [`ProtocolError`] aborting the handshake.
    fn step(&mut self, incoming: Option<&Message>) -> Result<StepOutput, ProtocolError> {
        let outgoing = match incoming {
            Some(msg) => self.on_message(msg)?,
            None => self.start()?,
        };
        Ok(match outgoing {
            Some(msg) => StepOutput::Send(msg),
            None if self.is_established() => StepOutput::Established,
            None => StepOutput::Wait,
        })
    }
}

/// Maximum message exchanges before the driver declares a stall.
const MAX_ROUNDS: usize = 16;

/// Drives a full handshake between two endpoints, alternating messages
/// until both report establishment, and returns the complete
/// [`Transcript`] (messages with byte accounting + both op traces).
///
/// This is the run-to-completion convenience driver: it is a plain loop
/// over [`Endpoint::step`], so its transcripts are byte-identical to
/// what a message-granularity scheduler produces when it delivers the
/// same messages one event at a time.
///
/// # Errors
///
/// Propagates endpoint errors; [`ProtocolError::Stalled`] if the
/// exchange exceeds an internal round budget without completing.
pub fn run_handshake(
    initiator: &mut dyn Endpoint,
    responder: &mut dyn Endpoint,
) -> Result<Transcript, ProtocolError> {
    debug_assert_eq!(initiator.role(), Role::Initiator);
    debug_assert_eq!(responder.role(), Role::Responder);

    let mut messages = Vec::new();
    let mut pending = match initiator.step(None)? {
        StepOutput::Send(msg) => Some(msg),
        StepOutput::Wait | StepOutput::Established => None,
    };
    let mut sender = Role::Initiator;

    let mut rounds = 0;
    while let Some(msg) = pending {
        rounds += 1;
        if rounds > MAX_ROUNDS {
            return Err(ProtocolError::Stalled);
        }
        messages.push(LoggedMessage::from_message(sender, &msg));
        let receiver: &mut dyn Endpoint = match sender {
            Role::Initiator => responder,
            Role::Responder => initiator,
        };
        pending = match receiver.step(Some(&msg))? {
            StepOutput::Send(reply) => Some(reply),
            StepOutput::Wait | StepOutput::Established => None,
        };
        sender = sender.peer();
    }

    if !initiator.is_established() || !responder.is_established() {
        return Err(ProtocolError::Stalled);
    }

    Ok(Transcript::new(
        messages,
        initiator.trace().clone(),
        responder.trace().clone(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{PrimitiveOp, StsPhase};
    use crate::wire::{FieldKind, WireField};

    /// A minimal ping/pong endpoint pair for driver tests.
    struct PingPong {
        role: Role,
        established: bool,
        trace: OpTrace,
        hang: bool,
    }

    impl PingPong {
        fn new(role: Role, hang: bool) -> Self {
            PingPong {
                role,
                established: false,
                trace: OpTrace::new(),
                hang,
            }
        }
    }

    impl Endpoint for PingPong {
        fn id(&self) -> DeviceId {
            DeviceId::from_label(self.role.prefix())
        }
        fn role(&self) -> Role {
            self.role
        }
        fn start(&mut self) -> Result<Option<Message>, ProtocolError> {
            self.trace
                .record(StsPhase::Other, PrimitiveOp::RandomBytes { bytes: 1 });
            Ok(Some(Message::new(
                "A1",
                vec![WireField::new(FieldKind::Ack, vec![1])],
            )))
        }
        fn on_message(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
            if self.hang {
                // Echo forever: never establishes.
                return Ok(Some(msg.clone()));
            }
            match self.role {
                Role::Responder => {
                    self.established = true;
                    Ok(Some(Message::new(
                        "B1",
                        vec![WireField::new(FieldKind::Ack, vec![2])],
                    )))
                }
                Role::Initiator => {
                    self.established = true;
                    Ok(None)
                }
            }
        }
        fn is_established(&self) -> bool {
            self.established
        }
        fn session_key(&self) -> Result<SessionKey, ProtocolError> {
            if self.established {
                Ok(SessionKey::from_bytes([0u8; 32]))
            } else {
                Err(ProtocolError::NotEstablished)
            }
        }
        fn trace(&self) -> &OpTrace {
            &self.trace
        }
    }

    #[test]
    fn driver_completes_pingpong() {
        let mut a = PingPong::new(Role::Initiator, false);
        let mut b = PingPong::new(Role::Responder, false);
        let transcript = run_handshake(&mut a, &mut b).unwrap();
        assert_eq!(transcript.messages().len(), 2);
        assert_eq!(transcript.total_bytes(), 2);
        assert_eq!(transcript.trace(Role::Initiator).len(), 1);
    }

    #[test]
    fn driver_detects_stall() {
        let mut a = PingPong::new(Role::Initiator, true);
        let mut b = PingPong::new(Role::Responder, true);
        assert_eq!(
            run_handshake(&mut a, &mut b).unwrap_err(),
            ProtocolError::Stalled
        );
    }

    #[test]
    fn step_machine_mirrors_callback_interface() {
        let mut a = PingPong::new(Role::Initiator, false);
        let mut b = PingPong::new(Role::Responder, false);
        // Kickoff: the initiator's first step takes no message.
        let StepOutput::Send(a1) = a.step(None).unwrap() else {
            panic!("initiator must open with a message");
        };
        // The responder replies and completes in the same step: Send
        // wins, completion shows through is_established().
        let StepOutput::Send(b1) = b.step(Some(&a1)).unwrap() else {
            panic!("responder must reply to A1");
        };
        assert!(b.is_established());
        assert_eq!(a.step(Some(&b1)).unwrap(), StepOutput::Established);
        assert!(a.is_established());
    }

    #[test]
    fn role_helpers() {
        assert_eq!(Role::Initiator.peer(), Role::Responder);
        assert_eq!(Role::Responder.peer(), Role::Initiator);
        assert_eq!(Role::Initiator.prefix(), "A");
        assert_eq!(Role::Responder.prefix(), "B");
    }
}
