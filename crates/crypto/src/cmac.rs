//! NIST SP 800-38B AES-CMAC (128-bit).
//!
//! The paper's evaluation setup uses 128-bit CMAC alongside AES-128;
//! baseline protocols may authenticate with CMAC instead of HMAC where
//! the referenced designs do so.

use crate::aes::{Aes128, BLOCK_LEN, KEY_LEN};
use crate::ct;

/// Size of a full AES-CMAC tag in bytes.
pub const TAG_LEN: usize = BLOCK_LEN;

fn dbl(block: &[u8; BLOCK_LEN]) -> [u8; BLOCK_LEN] {
    let mut out = [0u8; BLOCK_LEN];
    let mut carry = 0u8;
    for i in (0..BLOCK_LEN).rev() {
        out[i] = (block[i] << 1) | carry;
        carry = block[i] >> 7;
    }
    if carry != 0 {
        out[BLOCK_LEN - 1] ^= 0x87; // the GF(2^128) reduction constant
    }
    out
}

/// Computes the AES-CMAC tag of `msg` under `key`.
///
/// ```
/// let tag = ecq_crypto::cmac::aes128_cmac(&[0u8; 16], b"hello");
/// assert_eq!(tag.len(), 16);
/// ```
pub fn aes128_cmac(key: &[u8; KEY_LEN], msg: &[u8]) -> [u8; TAG_LEN] {
    let aes = Aes128::new(key);
    let mut l = [0u8; BLOCK_LEN];
    aes.encrypt_block(&mut l);
    let k1 = dbl(&l);
    let k2 = dbl(&k1);

    let n_blocks = msg.len().div_ceil(BLOCK_LEN).max(1);
    let complete = !msg.is_empty() && msg.len().is_multiple_of(BLOCK_LEN);

    let mut x = [0u8; BLOCK_LEN];
    for i in 0..n_blocks - 1 {
        for j in 0..BLOCK_LEN {
            x[j] ^= msg[i * BLOCK_LEN + j];
        }
        aes.encrypt_block(&mut x);
    }

    let mut last = [0u8; BLOCK_LEN];
    let tail = &msg[(n_blocks - 1) * BLOCK_LEN..];
    if complete {
        last.copy_from_slice(tail);
        for j in 0..BLOCK_LEN {
            last[j] ^= k1[j];
        }
    } else {
        last[..tail.len()].copy_from_slice(tail);
        last[tail.len()] = 0x80;
        for j in 0..BLOCK_LEN {
            last[j] ^= k2[j];
        }
    }
    for j in 0..BLOCK_LEN {
        x[j] ^= last[j];
    }
    aes.encrypt_block(&mut x);
    x
}

/// Verifies an AES-CMAC tag in constant time.
pub fn verify_aes128_cmac(key: &[u8; KEY_LEN], msg: &[u8], tag: &[u8]) -> bool {
    let expect = aes128_cmac(key, msg);
    tag.len() == TAG_LEN && ct::eq(&expect, tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex_to_bytes(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    const KEY: &str = "2b7e151628aed2a6abf7158809cf4f3c";

    // RFC 4493 test vectors.
    #[test]
    fn rfc4493_empty() {
        let key: [u8; 16] = hex_to_bytes(KEY).try_into().unwrap();
        assert_eq!(
            aes128_cmac(&key, b"").to_vec(),
            hex_to_bytes("bb1d6929e95937287fa37d129b756746")
        );
    }

    #[test]
    fn rfc4493_16_bytes() {
        let key: [u8; 16] = hex_to_bytes(KEY).try_into().unwrap();
        let msg = hex_to_bytes("6bc1bee22e409f96e93d7e117393172a");
        assert_eq!(
            aes128_cmac(&key, &msg).to_vec(),
            hex_to_bytes("070a16b46b4d4144f79bdd9dd04a287c")
        );
    }

    #[test]
    fn rfc4493_40_bytes() {
        let key: [u8; 16] = hex_to_bytes(KEY).try_into().unwrap();
        let msg = hex_to_bytes(
            "6bc1bee22e409f96e93d7e117393172aae2d8a571e03ac9c9eb76fac45af8e5130c81c46a35ce411",
        );
        assert_eq!(
            aes128_cmac(&key, &msg).to_vec(),
            hex_to_bytes("dfa66747de9ae63030ca32611497c827")
        );
    }

    #[test]
    fn rfc4493_64_bytes() {
        let key: [u8; 16] = hex_to_bytes(KEY).try_into().unwrap();
        let msg = hex_to_bytes(concat!(
            "6bc1bee22e409f96e93d7e117393172a",
            "ae2d8a571e03ac9c9eb76fac45af8e51",
            "30c81c46a35ce411e5fbc1191a0a52ef",
            "f69f2445df4f9b17ad2b417be66c3710"
        ));
        assert_eq!(
            aes128_cmac(&key, &msg).to_vec(),
            hex_to_bytes("51f0bebf7e3b9d92fc49741779363cfe")
        );
    }

    #[test]
    fn verify_rejects_tampering() {
        let key = [1u8; 16];
        let tag = aes128_cmac(&key, b"data");
        assert!(verify_aes128_cmac(&key, b"data", &tag));
        assert!(!verify_aes128_cmac(&key, b"Data", &tag));
        let mut bad = tag;
        bad[15] ^= 0x80;
        assert!(!verify_aes128_cmac(&key, b"data", &bad));
        assert!(!verify_aes128_cmac(&key, b"data", &tag[..8]));
    }
}
