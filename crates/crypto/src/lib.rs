//! Symmetric cryptographic primitives for the ECQV/STS reproduction.
//!
//! The paper's C implementation builds on *tiny-AES*, *bear-ssl* and
//! *micro-ecc*. This crate is the Rust equivalent of the first two: a
//! self-contained, dependency-free implementation of every symmetric
//! primitive the key-derivation protocols need:
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (one-shot and incremental),
//! * [`hmac`] — RFC 2104 HMAC-SHA256,
//! * [`hkdf`] — RFC 5869 HKDF-SHA256 (the paper's `KDF(KPM, salt)`),
//! * [`aes`] — FIPS 197 AES-128 block cipher,
//! * [`ctr`] — AES-128-CTR stream encryption (used for the encrypted STS
//!   signature response, Algorithm 1 of the paper),
//! * [`cmac`] — NIST SP 800-38B AES-CMAC (128-bit, as in the paper's
//!   evaluation setup),
//! * [`drbg`] — NIST SP 800-90A HMAC-DRBG, the deterministic randomness
//!   source used for reproducible protocol simulation,
//! * [`ct`] — constant-time comparison helpers,
//! * [`zeroize`] — best-effort wiping of secret material (volatile
//!   stores + compiler fence; no dependencies).
//!
//! # Example
//!
//! ```
//! use ecq_crypto::{hkdf::hkdf_sha256, sha256::sha256};
//!
//! let premaster = sha256(b"shared secret material");
//! let mut session_key = [0u8; 16];
//! hkdf_sha256(b"salt", &premaster, b"ecqv-sts session", &mut session_key);
//! assert_ne!(session_key, [0u8; 16]);
//! ```

#![warn(missing_docs)]

pub mod aes;
pub mod cmac;
pub mod ct;
pub mod ctr;
pub mod drbg;
pub mod hkdf;
pub mod hmac;
pub mod sha256;
pub mod zeroize;

pub use drbg::HmacDrbg;
pub use sha256::Sha256;
