//! RFC 2104 HMAC with SHA-256.
//!
//! Used by the baseline protocols (SCIANC, PORAMB) for message
//! authentication codes, by [`crate::hkdf`] for key derivation, and by
//! [`crate::drbg`] for deterministic random bit generation.

use crate::ct;
use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Size of an HMAC-SHA256 tag in bytes.
pub const TAG_LEN: usize = DIGEST_LEN;

/// Incremental HMAC-SHA256 computation.
///
/// ```
/// use ecq_crypto::hmac::{hmac_sha256, HmacSha256};
///
/// let mut m = HmacSha256::new(b"key");
/// m.update(b"msg");
/// assert_eq!(m.finalize(), hmac_sha256(b"key", b"msg"));
/// ```
#[derive(Clone, Debug)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Starts an HMAC computation with the given key (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = {
                let mut h = Sha256::new();
                h.update(key);
                h.finalize()
            };
            block_key[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }

        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = block_key[i] ^ 0x36;
            opad[i] = block_key[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; TAG_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA256.
pub fn hmac_sha256(key: &[u8], msg: &[u8]) -> [u8; TAG_LEN] {
    let mut m = HmacSha256::new(key);
    m.update(msg);
    m.finalize()
}

/// One-shot HMAC-SHA256 over the concatenation of several slices.
pub fn hmac_sha256_concat(key: &[u8], parts: &[&[u8]]) -> [u8; TAG_LEN] {
    let mut m = HmacSha256::new(key);
    for p in parts {
        m.update(p);
    }
    m.finalize()
}

/// Verifies an HMAC-SHA256 tag in constant time.
///
/// Returns `true` when `tag` equals the MAC of `msg` under `key`. The
/// comparison does not short-circuit, so timing does not reveal the
/// position of the first mismatching byte.
pub fn verify_hmac_sha256(key: &[u8], msg: &[u8], tag: &[u8]) -> bool {
    let expect = hmac_sha256(key, msg);
    tag.len() == TAG_LEN && ct::eq(&expect, tag)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test case 1.
    #[test]
    fn rfc4231_case1() {
        let key = [0x0bu8; 20];
        let tag = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    // RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_case2() {
        let tag = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    // RFC 4231 test case 3: 0xaa*20 key, 0xdd*50 data.
    #[test]
    fn rfc4231_case3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    // RFC 4231 test case 6: key longer than the block size.
    #[test]
    fn rfc4231_case6_long_key() {
        let key = [0xaau8; 131];
        let tag = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac_sha256(b"k", b"m");
        assert!(verify_hmac_sha256(b"k", b"m", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!verify_hmac_sha256(b"k", b"m", &bad));
        assert!(!verify_hmac_sha256(b"k", b"m", &tag[..31]));
        assert!(!verify_hmac_sha256(b"k2", b"m", &tag));
    }

    #[test]
    fn concat_matches_contiguous() {
        assert_eq!(
            hmac_sha256_concat(b"k", &[b"a", b"bc"]),
            hmac_sha256(b"k", b"abc")
        );
    }
}
