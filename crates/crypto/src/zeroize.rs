//! Best-effort wiping of secret material.
//!
//! The workspace is dependency-free, so this is a minimal stand-in for
//! the `zeroize` crate: secrets are overwritten through
//! `ptr::write_volatile` — which the optimizer must not elide as a dead
//! store — followed by a compiler fence so the stores are not reordered
//! past the end of the value's lifetime. The caveats are the same as
//! for any language-level wiping: copies the program made earlier
//! (moves of `Copy` types, register spills) are out of reach; the goal
//! is that the *canonical* resting place of a secret does not outlive
//! its use.
//!
//! The [`Zeroizing`] wrapper ties wiping to `Drop` for secrets that
//! travel through return values (e.g. the ECDH premaster in
//! `ecq_p256::ecdh::shared_secret`).

// The workspace denies `unsafe_code`; this module is the one sanctioned
// carve-out, for the two volatile-store wipe helpers below. Every
// unsafe block carries a SAFETY comment.
#![allow(unsafe_code)]

use core::sync::atomic::{compiler_fence, Ordering};

/// Types whose in-memory representation can be overwritten with zeros.
///
/// Implementations must use [`wipe_bytes`] / [`wipe_u64s`] (or another
/// volatile path) so the overwrite survives optimization.
pub trait Zeroize {
    /// Overwrites the value with zeros, non-elidably.
    fn zeroize(&mut self);
}

/// Overwrites a byte buffer with zeros through volatile stores, then
/// fences so the stores are not sunk past the caller's drop point.
pub fn wipe_bytes(buf: &mut [u8]) {
    for b in buf.iter_mut() {
        // SAFETY: `b` is a valid, aligned, exclusive reference.
        unsafe { core::ptr::write_volatile(b, 0) };
    }
    compiler_fence(Ordering::SeqCst);
}

/// Overwrites a `u64` buffer with zeros through volatile stores, then
/// fences (limb-granular variant for the curve layers).
pub fn wipe_u64s(buf: &mut [u64]) {
    for w in buf.iter_mut() {
        // SAFETY: `w` is a valid, aligned, exclusive reference.
        unsafe { core::ptr::write_volatile(w, 0) };
    }
    compiler_fence(Ordering::SeqCst);
}

impl<const N: usize> Zeroize for [u8; N] {
    fn zeroize(&mut self) {
        wipe_bytes(self);
    }
}

impl<const N: usize> Zeroize for [u64; N] {
    fn zeroize(&mut self) {
        wipe_u64s(self);
    }
}

/// A wrapper that wipes its contents when dropped.
///
/// Dereferences to the inner value for use; equality compares the
/// inner values; `Debug` never prints them.
pub struct Zeroizing<T: Zeroize>(T);

impl<T: Zeroize> Zeroizing<T> {
    /// Wraps a secret so it is wiped on drop.
    pub fn new(value: T) -> Self {
        Zeroizing(value)
    }
}

impl<T: Zeroize> core::ops::Deref for Zeroizing<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: Zeroize> core::ops::DerefMut for Zeroizing<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

impl<T: Zeroize> Drop for Zeroizing<T> {
    fn drop(&mut self) {
        self.0.zeroize();
    }
}

impl<T: Zeroize + Clone> Clone for Zeroizing<T> {
    fn clone(&self) -> Self {
        Zeroizing(self.0.clone())
    }
}

// Equality is only offered for byte arrays, where it can route through
// the constant-time comparison: the contents are secret, and ordinary
// slice equality would leak the position of the first differing byte.
impl<const N: usize> PartialEq for Zeroizing<[u8; N]> {
    fn eq(&self, other: &Self) -> bool {
        crate::ct::eq(&self.0, &other.0)
    }
}

impl<const N: usize> Eq for Zeroizing<[u8; N]> {}

impl<T: Zeroize> core::fmt::Debug for Zeroizing<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "Zeroizing(<secret>)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};

    #[test]
    fn wipe_clears_buffers() {
        let mut bytes = [0xAAu8; 37];
        wipe_bytes(&mut bytes);
        assert_eq!(bytes, [0u8; 37]);
        let mut words = [u64::MAX; 4];
        wipe_u64s(&mut words);
        assert_eq!(words, [0u64; 4]);
    }

    #[test]
    fn array_zeroize_impls() {
        let mut a = [0xFFu8; 32];
        a.zeroize();
        assert_eq!(a, [0u8; 32]);
        let mut b = [0x1234_5678_9abc_def0u64; 4];
        b.zeroize();
        assert_eq!(b, [0u64; 4]);
    }

    #[test]
    fn zeroizing_derefs_and_compares() {
        let z = Zeroizing::new([7u8; 32]);
        assert_eq!(z[0], 7);
        assert_eq!(z.as_slice().len(), 32);
        assert_eq!(z, Zeroizing::new([7u8; 32]));
        assert_ne!(z, Zeroizing::new([8u8; 32]));
        assert_eq!(format!("{z:?}"), "Zeroizing(<secret>)");
    }

    #[test]
    fn zeroizing_wipes_on_drop() {
        static WIPES: AtomicUsize = AtomicUsize::new(0);

        struct Probe([u8; 4]);
        impl Zeroize for Probe {
            fn zeroize(&mut self) {
                self.0.zeroize();
                WIPES.fetch_add(1, AtomicOrdering::SeqCst);
            }
        }

        let probe = Zeroizing::new(Probe([9; 4]));
        assert_eq!(WIPES.load(AtomicOrdering::SeqCst), 0);
        drop(probe);
        assert_eq!(WIPES.load(AtomicOrdering::SeqCst), 1);
    }
}
