//! NIST SP 800-90A HMAC-DRBG (SHA-256).
//!
//! The deterministic randomness source for the whole reproduction.
//! Every ephemeral key, nonce and CA blinding value in the simulated
//! protocols is drawn from an [`HmacDrbg`], which makes protocol runs
//! reproducible from a seed while still exercising the exact code paths
//! a hardware TRNG would feed on the paper's boards.

use crate::hmac::hmac_sha256_concat;

/// Deterministic random bit generator (HMAC-DRBG with SHA-256).
///
/// ```
/// use ecq_crypto::HmacDrbg;
///
/// let mut rng = HmacDrbg::new(b"seed material", b"personalization");
/// let mut a = [0u8; 32];
/// let mut b = [0u8; 32];
/// rng.fill_bytes(&mut a);
/// rng.fill_bytes(&mut b);
/// assert_ne!(a, b);
/// ```
#[derive(Clone)]
pub struct HmacDrbg {
    k: [u8; 32],
    v: [u8; 32],
    reseed_counter: u64,
}

impl core::fmt::Debug for HmacDrbg {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("HmacDrbg")
            .field("reseed_counter", &self.reseed_counter)
            .finish_non_exhaustive()
    }
}

impl HmacDrbg {
    /// Instantiates the DRBG from entropy input and a personalization
    /// string (either may be empty, but an all-empty instantiation is
    /// only suitable for tests).
    pub fn new(entropy: &[u8], personalization: &[u8]) -> Self {
        let mut drbg = HmacDrbg {
            k: [0u8; 32],
            v: [1u8; 32],
            reseed_counter: 1,
        };
        drbg.update(&[entropy, personalization]);
        drbg
    }

    /// Convenience constructor from a 64-bit seed, for simulations.
    pub fn from_seed(seed: u64) -> Self {
        Self::new(&seed.to_be_bytes(), b"ecq-sim")
    }

    /// Mixes additional input into the DRBG state (SP 800-90A reseed).
    pub fn reseed(&mut self, entropy: &[u8]) {
        self.update(&[entropy]);
        self.reseed_counter = 1;
    }

    fn update(&mut self, provided: &[&[u8]]) {
        let has_data = provided.iter().any(|p| !p.is_empty());
        let mut parts: Vec<&[u8]> = vec![&self.v, &[0x00]];
        parts.extend_from_slice(provided);
        self.k = hmac_sha256_concat(&self.k, &parts);
        self.v = hmac_sha256_concat(&self.k, &[&self.v]);
        if has_data {
            let mut parts: Vec<&[u8]> = vec![&self.v, &[0x01]];
            parts.extend_from_slice(provided);
            self.k = hmac_sha256_concat(&self.k, &parts);
            self.v = hmac_sha256_concat(&self.k, &[&self.v]);
        }
    }

    /// Fills `out` with pseudorandom bytes.
    pub fn fill_bytes(&mut self, out: &mut [u8]) {
        let mut written = 0;
        while written < out.len() {
            self.v = hmac_sha256_concat(&self.k, &[&self.v]);
            let take = (out.len() - written).min(32);
            out[written..written + take].copy_from_slice(&self.v[..take]);
            written += take;
        }
        self.update(&[]);
        self.reseed_counter += 1;
    }

    /// Returns `n` pseudorandom bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        self.fill_bytes(&mut out);
        out
    }

    /// Returns a pseudorandom 32-byte array (the common case for nonces
    /// and scalar candidates).
    pub fn bytes32(&mut self) -> [u8; 32] {
        let mut out = [0u8; 32];
        self.fill_bytes(&mut out);
        out
    }

    /// Returns a pseudorandom `u64` (for simulation jitter etc.).
    pub fn next_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.fill_bytes(&mut b);
        u64::from_be_bytes(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = HmacDrbg::from_seed(42);
        let mut b = HmacDrbg::from_seed(42);
        assert_eq!(a.bytes32(), b.bytes32());
        assert_eq!(a.bytes(100), b.bytes(100));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::from_seed(1);
        let mut b = HmacDrbg::from_seed(2);
        assert_ne!(a.bytes32(), b.bytes32());
    }

    #[test]
    fn personalization_matters() {
        let mut a = HmacDrbg::new(b"e", b"p1");
        let mut b = HmacDrbg::new(b"e", b"p2");
        assert_ne!(a.bytes32(), b.bytes32());
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::from_seed(7);
        let mut b = HmacDrbg::from_seed(7);
        b.reseed(b"fresh entropy");
        assert_ne!(a.bytes32(), b.bytes32());
    }

    #[test]
    fn successive_outputs_differ() {
        let mut rng = HmacDrbg::from_seed(3);
        let x = rng.bytes32();
        let y = rng.bytes32();
        assert_ne!(x, y);
    }

    #[test]
    fn long_output_no_repeating_blocks() {
        let mut rng = HmacDrbg::from_seed(9);
        let out = rng.bytes(96);
        assert_ne!(out[..32], out[32..64]);
        assert_ne!(out[32..64], out[64..96]);
    }

    #[test]
    fn debug_hides_state() {
        let rng = HmacDrbg::from_seed(1);
        let dbg = format!("{rng:?}");
        assert!(dbg.contains("reseed_counter"));
        assert!(!dbg.contains("k:"));
    }
}
