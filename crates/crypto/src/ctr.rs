//! AES-128-CTR stream encryption.
//!
//! The STS authentication response (Algorithm 1 of the paper) sends the
//! ECDSA signature *encrypted under the freshly derived session key*:
//! `Resp = encrypt(KS, dsign)`. CTR mode keeps the 64-byte signature at
//! exactly 64 bytes on the wire, matching the `Resp(64)` entry of the
//! paper's Table II.

use crate::aes::{Aes128, BLOCK_LEN, KEY_LEN};

/// Nonce length for the CTR construction (96-bit nonce + 32-bit counter).
pub const NONCE_LEN: usize = 12;

/// Applies the AES-128-CTR keystream to `data` in place.
///
/// Encryption and decryption are the same operation. The 16-byte counter
/// block is `nonce (12 bytes) || counter (4 bytes, big-endian)` starting
/// at zero.
///
/// ```
/// let key = [1u8; 16];
/// let nonce = [2u8; 12];
/// let mut data = *b"implicit certificates";
/// ecq_crypto::ctr::aes128_ctr_apply(&key, &nonce, &mut data);
/// assert_ne!(&data, b"implicit certificates");
/// ecq_crypto::ctr::aes128_ctr_apply(&key, &nonce, &mut data);
/// assert_eq!(&data, b"implicit certificates");
/// ```
pub fn aes128_ctr_apply(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    let aes = Aes128::new(key);
    let mut counter: u32 = 0;
    for chunk in data.chunks_mut(BLOCK_LEN) {
        let mut block = [0u8; BLOCK_LEN];
        block[..NONCE_LEN].copy_from_slice(nonce);
        block[NONCE_LEN..].copy_from_slice(&counter.to_be_bytes());
        aes.encrypt_block(&mut block);
        for (b, k) in chunk.iter_mut().zip(block.iter()) {
            *b ^= k;
        }
        counter = counter
            .checked_add(1)
            .expect("CTR counter overflow: message too long");
    }
}

/// Convenience wrapper returning a freshly encrypted copy of `data`.
pub fn aes128_ctr_encrypt(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], data: &[u8]) -> Vec<u8> {
    let mut out = data.to_vec();
    aes128_ctr_apply(key, nonce, &mut out);
    out
}

/// Number of AES block operations needed to process `len` bytes of CTR
/// data. Used by the device cost model.
pub fn ctr_blocks(len: usize) -> usize {
    len.div_ceil(BLOCK_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keystream_differs_per_nonce() {
        let key = [9u8; 16];
        let a = aes128_ctr_encrypt(&key, &[0u8; 12], &[0u8; 32]);
        let b = aes128_ctr_encrypt(&key, &[1u8; 12], &[0u8; 32]);
        assert_ne!(a, b);
    }

    #[test]
    fn keystream_differs_per_block() {
        let key = [9u8; 16];
        let ks = aes128_ctr_encrypt(&key, &[0u8; 12], &[0u8; 32]);
        assert_ne!(ks[..16], ks[16..]);
    }

    #[test]
    fn roundtrip_odd_lengths() {
        let key = [3u8; 16];
        let nonce = [5u8; 12];
        for len in [0usize, 1, 15, 16, 17, 63, 64, 65, 101] {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let ct = aes128_ctr_encrypt(&key, &nonce, &data);
            assert_eq!(ct.len(), len);
            let pt = aes128_ctr_encrypt(&key, &nonce, &ct);
            assert_eq!(pt, data, "len {len}");
        }
    }

    #[test]
    fn block_count() {
        assert_eq!(ctr_blocks(0), 0);
        assert_eq!(ctr_blocks(1), 1);
        assert_eq!(ctr_blocks(16), 1);
        assert_eq!(ctr_blocks(17), 2);
        assert_eq!(ctr_blocks(64), 4);
    }
}
