//! Constant-time comparison helpers.
//!
//! Key and tag comparisons in the protocol code must not leak the
//! position of the first differing byte through timing. These helpers
//! fold the whole comparison into a single accumulated value before
//! branching.

/// Compares two byte slices in constant time with respect to content.
///
/// Returns `false` immediately when lengths differ (the length of a MAC
/// tag or key is public information).
pub fn eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut acc = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        acc |= x ^ y;
    }
    acc == 0
}

/// Selects `a` when `choice` is true, `b` otherwise, without branching on
/// the secret `choice` for the per-byte copy.
pub fn select(choice: bool, a: &[u8], b: &[u8], out: &mut [u8]) {
    assert_eq!(a.len(), b.len(), "select arms must have equal length");
    assert_eq!(a.len(), out.len(), "output must match arm length");
    let mask = (choice as u8).wrapping_neg(); // 0xFF or 0x00
    for i in 0..out.len() {
        out[i] = (a[i] & mask) | (b[i] & !mask);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_basic() {
        assert!(eq(b"", b""));
        assert!(eq(b"abc", b"abc"));
        assert!(!eq(b"abc", b"abd"));
        assert!(!eq(b"abc", b"ab"));
        assert!(!eq(b"\x00", b"\x01"));
    }

    #[test]
    fn select_arms() {
        let mut out = [0u8; 3];
        select(true, b"aaa", b"bbb", &mut out);
        assert_eq!(&out, b"aaa");
        select(false, b"aaa", b"bbb", &mut out);
        assert_eq!(&out, b"bbb");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn select_length_mismatch_panics() {
        let mut out = [0u8; 2];
        select(true, b"aa", b"b", &mut out);
    }
}
