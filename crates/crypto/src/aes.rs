//! FIPS 197 AES-128 block cipher.
//!
//! Straightforward table-free implementation (computed S-box, column
//! mixing over GF(2^8)) in the spirit of the paper's *tiny-AES* — small,
//! portable and easy to audit rather than fast.

/// AES block size in bytes.
pub const BLOCK_LEN: usize = 16;

/// AES-128 key size in bytes.
pub const KEY_LEN: usize = 16;

const ROUNDS: usize = 10;

/// The AES S-box, generated at first use from the GF(2^8) inverse and the
/// affine transform (kept as a const table for simplicity and speed).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &s) in SBOX.iter().enumerate() {
        inv[s as usize] = i as u8;
    }
    inv
}

const RCON: [u8; 11] = [
    0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36,
];

fn xtime(x: u8) -> u8 {
    (x << 1) ^ (((x >> 7) & 1) * 0x1b)
}

/// GF(2^8) multiplication with the AES polynomial.
fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// An AES-128 key schedule ready for encryption and decryption.
///
/// ```
/// use ecq_crypto::aes::Aes128;
///
/// let aes = Aes128::new(&[0u8; 16]);
/// let mut block = *b"0123456789abcdef";
/// let original = block;
/// aes.encrypt_block(&mut block);
/// aes.decrypt_block(&mut block);
/// assert_eq!(block, original);
/// ```
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; ROUNDS + 1],
}

impl core::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        f.debug_struct("Aes128").finish_non_exhaustive()
    }
}

impl Aes128 {
    /// Expands a 16-byte key into the full round-key schedule.
    pub fn new(key: &[u8; KEY_LEN]) -> Self {
        let mut w = [[0u8; 4]; 4 * (ROUNDS + 1)];
        for i in 0..4 {
            w[i] = [key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]];
        }
        for i in 4..4 * (ROUNDS + 1) {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for t in temp.iter_mut() {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= RCON[i / 4];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; ROUNDS + 1];
        for r in 0..=ROUNDS {
            for c in 0..4 {
                round_keys[r][4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        add_round_key(block, &self.round_keys[0]);
        for r in 1..ROUNDS {
            sub_bytes(block);
            shift_rows(block);
            mix_columns(block);
            add_round_key(block, &self.round_keys[r]);
        }
        sub_bytes(block);
        shift_rows(block);
        add_round_key(block, &self.round_keys[ROUNDS]);
    }

    /// Decrypts one 16-byte block in place.
    pub fn decrypt_block(&self, block: &mut [u8; BLOCK_LEN]) {
        let inv = inv_sbox();
        add_round_key(block, &self.round_keys[ROUNDS]);
        for r in (1..ROUNDS).rev() {
            inv_shift_rows(block);
            inv_sub_bytes(block, &inv);
            add_round_key(block, &self.round_keys[r]);
            inv_mix_columns(block);
        }
        inv_shift_rows(block);
        inv_sub_bytes(block, &inv);
        add_round_key(block, &self.round_keys[0]);
    }
}

fn add_round_key(block: &mut [u8; 16], rk: &[u8; 16]) {
    for (b, k) in block.iter_mut().zip(rk.iter()) {
        *b ^= k;
    }
}

fn sub_bytes(block: &mut [u8; 16]) {
    for b in block.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

fn inv_sub_bytes(block: &mut [u8; 16], inv: &[u8; 256]) {
    for b in block.iter_mut() {
        *b = inv[*b as usize];
    }
}

// State is column-major: byte index = 4*col + row.
fn shift_rows(block: &mut [u8; 16]) {
    let s = *block;
    for row in 1..4 {
        for col in 0..4 {
            block[4 * col + row] = s[4 * ((col + row) % 4) + row];
        }
    }
}

fn inv_shift_rows(block: &mut [u8; 16]) {
    let s = *block;
    for row in 1..4 {
        for col in 0..4 {
            block[4 * ((col + row) % 4) + row] = s[4 * col + row];
        }
    }
}

fn mix_columns(block: &mut [u8; 16]) {
    for col in 0..4 {
        let a = [
            block[4 * col],
            block[4 * col + 1],
            block[4 * col + 2],
            block[4 * col + 3],
        ];
        block[4 * col] = gmul(a[0], 2) ^ gmul(a[1], 3) ^ a[2] ^ a[3];
        block[4 * col + 1] = a[0] ^ gmul(a[1], 2) ^ gmul(a[2], 3) ^ a[3];
        block[4 * col + 2] = a[0] ^ a[1] ^ gmul(a[2], 2) ^ gmul(a[3], 3);
        block[4 * col + 3] = gmul(a[0], 3) ^ a[1] ^ a[2] ^ gmul(a[3], 2);
    }
}

fn inv_mix_columns(block: &mut [u8; 16]) {
    for col in 0..4 {
        let a = [
            block[4 * col],
            block[4 * col + 1],
            block[4 * col + 2],
            block[4 * col + 3],
        ];
        block[4 * col] = gmul(a[0], 14) ^ gmul(a[1], 11) ^ gmul(a[2], 13) ^ gmul(a[3], 9);
        block[4 * col + 1] = gmul(a[0], 9) ^ gmul(a[1], 14) ^ gmul(a[2], 11) ^ gmul(a[3], 13);
        block[4 * col + 2] = gmul(a[0], 13) ^ gmul(a[1], 9) ^ gmul(a[2], 14) ^ gmul(a[3], 11);
        block[4 * col + 3] = gmul(a[0], 11) ^ gmul(a[1], 13) ^ gmul(a[2], 9) ^ gmul(a[3], 14);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 197 Appendix C.1.
    #[test]
    fn fips197_vector() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let mut block: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let aes = Aes128::new(&key);
        aes.encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
                0xc5, 0x5a
            ]
        );
        aes.decrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
                0xee, 0xff
            ]
        );
    }

    // NIST SP 800-38A ECB-AES128 vector (first block).
    #[test]
    fn sp800_38a_ecb_block1() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let mut block: [u8; 16] = [
            0x6b, 0xc1, 0xbe, 0xe2, 0x2e, 0x40, 0x9f, 0x96, 0xe9, 0x3d, 0x7e, 0x11, 0x73, 0x93,
            0x17, 0x2a,
        ];
        Aes128::new(&key).encrypt_block(&mut block);
        assert_eq!(
            block,
            [
                0x3a, 0xd7, 0x7b, 0xb4, 0x0d, 0x7a, 0x36, 0x60, 0xa8, 0x9e, 0xca, 0xf3, 0x24, 0x66,
                0xef, 0x97
            ]
        );
    }

    #[test]
    fn roundtrip_random_like_blocks() {
        let aes = Aes128::new(b"0123456789abcdef");
        for seed in 0u8..32 {
            let mut block = [seed; 16];
            for (i, b) in block.iter_mut().enumerate() {
                *b = b.wrapping_add(i as u8).wrapping_mul(31);
            }
            let original = block;
            aes.encrypt_block(&mut block);
            assert_ne!(block, original);
            aes.decrypt_block(&mut block);
            assert_eq!(block, original);
        }
    }

    #[test]
    fn debug_hides_keys() {
        let aes = Aes128::new(&[7u8; 16]);
        let dbg = format!("{aes:?}");
        assert!(dbg.contains("Aes128"));
        assert!(!dbg.contains('7'));
    }
}
