//! RFC 5869 HKDF with SHA-256.
//!
//! This is the `KDF(KPM, salt)` of the paper's eq. (4): the premaster
//! secret produced by the ephemeral Diffie–Hellman exchange is stretched
//! into session key material.

use crate::hmac::{hmac_sha256, HmacSha256, TAG_LEN};

/// HKDF-Extract: `PRK = HMAC(salt, ikm)`.
pub fn hkdf_extract(salt: &[u8], ikm: &[u8]) -> [u8; TAG_LEN] {
    hmac_sha256(salt, ikm)
}

/// HKDF-Expand: fills `okm` from `prk` and `info`.
///
/// # Panics
///
/// Panics if `okm.len() > 255 * 32` (the RFC 5869 limit).
pub fn hkdf_expand(prk: &[u8], info: &[u8], okm: &mut [u8]) {
    assert!(
        okm.len() <= 255 * TAG_LEN,
        "HKDF output length exceeds RFC 5869 limit"
    );
    let mut t: [u8; TAG_LEN] = [0; TAG_LEN];
    let mut t_len = 0usize;
    let mut counter = 1u8;
    let mut written = 0usize;
    while written < okm.len() {
        let mut m = HmacSha256::new(prk);
        m.update(&t[..t_len]);
        m.update(info);
        m.update(&[counter]);
        t = m.finalize();
        t_len = TAG_LEN;
        let take = (okm.len() - written).min(TAG_LEN);
        okm[written..written + take].copy_from_slice(&t[..take]);
        written += take;
        counter = counter.wrapping_add(1);
    }
}

/// One-shot HKDF-SHA256 (extract then expand).
///
/// ```
/// let mut key = [0u8; 16];
/// ecq_crypto::hkdf::hkdf_sha256(b"salt", b"ikm", b"info", &mut key);
/// ```
pub fn hkdf_sha256(salt: &[u8], ikm: &[u8], info: &[u8], okm: &mut [u8]) {
    let prk = hkdf_extract(salt, ikm);
    hkdf_expand(&prk, info, okm);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 5869 test case 1.
    #[test]
    fn rfc5869_case1() {
        let ikm = [0x0bu8; 22];
        let salt: Vec<u8> = (0x00..=0x0c).collect();
        let info: Vec<u8> = (0xf0..=0xf9).collect();
        let prk = hkdf_extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        hkdf_expand(&prk, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    // RFC 5869 test case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_case3_empty_salt_info() {
        let ikm = [0x0bu8; 22];
        let mut okm = [0u8; 42];
        hkdf_sha256(b"", &ikm, b"", &mut okm);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    #[test]
    fn multi_block_expand() {
        let mut okm = [0u8; 100];
        hkdf_sha256(b"s", b"k", b"i", &mut okm);
        // Each 32-byte block must differ (counter feedback).
        assert_ne!(okm[..32], okm[32..64]);
        assert_ne!(okm[32..64], okm[64..96]);
    }

    #[test]
    #[should_panic(expected = "RFC 5869 limit")]
    fn oversize_expand_panics() {
        let mut okm = vec![0u8; 255 * 32 + 1];
        hkdf_expand(&[0u8; 32], b"", &mut okm);
    }
}
