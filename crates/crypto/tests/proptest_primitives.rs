//! Property-based tests of the symmetric primitives.

use ecq_crypto::{aes::Aes128, cmac, ctr, hkdf, hmac, sha256, HmacDrbg};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..512), split in any::<usize>()) {
        let split = if data.is_empty() { 0 } else { split % data.len() };
        let mut h = sha256::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256::sha256(&data));
    }

    #[test]
    fn sha256_concat_equals_contiguous(a in proptest::collection::vec(any::<u8>(), 0..64),
                                       b in proptest::collection::vec(any::<u8>(), 0..64)) {
        let joined = [a.as_slice(), b.as_slice()].concat();
        prop_assert_eq!(sha256::sha256_concat(&[&a, &b]), sha256::sha256(&joined));
    }

    #[test]
    fn aes_roundtrips(key in any::<[u8; 16]>(), block in any::<[u8; 16]>()) {
        let aes = Aes128::new(&key);
        let mut work = block;
        aes.encrypt_block(&mut work);
        aes.decrypt_block(&mut work);
        prop_assert_eq!(work, block);
    }

    #[test]
    fn ctr_roundtrips_any_length(key in any::<[u8; 16]>(), nonce in any::<[u8; 12]>(),
                                 data in proptest::collection::vec(any::<u8>(), 0..300)) {
        let ct = ctr::aes128_ctr_encrypt(&key, &nonce, &data);
        prop_assert_eq!(ct.len(), data.len());
        let pt = ctr::aes128_ctr_encrypt(&key, &nonce, &ct);
        prop_assert_eq!(pt, data);
    }

    #[test]
    fn hmac_verifies_and_rejects(key in proptest::collection::vec(any::<u8>(), 0..80),
                                 msg in proptest::collection::vec(any::<u8>(), 0..200),
                                 flip in any::<(usize, u8)>()) {
        let tag = hmac::hmac_sha256(&key, &msg);
        prop_assert!(hmac::verify_hmac_sha256(&key, &msg, &tag));
        let mut bad = tag;
        let bit = (flip.1 % 8) as u32;
        bad[flip.0 % 32] ^= 1 << bit;
        prop_assert!(!hmac::verify_hmac_sha256(&key, &msg, &bad));
    }

    #[test]
    fn cmac_verifies_and_rejects(key in any::<[u8; 16]>(),
                                 msg in proptest::collection::vec(any::<u8>(), 0..200)) {
        let tag = cmac::aes128_cmac(&key, &msg);
        prop_assert!(cmac::verify_aes128_cmac(&key, &msg, &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        prop_assert!(!cmac::verify_aes128_cmac(&key, &msg, &bad));
    }

    #[test]
    fn hkdf_is_deterministic_and_prefix_stable(salt in proptest::collection::vec(any::<u8>(), 0..40),
                                               ikm in proptest::collection::vec(any::<u8>(), 1..64)) {
        let mut long = [0u8; 64];
        hkdf::hkdf_sha256(&salt, &ikm, b"info", &mut long);
        let mut short = [0u8; 16];
        hkdf::hkdf_sha256(&salt, &ikm, b"info", &mut short);
        // HKDF output is a stream: shorter outputs are prefixes.
        prop_assert_eq!(&long[..16], &short[..]);
    }

    #[test]
    fn drbg_streams_reproducible_and_seed_sensitive(seed in any::<u64>()) {
        let mut a = HmacDrbg::from_seed(seed);
        let mut b = HmacDrbg::from_seed(seed);
        prop_assert_eq!(a.bytes(48), b.bytes(48));
        let mut c = HmacDrbg::from_seed(seed ^ 1);
        prop_assert_ne!(a.bytes32(), c.bytes32());
    }

    #[test]
    fn ct_eq_matches_slice_eq(a in proptest::collection::vec(any::<u8>(), 0..64),
                              b in proptest::collection::vec(any::<u8>(), 0..64)) {
        prop_assert_eq!(ecq_crypto::ct::eq(&a, &b), a == b);
    }
}
