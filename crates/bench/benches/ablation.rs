//! Criterion ablations for the design choices of DESIGN.md §7 that are
//! measurable on the host: verification strategy, window width, and
//! point (de)compression cost.

use criterion::{criterion_group, criterion_main, Criterion};
use ecq_crypto::HmacDrbg;
use ecq_p256::ecdsa::{self, VerifyStrategy};
use ecq_p256::keys::KeyPair;
use ecq_p256::point::{AffinePoint, JacobianPoint};
use ecq_p256::scalar::Scalar;
use std::hint::black_box;

/// Plain double-and-add, the ablation baseline for the 4-bit window.
fn mul_double_and_add(p: &AffinePoint, k: &Scalar) -> AffinePoint {
    let kv = k.to_canonical();
    let pj = JacobianPoint::from_affine(p);
    let mut acc = JacobianPoint::identity();
    for i in (0..kv.bit_len()).rev() {
        acc = acc.double();
        if kv.bit(i) {
            acc = acc.add(&pj);
        }
    }
    acc.to_affine()
}

fn bench_verify_strategy(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_verify");
    g.sample_size(20);
    let mut rng = HmacDrbg::from_seed(0xAB1);
    let kp = KeyPair::generate(&mut rng);
    let sig = ecdsa::sign(&kp.private, b"msg");
    g.bench_function("separate_muls", |b| {
        b.iter(|| ecdsa::verify_with(&kp.public, b"msg", &sig, VerifyStrategy::SeparateMuls))
    });
    g.bench_function("shamir", |b| {
        b.iter(|| ecdsa::verify_with(&kp.public, b"msg", &sig, VerifyStrategy::Shamir))
    });
    g.finish();
}

fn bench_window(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_scalar_mul");
    g.sample_size(20);
    let mut rng = HmacDrbg::from_seed(0xAB2);
    let k = Scalar::random(&mut rng);
    let gpt = AffinePoint::generator();
    g.bench_function("window4", |b| b.iter(|| gpt.mul_vartime(black_box(&k))));
    g.bench_function("double_and_add", |b| {
        b.iter(|| mul_double_and_add(&gpt, black_box(&k)))
    });
    g.finish();
}

fn bench_point_encoding(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_encoding");
    let mut rng = HmacDrbg::from_seed(0xAB3);
    let kp = KeyPair::generate(&mut rng);
    let compressed = ecq_p256::encoding::encode_compressed(&kp.public);
    let raw = ecq_p256::encoding::encode_raw(&kp.public);
    g.bench_function("decode_compressed_sqrt", |b| {
        b.iter(|| ecq_p256::encoding::decode_compressed(black_box(&compressed)).unwrap())
    });
    g.bench_function("decode_raw_oncurve_check", |b| {
        b.iter(|| ecq_p256::encoding::decode_raw(black_box(&raw)).unwrap())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_verify_strategy,
    bench_window,
    bench_point_encoding
);
criterion_main!(benches);
