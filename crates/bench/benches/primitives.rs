//! Host-hardware ground truth for every cryptographic primitive the
//! protocols consume. These absolute numbers differ from the paper's
//! embedded boards by construction; the *ratios* between primitives
//! are the meaningful comparison (they drive the device cost model's
//! decomposition in DESIGN.md §5).

use criterion::{criterion_group, criterion_main, Criterion};
use ecq_cert::{ca::CertificateAuthority, requester::CertRequester, DeviceId};
use ecq_crypto::{aes::Aes128, cmac, ctr, hkdf, hmac, sha256, HmacDrbg};
use ecq_p256::field::FieldElement;
use ecq_p256::point::JacobianPoint;
use ecq_p256::u256::U256;
use ecq_p256::{ecdh, ecdsa, keys::KeyPair, scalar::Scalar};
use std::hint::black_box;

/// The specialized field backend, primitive by primitive: these are
/// the rows the per-op comb/window sizing decisions in `precomp.rs`
/// were made against. `bench_p256` (the JSON artifact) additionally
/// times the generic `MontCtx` reference for each of these.
fn bench_field(c: &mut Criterion) {
    let mut g = c.benchmark_group("field");
    let mut rng = HmacDrbg::from_seed(0xF1);
    let a = FieldElement::from_reduced(&U256::from_be_bytes(&rng.bytes32()));
    let b = FieldElement::from_reduced(&U256::from_be_bytes(&rng.bytes32()));

    g.bench_function("fe_mul", |bch| {
        bch.iter(|| black_box(&a).mul(black_box(&b)))
    });
    g.bench_function("fe_square", |bch| bch.iter(|| black_box(&a).square()));
    g.bench_function("fe_invert", |bch| bch.iter(|| black_box(&a).invert()));
    g.bench_function("fe_sqrt", |bch| bch.iter(|| black_box(&a).sqrt()));
    g.bench_function("scalar_invert", |bch| {
        let s = Scalar::random(&mut rng);
        bch.iter(|| black_box(&s).invert())
    });
    g.finish();
}

fn bench_symmetric(c: &mut Criterion) {
    let mut g = c.benchmark_group("symmetric");
    let data_64 = [0xA5u8; 64];
    let data_1k = [0x5Au8; 1024];

    g.bench_function("sha256_64B", |b| {
        b.iter(|| sha256::sha256(black_box(&data_64)))
    });
    g.bench_function("sha256_1KiB", |b| {
        b.iter(|| sha256::sha256(black_box(&data_1k)))
    });
    g.bench_function("hmac_sha256_64B", |b| {
        b.iter(|| hmac::hmac_sha256(b"key", black_box(&data_64)))
    });
    g.bench_function("hkdf_sha256_32B_out", |b| {
        b.iter(|| {
            let mut okm = [0u8; 32];
            hkdf::hkdf_sha256(b"salt", black_box(&data_64), b"info", &mut okm);
            okm
        })
    });

    let aes = Aes128::new(b"0123456789abcdef");
    g.bench_function("aes128_block", |b| {
        b.iter(|| {
            let mut blk = [0u8; 16];
            aes.encrypt_block(black_box(&mut blk));
            blk
        })
    });
    g.bench_function("aes128_ctr_64B", |b| {
        b.iter(|| ctr::aes128_ctr_encrypt(b"0123456789abcdef", &[0u8; 12], black_box(&data_64)))
    });
    g.bench_function("aes128_cmac_64B", |b| {
        b.iter(|| cmac::aes128_cmac(b"0123456789abcdef", black_box(&data_64)))
    });
    g.finish();
}

fn bench_curve(c: &mut Criterion) {
    let mut g = c.benchmark_group("p256");
    g.sample_size(20);
    let mut rng = HmacDrbg::from_seed(0xBE);
    let kp = KeyPair::generate(&mut rng);
    let peer = KeyPair::generate(&mut rng);
    let k = Scalar::random(&mut rng);

    // Fixed-base: the vartime table walk, its constant-schedule
    // counterpart (what every secret path now pays — the ct/vartime
    // ratio is the measured cost of the side-channel fix), and the
    // generic window ladder the seed used (the precomp.rs baseline).
    g.bench_function("base_mul_vartime", |b| {
        b.iter(|| ecq_p256::point::mul_generator_vartime(black_box(&k)))
    });
    g.bench_function("base_mul_ct", |b| {
        b.iter(|| ecq_p256::point::mul_generator_ct(black_box(&k)))
    });
    g.bench_function("base_mul_generic", |b| {
        let g_pt = ecq_p256::point::AffinePoint::generator();
        b.iter(|| g_pt.mul_vartime(black_box(&k)))
    });
    // Group operations under every multiplier.
    let pj = JacobianPoint::from_affine(&peer.public);
    let gj = JacobianPoint::from_affine(&ecq_p256::point::AffinePoint::generator());
    g.bench_function("point_double", |b| b.iter(|| black_box(&pj).double()));
    g.bench_function("point_add", |b| {
        b.iter(|| black_box(&pj).add(black_box(&gj)))
    });
    // Variable-base, same split (ECDH pays the ct row).
    g.bench_function("point_mul_vartime", |b| {
        b.iter(|| peer.public.mul_vartime(black_box(&k)))
    });
    g.bench_function("point_mul_ct", |b| {
        b.iter(|| peer.public.mul_ct(black_box(&k)))
    });
    g.bench_function("ecdh", |b| {
        b.iter(|| ecdh::shared_secret(&kp.private, black_box(&peer.public)).unwrap())
    });

    let sig = ecdsa::sign(&kp.private, b"bench message");
    g.bench_function("ecdsa_sign", |b| {
        b.iter(|| ecdsa::sign(&kp.private, black_box(b"bench message")))
    });
    g.bench_function("ecdsa_verify_separate", |b| {
        b.iter(|| {
            ecdsa::verify_with(
                &kp.public,
                b"bench message",
                &sig,
                ecdsa::VerifyStrategy::SeparateMuls,
            )
        })
    });
    g.bench_function("ecdsa_verify_shamir", |b| {
        b.iter(|| {
            ecdsa::verify_with(
                &kp.public,
                b"bench message",
                &sig,
                ecdsa::VerifyStrategy::Shamir,
            )
        })
    });

    g.bench_function("point_decompress", |b| {
        let enc = ecq_p256::encoding::encode_compressed(&kp.public);
        b.iter(|| ecq_p256::encoding::decode_compressed(black_box(&enc)).unwrap())
    });
    g.finish();
}

fn bench_ecqv(c: &mut Criterion) {
    let mut g = c.benchmark_group("ecqv");
    g.sample_size(20);
    let mut rng = HmacDrbg::from_seed(0xEC);
    let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
    let req = CertRequester::generate(DeviceId::from_label("dev"), &mut rng);
    let issued = ca.issue(&req.request(), 0, 100, &mut rng).unwrap();

    g.bench_function("ca_issue", |b| {
        let mut issue_rng = HmacDrbg::from_seed(0xEC2);
        b.iter(|| {
            ca.issue(black_box(&req.request()), 0, 100, &mut issue_rng)
                .unwrap()
        })
    });
    g.bench_function("key_reconstruction_subject", |b| {
        b.iter(|| {
            req.reconstruct(black_box(&issued), &ca.public_key())
                .unwrap()
        })
    });
    g.bench_function("public_key_reconstruction_eq1", |b| {
        b.iter(|| {
            ecq_cert::reconstruct_public_key(black_box(&issued.certificate), &ca.public_key())
                .unwrap()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_symmetric,
    bench_field,
    bench_curve,
    bench_ecqv
);
criterion_main!(benches);
