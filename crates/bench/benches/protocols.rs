//! Full-handshake host benchmarks for all seven protocol variants —
//! the host-hardware analogue of the paper's Table I. The expected
//! *shape* (SCIANC < PORAMB < S-ECDSA < STS) carries over from the
//! embedded boards because the EC operation counts dominate on both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ecq_bench::{deployment, run_protocol};
use ecq_proto::ProtocolKind;
use std::hint::black_box;

fn bench_handshakes(c: &mut Criterion) {
    let mut g = c.benchmark_group("handshake");
    g.sample_size(10);
    for kind in ProtocolKind::WIRE_DISTINCT {
        let (alice, bob, mut rng) = deployment(kind as u64 + 100);
        g.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, k| {
            b.iter(|| {
                let (t, key) = run_protocol(*k, &alice, &bob, &mut rng).expect("handshake");
                black_box((t.total_bytes(), key));
            })
        });
    }
    g.finish();
}

fn bench_provisioning(c: &mut Criterion) {
    let mut g = c.benchmark_group("deployment");
    g.sample_size(10);
    g.bench_function("provision_two_devices", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(deployment(seed));
        })
    });
    g.finish();
}

criterion_group!(benches, bench_handshakes, bench_provisioning);
criterion_main!(benches);
