//! Regenerates the paper's Table III: the security overview of the KD
//! protocols, derived from structural protocol properties.

use ecq_analysis::security_matrix;

fn main() {
    println!("Table III — security overview of the KD protocols for ECQV");
    println!("(✗ weak/none, ∆ partial, ✓ full — derived by the rule engine)\n");
    print!("{}", security_matrix().render());
    println!();
    println!("Derivation rules (paper §V-D):");
    println!(" • forward secrecy ⇒ past data protected (only STS)");
    println!(" • no scheme fully survives node capture; signature-based auth degrades gracefully");
    println!(" • ephemeral secrets ⇒ no key-data reuse; nonce-mixing is only partial");
    println!(" • SCIANC ties authentication to the session key (KCI surface)");
    println!(" • PORAMB stores one pre-shared key per peer (update burden)");
}
