//! Regenerates the paper's Fig. 3: time duration of the individual STS
//! operations (Op1–Op4) on the STM32F767.

use ecq_bench::bar;
use ecq_devices::timing::sts_operation_times;
use ecq_devices::DevicePreset;

fn main() {
    println!("Fig. 3 — duration of individual STS operation runs (STM32F767)\n");
    let device = DevicePreset::Stm32F767.profile();
    let ops = sts_operation_times(&device);
    let labels = [
        "Op1  request / XG derivation",
        "Op2  pubkey + premaster keys",
        "Op3  auth sign + encryption",
        "Op4  auth decrypt + verify",
    ];
    let max = ops.iter().cloned().fold(0.0, f64::max);
    for (label, value) in labels.iter().zip(ops.iter()) {
        println!("{label:<32} {value:>9.2} ms  {}", bar(*value, max, 40));
    }
    println!(
        "\nper-side sum: {:.2} ms (×2 = {:.2} ms, Table I STS row: 3162.07 ms)",
        ops.iter().sum::<f64>(),
        2.0 * ops.iter().sum::<f64>()
    );

    println!("\nSame decomposition on all boards (ms):");
    println!(
        "{:<14}{:>12}{:>12}{:>12}{:>12}",
        "Device", "Op1", "Op2", "Op3", "Op4"
    );
    for preset in DevicePreset::ALL {
        let ops = sts_operation_times(&preset.profile());
        println!(
            "{:<14}{:>12.2}{:>12.2}{:>12.2}{:>12.2}",
            preset.profile().name,
            ops[0],
            ops[1],
            ops[2],
            ops[3]
        );
    }
}
