//! Ablations of the design choices DESIGN.md §7 calls out:
//!
//! 1. ECDSA verification strategy (two multiplications vs Shamir);
//! 2. scalar-multiplication window (4-bit window vs double-and-add);
//! 3. certificate point encoding (compressed vs uncompressed) and its
//!    Table II impact;
//! 4. ISO-TP flow-control parameters vs handshake wall time;
//! 5. Opt. I/II pipelining on heterogeneous device pairs (eq. (6)).

use ecq_bench::{deployment, run_protocol};
use ecq_crypto::HmacDrbg;
use ecq_devices::timing::{integrate, pair_total, pipelined_phases};
use ecq_devices::DevicePreset;
use ecq_p256::ecdsa::{self, VerifyStrategy};
use ecq_p256::keys::KeyPair;
use ecq_p256::point::{AffinePoint, JacobianPoint};
use ecq_p256::scalar::Scalar;
use ecq_proto::{ProtocolKind, Role};
use ecq_simnet::canfd::BitTiming;
use ecq_simnet::isotp::{transfer_time_ns, IsoTpConfig};
use std::time::Instant;

/// Reference double-and-add (no window) for the ablation.
fn mul_double_and_add(p: &AffinePoint, k: &Scalar) -> AffinePoint {
    let kv = k.to_canonical();
    let pj = JacobianPoint::from_affine(p);
    let mut acc = JacobianPoint::identity();
    for i in (0..kv.bit_len()).rev() {
        acc = acc.double();
        if kv.bit(i) {
            acc = acc.add(&pj);
        }
    }
    acc.to_affine()
}

fn time_us<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_secs_f64() * 1e6 / iters as f64
}

fn main() {
    let mut rng = HmacDrbg::from_seed(0xAB1A7E);
    let kp = KeyPair::generate(&mut rng);
    let sig = ecdsa::sign(&kp.private, b"ablation message");

    println!("Ablation 1 — ECDSA verification strategy (host time)");
    let t_sep = time_us(20, || {
        assert!(ecdsa::verify_with(
            &kp.public,
            b"ablation message",
            &sig,
            VerifyStrategy::SeparateMuls
        ));
    });
    let t_shamir = time_us(20, || {
        assert!(ecdsa::verify_with(
            &kp.public,
            b"ablation message",
            &sig,
            VerifyStrategy::Shamir
        ));
    });
    println!("  separate muls (micro-ecc style): {t_sep:>9.1} µs");
    println!(
        "  Shamir's trick:                  {t_shamir:>9.1} µs  ({:.0} % of separate)",
        t_shamir / t_sep * 100.0
    );

    println!("\nAblation 2 — scalar multiplication: 4-bit window vs double-and-add");
    let k = Scalar::random(&mut rng);
    let g = AffinePoint::generator();
    let t_window = time_us(20, || {
        let _ = g.mul_vartime(&k);
    });
    let t_naive = time_us(20, || {
        let _ = mul_double_and_add(&g, &k);
    });
    assert_eq!(g.mul_vartime(&k), mul_double_and_add(&g, &k));
    println!("  4-bit window:   {t_window:>9.1} µs");
    println!(
        "  double-and-add: {t_naive:>9.1} µs  (window saves {:.0} %)",
        (1.0 - t_window / t_naive) * 100.0
    );

    println!("\nAblation 3 — certificate point encoding vs Table II");
    // Compressed point: 33 B inside the 101-B cert. Uncompressed would
    // add 32 B per certificate transmission.
    for (kind, certs_on_wire) in [
        (ProtocolKind::SEcdsa, 2),
        (ProtocolKind::Sts, 2),
        (ProtocolKind::Scianc, 2),
        (ProtocolKind::Poramb, 2),
    ] {
        let (alice, bob, mut r) = deployment(77);
        let (t, _) = run_protocol(kind, &alice, &bob, &mut r).expect("handshake");
        let compressed = t.total_bytes();
        let uncompressed = compressed + 32 * certs_on_wire;
        println!(
            "  {:<10} {:>4} B compressed → {:>4} B with uncompressed points (+{:.1} %)",
            kind.label(),
            compressed,
            uncompressed,
            32.0 * certs_on_wire as f64 / compressed as f64 * 100.0
        );
    }

    println!("\nAblation 4 — ISO-TP flow control vs largest STS message (245 B)");
    let timing = BitTiming::default();
    for (bs, st_min_us) in [(0u8, 0u32), (4, 0), (1, 0), (0, 500), (2, 1000)] {
        let cfg = IsoTpConfig {
            block_size: bs,
            st_min_us,
            ..IsoTpConfig::default()
        };
        let t = transfer_time_ns(245, &timing, &cfg);
        println!(
            "  BS={bs:<2} STmin={st_min_us:>5} µs → {:>8.3} ms",
            t as f64 / 1e6
        );
    }

    println!("\nAblation 5 — Opt. II pipelining across heterogeneous pairs (eq. (6))");
    let (alice, bob, mut r) = deployment(78);
    let (transcript, _) = run_protocol(ProtocolKind::Sts, &alice, &bob, &mut r).expect("handshake");
    let pairs = [
        (DevicePreset::Stm32F767, DevicePreset::Stm32F767),
        (DevicePreset::Stm32F767, DevicePreset::S32K144),
        (DevicePreset::S32K144, DevicePreset::RaspberryPi4),
        (DevicePreset::ATmega2560, DevicePreset::RaspberryPi4),
    ];
    for (da, db) in pairs {
        let ta = integrate(transcript.trace(Role::Initiator), &da.profile());
        let tb = integrate(transcript.trace(Role::Responder), &db.profile());
        let conventional = pair_total(&ta, &tb, &[]);
        let opt2 = pair_total(&ta, &tb, pipelined_phases(ProtocolKind::StsOptII));
        println!(
            "  {:<12} × {:<12}: {:>10.2} ms → {:>10.2} ms (saves {:>5.1} %)",
            da.profile().name,
            db.profile().name,
            conventional,
            opt2,
            (1.0 - opt2 / conventional) * 100.0
        );
    }
}
