//! Future-work experiment (paper §VI): the influence of security
//! modules and hardware accelerators on the implicit-certificate
//! session-establishment protocols.
//!
//! For each board and accelerator class, prints the simulated Table I
//! row. The structural result: STS is EC-bound, so only accelerators
//! with public-key support change the picture — and with an ECC
//! coprocessor, full-STS sessions drop to SCIANC-class latencies while
//! keeping forward secrecy.

use ecq_bench::{deployment, run_protocol};
use ecq_devices::accelerator::Accelerator;
use ecq_devices::timing::protocol_pair_time;
use ecq_devices::DevicePreset;
use ecq_proto::ProtocolKind;

fn main() {
    println!("Future work (§VI): KD protocol times under crypto offload (ms)\n");
    let (alice, bob, mut rng) = deployment(0x45E);
    let kinds = [
        ProtocolKind::SEcdsa,
        ProtocolKind::Sts,
        ProtocolKind::StsOptII,
        ProtocolKind::Scianc,
    ];

    // Transcripts are schedule-independent; reuse one per protocol.
    let transcripts: Vec<_> = kinds
        .iter()
        .map(|k| {
            (
                *k,
                run_protocol(*k, &alice, &bob, &mut rng)
                    .expect("handshake")
                    .0,
            )
        })
        .collect();

    for preset in [DevicePreset::S32K144, DevicePreset::Stm32F767] {
        let base = preset.profile();
        println!("── {} ──", base.name);
        print!("{:<24}", "accelerator");
        for k in kinds {
            print!("{:>16}", k.label());
        }
        println!();
        for acc in Accelerator::ALL {
            let device = acc.apply(&base);
            print!("{:<24}", acc.name);
            for (k, t) in &transcripts {
                print!("{:>16.2}", protocol_pair_time(*k, t, &device, &device));
            }
            println!();
        }
        println!();
    }

    println!("Reading:");
    println!(" • SHE-class AES offload does not help any KD protocol (all EC-bound);");
    println!(" • an ECC coprocessor compresses STS into SCIANC territory —");
    println!("   dynamic key derivation stops being the expensive option;");
    println!(" • the +20 % STS-over-S-ECDSA ratio is invariant under uniform EC speedup");
    println!("   (both are EC-dominated), so the paper's trade-off conclusion is stable.");
}
