//! Regenerates the paper's Table II: communication steps and
//! transmission overhead of the KD protocols, from real transcripts.

use ecq_bench::{deployment, run_protocol};
use ecq_proto::ProtocolKind;

fn paper_total(kind: ProtocolKind) -> usize {
    match kind {
        ProtocolKind::SEcdsa => 427,
        ProtocolKind::SEcdsaExt => 619,
        ProtocolKind::Sts => 491,
        ProtocolKind::Scianc => 362,
        ProtocolKind::Poramb => 820,
        _ => unreachable!("optimized STS does not change the wire format"),
    }
}

fn main() {
    println!("Table II — communication steps and transmission overhead\n");
    let (alice, bob, mut rng) = deployment(2);
    for kind in ProtocolKind::WIRE_DISTINCT {
        let (transcript, _) = run_protocol(kind, &alice, &bob, &mut rng).expect("handshake");
        println!("── {} ──", kind.label());
        print!("{}", transcript.describe());
        let paper = paper_total(kind);
        let measured = transcript.total_bytes();
        println!(
            "paper: {} B — {}\n",
            paper,
            if measured == paper {
                "exact match".to_string()
            } else {
                format!("MISMATCH (measured {measured})")
            }
        );
    }
    println!("(STS opt. I/II transmit identical data to STS — §V-B of the paper.)");
}
