//! Regenerates the paper's Fig. 8: the block-diagram threat model for
//! the STS-ECQV key derivation (text and Graphviz DOT).

use ecq_analysis::diagram;

fn main() {
    print!("{}", diagram::render_text());
    println!("\nGraphviz DOT (pipe into `dot -Tsvg`):\n");
    print!("{}", diagram::render_dot());
}
