//! Fleet throughput sweep: batch-enrolls and key-establishes a
//! 1000-device fleet, reporting host wall-clock throughput plus the
//! simulated per-board throughput from the cost models.
//!
//! ```sh
//! cargo run --release --bin fleet
//! ```

use ecq_devices::DevicePreset;
use ecq_fleet::{FleetConfig, FleetCoordinator};
use std::time::Instant;

const DEVICES: usize = 1000;
const SHARDS: usize = 8;
const BATCH: usize = 64;
const EPOCHS: u32 = 2;

fn main() {
    println!("fleet sweep: {DEVICES} devices, {SHARDS} CA shards, batches of {BATCH}\n");

    let mut fleet = FleetCoordinator::new(FleetConfig {
        devices: DEVICES,
        ca_shards: SHARDS,
        enroll_batch: BATCH,
        seed: 0xF1EE7,
        ..FleetConfig::default()
    });

    let t = Instant::now();
    fleet.enroll_all().expect("enrollment");
    let enroll_wall = t.elapsed();
    let t = Instant::now();
    fleet.handshake_sweep().expect("handshakes");
    let handshake_wall = t.elapsed();
    let t = Instant::now();
    fleet.run_epochs(EPOCHS).expect("rekey epochs");
    let epoch_wall = t.elapsed();

    let r = fleet.report().clone();
    println!("host wall-clock (real cryptography, all boards interleaved):");
    println!(
        "  enrollment : {:8.0} enroll/s  ({} devices in {:.2?}, {} batches)",
        r.enrolled as f64 / enroll_wall.as_secs_f64(),
        r.enrolled,
        enroll_wall,
        r.enroll_batches,
    );
    println!(
        "  handshakes : {:8.0} hs/s      ({} sessions in {:.2?})",
        r.sessions as f64 / handshake_wall.as_secs_f64(),
        r.sessions,
        handshake_wall,
    );
    println!(
        "  rekeys     : {:8.0} rekey/s   ({} rekeys over {} epochs in {:.2?})",
        r.rekeys as f64 / epoch_wall.as_secs_f64(),
        r.rekeys,
        EPOCHS,
        epoch_wall,
    );

    println!("\nsimulated fleet (mixed presets, cost-model virtual time):");
    println!(
        "  enrollment : {:8.1} enroll/s  (makespan {:.2} s across {} shards)",
        r.enrollments_per_virtual_sec(),
        r.enroll_makespan_us as f64 / 1e6,
        r.shards,
    );
    println!(
        "  handshakes : {:8.1} hs/s      (makespan {:.2} s, pairs concurrent)",
        r.handshakes_per_virtual_sec(),
        r.handshake_makespan_us as f64 / 1e6,
    );

    // Per-preset sweeps: a homogeneous fleet of each evaluation board.
    println!("\nper-board simulated throughput ({DEVICES} devices, homogeneous fleet):");
    println!(
        "  {:<14}{:>16}{:>16}{:>12}",
        "board", "enroll/s", "handshake/s", "rekeys"
    );
    for preset in DevicePreset::ALL {
        let report = homogeneous_sweep(preset);
        println!(
            "  {:<14}{:>16.1}{:>16.2}{:>12}",
            format!("{preset:?}"),
            report.enrollments_per_virtual_sec(),
            report.handshakes_per_virtual_sec(),
            report.rekeys,
        );
    }
}

/// Runs the lifecycle on a fleet where every device simulates `preset`
/// (the roster's round-robin is collapsed by overriding the presets).
fn homogeneous_sweep(preset: DevicePreset) -> ecq_fleet::FleetReport {
    let mut fleet = FleetCoordinator::new(FleetConfig {
        devices: DEVICES,
        ca_shards: SHARDS,
        enroll_batch: BATCH,
        seed: 0xF1EE7 ^ preset as u64,
        ..FleetConfig::default()
    });
    fleet.set_preset_all(preset);
    fleet.run_lifecycle(EPOCHS).expect("lifecycle");
    fleet.report().clone()
}
