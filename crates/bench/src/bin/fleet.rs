//! Fleet throughput sweep and the CI perf gate.
//!
//! Default run: batch-enrolls a 1000-device fleet, establishes every
//! pair at message granularity over the simnet transport (handshakes
//! interleaved on the virtual timeline, sharded across host threads),
//! then reports host wall-clock and simulated throughput, plus the
//! legacy atomic lifecycle and per-board sweeps.
//!
//! ```sh
//! cargo run --release --bin fleet
//! # CI smoke: determinism check across thread counts + perf gate
//! cargo run --release --bin fleet -- --smoke --json BENCH_fleet.json \
//!     --baseline ci/BENCH_fleet_baseline.json --gate-pct 20
//! ```
//!
//! `--smoke` runs the interleaved sweep once per requested thread
//! count, fails (exit 1) if any `(config, seed)` report differs across
//! thread counts, writes the `BENCH_fleet.json` artifact, and — when a
//! baseline is given — fails if host handshake throughput regressed
//! more than `--gate-pct` percent (and, for baselines that record
//! `peak_rss_bytes`, if peak RSS exceeded the baseline by the same
//! margin). Regenerate the committed baseline on a CI-class runner with
//! `--write-baseline ci/BENCH_fleet_baseline.json`.
//!
//! ```sh
//! # Million-device tier: bounded-memory streaming sweep + RSS gate
//! cargo run --release --bin fleet -- --smoke --mega --threads 1,2 \
//!     --json BENCH_fleet_mega.json --baseline ci/BENCH_fleet_mega_baseline.json
//! ```
//!
//! `--mega` switches to `FleetCoordinator::streaming_sweep` (defaults:
//! 1,000,000 devices, `--max-inflight 4096`): enrollment is produced
//! lazily inside the sweep and resident state is bounded by the
//! admission window, so the run completes in a flat memory profile that
//! `peak_rss_bytes` records. Reports stay bit-identical to the
//! materialized path for any thread count and window.
//!
//! `--scenario <name>` runs one named adversarial scenario from the
//! shared-bus fault catalog against the BMS charging fleet and reports
//! the outcome; `--scenario list` prints the catalog, `--scenario all`
//! runs every entry (exit 1 if any outcome diverges from its paper
//! prediction).

use ecq_devices::DevicePreset;
use ecq_fleet::{FleetConfig, FleetCoordinator, FleetReport, SweepOptions, TransportKind};
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    devices: usize,
    shards: usize,
    batch: usize,
    epochs: u32,
    seed: u64,
    threads: Vec<usize>,
    max_inflight: usize,
    mega: bool,
    json: Option<String>,
    baseline: Option<String>,
    write_baseline: Option<String>,
    gate_pct: f64,
    smoke: bool,
    scenario: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            devices: 1000,
            shards: 8,
            batch: 64,
            epochs: 2,
            seed: 0xF1EE7,
            threads: vec![1, 2, 8],
            max_inflight: usize::MAX,
            mega: false,
            json: None,
            baseline: None,
            write_baseline: None,
            gate_pct: 20.0,
            smoke: false,
            scenario: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args::default();
    let (mut devices_given, mut inflight_given) = (false, false);
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--devices" => {
                args.devices = value("--devices")?.parse().map_err(|e| format!("{e}"))?;
                devices_given = true;
            }
            "--shards" => args.shards = value("--shards")?.parse().map_err(|e| format!("{e}"))?,
            "--batch" => args.batch = value("--batch")?.parse().map_err(|e| format!("{e}"))?,
            "--epochs" => args.epochs = value("--epochs")?.parse().map_err(|e| format!("{e}"))?,
            "--seed" => args.seed = value("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--threads" => {
                args.threads = value("--threads")?
                    .split(',')
                    .map(|t| t.trim().parse().map_err(|e| format!("{e}")))
                    .collect::<Result<_, _>>()?;
                if args.threads.is_empty() {
                    return Err("--threads needs at least one count".into());
                }
            }
            "--max-inflight" => {
                args.max_inflight = value("--max-inflight")?
                    .parse()
                    .map_err(|e| format!("{e}"))?;
                inflight_given = true;
            }
            "--mega" => args.mega = true,
            "--json" => args.json = Some(value("--json")?),
            "--baseline" => args.baseline = Some(value("--baseline")?),
            "--write-baseline" => args.write_baseline = Some(value("--write-baseline")?),
            "--gate-pct" => {
                args.gate_pct = value("--gate-pct")?.parse().map_err(|e| format!("{e}"))?
            }
            "--smoke" => args.smoke = true,
            "--scenario" => args.scenario = Some(value("--scenario")?),
            other => {
                return Err(format!(
                    "unknown flag {other} (see --smoke docs in the source)"
                ))
            }
        }
    }
    // `--mega` is the million-device streaming preset; explicit flags
    // still win so smaller streaming runs stay one command.
    if args.mega {
        if !devices_given {
            args.devices = 1_000_000;
        }
        if !inflight_given {
            args.max_inflight = 4096;
        }
    }
    Ok(args)
}

/// Peak resident set size of this process in bytes (`VmHWM` from
/// `/proc/self/status`); 0 where the proc interface is unavailable.
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

fn config(args: &Args) -> FleetConfig {
    FleetConfig::new()
        .devices(args.devices)
        .ca_shards(args.shards)
        .enroll_batch(args.batch)
        .seed(args.seed)
}

/// One establishment sweep; returns the report and the timed host
/// wall-clock seconds. `--mega` uses the bounded-memory streaming
/// pipeline, where enrollment is produced lazily *inside* the sweep —
/// its wall-clock (and thus hs/s) covers enrollment + establishment,
/// not establishment alone, so mega numbers gate against their own
/// baseline.
fn interleaved_run(args: &Args, threads: usize) -> (FleetReport, f64) {
    let opts = SweepOptions::new()
        .threads(threads)
        .transport(TransportKind::Simnet)
        .max_inflight(args.max_inflight);
    let mut fleet = FleetCoordinator::new(config(args));
    if args.mega {
        let t = Instant::now();
        fleet.streaming_sweep(&opts).expect("streaming sweep");
        (fleet.report().clone(), t.elapsed().as_secs_f64())
    } else {
        fleet.enroll_all().expect("enrollment");
        let t = Instant::now();
        fleet.interleaved_sweep(&opts).expect("interleaved sweep");
        (fleet.report().clone(), t.elapsed().as_secs_f64())
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn bench_json(
    args: &Args,
    report: &FleetReport,
    deterministic: bool,
    hs_per_sec: f64,
    best_threads: usize,
    peak_rss: u64,
) -> String {
    let digest = report.key_digest.map(|d| hex(&d)).unwrap_or_default();
    let threads: Vec<String> = args.threads.iter().map(|t| t.to_string()).collect();
    let max_inflight = if args.max_inflight == usize::MAX {
        "null".to_string()
    } else {
        args.max_inflight.to_string()
    };
    format!(
        "{{\n  \"schema\": \"bench-fleet-v2\",\n  \"devices\": {},\n  \"shards\": {},\n  \"seed\": {},\n  \"sessions\": {},\n  \"threads\": [{}],\n  \"streaming\": {},\n  \"max_inflight\": {},\n  \"peak_rss_bytes\": {},\n  \"deterministic\": {},\n  \"handshakes_per_sec_host\": {:.2},\n  \"best_thread_count\": {},\n  \"virtual_makespan_us\": {},\n  \"virtual_handshakes_per_sec\": {:.2},\n  \"messages\": {},\n  \"wire_bytes\": {},\n  \"can_frames\": {},\n  \"key_digest\": \"{}\"\n}}\n",
        report.devices,
        report.shards,
        args.seed,
        report.sessions,
        threads.join(", "),
        args.mega,
        max_inflight,
        peak_rss,
        deterministic,
        hs_per_sec,
        best_threads,
        report.handshake_makespan_us,
        report.handshakes_per_virtual_sec(),
        report.messages,
        report.wire_bytes,
        report.can_frames,
        digest,
    )
}

/// Pulls `"<key>": <number>` out of a baseline file (hand-rolled: the
/// workspace carries no JSON dependency).
fn baseline_field(path: &str, key: &str) -> Result<f64, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let needle = format!("\"{key}\":");
    let at = text
        .find(&needle)
        .ok_or_else(|| format!("{path}: no {key} field"))?;
    let rest = text[at + needle.len()..]
        .trim_start()
        .split(|c: char| c == ',' || c == '}' || c.is_whitespace())
        .next()
        .unwrap_or_default();
    rest.parse()
        .map_err(|e| format!("{path}: bad {key} number: {e}"))
}

/// CI smoke: thread-count determinism check + artifact + perf/RSS gates.
fn smoke(args: &Args) -> ExitCode {
    println!(
        "fleet smoke: {} devices, {} shards, {} simnet sweep, threads {:?}",
        args.devices,
        args.shards,
        if args.mega {
            "streaming (bounded-memory)"
        } else {
            "interleaved"
        },
        args.threads
    );
    let mut reference: Option<FleetReport> = None;
    let mut deterministic = true;
    let mut best = (args.threads[0], 0.0f64);
    for &threads in &args.threads {
        let (report, wall) = interleaved_run(args, threads);
        let hs_per_sec = report.handshakes as f64 / wall.max(1e-9);
        println!(
            "  threads={threads:<3} {:6} handshakes in {wall:7.3}s host  ({hs_per_sec:9.1} hs/s), \
             virtual makespan {:.3}s",
            report.handshakes,
            report.handshake_makespan_us as f64 / 1e6,
        );
        if hs_per_sec > best.1 {
            best = (threads, hs_per_sec);
        }
        match &reference {
            None => reference = Some(report),
            Some(expected) => {
                if *expected != report {
                    eprintln!(
                        "DETERMINISM FAILURE: report with {threads} threads differs from \
                         {}-thread report for the same (config, seed)",
                        args.threads[0]
                    );
                    deterministic = false;
                }
            }
        }
    }
    let report = reference.expect("at least one thread count");
    // A single requested thread count compares nothing, so it must not
    // claim a cross-thread determinism result.
    let deterministic = deterministic && args.threads.len() > 1;
    if deterministic {
        println!(
            "  deterministic across {:?} worker threads (key digest {})",
            args.threads,
            report.key_digest.map(|d| hex(&d[..8])).unwrap_or_default()
        );
    }

    let peak_rss = peak_rss_bytes();
    if peak_rss > 0 {
        println!(
            "  peak RSS: {:.1} MiB across all runs",
            peak_rss as f64 / (1024.0 * 1024.0)
        );
    }

    // Write the artifact before any gate verdict: when CI goes red, the
    // numbers explaining why must survive as the uploaded artifact.
    let json = bench_json(args, &report, deterministic, best.1, best.0, peak_rss);
    for path in args.json.iter().chain(args.write_baseline.iter()) {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("  wrote {path}");
    }
    if !deterministic && args.threads.len() > 1 {
        return ExitCode::FAILURE;
    }

    if let Some(path) = &args.baseline {
        match baseline_field(path, "handshakes_per_sec_host") {
            Ok(floor_src) => {
                let floor = floor_src * (1.0 - args.gate_pct / 100.0);
                println!(
                    "  perf gate: {:.1} hs/s measured vs {floor:.1} hs/s floor \
                     (baseline {floor_src:.1} − {}%)",
                    best.1, args.gate_pct
                );
                if best.1 < floor {
                    eprintln!(
                        "PERF REGRESSION: {:.1} hs/s is more than {}% below the committed \
                         baseline {floor_src:.1} hs/s ({path})",
                        best.1, args.gate_pct
                    );
                    return ExitCode::FAILURE;
                }
            }
            Err(e) => {
                eprintln!("cannot evaluate perf gate: {e}");
                return ExitCode::FAILURE;
            }
        }
        // Memory gate: when the baseline records a peak RSS (streaming
        // tiers do), the measured high-water mark may not exceed it by
        // more than the gate percentage — the bounded-memory contract,
        // enforced with the same headroom as throughput.
        match baseline_field(path, "peak_rss_bytes") {
            Ok(baseline_rss) if baseline_rss > 0.0 && peak_rss > 0 => {
                let ceiling = baseline_rss * (1.0 + args.gate_pct / 100.0);
                println!(
                    "  rss gate: {:.1} MiB measured vs {:.1} MiB ceiling \
                     (baseline {:.1} MiB + {}%)",
                    peak_rss as f64 / (1024.0 * 1024.0),
                    ceiling / (1024.0 * 1024.0),
                    baseline_rss / (1024.0 * 1024.0),
                    args.gate_pct
                );
                if peak_rss as f64 > ceiling {
                    eprintln!(
                        "MEMORY REGRESSION: peak RSS {} bytes is more than {}% above the \
                         committed baseline {baseline_rss:.0} bytes ({path})",
                        peak_rss, args.gate_pct
                    );
                    return ExitCode::FAILURE;
                }
            }
            // v1 baselines carry no RSS field; the throughput gate
            // above remains the only verdict.
            _ => {}
        }
    }
    println!("fleet smoke OK");
    ExitCode::SUCCESS
}

/// `--scenario`: the adversarial shared-bus fault catalog, reported in
/// charging-session terms (see `ecq_bms::adversarial`).
fn scenario_mode(which: &str) -> ExitCode {
    use ecq_bms::adversarial;
    use ecq_fleet::scenario::{catalog, Expected};
    match which {
        "list" => {
            println!("adversarial scenarios ({} in catalog):", catalog().len());
            for s in catalog() {
                println!("  {:<26} {}", s.name, s.summary);
            }
            ExitCode::SUCCESS
        }
        "all" => {
            let mut failed = false;
            for s in catalog() {
                let report = adversarial::run(s.name).expect("catalog name resolves");
                let predicted =
                    matches!(s.expected, Expected::Completes | Expected::CompletesSlower);
                let ok = report.charging_authorized == predicted;
                println!(
                    "  {:<8} {}",
                    if ok { "ok" } else { "DIVERGED" },
                    adversarial::render(&report)
                );
                failed |= !ok;
            }
            if failed {
                eprintln!("scenario outcomes diverged from their predicted results");
                return ExitCode::FAILURE;
            }
            println!(
                "all {} scenarios match their predicted outcomes",
                catalog().len()
            );
            ExitCode::SUCCESS
        }
        name => match adversarial::run(name) {
            Some(report) => {
                println!("{}", adversarial::render(&report));
                let c = report.faults;
                println!(
                    "  injected: {} dropped, {} corrupted, {} duplicated, {} held back, \
                     {} delayed, {} replayed, {} storm frames ({} messages lost)",
                    c.dropped,
                    c.corrupted,
                    c.duplicated,
                    c.held_back,
                    c.delayed,
                    c.replayed,
                    c.storm_frames,
                    c.messages_lost,
                );
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown scenario {name:?}; try --scenario list");
                ExitCode::FAILURE
            }
        },
    }
}

/// The full human-readable sweep (default mode).
fn full_run(args: &Args) -> ExitCode {
    let devices = args.devices;
    let threads = args.threads.iter().copied().max().unwrap_or(1);
    println!(
        "fleet sweep: {devices} devices, {} CA shards, batches of {}\n",
        args.shards, args.batch
    );

    // Interleaved establishment over the simnet transport.
    let (report, wall) = interleaved_run(args, threads);
    println!(
        "{} simnet sweep ({threads} host threads, message-granularity events):",
        if args.mega {
            "streaming (bounded-memory)"
        } else {
            "interleaved"
        }
    );
    println!(
        "  handshakes : {:8.0} hs/s      ({} sessions in {:.2?}; {} wire messages, {} CAN frames)",
        report.handshakes as f64 / wall.max(1e-9),
        report.handshakes,
        std::time::Duration::from_secs_f64(wall),
        report.messages,
        report.can_frames,
    );
    println!(
        "  simulated  : {:8.1} hs/s      (virtual makespan {:.2} s, pairs interleaved)",
        report.handshakes_per_virtual_sec(),
        report.handshake_makespan_us as f64 / 1e6,
    );
    if args.mega {
        // The streaming tier never materializes the fleet, so the
        // atomic-lifecycle and per-board comparisons below (which do)
        // are out of scope for it.
        let peak = peak_rss_bytes();
        if peak > 0 {
            println!(
                "  peak RSS   : {:8.1} MiB      (admission window {})",
                peak as f64 / (1024.0 * 1024.0),
                args.max_inflight,
            );
        }
        return ExitCode::SUCCESS;
    }

    // Legacy atomic lifecycle (enroll + sweep + rekey epochs).
    let mut fleet = FleetCoordinator::new(config(args));
    let t = Instant::now();
    fleet.enroll_all().expect("enrollment");
    let enroll_wall = t.elapsed();
    let t = Instant::now();
    fleet.handshake_sweep().expect("handshakes");
    let handshake_wall = t.elapsed();
    let t = Instant::now();
    fleet.run_epochs(args.epochs).expect("rekey epochs");
    let epoch_wall = t.elapsed();

    let r = fleet.report().clone();
    println!("\nhost wall-clock, atomic lifecycle (real cryptography, all boards interleaved):");
    println!(
        "  enrollment : {:8.0} enroll/s  ({} devices in {:.2?}, {} batches)",
        r.enrolled as f64 / enroll_wall.as_secs_f64(),
        r.enrolled,
        enroll_wall,
        r.enroll_batches,
    );
    println!(
        "  handshakes : {:8.0} hs/s      ({} sessions in {:.2?})",
        r.sessions as f64 / handshake_wall.as_secs_f64(),
        r.sessions,
        handshake_wall,
    );
    println!(
        "  rekeys     : {:8.0} rekey/s   ({} rekeys over {} epochs in {:.2?})",
        r.rekeys as f64 / epoch_wall.as_secs_f64(),
        r.rekeys,
        args.epochs,
        epoch_wall,
    );
    println!(
        "\nsimulated enrollment: {:.1} enroll/s (makespan {:.2} s across {} shards)",
        r.enrollments_per_virtual_sec(),
        r.enroll_makespan_us as f64 / 1e6,
        r.shards,
    );

    // Per-preset sweeps: a homogeneous fleet of each evaluation board.
    println!("\nper-board simulated throughput ({devices} devices, homogeneous fleet):");
    println!(
        "  {:<14}{:>16}{:>16}{:>12}",
        "board", "enroll/s", "handshake/s", "rekeys"
    );
    for preset in DevicePreset::ALL {
        let report = homogeneous_sweep(args, preset);
        println!(
            "  {:<14}{:>16.1}{:>16.2}{:>12}",
            format!("{preset:?}"),
            report.enrollments_per_virtual_sec(),
            report.handshakes_per_virtual_sec(),
            report.rekeys,
        );
    }
    ExitCode::SUCCESS
}

/// Runs the lifecycle on a fleet where every device simulates `preset`
/// (the roster's round-robin is collapsed by overriding the presets).
fn homogeneous_sweep(args: &Args, preset: DevicePreset) -> FleetReport {
    let mut fleet = FleetCoordinator::new(config(args).seed(args.seed ^ preset as u64));
    fleet.set_preset_all(preset);
    fleet.run_lifecycle(args.epochs).expect("lifecycle");
    fleet.report().clone()
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("fleet: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(which) = &args.scenario {
        scenario_mode(which)
    } else if args.smoke {
        smoke(&args)
    } else {
        full_run(&args)
    }
}
