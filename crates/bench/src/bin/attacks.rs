//! Runs the executable §V-D attack experiments and prints a report.

use ecq_analysis::attacks::{forward_secrecy, kci, key_reuse, mitm, TestDeployment};

fn main() {
    println!("Executable security experiments (paper §IV-A / §V-D)\n");

    // T1 — past data exposure.
    {
        let mut d = TestDeployment::new(1001);
        let cap = forward_secrecy::capture_s_ecdsa(&mut d).expect("capture");
        let leaked = d.alice.keys.private;
        let rec = forward_secrecy::s_ecdsa_offline_decrypt(&cap, &leaked, &d.ca.public_key());
        println!(
            "[T1] S-ECDSA transcript + later key leak → decrypts: {}",
            rec.as_deref() == Some(cap.plaintext.as_slice())
        );

        let mut d = TestDeployment::new(1002);
        let cap = forward_secrecy::capture_sts(&mut d).expect("capture");
        let leaked = d.alice.keys.private;
        let rec = forward_secrecy::sts_offline_decrypt_attempt(&cap, &leaked, &d.ca.public_key());
        println!(
            "[T1] STS transcript + later key leak → decrypts: {}",
            rec.as_deref() == Some(cap.plaintext.as_slice())
        );
    }

    // T4 — key data reuse.
    {
        let mut d = TestDeployment::new(1003);
        let r = key_reuse::s_ecdsa_reuse(&mut d, 5).expect("sessions");
        println!(
            "[T4] S-ECDSA: {} sessions → {} distinct keys, {} distinct premasters",
            r.sessions, r.distinct_session_keys, r.distinct_premasters
        );
        let r = key_reuse::sts_reuse(&mut d, 5).expect("sessions");
        println!(
            "[T4] STS:     {} sessions → {} distinct keys, {} distinct premasters",
            r.sessions, r.distinct_session_keys, r.distinct_premasters
        );
    }

    // T2 — MitM.
    {
        let mut d = TestDeployment::new(1004);
        println!(
            "[T2] STS vs rogue-CA certificate: {:?}",
            mitm::sts_rogue_certificate(&mut d)
        );
        let mut d = TestDeployment::new(1005);
        println!(
            "[T2] STS vs ephemeral-point substitution: {:?}",
            mitm::sts_point_substitution(&mut d)
        );
    }

    // KCI.
    {
        let mut d = TestDeployment::new(1006);
        println!(
            "[KCI] SCIANC with victim's leaked key: {:?}",
            kci::scianc_kci(&mut d)
        );
        let mut d = TestDeployment::new(1007);
        println!(
            "[KCI] STS with victim's leaked key:    {:?}",
            kci::sts_kci(&mut d)
        );
    }
}
