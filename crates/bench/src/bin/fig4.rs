//! Regenerates the paper's Fig. 4: comparison of the total KD protocol
//! processing times on the STM32F767 (graphical form of Table I's
//! STM32F767 column).

use ecq_bench::{bar, simulate_table1_cell};
use ecq_devices::DevicePreset;
use ecq_proto::ProtocolKind;

fn main() {
    println!("Fig. 4 — total KD protocol processing time, STM32F767\n");
    let device = DevicePreset::Stm32F767.profile();
    let rows: Vec<(ProtocolKind, f64)> = ProtocolKind::ALL
        .iter()
        .map(|k| (*k, simulate_table1_cell(*k, &device, 10)))
        .collect();
    let max = rows.iter().map(|(_, v)| *v).fold(0.0, f64::max);
    for (kind, value) in &rows {
        println!(
            "{:<16} {:>9.2} ms  {}",
            kind.label(),
            value,
            bar(*value, max, 46)
        );
    }
    let sts = rows
        .iter()
        .find(|(k, _)| *k == ProtocolKind::Sts)
        .unwrap()
        .1;
    let se = rows
        .iter()
        .find(|(k, _)| *k == ProtocolKind::SEcdsa)
        .unwrap()
        .1;
    let opt2 = rows
        .iter()
        .find(|(k, _)| *k == ProtocolKind::StsOptII)
        .unwrap()
        .1;
    println!("\nObservations reproduced from the paper:");
    println!(
        " • STS is the slowest full variant (+{:.1} % over S-ECDSA)",
        (sts / se - 1.0) * 100.0
    );
    println!(" • STS opt. II beats S-ECDSA ({:.2} vs {:.2} ms)", opt2, se);
    println!(" • the non-EC-authentication baselines (SCIANC, PORAMB) are fastest");
}
