//! Loopback load test for the service daemon and the
//! `BENCH_service.json` artifact.
//!
//! Starts an in-process [`ServiceDaemon`] on an ephemeral loopback
//! port, then drives ≥1000 *concurrent* client connections against it
//! — each one enrolls a fresh device and completes a full STS
//! handshake — and reports wall-clock handshakes/sec. STS key
//! agreement is MAC-verified inside the handshake, so any key
//! mismatch surfaces as a failed session; the artifact records the
//! count (the CI gate requires zero).
//!
//! ```sh
//! cargo run --release --bin service_load -- --connections 1000 \
//!     --json BENCH_service.json
//! ```

use ecq_cert::DeviceId;
use ecq_crypto::HmacDrbg;
use ecq_service::{ServiceClient, ServiceConfig, ServiceDaemon, ServiceError};
use ecq_sts::StsVariant;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

#[derive(Default)]
struct Tally {
    established: AtomicU64,
    key_mismatches: AtomicU64,
    failures: AtomicU64,
}

fn run_client(addr: std::net::SocketAddr, index: u64, barrier: &Barrier, tally: &Tally) {
    let mut rng = HmacDrbg::from_seed(0x5E5510AD ^ index);
    // Connect before the barrier so the daemon holds every connection
    // open at once; the measured region is pure protocol traffic.
    let mut client = match ServiceClient::connect_tcp(addr) {
        Ok(client) => client,
        Err(_) => {
            barrier.wait();
            tally.failures.fetch_add(1, Ordering::Relaxed);
            return;
        }
    };
    barrier.wait();
    let outcome = (|| -> Result<(), ServiceError> {
        client.hello(rng.bytes32())?;
        let creds = client.enroll(DeviceId::from_label(&format!("load-{index}")), &mut rng)?;
        let seed_a = rng.bytes32();
        let seed_b = rng.bytes32();
        client.handshake(&creds, StsVariant::Conventional, 0, &seed_a, &seed_b)?;
        Ok(())
    })();
    match outcome {
        Ok(()) => {
            tally.established.fetch_add(1, Ordering::Relaxed);
        }
        Err(ServiceError::Protocol(_)) => {
            // A handshake that ran but failed verification — the
            // closest observable to a key mismatch (STS MACs make a
            // silent mismatch impossible).
            tally.key_mismatches.fetch_add(1, Ordering::Relaxed);
            tally.failures.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {
            tally.failures.fetch_add(1, Ordering::Relaxed);
        }
    }
}

fn main() -> ExitCode {
    let mut connections: u64 = 1000;
    let mut json_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--connections" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => connections = n,
                None => {
                    eprintln!("service_load: --connections needs a number");
                    return ExitCode::from(2);
                }
            },
            "--json" => match it.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("service_load: --json needs a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("service_load: unknown flag {other}");
                return ExitCode::from(2);
            }
        }
    }

    let mut daemon = match ServiceDaemon::start(
        ServiceConfig::tcp("127.0.0.1:0")
            .seed(0xDAE)
            .read_timeout(Duration::from_secs(30)),
    ) {
        Ok(daemon) => daemon,
        Err(error) => {
            eprintln!("service_load: daemon failed to start: {error}");
            return ExitCode::FAILURE;
        }
    };
    let addr = match daemon.addr() {
        ecq_service::ServiceAddr::Tcp(addr) => *addr,
        #[cfg(unix)]
        ecq_service::ServiceAddr::Unix(_) => unreachable!("daemon bound to TCP"),
    };

    let tally = Arc::new(Tally::default());
    // +1: main thread releases the barrier once all clients hold an
    // open connection, and timing starts at that instant.
    let barrier = Arc::new(Barrier::new(connections as usize + 1));
    let mut workers = Vec::with_capacity(connections as usize);
    for index in 0..connections {
        let barrier = Arc::clone(&barrier);
        let tally = Arc::clone(&tally);
        let spawned = std::thread::Builder::new()
            .stack_size(256 * 1024)
            .spawn(move || run_client(addr, index, &barrier, &tally));
        match spawned {
            Ok(handle) => workers.push(handle),
            Err(error) => {
                eprintln!("service_load: spawn failed at {index}: {error}");
                return ExitCode::FAILURE;
            }
        }
    }

    let start = Instant::now();
    barrier.wait();
    for handle in workers {
        let _ = handle.join();
    }
    let elapsed = start.elapsed().as_secs_f64();
    daemon.shutdown();

    let established = tally.established.load(Ordering::Relaxed);
    let key_mismatches = tally.key_mismatches.load(Ordering::Relaxed);
    let failures = tally.failures.load(Ordering::Relaxed);
    let hs_per_sec = if elapsed > 0.0 {
        established as f64 / elapsed
    } else {
        0.0
    };
    let stats = daemon.stats();

    println!(
        "service_load: {connections} concurrent connections, {established} established, \
         {failures} failed, {key_mismatches} key mismatches, {elapsed:.3}s wall, \
         {hs_per_sec:.1} hs/s"
    );
    println!(
        "daemon: connections={} handshakes={} enrollments={} errors={}",
        stats.connections, stats.handshakes, stats.enrollments, stats.errors
    );

    let json = format!(
        "{{\n  \"bench\": \"service_load\",\n  \"connections\": {connections},\n  \
         \"established\": {established},\n  \"failures\": {failures},\n  \
         \"key_mismatches\": {key_mismatches},\n  \"elapsed_s\": {elapsed:.6},\n  \
         \"hs_per_sec\": {hs_per_sec:.3},\n  \"daemon_handshakes\": {},\n  \
         \"daemon_errors\": {}\n}}\n",
        stats.handshakes, stats.errors
    );
    if let Some(path) = json_path {
        if let Err(error) = std::fs::write(&path, &json) {
            eprintln!("service_load: cannot write {path}: {error}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if established != connections || key_mismatches != 0 {
        eprintln!("service_load: FAILED — incomplete or mismatched sessions");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
