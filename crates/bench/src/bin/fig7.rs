//! Regenerates the paper's Fig. 7: the timeline model of the prototype
//! session communication between a BMS and an EVCC (S32K144 pair over
//! CAN-FD) for STS and S-ECDSA.

use ecq_bms::emulator::run_monitoring;
use ecq_bms::BmsScenario;
use ecq_proto::ProtocolKind;

fn main() {
    let scenario = BmsScenario::new(0xF1607);

    println!("Fig. 7 — BMS ↔ EVCC prototype session timelines");
    println!("(two S32K144 ECUs, CAN-FD 0.5/2 Mbit/s, ISO-TP, Fig. 6 app header)\n");

    let sts = scenario
        .run_handshake(ProtocolKind::Sts)
        .expect("STS handshake");
    println!("(A) STS ECQV KD protocol");
    print!("{}", sts.timeline.render());
    println!();

    let se = scenario
        .run_handshake(ProtocolKind::SEcdsa)
        .expect("S-ECDSA handshake");
    println!("(B) S-ECDSA ECQV KD protocol");
    print!("{}", se.timeline.render());

    println!();
    println!(
        "totals: STS {:.3} s vs S-ECDSA {:.3} s → +{:.2} %  (paper: 3.257 s vs 2.677 s → +21.67 %)",
        sts.total_ms / 1000.0,
        se.total_ms / 1000.0,
        (sts.total_ms / se.total_ms - 1.0) * 100.0
    );
    println!(
        "CAN-FD bus time: {:.3} ms total across {} handshake bytes (paper: <1 ms per transfer, negligible)",
        sts.bus_ms, sts.handshake_bytes
    );

    // Step 3 of Fig. 1: the encrypted session in action.
    let report = run_monitoring(sts.bms_key, sts.evcc_key, 14, 10, 0xCE11);
    println!(
        "\npost-handshake monitoring: {} scans, {} B encrypted telemetry, {:.3} ms bus, all frames verified: {}",
        report.scans, report.bytes, report.bus_ms, report.all_verified
    );
}
