//! Primitive-level P-256 benchmark and the `BENCH_p256.json` artifact.
//!
//! Times every hot curve primitive on the specialized field backend
//! and — where one exists — a retired reference implementation of the
//! *same* operation (the generic [`ecq_p256::mont::MontCtx`] engine
//! for field rows, the pre-wNAF 4-bit window walk for
//! `point_mul_vartime`), so the artifact records the optimization
//! speedup live instead of relying on numbers copied from an older
//! commit. CI uploads the JSON next to
//! `BENCH_fleet.json`, tracking the perf trajectory per primitive.
//!
//! ```sh
//! cargo run --release --bin bench_p256 -- --json BENCH_p256.json
//! ```

use ecq_cert::{ca::CertificateAuthority, requester::CertRequester, DeviceId};
use ecq_crypto::HmacDrbg;
use ecq_p256::field::{FieldElement, P_HEX};
use ecq_p256::mont::MontCtx;
use ecq_p256::point::{
    mul_generator_ct, mul_generator_vartime, multi_scalar_mul, AffinePoint, JacobianPoint,
};
use ecq_p256::scalar::{Scalar, N_HEX};
use ecq_p256::u256::U256;
use ecq_p256::{ecdh, ecdsa, keys::KeyPair};
use std::hint::black_box;
use std::process::ExitCode;
use std::time::Instant;

/// One measured row: a primitive, its per-op cost, and (when a generic
/// reference exists) the oracle's cost for the identical operation.
struct Row {
    name: &'static str,
    ns: f64,
    reference_ns: Option<f64>,
}

/// Median-of-reps timing of `f`, batched so per-call overhead washes
/// out. `iters` is calls per batch.
fn time_ns(iters: u32, mut f: impl FnMut()) -> f64 {
    const REPS: usize = 7;
    let mut samples = [0f64; REPS];
    // Warmup batch (also forces lazy tables).
    for _ in 0..iters.max(1) {
        f();
    }
    for sample in &mut samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        *sample = start.elapsed().as_nanos() as f64 / iters as f64;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    samples[REPS / 2]
}

fn rows() -> Vec<Row> {
    let mut rng = HmacDrbg::from_seed(0xB256);
    let p_ctx = MontCtx::new(U256::from_be_hex(P_HEX));
    let n_ctx = MontCtx::new(U256::from_be_hex(N_HEX));

    // Field operands (Montgomery-form values < p on both sides).
    let fa = FieldElement::from_reduced(&U256::from_be_bytes(&rng.bytes32()));
    let fb = FieldElement::from_reduced(&U256::from_be_bytes(&rng.bytes32()));
    let ra = p_ctx.to_mont(&p_ctx.reduce(&U256::from_be_bytes(&rng.bytes32())));
    let rb = p_ctx.to_mont(&p_ctx.reduce(&U256::from_be_bytes(&rng.bytes32())));
    let sa = Scalar::random(&mut rng);
    let na = n_ctx.to_mont(&n_ctx.reduce(&U256::from_be_bytes(&rng.bytes32())));

    let kp = KeyPair::generate(&mut rng);
    let peer = KeyPair::generate(&mut rng);
    let k = Scalar::random(&mut rng);
    let gj = JacobianPoint::from_affine(&AffinePoint::generator());
    let pj = JacobianPoint::from_affine(&peer.public);
    let sig = ecdsa::sign(&kp.private, b"bench message");

    let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
    let req = CertRequester::generate(DeviceId::from_label("dev"), &mut rng);
    let issued = ca.issue(&req.request(), 0, 100, &mut rng).unwrap();

    let mut rows = Vec::new();

    rows.push(Row {
        name: "fe_mul",
        ns: time_ns(20_000, || {
            black_box(black_box(&fa).mul(black_box(&fb)));
        }),
        reference_ns: Some(time_ns(20_000, || {
            black_box(p_ctx.mont_mul(black_box(&ra), black_box(&rb)));
        })),
    });
    rows.push(Row {
        name: "fe_square",
        ns: time_ns(20_000, || {
            black_box(black_box(&fa).square());
        }),
        reference_ns: Some(time_ns(20_000, || {
            black_box(p_ctx.mont_mul(black_box(&ra), black_box(&ra)));
        })),
    });
    rows.push(Row {
        name: "fe_invert",
        ns: time_ns(200, || {
            black_box(black_box(&fa).invert());
        }),
        reference_ns: Some(time_ns(200, || {
            black_box(p_ctx.mont_inv(black_box(&ra)));
        })),
    });
    rows.push(Row {
        name: "fe_sqrt",
        ns: time_ns(200, || {
            black_box(black_box(&fa).sqrt());
        }),
        reference_ns: None,
    });
    rows.push(Row {
        name: "scalar_invert",
        ns: time_ns(200, || {
            black_box(black_box(&sa).invert());
        }),
        reference_ns: Some(time_ns(200, || {
            black_box(n_ctx.mont_inv(black_box(&na)));
        })),
    });
    rows.push(Row {
        name: "point_double",
        ns: time_ns(5_000, || {
            black_box(black_box(&pj).double());
        }),
        reference_ns: None,
    });
    rows.push(Row {
        name: "point_add",
        ns: time_ns(5_000, || {
            black_box(black_box(&pj).add(black_box(&gj)));
        }),
        reference_ns: None,
    });
    rows.push(Row {
        name: "base_mul_ct",
        ns: time_ns(300, || {
            black_box(mul_generator_ct(black_box(&k)));
        }),
        reference_ns: None,
    });
    rows.push(Row {
        name: "base_mul_vartime",
        ns: time_ns(300, || {
            black_box(mul_generator_vartime(black_box(&k)));
        }),
        reference_ns: None,
    });
    rows.push(Row {
        name: "point_mul_ct",
        ns: time_ns(100, || {
            black_box(peer.public.mul_ct(black_box(&k)));
        }),
        reference_ns: None,
    });
    rows.push(Row {
        name: "point_mul_vartime",
        ns: time_ns(100, || {
            black_box(peer.public.mul_vartime(black_box(&k)));
        }),
        // Reference: the retired 4-bit fixed-window walk the width-5
        // wNAF path replaced, normalized to affine like the live row.
        reference_ns: Some(time_ns(100, || {
            black_box(
                JacobianPoint::from_affine(&peer.public)
                    .mul_vartime_window(black_box(&k))
                    .to_affine(),
            );
        })),
    });
    rows.push(Row {
        name: "multi_scalar_mul",
        ns: time_ns(100, || {
            black_box(multi_scalar_mul(
                black_box(&k),
                &AffinePoint::generator(),
                black_box(&sa),
                &peer.public,
            ));
        }),
        reference_ns: None,
    });
    rows.push(Row {
        name: "ecdh",
        ns: time_ns(100, || {
            black_box(ecdh::shared_secret(&kp.private, black_box(&peer.public)).unwrap());
        }),
        reference_ns: None,
    });
    rows.push(Row {
        name: "ecdsa_sign",
        ns: time_ns(100, || {
            black_box(ecdsa::sign(&kp.private, black_box(b"bench message")));
        }),
        reference_ns: None,
    });
    rows.push(Row {
        name: "ecdsa_verify_separate",
        ns: time_ns(100, || {
            black_box(ecdsa::verify_with(
                &kp.public,
                b"bench message",
                &sig,
                ecdsa::VerifyStrategy::SeparateMuls,
            ));
        }),
        reference_ns: None,
    });
    rows.push(Row {
        name: "ecdsa_verify_shamir",
        ns: time_ns(100, || {
            black_box(ecdsa::verify_with(
                &kp.public,
                b"bench message",
                &sig,
                ecdsa::VerifyStrategy::Shamir,
            ));
        }),
        reference_ns: None,
    });
    rows.push(Row {
        name: "ecqv_reconstruct_eq1",
        ns: time_ns(100, || {
            black_box(
                ecq_cert::reconstruct_public_key(black_box(&issued.certificate), &ca.public_key())
                    .unwrap(),
            );
        }),
        reference_ns: None,
    });

    rows
}

fn json(rows: &[Row]) -> String {
    let mut out = String::from("{\n  \"schema\": \"bench-p256-v1\",\n  \"unit\": \"ns_per_op\",\n  \"reference\": \"retired implementation of the same row (generic MontCtx engine, or the pre-wNAF window walk for point_mul_vartime)\",\n  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns\": {:.1}",
            row.name, row.ns
        ));
        if let Some(r) = row.reference_ns {
            out.push_str(&format!(
                ", \"reference_ns\": {:.1}, \"speedup\": {:.2}",
                r,
                r / row.ns.max(1e-9)
            ));
        }
        out.push_str(if i + 1 == rows.len() { "}\n" } else { "},\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() -> ExitCode {
    let mut json_path: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--json" => match it.next() {
                Some(path) => json_path = Some(path),
                None => {
                    eprintln!("bench_p256: missing value for --json");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("bench_p256: unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let rows = rows();
    println!(
        "{:<24}{:>12}{:>16}{:>10}",
        "primitive", "ns/op", "reference ns/op", "speedup"
    );
    for row in &rows {
        match row.reference_ns {
            Some(r) => println!(
                "{:<24}{:>12.1}{:>16.1}{:>9.2}x",
                row.name,
                row.ns,
                r,
                r / row.ns.max(1e-9)
            ),
            None => println!("{:<24}{:>12.1}{:>16}{:>10}", row.name, row.ns, "-", "-"),
        }
    }

    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, json(&rows)) {
            eprintln!("bench_p256: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("\nwrote {path}");
    }
    ExitCode::SUCCESS
}
