//! Regenerates the paper's Table I: execution time (ms) of the KD
//! protocols for ECQV on the four embedded boards, paper vs simulated.

use ecq_bench::simulate_table1_cell;
use ecq_devices::DevicePreset;
use ecq_proto::ProtocolKind;

fn main() {
    const RUNS: usize = 10; // the paper averages ten runs

    println!("Table I — execution time in ms of the KD protocols for ECQV");
    println!("(simulated via the fitted device cost model; paper value in parentheses)\n");

    print!("{:<16}", "Protocol");
    for preset in DevicePreset::ALL {
        print!("{:>26}", preset.profile().name);
    }
    println!();
    println!("{}", "-".repeat(16 + 26 * 4));

    for kind in ProtocolKind::ALL {
        print!("{:<16}", kind.label());
        for preset in DevicePreset::ALL {
            let device = preset.profile();
            let sim = simulate_table1_cell(kind, &device, RUNS);
            let paper = preset.paper_table1(kind);
            print!("{:>14.2} ({:>9.2})", sim, paper);
        }
        println!();
    }

    println!("\nRelative error vs paper (%):");
    print!("{:<16}", "Protocol");
    for preset in DevicePreset::ALL {
        print!("{:>14}", preset.profile().name);
    }
    println!();
    for kind in ProtocolKind::ALL {
        print!("{:<16}", kind.label());
        for preset in DevicePreset::ALL {
            let device = preset.profile();
            let sim = simulate_table1_cell(kind, &device, RUNS);
            let paper = preset.paper_table1(kind);
            print!("{:>+14.2}", (sim - paper) / paper * 100.0);
        }
        println!();
    }

    let stm = DevicePreset::Stm32F767.profile();
    let sts = simulate_table1_cell(ProtocolKind::Sts, &stm, RUNS);
    let se = simulate_table1_cell(ProtocolKind::SEcdsa, &stm, RUNS);
    println!(
        "\nHeadline (STM32F767): STS / S-ECDSA = {:.3} (paper: {:.3})",
        sts / se,
        3162.07 / 2521.77
    );
}
