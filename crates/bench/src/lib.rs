//! Shared harness for the table/figure regeneration binaries.
//!
//! Each binary regenerates one artifact of the paper's evaluation:
//!
//! | binary | artifact |
//! |---|---|
//! | `table1` | Table I — execution time of 7 protocols × 4 boards |
//! | `table2` | Table II — communication steps and bytes |
//! | `table3` | Table III — security matrix |
//! | `fig3` | Fig. 3 — STS per-operation times on the STM32F767 |
//! | `fig4` | Fig. 4 — total KD processing time bars (STM32F767) |
//! | `fig7` | Fig. 7 — BMS↔EVCC prototype timeline |
//! | `fig8` | Fig. 8 — threat-model block diagram |
//! | `ablation` | design-choice ablations (DESIGN.md §7) |
//! | `attacks` | executable §V-D attack experiments |

#![warn(missing_docs)]

use ecq_baselines::{establish_poramb, establish_s_ecdsa, establish_scianc};
use ecq_crypto::HmacDrbg;
use ecq_proto::{Credentials, ProtocolError, ProtocolKind, SessionKey, Transcript};
use ecq_sts::{establish, StsConfig};

/// A reproducible two-device deployment for the harness.
pub fn deployment(seed: u64) -> (Credentials, Credentials, HmacDrbg) {
    use ecq_cert::{ca::CertificateAuthority, DeviceId};
    let mut rng = HmacDrbg::from_seed(seed);
    let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
    let a = Credentials::provision(&ca, DeviceId::from_label("alice"), 0, 1000, &mut rng)
        .expect("provision alice");
    let b = Credentials::provision(&ca, DeviceId::from_label("bob"), 0, 1000, &mut rng)
        .expect("provision bob");
    (a, b, rng)
}

/// Runs one handshake of `kind` and returns the transcript and agreed
/// session key.
///
/// # Errors
///
/// Propagates handshake errors.
pub fn run_protocol(
    kind: ProtocolKind,
    alice: &Credentials,
    bob: &Credentials,
    rng: &mut HmacDrbg,
) -> Result<(Transcript, SessionKey), ProtocolError> {
    match kind {
        ProtocolKind::Sts | ProtocolKind::StsOptI | ProtocolKind::StsOptII => {
            let out = establish(alice, bob, &StsConfig::default(), rng)?;
            Ok((out.transcript, out.initiator_key))
        }
        ProtocolKind::SEcdsa => {
            let out = establish_s_ecdsa(alice, bob, 0, false, rng)?;
            Ok((out.transcript, out.initiator_key))
        }
        ProtocolKind::SEcdsaExt => {
            let out = establish_s_ecdsa(alice, bob, 0, true, rng)?;
            Ok((out.transcript, out.initiator_key))
        }
        ProtocolKind::Scianc => {
            let out = establish_scianc(alice, bob, 0, rng)?;
            Ok((out.transcript, out.initiator_key))
        }
        ProtocolKind::Poramb => {
            let pairwise = rng.bytes32();
            let out = establish_poramb(alice, bob, &pairwise, 0, rng)?;
            Ok((out.transcript, out.initiator_key))
        }
    }
}

/// Simulated Table I cell: protocol time on one device pair, averaged
/// over `runs` independent handshakes (the paper averages ten runs).
pub fn simulate_table1_cell(
    kind: ProtocolKind,
    device: &ecq_devices::DeviceProfile,
    runs: usize,
) -> f64 {
    let (alice, bob, mut rng) = deployment(0x7AB1E1 ^ kind as u64);
    let mut acc = 0.0;
    for _ in 0..runs {
        let (transcript, _) = run_protocol(kind, &alice, &bob, &mut rng).expect("handshake");
        acc += ecq_devices::timing::protocol_pair_time(kind, &transcript, device, device);
    }
    acc / runs as f64
}

/// Renders a simple horizontal ASCII bar.
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let n = ((value / max) * width as f64).round() as usize;
    "█".repeat(n.min(width))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecq_devices::DevicePreset;

    #[test]
    fn all_protocols_run_through_harness() {
        let (a, b, mut rng) = deployment(1);
        for kind in ProtocolKind::ALL {
            let (t, _) = run_protocol(kind, &a, &b, &mut rng).unwrap();
            assert!(t.total_bytes() > 0, "{kind}");
        }
    }

    #[test]
    fn table1_simulation_close_to_paper() {
        // The headline check: every simulated cell within 11 % of the
        // paper's Table I (S-ECDSA/STS rows essentially exact, SCIANC
        // and PORAMB within the documented band).
        for preset in DevicePreset::ALL {
            let device = preset.profile();
            for kind in ProtocolKind::ALL {
                let sim = simulate_table1_cell(kind, &device, 1);
                let paper = preset.paper_table1(kind);
                let rel = (sim - paper).abs() / paper;
                assert!(
                    rel < 0.11,
                    "{preset:?}/{kind}: sim {sim:.2} vs paper {paper:.2} ({:.1} %)",
                    rel * 100.0
                );
            }
        }
    }

    #[test]
    fn table1_ordering_matches_paper() {
        let device = DevicePreset::Stm32F767.profile();
        let t = |k| simulate_table1_cell(k, &device, 1);
        let scianc = t(ProtocolKind::Scianc);
        let poramb = t(ProtocolKind::Poramb);
        let opt2 = t(ProtocolKind::StsOptII);
        let s_ecdsa = t(ProtocolKind::SEcdsa);
        let opt1 = t(ProtocolKind::StsOptI);
        let sts = t(ProtocolKind::Sts);
        assert!(scianc < poramb);
        assert!(poramb < opt2);
        assert!(opt2 < s_ecdsa);
        assert!(s_ecdsa < opt1);
        assert!(opt1 < sts);
        // The headline claim: ~20 % overhead of STS vs S-ECDSA.
        let ratio = sts / s_ecdsa;
        assert!(ratio > 1.15 && ratio < 1.35, "ratio {ratio}");
    }

    #[test]
    fn bar_rendering() {
        assert_eq!(bar(5.0, 10.0, 10), "█████");
        assert_eq!(bar(10.0, 10.0, 4), "████");
        assert_eq!(bar(0.0, 10.0, 4), "");
    }
}
