//! Property-based tests of the ECQV certificate layer: encoding
//! roundtrips over arbitrary metadata, tamper detection, and the
//! reconstruction identity over random deployments.

use ecq_cert::ca::CertificateAuthority;
use ecq_cert::requester::CertRequester;
use ecq_cert::{
    cert_hash, reconstruct_public_key, CertError, DeviceId, ImplicitCert, RevocationList,
};
use ecq_crypto::HmacDrbg;
use ecq_p256::point::mul_generator_vartime;
use ecq_p256::scalar::Scalar;
use proptest::prelude::*;

fn arb_cert() -> impl Strategy<Value = ImplicitCert> {
    (
        any::<u64>(),
        any::<[u8; 16]>(),
        any::<[u8; 16]>(),
        any::<u32>(),
        any::<u32>(),
        1u64..1_000_000,
    )
        .prop_map(|(serial, issuer, subject, from, to, k)| {
            ImplicitCert::new(
                serial,
                DeviceId::from_bytes(issuer),
                DeviceId::from_bytes(subject),
                from.min(to),
                from.max(to),
                &mul_generator_vartime(&Scalar::from_u64(k)),
            )
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn encoding_roundtrips(cert in arb_cert()) {
        let bytes = cert.to_bytes();
        prop_assert_eq!(bytes.len(), 101);
        prop_assert_eq!(ImplicitCert::from_bytes(&bytes).unwrap(), cert);
    }

    #[test]
    fn any_byte_flip_changes_the_hash(cert in arb_cert(), pos in 3usize..101, bit in 0u8..8) {
        // Positions 0..3 (magic+version) are rejected at parse time;
        // any other flip must change e = H_n(Cert) and therefore the
        // implicitly derived key.
        let mut bytes = cert.to_bytes();
        bytes[pos] ^= 1 << bit;
        // Structural rejection (Err) is also fine (e.g. curve id byte).
        if let Ok(tampered) = ImplicitCert::from_bytes(&bytes) {
            prop_assert_ne!(cert_hash(&tampered), cert_hash(&cert));
        }
    }

    #[test]
    fn full_deployment_reconstruction_identity(seed in any::<u64>()) {
        let mut rng = HmacDrbg::from_seed(seed);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let req = CertRequester::generate(DeviceId::from_label("dev"), &mut rng);
        let issued = ca.issue(&req.request(), 0, 100, &mut rng).unwrap();
        let keys = req.reconstruct(&issued, &ca.public_key()).unwrap();
        // Q_U == d_U·G and eq. (1) agrees with the subject's view.
        prop_assert!(keys.is_consistent());
        prop_assert_eq!(
            reconstruct_public_key(&issued.certificate, &ca.public_key()).unwrap(),
            keys.public
        );
    }

    #[test]
    fn issued_keys_are_unlinkable_to_request(seed in any::<u64>()) {
        // Two certificates from the same request secret have unrelated
        // reconstruction points (CA blinding).
        let mut rng = HmacDrbg::from_seed(seed);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let req = CertRequester::generate(DeviceId::from_label("dev"), &mut rng);
        let i1 = ca.issue(&req.request(), 0, 100, &mut rng).unwrap();
        let i2 = ca.issue(&req.request(), 0, 100, &mut rng).unwrap();
        prop_assert_ne!(i1.certificate.point, i2.certificate.point);
        let k1 = req.reconstruct(&i1, &ca.public_key()).unwrap();
        let k2 = req.reconstruct(&i2, &ca.public_key()).unwrap();
        prop_assert_ne!(k1.private, k2.private);
    }

    #[test]
    fn validity_window_boundaries(cert in arb_cert(), t in any::<u32>()) {
        prop_assert_eq!(
            cert.is_valid_at(t),
            cert.valid_from <= t && t <= cert.valid_to
        );
    }

    #[test]
    fn batch_issuance_is_byte_identical_to_sequential(
        seed in any::<u64>(),
        n in 1usize..12,
        valid_from in 0u32..1000,
        span in 1u32..100_000,
    ) {
        // The fleet enrollment path leans on this: issue_batch with a
        // given RNG state must produce exactly the bytes (certificate
        // and recon_private) of n sequential issue() calls.
        let mut rng = HmacDrbg::from_seed(seed);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let requests: Vec<_> = (0..n)
            .map(|i| {
                CertRequester::generate(DeviceId::from_label(&format!("d{i}")), &mut rng)
                    .request()
            })
            .collect();
        let valid_to = valid_from + span;

        let mut rng_batch = rng.clone();
        let mut rng_seq = rng;
        let batch = ca
            .issue_batch(&requests, valid_from, valid_to, &mut rng_batch)
            .unwrap();
        prop_assert_eq!(batch.len(), n);
        for (request, issued) in requests.iter().zip(&batch) {
            let seq = ca.issue(request, valid_from, valid_to, &mut rng_seq).unwrap();
            prop_assert_eq!(issued.certificate.to_bytes(), seq.certificate.to_bytes());
            prop_assert_eq!(
                issued.recon_private.to_be_bytes(),
                seq.recon_private.to_be_bytes()
            );
        }
        // Both paths consumed the identical RNG stream.
        prop_assert_eq!(rng_batch.next_u64(), rng_seq.next_u64());
    }

    #[test]
    fn revocation_list_roundtrips(serials in proptest::collection::vec(any::<u64>(), 0..24)) {
        let unique: std::collections::BTreeSet<u64> = serials.iter().copied().collect();
        let mut rl = RevocationList::new();
        for &s in &unique {
            prop_assert!(rl.revoke(s));
        }
        let bytes = rl.to_bytes();
        prop_assert_eq!(bytes.len(), 11 + 8 * unique.len());
        let parsed = RevocationList::from_bytes(&bytes).unwrap();
        prop_assert_eq!(&parsed, &rl);
        prop_assert_eq!(parsed.len(), unique.len());
        for &s in &unique {
            prop_assert!(parsed.is_revoked(s));
        }
    }

    #[test]
    fn revocation_list_rejects_duplicated_serials(
        serials in proptest::collection::vec(any::<u64>(), 1..12),
        dup_pick in any::<u64>(),
    ) {
        // Append a repeat of an existing serial and patch the count:
        // parsing must fail rather than silently deduplicate, so len()
        // can never disagree with the wire count.
        let unique: Vec<u64> = serials
            .iter()
            .copied()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut rl = RevocationList::new();
        for &s in &unique {
            rl.revoke(s);
        }
        let mut bytes = rl.to_bytes();
        let dup = unique[(dup_pick % unique.len() as u64) as usize];
        bytes.extend_from_slice(&dup.to_be_bytes());
        let count = (unique.len() as u32 + 1).to_be_bytes();
        bytes[7..11].copy_from_slice(&count);
        prop_assert_eq!(
            RevocationList::from_bytes(&bytes).unwrap_err(),
            CertError::InvalidEncoding
        );
    }
}
