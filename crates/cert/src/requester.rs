//! The certificate requester (device side of SEC4).

use crate::ca::IssuedCert;
use crate::id::DeviceId;
use crate::{cert_hash, reconstruct_public_key, reconstruct_public_key_jacobian, CertError};
use ecq_crypto::zeroize::Zeroize;
use ecq_crypto::HmacDrbg;
use ecq_p256::keys::KeyPair;
use ecq_p256::point::{
    batch_normalize, mul_generator_ct, mul_generator_ct_jacobian, AffinePoint, JacobianPoint,
};
use ecq_p256::scalar::Scalar;

/// The public part of a certificate request: `(U, R_U)`.
#[derive(Clone, Copy, Debug)]
pub struct CertRequest {
    /// The requesting device's identity.
    pub subject: DeviceId,
    /// The request point `R_U = k_U · G`.
    pub point: AffinePoint,
}

/// Device-side state across the request/issue round trip. Holds the
/// secret `k_U` needed to reconstruct the private key after issuance.
#[derive(Clone, Debug)]
pub struct CertRequester {
    subject: DeviceId,
    k_u: Scalar,
    r_u: AffinePoint,
}

impl CertRequester {
    /// Generates a fresh request secret `k_U` and point `R_U`.
    pub fn generate(subject: DeviceId, rng: &mut HmacDrbg) -> Self {
        let k_u = Scalar::random(rng);
        CertRequester {
            subject,
            k_u,
            r_u: mul_generator_ct(&k_u),
        }
    }

    /// The public request to send to the CA.
    pub fn request(&self) -> CertRequest {
        CertRequest {
            subject: self.subject,
            point: self.r_u,
        }
    }

    /// Reconstructs the certified key pair from the CA's response
    /// (SEC4 §2.5 "Cert PK Extraction" + "Cert Reception"):
    ///
    /// * `e = H_n(Cert_U)`
    /// * `d_U = e·k_U + r mod n`
    /// * `Q_U = e·P_U + Q_CA`
    ///
    /// and validates `Q_U == d_U·G` before accepting.
    ///
    /// # Errors
    ///
    /// * [`CertError::InvalidEncoding`] when the certificate names a
    ///   different subject;
    /// * [`CertError::InvalidPoint`] when the embedded point is bad;
    /// * [`CertError::ReconstructionMismatch`] when the possession check
    ///   fails (wrong CA key, corrupted `r`, tampered certificate).
    pub fn reconstruct(
        &self,
        issued: &IssuedCert,
        ca_public: &AffinePoint,
    ) -> Result<KeyPair, CertError> {
        if issued.certificate.subject != self.subject {
            return Err(CertError::InvalidEncoding);
        }
        let e = cert_hash(&issued.certificate);
        let d_u = e.mul(&self.k_u).add(&issued.recon_private);
        if d_u.is_zero() {
            return Err(CertError::ReconstructionMismatch);
        }
        let q_u = reconstruct_public_key(&issued.certificate, ca_public)?;
        // d_U is the reconstructed private key: possession check on the
        // ct path, compared in the projective equivalence class so the
        // check costs no second field inversion.
        if mul_generator_ct_jacobian(&d_u) != JacobianPoint::from_affine(&q_u) {
            return Err(CertError::ReconstructionMismatch);
        }
        Ok(KeyPair {
            private: d_u,
            public: q_u,
        })
    }

    /// Batch [`Self::reconstruct`]: the whole enrollment batch shares
    /// one field inversion for the final affine normalization of the
    /// eq. (1) outputs (Montgomery's trick, the device-side mirror of
    /// [`crate::ca::CertificateAuthority::issue_batch`]'s amortized
    /// issuance), and every possession check compares in the projective
    /// equivalence class instead of normalizing. Results are
    /// byte-identical to calling [`Self::reconstruct`] per device.
    ///
    /// `requesters` and `issued` must be index-aligned, as produced by
    /// requesting in order and issuing with `issue_batch`.
    ///
    /// # Errors
    ///
    /// The first per-device error in index order, with the same
    /// classification as [`Self::reconstruct`];
    /// [`CertError::InvalidEncoding`] when the slices are not the same
    /// length.
    pub fn reconstruct_batch(
        requesters: &[CertRequester],
        issued: &[IssuedCert],
        ca_public: &AffinePoint,
    ) -> Result<Vec<KeyPair>, CertError> {
        if requesters.len() != issued.len() {
            return Err(CertError::InvalidEncoding);
        }
        let mut privates = Vec::with_capacity(requesters.len());
        let mut publics = Vec::with_capacity(requesters.len());
        for (req, cert) in requesters.iter().zip(issued) {
            if cert.certificate.subject != req.subject {
                return Err(CertError::InvalidEncoding);
            }
            let e = cert_hash(&cert.certificate);
            let d_u = e.mul(&req.k_u).add(&cert.recon_private);
            if d_u.is_zero() {
                return Err(CertError::ReconstructionMismatch);
            }
            let q_u = reconstruct_public_key_jacobian(&cert.certificate, ca_public)?;
            if mul_generator_ct_jacobian(&d_u) != q_u {
                return Err(CertError::ReconstructionMismatch);
            }
            privates.push(d_u);
            publics.push(q_u);
        }
        let publics = batch_normalize(&publics);
        privates
            .into_iter()
            .zip(publics)
            .map(|(private, public)| {
                // Group-law outputs of valid inputs are always on the
                // curve; the check mirrors the single-device path's
                // defense in depth against arithmetic faults.
                if public.infinity || !public.is_on_curve() {
                    return Err(CertError::InvalidPoint);
                }
                Ok(KeyPair { private, public })
            })
            .collect()
    }
}

impl Drop for CertRequester {
    /// Wipes the request secret `k_U`: together with the wire-visible
    /// `r` it determines the reconstructed private key.
    fn drop(&mut self) {
        self.k_u.zeroize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;

    #[test]
    fn full_flow_possession_check_passes() {
        let mut rng = HmacDrbg::from_seed(71);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let req = CertRequester::generate(DeviceId::from_label("node"), &mut rng);
        let issued = ca.issue(&req.request(), 0, 100, &mut rng).unwrap();
        let kp = req.reconstruct(&issued, &ca.public_key()).unwrap();
        assert!(kp.is_consistent());
    }

    #[test]
    fn tampered_certificate_fails_reconstruction() {
        let mut rng = HmacDrbg::from_seed(72);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let req = CertRequester::generate(DeviceId::from_label("node"), &mut rng);
        let mut issued = ca.issue(&req.request(), 0, 100, &mut rng).unwrap();
        issued.certificate.extensions[0] ^= 1; // any bit flip
        assert_eq!(
            req.reconstruct(&issued, &ca.public_key()).unwrap_err(),
            CertError::ReconstructionMismatch
        );
    }

    #[test]
    fn tampered_recon_data_fails() {
        let mut rng = HmacDrbg::from_seed(73);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let req = CertRequester::generate(DeviceId::from_label("node"), &mut rng);
        let mut issued = ca.issue(&req.request(), 0, 100, &mut rng).unwrap();
        issued.recon_private = issued.recon_private.add(&Scalar::one());
        assert_eq!(
            req.reconstruct(&issued, &ca.public_key()).unwrap_err(),
            CertError::ReconstructionMismatch
        );
    }

    #[test]
    fn subject_mismatch_rejected() {
        let mut rng = HmacDrbg::from_seed(74);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let alice = CertRequester::generate(DeviceId::from_label("alice"), &mut rng);
        let bob = CertRequester::generate(DeviceId::from_label("bob"), &mut rng);
        let issued = ca.issue(&alice.request(), 0, 100, &mut rng).unwrap();
        assert_eq!(
            bob.reconstruct(&issued, &ca.public_key()).unwrap_err(),
            CertError::InvalidEncoding
        );
    }

    #[test]
    fn batch_reconstruct_matches_sequential() {
        let mut rng = HmacDrbg::from_seed(76);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let requesters: Vec<CertRequester> = (0..7)
            .map(|i| CertRequester::generate(DeviceId::from_label(&format!("node-{i}")), &mut rng))
            .collect();
        let requests: Vec<_> = requesters.iter().map(|r| r.request()).collect();
        let issued = ca.issue_batch(&requests, 0, 100, &mut rng).unwrap();
        let batch =
            CertRequester::reconstruct_batch(&requesters, &issued, &ca.public_key()).unwrap();
        assert_eq!(batch.len(), 7);
        for ((req, cert), kp) in requesters.iter().zip(&issued).zip(&batch) {
            let sequential = req.reconstruct(cert, &ca.public_key()).unwrap();
            assert_eq!(kp.private, sequential.private);
            assert_eq!(kp.public, sequential.public);
            assert!(kp.is_consistent());
        }
    }

    #[test]
    fn batch_reconstruct_propagates_first_error() {
        let mut rng = HmacDrbg::from_seed(77);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let requesters: Vec<CertRequester> = (0..4)
            .map(|i| CertRequester::generate(DeviceId::from_label(&format!("node-{i}")), &mut rng))
            .collect();
        let requests: Vec<_> = requesters.iter().map(|r| r.request()).collect();
        let mut issued = ca.issue_batch(&requests, 0, 100, &mut rng).unwrap();
        issued[2].recon_private = issued[2].recon_private.add(&Scalar::one());
        assert_eq!(
            CertRequester::reconstruct_batch(&requesters, &issued, &ca.public_key()).unwrap_err(),
            CertError::ReconstructionMismatch
        );
        // Length mismatch fails closed before any work.
        assert_eq!(
            CertRequester::reconstruct_batch(&requesters, &issued[..3], &ca.public_key())
                .unwrap_err(),
            CertError::InvalidEncoding
        );
        // Swapped certificates surface the subject mismatch.
        issued.swap(0, 1);
        assert_eq!(
            CertRequester::reconstruct_batch(&requesters, &issued, &ca.public_key()).unwrap_err(),
            CertError::InvalidEncoding
        );
    }

    #[test]
    fn distinct_requests_distinct_keys() {
        let mut rng = HmacDrbg::from_seed(75);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let req = CertRequester::generate(DeviceId::from_label("node"), &mut rng);
        let i1 = ca.issue(&req.request(), 0, 100, &mut rng).unwrap();
        let i2 = ca.issue(&req.request(), 0, 100, &mut rng).unwrap();
        let k1 = req.reconstruct(&i1, &ca.public_key()).unwrap();
        let k2 = req.reconstruct(&i2, &ca.public_key()).unwrap();
        // Same request secret, but fresh CA blinding ⇒ different keys.
        assert_ne!(k1.private, k2.private);
        assert_ne!(k1.public, k2.public);
    }
}
