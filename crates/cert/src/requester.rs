//! The certificate requester (device side of SEC4).

use crate::ca::IssuedCert;
use crate::id::DeviceId;
use crate::{cert_hash, reconstruct_public_key, CertError};
use ecq_crypto::zeroize::Zeroize;
use ecq_crypto::HmacDrbg;
use ecq_p256::keys::KeyPair;
use ecq_p256::point::{mul_generator_ct, AffinePoint};
use ecq_p256::scalar::Scalar;

/// The public part of a certificate request: `(U, R_U)`.
#[derive(Clone, Copy, Debug)]
pub struct CertRequest {
    /// The requesting device's identity.
    pub subject: DeviceId,
    /// The request point `R_U = k_U · G`.
    pub point: AffinePoint,
}

/// Device-side state across the request/issue round trip. Holds the
/// secret `k_U` needed to reconstruct the private key after issuance.
#[derive(Clone, Debug)]
pub struct CertRequester {
    subject: DeviceId,
    k_u: Scalar,
    r_u: AffinePoint,
}

impl CertRequester {
    /// Generates a fresh request secret `k_U` and point `R_U`.
    pub fn generate(subject: DeviceId, rng: &mut HmacDrbg) -> Self {
        let k_u = Scalar::random(rng);
        CertRequester {
            subject,
            k_u,
            r_u: mul_generator_ct(&k_u),
        }
    }

    /// The public request to send to the CA.
    pub fn request(&self) -> CertRequest {
        CertRequest {
            subject: self.subject,
            point: self.r_u,
        }
    }

    /// Reconstructs the certified key pair from the CA's response
    /// (SEC4 §2.5 "Cert PK Extraction" + "Cert Reception"):
    ///
    /// * `e = H_n(Cert_U)`
    /// * `d_U = e·k_U + r mod n`
    /// * `Q_U = e·P_U + Q_CA`
    ///
    /// and validates `Q_U == d_U·G` before accepting.
    ///
    /// # Errors
    ///
    /// * [`CertError::InvalidEncoding`] when the certificate names a
    ///   different subject;
    /// * [`CertError::InvalidPoint`] when the embedded point is bad;
    /// * [`CertError::ReconstructionMismatch`] when the possession check
    ///   fails (wrong CA key, corrupted `r`, tampered certificate).
    pub fn reconstruct(
        &self,
        issued: &IssuedCert,
        ca_public: &AffinePoint,
    ) -> Result<KeyPair, CertError> {
        if issued.certificate.subject != self.subject {
            return Err(CertError::InvalidEncoding);
        }
        let e = cert_hash(&issued.certificate);
        let d_u = e.mul(&self.k_u).add(&issued.recon_private);
        if d_u.is_zero() {
            return Err(CertError::ReconstructionMismatch);
        }
        let q_u = reconstruct_public_key(&issued.certificate, ca_public)?;
        // d_U is the reconstructed private key: possession check on ct.
        if mul_generator_ct(&d_u) != q_u {
            return Err(CertError::ReconstructionMismatch);
        }
        Ok(KeyPair {
            private: d_u,
            public: q_u,
        })
    }
}

impl Drop for CertRequester {
    /// Wipes the request secret `k_U`: together with the wire-visible
    /// `r` it determines the reconstructed private key.
    fn drop(&mut self) {
        self.k_u.zeroize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ca::CertificateAuthority;

    #[test]
    fn full_flow_possession_check_passes() {
        let mut rng = HmacDrbg::from_seed(71);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let req = CertRequester::generate(DeviceId::from_label("node"), &mut rng);
        let issued = ca.issue(&req.request(), 0, 100, &mut rng).unwrap();
        let kp = req.reconstruct(&issued, &ca.public_key()).unwrap();
        assert!(kp.is_consistent());
    }

    #[test]
    fn tampered_certificate_fails_reconstruction() {
        let mut rng = HmacDrbg::from_seed(72);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let req = CertRequester::generate(DeviceId::from_label("node"), &mut rng);
        let mut issued = ca.issue(&req.request(), 0, 100, &mut rng).unwrap();
        issued.certificate.extensions[0] ^= 1; // any bit flip
        assert_eq!(
            req.reconstruct(&issued, &ca.public_key()).unwrap_err(),
            CertError::ReconstructionMismatch
        );
    }

    #[test]
    fn tampered_recon_data_fails() {
        let mut rng = HmacDrbg::from_seed(73);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let req = CertRequester::generate(DeviceId::from_label("node"), &mut rng);
        let mut issued = ca.issue(&req.request(), 0, 100, &mut rng).unwrap();
        issued.recon_private = issued.recon_private.add(&Scalar::one());
        assert_eq!(
            req.reconstruct(&issued, &ca.public_key()).unwrap_err(),
            CertError::ReconstructionMismatch
        );
    }

    #[test]
    fn subject_mismatch_rejected() {
        let mut rng = HmacDrbg::from_seed(74);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let alice = CertRequester::generate(DeviceId::from_label("alice"), &mut rng);
        let bob = CertRequester::generate(DeviceId::from_label("bob"), &mut rng);
        let issued = ca.issue(&alice.request(), 0, 100, &mut rng).unwrap();
        assert_eq!(
            bob.reconstruct(&issued, &ca.public_key()).unwrap_err(),
            CertError::InvalidEncoding
        );
    }

    #[test]
    fn distinct_requests_distinct_keys() {
        let mut rng = HmacDrbg::from_seed(75);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let req = CertRequester::generate(DeviceId::from_label("node"), &mut rng);
        let i1 = ca.issue(&req.request(), 0, 100, &mut rng).unwrap();
        let i2 = ca.issue(&req.request(), 0, 100, &mut rng).unwrap();
        let k1 = req.reconstruct(&i1, &ca.public_key()).unwrap();
        let k2 = req.reconstruct(&i2, &ca.public_key()).unwrap();
        // Same request secret, but fresh CA blinding ⇒ different keys.
        assert_ne!(k1.private, k2.private);
        assert_ne!(k1.public, k2.public);
    }
}
