//! SEC4 ECQV implicit certificates.
//!
//! Implements the Elliptic Curve Qu–Vanstone implicit certificate
//! scheme (Certicom SEC4) that the paper's whole architecture rests on:
//!
//! 1. a device generates a request point `R_U = k_U·G`
//!    ([`requester::CertRequester`]);
//! 2. the CA blinds it (`P_U = R_U + k·G`), embeds `P_U` in a compact
//!    101-byte certificate, and returns the private-key reconstruction
//!    data `r = e·k + d_CA mod n` ([`ca::CertificateAuthority`]);
//! 3. the device reconstructs its key pair
//!    (`d_U = e·k_U + r`, `Q_U = e·P_U + Q_CA`);
//! 4. any peer that knows the CA public key can *implicitly* derive
//!    `Q_U = Hash(Cert_U)·Decode(Cert_U) + Q_CA` — the paper's eq. (1)
//!    ([`reconstruct_public_key`]).
//!
//! There is no signature on the certificate: authenticity is implied by
//! the fact that only the legitimate subject can know the private key
//! matching the derived public key — which is exactly why the session
//! protocols must prove possession (Algorithms 1–2 of the paper).
//!
//! # Example
//!
//! ```
//! use ecq_cert::{ca::CertificateAuthority, requester::CertRequester, DeviceId};
//! use ecq_cert::reconstruct_public_key;
//! use ecq_crypto::HmacDrbg;
//! use ecq_p256::point::mul_generator_ct;
//!
//! let mut rng = HmacDrbg::from_seed(7);
//! let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
//!
//! let req = CertRequester::generate(DeviceId::from_label("alice"), &mut rng);
//! let issued = ca.issue(&req.request(), 0, 3600, &mut rng).unwrap();
//! let keys = req.reconstruct(&issued, &ca.public_key()).unwrap();
//!
//! // Implicit derivation by a third party matches the subject's view.
//! let derived = reconstruct_public_key(&issued.certificate, &ca.public_key()).unwrap();
//! assert_eq!(derived, keys.public);
//! assert_eq!(mul_generator_ct(&keys.private), keys.public);
//! ```

#![deny(missing_docs)]

pub mod ca;
pub mod certificate;
pub mod id;
pub mod requester;
pub mod revocation;

pub use certificate::{ImplicitCert, CERT_LEN};
pub use id::DeviceId;
pub use revocation::RevocationList;

use ecq_p256::point::AffinePoint;
use ecq_p256::scalar::Scalar;
use ecq_p256::CurveError;

/// Errors arising in certificate issuance and reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertError {
    /// A certificate encoding was malformed.
    InvalidEncoding,
    /// The embedded reconstruction point was invalid.
    InvalidPoint,
    /// Key reconstruction produced an inconsistent key pair.
    ReconstructionMismatch,
    /// The certificate is outside its validity window.
    Expired,
    /// The request point was invalid.
    InvalidRequest,
    /// The certificate's serial appears on the revocation list.
    Revoked,
}

impl core::fmt::Display for CertError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CertError::InvalidEncoding => write!(f, "malformed certificate encoding"),
            CertError::InvalidPoint => write!(f, "invalid reconstruction point"),
            CertError::ReconstructionMismatch => {
                write!(f, "reconstructed key pair is inconsistent")
            }
            CertError::Expired => write!(f, "certificate outside validity window"),
            CertError::InvalidRequest => write!(f, "invalid certificate request"),
            CertError::Revoked => write!(f, "certificate serial is revoked"),
        }
    }
}

impl std::error::Error for CertError {}

impl From<CurveError> for CertError {
    fn from(_: CurveError) -> Self {
        CertError::InvalidPoint
    }
}

/// Computes the certificate hash `e = H_n(Cert_U)` used by both the CA
/// and every reconstructing party.
pub fn cert_hash(cert: &ImplicitCert) -> Scalar {
    Scalar::from_be_bytes_reduced(&ecq_crypto::sha256::sha256(&cert.to_bytes()))
}

/// The paper's eq. (1): `Q_X = Hash(Cert_X) · Decode(Cert_X) + Q_CA`.
///
/// Derives the subject's public key from its implicit certificate and
/// the CA public key. This is the operation the device cost model bills
/// as a "public-key reconstruction" (part of STS Op2).
///
/// # Errors
///
/// [`CertError::InvalidPoint`] when the certificate's embedded point or
/// the resulting public key is invalid (e.g. the point at infinity).
pub fn reconstruct_public_key(
    cert: &ImplicitCert,
    ca_public: &AffinePoint,
) -> Result<AffinePoint, CertError> {
    let e = cert_hash(cert);
    let p_u = cert.reconstruction_point()?;
    // Everything here is public (certificate bytes and CA key), so the
    // faster vartime path is fine. The Straus double-scalar walk folds
    // the `+ Q_CA` term into the same ladder as `e·P_U`, saving the
    // separate affine addition (and its field inversion).
    let q = ecq_p256::point::multi_scalar_mul(&e, &p_u, &Scalar::one(), ca_public);
    if q.infinity || !q.is_on_curve() {
        return Err(CertError::InvalidPoint);
    }
    Ok(q)
}

/// [`reconstruct_public_key`] without the final affine normalization:
/// the same eq. (1) ladder, left in Jacobian coordinates so batch
/// verifiers ([`requester::CertRequester::reconstruct_batch`]) can
/// amortize the inversion across a whole enrollment batch with
/// [`ecq_p256::point::batch_normalize`]. The curve-equation check of
/// the affine path runs after normalization, on the caller's side.
///
/// # Errors
///
/// [`CertError::InvalidPoint`] when the certificate's embedded point
/// is invalid or the derived key is the point at infinity.
pub fn reconstruct_public_key_jacobian(
    cert: &ImplicitCert,
    ca_public: &AffinePoint,
) -> Result<ecq_p256::point::JacobianPoint, CertError> {
    let e = cert_hash(cert);
    let p_u = cert.reconstruction_point()?;
    let q = ecq_p256::point::multi_scalar_mul_jacobian(&e, &p_u, &Scalar::one(), ca_public);
    if q.is_identity() {
        return Err(CertError::InvalidPoint);
    }
    Ok(q)
}
