//! Device identifiers.
//!
//! The paper's Table II accounts IDs at 16 bytes; every protocol message
//! that names a party carries a [`DeviceId`].

/// Length of a device identifier in bytes (per the paper's overhead
/// accounting).
pub const ID_LEN: usize = 16;

/// A 16-byte device identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct DeviceId([u8; ID_LEN]);

impl core::fmt::Debug for DeviceId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "DeviceId({self})")
    }
}

impl core::fmt::Display for DeviceId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Render printable label prefixes directly, else hex.
        let trimmed: Vec<u8> = self.0.iter().copied().take_while(|&b| b != 0).collect();
        if !trimmed.is_empty() && trimmed.iter().all(|b| b.is_ascii_graphic()) {
            write!(f, "{}", String::from_utf8_lossy(&trimmed))
        } else {
            for b in &self.0 {
                write!(f, "{b:02x}")?;
            }
            Ok(())
        }
    }
}

impl DeviceId {
    /// Constructs from raw bytes.
    pub const fn from_bytes(bytes: [u8; ID_LEN]) -> Self {
        DeviceId(bytes)
    }

    /// Constructs from an ASCII label, zero-padded or truncated to
    /// 16 bytes. Convenient for tests and examples
    /// (`DeviceId::from_label("BMS")`).
    pub fn from_label(label: &str) -> Self {
        let mut bytes = [0u8; ID_LEN];
        let src = label.as_bytes();
        let n = src.len().min(ID_LEN);
        bytes[..n].copy_from_slice(&src[..n]);
        DeviceId(bytes)
    }

    /// Returns the raw bytes.
    pub const fn as_bytes(&self) -> &[u8; ID_LEN] {
        &self.0
    }
}

impl From<[u8; ID_LEN]> for DeviceId {
    fn from(bytes: [u8; ID_LEN]) -> Self {
        DeviceId(bytes)
    }
}

impl AsRef<[u8]> for DeviceId {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_roundtrip() {
        let id = DeviceId::from_label("alice");
        assert_eq!(&id.as_bytes()[..5], b"alice");
        assert_eq!(id.as_bytes()[5], 0);
        assert_eq!(id.to_string(), "alice");
    }

    #[test]
    fn long_label_truncates() {
        let id = DeviceId::from_label("a-very-long-device-name-here");
        assert_eq!(id.as_bytes(), b"a-very-long-devi");
    }

    #[test]
    fn binary_id_displays_hex() {
        let id = DeviceId::from_bytes([0xde, 0xad, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);
        assert!(id.to_string().starts_with("dead"));
    }

    #[test]
    fn ids_are_ordered_and_hashable() {
        use std::collections::HashSet;
        let a = DeviceId::from_label("a");
        let b = DeviceId::from_label("b");
        assert!(a < b);
        let set: HashSet<DeviceId> = [a, b, a].into_iter().collect();
        assert_eq!(set.len(), 2);
    }
}
