//! The certificate authority (the "Central Authority" of the paper's
//! Fig. 1, played by the Raspberry-Pi gateway in the prototype).

use crate::certificate::ImplicitCert;
use crate::id::DeviceId;
use crate::requester::CertRequest;
use crate::{cert_hash, CertError};
use ecq_crypto::HmacDrbg;
use ecq_p256::keys::KeyPair;
use ecq_p256::point::{mul_generator, AffinePoint};
use ecq_p256::scalar::Scalar;

/// The CA's response to a certificate request: the implicit certificate
/// plus the private-key reconstruction data `r`.
#[derive(Clone, Copy, Debug)]
pub struct IssuedCert {
    /// The implicit certificate (public; 101 bytes on the wire).
    pub certificate: ImplicitCert,
    /// Private-key reconstruction data `r = e·k + d_CA mod n`
    /// (confidential to the subject; sent over the provisioning
    /// channel of deployment phase 1).
    pub recon_private: Scalar,
}

/// An ECQV certificate authority.
#[derive(Clone, Debug)]
pub struct CertificateAuthority {
    id: DeviceId,
    keys: KeyPair,
    next_serial: u64,
}

impl CertificateAuthority {
    /// Creates a CA with a fresh key pair.
    pub fn new(id: DeviceId, rng: &mut HmacDrbg) -> Self {
        CertificateAuthority {
            id,
            keys: KeyPair::generate(rng),
            next_serial: 1,
        }
    }

    /// Creates a CA from an existing key pair (for reproducible tests).
    pub fn with_keys(id: DeviceId, keys: KeyPair) -> Self {
        CertificateAuthority {
            id,
            keys,
            next_serial: 1,
        }
    }

    /// The CA identity.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The CA public key `Q_CA` every device must be provisioned with.
    pub fn public_key(&self) -> AffinePoint {
        self.keys.public
    }

    /// Issues an implicit certificate for `request` (SEC4 §2.4 "Cert
    /// Generate"):
    ///
    /// 1. sample `k ∈ [1, n−1]`,
    /// 2. `P_U = R_U + k·G` — the public reconstruction point,
    /// 3. build `Cert_U` embedding `P_U`,
    /// 4. `e = H_n(Cert_U)`,
    /// 5. `r = e·k + d_CA mod n` — private reconstruction data.
    ///
    /// This non-mutating variant draws a random 64-bit serial (unique
    /// with overwhelming probability), so serial-based revocation
    /// distinguishes certificates even without the stateful counter of
    /// [`Self::issue_next`].
    ///
    /// # Errors
    ///
    /// [`CertError::InvalidRequest`] when the request point is off-curve
    /// or the identity, or when the blinded point degenerates.
    pub fn issue(
        &self,
        request: &CertRequest,
        valid_from: u32,
        valid_to: u32,
        rng: &mut HmacDrbg,
    ) -> Result<IssuedCert, CertError> {
        let serial = rng.next_u64();
        self.issue_with_serial(request, serial, valid_from, valid_to, rng)
    }

    /// Issues with an explicit serial (the mutable-counter variant is a
    /// convenience; gateways track serials themselves).
    pub fn issue_with_serial(
        &self,
        request: &CertRequest,
        serial: u64,
        valid_from: u32,
        valid_to: u32,
        rng: &mut HmacDrbg,
    ) -> Result<IssuedCert, CertError> {
        if request.point.infinity || !request.point.is_on_curve() {
            return Err(CertError::InvalidRequest);
        }
        loop {
            let k = Scalar::random(rng);
            let p_u = request.point.add(&mul_generator(&k));
            if p_u.infinity {
                continue; // R_U = -kG; resample
            }
            let certificate =
                ImplicitCert::new(serial, self.id, request.subject, valid_from, valid_to, &p_u);
            let e = cert_hash(&certificate);
            if e.is_zero() {
                continue;
            }
            let recon_private = e.mul(&k).add(&self.keys.private);
            return Ok(IssuedCert {
                certificate,
                recon_private,
            });
        }
    }

    /// Issues a certificate and advances the internal serial counter.
    pub fn issue_next(
        &mut self,
        request: &CertRequest,
        valid_from: u32,
        valid_to: u32,
        rng: &mut HmacDrbg,
    ) -> Result<IssuedCert, CertError> {
        let serial = self.next_serial;
        let issued = self.issue_with_serial(request, serial, valid_from, valid_to, rng)?;
        self.next_serial += 1;
        Ok(issued)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconstruct_public_key;
    use crate::requester::CertRequester;
    use ecq_p256::field::FieldElement;

    #[test]
    fn issue_and_reconstruct() {
        let mut rng = HmacDrbg::from_seed(61);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let requester = CertRequester::generate(DeviceId::from_label("dev1"), &mut rng);
        let issued = ca.issue(&requester.request(), 0, 1000, &mut rng).unwrap();

        let keys = requester.reconstruct(&issued, &ca.public_key()).unwrap();
        assert!(keys.is_consistent());
        assert_eq!(
            reconstruct_public_key(&issued.certificate, &ca.public_key()).unwrap(),
            keys.public
        );
    }

    #[test]
    fn serial_advances() {
        let mut rng = HmacDrbg::from_seed(62);
        let mut ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let r = CertRequester::generate(DeviceId::from_label("dev"), &mut rng);
        let c1 = ca.issue_next(&r.request(), 0, 10, &mut rng).unwrap();
        let c2 = ca.issue_next(&r.request(), 0, 10, &mut rng).unwrap();
        assert_eq!(c1.certificate.serial + 1, c2.certificate.serial);
        // Fresh CA randomness ⇒ different reconstruction points.
        assert_ne!(c1.certificate.point, c2.certificate.point);
    }

    #[test]
    fn rejects_invalid_request_point() {
        let mut rng = HmacDrbg::from_seed(63);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let bad = CertRequest {
            subject: DeviceId::from_label("evil"),
            point: AffinePoint {
                x: FieldElement::from_u64(1),
                y: FieldElement::from_u64(2),
                infinity: false,
            },
        };
        assert_eq!(
            ca.issue(&bad, 0, 10, &mut rng).unwrap_err(),
            CertError::InvalidRequest
        );
        let infinity_req = CertRequest {
            subject: DeviceId::from_label("evil"),
            point: AffinePoint::identity(),
        };
        assert_eq!(
            ca.issue(&infinity_req, 0, 10, &mut rng).unwrap_err(),
            CertError::InvalidRequest
        );
    }

    #[test]
    fn different_cas_different_keys() {
        let mut rng = HmacDrbg::from_seed(64);
        let ca1 = CertificateAuthority::new(DeviceId::from_label("CA1"), &mut rng);
        let ca2 = CertificateAuthority::new(DeviceId::from_label("CA2"), &mut rng);
        let requester = CertRequester::generate(DeviceId::from_label("dev"), &mut rng);
        let i1 = ca1.issue(&requester.request(), 0, 10, &mut rng).unwrap();
        // Reconstructing against the wrong CA public key gives a key
        // pair that fails the consistency check.
        let wrong = requester.reconstruct(&i1, &ca2.public_key());
        assert_eq!(wrong.unwrap_err(), CertError::ReconstructionMismatch);
    }
}
