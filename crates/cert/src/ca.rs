//! The certificate authority (the "Central Authority" of the paper's
//! Fig. 1, played by the Raspberry-Pi gateway in the prototype).

use crate::certificate::ImplicitCert;
use crate::id::DeviceId;
use crate::requester::CertRequest;
use crate::{cert_hash, CertError};
use ecq_crypto::zeroize::Zeroize;
use ecq_crypto::HmacDrbg;
use ecq_p256::keys::KeyPair;
use ecq_p256::point::{batch_normalize, mul_generator_ct, mul_generator_ct_jacobian, AffinePoint};
use ecq_p256::scalar::Scalar;

/// The CA's response to a certificate request: the implicit certificate
/// plus the private-key reconstruction data `r`.
#[derive(Clone, Copy, Debug)]
pub struct IssuedCert {
    /// The implicit certificate (public; 101 bytes on the wire).
    pub certificate: ImplicitCert,
    /// Private-key reconstruction data `r = e·k + d_CA mod n`
    /// (confidential to the subject; sent over the provisioning
    /// channel of deployment phase 1).
    pub recon_private: Scalar,
}

/// An ECQV certificate authority.
///
/// # Example
///
/// Single and batch issuance produce reconstructible credentials; the
/// batch path is byte-identical to sequential issuance:
///
/// ```
/// use ecq_cert::ca::CertificateAuthority;
/// use ecq_cert::requester::CertRequester;
/// use ecq_cert::DeviceId;
/// use ecq_crypto::HmacDrbg;
///
/// let mut rng = HmacDrbg::from_seed(3);
/// let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
///
/// let requesters: Vec<CertRequester> = (0..4)
///     .map(|i| CertRequester::generate(DeviceId::from_label(&format!("dev{i}")), &mut rng))
///     .collect();
/// let requests: Vec<_> = requesters.iter().map(|r| r.request()).collect();
///
/// let issued = ca.issue_batch(&requests, 0, 3_600, &mut rng)?;
/// for (requester, cert) in requesters.iter().zip(&issued) {
///     let keys = requester.reconstruct(cert, &ca.public_key())?;
///     assert!(keys.is_consistent());
/// }
/// # Ok::<(), ecq_cert::CertError>(())
/// ```
#[derive(Clone, Debug)]
pub struct CertificateAuthority {
    id: DeviceId,
    keys: KeyPair,
    next_serial: u64,
}

impl CertificateAuthority {
    /// Creates a CA with a fresh key pair.
    pub fn new(id: DeviceId, rng: &mut HmacDrbg) -> Self {
        CertificateAuthority {
            id,
            keys: KeyPair::generate(rng),
            next_serial: 1,
        }
    }

    /// Creates a CA from an existing key pair (for reproducible tests).
    pub fn with_keys(id: DeviceId, keys: KeyPair) -> Self {
        CertificateAuthority {
            id,
            keys,
            next_serial: 1,
        }
    }

    /// The CA identity.
    pub fn id(&self) -> DeviceId {
        self.id
    }

    /// The CA public key `Q_CA` every device must be provisioned with.
    pub fn public_key(&self) -> AffinePoint {
        self.keys.public
    }

    /// Signs a serialized revocation list with the CA's long-term key
    /// (deterministic RFC 6979 ECDSA), so relying parties fetching the
    /// CRL from an untrusted channel — the service daemon's
    /// `CrlResponse` frame — can authenticate it against `Q_CA`.
    pub fn sign_revocation_list(&self, crl_bytes: &[u8]) -> ecq_p256::ecdsa::Signature {
        ecq_p256::ecdsa::sign(&self.keys.private, crl_bytes)
    }

    /// Issues an implicit certificate for `request` (SEC4 §2.4 "Cert
    /// Generate"):
    ///
    /// 1. sample `k ∈ [1, n−1]`,
    /// 2. `P_U = R_U + k·G` — the public reconstruction point,
    /// 3. build `Cert_U` embedding `P_U`,
    /// 4. `e = H_n(Cert_U)`,
    /// 5. `r = e·k + d_CA mod n` — private reconstruction data.
    ///
    /// This non-mutating variant draws a random 64-bit serial (unique
    /// with overwhelming probability), so serial-based revocation
    /// distinguishes certificates even without the stateful counter of
    /// [`Self::issue_next`].
    ///
    /// # Errors
    ///
    /// [`CertError::InvalidRequest`] when the request point is off-curve
    /// or the identity, or when the blinded point degenerates.
    pub fn issue(
        &self,
        request: &CertRequest,
        valid_from: u32,
        valid_to: u32,
        rng: &mut HmacDrbg,
    ) -> Result<IssuedCert, CertError> {
        let serial = rng.next_u64();
        self.issue_with_serial(request, serial, valid_from, valid_to, rng)
    }

    /// Issues with an explicit serial (the mutable-counter variant is a
    /// convenience; gateways track serials themselves).
    pub fn issue_with_serial(
        &self,
        request: &CertRequest,
        serial: u64,
        valid_from: u32,
        valid_to: u32,
        rng: &mut HmacDrbg,
    ) -> Result<IssuedCert, CertError> {
        if request.point.infinity || !request.point.is_on_curve() {
            return Err(CertError::InvalidRequest);
        }
        loop {
            let k = Scalar::random(rng);
            // The blinding scalar is as secret as the CA key (`r`
            // reveals `d_CA` given `k`), so `k·G` uses the ct path.
            let p_u = request.point.add(&mul_generator_ct(&k));
            if p_u.infinity {
                continue; // R_U = -kG; resample
            }
            let certificate =
                ImplicitCert::new(serial, self.id, request.subject, valid_from, valid_to, &p_u);
            let e = cert_hash(&certificate);
            if e.is_zero() {
                continue;
            }
            let recon_private = e.mul(&k).add(&self.keys.private);
            return Ok(IssuedCert {
                certificate,
                recon_private,
            });
        }
    }

    /// Issues certificates for a whole batch of requests, sharing the
    /// same validity window.
    ///
    /// Byte-identical to calling [`Self::issue`] once per request with
    /// the same starting RNG state — serials and blinding scalars are
    /// drawn in exactly the sequential order — but the per-request
    /// setup is amortized: every request point is validated before any
    /// RNG output is consumed, each blinded point `P_U = R_U + k·G`
    /// stays in Jacobian coordinates through the fixed-base
    /// multiplication, and a single shared field inversion
    /// ([`batch_normalize`]) replaces the two inversions per
    /// certificate the sequential path pays. Fleet-scale provisioning
    /// (`ecq_fleet`) enrolls thousands of devices through this API.
    ///
    /// # Errors
    ///
    /// [`CertError::InvalidRequest`] when *any* request point is
    /// off-curve or the identity; no certificate is issued and no RNG
    /// output is consumed in that case.
    pub fn issue_batch(
        &self,
        requests: &[CertRequest],
        valid_from: u32,
        valid_to: u32,
        rng: &mut HmacDrbg,
    ) -> Result<Vec<IssuedCert>, CertError> {
        if requests
            .iter()
            .any(|r| r.point.infinity || !r.point.is_on_curve())
        {
            return Err(CertError::InvalidRequest);
        }
        // Phase 1: draw (serial, k) in the sequential order and keep
        // every blinded point in Jacobian form.
        let mut serials = Vec::with_capacity(requests.len());
        let mut blindings = Vec::with_capacity(requests.len());
        let mut points = Vec::with_capacity(requests.len());
        for request in requests {
            serials.push(rng.next_u64());
            loop {
                let k = Scalar::random(rng);
                let p_u = mul_generator_ct_jacobian(&k).add_affine(&request.point);
                if p_u.is_identity() {
                    continue; // R_U = -kG; resample, as `issue` does
                }
                blindings.push(k);
                points.push(p_u);
                break;
            }
        }
        // Phase 2: one shared inversion normalizes the whole batch.
        let affine = batch_normalize(&points);
        // Phase 3: certificates and reconstruction data.
        let mut out = Vec::with_capacity(requests.len());
        for (i, request) in requests.iter().enumerate() {
            let mut certificate = ImplicitCert::new(
                serials[i],
                self.id,
                request.subject,
                valid_from,
                valid_to,
                &affine[i],
            );
            let mut e = cert_hash(&certificate);
            let mut k = blindings[i];
            // e = 0 requires a fresh blinding (probability ≈ 2⁻²⁵⁶; the
            // sequential path resamples before later requests draw, so
            // RNG streams would diverge here — unreachable in practice).
            while e.is_zero() {
                k = Scalar::random(rng);
                let p_u = request.point.add(&mul_generator_ct(&k));
                if p_u.infinity {
                    continue;
                }
                certificate = ImplicitCert::new(
                    serials[i],
                    self.id,
                    request.subject,
                    valid_from,
                    valid_to,
                    &p_u,
                );
                e = cert_hash(&certificate);
            }
            out.push(IssuedCert {
                certificate,
                recon_private: e.mul(&k).add(&self.keys.private),
            });
        }
        Ok(out)
    }

    /// Issues a certificate and advances the internal serial counter.
    pub fn issue_next(
        &mut self,
        request: &CertRequest,
        valid_from: u32,
        valid_to: u32,
        rng: &mut HmacDrbg,
    ) -> Result<IssuedCert, CertError> {
        let serial = self.next_serial;
        let issued = self.issue_with_serial(request, serial, valid_from, valid_to, rng)?;
        self.next_serial += 1;
        Ok(issued)
    }
}

impl Drop for CertificateAuthority {
    /// Wipes the CA private key `d_CA` — the root secret of the whole
    /// trust domain — when a CA instance (or clone) goes away.
    fn drop(&mut self) {
        self.keys.zeroize();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reconstruct_public_key;
    use crate::requester::CertRequester;
    use ecq_p256::field::FieldElement;

    #[test]
    fn issue_and_reconstruct() {
        let mut rng = HmacDrbg::from_seed(61);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let requester = CertRequester::generate(DeviceId::from_label("dev1"), &mut rng);
        let issued = ca.issue(&requester.request(), 0, 1000, &mut rng).unwrap();

        let keys = requester.reconstruct(&issued, &ca.public_key()).unwrap();
        assert!(keys.is_consistent());
        assert_eq!(
            reconstruct_public_key(&issued.certificate, &ca.public_key()).unwrap(),
            keys.public
        );
    }

    #[test]
    fn serial_advances() {
        let mut rng = HmacDrbg::from_seed(62);
        let mut ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let r = CertRequester::generate(DeviceId::from_label("dev"), &mut rng);
        let c1 = ca.issue_next(&r.request(), 0, 10, &mut rng).unwrap();
        let c2 = ca.issue_next(&r.request(), 0, 10, &mut rng).unwrap();
        assert_eq!(c1.certificate.serial + 1, c2.certificate.serial);
        // Fresh CA randomness ⇒ different reconstruction points.
        assert_ne!(c1.certificate.point, c2.certificate.point);
    }

    #[test]
    fn rejects_invalid_request_point() {
        let mut rng = HmacDrbg::from_seed(63);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let bad = CertRequest {
            subject: DeviceId::from_label("evil"),
            point: AffinePoint {
                x: FieldElement::from_u64(1),
                y: FieldElement::from_u64(2),
                infinity: false,
            },
        };
        assert_eq!(
            ca.issue(&bad, 0, 10, &mut rng).unwrap_err(),
            CertError::InvalidRequest
        );
        let infinity_req = CertRequest {
            subject: DeviceId::from_label("evil"),
            point: AffinePoint::identity(),
        };
        assert_eq!(
            ca.issue(&infinity_req, 0, 10, &mut rng).unwrap_err(),
            CertError::InvalidRequest
        );
    }

    #[test]
    fn batch_is_byte_identical_to_sequential() {
        let mut rng = HmacDrbg::from_seed(65);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let requesters: Vec<CertRequester> = (0..8)
            .map(|i| CertRequester::generate(DeviceId::from_label(&format!("dev{i}")), &mut rng))
            .collect();
        let requests: Vec<CertRequest> = requesters.iter().map(|r| r.request()).collect();

        let mut rng_batch = rng.clone();
        let mut rng_seq = rng;
        let batch = ca.issue_batch(&requests, 5, 500, &mut rng_batch).unwrap();
        for (requester, issued) in requesters.iter().zip(&batch) {
            let seq = ca
                .issue(&requester.request(), 5, 500, &mut rng_seq)
                .unwrap();
            assert_eq!(issued.certificate.to_bytes(), seq.certificate.to_bytes());
            assert_eq!(issued.recon_private, seq.recon_private);
            // And the issued certificates remain reconstructible.
            let keys = requester.reconstruct(issued, &ca.public_key()).unwrap();
            assert!(keys.is_consistent());
        }
    }

    #[test]
    fn batch_rejects_any_invalid_request_without_issuing() {
        let mut rng = HmacDrbg::from_seed(66);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let good = CertRequester::generate(DeviceId::from_label("good"), &mut rng).request();
        let bad = CertRequest {
            subject: DeviceId::from_label("bad"),
            point: AffinePoint::identity(),
        };
        let before = rng.clone().next_u64();
        assert_eq!(
            ca.issue_batch(&[good, bad], 0, 10, &mut rng).unwrap_err(),
            CertError::InvalidRequest
        );
        // Fail-fast: the RNG stream was left untouched.
        assert_eq!(rng.next_u64(), before);
    }

    #[test]
    fn empty_batch_is_empty() {
        let mut rng = HmacDrbg::from_seed(67);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        assert!(ca.issue_batch(&[], 0, 10, &mut rng).unwrap().is_empty());
    }

    #[test]
    fn different_cas_different_keys() {
        let mut rng = HmacDrbg::from_seed(64);
        let ca1 = CertificateAuthority::new(DeviceId::from_label("CA1"), &mut rng);
        let ca2 = CertificateAuthority::new(DeviceId::from_label("CA2"), &mut rng);
        let requester = CertRequester::generate(DeviceId::from_label("dev"), &mut rng);
        let i1 = ca1.issue(&requester.request(), 0, 10, &mut rng).unwrap();
        // Reconstructing against the wrong CA public key gives a key
        // pair that fails the consistency check.
        let wrong = requester.reconstruct(&i1, &ca2.public_key());
        assert_eq!(wrong.unwrap_err(), CertError::ReconstructionMismatch);
    }
}
