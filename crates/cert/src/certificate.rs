//! The minimal implicit certificate encoding.
//!
//! The paper's Table II uses "the minimal certificate encoding with 101
//! total bytes" (citing SEC4). This module defines a concrete 101-byte
//! layout carrying the compressed public-key reconstruction point plus
//! the identification and validity metadata a deployment needs:
//!
//! | offset | len | field |
//! |-------:|----:|-------|
//! |      0 |   2 | magic `"EQ"` |
//! |      2 |   1 | version (1) |
//! |      3 |   8 | serial (BE) |
//! |     11 |  16 | issuer id |
//! |     27 |  16 | subject id |
//! |     43 |   4 | valid-from (BE seconds) |
//! |     47 |   4 | valid-to (BE seconds) |
//! |     51 |   1 | key-usage flags |
//! |     52 |   1 | curve id (0x17 = secp256r1) |
//! |     53 |  33 | compressed reconstruction point `P_U` |
//! |     86 |  15 | extension/profile bytes |
//!
//! Every byte of the certificate is covered by `e = H_n(Cert)`, so any
//! tamper changes the reconstructed public key and breaks the
//! possession proof.

use crate::id::{DeviceId, ID_LEN};
use crate::CertError;
use ecq_p256::encoding::{decode_compressed, encode_compressed, COMPRESSED_LEN};
use ecq_p256::point::AffinePoint;

/// Total length of the minimal certificate encoding (matches the
/// paper's `Cert(101)`).
pub const CERT_LEN: usize = 101;

const MAGIC: [u8; 2] = *b"EQ";
const VERSION: u8 = 1;
/// IANA/SEC curve identifier for secp256r1.
pub const CURVE_SECP256R1: u8 = 0x17;
const EXT_LEN: usize = 15;

/// An ECQV implicit certificate.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ImplicitCert {
    /// Monotonic serial number assigned by the CA.
    pub serial: u64,
    /// Identifier of the issuing CA.
    pub issuer: DeviceId,
    /// Identifier of the certified device.
    pub subject: DeviceId,
    /// Validity start, seconds (epoch chosen by the deployment).
    pub valid_from: u32,
    /// Validity end, seconds.
    pub valid_to: u32,
    /// Key-usage flag bits (deployment-defined).
    pub key_usage: u8,
    /// Compressed public reconstruction point `P_U`.
    pub point: [u8; COMPRESSED_LEN],
    /// Extension/profile bytes (deployment-defined, hashed like all
    /// other fields).
    pub extensions: [u8; EXT_LEN],
}

impl ImplicitCert {
    /// Serializes to the canonical 101-byte encoding.
    pub fn to_bytes(&self) -> [u8; CERT_LEN] {
        let mut out = [0u8; CERT_LEN];
        out[0..2].copy_from_slice(&MAGIC);
        out[2] = VERSION;
        out[3..11].copy_from_slice(&self.serial.to_be_bytes());
        out[11..27].copy_from_slice(self.issuer.as_bytes());
        out[27..43].copy_from_slice(self.subject.as_bytes());
        out[43..47].copy_from_slice(&self.valid_from.to_be_bytes());
        out[47..51].copy_from_slice(&self.valid_to.to_be_bytes());
        out[51] = self.key_usage;
        out[52] = CURVE_SECP256R1;
        out[53..86].copy_from_slice(&self.point);
        out[86..101].copy_from_slice(&self.extensions);
        out
    }

    /// Parses the canonical encoding.
    ///
    /// # Errors
    ///
    /// [`CertError::InvalidEncoding`] on wrong length, magic, version or
    /// curve id. The embedded point is validated lazily by
    /// [`Self::reconstruction_point`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CertError> {
        if bytes.len() != CERT_LEN || bytes[0..2] != MAGIC || bytes[2] != VERSION {
            return Err(CertError::InvalidEncoding);
        }
        if bytes[52] != CURVE_SECP256R1 {
            return Err(CertError::InvalidEncoding);
        }
        let mut issuer = [0u8; ID_LEN];
        issuer.copy_from_slice(&bytes[11..27]);
        let mut subject = [0u8; ID_LEN];
        subject.copy_from_slice(&bytes[27..43]);
        let mut point = [0u8; COMPRESSED_LEN];
        point.copy_from_slice(&bytes[53..86]);
        let mut extensions = [0u8; EXT_LEN];
        extensions.copy_from_slice(&bytes[86..101]);
        Ok(ImplicitCert {
            serial: u64::from_be_bytes(bytes[3..11].try_into().expect("8 bytes")),
            issuer: DeviceId::from_bytes(issuer),
            subject: DeviceId::from_bytes(subject),
            valid_from: u32::from_be_bytes(bytes[43..47].try_into().expect("4 bytes")),
            valid_to: u32::from_be_bytes(bytes[47..51].try_into().expect("4 bytes")),
            key_usage: bytes[51],
            point,
            extensions,
        })
    }

    /// Decodes the embedded reconstruction point `P_U`
    /// (the `Decode(Cert_X)` of the paper's eq. (1)).
    ///
    /// # Errors
    ///
    /// [`CertError::InvalidPoint`] when the compressed point does not
    /// decode to a curve point.
    pub fn reconstruction_point(&self) -> Result<AffinePoint, CertError> {
        decode_compressed(&self.point).map_err(|_| CertError::InvalidPoint)
    }

    /// Checks the validity window against a deployment timestamp.
    pub fn is_valid_at(&self, now: u32) -> bool {
        self.valid_from <= now && now <= self.valid_to
    }

    /// Builder-style constructor used by the CA.
    pub fn new(
        serial: u64,
        issuer: DeviceId,
        subject: DeviceId,
        valid_from: u32,
        valid_to: u32,
        point: &AffinePoint,
    ) -> Self {
        ImplicitCert {
            serial,
            issuer,
            subject,
            valid_from,
            valid_to,
            key_usage: 0x01, // key agreement + signing
            point: encode_compressed(point),
            extensions: [0u8; EXT_LEN],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecq_p256::point::mul_generator_vartime;
    use ecq_p256::scalar::Scalar;

    fn sample_cert() -> ImplicitCert {
        ImplicitCert::new(
            42,
            DeviceId::from_label("CA"),
            DeviceId::from_label("alice"),
            100,
            200,
            &mul_generator_vartime(&Scalar::from_u64(9)),
        )
    }

    #[test]
    fn encoding_is_exactly_101_bytes() {
        assert_eq!(sample_cert().to_bytes().len(), CERT_LEN);
        assert_eq!(CERT_LEN, 101);
    }

    #[test]
    fn roundtrip() {
        let cert = sample_cert();
        let parsed = ImplicitCert::from_bytes(&cert.to_bytes()).unwrap();
        assert_eq!(parsed, cert);
        assert_eq!(
            parsed.reconstruction_point().unwrap(),
            mul_generator_vartime(&Scalar::from_u64(9))
        );
    }

    #[test]
    fn rejects_malformed() {
        let cert = sample_cert();
        let good = cert.to_bytes();

        let mut bad_magic = good;
        bad_magic[0] = b'X';
        assert_eq!(
            ImplicitCert::from_bytes(&bad_magic),
            Err(CertError::InvalidEncoding)
        );

        let mut bad_version = good;
        bad_version[2] = 99;
        assert_eq!(
            ImplicitCert::from_bytes(&bad_version),
            Err(CertError::InvalidEncoding)
        );

        let mut bad_curve = good;
        bad_curve[52] = 0x18;
        assert_eq!(
            ImplicitCert::from_bytes(&bad_curve),
            Err(CertError::InvalidEncoding)
        );

        assert_eq!(
            ImplicitCert::from_bytes(&good[..100]),
            Err(CertError::InvalidEncoding)
        );
    }

    #[test]
    fn corrupt_point_detected_on_decode() {
        let mut cert = sample_cert();
        cert.point[0] = 0x05; // invalid SEC1 tag
        assert_eq!(cert.reconstruction_point(), Err(CertError::InvalidPoint));
    }

    #[test]
    fn validity_window() {
        let cert = sample_cert();
        assert!(!cert.is_valid_at(99));
        assert!(cert.is_valid_at(100));
        assert!(cert.is_valid_at(150));
        assert!(cert.is_valid_at(200));
        assert!(!cert.is_valid_at(201));
    }

    #[test]
    fn every_field_affects_encoding() {
        let base = sample_cert().to_bytes();
        let mut c1 = sample_cert();
        c1.serial = 43;
        assert_ne!(c1.to_bytes(), base);
        let mut c2 = sample_cert();
        c2.subject = DeviceId::from_label("bob");
        assert_ne!(c2.to_bytes(), base);
        let mut c3 = sample_cert();
        c3.extensions[14] = 1;
        assert_ne!(c3.to_bytes(), base);
    }
}
