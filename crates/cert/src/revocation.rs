//! Certificate revocation.
//!
//! ECQV certificates carry no signature to invalidate, so revocation in
//! the paper's centralized architecture (Fig. 1) is a *distribution*
//! problem: the CA gateway maintains a list of revoked serials and
//! pushes it to devices, which must consult it before (and during)
//! sessions. This module provides the registry plus a compact wire
//! encoding suitable for a CAN-FD/ISO-TP push.
//!
//! The node-capture row of Table III motivates this: once a device is
//! known compromised, forward secrecy protects *past* traffic, but only
//! revocation stops *future* sessions.

use crate::certificate::ImplicitCert;
use crate::CertError;
use std::collections::BTreeSet;

/// Magic prefix of the revocation-list wire encoding.
const MAGIC: [u8; 2] = *b"RL";
/// Encoding version.
const VERSION: u8 = 1;

/// A CA-issued list of revoked certificate serials.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RevocationList {
    /// Monotonic list sequence number (devices keep the newest).
    pub sequence: u32,
    revoked: BTreeSet<u64>,
}

impl RevocationList {
    /// Creates an empty list with sequence 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of revoked serials.
    pub fn len(&self) -> usize {
        self.revoked.len()
    }

    /// Whether no serial is revoked.
    pub fn is_empty(&self) -> bool {
        self.revoked.is_empty()
    }

    /// Revokes a serial and bumps the sequence number.
    /// Returns `true` when the serial was newly revoked.
    pub fn revoke(&mut self, serial: u64) -> bool {
        let inserted = self.revoked.insert(serial);
        if inserted {
            self.sequence += 1;
        }
        inserted
    }

    /// Whether a serial is revoked.
    pub fn is_revoked(&self, serial: u64) -> bool {
        self.revoked.contains(&serial)
    }

    /// Certificate-level check combining revocation and validity:
    /// the gate a device applies before accepting a peer.
    ///
    /// # Errors
    ///
    /// * [`CertError::Revoked`] when the serial is on the list;
    /// * [`CertError::Expired`] outside the validity window;
    /// * [`CertError::ReconstructionMismatch`] is *not* checked here —
    ///   possession is the session protocol's job.
    pub fn check(&self, cert: &ImplicitCert, now: u32) -> Result<(), CertError> {
        if self.is_revoked(cert.serial) {
            return Err(CertError::Revoked);
        }
        if !cert.is_valid_at(now) {
            return Err(CertError::Expired);
        }
        Ok(())
    }

    /// Compact wire encoding:
    /// `"RL" ‖ version ‖ sequence(4) ‖ count(4) ‖ serials(8·count)`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(11 + 8 * self.revoked.len());
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.extend_from_slice(&self.sequence.to_be_bytes());
        out.extend_from_slice(&(self.revoked.len() as u32).to_be_bytes());
        for serial in &self.revoked {
            out.extend_from_slice(&serial.to_be_bytes());
        }
        out
    }

    /// Parses the wire encoding.
    ///
    /// # Errors
    ///
    /// [`CertError::InvalidEncoding`] on malformed input, including a
    /// repeated serial: [`Self::to_bytes`] never emits duplicates, and
    /// silently deduplicating would leave `len()` disagreeing with the
    /// wire `count` (and mask a corrupted or forged list).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CertError> {
        if bytes.len() < 11 || bytes[0..2] != MAGIC || bytes[2] != VERSION {
            return Err(CertError::InvalidEncoding);
        }
        let sequence = u32::from_be_bytes(bytes[3..7].try_into().expect("4 bytes"));
        let count = u32::from_be_bytes(bytes[7..11].try_into().expect("4 bytes")) as usize;
        if bytes.len() != 11 + 8 * count {
            return Err(CertError::InvalidEncoding);
        }
        let mut revoked = BTreeSet::new();
        for i in 0..count {
            let off = 11 + 8 * i;
            let serial = u64::from_be_bytes(bytes[off..off + 8].try_into().expect("8 bytes"));
            if !revoked.insert(serial) {
                return Err(CertError::InvalidEncoding);
            }
        }
        Ok(RevocationList { sequence, revoked })
    }

    /// Whether `other` supersedes this list (devices keep the higher
    /// sequence; ties keep the current list).
    pub fn superseded_by(&self, other: &RevocationList) -> bool {
        other.sequence > self.sequence
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::id::DeviceId;
    use ecq_p256::point::mul_generator_vartime;
    use ecq_p256::scalar::Scalar;

    fn cert(serial: u64) -> ImplicitCert {
        ImplicitCert::new(
            serial,
            DeviceId::from_label("CA"),
            DeviceId::from_label("dev"),
            0,
            100,
            &mul_generator_vartime(&Scalar::from_u64(7)),
        )
    }

    #[test]
    fn revoke_and_check() {
        let mut rl = RevocationList::new();
        assert!(rl.is_empty());
        assert!(rl.revoke(42));
        assert!(!rl.revoke(42), "double revocation is a no-op");
        assert!(rl.is_revoked(42));
        assert!(!rl.is_revoked(43));
        assert_eq!(rl.len(), 1);
        assert_eq!(rl.sequence, 1);

        assert_eq!(rl.check(&cert(42), 10).unwrap_err(), CertError::Revoked);
        assert!(rl.check(&cert(43), 10).is_ok());
        assert_eq!(rl.check(&cert(43), 200).unwrap_err(), CertError::Expired);
        // Revocation takes precedence over expiry.
        assert_eq!(rl.check(&cert(42), 200).unwrap_err(), CertError::Revoked);
    }

    #[test]
    fn wire_roundtrip() {
        let mut rl = RevocationList::new();
        for s in [1u64, 99, u64::MAX] {
            rl.revoke(s);
        }
        let parsed = RevocationList::from_bytes(&rl.to_bytes()).unwrap();
        assert_eq!(parsed, rl);
        assert_eq!(parsed.sequence, 3);
    }

    #[test]
    fn rejects_malformed() {
        assert!(RevocationList::from_bytes(b"").is_err());
        assert!(RevocationList::from_bytes(b"XX\x01\0\0\0\0\0\0\0\0").is_err());
        let mut good = RevocationList::new();
        good.revoke(5);
        let mut bytes = good.to_bytes();
        bytes.pop(); // truncate a serial
        assert!(RevocationList::from_bytes(&bytes).is_err());
        // Wrong version.
        let mut bytes = good.to_bytes();
        bytes[2] = 9;
        assert!(RevocationList::from_bytes(&bytes).is_err());
    }

    #[test]
    fn rejects_duplicate_serials() {
        // Hand-craft a list whose count says 2 but repeats one serial:
        // accepting it would make len() == 1 disagree with the wire.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"RL\x01");
        bytes.extend_from_slice(&7u32.to_be_bytes()); // sequence
        bytes.extend_from_slice(&2u32.to_be_bytes()); // count
        bytes.extend_from_slice(&5u64.to_be_bytes());
        bytes.extend_from_slice(&5u64.to_be_bytes());
        assert_eq!(
            RevocationList::from_bytes(&bytes).unwrap_err(),
            CertError::InvalidEncoding
        );
    }

    #[test]
    fn sequence_supersession() {
        let mut old = RevocationList::new();
        old.revoke(1);
        let mut new = old.clone();
        new.revoke(2);
        assert!(old.superseded_by(&new));
        assert!(!new.superseded_by(&old));
        assert!(!old.superseded_by(&old.clone()));
    }

    #[test]
    fn empty_list_encodes_minimally() {
        let rl = RevocationList::new();
        assert_eq!(rl.to_bytes().len(), 11);
        // Fits a single CAN-FD frame even with dozens of entries via
        // ISO-TP; 6 entries ≈ 59 B — single frame.
        let mut six = RevocationList::new();
        for s in 0..6u64 {
            six.revoke(s);
        }
        assert!(six.to_bytes().len() <= 62);
    }
}
