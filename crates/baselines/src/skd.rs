//! Static key derivation (SKD) helpers shared by the baselines.
//!
//! §II-A of the paper: `Sk = Prk_a · Puk_b = Prk_b · Puk_a` over the
//! long-term, certificate-bound key pairs. The peer's public key is
//! derived implicitly from its certificate (eq. (1)), so the premaster
//! is fully determined by the two certificates — it only changes when
//! the certificates do. Everything derived from it inherits that
//! staleness, which is precisely the forward-secrecy gap.

use ecq_cert::{reconstruct_public_key, ImplicitCert};
use ecq_crypto::zeroize::Zeroizing;
use ecq_proto::{Credentials, OpTrace, PrimitiveOp, ProtocolError, StsPhase};

/// Computes the static premaster secret between `own` credentials and a
/// peer certificate: `Prk_own · Q_peer` with `Q_peer` implicitly
/// derived.
///
/// # Errors
///
/// Certificate/point errors from the implicit derivation or the ECDH.
pub fn static_premaster(
    own: &Credentials,
    peer_cert: &ImplicitCert,
) -> Result<Zeroizing<[u8; 32]>, ProtocolError> {
    let q_peer = reconstruct_public_key(peer_cert, &own.ca_public)?;
    let secret = ecq_p256::ecdh::shared_secret(&own.keys.private, &q_peer)?;
    Ok(secret)
}

/// Trace-recording variant of [`static_premaster`]: bills one
/// public-key reconstruction and one ECDH derivation to Op2 (the
/// operation class the paper's cost model assigns this work to).
///
/// # Errors
///
/// Same as [`static_premaster`].
pub fn static_premaster_traced(
    own: &Credentials,
    peer_cert: &ImplicitCert,
    trace: &mut OpTrace,
) -> Result<Zeroizing<[u8; 32]>, ProtocolError> {
    trace.record(
        StsPhase::Op2KeyDerivation,
        PrimitiveOp::PublicKeyReconstruction,
    );
    trace.record(StsPhase::Op2KeyDerivation, PrimitiveOp::EcdhDerive);
    static_premaster(own, peer_cert)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecq_cert::ca::CertificateAuthority;
    use ecq_cert::DeviceId;
    use ecq_crypto::HmacDrbg;

    #[test]
    fn premaster_is_symmetric_and_static() {
        let mut rng = HmacDrbg::from_seed(211);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let a = Credentials::provision(&ca, DeviceId::from_label("a"), 0, 10, &mut rng).unwrap();
        let b = Credentials::provision(&ca, DeviceId::from_label("b"), 0, 10, &mut rng).unwrap();
        let ab = static_premaster(&a, &b.cert).unwrap();
        let ba = static_premaster(&b, &a.cert).unwrap();
        assert_eq!(ab, ba);
        // Re-computation yields the identical secret: nothing session-
        // specific enters the derivation.
        assert_eq!(ab, static_premaster(&a, &b.cert).unwrap());
    }

    #[test]
    fn traced_variant_records_op2() {
        let mut rng = HmacDrbg::from_seed(212);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let a = Credentials::provision(&ca, DeviceId::from_label("a"), 0, 10, &mut rng).unwrap();
        let b = Credentials::provision(&ca, DeviceId::from_label("b"), 0, 10, &mut rng).unwrap();
        let mut trace = OpTrace::new();
        static_premaster_traced(&a, &b.cert, &mut trace).unwrap();
        assert_eq!(trace.count_op(PrimitiveOp::PublicKeyReconstruction), 1);
        assert_eq!(trace.count_op(PrimitiveOp::EcdhDerive), 1);
    }

    #[test]
    fn different_peer_different_secret() {
        let mut rng = HmacDrbg::from_seed(213);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let a = Credentials::provision(&ca, DeviceId::from_label("a"), 0, 10, &mut rng).unwrap();
        let b = Credentials::provision(&ca, DeviceId::from_label("b"), 0, 10, &mut rng).unwrap();
        let c = Credentials::provision(&ca, DeviceId::from_label("c"), 0, 10, &mut rng).unwrap();
        assert_ne!(
            static_premaster(&a, &b.cert).unwrap(),
            static_premaster(&a, &c.cert).unwrap()
        );
    }
}
