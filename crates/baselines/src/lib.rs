//! Baseline key-derivation protocols the paper compares against (§V-A).
//!
//! All three baseline families use a **static key derivation (SKD)**:
//! the session secret is a Diffie–Hellman over the long-term,
//! certificate-bound keys (`Sk = Prk_a·Puk_b`), so the underlying
//! secret never changes while the certificates live — the property gap
//! STS closes.
//!
//! * [`s_ecdsa`] — static ECDSA KD (Basic et al. \[5\]) with an optional
//!   extended finished-message handshake;
//! * [`scianc`] — Sciancalepore et al. \[4\]: nonce-diversified SKD with
//!   symmetric authentication MACs bound to the session key;
//! * [`poramb`] — Porambage et al. \[3\]: two-phase pairwise
//!   establishment with pre-shared per-peer authentication keys.
//!
//! Each implementation is a full message-level state machine whose wire
//! format reproduces its Table II column byte-for-byte and whose
//! primitive trace drives the Table I device timings.

#![warn(missing_docs)]

pub mod poramb;
pub mod s_ecdsa;
pub mod scianc;
pub mod skd;

use ecq_crypto::HmacDrbg;
use ecq_proto::{run_handshake, Credentials, ProtocolError, SessionKey, Transcript};

/// Result of a completed baseline handshake (mirrors
/// `ecq_sts::SessionOutcome`).
#[derive(Debug)]
pub struct BaselineOutcome {
    /// Key derived by the initiator.
    pub initiator_key: SessionKey,
    /// Key derived by the responder.
    pub responder_key: SessionKey,
    /// Full wire + trace transcript.
    pub transcript: Transcript,
}

/// Runs a complete S-ECDSA handshake (set `extended` for the
/// finished-message variant).
///
/// # Errors
///
/// Any [`ProtocolError`] from the handshake.
pub fn establish_s_ecdsa(
    initiator: &Credentials,
    responder: &Credentials,
    now: u32,
    extended: bool,
    rng: &mut HmacDrbg,
) -> Result<BaselineOutcome, ProtocolError> {
    use ecq_proto::Endpoint as _;
    let mut rng_a = HmacDrbg::new(&rng.bytes32(), b"secdsa-a");
    let mut rng_b = HmacDrbg::new(&rng.bytes32(), b"secdsa-b");
    let mut a = s_ecdsa::SEcdsaInitiator::new(initiator.clone(), now, extended, &mut rng_a);
    let mut b = s_ecdsa::SEcdsaResponder::new(responder.clone(), now, extended, &mut rng_b);
    let transcript = run_handshake(&mut a, &mut b)?;
    Ok(BaselineOutcome {
        initiator_key: a.session_key()?,
        responder_key: b.session_key()?,
        transcript,
    })
}

/// Runs a complete SCIANC handshake.
///
/// # Errors
///
/// Any [`ProtocolError`] from the handshake.
pub fn establish_scianc(
    initiator: &Credentials,
    responder: &Credentials,
    now: u32,
    rng: &mut HmacDrbg,
) -> Result<BaselineOutcome, ProtocolError> {
    use ecq_proto::Endpoint as _;
    let mut rng_a = HmacDrbg::new(&rng.bytes32(), b"scianc-a");
    let mut rng_b = HmacDrbg::new(&rng.bytes32(), b"scianc-b");
    let mut a = scianc::SciancInitiator::new(initiator.clone(), now, &mut rng_a);
    let mut b = scianc::SciancResponder::new(responder.clone(), now, &mut rng_b);
    let transcript = run_handshake(&mut a, &mut b)?;
    Ok(BaselineOutcome {
        initiator_key: a.session_key()?,
        responder_key: b.session_key()?,
        transcript,
    })
}

/// Runs a complete PORAMB handshake. `pairwise_key` is the pre-shared
/// per-peer authentication key Porambage's scheme requires both sides
/// to hold.
///
/// # Errors
///
/// Any [`ProtocolError`] from the handshake.
pub fn establish_poramb(
    initiator: &Credentials,
    responder: &Credentials,
    pairwise_key: &[u8; 32],
    now: u32,
    rng: &mut HmacDrbg,
) -> Result<BaselineOutcome, ProtocolError> {
    use ecq_proto::Endpoint as _;
    let mut rng_a = HmacDrbg::new(&rng.bytes32(), b"poramb-a");
    let mut rng_b = HmacDrbg::new(&rng.bytes32(), b"poramb-b");
    let mut a = poramb::PorambInitiator::new(initiator.clone(), *pairwise_key, now, &mut rng_a);
    let mut b = poramb::PorambResponder::new(responder.clone(), *pairwise_key, now, &mut rng_b);
    let transcript = run_handshake(&mut a, &mut b)?;
    Ok(BaselineOutcome {
        initiator_key: a.session_key()?,
        responder_key: b.session_key()?,
        transcript,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecq_cert::ca::CertificateAuthority;
    use ecq_cert::DeviceId;

    fn setup(seed: u64) -> (Credentials, Credentials, HmacDrbg) {
        let mut rng = HmacDrbg::from_seed(seed);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let a = Credentials::provision(&ca, DeviceId::from_label("a"), 0, 100, &mut rng).unwrap();
        let b = Credentials::provision(&ca, DeviceId::from_label("b"), 0, 100, &mut rng).unwrap();
        (a, b, rng)
    }

    #[test]
    fn s_ecdsa_table2_totals() {
        let (a, b, mut rng) = setup(201);
        let out = establish_s_ecdsa(&a, &b, 0, false, &mut rng).unwrap();
        assert_eq!(out.initiator_key, out.responder_key);
        assert_eq!(out.transcript.step_count(), 4);
        assert_eq!(out.transcript.total_bytes(), 427); // Table II

        let out = establish_s_ecdsa(&a, &b, 0, true, &mut rng).unwrap();
        assert_eq!(out.transcript.step_count(), 5);
        assert_eq!(out.transcript.total_bytes(), 427 + 192); // Table II ext
    }

    #[test]
    fn scianc_table2_totals() {
        let (a, b, mut rng) = setup(202);
        let out = establish_scianc(&a, &b, 0, &mut rng).unwrap();
        assert_eq!(out.initiator_key, out.responder_key);
        assert_eq!(out.transcript.step_count(), 4);
        assert_eq!(out.transcript.total_bytes(), 362); // Table II
    }

    #[test]
    fn poramb_table2_totals() {
        let (a, b, mut rng) = setup(203);
        let out = establish_poramb(&a, &b, &[7u8; 32], 0, &mut rng).unwrap();
        assert_eq!(out.initiator_key, out.responder_key);
        assert_eq!(out.transcript.step_count(), 6);
        assert_eq!(out.transcript.total_bytes(), 820); // Table II
    }

    #[test]
    fn skd_keys_repeat_across_sessions() {
        // The static-KD weakness: same certificates ⇒ same underlying
        // secret. S-ECDSA diversifies KS with nonces but the premaster
        // is constant; SCIANC likewise. We assert premaster stability
        // via skd::static_premaster.
        let (a, b, _) = setup(204);
        let p1 = skd::static_premaster(&a, &b.cert).unwrap();
        let p2 = skd::static_premaster(&a, &b.cert).unwrap();
        assert_eq!(p1, p2);
        let p_peer = skd::static_premaster(&b, &a.cert).unwrap();
        assert_eq!(p1, p_peer);
    }
}
