//! SCIANC: Sciancalepore et al. \[4\] — public-key authentication and key
//! agreement with minimal airtime.
//!
//! Wire format (Table II):
//!
//! ```text
//! A1: ID(16), Nonce(32), Cert(101)
//! B1: ID(16), Nonce(32), Cert(101)
//! A2: Auth MAC(32)
//! B2: Auth MAC(32)
//! Total 4 steps, 362 B
//! ```
//!
//! Both sides exchange certificates and nonces in one round, derive the
//! **static** premaster implicitly (`Prk_own · Q_peer`), stretch it with
//! the nonces, and mutually authenticate with HMAC tags *keyed by the
//! session key itself*. The paper's §V-D critique is structural and
//! reproduced here: the nonces diversify but do not protect (they are
//! public), and because authentication is keyed by `KS`, a session-key
//! compromise also compromises future authentications ("key derivation
//! exploitation": ∆ in Table III).

use crate::skd::static_premaster_traced;
use ecq_cert::{DeviceId, ImplicitCert};
use ecq_crypto::hmac::hmac_sha256_concat;
use ecq_crypto::HmacDrbg;
use ecq_proto::{
    Credentials, Endpoint, FieldKind, Message, OpTrace, PrimitiveOp, ProtocolError, Role,
    SessionKey, StsPhase, WireField,
};

/// Domain-separation label for the SCIANC KDF.
pub const KDF_LABEL: &[u8] = b"ecqv-scianc-v1";

fn derive_ks(
    own: &Credentials,
    peer_cert: &ImplicitCert,
    nonce_a: &[u8],
    nonce_b: &[u8],
    trace: &mut OpTrace,
) -> Result<SessionKey, ProtocolError> {
    let premaster = static_premaster_traced(own, peer_cert, trace)?;
    let salt = [nonce_a, nonce_b].concat();
    trace.record(StsPhase::Op2KeyDerivation, PrimitiveOp::Kdf);
    Ok(SessionKey::derive(premaster.as_slice(), &salt, KDF_LABEL))
}

/// The authentication MAC: keyed directly by the session key (the
/// design choice the security analysis penalizes). Public so the
/// attack simulations in `ecq-analysis` can act as a protocol-aware
/// adversary.
pub fn auth_mac(ks: &SessionKey, role: Role, nonce_a: &[u8], nonce_b: &[u8]) -> [u8; 32] {
    let role_tag: &[u8] = match role {
        Role::Initiator => b"A-auth",
        Role::Responder => b"B-auth",
    };
    hmac_sha256_concat(ks.as_bytes(), &[role_tag, nonce_a, nonce_b])
}

#[derive(Debug)]
enum InitState {
    Start,
    AwaitB1,
    AwaitMac,
    Established,
    Failed,
}

/// Initiator-side SCIANC state machine.
#[derive(Debug)]
pub struct SciancInitiator {
    creds: Credentials,
    now: u32,
    nonce: [u8; 32],
    peer_nonce: Option<[u8; 32]>,
    session: Option<SessionKey>,
    state: InitState,
    trace: OpTrace,
}

impl SciancInitiator {
    /// Creates an initiator; draws its nonce eagerly.
    pub fn new(creds: Credentials, now: u32, rng: &mut HmacDrbg) -> Self {
        let mut trace = OpTrace::new();
        trace.record(StsPhase::Other, PrimitiveOp::RandomBytes { bytes: 32 });
        SciancInitiator {
            creds,
            now,
            nonce: rng.bytes32(),
            peer_nonce: None,
            session: None,
            state: InitState::Start,
            trace,
        }
    }

    fn handle_b1(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let id_b = msg.field(FieldKind::Id)?;
        let nonce_b: [u8; 32] = msg
            .field(FieldKind::Nonce)?
            .try_into()
            .map_err(|_| ProtocolError::Decode)?;
        let cert_b = ImplicitCert::from_bytes(msg.field(FieldKind::Cert)?)?;

        // SCIANC validates the certificate's ID binding and validity —
        // but note (paper §III): this does NOT authenticate the device;
        // certificates are public and replayable.
        if cert_b.subject.as_bytes() != id_b {
            return Err(ProtocolError::AuthenticationFailed);
        }
        if !cert_b.is_valid_at(self.now) {
            return Err(ProtocolError::Cert(ecq_cert::CertError::Expired));
        }

        let ks = derive_ks(&self.creds, &cert_b, &self.nonce, &nonce_b, &mut self.trace)?;
        self.trace.record(StsPhase::Other, PrimitiveOp::MacTag);
        let mac = auth_mac(&ks, Role::Initiator, &self.nonce, &nonce_b);

        self.peer_nonce = Some(nonce_b);
        self.session = Some(ks);
        self.state = InitState::AwaitMac;
        Ok(Some(Message::new(
            "A2",
            vec![WireField::new(FieldKind::Mac, mac.to_vec())],
        )))
    }

    fn handle_mac(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let mac = msg.field(FieldKind::Mac)?;
        let ks = self.session.ok_or(ProtocolError::UnexpectedMessage)?;
        let nonce_b = self.peer_nonce.ok_or(ProtocolError::UnexpectedMessage)?;
        self.trace.record(StsPhase::Other, PrimitiveOp::MacVerify);
        let expect = auth_mac(&ks, Role::Responder, &self.nonce, &nonce_b);
        if !ecq_crypto::ct::eq(&expect, mac) {
            return Err(ProtocolError::AuthenticationFailed);
        }
        self.state = InitState::Established;
        Ok(None)
    }
}

impl Endpoint for SciancInitiator {
    fn id(&self) -> DeviceId {
        self.creds.id
    }
    fn role(&self) -> Role {
        Role::Initiator
    }
    fn start(&mut self) -> Result<Option<Message>, ProtocolError> {
        match self.state {
            InitState::Start => {
                self.state = InitState::AwaitB1;
                Ok(Some(Message::new(
                    "A1",
                    vec![
                        WireField::new(FieldKind::Id, self.creds.id.as_bytes().to_vec()),
                        WireField::new(FieldKind::Nonce, self.nonce.to_vec()),
                        WireField::new(FieldKind::Cert, self.creds.cert.to_bytes().to_vec()),
                    ],
                )))
            }
            _ => Err(ProtocolError::UnexpectedMessage),
        }
    }
    fn on_message(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let result = match self.state {
            InitState::AwaitB1 => self.handle_b1(msg),
            InitState::AwaitMac => self.handle_mac(msg),
            _ => Err(ProtocolError::UnexpectedMessage),
        };
        if result.is_err() {
            self.state = InitState::Failed;
            self.session = None;
        }
        result
    }
    fn is_established(&self) -> bool {
        matches!(self.state, InitState::Established)
    }
    fn session_key(&self) -> Result<SessionKey, ProtocolError> {
        match self.state {
            InitState::Established => self.session.ok_or(ProtocolError::NotEstablished),
            _ => Err(ProtocolError::NotEstablished),
        }
    }
    fn trace(&self) -> &OpTrace {
        &self.trace
    }
}

#[derive(Debug)]
enum RespState {
    AwaitA1,
    AwaitA2,
    Established,
    Failed,
}

/// Responder-side SCIANC state machine.
#[derive(Debug)]
pub struct SciancResponder {
    creds: Credentials,
    now: u32,
    rng: HmacDrbg,
    nonce: Option<[u8; 32]>,
    peer_nonce: Option<[u8; 32]>,
    session: Option<SessionKey>,
    state: RespState,
    trace: OpTrace,
}

impl SciancResponder {
    /// Creates a responder.
    pub fn new(creds: Credentials, now: u32, rng: &mut HmacDrbg) -> Self {
        SciancResponder {
            creds,
            now,
            rng: HmacDrbg::new(&rng.bytes32(), b"scianc-responder"),
            nonce: None,
            peer_nonce: None,
            session: None,
            state: RespState::AwaitA1,
            trace: OpTrace::new(),
        }
    }

    fn handle_a1(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let id_a = msg.field(FieldKind::Id)?;
        let nonce_a: [u8; 32] = msg
            .field(FieldKind::Nonce)?
            .try_into()
            .map_err(|_| ProtocolError::Decode)?;
        let cert_a = ImplicitCert::from_bytes(msg.field(FieldKind::Cert)?)?;
        if cert_a.subject.as_bytes() != id_a {
            return Err(ProtocolError::AuthenticationFailed);
        }
        if !cert_a.is_valid_at(self.now) {
            return Err(ProtocolError::Cert(ecq_cert::CertError::Expired));
        }

        self.trace
            .record(StsPhase::Other, PrimitiveOp::RandomBytes { bytes: 32 });
        let nonce_b = self.rng.bytes32();
        let ks = derive_ks(&self.creds, &cert_a, &nonce_a, &nonce_b, &mut self.trace)?;

        self.nonce = Some(nonce_b);
        self.peer_nonce = Some(nonce_a);
        self.session = Some(ks);
        self.state = RespState::AwaitA2;
        Ok(Some(Message::new(
            "B1",
            vec![
                WireField::new(FieldKind::Id, self.creds.id.as_bytes().to_vec()),
                WireField::new(FieldKind::Nonce, nonce_b.to_vec()),
                WireField::new(FieldKind::Cert, self.creds.cert.to_bytes().to_vec()),
            ],
        )))
    }

    fn handle_a2(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let mac = msg.field(FieldKind::Mac)?;
        let ks = self.session.ok_or(ProtocolError::UnexpectedMessage)?;
        let nonce_a = self.peer_nonce.ok_or(ProtocolError::UnexpectedMessage)?;
        let nonce_b = self.nonce.ok_or(ProtocolError::UnexpectedMessage)?;
        self.trace.record(StsPhase::Other, PrimitiveOp::MacVerify);
        let expect = auth_mac(&ks, Role::Initiator, &nonce_a, &nonce_b);
        if !ecq_crypto::ct::eq(&expect, mac) {
            return Err(ProtocolError::AuthenticationFailed);
        }
        self.trace.record(StsPhase::Other, PrimitiveOp::MacTag);
        let own = auth_mac(&ks, Role::Responder, &nonce_a, &nonce_b);
        self.state = RespState::Established;
        Ok(Some(Message::new(
            "B2",
            vec![WireField::new(FieldKind::Mac, own.to_vec())],
        )))
    }
}

impl Endpoint for SciancResponder {
    fn id(&self) -> DeviceId {
        self.creds.id
    }
    fn role(&self) -> Role {
        Role::Responder
    }
    fn start(&mut self) -> Result<Option<Message>, ProtocolError> {
        Ok(None)
    }
    fn on_message(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let result = match self.state {
            RespState::AwaitA1 => self.handle_a1(msg),
            RespState::AwaitA2 => self.handle_a2(msg),
            _ => Err(ProtocolError::UnexpectedMessage),
        };
        if result.is_err() {
            self.state = RespState::Failed;
            self.session = None;
        }
        result
    }
    fn is_established(&self) -> bool {
        matches!(self.state, RespState::Established)
    }
    fn session_key(&self) -> Result<SessionKey, ProtocolError> {
        match self.state {
            RespState::Established => self.session.ok_or(ProtocolError::NotEstablished),
            _ => Err(ProtocolError::NotEstablished),
        }
    }
    fn trace(&self) -> &OpTrace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecq_cert::ca::CertificateAuthority;

    fn setup(seed: u64) -> (Credentials, Credentials, HmacDrbg) {
        let mut rng = HmacDrbg::from_seed(seed);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let a = Credentials::provision(&ca, DeviceId::from_label("a"), 0, 100, &mut rng).unwrap();
        let b = Credentials::provision(&ca, DeviceId::from_label("b"), 0, 100, &mut rng).unwrap();
        (a, b, rng)
    }

    #[test]
    fn mac_keyed_by_session_key() {
        // A holder of KS can forge future authentication MACs — the
        // structural tie the security analysis penalizes.
        let (a, b, mut rng) = setup(231);
        let out = crate::establish_scianc(&a, &b, 0, &mut rng).unwrap();
        let ks = out.initiator_key;
        let forged = auth_mac(&ks, Role::Initiator, &[0u8; 32], &[1u8; 32]);
        let recomputed = auth_mac(&ks, Role::Initiator, &[0u8; 32], &[1u8; 32]);
        assert_eq!(forged, recomputed);
    }

    #[test]
    fn tampered_mac_detected() {
        let (a, b, mut rng) = setup(232);
        let mut rng_a = HmacDrbg::new(&rng.bytes32(), b"x");
        let mut rng_b = HmacDrbg::new(&rng.bytes32(), b"y");
        let mut alice = SciancInitiator::new(a, 0, &mut rng_a);
        let mut bob = SciancResponder::new(b, 0, &mut rng_b);
        let a1 = alice.start().unwrap().unwrap();
        let b1 = bob.on_message(&a1).unwrap().unwrap();
        let mut a2 = alice.on_message(&b1).unwrap().unwrap();
        a2.fields[0].bytes[5] ^= 1;
        assert_eq!(
            bob.on_message(&a2).unwrap_err(),
            ProtocolError::AuthenticationFailed
        );
    }

    #[test]
    fn ec_operation_count_is_two_per_side() {
        // SCIANC's Table I advantage: only reconstruction + ECDH, no
        // signatures. The trace must show exactly 2 EC multiplications
        // per side.
        let (a, b, mut rng) = setup(233);
        let out = crate::establish_scianc(&a, &b, 0, &mut rng).unwrap();
        for role in [Role::Initiator, Role::Responder] {
            let t = out.transcript.trace(role);
            assert_eq!(t.count_op(PrimitiveOp::PublicKeyReconstruction), 1);
            assert_eq!(t.count_op(PrimitiveOp::EcdhDerive), 1);
            assert_eq!(t.count_op(PrimitiveOp::EcdsaSign), 0);
            assert_eq!(t.count_op(PrimitiveOp::EcdsaVerify), 0);
        }
    }

    #[test]
    fn id_cert_mismatch_rejected() {
        let (a, b, mut rng) = setup(234);
        let mut rng_b = HmacDrbg::new(&rng.bytes32(), b"y");
        let mut bob = SciancResponder::new(b, 0, &mut rng_b);
        // Present alice's cert under a different claimed ID.
        let msg = Message::new(
            "A1",
            vec![
                WireField::new(FieldKind::Id, vec![9u8; 16]),
                WireField::new(FieldKind::Nonce, vec![0u8; 32]),
                WireField::new(FieldKind::Cert, a.cert.to_bytes().to_vec()),
            ],
        );
        assert_eq!(
            bob.on_message(&msg).unwrap_err(),
            ProtocolError::AuthenticationFailed
        );
    }
}
