//! PORAMB: Porambage et al. \[3\] — two-phase certificate-based pairwise
//! key establishment for wireless sensor networks.
//!
//! Wire format (Table II):
//!
//! ```text
//! A1: Hello(32), ID(16)
//! B1: Hello(32), ID(16)
//! A2: Cert(101), Nonce(32), MAC(32)
//! B2: Cert(101), Nonce(32), MAC(32)
//! A3: Finish(197)
//! B3: Finish(197)
//! Total 6 steps, 820 B
//! ```
//!
//! Phase 1 exchanges hellos and identities; phase 2 exchanges
//! certificates and nonces authenticated with a **pre-shared pairwise
//! key** (the deployment burden §V-D criticizes: one stored key per
//! peer), then both sides derive the session key and confirm it with
//! `Finish` blobs.
//!
//! Key derivation (four EC multiplications per side, matching the
//! paper's consistent 2× ratio over SCIANC in Table I):
//!
//! 1. implicit reconstruction of the peer's public key (eq. (1));
//! 2. authenticator validation: re-derivation of the *own* public key
//!    from the own certificate, checked against the stored key pair;
//! 3. static pairwise secret `S1 = Prk_own · Q_peer`;
//! 4. nonce-bound session point `S2 = H_n(hellos ‖ nonces) · S1`.
//!
//! `S2` diversifies per session, but — as with every SKD — an attacker
//! holding a long-term private key recomputes `S1` and therefore every
//! past and future `S2` from public transcripts.

use ecq_cert::{reconstruct_public_key, DeviceId, ImplicitCert};
use ecq_crypto::hmac::hmac_sha256_concat;
use ecq_crypto::sha256::sha256_concat;
use ecq_crypto::HmacDrbg;
use ecq_p256::scalar::Scalar;
use ecq_proto::{
    Credentials, Endpoint, FieldKind, Message, OpTrace, PrimitiveOp, ProtocolError, Role,
    SessionKey, StsPhase, WireField,
};

/// Domain-separation label for the PORAMB KDF.
pub const KDF_LABEL: &[u8] = b"ecqv-poramb-v1";

/// Length of the pre-shared pairwise authentication key.
pub const PAIRWISE_KEY_LEN: usize = 32;

struct SessionInputs {
    hello_a: [u8; 32],
    hello_b: [u8; 32],
    nonce_a: [u8; 32],
    nonce_b: [u8; 32],
}

/// Derives the PORAMB session key (four EC multiplications).
fn derive_ks(
    own: &Credentials,
    peer_cert: &ImplicitCert,
    inputs: &SessionInputs,
    trace: &mut OpTrace,
) -> Result<SessionKey, ProtocolError> {
    // (1) implicit derivation of the peer public key.
    trace.record(
        StsPhase::Op2KeyDerivation,
        PrimitiveOp::PublicKeyReconstruction,
    );
    let q_peer = reconstruct_public_key(peer_cert, &own.ca_public)?;

    // (2) authenticator validation of the own certificate: the scheme
    // re-derives the own public key and checks it against the stored
    // pair before using the private key.
    trace.record(
        StsPhase::Op2KeyDerivation,
        PrimitiveOp::PublicKeyReconstruction,
    );
    let q_own = reconstruct_public_key(&own.cert, &own.ca_public)?;
    if q_own != own.keys.public {
        return Err(ProtocolError::AuthenticationFailed);
    }

    // (3) static pairwise point S1 = Prk_own · Q_peer.
    trace.record(StsPhase::Op2KeyDerivation, PrimitiveOp::EcdhDerive);
    let s1 = q_peer.mul_ct(&own.keys.private);
    if s1.infinity {
        return Err(ProtocolError::Curve(ecq_p256::CurveError::InfinityResult));
    }

    // (4) nonce-bound session point S2 = H_n(hellos ‖ nonces) · S1.
    let h = sha256_concat(&[
        &inputs.hello_a,
        &inputs.hello_b,
        &inputs.nonce_a,
        &inputs.nonce_b,
    ]);
    let s = Scalar::from_be_bytes_reduced(&h);
    trace.record(StsPhase::Op2KeyDerivation, PrimitiveOp::EcdhDerive);
    let s2 = s1.mul_ct(&s);
    if s2.infinity {
        return Err(ProtocolError::Curve(ecq_p256::CurveError::InfinityResult));
    }

    let salt = [
        inputs.hello_a.as_slice(),
        inputs.hello_b.as_slice(),
        inputs.nonce_a.as_slice(),
        inputs.nonce_b.as_slice(),
    ]
    .concat();
    trace.record(StsPhase::Op2KeyDerivation, PrimitiveOp::Kdf);
    Ok(SessionKey::derive(&s2.x.to_be_bytes(), &salt, KDF_LABEL))
}

/// Phase-2 MAC under the pre-shared pairwise key.
fn phase2_mac(
    pairwise: &[u8; PAIRWISE_KEY_LEN],
    role: Role,
    peer_hello: &[u8],
    nonce: &[u8],
    cert: &ImplicitCert,
) -> [u8; 32] {
    let role_tag: &[u8] = match role {
        Role::Initiator => b"A-p2",
        Role::Responder => b"B-p2",
    };
    hmac_sha256_concat(pairwise, &[role_tag, peer_hello, nonce, &cert.to_bytes()])
}

/// Builds the 197-byte finish blob: pairwise MAC (32) + own certificate
/// echo (101) + two key-confirmation tags under the session MAC key
/// (64).
fn finish_blob(
    pairwise: &[u8; PAIRWISE_KEY_LEN],
    ks: &SessionKey,
    role: Role,
    own_cert: &ImplicitCert,
    trace: &mut OpTrace,
) -> Vec<u8> {
    let role_tag: &[u8] = match role {
        Role::Initiator => b"A-fin",
        Role::Responder => b"B-fin",
    };
    for _ in 0..3 {
        trace.record(StsPhase::Other, PrimitiveOp::MacTag);
    }
    let cert_bytes = own_cert.to_bytes();
    let m1 = hmac_sha256_concat(pairwise, &[b"finish", role_tag, &cert_bytes]);
    let k1 = hmac_sha256_concat(&ks.mac_key(), &[b"kc1", role_tag]);
    let k2 = hmac_sha256_concat(&ks.mac_key(), &[b"kc2", role_tag]);
    let mut out = Vec::with_capacity(197);
    out.extend_from_slice(&m1);
    out.extend_from_slice(&cert_bytes);
    out.extend_from_slice(&k1);
    out.extend_from_slice(&k2);
    out
}

fn verify_finish(
    pairwise: &[u8; PAIRWISE_KEY_LEN],
    ks: &SessionKey,
    peer_role: Role,
    peer_cert: &ImplicitCert,
    blob: &[u8],
    trace: &mut OpTrace,
) -> Result<(), ProtocolError> {
    let mut scratch = OpTrace::new();
    let expect = finish_blob(pairwise, ks, peer_role, peer_cert, &mut scratch);
    for _ in 0..3 {
        trace.record(StsPhase::Other, PrimitiveOp::MacVerify);
    }
    if ecq_crypto::ct::eq(&expect, blob) {
        Ok(())
    } else {
        Err(ProtocolError::AuthenticationFailed)
    }
}

#[derive(Debug)]
enum InitState {
    Start,
    AwaitB1,
    AwaitB2,
    AwaitB3,
    Established,
    Failed,
}

/// Initiator-side PORAMB state machine.
#[derive(Debug)]
pub struct PorambInitiator {
    creds: Credentials,
    pairwise: [u8; PAIRWISE_KEY_LEN],
    now: u32,
    hello: [u8; 32],
    nonce: [u8; 32],
    peer_hello: Option<[u8; 32]>,
    peer_cert: Option<ImplicitCert>,
    session: Option<SessionKey>,
    state: InitState,
    trace: OpTrace,
}

impl PorambInitiator {
    /// Creates an initiator holding the pre-shared pairwise key.
    pub fn new(
        creds: Credentials,
        pairwise: [u8; PAIRWISE_KEY_LEN],
        now: u32,
        rng: &mut HmacDrbg,
    ) -> Self {
        let mut trace = OpTrace::new();
        trace.record(StsPhase::Other, PrimitiveOp::RandomBytes { bytes: 64 });
        PorambInitiator {
            creds,
            pairwise,
            now,
            hello: rng.bytes32(),
            nonce: rng.bytes32(),
            peer_hello: None,
            peer_cert: None,
            session: None,
            state: InitState::Start,
            trace,
        }
    }

    fn handle_b1(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let hello_b: [u8; 32] = msg
            .field(FieldKind::Hello)?
            .try_into()
            .map_err(|_| ProtocolError::Decode)?;
        let _id_b = msg.field(FieldKind::Id)?;
        self.peer_hello = Some(hello_b);

        self.trace.record(StsPhase::Other, PrimitiveOp::MacTag);
        let mac = phase2_mac(
            &self.pairwise,
            Role::Initiator,
            &hello_b,
            &self.nonce,
            &self.creds.cert,
        );
        self.state = InitState::AwaitB2;
        Ok(Some(Message::new(
            "A2",
            vec![
                WireField::new(FieldKind::Cert, self.creds.cert.to_bytes().to_vec()),
                WireField::new(FieldKind::Nonce, self.nonce.to_vec()),
                WireField::new(FieldKind::Mac, mac.to_vec()),
            ],
        )))
    }

    fn handle_b2(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let cert_b = ImplicitCert::from_bytes(msg.field(FieldKind::Cert)?)?;
        let nonce_b: [u8; 32] = msg
            .field(FieldKind::Nonce)?
            .try_into()
            .map_err(|_| ProtocolError::Decode)?;
        let mac = msg.field(FieldKind::Mac)?;

        if !cert_b.is_valid_at(self.now) {
            return Err(ProtocolError::Cert(ecq_cert::CertError::Expired));
        }
        self.trace.record(StsPhase::Other, PrimitiveOp::MacVerify);
        let expect = phase2_mac(
            &self.pairwise,
            Role::Responder,
            &self.hello,
            &nonce_b,
            &cert_b,
        );
        if !ecq_crypto::ct::eq(&expect, mac) {
            return Err(ProtocolError::AuthenticationFailed);
        }

        let hello_b = self.peer_hello.ok_or(ProtocolError::UnexpectedMessage)?;
        let inputs = SessionInputs {
            hello_a: self.hello,
            hello_b,
            nonce_a: self.nonce,
            nonce_b,
        };
        let ks = derive_ks(&self.creds, &cert_b, &inputs, &mut self.trace)?;
        let finish = finish_blob(
            &self.pairwise,
            &ks,
            Role::Initiator,
            &self.creds.cert,
            &mut self.trace,
        );
        self.peer_cert = Some(cert_b);
        self.session = Some(ks);
        self.state = InitState::AwaitB3;
        Ok(Some(Message::new(
            "A3",
            vec![WireField::new(FieldKind::Finish, finish)],
        )))
    }

    fn handle_b3(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let blob = msg.field(FieldKind::Finish)?;
        let ks = self.session.ok_or(ProtocolError::UnexpectedMessage)?;
        let cert_b = self.peer_cert.ok_or(ProtocolError::UnexpectedMessage)?;
        verify_finish(
            &self.pairwise,
            &ks,
            Role::Responder,
            &cert_b,
            blob,
            &mut self.trace,
        )?;
        self.state = InitState::Established;
        Ok(None)
    }
}

impl Endpoint for PorambInitiator {
    fn id(&self) -> DeviceId {
        self.creds.id
    }
    fn role(&self) -> Role {
        Role::Initiator
    }
    fn start(&mut self) -> Result<Option<Message>, ProtocolError> {
        match self.state {
            InitState::Start => {
                self.state = InitState::AwaitB1;
                Ok(Some(Message::new(
                    "A1",
                    vec![
                        WireField::new(FieldKind::Hello, self.hello.to_vec()),
                        WireField::new(FieldKind::Id, self.creds.id.as_bytes().to_vec()),
                    ],
                )))
            }
            _ => Err(ProtocolError::UnexpectedMessage),
        }
    }
    fn on_message(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let result = match self.state {
            InitState::AwaitB1 => self.handle_b1(msg),
            InitState::AwaitB2 => self.handle_b2(msg),
            InitState::AwaitB3 => self.handle_b3(msg),
            _ => Err(ProtocolError::UnexpectedMessage),
        };
        if result.is_err() {
            self.state = InitState::Failed;
            self.session = None;
        }
        result
    }
    fn is_established(&self) -> bool {
        matches!(self.state, InitState::Established)
    }
    fn session_key(&self) -> Result<SessionKey, ProtocolError> {
        match self.state {
            InitState::Established => self.session.ok_or(ProtocolError::NotEstablished),
            _ => Err(ProtocolError::NotEstablished),
        }
    }
    fn trace(&self) -> &OpTrace {
        &self.trace
    }
}

#[derive(Debug)]
enum RespState {
    AwaitA1,
    AwaitA2,
    AwaitA3,
    Established,
    Failed,
}

/// Responder-side PORAMB state machine.
#[derive(Debug)]
pub struct PorambResponder {
    creds: Credentials,
    pairwise: [u8; PAIRWISE_KEY_LEN],
    now: u32,
    rng: HmacDrbg,
    hello: Option<[u8; 32]>,
    nonce: Option<[u8; 32]>,
    peer_hello: Option<[u8; 32]>,
    peer_cert: Option<ImplicitCert>,
    session: Option<SessionKey>,
    state: RespState,
    trace: OpTrace,
}

impl PorambResponder {
    /// Creates a responder holding the pre-shared pairwise key.
    pub fn new(
        creds: Credentials,
        pairwise: [u8; PAIRWISE_KEY_LEN],
        now: u32,
        rng: &mut HmacDrbg,
    ) -> Self {
        PorambResponder {
            creds,
            pairwise,
            now,
            rng: HmacDrbg::new(&rng.bytes32(), b"poramb-responder"),
            hello: None,
            nonce: None,
            peer_hello: None,
            peer_cert: None,
            session: None,
            state: RespState::AwaitA1,
            trace: OpTrace::new(),
        }
    }

    fn handle_a1(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let hello_a: [u8; 32] = msg
            .field(FieldKind::Hello)?
            .try_into()
            .map_err(|_| ProtocolError::Decode)?;
        let _id_a = msg.field(FieldKind::Id)?;
        self.trace
            .record(StsPhase::Other, PrimitiveOp::RandomBytes { bytes: 32 });
        let hello_b = self.rng.bytes32();
        self.hello = Some(hello_b);
        self.peer_hello = Some(hello_a);
        self.state = RespState::AwaitA2;
        Ok(Some(Message::new(
            "B1",
            vec![
                WireField::new(FieldKind::Hello, hello_b.to_vec()),
                WireField::new(FieldKind::Id, self.creds.id.as_bytes().to_vec()),
            ],
        )))
    }

    fn handle_a2(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let cert_a = ImplicitCert::from_bytes(msg.field(FieldKind::Cert)?)?;
        let nonce_a: [u8; 32] = msg
            .field(FieldKind::Nonce)?
            .try_into()
            .map_err(|_| ProtocolError::Decode)?;
        let mac = msg.field(FieldKind::Mac)?;

        if !cert_a.is_valid_at(self.now) {
            return Err(ProtocolError::Cert(ecq_cert::CertError::Expired));
        }
        let hello_b = self.hello.ok_or(ProtocolError::UnexpectedMessage)?;
        let hello_a = self.peer_hello.ok_or(ProtocolError::UnexpectedMessage)?;
        self.trace.record(StsPhase::Other, PrimitiveOp::MacVerify);
        let expect = phase2_mac(&self.pairwise, Role::Initiator, &hello_b, &nonce_a, &cert_a);
        if !ecq_crypto::ct::eq(&expect, mac) {
            return Err(ProtocolError::AuthenticationFailed);
        }

        self.trace
            .record(StsPhase::Other, PrimitiveOp::RandomBytes { bytes: 32 });
        let nonce_b = self.rng.bytes32();
        self.trace.record(StsPhase::Other, PrimitiveOp::MacTag);
        let own_mac = phase2_mac(
            &self.pairwise,
            Role::Responder,
            &hello_a,
            &nonce_b,
            &self.creds.cert,
        );

        let inputs = SessionInputs {
            hello_a,
            hello_b,
            nonce_a,
            nonce_b,
        };
        let ks = derive_ks(&self.creds, &cert_a, &inputs, &mut self.trace)?;

        self.nonce = Some(nonce_b);
        self.peer_cert = Some(cert_a);
        self.session = Some(ks);
        self.state = RespState::AwaitA3;
        Ok(Some(Message::new(
            "B2",
            vec![
                WireField::new(FieldKind::Cert, self.creds.cert.to_bytes().to_vec()),
                WireField::new(FieldKind::Nonce, nonce_b.to_vec()),
                WireField::new(FieldKind::Mac, own_mac.to_vec()),
            ],
        )))
    }

    fn handle_a3(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let blob = msg.field(FieldKind::Finish)?;
        let ks = self.session.ok_or(ProtocolError::UnexpectedMessage)?;
        let cert_a = self.peer_cert.ok_or(ProtocolError::UnexpectedMessage)?;
        verify_finish(
            &self.pairwise,
            &ks,
            Role::Initiator,
            &cert_a,
            blob,
            &mut self.trace,
        )?;
        let own = finish_blob(
            &self.pairwise,
            &ks,
            Role::Responder,
            &self.creds.cert,
            &mut self.trace,
        );
        self.state = RespState::Established;
        Ok(Some(Message::new(
            "B3",
            vec![WireField::new(FieldKind::Finish, own)],
        )))
    }
}

impl Endpoint for PorambResponder {
    fn id(&self) -> DeviceId {
        self.creds.id
    }
    fn role(&self) -> Role {
        Role::Responder
    }
    fn start(&mut self) -> Result<Option<Message>, ProtocolError> {
        Ok(None)
    }
    fn on_message(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let result = match self.state {
            RespState::AwaitA1 => self.handle_a1(msg),
            RespState::AwaitA2 => self.handle_a2(msg),
            RespState::AwaitA3 => self.handle_a3(msg),
            _ => Err(ProtocolError::UnexpectedMessage),
        };
        if result.is_err() {
            self.state = RespState::Failed;
            self.session = None;
        }
        result
    }
    fn is_established(&self) -> bool {
        matches!(self.state, RespState::Established)
    }
    fn session_key(&self) -> Result<SessionKey, ProtocolError> {
        match self.state {
            RespState::Established => self.session.ok_or(ProtocolError::NotEstablished),
            _ => Err(ProtocolError::NotEstablished),
        }
    }
    fn trace(&self) -> &OpTrace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecq_cert::ca::CertificateAuthority;

    fn setup(seed: u64) -> (Credentials, Credentials, HmacDrbg) {
        let mut rng = HmacDrbg::from_seed(seed);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let a = Credentials::provision(&ca, DeviceId::from_label("a"), 0, 100, &mut rng).unwrap();
        let b = Credentials::provision(&ca, DeviceId::from_label("b"), 0, 100, &mut rng).unwrap();
        (a, b, rng)
    }

    #[test]
    fn wrong_pairwise_key_fails() {
        // Porambage's authentication rests on the pre-shared key: a
        // peer without it cannot produce valid phase-2 MACs.
        let (a, b, mut rng) = setup(241);
        use ecq_proto::run_handshake;
        let mut rng_a = HmacDrbg::new(&rng.bytes32(), b"x");
        let mut rng_b = HmacDrbg::new(&rng.bytes32(), b"y");
        let mut alice = PorambInitiator::new(a, [1u8; 32], 0, &mut rng_a);
        let mut bob = PorambResponder::new(b, [2u8; 32], 0, &mut rng_b);
        assert_eq!(
            run_handshake(&mut alice, &mut bob).unwrap_err(),
            ProtocolError::AuthenticationFailed
        );
    }

    #[test]
    fn four_ec_mults_per_side() {
        // The Table I cost structure: 2 reconstructions + 2 ECDH-class
        // multiplications per side (2× SCIANC).
        let (a, b, mut rng) = setup(242);
        let out = crate::establish_poramb(&a, &b, &[7u8; 32], 0, &mut rng).unwrap();
        for role in [Role::Initiator, Role::Responder] {
            let t = out.transcript.trace(role);
            assert_eq!(t.count_op(PrimitiveOp::PublicKeyReconstruction), 2);
            assert_eq!(t.count_op(PrimitiveOp::EcdhDerive), 2);
            assert_eq!(t.count_op(PrimitiveOp::EcdsaSign), 0);
        }
    }

    #[test]
    fn session_keys_diversify_with_nonces() {
        let (a, b, mut rng) = setup(243);
        let o1 = crate::establish_poramb(&a, &b, &[7u8; 32], 0, &mut rng).unwrap();
        let o2 = crate::establish_poramb(&a, &b, &[7u8; 32], 0, &mut rng).unwrap();
        assert_ne!(o1.initiator_key, o2.initiator_key);
    }

    #[test]
    fn tampered_finish_detected() {
        let (a, b, mut rng) = setup(244);
        use ecq_proto::Endpoint as _;
        let mut rng_a = HmacDrbg::new(&rng.bytes32(), b"x");
        let mut rng_b = HmacDrbg::new(&rng.bytes32(), b"y");
        let mut alice = PorambInitiator::new(a, [7u8; 32], 0, &mut rng_a);
        let mut bob = PorambResponder::new(b, [7u8; 32], 0, &mut rng_b);
        let a1 = alice.start().unwrap().unwrap();
        let b1 = bob.on_message(&a1).unwrap().unwrap();
        let a2 = alice.on_message(&b1).unwrap().unwrap();
        let b2 = bob.on_message(&a2).unwrap().unwrap();
        let mut a3 = alice.on_message(&b2).unwrap().unwrap();
        a3.fields[0].bytes[50] ^= 1; // inside the cert echo
        assert_eq!(
            bob.on_message(&a3).unwrap_err(),
            ProtocolError::AuthenticationFailed
        );
    }
}
