//! S-ECDSA: the static ECDSA key-derivation protocol of Basic et
//! al. \[5\], the paper's primary comparison point.
//!
//! Wire format (Table II):
//!
//! ```text
//! A1: ID(16), Nonce(32)
//! B1: ID(16), Cert(101), Sign(64), Nonce(32)
//! A2: Cert(101), Sign(64)
//! B2: ACK(1)            [+ext: Fin(96)]
//! A3: [+ext: Fin(96)]
//! Total 4(+1) steps, 427(+192) B
//! ```
//!
//! Signatures authenticate the nonce exchange (`Sign_B` over
//! `Nonce_A ‖ Nonce_B ‖ ID_B`, `Sign_A` over `Nonce_B ‖ Nonce_A ‖
//! ID_A`); the session key is the **static** Diffie–Hellman premaster
//! diversified by the nonces: `KS = KDF(Prk_a·Puk_b, Nonce_A ‖
//! Nonce_B)`. The nonces are public, so the entropy of `KS` rests
//! entirely on the certificate-bound premaster — no forward secrecy.
//!
//! The extended variant adds the finished-message handling the paper
//! adopts from Porambage et al. \[3\]: each side confirms the derived key
//! with a 96-byte `Fin` blob of three HMAC tags (transcript, nonces and
//! key-confirmation labels) under the session MAC key.

use ecq_cert::{DeviceId, ImplicitCert};
use ecq_crypto::hmac::hmac_sha256_concat;
use ecq_crypto::HmacDrbg;
use ecq_p256::ecdsa::{self, Signature, VerifyStrategy};
use ecq_proto::{
    Credentials, Endpoint, FieldKind, Message, OpTrace, PrimitiveOp, ProtocolError, Role,
    SessionKey, StsPhase, WireField,
};

/// Domain-separation label for the S-ECDSA KDF.
pub const KDF_LABEL: &[u8] = b"ecqv-s-ecdsa-v1";

fn sign_material(nonce_first: &[u8], nonce_second: &[u8], id: &[u8]) -> Vec<u8> {
    [nonce_first, nonce_second, id].concat()
}

/// Builds the 96-byte extended finished blob: three HMAC tags under the
/// session MAC key (transcript-binding, nonce-echo, key-confirmation).
fn fin_blob(
    ks: &SessionKey,
    role: Role,
    nonce_a: &[u8],
    nonce_b: &[u8],
    trace: &mut OpTrace,
) -> Vec<u8> {
    let key = ks.mac_key();
    let role_tag: &[u8] = match role {
        Role::Initiator => b"A-fin",
        Role::Responder => b"B-fin",
    };
    for _ in 0..3 {
        trace.record(StsPhase::Other, PrimitiveOp::MacTag);
    }
    let t1 = hmac_sha256_concat(&key, &[b"transcript", role_tag, nonce_a, nonce_b]);
    let t2 = hmac_sha256_concat(&key, &[b"nonce-echo", role_tag, nonce_b, nonce_a]);
    let t3 = hmac_sha256_concat(&key, &[b"key-confirm", role_tag]);
    [t1.as_slice(), t2.as_slice(), t3.as_slice()].concat()
}

fn verify_fin(
    ks: &SessionKey,
    peer_role: Role,
    nonce_a: &[u8],
    nonce_b: &[u8],
    fin: &[u8],
    trace: &mut OpTrace,
) -> Result<(), ProtocolError> {
    let mut check_trace = OpTrace::new();
    let expect = fin_blob(ks, peer_role, nonce_a, nonce_b, &mut check_trace);
    for _ in 0..3 {
        trace.record(StsPhase::Other, PrimitiveOp::MacVerify);
    }
    if ecq_crypto::ct::eq(&expect, fin) {
        Ok(())
    } else {
        Err(ProtocolError::AuthenticationFailed)
    }
}

#[derive(Debug)]
enum InitState {
    Start,
    AwaitB1,
    AwaitAck,
    Established,
    Failed,
}

/// Initiator-side S-ECDSA state machine.
#[derive(Debug)]
pub struct SEcdsaInitiator {
    creds: Credentials,
    now: u32,
    extended: bool,
    nonce: [u8; 32],
    peer_nonce: Option<[u8; 32]>,
    session: Option<SessionKey>,
    state: InitState,
    trace: OpTrace,
}

impl SEcdsaInitiator {
    /// Creates an initiator; draws its nonce eagerly.
    pub fn new(creds: Credentials, now: u32, extended: bool, rng: &mut HmacDrbg) -> Self {
        let mut trace = OpTrace::new();
        trace.record(StsPhase::Other, PrimitiveOp::RandomBytes { bytes: 32 });
        SEcdsaInitiator {
            creds,
            now,
            extended,
            nonce: rng.bytes32(),
            peer_nonce: None,
            session: None,
            state: InitState::Start,
            trace,
        }
    }

    fn handle_b1(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let id_b = msg.field(FieldKind::Id)?;
        let cert_b = ImplicitCert::from_bytes(msg.field(FieldKind::Cert)?)?;
        let sig_b = Signature::from_bytes(msg.field(FieldKind::Signature)?)
            .map_err(|_| ProtocolError::AuthenticationFailed)?;
        let nonce_b: [u8; 32] = msg
            .field(FieldKind::Nonce)?
            .try_into()
            .map_err(|_| ProtocolError::Decode)?;

        if cert_b.subject.as_bytes() != id_b {
            return Err(ProtocolError::AuthenticationFailed);
        }
        if !cert_b.is_valid_at(self.now) {
            return Err(ProtocolError::Cert(ecq_cert::CertError::Expired));
        }

        // Implicitly derive Q_B and verify the nonce signature.
        self.trace.record(
            StsPhase::Op2KeyDerivation,
            PrimitiveOp::PublicKeyReconstruction,
        );
        let q_b = ecq_cert::reconstruct_public_key(&cert_b, &self.creds.ca_public)?;
        self.trace
            .record(StsPhase::Op4DecryptVerify, PrimitiveOp::EcdsaVerify);
        let material = sign_material(&self.nonce, &nonce_b, id_b);
        if !ecdsa::verify_with(&q_b, &material, &sig_b, VerifyStrategy::SeparateMuls) {
            return Err(ProtocolError::AuthenticationFailed);
        }

        // Static KD. Note the reconstruction already happened for the
        // signature check; the implementation reuses Q_B, so only the
        // ECDH multiplication is billed here.
        self.trace
            .record(StsPhase::Op2KeyDerivation, PrimitiveOp::EcdhDerive);
        let premaster = ecq_p256::ecdh::shared_secret(&self.creds.keys.private, &q_b)?;
        let salt = [self.nonce.as_slice(), nonce_b.as_slice()].concat();
        self.trace
            .record(StsPhase::Op2KeyDerivation, PrimitiveOp::Kdf);
        let ks = SessionKey::derive(premaster.as_slice(), &salt, KDF_LABEL);

        // Our own signature over (Nonce_B ‖ Nonce_A ‖ ID_A).
        self.trace
            .record(StsPhase::Op3SignEncrypt, PrimitiveOp::EcdsaSign);
        let sig_a = ecdsa::sign(
            &self.creds.keys.private,
            &sign_material(&nonce_b, &self.nonce, self.creds.id.as_bytes()),
        );

        self.peer_nonce = Some(nonce_b);
        self.session = Some(ks);
        self.state = InitState::AwaitAck;
        Ok(Some(Message::new(
            "A2",
            vec![
                WireField::new(FieldKind::Cert, self.creds.cert.to_bytes().to_vec()),
                WireField::new(FieldKind::Signature, sig_a.to_bytes().to_vec()),
            ],
        )))
    }

    fn handle_ack(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        if msg.field(FieldKind::Ack)? != [0x01] {
            return Err(ProtocolError::AuthenticationFailed);
        }
        let ks = self.session.ok_or(ProtocolError::UnexpectedMessage)?;
        let nonce_b = self.peer_nonce.ok_or(ProtocolError::UnexpectedMessage)?;
        if self.extended {
            let fin = msg.field(FieldKind::Fin)?;
            verify_fin(
                &ks,
                Role::Responder,
                &self.nonce,
                &nonce_b,
                fin,
                &mut self.trace,
            )?;
            let own_fin = fin_blob(&ks, Role::Initiator, &self.nonce, &nonce_b, &mut self.trace);
            self.state = InitState::Established;
            return Ok(Some(Message::new(
                "A3",
                vec![WireField::new(FieldKind::Fin, own_fin)],
            )));
        }
        self.state = InitState::Established;
        Ok(None)
    }
}

impl Endpoint for SEcdsaInitiator {
    fn id(&self) -> DeviceId {
        self.creds.id
    }
    fn role(&self) -> Role {
        Role::Initiator
    }
    fn start(&mut self) -> Result<Option<Message>, ProtocolError> {
        match self.state {
            InitState::Start => {
                self.state = InitState::AwaitB1;
                Ok(Some(Message::new(
                    "A1",
                    vec![
                        WireField::new(FieldKind::Id, self.creds.id.as_bytes().to_vec()),
                        WireField::new(FieldKind::Nonce, self.nonce.to_vec()),
                    ],
                )))
            }
            _ => Err(ProtocolError::UnexpectedMessage),
        }
    }
    fn on_message(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let result = match self.state {
            InitState::AwaitB1 => self.handle_b1(msg),
            InitState::AwaitAck => self.handle_ack(msg),
            _ => Err(ProtocolError::UnexpectedMessage),
        };
        if result.is_err() {
            self.state = InitState::Failed;
            self.session = None;
        }
        result
    }
    fn is_established(&self) -> bool {
        matches!(self.state, InitState::Established)
    }
    fn session_key(&self) -> Result<SessionKey, ProtocolError> {
        match self.state {
            InitState::Established => self.session.ok_or(ProtocolError::NotEstablished),
            _ => Err(ProtocolError::NotEstablished),
        }
    }
    fn trace(&self) -> &OpTrace {
        &self.trace
    }
}

#[derive(Debug)]
enum RespState {
    AwaitA1,
    AwaitA2,
    AwaitFin,
    Established,
    Failed,
}

/// Responder-side S-ECDSA state machine.
#[derive(Debug)]
pub struct SEcdsaResponder {
    creds: Credentials,
    now: u32,
    extended: bool,
    rng: HmacDrbg,
    nonce: Option<[u8; 32]>,
    peer_id: Option<Vec<u8>>,
    peer_nonce: Option<[u8; 32]>,
    session: Option<SessionKey>,
    state: RespState,
    trace: OpTrace,
}

impl SEcdsaResponder {
    /// Creates a responder.
    pub fn new(creds: Credentials, now: u32, extended: bool, rng: &mut HmacDrbg) -> Self {
        SEcdsaResponder {
            creds,
            now,
            extended,
            rng: HmacDrbg::new(&rng.bytes32(), b"secdsa-responder"),
            nonce: None,
            peer_id: None,
            peer_nonce: None,
            session: None,
            state: RespState::AwaitA1,
            trace: OpTrace::new(),
        }
    }

    fn handle_a1(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let id_a = msg.field(FieldKind::Id)?.to_vec();
        let nonce_a: [u8; 32] = msg
            .field(FieldKind::Nonce)?
            .try_into()
            .map_err(|_| ProtocolError::Decode)?;

        self.trace
            .record(StsPhase::Other, PrimitiveOp::RandomBytes { bytes: 32 });
        let nonce_b = self.rng.bytes32();

        self.trace
            .record(StsPhase::Op3SignEncrypt, PrimitiveOp::EcdsaSign);
        let sig_b = ecdsa::sign(
            &self.creds.keys.private,
            &sign_material(&nonce_a, &nonce_b, self.creds.id.as_bytes()),
        );

        self.nonce = Some(nonce_b);
        self.peer_id = Some(id_a);
        self.peer_nonce = Some(nonce_a);
        self.state = RespState::AwaitA2;
        Ok(Some(Message::new(
            "B1",
            vec![
                WireField::new(FieldKind::Id, self.creds.id.as_bytes().to_vec()),
                WireField::new(FieldKind::Cert, self.creds.cert.to_bytes().to_vec()),
                WireField::new(FieldKind::Signature, sig_b.to_bytes().to_vec()),
                WireField::new(FieldKind::Nonce, nonce_b.to_vec()),
            ],
        )))
    }

    fn handle_a2(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let cert_a = ImplicitCert::from_bytes(msg.field(FieldKind::Cert)?)?;
        let sig_a = Signature::from_bytes(msg.field(FieldKind::Signature)?)
            .map_err(|_| ProtocolError::AuthenticationFailed)?;

        let claimed = self
            .peer_id
            .as_deref()
            .ok_or(ProtocolError::UnexpectedMessage)?;
        if cert_a.subject.as_bytes() != claimed {
            return Err(ProtocolError::AuthenticationFailed);
        }
        if !cert_a.is_valid_at(self.now) {
            return Err(ProtocolError::Cert(ecq_cert::CertError::Expired));
        }
        let nonce_a = self.peer_nonce.ok_or(ProtocolError::UnexpectedMessage)?;
        let nonce_b = self.nonce.ok_or(ProtocolError::UnexpectedMessage)?;

        self.trace.record(
            StsPhase::Op2KeyDerivation,
            PrimitiveOp::PublicKeyReconstruction,
        );
        let q_a = ecq_cert::reconstruct_public_key(&cert_a, &self.creds.ca_public)?;
        self.trace
            .record(StsPhase::Op4DecryptVerify, PrimitiveOp::EcdsaVerify);
        let material = sign_material(&nonce_b, &nonce_a, claimed);
        if !ecdsa::verify_with(&q_a, &material, &sig_a, VerifyStrategy::SeparateMuls) {
            return Err(ProtocolError::AuthenticationFailed);
        }

        self.trace
            .record(StsPhase::Op2KeyDerivation, PrimitiveOp::EcdhDerive);
        let premaster = ecq_p256::ecdh::shared_secret(&self.creds.keys.private, &q_a)?;
        let salt = [nonce_a.as_slice(), nonce_b.as_slice()].concat();
        self.trace
            .record(StsPhase::Op2KeyDerivation, PrimitiveOp::Kdf);
        let ks = SessionKey::derive(premaster.as_slice(), &salt, KDF_LABEL);
        self.session = Some(ks);

        let mut fields = vec![WireField::new(FieldKind::Ack, vec![0x01])];
        if self.extended {
            let fin = fin_blob(&ks, Role::Responder, &nonce_a, &nonce_b, &mut self.trace);
            fields.push(WireField::new(FieldKind::Fin, fin));
            self.state = RespState::AwaitFin;
        } else {
            self.state = RespState::Established;
        }
        Ok(Some(Message::new("B2", fields)))
    }

    fn handle_fin(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let fin = msg.field(FieldKind::Fin)?;
        let ks = self.session.ok_or(ProtocolError::UnexpectedMessage)?;
        let nonce_a = self.peer_nonce.ok_or(ProtocolError::UnexpectedMessage)?;
        let nonce_b = self.nonce.ok_or(ProtocolError::UnexpectedMessage)?;
        verify_fin(
            &ks,
            Role::Initiator,
            &nonce_a,
            &nonce_b,
            fin,
            &mut self.trace,
        )?;
        self.state = RespState::Established;
        Ok(None)
    }
}

impl Endpoint for SEcdsaResponder {
    fn id(&self) -> DeviceId {
        self.creds.id
    }
    fn role(&self) -> Role {
        Role::Responder
    }
    fn start(&mut self) -> Result<Option<Message>, ProtocolError> {
        Ok(None)
    }
    fn on_message(&mut self, msg: &Message) -> Result<Option<Message>, ProtocolError> {
        let result = match self.state {
            RespState::AwaitA1 => self.handle_a1(msg),
            RespState::AwaitA2 => self.handle_a2(msg),
            RespState::AwaitFin => self.handle_fin(msg),
            _ => Err(ProtocolError::UnexpectedMessage),
        };
        if result.is_err() {
            self.state = RespState::Failed;
            self.session = None;
        }
        result
    }
    fn is_established(&self) -> bool {
        matches!(self.state, RespState::Established)
    }
    fn session_key(&self) -> Result<SessionKey, ProtocolError> {
        match self.state {
            RespState::Established => self.session.ok_or(ProtocolError::NotEstablished),
            _ => Err(ProtocolError::NotEstablished),
        }
    }
    fn trace(&self) -> &OpTrace {
        &self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ecq_cert::ca::CertificateAuthority;

    fn setup(seed: u64) -> (Credentials, Credentials, HmacDrbg) {
        let mut rng = HmacDrbg::from_seed(seed);
        let ca = CertificateAuthority::new(DeviceId::from_label("CA"), &mut rng);
        let a = Credentials::provision(&ca, DeviceId::from_label("a"), 0, 100, &mut rng).unwrap();
        let b = Credentials::provision(&ca, DeviceId::from_label("b"), 0, 100, &mut rng).unwrap();
        (a, b, rng)
    }

    #[test]
    fn same_certificates_same_premaster_different_nonce_keys() {
        // KS changes with nonces, but the premaster does not — the
        // structural weakness Table III records as "key data reuse".
        let (a, b, mut rng) = setup(221);
        let o1 = crate::establish_s_ecdsa(&a, &b, 0, false, &mut rng).unwrap();
        let o2 = crate::establish_s_ecdsa(&a, &b, 0, false, &mut rng).unwrap();
        assert_ne!(o1.initiator_key, o2.initiator_key); // nonce diversified
        let p1 = crate::skd::static_premaster(&a, &b.cert).unwrap();
        let p2 = crate::skd::static_premaster(&a, &b.cert).unwrap();
        assert_eq!(p1, p2); // but the secret base is static
    }

    #[test]
    fn cross_ca_fails() {
        let mut rng = HmacDrbg::from_seed(222);
        let ca1 = CertificateAuthority::new(DeviceId::from_label("CA1"), &mut rng);
        let ca2 = CertificateAuthority::new(DeviceId::from_label("CA2"), &mut rng);
        let a = Credentials::provision(&ca1, DeviceId::from_label("a"), 0, 100, &mut rng).unwrap();
        let b = Credentials::provision(&ca2, DeviceId::from_label("b"), 0, 100, &mut rng).unwrap();
        assert!(crate::establish_s_ecdsa(&a, &b, 0, false, &mut rng).is_err());
    }

    #[test]
    fn expired_cert_fails() {
        let (a, b, mut rng) = setup(223);
        assert!(crate::establish_s_ecdsa(&a, &b, 5000, false, &mut rng).is_err());
    }

    #[test]
    fn extended_handshake_traces_mac_work() {
        let (a, b, mut rng) = setup(224);
        let out = crate::establish_s_ecdsa(&a, &b, 0, true, &mut rng).unwrap();
        let a_macs = out
            .transcript
            .trace(Role::Initiator)
            .count_op(PrimitiveOp::MacTag);
        assert_eq!(a_macs, 3); // one Fin blob
        let b_macs = out
            .transcript
            .trace(Role::Responder)
            .count_op(PrimitiveOp::MacTag);
        assert_eq!(b_macs, 3);
    }

    #[test]
    fn signature_swap_detected() {
        // An attacker relaying tampered B1 signatures must be caught.
        let (a, b, mut rng) = setup(225);
        let mut rng_a = HmacDrbg::new(&rng.bytes32(), b"x");
        let mut rng_b = HmacDrbg::new(&rng.bytes32(), b"y");
        let mut alice = SEcdsaInitiator::new(a, 0, false, &mut rng_a);
        let mut bob = SEcdsaResponder::new(b, 0, false, &mut rng_b);
        let a1 = alice.start().unwrap().unwrap();
        let mut b1 = bob.on_message(&a1).unwrap().unwrap();
        // Flip one signature byte.
        for f in &mut b1.fields {
            if f.kind == FieldKind::Signature {
                f.bytes[10] ^= 0x40;
            }
        }
        assert_eq!(
            alice.on_message(&b1).unwrap_err(),
            ProtocolError::AuthenticationFailed
        );
    }
}
