//! Fault-soundness properties of the shared-bus sweep: under *any*
//! random fault schedule, every session either completes with equal
//! keys on both endpoints or fails closed — never a silent key
//! mismatch, never a half-open outcome — and the report stays
//! bit-identical across thread counts with faults enabled.

use ecq_devices::DevicePreset;
use ecq_fleet::{FleetConfig, FleetCoordinator, FleetError, SweepOptions, TransportKind};
use ecq_proto::ProtocolError;
use ecq_simnet::FaultSpec;
use ecq_sts::StsVariant;
use proptest::prelude::*;

const VARIANTS: [StsVariant; 3] = [
    StsVariant::Conventional,
    StsVariant::OptimizationI,
    StsVariant::OptimizationII,
];

fn run_faulted(
    devices: usize,
    seed: u64,
    preset: DevicePreset,
    variant: StsVariant,
    faults: FaultSpec,
    threads: usize,
) -> FleetCoordinator {
    let mut fleet = FleetCoordinator::new(
        FleetConfig::new()
            .devices(devices)
            .ca_shards(1)
            .enroll_batch(devices)
            .seed(seed)
            .variant(variant),
    );
    fleet.set_preset_all(preset);
    fleet.enroll_all().expect("enrollment is fault-free");
    let opts = SweepOptions::new()
        .threads(threads)
        .transport(TransportKind::SharedBus { group: 2 })
        .faults(faults);
    // Handshake failures are the point of the exercise; the coordinator
    // still aggregates every session's outcome.
    let _ = fleet.interleaved_sweep(&opts);
    fleet
}

/// The soundness invariant: established XOR failed-closed, and the
/// failure is never a key mismatch.
fn assert_sound(fleet: &FleetCoordinator, context: &str) {
    for (i, s) in fleet.sessions().iter().enumerate() {
        let keyed = s.last_key().is_some();
        let failed = s.failure().is_some();
        assert!(
            keyed ^ failed,
            "{context}: session {i} ended half-open (keyed={keyed}, failed={failed})"
        );
        assert_ne!(
            s.failure(),
            Some(&FleetError::Protocol(ProtocolError::KeyMismatch)),
            "{context}: session {i} silently derived mismatched keys"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For ANY random fault schedule — loss, corruption, duplication,
    /// reordering, delay, skew, at any rate up to 12 % per frame —
    /// every session lands on exactly one side of the contract.
    #[test]
    fn any_fault_schedule_is_sound(
        fault_seed in any::<u64>(),
        fleet_seed in any::<u64>(),
        drop in 0u16..=120,
        corrupt in 0u16..=120,
        duplicate in 0u16..=120,
        reorder in 0u16..=120,
        delay in 0u16..=120,
        skew in 0u32..=80_000,
        preset_ix in 0usize..4,
        variant_ix in 0usize..3,
    ) {
        let faults = FaultSpec {
            seed: fault_seed,
            drop_per_mille: drop,
            corrupt_per_mille: corrupt,
            duplicate_per_mille: duplicate,
            reorder_per_mille: reorder,
            delay_per_mille: delay,
            delay_ns: 2_000_000,
            skew_ppm: [0, skew],
            deadline_us: 60_000_000,
            ..FaultSpec::none()
        };
        let preset = DevicePreset::ALL[preset_ix];
        let variant = VARIANTS[variant_ix];
        let fleet = run_faulted(8, fleet_seed, preset, variant, faults, 1);
        assert_sound(&fleet, &format!("{preset:?}/{variant:?}"));
        // Every loss the engine recorded is visible in the report, and
        // timeouts only occur when something was actually injected.
        let r = fleet.report();
        if r.timeouts > 0 {
            prop_assert!(
                faults.is_active(),
                "timeouts without any active fault class"
            );
        }
    }
}

/// Acceptance criterion: shared-bus sweeps stay bit-identical for
/// 1/2/8 worker threads *with faults enabled* (8 buses, so all three
/// thread counts genuinely shard differently).
#[test]
fn faulted_shared_bus_report_is_thread_count_invariant() {
    let faults = FaultSpec {
        seed: 0xFA_417,
        drop_per_mille: 50,
        corrupt_per_mille: 40,
        duplicate_per_mille: 30,
        reorder_per_mille: 30,
        deadline_us: 60_000_000,
        ..FaultSpec::none()
    };
    let run = |threads: usize| {
        run_faulted(
            32,
            0xD0_0D,
            DevicePreset::S32K144,
            StsVariant::Conventional,
            faults,
            threads,
        )
        .report()
        .clone()
    };
    let one = run(1);
    let two = run(2);
    let eight = run(8);
    assert_eq!(one, two, "1 vs 2 workers under faults");
    assert_eq!(one, eight, "1 vs 8 workers under faults");
    assert!(one.key_digest.is_some());
    // The schedule must have actually injected something, or this
    // invariance test is vacuous.
    let c = one.faults;
    assert!(
        c.dropped + c.corrupted + c.duplicated + c.held_back > 0,
        "fault schedule fired nothing: {c:?}"
    );
}

/// Fixed-seed fault matrix across all 4 presets × 3 STS variants —
/// the release-mode fuzz pass of the CI `scenario` job
/// (`verify.sh scenario` runs it with `--ignored`).
#[test]
#[ignore = "heavy: release-mode fuzz pass, run via verify.sh scenario"]
fn fixed_seed_matrix_all_presets_and_variants() {
    for (pi, preset) in DevicePreset::ALL.into_iter().enumerate() {
        for (vi, variant) in VARIANTS.into_iter().enumerate() {
            for round in 0u64..4 {
                let faults = FaultSpec {
                    seed: 0xC0FFEE ^ (round << 8) ^ ((pi as u64) << 4) ^ vi as u64,
                    drop_per_mille: 60,
                    corrupt_per_mille: 50,
                    duplicate_per_mille: 40,
                    reorder_per_mille: 40,
                    delay_per_mille: 40,
                    delay_ns: 2_000_000,
                    skew_ppm: [0, 25_000],
                    deadline_us: 60_000_000,
                    ..FaultSpec::none()
                };
                let fleet = run_faulted(8, 0xBEEF ^ round, preset, variant, faults, 2);
                assert_sound(&fleet, &format!("{preset:?}/{variant:?}/round{round}"));
            }
        }
    }
}
