//! Golden frame-schedule fixture: a two-session shared-bus sweep must
//! reproduce its committed CAN-FD frame schedule line-by-line.
//!
//! The schedule is the determinism contract made visible: arbitration
//! winners, transmission windows, ISO-TP kinds and fault fates for
//! every frame on the bus, in bus order. Any change to arbitration,
//! segmentation, timing or the fault engine shows up here as a diff —
//! deliberate changes regenerate the fixture with
//! `GOLDEN_BUS_REGENERATE=1 cargo test -p ecq_fleet --test golden_bus`.

use ecq_devices::DevicePreset;
use ecq_fleet::{FleetConfig, FleetCoordinator, SweepOptions, TransportKind};
use ecq_simnet::{FaultAction, FaultSpec, TargetedFault};

fn fixture_path() -> String {
    format!(
        "{}/tests/fixtures/shared_bus_schedule.txt",
        env!("CARGO_MANIFEST_DIR")
    )
}

/// One line per frame: stable, diff-friendly, no floats.
fn render(fleet: &FleetCoordinator) -> String {
    let mut out = String::new();
    out.push_str("# bus seq id slot sender kind fate start_ns completed_ns\n");
    for (bus, frames) in fleet.last_frame_logs() {
        for f in frames {
            let slot = f.slot.map_or("-".to_string(), |s| s.to_string());
            let sender = f.sender.map_or("-", |r| match r {
                ecq_proto::Role::Initiator => "I",
                ecq_proto::Role::Responder => "R",
            });
            out.push_str(&format!(
                "{bus} {seq} {id:#05x} {slot} {sender} {kind} {fate} {start} {end}\n",
                seq = f.seq,
                id = f.id,
                kind = f.kind,
                fate = f.fate,
                start = f.start_ns,
                end = f.completed_ns,
            ));
        }
    }
    out
}

/// The pinned run: two S32K144 sessions on one bus, one targeted drop
/// so the fixture also pins how a faulted frame is scheduled (it still
/// occupies the bus) and how the timeout path drains.
fn pinned_run() -> FleetCoordinator {
    let mut fleet = FleetCoordinator::new(
        FleetConfig::new()
            .devices(4)
            .ca_shards(1)
            .enroll_batch(4)
            .seed(0x601D),
    );
    fleet.set_preset_all(DevicePreset::S32K144);
    fleet.enroll_all().expect("enrollment");
    let faults = FaultSpec::targeted_only(
        TargetedFault {
            session: 1,
            sender: ecq_proto::Role::Responder,
            message: 0,
            frame: 2,
            action: FaultAction::Drop,
        },
        20_000_000,
    );
    let opts = SweepOptions::new()
        .threads(1)
        .transport(TransportKind::SharedBus { group: 2 })
        .faults(faults);
    // Session 1 times out (its B1 never reassembles); session 0
    // completes. Both outcomes are part of the pinned schedule.
    let _ = fleet.interleaved_sweep(&opts);
    fleet
}

#[test]
fn frame_schedule_matches_golden_fixture() {
    let fleet = pinned_run();
    let rendered = render(&fleet);
    let path = fixture_path();
    if std::env::var_os("GOLDEN_BUS_REGENERATE").is_some() {
        std::fs::write(&path, &rendered).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing fixture {path}: {e}; regenerate with GOLDEN_BUS_REGENERATE=1")
    });
    if rendered != expected {
        // Line-by-line first differences beat a full-text dump.
        for (n, (got, want)) in rendered.lines().zip(expected.lines()).enumerate() {
            assert_eq!(
                got,
                want,
                "frame schedule diverges from fixture at line {}",
                n + 1
            );
        }
        assert_eq!(
            rendered.lines().count(),
            expected.lines().count(),
            "frame schedule length diverges from fixture"
        );
        panic!("schedules differ but no line did — check trailing whitespace");
    }
}

/// The fixture itself stays structurally sane: both sessions' frames
/// appear, the dropped frame is recorded with its fate, and bus time
/// never runs backwards.
#[test]
fn fixture_is_structurally_sound() {
    let fleet = pinned_run();
    let logs = fleet.last_frame_logs();
    assert_eq!(logs.len(), 1, "one shared bus");
    let frames = &logs[0].1;
    assert!(!frames.is_empty());
    assert!(
        frames.iter().any(|f| f.fate == "drop"),
        "pinned drop missing"
    );
    assert!(frames.iter().any(|f| f.slot == Some(0)));
    assert!(frames.iter().any(|f| f.slot == Some(1)));
    for pair in frames.windows(2) {
        assert!(
            pair[0].start_ns <= pair[1].start_ns,
            "bus schedule must be time-ordered"
        );
    }
    let report = fleet.report();
    assert_eq!(report.timeouts, 1, "session 1 fails closed at the deadline");
    assert_eq!(report.handshakes, 1, "session 0 still completes");
}
