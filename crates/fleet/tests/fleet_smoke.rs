//! Fleet-scale smoke tests: a four-digit enrollment sweep plus
//! property checks that the lifecycle is deterministic and correct at
//! smaller sizes (the ISSUE-mandated ≥1000-device enrollment runs real
//! ECQV cryptography for every device).

use ecq_fleet::{FleetConfig, FleetCoordinator, SweepOptions, TransportKind};
use proptest::prelude::*;
use std::time::Instant;

#[test]
fn thousand_device_enrollment() {
    let mut fleet = FleetCoordinator::new(
        FleetConfig::new()
            .devices(1000)
            .ca_shards(8)
            .enroll_batch(64)
            .seed(0x1000),
    );
    fleet.enroll_all().expect("enrollment succeeds");
    let report = fleet.report();
    assert_eq!(report.enrolled, 1000);
    assert!(report.enroll_batches >= 1000 / 64);
    assert!(report.enrollments_per_virtual_sec() > 0.0);
    // Every fourth device spot-checked for full ECQV consistency.
    for d in fleet.devices().iter().step_by(4) {
        let creds = d.credentials.as_ref().expect("enrolled");
        assert!(creds.keys.is_consistent());
        assert_eq!(creds.cert.subject, d.id);
        assert!(creds.cert.is_valid_at(0));
    }
    // All four evaluation boards are represented in the roster.
    assert_eq!(report.per_preset.len(), 4);
    assert_eq!(report.per_preset.values().sum::<usize>(), 1000);
}

#[test]
fn lifecycle_enroll_handshake_rekey() {
    let mut fleet = FleetCoordinator::new(
        FleetConfig::new()
            .devices(40)
            .ca_shards(4)
            .enroll_batch(8)
            .seed(0x2000),
    );
    let report = fleet.run_lifecycle(2).unwrap();
    assert_eq!(report.enrolled, 40);
    assert!(
        report.sessions >= 16,
        "uneven shards still pair most devices"
    );
    assert_eq!(
        report.handshakes,
        report.sessions + report.rekeys as usize,
        "every rekey is a full fresh handshake"
    );
    assert_eq!(report.rekeys, 2 * report.sessions as u64);
    assert!(report.handshakes_per_virtual_sec() > 0.0);
}

/// Host throughput of one interleaved sweep at `threads` workers
/// (handshakes per second), on a fresh fleet each time.
fn interleaved_hs_per_sec(threads: usize) -> f64 {
    let mut fleet = FleetCoordinator::new(
        FleetConfig::new()
            .devices(240)
            .ca_shards(4)
            .enroll_batch(32)
            .seed(0x5CA1E),
    );
    fleet.enroll_all().expect("enrollment succeeds");
    let start = Instant::now();
    fleet
        .interleaved_sweep(
            &SweepOptions::new()
                .threads(threads)
                .transport(TransportKind::Simnet),
        )
        .expect("sweep succeeds");
    fleet.report().handshakes as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// The `best_thread_count: 2` regression this PR fixes: adding workers
/// must never *cost* throughput. Shards are dealt round-robin (equal
/// preset mix per worker) and session state moves into the workers, so
/// the only per-thread overhead left is spawning. Best-of-three runs
/// per count and a tolerance factor absorb scheduler noise — CI
/// containers may expose a single core, where the two counts are
/// legitimately equal rather than 8 being faster.
///
/// Ignored under plain `cargo test`: a wall-clock comparison is only
/// meaningful in release mode without sibling tests contending for
/// cores, so the fleet-smoke step of `scripts/verify.sh` runs it
/// explicitly (`--release … -- --ignored`).
#[test]
#[ignore = "wall-clock assertion; run via verify.sh fleet (release, isolated)"]
fn eight_threads_not_slower_than_two() {
    let best = |threads: usize| {
        (0..3)
            .map(|_| interleaved_hs_per_sec(threads))
            .fold(f64::MIN, f64::max)
    };
    let two = best(2);
    let eight = best(8);
    assert!(
        eight >= two * 0.8,
        "8-thread sweep regressed below 2-thread: {eight:.1} hs/s vs {two:.1} hs/s"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn fleet_runs_are_seed_deterministic(
        seed in any::<u64>(),
        devices in 8usize..24,
        shards in 1usize..5,
        batch in 1usize..8,
    ) {
        let run = || {
            let mut fleet = FleetCoordinator::new(
                FleetConfig::new()
                    .devices(devices)
                    .ca_shards(shards)
                    .enroll_batch(batch)
                    .seed(seed),
            );
            let report = fleet.run_lifecycle(1).unwrap();
            let keys: Vec<[u8; 32]> = fleet
                .sessions()
                .iter()
                .map(|s| *s.last_key().unwrap().as_bytes())
                .collect();
            (report, keys)
        };
        let (r1, k1) = run();
        let (r2, k2) = run();
        prop_assert_eq!(r1.enrolled, devices);
        prop_assert_eq!(r1.enroll_makespan_us, r2.enroll_makespan_us);
        prop_assert_eq!(r1.handshake_makespan_us, r2.handshake_makespan_us);
        prop_assert_eq!(k1, k2);
    }
}
